/**
 * @file
 * dse::remote::RemoteDispatcher — fans a study's batch-simulation step
 * out across simulation workers (SimWorker daemons) with the full
 * resilience kit: per-request deadlines, retry with decorrelated
 * jitter backoff, per-worker circuit breakers with half-open ping
 * probing, re-dispatch of batches in flight on a dying worker, hedged
 * duplicate dispatch for stragglers, and graceful degradation to local
 * simulation.
 *
 * Correctness invariant (the headline): a worker that hangs, crashes,
 * or drops its connection costs latency, never correctness. Remote
 * results carry full SimResult records (or calibrated SimPoint IPCs)
 * that are bit-identical to local computation by purity — the
 * dispatcher merges them into the StudyContext memo cache by
 * design-point index, and any batch whose retries exhaust is simply
 * left for the context's own local simulation path. An exploration
 * with every worker SIGKILLed mid-flight therefore completes
 * bit-identically to an all-local run; the only observable difference
 * is wall-clock time and the remote.* counters.
 *
 * Determinism: the backoff schedule is a pure function of
 * (seed, batch key, attempt) — SplitMix64-derived decorrelated jitter
 * — so retry timing is identical at any thread count. Fault-injection
 * keys are per-batch (first index), never wall clocks, keeping the
 * chaos suite's injected-fault sets reproducible.
 *
 * Topology comes from DSE_WORKERS=host:port[,host:port...]; with the
 * variable unset (no endpoints) every call degrades to plain local
 * simulation, so callers can wire the dispatcher unconditionally.
 *
 * Threading: one persistent I/O thread per endpoint pulls batch tasks
 * from a shared queue; the caller of simulateBatch()/prefetch() acts
 * as coordinator (hedging scan, all-breakers-open escalation,
 * completion wait). The StudyContext's sharded memo cache makes
 * concurrent result injection safe.
 */

#ifndef DSE_REMOTE_DISPATCHER_HH
#define DSE_REMOTE_DISPATCHER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "study/harness.hh"

namespace dse {
namespace remote {

/** One worker endpoint. */
struct Endpoint
{
    std::string host;
    uint16_t port = 0;
};

/** Parse "host:port[,host:port...]" (the DSE_WORKERS format).
 *  @throws std::invalid_argument on a malformed entry */
std::vector<Endpoint> parseEndpoints(const std::string &spec);

struct DispatcherOptions
{
    /** Worker endpoints; empty = dispatcher is a transparent no-op
     *  (everything simulates locally). */
    std::vector<Endpoint> endpoints;
    /** Design points per remote batch task. */
    size_t batchPoints = 16;
    /** Per-request deadline (connect/send/recv each bounded); 0 =
     *  serve::Client::defaultTimeoutMs() (DSE_SERVE_TIMEOUT_MS). */
    int requestTimeoutMs = 0;
    /** Attempts per batch before falling back to local simulation. */
    uint32_t maxAttempts = 3;
    /** Backoff base and cap for the jittered retry delay. */
    int backoffBaseMs = 5;
    int backoffCapMs = 1000;
    /** Seed for the backoff jitter stream. */
    uint64_t seed = 0xd15e7c4ull;
    /** Hedge a batch onto a second worker once it has been in flight
     *  this long with no reply (0 = hedging off). */
    int hedgeAfterMs = 0;
    /** Consecutive failures that open a worker's circuit breaker. */
    uint32_t breakerThreshold = 3;
    /** Half-open probe (Ping) interval while a breaker is open. */
    int probeIntervalMs = 100;
    /** Route SimPoint-estimate batches instead of detailed ones. */
    bool simpoint = false;

    /** Defaults overridden by DSE_WORKERS, DSE_REMOTE_BATCH,
     *  DSE_REMOTE_ATTEMPTS, DSE_REMOTE_BACKOFF_MS,
     *  DSE_REMOTE_HEDGE_MS, DSE_REMOTE_BREAKER, DSE_REMOTE_PROBE_MS,
     *  DSE_REMOTE_SEED (and DSE_SERVE_TIMEOUT_MS via the client). */
    static DispatcherOptions fromEnv();
};

/** Dispatch counter snapshot (mirrored into remote.* obs metrics). */
struct DispatchStats
{
    uint64_t dispatched = 0;    ///< batch attempts sent (incl. hedges)
    uint64_t completed = 0;     ///< batches answered by a worker
    uint64_t retries = 0;       ///< re-attempts after a failure
    uint64_t hedges = 0;        ///< duplicate dispatches issued
    uint64_t redispatches = 0;  ///< batches re-queued off a dead worker
    uint64_t fallbacks = 0;     ///< batches exhausted to local sim
};

class RemoteDispatcher
{
  public:
    /** @param ctx the study context remote results merge into (must
     *         outlive the dispatcher) */
    RemoteDispatcher(study::StudyContext &ctx, DispatcherOptions opts);
    ~RemoteDispatcher();

    RemoteDispatcher(const RemoteDispatcher &) = delete;
    RemoteDispatcher &operator=(const RemoteDispatcher &) = delete;

    /**
     * Pre-warm the context's memo cache for a batch: fan the missing
     * indices out across live workers, merge what comes back, leave
     * the rest. Never throws on worker failure; with no endpoints it
     * returns immediately. Matches ml::ExplorerOptions::prefetch.
     */
    void prefetch(const std::vector<uint64_t> &indices);

    /**
     * prefetch() + the context's own batch call: every index resolves
     * (remote where possible, locally otherwise), in input order.
     * Bit-identical to StudyContext::simulateBatch at any topology,
     * including every worker dead.
     */
    std::vector<double>
    simulateBatch(const std::vector<uint64_t> &indices);

    /** True when at least one endpoint is configured. */
    bool active() const { return !opts_.endpoints.empty(); }

    DispatchStats stats() const;

    /** True if worker @p i's circuit breaker is currently open. */
    bool breakerOpen(size_t i) const;

    /**
     * The retry delay before attempt @p attempt of the batch keyed
     * @p key: decorrelated jitter in [base, min(cap, base << attempt)]
     * derived from a SplitMix64 stream over (seed, key, attempt). A
     * pure function — the whole backoff schedule is deterministic at
     * any thread count.
     */
    static int backoffDelayMs(uint64_t seed, uint64_t key,
                              uint32_t attempt, int base_ms, int cap_ms);

  private:
    struct Task;
    struct Worker;

    void workerLoop(size_t wi);
    /** One remote attempt of @p task on worker @p wi; returns true on
     *  success (results merged). */
    bool attempt(size_t wi, const std::shared_ptr<Task> &task);
    void requeue(const std::shared_ptr<Task> &task, uint64_t not_before_ns);
    void failTask(const std::shared_ptr<Task> &task);
    bool allBreakersOpen() const;
    static uint64_t nowNs();

    study::StudyContext &ctx_;
    DispatcherOptions opts_;

    mutable std::mutex mu_;          ///< queue + task bookkeeping
    std::condition_variable workCv_;  ///< wakes endpoint threads
    std::condition_variable doneCv_;  ///< wakes the coordinator
    std::deque<std::shared_ptr<Task>> queue_;
    size_t outstanding_ = 0;  ///< tasks neither done nor failed
    bool exiting_ = false;

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;

    struct Counters
    {
        std::atomic<uint64_t> dispatched{0};
        std::atomic<uint64_t> completed{0};
        std::atomic<uint64_t> retries{0};
        std::atomic<uint64_t> hedges{0};
        std::atomic<uint64_t> redispatches{0};
        std::atomic<uint64_t> fallbacks{0};
    };
    Counters counters_;
};

} // namespace remote
} // namespace dse

#endif // DSE_REMOTE_DISPATCHER_HH
