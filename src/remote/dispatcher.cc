#include "remote/dispatcher.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <unordered_set>

#include "serve/client.hh"
#include "util/env.hh"
#include "util/fault.hh"
#include "util/metrics.hh"
#include "util/rng.hh"
#include "util/table.hh"

namespace dse {
namespace remote {

namespace {

/** remote.* instrumentation (metrics.hh registration idiom). */
struct RemoteMetrics
{
    obs::CounterId dispatched, completed, retries, hedges;
    obs::CounterId redispatches, fallbacks;
    obs::HistogramId batchWallNs;

    static const RemoteMetrics &
    get()
    {
        static const RemoteMetrics m = [] {
            auto &r = obs::MetricsRegistry::global();
            RemoteMetrics s;
            s.dispatched = r.counter("remote.dispatched");
            s.completed = r.counter("remote.completed");
            s.retries = r.counter("remote.retries");
            s.hedges = r.counter("remote.hedges");
            s.redispatches = r.counter("remote.redispatches");
            s.fallbacks = r.counter("remote.fallbacks");
            s.batchWallNs = r.histogram("remote.batch_wall_ns");
            return s;
        }();
        return m;
    }
};

/** Outcome of one remote attempt (drives retry bookkeeping). */
enum class Outcome { Ok, Timeout, Disconnected, Other };

} // namespace

std::vector<Endpoint>
parseEndpoints(const std::string &spec)
{
    std::vector<Endpoint> out;
    for (const std::string &entry : split(spec, ',')) {
        const auto colon = entry.rfind(':');
        if (colon == std::string::npos || colon == 0)
            throw std::invalid_argument(
                "DSE_WORKERS entry '" + entry + "' is not host:port");
        const long port = std::atol(entry.c_str() + colon + 1);
        if (port <= 0 || port > 65535)
            throw std::invalid_argument(
                "DSE_WORKERS entry '" + entry + "' has a bad port");
        out.push_back(Endpoint{entry.substr(0, colon),
                               static_cast<uint16_t>(port)});
    }
    return out;
}

DispatcherOptions
DispatcherOptions::fromEnv()
{
    DispatcherOptions o;
    if (const char *spec = std::getenv("DSE_WORKERS")) {
        if (*spec)
            o.endpoints = parseEndpoints(spec);
    }
    o.batchPoints = static_cast<size_t>(std::max<long long>(
        1, envInt("DSE_REMOTE_BATCH",
                  static_cast<long long>(o.batchPoints))));
    o.requestTimeoutMs = static_cast<int>(
        envInt("DSE_REMOTE_TIMEOUT_MS", o.requestTimeoutMs));
    o.maxAttempts = static_cast<uint32_t>(std::max<long long>(
        1, envInt("DSE_REMOTE_ATTEMPTS", o.maxAttempts)));
    o.backoffBaseMs = static_cast<int>(
        envInt("DSE_REMOTE_BACKOFF_MS", o.backoffBaseMs));
    o.backoffCapMs = static_cast<int>(
        envInt("DSE_REMOTE_BACKOFF_CAP_MS", o.backoffCapMs));
    o.hedgeAfterMs = static_cast<int>(
        envInt("DSE_REMOTE_HEDGE_MS", o.hedgeAfterMs));
    o.breakerThreshold = static_cast<uint32_t>(std::max<long long>(
        1, envInt("DSE_REMOTE_BREAKER", o.breakerThreshold)));
    o.probeIntervalMs = static_cast<int>(std::max<long long>(
        1, envInt("DSE_REMOTE_PROBE_MS", o.probeIntervalMs)));
    o.seed = static_cast<uint64_t>(
        envInt("DSE_REMOTE_SEED", static_cast<long long>(o.seed)));
    return o;
}

int
RemoteDispatcher::backoffDelayMs(uint64_t seed, uint64_t key,
                                 uint32_t attempt, int base_ms,
                                 int cap_ms)
{
    if (base_ms < 1)
        base_ms = 1;
    if (cap_ms < base_ms)
        cap_ms = base_ms;
    // Decorrelated jitter over an exponentially growing window: the
    // delay is uniform in [base, min(cap, base << attempt)], drawn
    // from a SplitMix64 stream keyed by (seed, batch key, attempt).
    // A pure function of its arguments — no clocks, no shared state —
    // so the whole retry schedule is identical at any thread count.
    SplitMix64 sm(seed ^ (key * 0x9e3779b97f4a7c15ull) ^
                  (static_cast<uint64_t>(attempt) << 32));
    const uint64_t r = sm.next();
    const uint32_t shift = attempt < 20 ? attempt : 20;
    uint64_t window = static_cast<uint64_t>(base_ms) << shift;
    window = std::min<uint64_t>(window, static_cast<uint64_t>(cap_ms));
    window = std::max<uint64_t>(window, static_cast<uint64_t>(base_ms));
    const uint64_t span = window - static_cast<uint64_t>(base_ms) + 1;
    return static_cast<int>(base_ms + r % span);
}

// ------------------------------------------------------------ structure

struct RemoteDispatcher::Task
{
    std::vector<uint64_t> indices;
    uint64_t key = 0;  ///< indices[0]; fault/backoff identity

    // done is checked lock-free by the winning injector; everything
    // else is guarded by the dispatcher mutex.
    std::atomic<bool> done{false};
    bool failed = false;    ///< exhausted; left to local simulation
    bool settled = false;   ///< counted out of outstanding_
    uint32_t attempt = 0;
    uint64_t notBeforeNs = 0;  ///< backoff gate
    int inflight = 0;          ///< active attempts (hedges included)
    int lastWorker = -1;
    bool hedgedThisAttempt = false;
    uint64_t inflightSinceNs = 0;
};

struct RemoteDispatcher::Worker
{
    Endpoint ep;
    serve::Client client;
    bool connected = false;      ///< thread-private
    uint64_t lastProbeNs = 0;    ///< thread-private (half-open pings)
    std::atomic<uint32_t> consecutiveFailures{0};
    std::atomic<bool> open{false};  ///< circuit breaker state
    obs::HistogramId latency;       ///< per-worker wall time
};

RemoteDispatcher::RemoteDispatcher(study::StudyContext &ctx,
                                   DispatcherOptions opts)
    : ctx_(ctx), opts_(std::move(opts))
{
    if (opts_.batchPoints == 0)
        opts_.batchPoints = 1;
    if (opts_.maxAttempts == 0)
        opts_.maxAttempts = 1;
    workers_.reserve(opts_.endpoints.size());
    for (size_t i = 0; i < opts_.endpoints.size(); ++i) {
        auto w = std::make_unique<Worker>();
        w->ep = opts_.endpoints[i];
        if (opts_.requestTimeoutMs > 0)
            w->client.setTimeout(opts_.requestTimeoutMs);
        // Per-worker latency series for the first few endpoints (the
        // common case); the registry treats an invalid id as a no-op.
        if (i < 8) {
            w->latency = obs::MetricsRegistry::global().histogram(
                "remote.worker" + std::to_string(i) + ".latency_ns");
        }
        workers_.push_back(std::move(w));
    }
    threads_.reserve(workers_.size());
    for (size_t i = 0; i < workers_.size(); ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

RemoteDispatcher::~RemoteDispatcher()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        exiting_ = true;
    }
    workCv_.notify_all();
    for (auto &t : threads_) {
        if (t.joinable())
            t.join();
    }
}

uint64_t
RemoteDispatcher::nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

DispatchStats
RemoteDispatcher::stats() const
{
    DispatchStats s;
    s.dispatched = counters_.dispatched.load();
    s.completed = counters_.completed.load();
    s.retries = counters_.retries.load();
    s.hedges = counters_.hedges.load();
    s.redispatches = counters_.redispatches.load();
    s.fallbacks = counters_.fallbacks.load();
    return s;
}

bool
RemoteDispatcher::breakerOpen(size_t i) const
{
    return i < workers_.size() &&
        workers_[i]->open.load(std::memory_order_relaxed);
}

bool
RemoteDispatcher::allBreakersOpen() const
{
    for (const auto &w : workers_) {
        if (!w->open.load(std::memory_order_relaxed))
            return false;
    }
    return !workers_.empty();
}

// ---------------------------------------------------------- coordinator

void
RemoteDispatcher::prefetch(const std::vector<uint64_t> &indices)
{
    if (!active() || indices.empty())
        return;

    // Only missing points travel; duplicates collapse.
    std::vector<uint64_t> todo;
    {
        std::unordered_set<uint64_t> seen;
        for (uint64_t idx : indices) {
            if (!seen.insert(idx).second)
                continue;
            const bool have = opts_.simpoint
                ? ctx_.hasSimPointEstimate(idx)
                : ctx_.hasResult(idx);
            if (!have)
                todo.push_back(idx);
        }
    }
    if (todo.empty())
        return;

    std::vector<std::shared_ptr<Task>> tasks;
    for (size_t at = 0; at < todo.size(); at += opts_.batchPoints) {
        auto task = std::make_shared<Task>();
        const size_t end = std::min(todo.size(), at + opts_.batchPoints);
        task->indices.assign(todo.begin() + static_cast<ptrdiff_t>(at),
                             todo.begin() + static_cast<ptrdiff_t>(end));
        task->key = task->indices[0];
        tasks.push_back(std::move(task));
    }

    {
        std::lock_guard<std::mutex> lock(mu_);
        for (auto &task : tasks)
            queue_.push_back(task);
        outstanding_ += tasks.size();
    }
    workCv_.notify_all();

    auto &registry = obs::MetricsRegistry::global();
    const auto &rm = RemoteMetrics::get();

    // Coordinator loop: wait for completion, hedge stragglers, and
    // escalate to local fallback when every breaker is open. Attempts
    // are deadline-bounded (serve::Client), retries are capped, and
    // all-dead abandons the rest, so this loop always terminates.
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        doneCv_.wait_for(lock, std::chrono::milliseconds(5),
                         [&] { return outstanding_ == 0; });
        if (outstanding_ == 0)
            break;

        const uint64_t now = nowNs();
        if (opts_.hedgeAfterMs > 0 && workers_.size() > 1) {
            const uint64_t after =
                static_cast<uint64_t>(opts_.hedgeAfterMs) * 1000000ull;
            for (auto &task : tasks) {
                if (task->done.load(std::memory_order_acquire) ||
                    task->failed || task->hedgedThisAttempt)
                    continue;
                if (task->inflight == 1 &&
                    now - task->inflightSinceNs > after) {
                    // Straggler: race a duplicate on another worker;
                    // first reply wins (done flag), the loser's answer
                    // is dropped by the dedup in attempt().
                    task->hedgedThisAttempt = true;
                    counters_.hedges.fetch_add(1);
                    registry.add(rm.hedges);
                    queue_.push_back(task);
                    workCv_.notify_all();
                }
            }
        }

        if (allBreakersOpen()) {
            // Every worker is (believed) dead: stop queueing and let
            // the local path absorb whatever has not completed. Tasks
            // still in flight settle on their own within a deadline.
            for (auto &task : tasks) {
                if (!task->done.load(std::memory_order_acquire) &&
                    !task->failed && task->inflight == 0)
                    failTask(task);
            }
        }
    }

    // Drop any stale queue entries (hedge duplicates of settled
    // tasks) so the next call starts clean.
    queue_.erase(std::remove_if(
                     queue_.begin(), queue_.end(),
                     [](const std::shared_ptr<Task> &t) {
                         return t->done.load() || t->failed;
                     }),
                 queue_.end());
}

std::vector<double>
RemoteDispatcher::simulateBatch(const std::vector<uint64_t> &indices)
{
    prefetch(indices);
    // The context call resolves every index: remote results are memo
    // hits, exhausted batches simulate locally here. Merging by index
    // makes the sourcing invisible — output order and values are those
    // of an all-local run.
    return opts_.simpoint ? ctx_.simulateSimPointBatch(indices)
                          : ctx_.simulateBatch(indices);
}

// must hold mu_
void
RemoteDispatcher::failTask(const std::shared_ptr<Task> &task)
{
    task->failed = true;
    if (!task->settled) {
        task->settled = true;
        --outstanding_;
        counters_.fallbacks.fetch_add(1);
        obs::MetricsRegistry::global().add(RemoteMetrics::get().fallbacks);
        doneCv_.notify_all();
    }
}

// must hold mu_
void
RemoteDispatcher::requeue(const std::shared_ptr<Task> &task,
                          uint64_t not_before_ns)
{
    task->notBeforeNs = not_before_ns;
    task->hedgedThisAttempt = false;
    queue_.push_back(task);
}

// ------------------------------------------------------- endpoint threads

void
RemoteDispatcher::workerLoop(size_t wi)
{
    auto &w = *workers_[wi];
    auto &registry = obs::MetricsRegistry::global();
    const auto &rm = RemoteMetrics::get();

    for (;;) {
        std::shared_ptr<Task> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            workCv_.wait_for(lock, std::chrono::milliseconds(5), [&] {
                return exiting_ || !queue_.empty();
            });
            if (exiting_)
                return;
            if (!w.open.load(std::memory_order_relaxed)) {
                const uint64_t now = nowNs();
                for (size_t i = 0; i < queue_.size();) {
                    auto &t = queue_[i];
                    if (t->done.load(std::memory_order_acquire) ||
                        t->failed) {
                        queue_.erase(queue_.begin() +
                                     static_cast<ptrdiff_t>(i));
                        continue;
                    }
                    const bool hedge_entry = t->inflight > 0;
                    if (t->notBeforeNs > now ||
                        (hedge_entry && t->lastWorker ==
                             static_cast<int>(wi))) {
                        ++i;
                        continue;  // not due / own straggler
                    }
                    task = t;
                    queue_.erase(queue_.begin() +
                                 static_cast<ptrdiff_t>(i));
                    break;
                }
                if (task) {
                    ++task->inflight;
                    task->lastWorker = static_cast<int>(wi);
                    task->inflightSinceNs = nowNs();
                }
            }
        }

        if (!task) {
            // Breaker open (or nothing due): half-open probe on its
            // schedule, then yield briefly so this loop stays cold.
            if (w.open.load(std::memory_order_relaxed)) {
                const uint64_t now = nowNs();
                if (now - w.lastProbeNs >=
                    static_cast<uint64_t>(opts_.probeIntervalMs) *
                        1000000ull) {
                    w.lastProbeNs = now;
                    try {
                        if (!w.connected) {
                            w.client.connect(w.ep.host, w.ep.port);
                            w.connected = true;
                        }
                        w.client.ping();
                        // The worker answered: close the breaker and
                        // resume taking real traffic.
                        w.consecutiveFailures.store(0);
                        w.open.store(false);
                    } catch (const std::exception &) {
                        w.connected = false;
                        w.client.close();
                    }
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(2));
            }
            continue;
        }

        Outcome outcome = Outcome::Other;
        try {
            outcome = attempt(wi, task) ? Outcome::Ok : Outcome::Other;
        } catch (const serve::ServeError &e) {
            outcome = e.code() == serve::ErrCode::Timeout
                ? Outcome::Timeout
                : (e.code() == serve::ErrCode::Disconnected
                       ? Outcome::Disconnected
                       : Outcome::Other);
        } catch (const std::exception &) {
            outcome = Outcome::Other;
        }

        if (outcome != Outcome::Ok) {
            w.connected = false;
            w.client.close();
            const uint32_t fails =
                w.consecutiveFailures.fetch_add(1) + 1;
            if (fails >= opts_.breakerThreshold) {
                w.open.store(true);
                w.lastProbeNs = nowNs();
            }
        }

        {
            std::lock_guard<std::mutex> lock(mu_);
            --task->inflight;
            if (outcome == Outcome::Ok) {
                if (!task->settled) {
                    task->settled = true;
                    --outstanding_;
                    doneCv_.notify_all();
                }
            } else if (!task->done.load(std::memory_order_acquire) &&
                       !task->failed && task->inflight == 0) {
                ++task->attempt;
                if (task->attempt >= opts_.maxAttempts) {
                    failTask(task);
                } else {
                    counters_.retries.fetch_add(1);
                    registry.add(rm.retries);
                    if (outcome == Outcome::Disconnected) {
                        // The worker died with this batch in flight;
                        // it goes back on the queue for someone else.
                        counters_.redispatches.fetch_add(1);
                        registry.add(rm.redispatches);
                    }
                    const int delay = backoffDelayMs(
                        opts_.seed, task->key, task->attempt,
                        opts_.backoffBaseMs, opts_.backoffCapMs);
                    requeue(task, nowNs() +
                                static_cast<uint64_t>(delay) *
                                    1000000ull);
                }
            }
        }
        workCv_.notify_all();
    }
}

bool
RemoteDispatcher::attempt(size_t wi, const std::shared_ptr<Task> &task)
{
    auto &w = *workers_[wi];
    auto &registry = obs::MetricsRegistry::global();
    const auto &rm = RemoteMetrics::get();
    counters_.dispatched.fetch_add(1);
    registry.add(rm.dispatched);

    // Client-side chaos: a dropped connection, keyed per batch so the
    // decision is deterministic at any thread count.
    if (util::FaultInjector::global().shouldFail("remote.conn.drop",
                                                 task->key)) {
        w.connected = false;
        w.client.close();
        throw serve::ServeError(serve::ErrCode::Disconnected,
                                "injected connection drop");
    }

    const uint64_t t0 = nowNs();
    if (!w.connected) {
        w.client.connect(w.ep.host, w.ep.port);
        w.connected = true;
    }
    serve::SimulateBatchRequest req;
    req.study = static_cast<uint8_t>(ctx_.kind());
    req.app = ctx_.app();
    req.traceLength = ctx_.trace().size();
    req.simpoint = opts_.simpoint;
    req.indices = task->indices;
    const serve::SimulateBatchReply reply = w.client.simulateBatch(req);
    if (reply.simpoint != opts_.simpoint)
        throw serve::ServeError(serve::ErrCode::Internal,
                                "reply mode does not match the request");

    w.consecutiveFailures.store(0);
    w.open.store(false);

    // First reply wins: a hedged duplicate that lost the race drops
    // its (identical) answer here.
    if (!task->done.exchange(true, std::memory_order_acq_rel)) {
        if (reply.simpoint) {
            for (size_t i = 0; i < task->indices.size(); ++i)
                ctx_.injectSimPointEstimate(task->indices[i],
                                            reply.ipc[i]);
        } else {
            for (size_t i = 0; i < task->indices.size(); ++i)
                ctx_.injectResult(task->indices[i], reply.results[i]);
        }
        counters_.completed.fetch_add(1);
        registry.add(rm.completed);
    }

    const uint64_t wall = nowNs() - t0;
    registry.observe(rm.batchWallNs, wall);
    registry.observe(w.latency, wall);
    return true;
}

} // namespace remote
} // namespace dse
