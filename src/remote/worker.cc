#include "remote/worker.hh"

#include <unistd.h>

#include <chrono>
#include <exception>
#include <thread>

#include "util/fault.hh"
#include "util/metrics.hh"

namespace dse {
namespace remote {

namespace {

struct WorkerMetrics
{
    obs::CounterId batches, points;

    static const WorkerMetrics &
    get()
    {
        static const WorkerMetrics m = [] {
            auto &r = obs::MetricsRegistry::global();
            WorkerMetrics w;
            w.batches = r.counter("remote.worker_batches");
            w.points = r.counter("remote.worker_points");
            return w;
        }();
        return m;
    }
};

} // namespace

SimWorker::SimWorker(SimWorkerOptions opts) : opts_(std::move(opts)),
                                              server_(opts_.server)
{
    server_.setSimulateHandler(
        [this](const serve::SimulateBatchRequest &req,
               serve::SimulateBatchReply &reply, std::string &error) {
            return handle(req, reply, error);
        });
}

SimWorker::~SimWorker()
{
    stop();
}

void
SimWorker::start()
{
    server_.start();
}

void
SimWorker::stop()
{
    server_.stop();
}

uint64_t
SimWorker::batchesServed() const
{
    return batches_.load(std::memory_order_relaxed);
}

std::shared_ptr<study::StudyContext>
SimWorker::contextFor(const serve::SimulateBatchRequest &req)
{
    const std::string key = std::to_string(req.study) + "|" + req.app +
        "|" + std::to_string(req.traceLength);
    std::lock_guard<std::mutex> lock(mu_);
    auto it = contexts_.find(key);
    if (it != contexts_.end())
        return it->second;
    auto ctx = std::make_shared<study::StudyContext>(
        static_cast<study::StudyKind>(req.study), req.app,
        static_cast<size_t>(req.traceLength));
    contexts_.emplace(key, ctx);
    return ctx;
}

serve::SimulateVerdict
SimWorker::handle(const serve::SimulateBatchRequest &req,
                  serve::SimulateBatchReply &reply, std::string &error)
{
    if (req.study > 1) {
        error = "unknown study kind";
        return serve::SimulateVerdict::BadRequest;
    }
    if (req.indices.empty() ||
        req.indices.size() > opts_.maxBatchPoints) {
        error = "batch size outside [1, " +
            std::to_string(opts_.maxBatchPoints) + "]";
        return serve::SimulateVerdict::BadRequest;
    }

    // Chaos sites, keyed by the batch's first index so the decision is
    // a pure per-batch function (fault.hh determinism contract).
    const uint64_t key = req.indices[0] ^ opts_.faultSalt;
    auto &faults = util::FaultInjector::global();
    if (faults.shouldFail("remote.worker.crash", key)) {
        if (opts_.crashExits)
            _exit(3);  // emulate SIGKILL: no reply, no cleanup
        return serve::SimulateVerdict::Crash;
    }
    if (faults.shouldFail("remote.conn.delay", key)) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(opts_.delayMs));
    }

    try {
        auto ctx = contextFor(req);
        const uint64_t space = ctx->space().size();
        for (uint64_t idx : req.indices) {
            if (idx >= space) {
                error = "design-point index outside the space";
                return serve::SimulateVerdict::BadRequest;
            }
        }
        reply.simpoint = req.simpoint;
        if (req.simpoint) {
            reply.ipc = ctx->simulateSimPointBatch(req.indices);
        } else {
            reply.results.reserve(req.indices.size());
            // Warm the memo cache in parallel, then gather in request
            // order (simulateFull returns memoized references).
            ctx->simulateBatch(req.indices);
            for (uint64_t idx : req.indices)
                reply.results.push_back(ctx->simulateFull(idx));
        }
    } catch (const std::exception &e) {
        error = std::string("simulation failed: ") + e.what();
        return serve::SimulateVerdict::BadRequest;
    }

    batches_.fetch_add(1, std::memory_order_relaxed);
    auto &registry = obs::MetricsRegistry::global();
    registry.add(WorkerMetrics::get().batches);
    registry.add(WorkerMetrics::get().points, req.indices.size());
    return serve::SimulateVerdict::Reply;
}

} // namespace remote
} // namespace dse
