/**
 * @file
 * dse::remote::SimWorker — a simulation worker: a serve::Server with a
 * SimulateBatch handler that reconstructs the requested study context
 * and runs detailed (or SimPoint) simulations on behalf of a
 * RemoteDispatcher.
 *
 * Simulation is a pure function of (trace, config), and the worker
 * rebuilds its StudyContext from the same (study, app, trace length)
 * identity the dispatcher's context was built from, so every result it
 * returns is bit-identical to what the dispatcher would have computed
 * locally. Results travel as raw IEEE-754 bit patterns (protocol.hh),
 * preserving that identity over the wire.
 *
 * Fault sites (chaos suite):
 *  - `remote.worker.crash`: the handler emulates a crash — in-process
 *    (crashExits=false) the connection goes silent and the server
 *    stops accepting, exactly what a SIGKILLed daemon looks like to
 *    the dispatcher; in the daemon (crashExits=true) the process
 *    _exit()s.
 *  - `remote.conn.delay`: the handler sleeps delayMs before replying,
 *    emulating a hung/overloaded worker (drives client timeouts and
 *    hedging).
 *
 * Both sites key on the batch's first design-point index XOR-mixed
 * with faultSalt, so the decision is deterministic per batch at any
 * thread count, and distinct salts let a test kill a batch on one
 * worker but not on its hedge target.
 */

#ifndef DSE_REMOTE_WORKER_HH
#define DSE_REMOTE_WORKER_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "serve/server.hh"
#include "study/harness.hh"

namespace dse {
namespace remote {

struct SimWorkerOptions
{
    /** Underlying server options (addr/port/queue/workers). */
    serve::ServerOptions server = serve::ServerOptions::fromEnv();
    /** Cap on design points accepted per SimulateBatch request. */
    size_t maxBatchPoints = 4096;
    /** remote.worker.crash behavior: true = _exit the process (the
     *  daemon); false = go silent and stop the server (in-process
     *  tests). */
    bool crashExits = false;
    /** Sleep injected by remote.conn.delay, in milliseconds. */
    int delayMs = 250;
    /** XOR-mixed into crash/delay probe keys so co-located test
     *  workers can fail independently for the same batch. */
    uint64_t faultSalt = 0;
};

class SimWorker
{
  public:
    explicit SimWorker(SimWorkerOptions opts = SimWorkerOptions());
    ~SimWorker();

    SimWorker(const SimWorker &) = delete;
    SimWorker &operator=(const SimWorker &) = delete;

    /** Start serving (binds; port() reports the bound port). */
    void start();

    /** Graceful stop (idempotent). */
    void stop();

    uint16_t port() const { return server_.port(); }

    /** The underlying server (signal wiring in the daemon). */
    serve::Server &server() { return server_; }

    /** Batches handled to completion so far (diagnostics). */
    uint64_t batchesServed() const;

  private:
    serve::SimulateVerdict handle(const serve::SimulateBatchRequest &req,
                                  serve::SimulateBatchReply &reply,
                                  std::string &error);

    std::shared_ptr<study::StudyContext>
    contextFor(const serve::SimulateBatchRequest &req);

    SimWorkerOptions opts_;
    serve::Server server_;

    std::mutex mu_;  ///< guards contexts_
    /** (study, app, traceLength) -> shared context. Simulations
     *  memoize per context, so repeat batches against the same study
     *  reuse everything. */
    std::map<std::string, std::shared_ptr<study::StudyContext>> contexts_;

    std::atomic<uint64_t> batches_{0};
};

} // namespace remote
} // namespace dse

#endif // DSE_REMOTE_WORKER_HH
