#include "study/spaces.hh"

#include <cmath>
#include <stdexcept>

#include "sim/cacti.hh"

namespace dse {
namespace study {

const char *
studyName(StudyKind kind)
{
    return kind == StudyKind::MemorySystem ? "memory-system" : "processor";
}

ml::DesignSpace
memorySystemSpace()
{
    ml::DesignSpace space;
    space.addCardinal("L1DSizeKB", {8, 16, 32, 64});
    space.addCardinal("L1DBlockB", {32, 64});
    space.addCardinal("L1DAssoc", {1, 2, 4, 8});
    space.addNominal("L1DWritePolicy", {"WT", "WB"});
    space.addCardinal("L2SizeKB", {256, 512, 1024, 2048});
    space.addCardinal("L2BlockB", {64, 128});
    space.addCardinal("L2Assoc", {1, 2, 4, 8, 16});
    space.addCardinal("L2BusB", {8, 16, 32});
    space.addContinuous("FSBGHz", {0.533, 0.8, 1.4});
    return space;
}

ml::DesignSpace
processorSpace()
{
    ml::DesignSpace space;
    space.addCardinal("Width", {4, 6, 8});
    space.addContinuous("FreqGHz", {2, 4});
    space.addCardinal("MaxBranches", {16, 32});
    space.addCardinal("BPEntries", {1024, 2048, 4096});
    space.addCardinal("BTBSets", {1024, 2048});
    space.addCardinal("FunctionalUnits", {4, 8});
    space.addCardinal("ROBSize", {96, 128, 160});
    // Two register-file choices per ROB size (Table 4.2): a selector
    // whose concrete value processorConfig() resolves.
    space.addNominal("RegFileChoice", {"small", "large"});
    space.addCardinal("LSQEntries", {32, 48, 64});
    space.addCardinal("L1ISizeKB", {8, 32});
    space.addCardinal("L1DSizeKB", {8, 32});
    space.addCardinal("L2SizeKB", {256, 1024});
    return space;
}

sim::MachineConfig
memorySystemConfig(const ml::DesignSpace &space,
                   const std::vector<int> &levels)
{
    sim::MachineConfig cfg;  // defaults are the Table 4.1 fixed core

    cfg.l1d.sizeKB = static_cast<int>(space.valueOf("L1DSizeKB", levels));
    cfg.l1d.blockBytes =
        static_cast<int>(space.valueOf("L1DBlockB", levels));
    cfg.l1d.assoc = static_cast<int>(space.valueOf("L1DAssoc", levels));
    cfg.l1d.writeBack = space.labelOf("L1DWritePolicy", levels) == "WB";

    cfg.l2.sizeKB = static_cast<int>(space.valueOf("L2SizeKB", levels));
    cfg.l2.blockBytes = static_cast<int>(space.valueOf("L2BlockB", levels));
    cfg.l2.assoc = static_cast<int>(space.valueOf("L2Assoc", levels));
    cfg.l2.writeBack = true;

    cfg.l2BusBytes = static_cast<int>(space.valueOf("L2BusB", levels));
    cfg.fsbGHz = space.valueOf("FSBGHz", levels);

    sim::CactiModel::applyLatencies(cfg);
    // The paper's fixed L1I is 32 KB with a 2-cycle latency.
    cfg.l1iLatency = 2;
    return cfg;
}

sim::MachineConfig
processorConfig(const ml::DesignSpace &space,
                const std::vector<int> &levels)
{
    sim::MachineConfig cfg;

    const int width = static_cast<int>(space.valueOf("Width", levels));
    cfg.fetchWidth = cfg.issueWidth = cfg.commitWidth = width;

    cfg.freqGHz = space.valueOf("FreqGHz", levels);
    // 11- and 20-cycle minimum penalties at 2 and 4 GHz (Chapter 4).
    cfg.mispredictPenaltyCycles = cfg.freqGHz >= 3.0 ? 20 : 11;

    cfg.maxBranches =
        static_cast<int>(space.valueOf("MaxBranches", levels));
    cfg.bpEntries = static_cast<int>(space.valueOf("BPEntries", levels));
    cfg.btbSets = static_cast<int>(space.valueOf("BTBSets", levels));

    const int fu =
        static_cast<int>(space.valueOf("FunctionalUnits", levels));
    cfg.intAluUnits = fu;
    cfg.fpUnits = fu / 2;

    cfg.robSize = static_cast<int>(space.valueOf("ROBSize", levels));
    // Register file: two choices per ROB size (96 -> 64/80,
    // 128 -> 80/96, 160 -> 96/112).
    const bool large = space.labelOf("RegFileChoice", levels) == "large";
    int regs = 0;
    switch (cfg.robSize) {
      case 96: regs = large ? 80 : 64; break;
      case 128: regs = large ? 96 : 80; break;
      case 160: regs = large ? 112 : 96; break;
      default:
        throw std::logic_error("unexpected ROB size");
    }
    cfg.intRegs = cfg.fpRegs = regs;

    const int lsq = static_cast<int>(space.valueOf("LSQEntries", levels));
    cfg.lsqLoads = cfg.lsqStores = lsq;

    // Caches: associativity and (for L2) geometry depend on size
    // (Table 4.2 right side).
    cfg.l1i.sizeKB = static_cast<int>(space.valueOf("L1ISizeKB", levels));
    cfg.l1i.blockBytes = 32;
    cfg.l1i.assoc = cfg.l1i.sizeKB >= 32 ? 2 : 1;
    cfg.l1i.writeBack = true;

    cfg.l1d.sizeKB = static_cast<int>(space.valueOf("L1DSizeKB", levels));
    cfg.l1d.blockBytes = 32;
    cfg.l1d.assoc = cfg.l1d.sizeKB >= 32 ? 2 : 1;
    cfg.l1d.writeBack = true;

    cfg.l2.sizeKB = static_cast<int>(space.valueOf("L2SizeKB", levels));
    cfg.l2.blockBytes = 64;
    cfg.l2.assoc = cfg.l2.sizeKB >= 1024 ? 8 : 4;
    cfg.l2.writeBack = true;

    cfg.l2BusBytes = 32;
    cfg.fsbGHz = 0.8;

    sim::CactiModel::applyLatencies(cfg);
    return cfg;
}

ml::DesignSpace
spaceFor(StudyKind kind)
{
    return kind == StudyKind::MemorySystem ? memorySystemSpace()
                                           : processorSpace();
}

sim::MachineConfig
configFor(StudyKind kind, const ml::DesignSpace &space,
          const std::vector<int> &levels)
{
    return kind == StudyKind::MemorySystem
        ? memorySystemConfig(space, levels)
        : processorConfig(space, levels);
}

} // namespace study
} // namespace dse
