#include "study/journal.hh"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "util/fault.hh"
#include "util/metrics.hh"
#include "util/trace.hh"

namespace dse {
namespace study {

namespace {

/** Journal durability metrics (DESIGN.md "Observability"). */
struct JournalMetrics
{
    obs::CounterId appends, fsyncs, replayed, rejected, tornTails;
    obs::HistogramId appendWallNs;

    static const JournalMetrics &
    get()
    {
        static const JournalMetrics m = [] {
            auto &r = obs::MetricsRegistry::global();
            JournalMetrics j;
            j.appends = r.counter("journal.appends");
            j.fsyncs = r.counter("journal.fsyncs");
            j.replayed = r.counter("journal.replayed");
            j.rejected = r.counter("journal.rejected");
            j.tornTails = r.counter("journal.torn_tails");
            j.appendWallNs = r.histogram("journal.append_wall_ns");
            return j;
        }();
        return m;
    }
};

constexpr char kMagic[8] = {'D', 'S', 'E', 'J', 'R', 'N', 'L', '1'};
constexpr uint32_t kVersion = 1;

uint64_t
fnv1a(const uint8_t *data, size_t n)
{
    uint64_t h = 1469598103934665603ull;
    for (size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= 1099511628211ull;
    }
    return h;
}

void
putU32(std::vector<uint8_t> &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<uint8_t> &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint32_t
getU32(const uint8_t *p)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(p[i]) << (8 * i);
    return v;
}

uint64_t
getU64(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(p[i]) << (8 * i);
    return v;
}

void
putDouble(std::vector<uint8_t> &out, double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(out, bits);
}

double
getDouble(const uint8_t *p)
{
    const uint64_t bits = getU64(p);
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::vector<uint8_t>
encodeHeader(StudyKind kind, const std::string &app, uint64_t trace_len)
{
    std::vector<uint8_t> out(kMagic, kMagic + sizeof(kMagic));
    putU32(out, kVersion);
    putU32(out, static_cast<uint32_t>(kind));
    putU64(out, trace_len);
    putU32(out, static_cast<uint32_t>(app.size()));
    out.insert(out.end(), app.begin(), app.end());
    putU64(out, fnv1a(out.data(), out.size()));
    return out;
}

std::vector<uint8_t>
encodeRecord(uint64_t index, const sim::SimResult &r)
{
    std::vector<uint8_t> out;
    out.reserve(SimJournal::kRecordSize);
    putU64(out, index);
    putU64(out, r.cycles);
    putU64(out, r.instructions);
    putDouble(out, r.ipc);
    putDouble(out, r.l1dMissRate);
    putDouble(out, r.l2MissRate);
    putDouble(out, r.l1iMissRate);
    putDouble(out, r.branchMispredictRate);
    putU64(out, r.l1dAccesses);
    putU64(out, r.l1dMisses);
    putU64(out, r.l2Accesses);
    putU64(out, r.l2Misses);
    putU64(out, r.l1iAccesses);
    putU64(out, r.l1iMisses);
    putU64(out, r.branches);
    putU64(out, r.branchMispredicts);
    putU64(out, fnv1a(out.data(), out.size()));
    return out;
}

bool
decodeRecord(const uint8_t *p, uint64_t &index, sim::SimResult &r)
{
    if (fnv1a(p, SimJournal::kRecordSize - 8) !=
        getU64(p + SimJournal::kRecordSize - 8)) {
        return false;
    }
    index = getU64(p);
    r.cycles = getU64(p + 8);
    r.instructions = getU64(p + 16);
    r.ipc = getDouble(p + 24);
    r.l1dMissRate = getDouble(p + 32);
    r.l2MissRate = getDouble(p + 40);
    r.l1iMissRate = getDouble(p + 48);
    r.branchMispredictRate = getDouble(p + 56);
    r.l1dAccesses = getU64(p + 64);
    r.l1dMisses = getU64(p + 72);
    r.l2Accesses = getU64(p + 80);
    r.l2Misses = getU64(p + 88);
    r.l1iAccesses = getU64(p + 96);
    r.l1iMisses = getU64(p + 104);
    r.branches = getU64(p + 112);
    r.branchMispredicts = getU64(p + 120);
    return true;
}

void
writeAll(int fd, const uint8_t *data, size_t n, const std::string &path)
{
    size_t done = 0;
    while (done < n) {
        const ssize_t w = ::write(fd, data + done, n - done);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            throw std::runtime_error("journal write failed: " + path +
                                     ": " + std::strerror(errno));
        }
        done += static_cast<size_t>(w);
    }
}

} // namespace

SimJournal::SimJournal(std::string path, StudyKind kind,
                       const std::string &app, uint64_t trace_len)
    : path_(std::move(path))
{
    fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd_ < 0) {
        throw std::runtime_error("cannot open journal: " + path_ + ": " +
                                 std::strerror(errno));
    }

    const auto header = encodeHeader(kind, app, trace_len);
    const off_t size = ::lseek(fd_, 0, SEEK_END);
    if (size == 0) {
        // Fresh journal: persist the identity header before any
        // record can refer to it.
        ::lseek(fd_, 0, SEEK_SET);
        writeAll(fd_, header.data(), header.size(), path_);
        ::fsync(fd_);
        replayed_ = true;  // nothing to replay
        return;
    }

    std::vector<uint8_t> existing(header.size());
    ::lseek(fd_, 0, SEEK_SET);
    const ssize_t got = ::read(fd_, existing.data(), existing.size());
    if (got < static_cast<ssize_t>(sizeof(kMagic)) ||
        std::memcmp(existing.data(), kMagic, sizeof(kMagic)) != 0) {
        ::close(fd_);
        fd_ = -1;
        throw std::runtime_error("not a simulation journal: " + path_);
    }
    if (got != static_cast<ssize_t>(existing.size()) ||
        existing != header) {
        ::close(fd_);
        fd_ = -1;
        throw std::runtime_error(
            "journal belongs to a different study/app/trace: " + path_);
    }
}

SimJournal::~SimJournal()
{
    if (fd_ >= 0)
        ::close(fd_);
}

SimJournal::ReplayStats
SimJournal::replay(
    const std::function<void(uint64_t, const sim::SimResult &)> &fn)
{
    ReplayStats stats;
    if (replayed_)
        return stats;  // fresh file, already positioned past header
    replayed_ = true;

    const off_t header_end = ::lseek(fd_, 0, SEEK_CUR);
    const off_t size = ::lseek(fd_, 0, SEEK_END);
    const uint64_t body = static_cast<uint64_t>(size - header_end);
    const uint64_t records = body / kRecordSize;
    stats.tornTail = body % kRecordSize != 0;

    ::lseek(fd_, header_end, SEEK_SET);
    std::vector<uint8_t> buf(kRecordSize);
    for (uint64_t n = 0; n < records; ++n) {
        ssize_t got = 0;
        while (got < static_cast<ssize_t>(kRecordSize)) {
            const ssize_t r = ::read(fd_, buf.data() + got,
                                     kRecordSize - static_cast<size_t>(got));
            if (r < 0 && errno == EINTR)
                continue;
            if (r <= 0) {
                throw std::runtime_error("journal read failed: " + path_ +
                                         ": " + std::strerror(errno));
            }
            got += r;
        }
        uint64_t index;
        sim::SimResult result;
        if (decodeRecord(buf.data(), index, result)) {
            fn(index, result);
            ++stats.replayed;
        } else {
            // Checksum-corrupt record: reject it but keep going —
            // records are fixed-size, so the stream stays in sync.
            ++stats.rejected;
        }
    }

    if (stats.tornTail) {
        // Drop the torn tail so the next append extends a valid file.
        const off_t valid =
            header_end + static_cast<off_t>(records * kRecordSize);
        if (::ftruncate(fd_, valid) != 0) {
            throw std::runtime_error("journal truncate failed: " + path_ +
                                     ": " + std::strerror(errno));
        }
        ::lseek(fd_, valid, SEEK_SET);
    }

    const auto &jm = JournalMetrics::get();
    auto &registry = obs::MetricsRegistry::global();
    registry.add(jm.replayed, stats.replayed);
    registry.add(jm.rejected, stats.rejected);
    if (stats.tornTail)
        registry.add(jm.tornTails);
    return stats;
}

void
SimJournal::append(uint64_t index, const sim::SimResult &r)
{
    const auto &jm = JournalMetrics::get();
    auto &registry = obs::MetricsRegistry::global();
    obs::TraceScope span("journal-append", jm.appendWallNs);
    registry.add(jm.appends);
    const auto record = encodeRecord(index, r);
    std::lock_guard<std::mutex> lock(appendMu_);
    if (util::FaultInjector::global().shouldFail("journal", index)) {
        // Injected torn write: persist only half the record, exactly
        // what a crash mid-append leaves behind.
        writeAll(fd_, record.data(), record.size() / 2, path_);
        ::fsync(fd_);
        throw std::runtime_error(
            "injected fault: journal append (torn write at index " +
            std::to_string(index) + ")");
    }
    writeAll(fd_, record.data(), record.size(), path_);
    if (::fsync(fd_) != 0) {
        throw std::runtime_error("journal fsync failed: " + path_ + ": " +
                                 std::strerror(errno));
    }
    registry.add(jm.fsyncs);
}

} // namespace study
} // namespace dse
