/**
 * @file
 * Study harness: binds an application trace to a study's design
 * space, memoizes simulations by design-point index, and provides the
 * evaluation utilities the benchmarks share (holdout construction,
 * true-error measurement, learning-curve sweeps).
 */

#ifndef DSE_STUDY_HARNESS_HH
#define DSE_STUDY_HARNESS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "ml/cross_validation.hh"
#include "ml/encoding.hh"
#include "sim/core.hh"
#include "simpoint/simpoint.hh"
#include "study/journal.hh"
#include "study/spaces.hh"
#include "workload/trace.hh"

namespace dse {
namespace study {

/**
 * One (study, application) pair: the design space, the application's
 * trace, and a memoized simulator keyed by design-point index.
 *
 * Simulations run with warmed caches/predictor (steady state; see
 * SimOptions::warmCaches) so short synthetic traces behave like the
 * paper's long MinneSPEC runs.
 *
 * Thread safety: the memoization caches are sharded by index with one
 * mutex per shard, so simulateFull/simulateIpc/simulateSimPointIpc
 * (and the batch variants, which fan out on the global ThreadPool)
 * may be called concurrently. Simulation itself is a pure function of
 * (trace, config), so concurrent evaluation is bit-identical to
 * serial regardless of thread count or interleaving.
 *
 * Crash safety: with a journal attached (explicit path, or the
 * DSE_JOURNAL environment variable — "{study}" and "{app}"
 * placeholders expand so one setting covers multi-app sweeps), every
 * detailed simulation result is appended to an append-only
 * checksummed journal as it completes, and construction replays an
 * existing journal into the memo cache. A killed campaign resumed
 * against the same journal re-simulates nothing, and replayed
 * results are bit-identical to freshly simulated ones (see
 * journal.hh and DESIGN.md, "Failure model & recovery").
 */
class StudyContext
{
  public:
    /**
     * @param kind which design space
     * @param app benchmark name (one of workload::benchmarkNames())
     * @param trace_length dynamic trace length (0 = library default)
     * @param journal_path write-ahead journal file; "" consults the
     *        DSE_JOURNAL environment variable (unset = no journal)
     */
    StudyContext(StudyKind kind, const std::string &app,
                 size_t trace_length = 0,
                 const std::string &journal_path = "");

    const ml::DesignSpace &space() const { return space_; }
    StudyKind kind() const { return kind_; }
    const std::string &app() const { return app_; }
    const workload::Trace &trace() const { return trace_; }

    /** Full detailed simulation of one design point (memoized). */
    const sim::SimResult &simulateFull(uint64_t index);

    /** IPC of one design point (memoized full simulation). */
    double simulateIpc(uint64_t index);

    /**
     * Simulate a batch of design points concurrently on the global
     * ThreadPool (duplicates and cache hits cost nothing extra).
     * @return the IPC of each input index, in input order
     */
    std::vector<double> simulateBatch(const std::vector<uint64_t> &indices);

    /** SimPoint-estimate analogue of simulateBatch (Section 5.3). */
    std::vector<double>
    simulateSimPointBatch(const std::vector<uint64_t> &indices);

    /** Machine configuration of a design point. */
    sim::MachineConfig config(uint64_t index) const;

    /// @name Remote-result injection (dse::remote::RemoteDispatcher).
    /// Simulation is a pure function of (trace, config), so a result
    /// computed by a worker with the same (study, app, trace length)
    /// identity is bit-identical to a local one; injecting it into the
    /// memo cache makes remote sourcing invisible to every consumer.
    /// Injected results are journaled (they are real results) but do
    /// NOT count toward simulationsExecuted() — that counter stays
    /// "work this process did".
    /// @{

    /** Merge a remotely computed detailed result into the memo cache.
     *  A concurrent local result for the same index wins harmlessly
     *  (the values are identical by purity). */
    void injectResult(uint64_t index, const sim::SimResult &result);

    /** Merge a remotely computed calibrated SimPoint IPC estimate. */
    void injectSimPointEstimate(uint64_t index, double ipc);

    /** True if a detailed result for @p index is memoized. */
    bool hasResult(uint64_t index) const;

    /** True if a SimPoint estimate for @p index is memoized. */
    bool hasSimPointEstimate(uint64_t index) const;

    /// @}

    /** Number of distinct detailed simulations performed so far
     *  (memoized results, including any replayed from a journal). */
    size_t simulationsRun() const;

    /** Detailed simulations actually *executed* by this context —
     *  excludes journal-replayed results, so a resumed study reports
     *  0 until it reaches a point its journal has not seen. */
    size_t simulationsExecuted() const
    {
        return executed_.load(std::memory_order_relaxed);
    }

    /** True if a write-ahead journal is attached. */
    bool journalActive() const { return journal_ != nullptr; }

    /** What construction replayed from the journal (zeros if none). */
    const SimJournal::ReplayStats &journalStats() const
    {
        return journalStats_;
    }

    /** Instructions per detailed simulation (trace length). */
    size_t instructionsPerSimulation() const { return trace_.size(); }

    /**
     * The application's SimPoint selection (computed once per
     * context, configuration-independent, as in the SimPoint tool).
     */
    const simpoint::SimPoints &simPoints();

    /**
     * SimPoint *estimate* of a design point's IPC: only the
     * representative intervals are simulated in detail (memoized).
     * This is the noisy-but-cheap signal the ANN+SimPoint study
     * trains on (Section 5.3).
     *
     * Estimates are calibrated once per application against a single
     * full simulation of a reference configuration, which removes
     * the constant bias a fixed representative-interval choice
     * carries on short traces. The calibration cost (one detailed
     * simulation) is amortized over the whole exploration.
     */
    double simulateSimPointIpc(uint64_t index);

    /** Detailed instructions per SimPoint estimate (including the
     *  half-interval detailed warm-up each representative pays). */
    size_t
    simPointInstructionsPerEstimate()
    {
        const auto &sp = simPoints();
        return sp.intervals.size() *
            (sp.intervalLength + sp.intervalLength / 2);
    }

  private:
    /** Mutex-sharded memoization map (values are never mutated after
     *  insertion, and unordered_map never invalidates references, so
     *  returned references stay valid under concurrent inserts). */
    template <typename V>
    struct CacheShard
    {
        mutable std::mutex mu;
        std::unordered_map<uint64_t, V> map;
    };
    static constexpr size_t kCacheShards = 16;

    template <typename V>
    static CacheShard<V> &
    shardFor(std::array<CacheShard<V>, kCacheShards> &shards,
             uint64_t index)
    {
        return shards[index % kCacheShards];
    }

    template <typename V>
    static const CacheShard<V> &
    shardFor(const std::array<CacheShard<V>, kCacheShards> &shards,
             uint64_t index)
    {
        return shards[index % kCacheShards];
    }

    /** Calibrate (once) and return the SimPoint IPC scale factor. */
    double simPointScale();

    StudyKind kind_;
    std::string app_;
    ml::DesignSpace space_;
    workload::Trace trace_;
    std::array<CacheShard<sim::SimResult>, kCacheShards> cache_;
    std::array<CacheShard<double>, kCacheShards> simPointCache_;
    std::mutex simPointMu_;  ///< guards simPoints_ / simPointScale_
    std::unique_ptr<simpoint::SimPoints> simPoints_;
    double simPointScale_ = 0.0;  ///< lazily calibrated; 0 = not yet
    std::unique_ptr<SimJournal> journal_;
    SimJournal::ReplayStats journalStats_;
    std::atomic<size_t> executed_{0};  ///< non-replayed simulations
};

/**
 * A random holdout of design points for measuring *true* model error,
 * disjoint from a set of excluded (training) indices.
 *
 * The paper measures error over every untrained point of the full
 * space; a uniform random holdout estimates the same mean/SD
 * unbiasedly at a fraction of the simulation cost (DESIGN.md,
 * substitution table). Pass n >= space size to get the full space.
 */
std::vector<uint64_t> holdoutIndices(const ml::DesignSpace &space,
                                     const std::vector<uint64_t> &excluded,
                                     size_t n, uint64_t seed);

/** True mean/SD of percentage error of a model over given points. */
struct TrueError
{
    double meanPct = 0.0;
    double sdPct = 0.0;
};

/**
 * Measure a trained ensemble against detailed simulation on the given
 * evaluation points (simulations are memoized in the context).
 */
TrueError measureTrueError(StudyContext &ctx, const ml::Ensemble &model,
                           const std::vector<uint64_t> &eval_points);

/**
 * Shared benchmark-harness scope knobs (read from the environment;
 * see DESIGN.md "Per-experiment index").
 */
struct BenchScope
{
    std::vector<std::string> apps;  ///< applications to run
    size_t evalPoints = 1000;       ///< holdout size (0 = full space)
    size_t traceLength = 0;         ///< 0 = library default
    double maxSamplePct = 4.5;      ///< learning-curve extent (% of space)
    size_t batch = 50;              ///< training-set increment
    size_t threads = 1;             ///< effective worker thread count

    /** Read DSE_APPS / DSE_EVAL_POINTS / DSE_THREADS / DSE_* with
     *  these defaults (threads resolves DSE_THREADS against the
     *  hardware, matching what the global ThreadPool will use). */
    static BenchScope fromEnv(const std::vector<std::string> &default_apps);
};

} // namespace study
} // namespace dse

#endif // DSE_STUDY_HARNESS_HH
