#include "study/harness.hh"

#include <algorithm>
#include <unordered_set>

#include "util/env.hh"
#include "util/rng.hh"
#include "util/stats.hh"
#include "workload/generator.hh"

namespace dse {
namespace study {

StudyContext::StudyContext(StudyKind kind, const std::string &app,
                           size_t trace_length)
    : kind_(kind), app_(app), space_(spaceFor(kind)),
      trace_(workload::generateBenchmarkTrace(app, trace_length))
{
}

const sim::SimResult &
StudyContext::simulateFull(uint64_t index)
{
    auto it = cache_.find(index);
    if (it != cache_.end())
        return it->second;

    sim::SimOptions opts;
    opts.warmCaches = true;
    auto result = sim::simulate(trace_, config(index), opts);
    return cache_.emplace(index, result).first->second;
}

double
StudyContext::simulateIpc(uint64_t index)
{
    return simulateFull(index).ipc;
}

sim::MachineConfig
StudyContext::config(uint64_t index) const
{
    return configFor(kind_, space_, space_.levels(index));
}

const simpoint::SimPoints &
StudyContext::simPoints()
{
    if (!simPoints_) {
        simpoint::SimPointOptions opts;
        // Scale the interval to the trace (the paper scales 100M ->
        // 10M for MinneSPEC): 16 intervals per trace. Shorter
        // intervals are cheaper but their content stops being
        // representative at this trace scale (EXPERIMENTS.md,
        // "SimPoint scale").
        opts.intervalLength = std::max<size_t>(2048, trace_.size() / 16);
        opts.maxK = 6;
        simPoints_ = std::make_unique<simpoint::SimPoints>(
            simpoint::pickSimPoints(trace_, opts));
    }
    return *simPoints_;
}

double
StudyContext::simulateSimPointIpc(uint64_t index)
{
    if (simPointScale_ == 0.0) {
        // One-time calibration against the space's middle point.
        const uint64_t ref = space_.size() / 2;
        const double full = simulateFull(ref).ipc;
        const double raw =
            simpoint::estimateIpc(trace_, config(ref), simPoints()).ipc;
        simPointScale_ = raw > 0.0 ? full / raw : 1.0;
    }
    auto it = simPointCache_.find(index);
    if (it != simPointCache_.end())
        return it->second;
    const auto est = simpoint::estimateIpc(trace_, config(index),
                                           simPoints());
    const double calibrated = est.ipc * simPointScale_;
    simPointCache_.emplace(index, calibrated);
    return calibrated;
}

std::vector<uint64_t>
holdoutIndices(const ml::DesignSpace &space,
               const std::vector<uint64_t> &excluded, size_t n,
               uint64_t seed)
{
    const uint64_t space_size = space.size();
    std::unordered_set<uint64_t> banned(excluded.begin(), excluded.end());

    if (n == 0 || n + banned.size() >= space_size) {
        // Full-space evaluation: everything not excluded.
        std::vector<uint64_t> all;
        all.reserve(space_size - banned.size());
        for (uint64_t i = 0; i < space_size; ++i) {
            if (!banned.count(i))
                all.push_back(i);
        }
        return all;
    }

    Rng rng(seed);
    std::unordered_set<uint64_t> chosen;
    std::vector<uint64_t> out;
    out.reserve(n);
    while (out.size() < n) {
        const uint64_t idx = rng.below(space_size);
        if (banned.count(idx) || chosen.count(idx))
            continue;
        chosen.insert(idx);
        out.push_back(idx);
    }
    return out;
}

TrueError
measureTrueError(StudyContext &ctx, const ml::Ensemble &model,
                 const std::vector<uint64_t> &eval_points)
{
    std::vector<double> errors;
    errors.reserve(eval_points.size());
    for (uint64_t idx : eval_points) {
        const double actual = ctx.simulateIpc(idx);
        const double predicted =
            model.predict(ctx.space().encodeIndex(idx));
        errors.push_back(percentageError(predicted, actual));
    }
    TrueError out;
    out.meanPct = mean(errors);
    out.sdPct = stddev(errors);
    return out;
}

BenchScope
BenchScope::fromEnv(const std::vector<std::string> &default_apps)
{
    BenchScope scope;
    scope.apps = envList("DSE_APPS", default_apps);
    scope.evalPoints = static_cast<size_t>(
        envInt("DSE_EVAL_POINTS", 1000));
    if (envBool("DSE_FULL_SPACE", false))
        scope.evalPoints = 0;
    scope.traceLength = static_cast<size_t>(envInt("DSE_TRACE_LEN", 0));
    scope.maxSamplePct = envDouble("DSE_MAX_SAMPLE_PCT", 4.5);
    scope.batch = static_cast<size_t>(envInt("DSE_BATCH", 50));
    return scope;
}

} // namespace study
} // namespace dse
