#include "study/harness.hh"

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <unordered_set>

#include "util/env.hh"
#include "util/fault.hh"
#include "util/metrics.hh"
#include "util/rng.hh"
#include "util/stats.hh"
#include "util/thread_pool.hh"
#include "util/trace.hh"
#include "workload/generator.hh"

namespace dse {
namespace study {

namespace {

/** Simulation-stage metrics (DESIGN.md "Observability"): every
 *  simulateFull call is a request that resolves as either a memo hit
 *  or an executed simulation, so sim.memo_hits + sim.executed ==
 *  sim.requests whenever no fault injection interferes. */
struct SimMetrics
{
    obs::CounterId requests, memoHits, executed;
    obs::CounterId spRequests, spMemoHits, spEstimates;
    obs::HistogramId wallNs, spWallNs;

    static const SimMetrics &
    get()
    {
        static const SimMetrics m = [] {
            auto &r = obs::MetricsRegistry::global();
            SimMetrics s;
            s.requests = r.counter("sim.requests");
            s.memoHits = r.counter("sim.memo_hits");
            s.executed = r.counter("sim.executed");
            s.spRequests = r.counter("sim.simpoint_requests");
            s.spMemoHits = r.counter("sim.simpoint_memo_hits");
            s.spEstimates = r.counter("sim.simpoint_estimates");
            s.wallNs = r.histogram("sim.wall_ns");
            s.spWallNs = r.histogram("sim.simpoint_wall_ns");
            return s;
        }();
        return m;
    }
};

/** Resolve the journal path: explicit argument wins, else DSE_JOURNAL
 *  with "{study}"/"{app}" placeholders expanded (so one environment
 *  setting journals a multi-app sweep into per-app files). */
std::string
resolveJournalPath(const std::string &explicit_path, StudyKind kind,
                   const std::string &app)
{
    std::string path = explicit_path;
    if (path.empty()) {
        const char *env = std::getenv("DSE_JOURNAL");
        if (!env || !*env)
            return "";
        path = env;
    }
    const auto expand = [&path](const std::string &key,
                                const std::string &value) {
        for (size_t at; (at = path.find(key)) != std::string::npos;)
            path.replace(at, key.size(), value);
    };
    expand("{study}", studyName(kind));
    expand("{app}", app);
    return path;
}

} // namespace

StudyContext::StudyContext(StudyKind kind, const std::string &app,
                           size_t trace_length,
                           const std::string &journal_path)
    : kind_(kind), app_(app), space_(spaceFor(kind)),
      trace_(workload::generateBenchmarkTrace(app, trace_length))
{
    const std::string path = resolveJournalPath(journal_path, kind, app);
    if (path.empty())
        return;
    journal_ = std::make_unique<SimJournal>(path, kind_, app_,
                                            trace_.size());
    journalStats_ =
        journal_->replay([this](uint64_t index,
                                const sim::SimResult &result) {
            auto &shard = shardFor(cache_, index);
            std::lock_guard<std::mutex> lock(shard.mu);
            shard.map.emplace(index, result);
        });
}

const sim::SimResult &
StudyContext::simulateFull(uint64_t index)
{
    const auto &sm = SimMetrics::get();
    auto &registry = obs::MetricsRegistry::global();
    registry.add(sm.requests);
    auto &shard = shardFor(cache_, index);
    {
        std::lock_guard<std::mutex> lock(shard.mu);
        auto it = shard.map.find(index);
        if (it != shard.map.end()) {
            registry.add(sm.memoHits);
            return it->second;
        }
    }

    if (util::FaultInjector::global().shouldFail("sim", index)) {
        throw std::runtime_error(
            "injected fault: simulateFull(" + std::to_string(index) +
            ")");
    }

    // Simulate outside the lock: concurrent callers may duplicate the
    // work of a point briefly in flight, but the result is a pure
    // function of the index, so whichever insert wins is identical.
    sim::SimOptions opts;
    opts.warmCaches = true;
    std::optional<sim::SimResult> result;
    {
        obs::TraceScope span("sim", sm.wallNs);
        result = sim::simulate(trace_, config(index), opts);
    }
    registry.add(sm.executed);
    executed_.fetch_add(1, std::memory_order_relaxed);

    std::lock_guard<std::mutex> lock(shard.mu);
    auto [it, inserted] = shard.map.emplace(index, std::move(*result));
    // Journal only the winning insert (a lost duplicate is identical
    // anyway), under the shard lock so the record matches the cached
    // value and appends for one shard stay ordered.
    if (inserted && journal_)
        journal_->append(index, it->second);
    return it->second;
}

double
StudyContext::simulateIpc(uint64_t index)
{
    return simulateFull(index).ipc;
}

size_t
StudyContext::simulationsRun() const
{
    size_t n = 0;
    for (const auto &shard : cache_) {
        std::lock_guard<std::mutex> lock(shard.mu);
        n += shard.map.size();
    }
    return n;
}

std::vector<double>
StudyContext::simulateBatch(const std::vector<uint64_t> &indices)
{
    // Deduplicate and drop cache hits so pool workers only run
    // distinct missing simulations.
    std::vector<uint64_t> todo;
    {
        std::unordered_set<uint64_t> seen;
        for (uint64_t idx : indices) {
            if (!seen.insert(idx).second)
                continue;
            auto &shard = shardFor(cache_, idx);
            std::lock_guard<std::mutex> lock(shard.mu);
            if (!shard.map.count(idx))
                todo.push_back(idx);
        }
    }
    util::ThreadPool::global().parallelFor(
        0, todo.size(), [&](size_t i) { simulateFull(todo[i]); });

    std::vector<double> out;
    out.reserve(indices.size());
    for (uint64_t idx : indices)
        out.push_back(simulateFull(idx).ipc);
    return out;
}

std::vector<double>
StudyContext::simulateSimPointBatch(const std::vector<uint64_t> &indices)
{
    // Resolve the SimPoint selection and calibration up front so the
    // parallel region only reads them.
    simPoints();
    simPointScale();

    std::vector<uint64_t> todo;
    {
        std::unordered_set<uint64_t> seen;
        for (uint64_t idx : indices) {
            if (!seen.insert(idx).second)
                continue;
            auto &shard = shardFor(simPointCache_, idx);
            std::lock_guard<std::mutex> lock(shard.mu);
            if (!shard.map.count(idx))
                todo.push_back(idx);
        }
    }
    util::ThreadPool::global().parallelFor(
        0, todo.size(),
        [&](size_t i) { simulateSimPointIpc(todo[i]); });

    std::vector<double> out;
    out.reserve(indices.size());
    for (uint64_t idx : indices)
        out.push_back(simulateSimPointIpc(idx));
    return out;
}

sim::MachineConfig
StudyContext::config(uint64_t index) const
{
    return configFor(kind_, space_, space_.levels(index));
}

void
StudyContext::injectResult(uint64_t index, const sim::SimResult &result)
{
    auto &shard = shardFor(cache_, index);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto [it, inserted] = shard.map.emplace(index, result);
    // Journal the winning insert exactly like a local simulation —
    // the journal records results, not where they were computed.
    if (inserted && journal_)
        journal_->append(index, it->second);
}

void
StudyContext::injectSimPointEstimate(uint64_t index, double ipc)
{
    auto &shard = shardFor(simPointCache_, index);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.emplace(index, ipc);
}

bool
StudyContext::hasResult(uint64_t index) const
{
    const auto &shard = shardFor(cache_, index);
    std::lock_guard<std::mutex> lock(shard.mu);
    return shard.map.count(index) != 0;
}

bool
StudyContext::hasSimPointEstimate(uint64_t index) const
{
    const auto &shard = shardFor(simPointCache_, index);
    std::lock_guard<std::mutex> lock(shard.mu);
    return shard.map.count(index) != 0;
}

const simpoint::SimPoints &
StudyContext::simPoints()
{
    std::lock_guard<std::mutex> lock(simPointMu_);
    if (!simPoints_) {
        simpoint::SimPointOptions opts;
        // Scale the interval to the trace (the paper scales 100M ->
        // 10M for MinneSPEC): 16 intervals per trace. Shorter
        // intervals are cheaper but their content stops being
        // representative at this trace scale (EXPERIMENTS.md,
        // "SimPoint scale").
        opts.intervalLength = std::max<size_t>(2048, trace_.size() / 16);
        opts.maxK = 6;
        simPoints_ = std::make_unique<simpoint::SimPoints>(
            simpoint::pickSimPoints(trace_, opts));
    }
    return *simPoints_;
}

double
StudyContext::simPointScale()
{
    {
        std::lock_guard<std::mutex> lock(simPointMu_);
        if (simPointScale_ != 0.0)
            return simPointScale_;
    }
    // One-time calibration against the space's middle point, computed
    // outside the lock (both inputs are deterministic, so concurrent
    // calibrations agree and the first store wins harmlessly).
    const uint64_t ref = space_.size() / 2;
    const double full = simulateFull(ref).ipc;
    const double raw =
        simpoint::estimateIpc(trace_, config(ref), simPoints()).ipc;
    const double scale = raw > 0.0 ? full / raw : 1.0;

    std::lock_guard<std::mutex> lock(simPointMu_);
    if (simPointScale_ == 0.0)
        simPointScale_ = scale;
    return simPointScale_;
}

double
StudyContext::simulateSimPointIpc(uint64_t index)
{
    const auto &sm = SimMetrics::get();
    auto &registry = obs::MetricsRegistry::global();
    registry.add(sm.spRequests);
    const double scale = simPointScale();
    auto &shard = shardFor(simPointCache_, index);
    {
        std::lock_guard<std::mutex> lock(shard.mu);
        auto it = shard.map.find(index);
        if (it != shard.map.end()) {
            registry.add(sm.spMemoHits);
            return it->second;
        }
    }
    std::optional<simpoint::SimPointEstimate> est;
    {
        obs::TraceScope span("simpoint", sm.spWallNs);
        est = simpoint::estimateIpc(trace_, config(index), simPoints());
    }
    registry.add(sm.spEstimates);
    const double calibrated = est->ipc * scale;
    std::lock_guard<std::mutex> lock(shard.mu);
    return shard.map.emplace(index, calibrated).first->second;
}

std::vector<uint64_t>
holdoutIndices(const ml::DesignSpace &space,
               const std::vector<uint64_t> &excluded, size_t n,
               uint64_t seed)
{
    const uint64_t space_size = space.size();
    std::unordered_set<uint64_t> banned(excluded.begin(), excluded.end());

    if (n == 0 || n + banned.size() >= space_size) {
        // Full-space evaluation: everything not excluded.
        std::vector<uint64_t> all;
        all.reserve(space_size - banned.size());
        for (uint64_t i = 0; i < space_size; ++i) {
            if (!banned.count(i))
                all.push_back(i);
        }
        return all;
    }

    Rng rng(seed);
    std::unordered_set<uint64_t> chosen;
    std::vector<uint64_t> out;
    out.reserve(n);
    while (out.size() < n) {
        const uint64_t idx = rng.below(space_size);
        if (banned.count(idx) || chosen.count(idx))
            continue;
        chosen.insert(idx);
        out.push_back(idx);
    }
    return out;
}

TrueError
measureTrueError(StudyContext &ctx, const ml::Ensemble &model,
                 const std::vector<uint64_t> &eval_points)
{
    // Simulate the holdout concurrently, predict it through the
    // batched ensemble path (itself parallel and thread-count
    // invariant), then score over a fixed order.
    const auto actual = ctx.simulateBatch(eval_points);
    const auto predicted = model.predictIndices(ctx.space(), eval_points);
    std::vector<double> errors(eval_points.size());
    for (size_t i = 0; i < eval_points.size(); ++i)
        errors[i] = percentageError(predicted[i], actual[i]);
    TrueError out;
    out.meanPct = mean(errors);
    out.sdPct = stddev(errors);
    return out;
}

BenchScope
BenchScope::fromEnv(const std::vector<std::string> &default_apps)
{
    BenchScope scope;
    scope.apps = envList("DSE_APPS", default_apps);
    scope.evalPoints = static_cast<size_t>(
        envInt("DSE_EVAL_POINTS", 1000));
    if (envBool("DSE_FULL_SPACE", false))
        scope.evalPoints = 0;
    scope.traceLength = static_cast<size_t>(envInt("DSE_TRACE_LEN", 0));
    scope.maxSamplePct = envDouble("DSE_MAX_SAMPLE_PCT", 4.5);
    scope.batch = static_cast<size_t>(envInt("DSE_BATCH", 50));
    scope.threads = util::ThreadPool::configuredThreads();
    return scope;
}

} // namespace study
} // namespace dse
