/**
 * @file
 * The paper's two sensitivity studies (Chapter 4): the memory-system
 * design space (Table 4.1, 23,040 points) and the processor design
 * space (Table 4.2, 20,736 points), plus the mapping from a design
 * point to a full simulator configuration (including the fixed and
 * dependent parameters on the right-hand sides of the tables).
 */

#ifndef DSE_STUDY_SPACES_HH
#define DSE_STUDY_SPACES_HH

#include <vector>

#include "ml/encoding.hh"
#include "sim/config.hh"

namespace dse {
namespace study {

/** Which of the paper's two studies. */
enum class StudyKind { MemorySystem, Processor };

/** Human-readable study name. */
const char *studyName(StudyKind kind);

/**
 * Memory-system design space (Table 4.1). Varies L1D geometry and
 * write policy, L2 geometry, L2 bus width, and FSB frequency:
 * 4*2*4*2 * 4*2*5 * 3*3 = 23,040 points.
 */
ml::DesignSpace memorySystemSpace();

/**
 * Processor design space (Table 4.2). Varies width, frequency, branch
 * structures, functional units, ROB/register file/LSQ, and cache
 * sizes: 20,736 points. The register file is a two-way selector whose
 * concrete size depends on the ROB size, exactly as the paper couples
 * them ("2 choices per ROB size").
 */
ml::DesignSpace processorSpace();

/**
 * Resolve a memory-system design point to a machine configuration
 * (fixed core: 4 GHz, 4-wide, 128-entry ROB, 32 KB/2-cycle L1I,
 * tournament predictor; Table 4.1 right side). Derived cache
 * latencies are filled via the CACTI model.
 */
sim::MachineConfig memorySystemConfig(const ml::DesignSpace &space,
                                      const std::vector<int> &levels);

/**
 * Resolve a processor design point to a machine configuration
 * (dependent parameters: L1/L2 associativities tied to sizes,
 * register file tied to ROB, misprediction penalty tied to frequency;
 * Table 4.2 right side).
 */
sim::MachineConfig processorConfig(const ml::DesignSpace &space,
                                   const std::vector<int> &levels);

/** Space for a study kind. */
ml::DesignSpace spaceFor(StudyKind kind);

/** Config mapping for a study kind. */
sim::MachineConfig configFor(StudyKind kind, const ml::DesignSpace &space,
                             const std::vector<int> &levels);

} // namespace study
} // namespace dse

#endif // DSE_STUDY_SPACES_HH
