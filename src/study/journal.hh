/**
 * @file
 * Crash-safe write-ahead journal of simulation results.
 *
 * A long campaign runs thousands of cycle-accurate simulations; a
 * killed process must not throw them away. The journal is an
 * append-only binary file of (design-point index -> SimResult)
 * records that StudyContext writes as each simulation completes and
 * replays into its memo cache on construction, so a resumed study
 * re-simulates nothing it already paid for. Replay is bit-identical
 * to a fresh run: records carry the exact doubles the simulator
 * produced.
 *
 * Format (all integers little-endian, the only byte order this
 * library targets):
 *
 *   header   "DSEJRNL1" | u32 version | u32 kind | u64 traceLen
 *            | u32 appLen | app bytes | u64 FNV-1a over the above
 *   record   u64 index | SimResult fields in declaration order
 *            (15 x 8 bytes) | u64 FNV-1a over the previous 128 bytes
 *
 * Records are fixed-size (136 bytes), so replay can resynchronize
 * past a checksum-corrupt record (the record is rejected, later ones
 * still load) and a truncated/torn tail is recognized by a short
 * read and truncated away before the next append. The header binds
 * the journal to one (study, app, trace length); replaying a journal
 * into a different study is an error, not silent corruption.
 */

#ifndef DSE_STUDY_JOURNAL_HH
#define DSE_STUDY_JOURNAL_HH

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "sim/config.hh"
#include "study/spaces.hh"

namespace dse {
namespace study {

class SimJournal
{
  public:
    /** What replay() recovered from an existing journal file. */
    struct ReplayStats
    {
        size_t replayed = 0;  ///< intact records delivered
        size_t rejected = 0;  ///< checksum-corrupt records skipped
        bool tornTail = false;  ///< trailing partial record dropped
    };

    /**
     * Open (or create) the journal at @p path for the given study
     * identity. An existing file must carry a matching header.
     * @throws std::runtime_error on I/O failure, a foreign file, or
     *         an identity mismatch
     */
    SimJournal(std::string path, StudyKind kind, const std::string &app,
               uint64_t trace_len);
    ~SimJournal();

    SimJournal(const SimJournal &) = delete;
    SimJournal &operator=(const SimJournal &) = delete;

    /**
     * Replay every intact record to @p fn, then truncate any torn
     * tail so subsequent appends extend a valid file. Must be called
     * exactly once, before the first append().
     */
    ReplayStats
    replay(const std::function<void(uint64_t, const sim::SimResult &)> &fn);

    /**
     * Append one record and flush it to stable storage (write +
     * fsync; a crash after append() returns cannot lose the record).
     * Thread-safe.
     */
    void append(uint64_t index, const sim::SimResult &r);

    const std::string &path() const { return path_; }

    /** Fixed on-disk record size in bytes (tests craft torn tails). */
    static constexpr size_t kRecordSize = 136;

  private:
    std::string path_;
    int fd_ = -1;
    std::mutex appendMu_;
    bool replayed_ = false;
};

} // namespace study
} // namespace dse

#endif // DSE_STUDY_JOURNAL_HH
