#include "sim/cache.hh"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace dse {
namespace sim {

namespace {

int
log2Exact(uint64_t v)
{
    if (v == 0 || (v & (v - 1)) != 0)
        throw std::invalid_argument("cache geometry must be a power of two");
    return std::countr_zero(v);
}

} // namespace

Cache::Cache(const CacheConfig &cfg)
    : cfg_(cfg)
{
    if (cfg.sizeKB <= 0 || cfg.blockBytes <= 0 || cfg.assoc <= 0)
        throw std::invalid_argument("cache geometry must be positive");
    const uint64_t bytes = static_cast<uint64_t>(cfg.sizeKB) * 1024;
    const uint64_t block = static_cast<uint64_t>(cfg.blockBytes);
    if (bytes % (block * cfg.assoc) != 0)
        throw std::invalid_argument("cache size not divisible by way size");
    blockShift_ = log2Exact(block);
    numSets_ = bytes / (block * cfg.assoc);
    log2Exact(numSets_);  // validate power of two
    lines_.resize(numSets_ * cfg.assoc);
}

CacheAccessResult
Cache::access(uint64_t addr, bool is_write, bool allocate)
{
    CacheAccessResult result;
    ++accesses_;
    ++clock_;

    const uint64_t block = blockAddr(addr);
    const size_t set = setIndex(block);
    Line *base = &lines_[set * cfg_.assoc];

    // Hit path.
    for (int w = 0; w < cfg_.assoc; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == block) {
            line.lastUse = clock_;
            if (is_write && cfg_.writeBack)
                line.dirty = true;
            result.hit = true;
            return result;
        }
    }

    ++misses_;
    if (!allocate)
        return result;

    // Choose the LRU victim.
    Line *victim = base;
    for (int w = 1; w < cfg_.assoc; ++w) {
        Line &line = base[w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lastUse < victim->lastUse)
            victim = &line;
    }

    if (victim->valid && victim->dirty) {
        result.writeback = true;
        result.victimAddr = victim->tag << blockShift_;
        ++writebacks_;
    }

    victim->valid = true;
    victim->tag = block;
    victim->lastUse = clock_;
    victim->dirty = is_write && cfg_.writeBack;
    return result;
}

bool
Cache::contains(uint64_t addr) const
{
    const uint64_t block = blockAddr(addr);
    const size_t set = setIndex(block);
    const Line *base = &lines_[set * cfg_.assoc];
    for (int w = 0; w < cfg_.assoc; ++w) {
        if (base[w].valid && base[w].tag == block)
            return true;
    }
    return false;
}

void
Cache::resetStats()
{
    accesses_ = 0;
    misses_ = 0;
    writebacks_ = 0;
}

void
Cache::reset()
{
    for (auto &line : lines_)
        line = Line{};
    clock_ = 0;
    accesses_ = 0;
    misses_ = 0;
    writebacks_ = 0;
}

} // namespace sim
} // namespace dse
