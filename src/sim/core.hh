/**
 * @file
 * Trace-driven cycle-level out-of-order core model.
 *
 * Models the mechanisms the two design-space studies exercise:
 * fetch/issue/commit width, I-cache-limited fetch, tournament branch
 * prediction with BTB and a frequency-dependent misprediction
 * penalty, ROB/LSQ/physical-register/in-flight-branch occupancy
 * limits, per-class functional-unit issue limits, dependence-driven
 * out-of-order issue, and a fully timed memory hierarchy with bus
 * contention (MemorySystem).
 *
 * The simulator can run a sub-range of the trace (an interval) with
 * cold or functionally warmed structures — the substrate SimPoint
 * needs for partial simulation.
 */

#ifndef DSE_SIM_CORE_HH
#define DSE_SIM_CORE_HH

#include <cstddef>
#include <limits>

#include "sim/config.hh"
#include "workload/trace.hh"

namespace dse {
namespace sim {

/** What part of the trace to run and how to prepare state. */
struct SimOptions
{
    size_t begin = 0;  ///< first instruction to simulate
    size_t end = std::numeric_limits<size_t>::max();  ///< one past last
    /**
     * Instructions before `begin` replayed functionally (caches,
     * predictor — no timing) to warm state. 0 = cold start.
     */
    size_t warmupInstructions = 0;
    /**
     * Instructions before `begin` simulated *in detail* but excluded
     * from the measurement (SMARTS-style detailed warming): fills
     * the pipeline/ROB/MSHRs so a short measured interval reflects
     * steady state instead of ramp-up. Costs simulation time
     * proportional to the prefix.
     */
    size_t detailedWarmup = 0;
    /**
     * Replay the whole trace functionally before the timed run, so
     * measurements reflect steady state rather than compulsory
     * misses. The studies enable this for full runs *and* for
     * SimPoint interval runs (so both measure the same steady-state
     * machine): the paper's MinneSPEC runs are long enough that
     * cold-start effects are negligible, which a short synthetic
     * trace must emulate explicitly.
     */
    bool warmCaches = false;
};

/**
 * Simulate (part of) a trace on a machine configuration.
 *
 * The configuration's derived cache latencies must already be filled
 * (CactiModel::applyLatencies); study code does this when mapping
 * design points to configurations.
 *
 * @return cycle and event counts plus IPC over the simulated range
 */
SimResult simulate(const workload::Trace &trace, const MachineConfig &cfg,
                   const SimOptions &opts = {});

} // namespace sim
} // namespace dse

#endif // DSE_SIM_CORE_HH
