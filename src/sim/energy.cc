#include "sim/energy.hh"

#include <cmath>

namespace dse {
namespace sim {

namespace {

/// 90 nm-flavoured constants (orders of magnitude, not sign-off
/// numbers): dynamic energy per event in nanojoules.
constexpr double kCorePerInstrNj = 0.35;     ///< base per-instruction
constexpr double kWidthPerInstrNj = 0.06;    ///< per extra issue slot
constexpr double kRobPerInstrNjPer64 = 0.04; ///< window bookkeeping
constexpr double kDramPerAccessNj = 12.0;
/// Leakage power in mW per KB of on-chip SRAM.
constexpr double kLeakMwPerKb = 0.02;
/// Core leakage floor in mW, plus per-issue-slot adder.
constexpr double kCoreLeakMw = 60.0;
constexpr double kCoreLeakPerSlotMw = 18.0;

/** CACTI-flavoured dynamic energy per cache access (nJ). */
double
cacheAccessNj(const CacheConfig &cache)
{
    // Energy grows with capacity (bit/word lines) and associativity
    // (parallel way reads), mildly with block size.
    return 0.05 + 0.012 * std::log2(static_cast<double>(cache.sizeKB)) +
        0.008 * cache.assoc + 0.004 * (cache.blockBytes / 32.0);
}

} // namespace

EnergyResult
computeEnergy(const MachineConfig &cfg, const SimResult &result)
{
    EnergyResult e;
    const double instr = static_cast<double>(result.instructions);

    // Core dynamic: scales with machine width and window size.
    const double per_instr = kCorePerInstrNj +
        kWidthPerInstrNj * (cfg.issueWidth - 4) +
        kRobPerInstrNjPer64 * (cfg.robSize / 64.0);
    e.coreDynamicNj = per_instr * instr;

    // Cache dynamic: every access costs the level's access energy;
    // misses also pay the next level's fill (already counted as L2
    // accesses) plus a transfer adder per block.
    const double l1d_nj = cacheAccessNj(cfg.l1d);
    const double l1i_nj = cacheAccessNj(cfg.l1i);
    const double l2_nj = cacheAccessNj(cfg.l2);
    e.cacheDynamicNj =
        l1d_nj * static_cast<double>(result.l1dAccesses) +
        l1i_nj * static_cast<double>(result.l1iAccesses) +
        l2_nj * static_cast<double>(result.l2Accesses) +
        0.02 * (cfg.l1d.blockBytes / 32.0) *
            static_cast<double>(result.l1dMisses);

    // DRAM dynamic.
    e.dramDynamicNj =
        kDramPerAccessNj * static_cast<double>(result.l2Misses);

    // Leakage: SRAM area plus the core, integrated over runtime.
    const double sram_kb = static_cast<double>(
        cfg.l1d.sizeKB + cfg.l1i.sizeKB + cfg.l2.sizeKB);
    const double leak_mw = kCoreLeakMw +
        kCoreLeakPerSlotMw * cfg.issueWidth + kLeakMwPerKb * sram_kb;
    const double seconds = static_cast<double>(result.cycles) /
        (cfg.freqGHz * 1e9);
    e.leakageNj = leak_mw * 1e-3 * seconds * 1e9;

    e.edp = e.totalNj() * seconds;
    return e;
}

} // namespace sim
} // namespace dse
