#include "sim/branch.hh"

#include <bit>
#include <stdexcept>

namespace dse {
namespace sim {

namespace {

void
saturatingUpdate(uint8_t &counter, bool up)
{
    if (up) {
        if (counter < 3)
            ++counter;
    } else {
        if (counter > 0)
            --counter;
    }
}

} // namespace

TournamentPredictor::TournamentPredictor(int entries)
    : entries_(entries)
{
    if (entries <= 0 ||
        (static_cast<unsigned>(entries) &
         (static_cast<unsigned>(entries) - 1)) != 0) {
        throw std::invalid_argument("predictor entries must be a power of 2");
    }
    mask_ = static_cast<uint32_t>(entries - 1);
    historyBits_ = static_cast<uint32_t>(
        std::countr_zero(static_cast<unsigned>(entries)));
    localHistory_.assign(entries_, 0);
    localCounters_.assign(entries_, 1);  // weakly not-taken
    globalCounters_.assign(entries_, 1);
    chooser_.assign(entries_, 2);        // weakly prefer global
}

size_t
TournamentPredictor::localIndex(uint32_t pc) const
{
    // Per-branch history register selected by PC, its contents index
    // the local pattern table.
    const uint32_t hist_reg = (pc >> 2) & mask_;
    return (localHistory_[hist_reg] ^ (pc >> 2)) & mask_;
}

size_t
TournamentPredictor::globalIndex() const
{
    return globalHistory_ & mask_;
}

size_t
TournamentPredictor::chooserIndex(uint32_t pc) const
{
    return (globalHistory_ ^ (pc >> 4)) & mask_;
}

bool
TournamentPredictor::predict(uint32_t pc) const
{
    const bool local_pred = localCounters_[localIndex(pc)] >= 2;
    const bool global_pred =
        globalCounters_[(globalIndex() ^ (pc >> 2)) & mask_] >= 2;
    const bool use_global = chooser_[chooserIndex(pc)] >= 2;
    return use_global ? global_pred : local_pred;
}

void
TournamentPredictor::update(uint32_t pc, bool taken)
{
    const size_t li = localIndex(pc);
    const size_t gi = (globalIndex() ^ (pc >> 2)) & mask_;
    const size_t ci = chooserIndex(pc);

    const bool local_pred = localCounters_[li] >= 2;
    const bool global_pred = globalCounters_[gi] >= 2;

    // The chooser trains toward whichever component was right when
    // they disagree.
    if (local_pred != global_pred)
        saturatingUpdate(chooser_[ci], global_pred == taken);

    saturatingUpdate(localCounters_[li], taken);
    saturatingUpdate(globalCounters_[gi], taken);

    const uint32_t hist_reg = (pc >> 2) & mask_;
    localHistory_[hist_reg] = static_cast<uint16_t>(
        ((localHistory_[hist_reg] << 1) | (taken ? 1 : 0)) & mask_);
    globalHistory_ = ((globalHistory_ << 1) | (taken ? 1 : 0)) &
        ((1u << historyBits_) - 1);
}

void
TournamentPredictor::reset()
{
    globalHistory_ = 0;
    localHistory_.assign(entries_, 0);
    localCounters_.assign(entries_, 1);
    globalCounters_.assign(entries_, 1);
    chooser_.assign(entries_, 2);
}

BranchTargetBuffer::BranchTargetBuffer(int sets)
    : sets_(sets)
{
    if (sets <= 0 ||
        (static_cast<unsigned>(sets) &
         (static_cast<unsigned>(sets) - 1)) != 0) {
        throw std::invalid_argument("BTB sets must be a power of 2");
    }
    entries_.assign(static_cast<size_t>(sets_) * 2, Entry{});
}

bool
BranchTargetBuffer::lookup(uint32_t pc)
{
    ++clock_;
    const size_t set = (pc >> 2) & static_cast<uint32_t>(sets_ - 1);
    Entry *base = &entries_[set * 2];
    for (int w = 0; w < 2; ++w) {
        if (base[w].valid && base[w].tag == pc) {
            base[w].lastUse = clock_;
            return true;
        }
    }
    return false;
}

void
BranchTargetBuffer::insert(uint32_t pc)
{
    ++clock_;
    const size_t set = (pc >> 2) & static_cast<uint32_t>(sets_ - 1);
    Entry *base = &entries_[set * 2];
    for (int w = 0; w < 2; ++w) {
        if (base[w].valid && base[w].tag == pc) {
            base[w].lastUse = clock_;
            return;
        }
    }
    Entry *victim = !base[0].valid ? &base[0]
        : !base[1].valid ? &base[1]
        : base[0].lastUse <= base[1].lastUse ? &base[0] : &base[1];
    victim->valid = true;
    victim->tag = pc;
    victim->lastUse = clock_;
}

void
BranchTargetBuffer::reset()
{
    clock_ = 0;
    for (auto &e : entries_)
        e = Entry{};
}

} // namespace sim
} // namespace dse
