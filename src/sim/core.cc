#include "sim/core.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <vector>

#include "sim/branch.hh"
#include "sim/memsys.hh"

namespace dse {
namespace sim {

namespace {

using workload::OpClass;
using workload::Trace;
using workload::TraceOp;

/** Intrinsic execution latencies (cycles) per class. */
int
execLatency(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu: return 1;
      case OpClass::IntMul: return 3;
      case OpClass::FpAlu: return 2;
      case OpClass::FpMul: return 4;
      case OpClass::Branch: return 1;
      case OpClass::Load: return 0;   // memory system supplies timing
      case OpClass::Store: return 1;
    }
    return 1;
}

constexpr uint64_t kNotDone = ~0ull;
/// ROB ring capacity; must be a power of two exceeding the largest
/// ROB in any study so each in-flight trace index maps to its own slot.
constexpr size_t kRobRing = 256;
constexpr size_t kRobMask = kRobRing - 1;
/// Granularity (log2 bytes) of load/store disambiguation.
constexpr int kDisambiguationShift = 3;

/** Per-ROB-entry bookkeeping. */
struct RobEntry
{
    uint32_t idx = 0;          ///< absolute trace index
    uint64_t doneAt = kNotDone;
    OpClass cls = OpClass::IntAlu;
    bool fpDest = false;
    bool hasDest = false;
    bool issued = false;
    bool mispredicted = false;
};

/**
 * The core pipeline state machine; one instance per simulate() call.
 */
class Pipeline
{
  public:
    Pipeline(const Trace &trace, const MachineConfig &cfg)
        : trace_(trace), cfg_(cfg), mem_(cfg),
          predictor_(cfg.bpEntries), btb_(cfg.btbSets)
    {
        if (static_cast<size_t>(cfg.robSize) >= kRobRing)
            throw std::invalid_argument("ROB too large for ROB ring");
        rob_.resize(kRobRing);
        pending_.reserve(static_cast<size_t>(cfg.robSize));
    }

    SimResult
    run(const SimOptions &opts)
    {
        const size_t end = std::min(opts.end, trace_.ops.size());
        const size_t begin = std::min(opts.begin, end);
        // Detailed warming: start simulating earlier, measure later.
        const size_t detail_begin = begin > opts.detailedWarmup
            ? begin - opts.detailedWarmup : 0;
        const size_t skip = begin - detail_begin;

        if (opts.warmCaches)
            warmup(0, trace_.ops.size());
        else if (opts.warmupInstructions > 0)
            warmup(detail_begin > opts.warmupInstructions
                       ? detail_begin - opts.warmupInstructions : 0,
                   detail_begin);
        mem_.resetStats();

        fetchIdx_ = detail_begin;
        end_ = end;
        headIdx_ = static_cast<uint32_t>(detail_begin);

        uint64_t cycle = 0;
        uint64_t measure_start_cycle = 0;
        bool measuring = skip == 0;
        const uint64_t cycle_cap =
            20000ull * (end - detail_begin) + 1000000;
        while (committed_ < end - detail_begin) {
            const size_t before_committed = committed_;
            const size_t before_pending = pending_.size();
            const size_t before_fetch = fetchIdx_;
            commit(cycle);
            issue(cycle);
            fetchAndDispatch(cycle);

            if (committed_ == before_committed &&
                pending_.size() == before_pending &&
                fetchIdx_ == before_fetch) {
                // Nothing moved: jump to the next event (a completion
                // or the fetch-resume point) instead of idling one
                // cycle at a time through long memory stalls.
                cycle = std::max(cycle + 1, nextEventCycle(cycle));
            } else {
                ++cycle;
            }
            if (!measuring && committed_ >= skip) {
                // The warm prefix has drained: measurement begins.
                measuring = true;
                measure_start_cycle = cycle;
                mem_.resetStats();
                branches_ = 0;
                mispredicts_ = 0;
            }
            if (cycle > cycle_cap)
                throw std::runtime_error("simulation deadlock");
        }

        SimResult res;
        res.cycles = cycle - measure_start_cycle;
        res.instructions = end - begin;
        res.ipc = cycle ? static_cast<double>(res.instructions) /
            static_cast<double>(cycle) : 0.0;
        res.l1dAccesses = mem_.l1d().accesses();
        res.l1dMisses = mem_.l1d().misses();
        res.l2Accesses = mem_.l2().accesses();
        res.l2Misses = mem_.l2().misses();
        res.l1iAccesses = mem_.l1i().accesses();
        res.l1iMisses = mem_.l1i().misses();
        res.branches = branches_;
        res.branchMispredicts = mispredicts_;
        res.l1dMissRate = mem_.l1d().missRate();
        res.l2MissRate = mem_.l2().missRate();
        res.l1iMissRate = mem_.l1i().missRate();
        res.branchMispredictRate = branches_
            ? static_cast<double>(mispredicts_) /
              static_cast<double>(branches_) : 0.0;
        return res;
    }

  private:
    /**
     * Earliest future cycle at which pipeline state can change: the
     * soonest in-flight completion, or the fetch-restart point.
     * Returns cycle + 1 when no event is pending (defensive).
     */
    uint64_t
    nextEventCycle(uint64_t cycle) const
    {
        uint64_t next = ~0ull;
        for (size_t i = 0; i < robCount_; ++i) {
            const RobEntry &e = rob_[(headIdx_ + i) & kRobMask];
            if (e.issued && e.doneAt > cycle)
                next = std::min(next, e.doneAt);
        }
        if (!waitingBranch_ && fetchIdx_ < end_ && fetchResume_ > cycle)
            next = std::min(next, fetchResume_);
        return next == ~0ull ? cycle + 1 : next;
    }

    /** Functional warmup: touch caches and predictor, no timing. */
    void
    warmup(size_t from, size_t to)
    {
        uint32_t last_block = ~0u;
        const uint32_t iblock =
            static_cast<uint32_t>(cfg_.l1i.blockBytes);
        for (size_t i = from; i < to; ++i) {
            const TraceOp &op = trace_.ops[i];
            const uint32_t blk = op.pc / iblock;
            if (blk != last_block) {
                mem_.warmFetch(op.pc);
                last_block = blk;
            }
            if ((op.cls == OpClass::Load || op.cls == OpClass::Store) &&
                !op.noWarm) {
                mem_.warmAccess(op.addr, op.cls == OpClass::Store);
            }
            if (op.cls == OpClass::Branch) {
                predictor_.update(op.pc, op.taken);
                if (op.taken)
                    btb_.insert(op.pc);
            }
        }
    }

    bool
    robFull() const
    {
        return robCount_ == static_cast<size_t>(cfg_.robSize);
    }

    RobEntry &robAt(uint32_t trace_idx) { return rob_[trace_idx & kRobMask]; }

    /** Does an older unissued store write this load's block? */
    bool
    conflictsWithOlderStore(uint64_t addr) const
    {
        const uint64_t block = addr >> kDisambiguationShift;
        for (uint64_t b : unissuedStoreBlocks_) {
            if (b == block)
                return true;
        }
        return false;
    }

    /** Can this op be dispatched given current resource occupancy? */
    bool
    canDispatch(const TraceOp &op) const
    {
        if (robFull())
            return false;
        switch (op.cls) {
          case OpClass::Load:
            if (lsqLoads_ >= cfg_.lsqLoads)
                return false;
            break;
          case OpClass::Store:
            if (lsqStores_ >= cfg_.lsqStores)
                return false;
            break;
          case OpClass::Branch:
            if (inflightBranches_ >= cfg_.maxBranches)
                return false;
            break;
          default:
            break;
        }
        const bool has_dest = op.cls != OpClass::Store &&
            op.cls != OpClass::Branch;
        if (has_dest) {
            if (op.fpDest) {
                if (fpRegsUsed_ >= cfg_.fpRegs - 32)
                    return false;
            } else {
                if (intRegsUsed_ >= cfg_.intRegs - 32)
                    return false;
            }
        }
        return true;
    }

    void
    fetchAndDispatch(uint64_t cycle)
    {
        if (waitingBranch_ || cycle < fetchResume_)
            return;
        const uint32_t iblock = static_cast<uint32_t>(cfg_.l1i.blockBytes);

        for (int slot = 0; slot < cfg_.fetchWidth; ++slot) {
            if (fetchIdx_ >= end_)
                return;
            const TraceOp &op = trace_.ops[fetchIdx_];

            // Instruction cache: one access per block crossing.
            const uint32_t blk = op.pc / iblock;
            if (blk != lastFetchBlock_) {
                const uint64_t done = mem_.fetch(op.pc, cycle);
                lastFetchBlock_ = blk;
                if (done > cycle + static_cast<uint64_t>(cfg_.l1iLatency)) {
                    fetchResume_ = done;
                    return;
                }
            }

            if (!canDispatch(op))
                return;

            // Allocate the ROB entry.
            RobEntry &e = rob_[fetchIdx_ & kRobMask];
            e.idx = static_cast<uint32_t>(fetchIdx_);
            e.cls = op.cls;
            e.fpDest = op.fpDest;
            e.hasDest = op.cls != OpClass::Store &&
                op.cls != OpClass::Branch;
            e.issued = false;
            e.mispredicted = false;
            e.doneAt = kNotDone;
            ++robCount_;
            pending_.push_back(e.idx);

            if (e.hasDest) {
                if (e.fpDest)
                    ++fpRegsUsed_;
                else
                    ++intRegsUsed_;
            }
            if (op.cls == OpClass::Load)
                ++lsqLoads_;
            if (op.cls == OpClass::Store)
                ++lsqStores_;

            ++fetchIdx_;

            if (op.cls == OpClass::Branch) {
                ++inflightBranches_;
                ++branches_;
                const bool predicted = predictor_.predict(op.pc);
                predictor_.update(op.pc, op.taken);
                if (predicted != op.taken) {
                    ++mispredicts_;
                    e.mispredicted = true;
                    waitingBranch_ = true;
                    if (op.taken)
                        btb_.insert(op.pc);
                    return;
                }
                if (op.taken) {
                    const bool btb_hit = btb_.lookup(op.pc);
                    btb_.insert(op.pc);
                    if (!btb_hit) {
                        // Target computed in decode: short bubble.
                        fetchResume_ = cycle + 2;
                        return;
                    }
                    // Correctly predicted taken branch ends the
                    // fetch group.
                    return;
                }
            }
        }
    }

    /** Is the producer `dist` instructions back ready at `cycle`? */
    bool
    sourceReady(uint32_t idx, int32_t dist, uint64_t cycle) const
    {
        // dist > idx would reach before the trace: no producer.
        if (dist <= 0 || static_cast<uint32_t>(dist) > idx)
            return true;
        const uint32_t producer = idx - static_cast<uint32_t>(dist);
        if (producer < headIdx_)
            return true;  // already committed
        const RobEntry &p = rob_[producer & kRobMask];
        return p.issued && p.doneAt <= cycle;
    }

    void
    issue(uint64_t cycle)
    {
        int issued = 0;
        int int_used = 0, fp_used = 0, ld_used = 0, st_used = 0;
        // Blocks of older not-yet-issued stores, for memory
        // disambiguation: a load may bypass older stores unless one
        // writes its block (then it waits — conservative forwarding).
        unissuedStoreBlocks_.clear();

        size_t keep = 0;
        for (size_t i = 0; i < pending_.size(); ++i) {
            const uint32_t idx = pending_[i];
            RobEntry &e = robAt(idx);
            assert(e.idx == idx);
            const TraceOp &op = trace_.ops[idx];

            bool can_issue = issued < cfg_.issueWidth;

            if (can_issue) {
                switch (e.cls) {
                  case OpClass::IntAlu:
                  case OpClass::IntMul:
                  case OpClass::Branch:
                    can_issue = int_used < cfg_.intAluUnits;
                    break;
                  case OpClass::FpAlu:
                  case OpClass::FpMul:
                    can_issue = fp_used < cfg_.fpUnits;
                    break;
                  case OpClass::Load:
                    can_issue = ld_used < cfg_.loadPorts &&
                        !conflictsWithOlderStore(op.addr);
                    break;
                  case OpClass::Store:
                    can_issue = st_used < cfg_.storePorts;
                    break;
                }
            }

            if (can_issue) {
                can_issue = sourceReady(idx, op.src1, cycle) &&
                    sourceReady(idx, op.src2, cycle);
            }

            uint64_t done = 0;
            if (can_issue) {
                if (e.cls == OpClass::Load) {
                    done = mem_.load(op.addr, cycle + 1);
                    if (done == 0)
                        can_issue = false;  // MSHRs full, retry
                } else if (e.cls == OpClass::Store) {
                    mem_.store(op.addr, cycle + 1);
                    done = cycle + 1 + execLatency(e.cls);
                } else {
                    done = cycle + 1 +
                        static_cast<uint64_t>(execLatency(e.cls));
                }
            }

            if (!can_issue) {
                if (e.cls == OpClass::Store) {
                    unissuedStoreBlocks_.push_back(
                        op.addr >> kDisambiguationShift);
                }
                pending_[keep++] = idx;
                continue;
            }

            // Issue.
            ++issued;
            switch (e.cls) {
              case OpClass::IntAlu:
              case OpClass::IntMul:
              case OpClass::Branch:
                ++int_used;
                break;
              case OpClass::FpAlu:
              case OpClass::FpMul:
                ++fp_used;
                break;
              case OpClass::Load:
                ++ld_used;
                break;
              case OpClass::Store:
                ++st_used;
                break;
            }
            e.issued = true;
            e.doneAt = done;

            if (e.cls == OpClass::Branch && e.mispredicted) {
                // Redirect: fetch restarts after resolution plus the
                // pipeline-refill penalty.
                fetchResume_ = done +
                    static_cast<uint64_t>(cfg_.mispredictPenaltyCycles);
                waitingBranch_ = false;
            }
        }
        pending_.resize(keep);
    }

    void
    commit(uint64_t cycle)
    {
        for (int c = 0; c < cfg_.commitWidth && robCount_ > 0; ++c) {
            RobEntry &head = rob_[headIdx_ & kRobMask];
            if (!head.issued || head.doneAt > cycle)
                break;
            if (head.hasDest) {
                if (head.fpDest)
                    --fpRegsUsed_;
                else
                    --intRegsUsed_;
            }
            switch (head.cls) {
              case OpClass::Load:
                --lsqLoads_;
                break;
              case OpClass::Store:
                --lsqStores_;
                break;
              case OpClass::Branch:
                --inflightBranches_;
                break;
              default:
                break;
            }
            --robCount_;
            ++headIdx_;
            ++committed_;
        }
    }

    const Trace &trace_;
    const MachineConfig &cfg_;
    MemorySystem mem_;
    TournamentPredictor predictor_;
    BranchTargetBuffer btb_;

    std::vector<RobEntry> rob_;
    size_t robCount_ = 0;
    uint32_t headIdx_ = 0;  ///< trace index of the oldest in-flight op
    std::vector<uint32_t> pending_;
    std::vector<uint64_t> unissuedStoreBlocks_;

    size_t fetchIdx_ = 0;
    size_t end_ = 0;
    uint64_t fetchResume_ = 0;
    uint32_t lastFetchBlock_ = ~0u;
    bool waitingBranch_ = false;

    int intRegsUsed_ = 0;
    int fpRegsUsed_ = 0;
    int lsqLoads_ = 0;
    int lsqStores_ = 0;
    int inflightBranches_ = 0;

    size_t committed_ = 0;
    uint64_t branches_ = 0;
    uint64_t mispredicts_ = 0;
};

} // namespace

SimResult
simulate(const Trace &trace, const MachineConfig &cfg,
         const SimOptions &opts)
{
    Pipeline pipeline(trace, cfg);
    return pipeline.run(opts);
}

} // namespace sim
} // namespace dse
