#include "sim/memsys.hh"

#include <algorithm>
#include <cmath>

namespace dse {
namespace sim {

namespace {

/// Write-buffer depth (in bus cycles of slack) for write-through L1s.
constexpr uint64_t kWriteBufferSlack = 16;

} // namespace

MemorySystem::MemorySystem(const MachineConfig &cfg)
    : cfg_(cfg), l1i_(cfg.l1i), l1d_(cfg.l1d), l2_(cfg.l2)
{
    dramCycles_ = static_cast<uint64_t>(
        std::ceil(cfg.sdramNs * cfg.freqGHz));
    mshrs_.resize(static_cast<size_t>(std::max(1, cfg.mshrs)));
}

uint64_t
MemorySystem::l2BusCycles(int bytes) const
{
    // The L2 bus runs at core frequency (Pentium 4 style).
    const int width = std::max(1, cfg_.l2BusBytes);
    return static_cast<uint64_t>((bytes + width - 1) / width);
}

uint64_t
MemorySystem::fsbCycles(int bytes) const
{
    const int width = std::max(1, cfg_.fsbBytes);
    const double beats = std::ceil(static_cast<double>(bytes) / width);
    const double ns = beats / cfg_.fsbGHz;
    return static_cast<uint64_t>(std::ceil(ns * cfg_.freqGHz));
}

uint64_t
MemorySystem::serviceL1Miss(uint64_t addr, bool is_write, int block_bytes,
                            uint64_t ready)
{
    // Request crosses the L2 bus (address phase: one bus slot).
    uint64_t t = std::max(ready, l2BusFree_);
    l2BusFree_ = t + 1;
    t += 1;

    // L2 lookup.
    auto l2_result = l2_.access(addr, is_write);
    t += static_cast<uint64_t>(cfg_.l2Latency);

    if (!l2_result.hit) {
        // Fetch the L2 block from SDRAM over the FSB.
        uint64_t mem_start = std::max(t, fsbFree_);
        const uint64_t transfer = fsbCycles(cfg_.l2.blockBytes);
        fsbFree_ = mem_start + transfer;
        t = mem_start + dramCycles_ + transfer;
    }
    if (l2_result.writeback) {
        // Dirty L2 victim drains to memory; occupies the FSB but the
        // load does not wait for it.
        fsbFree_ = std::max(fsbFree_, t) + fsbCycles(cfg_.l2.blockBytes);
    }

    // Data returns to the L1 across the L2 bus. Critical word
    // first: the requester resumes after the first beat while the
    // rest of the block streams (the bus stays occupied for the
    // full transfer).
    const uint64_t fill = l2BusCycles(block_bytes);
    uint64_t data_start = std::max(t, l2BusFree_);
    l2BusFree_ = data_start + fill;
    return data_start + 1;
}

uint64_t
MemorySystem::load(uint64_t addr, uint64_t now)
{
    const uint64_t ready = now + static_cast<uint64_t>(cfg_.l1dLatency);
    const uint64_t req_block =
        addr / static_cast<uint64_t>(cfg_.l1d.blockBytes);
    auto result = l1d_.access(addr, false);
    if (result.hit) {
        // The tag may be present while its fill is still in flight:
        // wait for the outstanding miss to the same block.
        for (const auto &m : mshrs_) {
            if (m.valid && m.block == req_block && m.ready > now)
                return std::max(m.ready, ready);
        }
        return ready;
    }

    // Merge with an in-flight miss to the same block.
    const uint64_t block = req_block;
    Mshr *free_slot = nullptr;
    for (auto &m : mshrs_) {
        if (m.valid && m.ready <= now)
            m.valid = false;
        if (m.valid && m.block == block)
            return std::max(m.ready, ready);
        if (!m.valid)
            free_slot = &m;
    }
    if (!free_slot)
        return 0;  // MSHRs exhausted; caller retries

    if (result.writeback) {
        // Dirty L1 victim goes down the L2 bus and into the L2.
        l2BusFree_ = std::max(l2BusFree_, ready) +
            l2BusCycles(cfg_.l1d.blockBytes);
        auto wb = l2_.access(result.victimAddr, true);
        if (wb.writeback) {
            fsbFree_ = std::max(fsbFree_, ready) +
                fsbCycles(cfg_.l2.blockBytes);
        }
    }

    const uint64_t done =
        serviceL1Miss(addr, false, cfg_.l1d.blockBytes, ready);
    free_slot->valid = true;
    free_slot->block = block;
    free_slot->ready = done;
    return done;
}

uint64_t
MemorySystem::store(uint64_t addr, uint64_t now)
{
    const uint64_t ready = now + static_cast<uint64_t>(cfg_.l1dLatency);

    if (cfg_.l1d.writeBack) {
        auto result = l1d_.access(addr, true);
        if (result.hit)
            return ready;
        if (result.writeback) {
            l2BusFree_ = std::max(l2BusFree_, ready) +
                l2BusCycles(cfg_.l1d.blockBytes);
            auto wb = l2_.access(result.victimAddr, true);
            if (wb.writeback) {
                fsbFree_ = std::max(fsbFree_, ready) +
                    fsbCycles(cfg_.l2.blockBytes);
            }
        }
        // Write-allocate: fetch the block, but the store buffer hides
        // the latency from the core; the traffic still occupies buses.
        serviceL1Miss(addr, false, cfg_.l1d.blockBytes, ready);
        return ready;
    }

    // Write-through, no-write-allocate: the word is written to the L2
    // on every store, consuming L2 bus bandwidth. A small write
    // buffer decouples the core, but sustained traffic backs up and
    // stalls the store (and with it, commit).
    l1d_.access(addr, true, /*allocate=*/false);
    uint64_t stall_ready = ready;
    if (l2BusFree_ > ready + kWriteBufferSlack)
        stall_ready = l2BusFree_ - kWriteBufferSlack;
    uint64_t t = std::max(ready, l2BusFree_);
    l2BusFree_ = t + l2BusCycles(8);
    auto l2_result = l2_.access(addr, true);
    if (!l2_result.hit) {
        // Word continues to memory over the FSB (no allocate in L2
        // would be unusual; we allocate and drain the victim).
        fsbFree_ = std::max(fsbFree_, t) + fsbCycles(cfg_.l2.blockBytes);
    }
    if (l2_result.writeback)
        fsbFree_ = std::max(fsbFree_, t) + fsbCycles(cfg_.l2.blockBytes);
    return stall_ready;
}

uint64_t
MemorySystem::fetch(uint32_t pc, uint64_t now)
{
    const uint64_t ready = now + static_cast<uint64_t>(cfg_.l1iLatency);
    auto result = l1i_.access(pc, false);
    if (result.hit)
        return ready;
    return serviceL1Miss(pc, false, cfg_.l1i.blockBytes, ready);
}

void
MemorySystem::warmAccess(uint64_t addr, bool is_write)
{
    auto result = l1d_.access(addr, is_write && cfg_.l1d.writeBack,
                              /*allocate=*/!is_write || cfg_.l1d.writeBack);
    if (!result.hit)
        l2_.access(addr, is_write && !cfg_.l1d.writeBack);
    if (result.writeback)
        l2_.access(result.victimAddr, true);
}

void
MemorySystem::warmFetch(uint32_t pc)
{
    auto result = l1i_.access(pc, false);
    if (!result.hit)
        l2_.access(pc, false);
}

} // namespace sim
} // namespace dse
