/**
 * @file
 * Timed memory hierarchy: L1I + L1D + unified L2 with an L2 bus at
 * core frequency, a front-side bus at its own frequency, and SDRAM.
 *
 * Contention and latency are modeled at every level (as in the
 * paper's simulator): buses are occupied for the duration of each
 * block transfer, so bandwidth saturation emerges naturally; dirty
 * write-backs and write-through store traffic consume the same bus
 * capacity loads need; outstanding L1D misses are limited by MSHRs
 * and merged when they hit the same in-flight block.
 */

#ifndef DSE_SIM_MEMSYS_HH
#define DSE_SIM_MEMSYS_HH

#include <cstdint>
#include <vector>

#include "sim/cache.hh"
#include "sim/config.hh"

namespace dse {
namespace sim {

/**
 * The full data/instruction memory hierarchy with timing.
 * All times are in core cycles.
 */
class MemorySystem
{
  public:
    explicit MemorySystem(const MachineConfig &cfg);

    /**
     * Issue a load at cycle `now`.
     *
     * @return the cycle the data is available, or 0 when no MSHR is
     *         free (the caller must retry later).
     */
    uint64_t load(uint64_t addr, uint64_t now);

    /**
     * Issue a store at cycle `now`. Stores complete quickly from the
     * core's perspective (store buffer); their cost is the bus and
     * cache traffic they generate, which this call models.
     * @return the cycle the store leaves the store buffer.
     */
    uint64_t store(uint64_t addr, uint64_t now);

    /**
     * Instruction fetch of the block containing `pc` at cycle `now`.
     * @return the cycle the instructions are available.
     */
    uint64_t fetch(uint32_t pc, uint64_t now);

    /** Functional (untimed) warmup access, e.g. for SimPoint warmup. */
    void warmAccess(uint64_t addr, bool is_write);

    /** Functional warmup of the instruction path. */
    void warmFetch(uint32_t pc);

    /** Zero cache statistics (e.g. after warmup), keeping contents. */
    void
    resetStats()
    {
        l1i_.resetStats();
        l1d_.resetStats();
        l2_.resetStats();
    }

    /// @name Statistics.
    /// @{
    const Cache &l1d() const { return l1d_; }
    const Cache &l1i() const { return l1i_; }
    const Cache &l2() const { return l2_; }
    /// @}

  private:
    /**
     * Service an L1 miss (data or instruction side) through the L2
     * and, if needed, the FSB/SDRAM. Handles bus occupancy and L2
     * dirty victims.
     *
     * @param block_bytes L1 block size being filled
     * @return completion cycle
     */
    uint64_t serviceL1Miss(uint64_t addr, bool is_write, int block_bytes,
                           uint64_t ready);

    /** Cycles to move `bytes` across the L2 bus (core frequency). */
    uint64_t l2BusCycles(int bytes) const;

    /** Cycles (core) to move `bytes` across the FSB. */
    uint64_t fsbCycles(int bytes) const;

    MachineConfig cfg_;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;

    uint64_t l2BusFree_ = 0;   ///< next cycle the L2 bus is idle
    uint64_t fsbFree_ = 0;     ///< next cycle the FSB is idle
    uint64_t dramCycles_;      ///< SDRAM latency in core cycles

    struct Mshr
    {
        uint64_t block = 0;
        uint64_t ready = 0;
        bool valid = false;
    };
    std::vector<Mshr> mshrs_;
};

} // namespace sim
} // namespace dse

#endif // DSE_SIM_MEMSYS_HH
