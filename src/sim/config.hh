/**
 * @file
 * Machine configuration and simulation-result types.
 *
 * A MachineConfig captures every parameter either study varies
 * (Tables 4.1 and 4.2 of the paper) plus the fixed parameters both
 * studies hold constant. Defaults reproduce the memory-system study's
 * fixed core (4 GHz, 4-wide, 128-entry ROB, ...).
 */

#ifndef DSE_SIM_CONFIG_HH
#define DSE_SIM_CONFIG_HH

#include <cstdint>
#include <string>

namespace dse {
namespace sim {

/** One cache's geometry and policy. */
struct CacheConfig
{
    int sizeKB = 32;
    int blockBytes = 32;
    int assoc = 2;
    bool writeBack = true;   ///< false = write-through

    /** Number of sets implied by the geometry. */
    int
    numSets() const
    {
        return (sizeKB * 1024) / (blockBytes * assoc);
    }

    std::string describe() const;
};

/** Full machine description. */
struct MachineConfig
{
    /// @name Core.
    /// @{
    double freqGHz = 4.0;
    int fetchWidth = 4;
    int issueWidth = 4;
    int commitWidth = 4;
    int intAluUnits = 4;     ///< single-cycle integer units
    int fpUnits = 4;         ///< floating-point units
    int loadPorts = 2;
    int storePorts = 2;
    int robSize = 128;
    int intRegs = 96;        ///< physical integer registers
    int fpRegs = 96;         ///< physical floating-point registers
    int lsqLoads = 48;
    int lsqStores = 48;
    int maxBranches = 16;    ///< unresolved branches in flight
    /// @}

    /// @name Branch prediction (tournament, Alpha 21264 style).
    /// @{
    int bpEntries = 4096;    ///< entries per tournament component table
    int btbSets = 1024;      ///< BTB sets (2-way)
    int mispredictPenaltyCycles = 20;  ///< minimum refill penalty
    /// @}

    /// @name Memory hierarchy.
    /// @{
    CacheConfig l1i{32, 32, 2, true};
    CacheConfig l1d{32, 32, 2, true};
    CacheConfig l2{1024, 64, 8, true};
    int l2BusBytes = 32;     ///< L1<->L2 bus width; runs at core frequency
    double fsbGHz = 0.8;     ///< front-side bus frequency
    int fsbBytes = 8;        ///< FSB width (64 bits)
    double sdramNs = 100.0;  ///< SDRAM access latency
    int mshrs = 8;           ///< outstanding L1D misses
    /// @}

    /// @name Derived latencies (cycles); fill with applyCactiLatencies().
    /// @{
    int l1iLatency = 2;
    int l1dLatency = 2;
    int l2Latency = 16;
    /// @}

    std::string describe() const;
};

/** Aggregate outcome of one simulation. */
struct SimResult
{
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    double ipc = 0.0;

    // Secondary metrics (used by the multi-task learning extension).
    double l1dMissRate = 0.0;
    double l2MissRate = 0.0;
    double l1iMissRate = 0.0;
    double branchMispredictRate = 0.0;

    uint64_t l1dAccesses = 0;
    uint64_t l1dMisses = 0;
    uint64_t l2Accesses = 0;
    uint64_t l2Misses = 0;
    uint64_t l1iAccesses = 0;
    uint64_t l1iMisses = 0;
    uint64_t branches = 0;
    uint64_t branchMispredicts = 0;
};

} // namespace sim
} // namespace dse

#endif // DSE_SIM_CONFIG_HH
