#include "sim/cacti.hh"

#include <cmath>
#include <sstream>

namespace dse {
namespace sim {

double
CactiModel::l1AccessNs(const CacheConfig &cfg)
{
    // Calibrated so 32KB/2-way -> 0.39 ns -> 2 cycles at 4 GHz.
    const double size_term = 0.04 * std::log2(static_cast<double>(cfg.sizeKB));
    const double assoc_term = 0.02 * cfg.assoc;
    const double block_term = 0.01 * (cfg.blockBytes / 32.0);
    return 0.14 + size_term + assoc_term + block_term;
}

double
CactiModel::l2AccessNs(const CacheConfig &cfg)
{
    // Large arrays pay wire and decoder overheads; 1MB/8-way -> ~3.9ns
    // -> 16 cycles at 4 GHz.
    const double size_term = 0.25 * std::log2(static_cast<double>(cfg.sizeKB));
    const double assoc_term = 0.05 * cfg.assoc;
    const double block_term = 0.03 * (cfg.blockBytes / 64.0);
    return 0.97 + size_term + assoc_term + block_term;
}

int
CactiModel::cycles(double ns, double freq_ghz)
{
    const int c = static_cast<int>(std::ceil(ns * freq_ghz));
    return c < 1 ? 1 : c;
}

void
CactiModel::applyLatencies(MachineConfig &cfg)
{
    cfg.l1iLatency = cycles(l1AccessNs(cfg.l1i), cfg.freqGHz);
    cfg.l1dLatency = cycles(l1AccessNs(cfg.l1d), cfg.freqGHz);
    cfg.l2Latency = cycles(l2AccessNs(cfg.l2), cfg.freqGHz);
}

std::string
CacheConfig::describe() const
{
    std::ostringstream os;
    os << sizeKB << "KB/" << blockBytes << "B/" << assoc << "way/"
       << (writeBack ? "WB" : "WT");
    return os.str();
}

std::string
MachineConfig::describe() const
{
    std::ostringstream os;
    os << freqGHz << "GHz " << fetchWidth << "-wide ROB" << robSize
       << " L1D[" << l1d.describe() << "] L2[" << l2.describe()
       << "] l2bus=" << l2BusBytes << "B fsb=" << fsbGHz << "GHz";
    return os.str();
}

} // namespace sim
} // namespace dse
