/**
 * @file
 * Alpha 21264-style tournament branch predictor and branch target
 * buffer. Both studies use this predictor; the processor study varies
 * the component table sizes (1K/2K/4K entries) and BTB geometry
 * (1K/2K sets, 2-way), so aliasing effects across sizes must be real
 * — hence a faithful two-level local + global + chooser structure.
 */

#ifndef DSE_SIM_BRANCH_HH
#define DSE_SIM_BRANCH_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dse {
namespace sim {

/**
 * Tournament predictor: a local predictor (per-branch history feeding
 * a pattern table of 2-bit counters), a global predictor (path
 * history xor PC indexing 2-bit counters), and a chooser (2-bit
 * counters keyed by global history) that picks between them.
 */
class TournamentPredictor
{
  public:
    /**
     * @param entries entries per component table (power of two)
     */
    explicit TournamentPredictor(int entries);

    /** Predict the outcome of the branch at `pc`. */
    bool predict(uint32_t pc) const;

    /** Update all component tables with the actual outcome. */
    void update(uint32_t pc, bool taken);

    /** Clear all tables to their initial state. */
    void reset();

    int entries() const { return entries_; }

  private:
    size_t localIndex(uint32_t pc) const;
    size_t globalIndex() const;
    size_t chooserIndex(uint32_t pc) const;

    int entries_;
    uint32_t mask_;
    uint32_t historyBits_;
    uint32_t globalHistory_ = 0;
    std::vector<uint16_t> localHistory_;   ///< per-branch history register
    std::vector<uint8_t> localCounters_;   ///< 2-bit saturating
    std::vector<uint8_t> globalCounters_;  ///< 2-bit saturating
    std::vector<uint8_t> chooser_;         ///< 2-bit: >=2 selects global
};

/** Branch target buffer, N sets x 2 ways, LRU within a set. */
class BranchTargetBuffer
{
  public:
    /** @param sets number of sets (power of two); 2-way. */
    explicit BranchTargetBuffer(int sets);

    /** True if the branch's target is cached. */
    bool lookup(uint32_t pc);

    /** Install/refresh the branch's entry. */
    void insert(uint32_t pc);

    /** Clear all entries. */
    void reset();

  private:
    struct Entry
    {
        uint32_t tag = 0;
        uint64_t lastUse = 0;
        bool valid = false;
    };

    int sets_;
    uint64_t clock_ = 0;
    std::vector<Entry> entries_;  ///< sets_ * 2, set-major
};

} // namespace sim
} // namespace dse

#endif // DSE_SIM_BRANCH_HH
