/**
 * @file
 * Set-associative cache model with LRU replacement and write-back or
 * write-through policy. Timing is handled by the memory system
 * (dse::sim::MemorySystem); this class models only hit/miss state,
 * replacement, and dirty-victim generation.
 */

#ifndef DSE_SIM_CACHE_HH
#define DSE_SIM_CACHE_HH

#include <cstdint>
#include <vector>

#include "sim/config.hh"

namespace dse {
namespace sim {

/** Result of a cache access. */
struct CacheAccessResult
{
    bool hit = false;
    bool writeback = false;     ///< a dirty victim was evicted
    uint64_t victimAddr = 0;    ///< block address of the dirty victim
};

/**
 * One level of set-associative cache.
 *
 * Tags are full block addresses; LRU is tracked with a per-line
 * last-use stamp (monotone access counter), which is exact LRU and
 * cheap at the associativities in the studies (1-16).
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    /**
     * Access the cache.
     *
     * @param addr byte address
     * @param is_write true for stores
     * @param allocate fill the block on miss (no-allocate lets a
     *        write-through L1 send stores past itself)
     * @return hit/miss and any dirty victim
     */
    CacheAccessResult access(uint64_t addr, bool is_write,
                             bool allocate = true);

    /** True if the block containing addr is currently resident. */
    bool contains(uint64_t addr) const;

    /** Invalidate all lines and reset statistics. */
    void reset();

    /** Zero the statistics counters, keeping cache contents. */
    void resetStats();

    /** Geometry in use. */
    const CacheConfig &config() const { return cfg_; }

    /// @name Statistics.
    /// @{
    uint64_t accesses() const { return accesses_; }
    uint64_t misses() const { return misses_; }
    uint64_t writebacks() const { return writebacks_; }
    double
    missRate() const
    {
        return accesses_ ? static_cast<double>(misses_) /
            static_cast<double>(accesses_) : 0.0;
    }
    /// @}

  private:
    struct Line
    {
        uint64_t tag = 0;
        uint64_t lastUse = 0;
        bool valid = false;
        bool dirty = false;
    };

    uint64_t blockAddr(uint64_t addr) const { return addr >> blockShift_; }
    size_t setIndex(uint64_t block) const
    {
        return static_cast<size_t>(block & (numSets_ - 1));
    }

    CacheConfig cfg_;
    int blockShift_;
    uint64_t numSets_;
    std::vector<Line> lines_;   ///< numSets_ * assoc, set-major
    uint64_t clock_ = 0;
    uint64_t accesses_ = 0;
    uint64_t misses_ = 0;
    uint64_t writebacks_ = 0;
};

} // namespace sim
} // namespace dse

#endif // DSE_SIM_CACHE_HH
