/**
 * @file
 * First-order energy model over simulation results.
 *
 * The paper predicts IPC but notes the mechanism generalizes to any
 * statistic; the multivariate power/performance analyses it cites
 * (Cai et al. [1], Chow & Ding [3]) motivate energy as the natural
 * second metric. This model computes energy the way early-2000s
 * architecture studies did: per-event dynamic energies (scaled by
 * structure size, CACTI-style) plus leakage proportional to area and
 * time. It is deliberately simple — its purpose is to give the
 * predictive-modeling layer a second, differently-shaped response
 * surface (energy *rises* with cache size where IPC rises too, so
 * energy-delay exposes real tradeoffs).
 */

#ifndef DSE_SIM_ENERGY_HH
#define DSE_SIM_ENERGY_HH

#include "sim/config.hh"

namespace dse {
namespace sim {

/** Energy accounting for one simulation. */
struct EnergyResult
{
    double coreDynamicNj = 0.0;    ///< per-instruction core energy
    double cacheDynamicNj = 0.0;   ///< L1/L2 access + miss handling
    double dramDynamicNj = 0.0;    ///< off-chip accesses
    double leakageNj = 0.0;        ///< area- and time-proportional

    double totalNj() const
    {
        return coreDynamicNj + cacheDynamicNj + dramDynamicNj +
            leakageNj;
    }

    /** Energy-delay product in nJ*s (the classic efficiency metric). */
    double edp = 0.0;
};

/**
 * Evaluate the energy model on a finished simulation.
 *
 * @param cfg the simulated machine
 * @param result its statistics
 * @return the energy breakdown and EDP
 */
EnergyResult computeEnergy(const MachineConfig &cfg,
                           const SimResult &result);

} // namespace sim
} // namespace dse

#endif // DSE_SIM_ENERGY_HH
