/**
 * @file
 * Analytic cache access-time model standing in for CACTI 3.2.
 *
 * The paper derives every cache configuration's latency with CACTI at
 * 90 nm and quantizes to cycles at core frequency. We reproduce the
 * behaviourally relevant property — access time grows with capacity
 * (longer word/bit lines) and associativity (wider tag match and mux)
 * — with a simple log-linear fit calibrated so a 32 KB 2-way L1 costs
 * 2 cycles at 4 GHz, matching the paper's fixed L1I (Table 4.1).
 */

#ifndef DSE_SIM_CACTI_HH
#define DSE_SIM_CACTI_HH

#include "sim/config.hh"

namespace dse {
namespace sim {

/** Analytic access-time model (90 nm). */
class CactiModel
{
  public:
    /** L1 access time in nanoseconds. */
    static double l1AccessNs(const CacheConfig &cfg);

    /** L2 access time in nanoseconds (adds decode/wire overhead). */
    static double l2AccessNs(const CacheConfig &cfg);

    /** Quantize an access time to cycles at the given frequency. */
    static int cycles(double ns, double freq_ghz);

    /**
     * Fill a machine configuration's derived cache latencies from its
     * cache geometries and core frequency.
     */
    static void applyLatencies(MachineConfig &cfg);
};

} // namespace sim
} // namespace dse

#endif // DSE_SIM_CACTI_HH
