/**
 * @file
 * Design-space description and parameter encoding (Section 3.3).
 *
 * Architectural parameters fall into four categories, each encoded
 * differently for the network:
 *  - cardinal/continuous: one input, minimax-normalized to [0, 1]
 *    over the parameter's range in the space;
 *  - nominal: one-hot (one input per setting), since the settings
 *    carry no range information;
 *  - boolean: one 0/1 input.
 *
 * A DesignSpace is the cross product of its parameters' levels; design
 * points are addressed either by a flat index in [0, size()) or by a
 * per-parameter level vector (mixed-radix representation).
 */

#ifndef DSE_ML_ENCODING_HH
#define DSE_ML_ENCODING_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dse {
namespace ml {

/** Encoding category of a design parameter. */
enum class ParamKind { Cardinal, Continuous, Nominal, Boolean };

/** One design parameter and its levels. */
struct ParamDesc
{
    std::string name;
    ParamKind kind = ParamKind::Cardinal;
    /** Numeric level values (cardinal/continuous/boolean). */
    std::vector<double> values;
    /** Level labels (nominal). */
    std::vector<std::string> labels;

    /** Number of settings this parameter can take. */
    int
    numLevels() const
    {
        return kind == ParamKind::Nominal
            ? static_cast<int>(labels.size())
            : static_cast<int>(values.size());
    }

    /** Number of network inputs this parameter occupies. */
    int
    encodedWidth() const
    {
        return kind == ParamKind::Nominal ? numLevels() : 1;
    }
};

/**
 * The cross product of a set of parameters.
 *
 * Dependent parameters (e.g. the processor study's register-file
 * size, which offers two choices per ROB size) are modeled as
 * selector parameters whose concrete value is resolved by the study's
 * configuration mapping; the space itself stays a pure cross product,
 * matching the paper's design-space sizes exactly.
 */
class DesignSpace
{
  public:
    /// @name Construction.
    /// @{
    void addCardinal(const std::string &name, std::vector<double> values);
    void addContinuous(const std::string &name, std::vector<double> values);
    void addNominal(const std::string &name,
                    std::vector<std::string> labels);
    void addBoolean(const std::string &name);
    /// @}

    /** Number of parameters. */
    size_t numParams() const { return params_.size(); }

    /** Parameter descriptor. */
    const ParamDesc &param(size_t i) const { return params_[i]; }

    /** Index of the parameter with this name; throws if absent. */
    size_t paramIndex(const std::string &name) const;

    /** Total number of design points (product of level counts). */
    uint64_t size() const;

    /** Width of the encoded feature vector. */
    int encodedWidth() const;

    /** Decode a flat index into per-parameter levels. */
    std::vector<int> levels(uint64_t index) const;

    /** Flat index of a level vector. */
    uint64_t index(const std::vector<int> &levels) const;

    /** Encode a level vector as a normalized network input. */
    std::vector<double> encode(const std::vector<int> &levels) const;

    /** Encode a flat index directly. */
    std::vector<double> encodeIndex(uint64_t index) const;

    /**
     * Encode a flat index into a caller-provided buffer of
     * encodedWidth() doubles, with no heap allocation — the form the
     * batched prediction paths use. Bit-identical to encodeIndex()
     * (same normalization arithmetic, from bounds cached at
     * construction).
     */
    void encodeIndexInto(uint64_t index, double *out) const;

    /**
     * Encode `count` consecutive indices [first, first + count) into
     * @p out (row-major [count x encodedWidth()]). The per-parameter
     * levels advance odometer-style, avoiding encodeIndexInto's
     * per-point divisions; each row is bit-identical to
     * encodeIndexInto on the same index. This is the fast path for
     * full-space prediction.
     */
    void encodeRangeInto(uint64_t first, size_t count, double *out) const;

    /** Numeric value of parameter `p` at level `l` (non-nominal). */
    double value(size_t p, int l) const;

    /** Label of nominal parameter `p` at level `l`. */
    const std::string &label(size_t p, int l) const;

    /** Numeric value of the named parameter in a level vector. */
    double valueOf(const std::string &name,
                   const std::vector<int> &levels) const;

    /** Label of the named nominal parameter in a level vector. */
    const std::string &labelOf(const std::string &name,
                               const std::vector<int> &levels) const;

  private:
    void validateLevels(const std::vector<int> &levels) const;

    /** Encode an (already validated) level vector into out. */
    void encodeLevelsInto(const int *levels, double *out) const;

    /** Refresh the per-parameter encode cache after adding a param. */
    void rebuildCache();

    std::vector<ParamDesc> params_;
    // Per-parameter normalization bounds and mixed-radix strides,
    // cached at construction so encodeIndexInto() is allocation-free
    // (minRaw/span mirror the minmax encode() historically recomputed
    // per call — same values, same arithmetic).
    std::vector<double> minRaw_;
    std::vector<double> span_;
    std::vector<uint64_t> stride_;
    uint64_t size_ = 1;
};

/**
 * Minimax scaler for the regression target (Section 3.3: targets are
 * encoded the same way as continuous inputs).
 *
 * Fitted on the *training* targets only — the true range of the full
 * space is unknown before simulating it — with a safety margin so
 * unseen points slightly outside the training range stay decodable,
 * and mapped into [lo, hi] away from the sigmoid's saturated tails.
 */
class TargetScaler
{
  public:
    /** Fit to a set of raw target values. */
    void fit(const std::vector<double> &targets, double margin = 0.25,
             double lo = 0.1, double hi = 0.9);

    /** Raw value -> network target in [0, 1]. */
    double encode(double raw) const;

    /** Network output -> raw value. */
    double decode(double encoded) const;

    double rawMin() const { return rawMin_; }
    double rawMax() const { return rawMax_; }
    double lo() const { return lo_; }
    double hi() const { return hi_; }

    /** Rebuild a scaler from stored parameters (deserialization). */
    static TargetScaler fromRange(double raw_min, double raw_max,
                                  double lo, double hi);

  private:
    double rawMin_ = 0.0;
    double rawMax_ = 1.0;
    double lo_ = 0.1;
    double hi_ = 0.9;
};

} // namespace ml
} // namespace dse

#endif // DSE_ML_ENCODING_HH
