/**
 * @file
 * Cross-application predictive modeling (Chapter 7, future work).
 *
 * The baseline treats each benchmark as an independent modeling
 * problem. When several applications share structure (the same
 * functional relationship between parameters and the metric in parts
 * of the space), one *joint* model — with the application identity as
 * an extra one-hot input — can share what it learns across
 * applications and reach a given accuracy from fewer simulations per
 * application.
 */

#ifndef DSE_ML_CROSSAPP_HH
#define DSE_ML_CROSSAPP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ml/cross_validation.hh"
#include "ml/encoding.hh"

namespace dse {
namespace ml {

/**
 * A design space extended with an application-identity input.
 *
 * Feature vector = [one-hot(app) | encode(design point)]. Target
 * scaling is joint (one scaler across applications), so applications
 * with very different metric ranges should be modeled per-app
 * instead.
 */
class CrossAppSpace
{
  public:
    CrossAppSpace(const DesignSpace &space,
                  std::vector<std::string> apps);

    const DesignSpace &space() const { return space_; }
    const std::vector<std::string> &apps() const { return apps_; }

    /** Width of the joint feature vector. */
    int encodedWidth() const;

    /** Encode (application, design point). */
    std::vector<double> encode(size_t app_index, uint64_t index) const;

    /** Index of an application by name; throws if absent. */
    size_t appIndex(const std::string &name) const;

  private:
    const DesignSpace &space_;
    std::vector<std::string> apps_;
};

/** A (application, design point, target) training triple. */
struct CrossAppSample
{
    size_t appIndex = 0;
    uint64_t designIndex = 0;
    double target = 0.0;
};

/**
 * Train one joint cross-validation ensemble over several
 * applications' samples.
 */
Ensemble trainCrossAppEnsemble(const CrossAppSpace &space,
                               const std::vector<CrossAppSample> &samples,
                               const TrainOptions &opts);

} // namespace ml
} // namespace dse

#endif // DSE_ML_CROSSAPP_HH
