#include "ml/ann.hh"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace dse {
namespace ml {

namespace {

double
sigmoid(double x)
{
    return 1.0 / (1.0 + std::exp(-x));
}

} // namespace

Ann::Ann(int inputs, int outputs, const AnnParams &params, Rng &rng)
    : inputs_(inputs), outputs_(outputs), params_(params)
{
    if (inputs <= 0 || outputs <= 0)
        throw std::invalid_argument("network needs inputs and outputs");
    if (params.hiddenLayers < 1 || params.hiddenUnits < 1)
        throw std::invalid_argument("network needs a hidden layer");

    int prev = inputs;
    for (int l = 0; l < params.hiddenLayers; ++l) {
        Layer layer;
        layer.in = prev;
        layer.out = params.hiddenUnits;
        layer.w.resize(static_cast<size_t>(layer.in + 1) * layer.out);
        layer.dwPrev.assign(layer.w.size(), 0.0);
        for (auto &w : layer.w)
            w = rng.uniform(-params.initWeightRange, params.initWeightRange);
        layers_.push_back(std::move(layer));
        prev = params.hiddenUnits;
    }
    Layer out;
    out.in = prev;
    out.out = outputs;
    out.w.resize(static_cast<size_t>(out.in + 1) * out.out);
    out.dwPrev.assign(out.w.size(), 0.0);
    for (auto &w : out.w)
        w = rng.uniform(-params.initWeightRange, params.initWeightRange);
    layers_.push_back(std::move(out));

    act_.resize(layers_.size() + 1);
    act_[0].resize(static_cast<size_t>(inputs));
    delta_.resize(layers_.size());
    for (size_t l = 0; l < layers_.size(); ++l) {
        act_[l + 1].resize(static_cast<size_t>(layers_[l].out));
        delta_[l].resize(static_cast<size_t>(layers_[l].out));
    }
}

void
Ann::forwardInto(const std::vector<double> &input,
                 std::vector<std::vector<double>> &act) const
{
    assert(static_cast<int>(input.size()) == inputs_);
    act.resize(layers_.size() + 1);
    act[0] = input;
    for (size_t l = 0; l < layers_.size(); ++l) {
        const Layer &layer = layers_[l];
        const std::vector<double> &in = act[l];
        std::vector<double> &out = act[l + 1];
        out.resize(static_cast<size_t>(layer.out));
        for (int j = 0; j < layer.out; ++j) {
            const double *w = &layer.w[static_cast<size_t>(j) *
                                       (layer.in + 1)];
            double net = w[layer.in];  // bias
            for (int i = 0; i < layer.in; ++i)
                net += w[i] * in[i];
            out[static_cast<size_t>(j)] = sigmoid(net);
        }
    }
}

void
Ann::forward(const std::vector<double> &input) const
{
    forwardInto(input, act_);
}

namespace {

/** Per-thread activation scratch for concurrent const predictions. */
std::vector<std::vector<double>> &
predictScratch()
{
    thread_local std::vector<std::vector<double>> act;
    return act;
}

} // namespace

std::vector<double>
Ann::predict(const std::vector<double> &input) const
{
    auto &act = predictScratch();
    forwardInto(input, act);
    return act.back();
}

double
Ann::predictScalar(const std::vector<double> &input) const
{
    auto &act = predictScratch();
    forwardInto(input, act);
    return act.back()[0];
}

double
Ann::train(const std::vector<double> &input,
           const std::vector<double> &target)
{
    assert(static_cast<int>(target.size()) == outputs_);
    forward(input);

    // Output deltas: (t - o) * o * (1 - o) for sigmoid outputs.
    double sq_error = 0.0;
    {
        const std::vector<double> &o = act_.back();
        std::vector<double> &d = delta_.back();
        for (int j = 0; j < outputs_; ++j) {
            const double oj = o[static_cast<size_t>(j)];
            const double err = target[static_cast<size_t>(j)] - oj;
            sq_error += err * err;
            d[static_cast<size_t>(j)] = err * oj * (1.0 - oj);
        }
    }

    // Hidden deltas, back to front.
    for (size_t l = layers_.size() - 1; l-- > 0;) {
        const Layer &next = layers_[l + 1];
        const std::vector<double> &o = act_[l + 1];
        const std::vector<double> &dn = delta_[l + 1];
        std::vector<double> &d = delta_[l];
        for (int i = 0; i < next.in; ++i) {
            double sum = 0.0;
            for (int j = 0; j < next.out; ++j)
                sum += next.w[static_cast<size_t>(j) * (next.in + 1) + i] *
                    dn[static_cast<size_t>(j)];
            const double oi = o[static_cast<size_t>(i)];
            d[static_cast<size_t>(i)] = sum * oi * (1.0 - oi);
        }
    }

    // Weight updates with momentum (Equation 3.2).
    const double eta = params_.learningRate;
    const double alpha = params_.momentum;
    for (size_t l = 0; l < layers_.size(); ++l) {
        Layer &layer = layers_[l];
        const std::vector<double> &in = act_[l];
        const std::vector<double> &d = delta_[l];
        for (int j = 0; j < layer.out; ++j) {
            double *w = &layer.w[static_cast<size_t>(j) * (layer.in + 1)];
            double *dw = &layer.dwPrev[static_cast<size_t>(j) *
                                       (layer.in + 1)];
            const double dj = d[static_cast<size_t>(j)];
            for (int i = 0; i < layer.in; ++i) {
                const double update = eta * dj * in[i] + alpha * dw[i];
                w[i] += update;
                dw[i] = update;
            }
            const double update = eta * dj + alpha * dw[layer.in];
            w[layer.in] += update;
            dw[layer.in] = update;
        }
    }
    return sq_error;
}

size_t
Ann::weightCount() const
{
    size_t n = 0;
    for (const auto &layer : layers_)
        n += layer.w.size();
    return n;
}

std::vector<double>
Ann::weights() const
{
    std::vector<double> all;
    for (const auto &layer : layers_)
        all.insert(all.end(), layer.w.begin(), layer.w.end());
    return all;
}

void
Ann::setWeights(const std::vector<double> &flat)
{
    if (flat.size() != weightCount())
        throw std::invalid_argument("weight vector size mismatch");
    size_t at = 0;
    for (auto &layer : layers_) {
        std::copy(flat.begin() + static_cast<ptrdiff_t>(at),
                  flat.begin() + static_cast<ptrdiff_t>(at + layer.w.size()),
                  layer.w.begin());
        at += layer.w.size();
    }
}

} // namespace ml
} // namespace dse
