#include "ml/ann.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

// Hot kernels are compiled once per ISA level with runtime ifunc
// dispatch where the toolchain supports it. The variants stay
// bit-identical because the build forbids FP contraction
// (-ffp-contract=off, see the top-level CMakeLists) and every kernel
// fixes its accumulation order explicitly. Sanitized builds keep the
// plain kernels: ifunc resolvers run before the tsan/asan runtime is
// initialized and crash at load.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#  define DSE_NO_TARGET_CLONES 1
#elif defined(__has_feature)
#  if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#    define DSE_NO_TARGET_CLONES 1
#  endif
#endif
#if defined(__x86_64__) && defined(__has_attribute) && \
    !defined(DSE_NO_TARGET_CLONES)
#  if __has_attribute(target_clones)
#    define DSE_TARGET_CLONES \
        __attribute__((target_clones("default", "avx2", "avx512f")))
#  endif
#endif
#ifndef DSE_TARGET_CLONES
#  define DSE_TARGET_CLONES
#endif

namespace dse {
namespace ml {

namespace {

/**
 * Canonical dot product: four independent accumulation lanes, element
 * i always into lane i % 4, lanes combined pairwise at the end, bias
 * (when present) added last. Every forward kernel — scalar,
 * unit-vectorized, and batched — applies this exact discipline per
 * (point, unit), which is what makes them bit-for-bit interchangeable;
 * the four lanes also map directly onto SIMD registers.
 */
inline double
dot4(const double *a, const double *b, int n)
{
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    int i = 0;
    if (n >= 4) {
        s0 = a[0] * b[0];
        s1 = a[1] * b[1];
        s2 = a[2] * b[2];
        s3 = a[3] * b[3];
        for (i = 4; i + 4 <= n; i += 4) {
            s0 += a[i] * b[i];
            s1 += a[i + 1] * b[i + 1];
            s2 += a[i + 2] * b[i + 2];
            s3 += a[i + 3] * b[i + 3];
        }
    }
    for (; i < n; ++i) {
        const double p = a[i] * b[i];
        switch (i & 3) {
          case 0: s0 += p; break;
          case 1: s1 += p; break;
          case 2: s2 += p; break;
          default: s3 += p; break;
        }
    }
    return (s0 + s1) + (s2 + s3);
}

/** dot4 with both operands strided (one unit column x one block column). */
inline double
dot4Strided(const double *a, size_t astride, const double *x,
            size_t xstride, int n)
{
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    int i = 0;
    if (n >= 4) {
        s0 = a[0] * x[0];
        s1 = a[astride] * x[xstride];
        s2 = a[2 * astride] * x[2 * xstride];
        s3 = a[3 * astride] * x[3 * xstride];
        for (i = 4; i + 4 <= n; i += 4) {
            s0 += a[static_cast<size_t>(i) * astride] *
                x[static_cast<size_t>(i) * xstride];
            s1 += a[static_cast<size_t>(i + 1) * astride] *
                x[static_cast<size_t>(i + 1) * xstride];
            s2 += a[static_cast<size_t>(i + 2) * astride] *
                x[static_cast<size_t>(i + 2) * xstride];
            s3 += a[static_cast<size_t>(i + 3) * astride] *
                x[static_cast<size_t>(i + 3) * xstride];
        }
    }
    for (; i < n; ++i) {
        const double p = a[static_cast<size_t>(i) * astride] *
            x[static_cast<size_t>(i) * xstride];
        switch (i & 3) {
          case 0: s0 += p; break;
          case 1: s1 += p; break;
          case 2: s2 += p; break;
          default: s3 += p; break;
        }
    }
    return (s0 + s1) + (s2 + s3);
}

DSE_TARGET_CLONES void
sigmoidInPlace(double *__restrict v, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        v[i] = stableSigmoid(v[i]);
}

/**
 * Single-unit layer forward: exactly dot4 plus the trailing bias,
 * through the shared sigmoid. Deliberately NOT ISA-cloned — the plain
 * loop both inlines into its caller and vectorizes well, while ifunc
 * dispatch plus the cloned vectorizer's choices on a lone reduction
 * cost several times the kernel itself at this size.
 */
inline double
layerForwardOne(const double *__restrict w, int in,
                const double *__restrict x)
{
    return stableSigmoid(dot4(w, x, in) + w[in]);
}

/**
 * Body of the multi-unit single-point forward pass: y = sigmoid(W x +
 * b), with @p w input-major [(in + 1) x out], bias row last. The
 * accumulation runs vectorized ACROSS UNITS — four accumulator rows of
 * `out` each, lane i % 4 taking input i — so the value computed for
 * every unit is exactly dot4's. @p acc is 4 * out scratch.
 *
 * Always-inlined into ISA-cloned wrappers so each clone vectorizes
 * the body for its own instruction set; the wrappers for the common
 * fixed widths pass stack lane rows (which the compiler keeps in
 * registers across the input strips) and a compile-time width.
 */
__attribute__((always_inline)) inline void
layerForwardWideBody(const double *__restrict w, int in, int out,
                     const double *__restrict x, double *__restrict y,
                     double *__restrict a0, double *__restrict a1,
                     double *__restrict a2, double *__restrict a3)
{
    const size_t o = static_cast<size_t>(out);
    int i = 0;
    if (in >= 4) {
        for (int j = 0; j < out; ++j) {
            a0[j] = x[0] * w[j];
            a1[j] = x[1] * w[o + j];
            a2[j] = x[2] * w[2 * o + j];
            a3[j] = x[3] * w[3 * o + j];
        }
        for (i = 4; i + 4 <= in; i += 4) {
            const double *r = w + static_cast<size_t>(i) * o;
            for (int j = 0; j < out; ++j) {
                a0[j] += x[i] * r[j];
                a1[j] += x[i + 1] * r[o + j];
                a2[j] += x[i + 2] * r[2 * o + j];
                a3[j] += x[i + 3] * r[3 * o + j];
            }
        }
    } else {
        for (int j = 0; j < out; ++j) {
            a0[j] = 0.0;
            a1[j] = 0.0;
            a2[j] = 0.0;
            a3[j] = 0.0;
        }
    }
    for (; i < in; ++i) {
        double *a = (i & 3) == 0 ? a0
            : (i & 3) == 1 ? a1 : (i & 3) == 2 ? a2 : a3;
        const double *r = w + static_cast<size_t>(i) * o;
        for (int j = 0; j < out; ++j)
            a[j] += x[i] * r[j];
    }
    const double *bias = w + static_cast<size_t>(in) * o;
    for (int j = 0; j < out; ++j)
        y[j] = stableSigmoid(((a0[j] + a1[j]) + (a2[j] + a3[j])) +
                             bias[j]);
}

DSE_TARGET_CLONES void
layerForwardWide(const double *__restrict w, int in, int out,
                 const double *__restrict x, double *__restrict y,
                 double *__restrict acc)
{
    layerForwardWideBody(w, in, out, x, y, acc, acc + out,
                         acc + 2 * static_cast<size_t>(out),
                         acc + 3 * static_cast<size_t>(out));
}

/** Fixed-width clone: the paper's default hidden width. */
DSE_TARGET_CLONES void
layerForwardWide16(const double *__restrict w, int in,
                   const double *__restrict x, double *__restrict y)
{
    double a0[16], a1[16], a2[16], a3[16];
    layerForwardWideBody(w, in, 16, x, y, a0, a1, a2, a3);
}

/** Fixed-width clone: the benchmarked double-width variant. */
DSE_TARGET_CLONES void
layerForwardWide32(const double *__restrict w, int in,
                   const double *__restrict x, double *__restrict y)
{
    double a0[32], a1[32], a2[32], a3[32];
    layerForwardWideBody(w, in, 32, x, y, a0, a1, a2, a3);
}

/**
 * One layer of the single-point forward pass, dispatched by width.
 * All the targets follow the same per-(point, unit) lane discipline,
 * so which one runs is invisible in the results.
 */
inline void
layerForwardScalar(const double *__restrict w, int in, int out,
                   const double *__restrict x, double *__restrict y,
                   double *__restrict acc)
{
    if (out == 1)
        y[0] = layerForwardOne(w, in, x);
    else if (out == 16)
        layerForwardWide16(w, in, x, y);
    else if (out == 32)
        layerForwardWide32(w, in, x, y);
    else
        layerForwardWide(w, in, out, x, y, acc);
}

/**
 * One layer of the batched forward pass on a transposed block: xT is
 * [in][nb], yT is [out][nb]. Each unit's weight column is read once
 * for the whole block; points advance in register sub-blocks of kW
 * with the four dot4 lanes held entirely in registers. Per point, the
 * arithmetic is exactly dot4's.
 */
DSE_TARGET_CLONES void
layerForwardBatch(const double *__restrict w, int in, int out,
                  const double *__restrict xT, size_t nb,
                  double *__restrict yT)
{
    constexpr size_t kW = 8;
    const size_t o = static_cast<size_t>(out);
    const double *biasRow = w + static_cast<size_t>(in) * o;
    for (int j = 0; j < out; ++j) {
        const double *wj = w + j;  // unit j's weight column, stride o
        const double bias = biasRow[j];
        double *y = yT + static_cast<size_t>(j) * nb;
        size_t b = 0;
        for (; b + kW <= nb; b += kW) {
            const double *xb = xT + b;
            double s0[kW], s1[kW], s2[kW], s3[kW];
            int i = 0;
            if (in >= 4) {
                const double w0 = wj[0];
                const double w1 = wj[o];
                const double w2 = wj[2 * o];
                const double w3 = wj[3 * o];
                for (size_t v = 0; v < kW; ++v) {
                    s0[v] = w0 * xb[v];
                    s1[v] = w1 * xb[nb + v];
                    s2[v] = w2 * xb[2 * nb + v];
                    s3[v] = w3 * xb[3 * nb + v];
                }
                for (i = 4; i + 4 <= in; i += 4) {
                    const double *wi = wj + static_cast<size_t>(i) * o;
                    const double u0 = wi[0];
                    const double u1 = wi[o];
                    const double u2 = wi[2 * o];
                    const double u3 = wi[3 * o];
                    const double *xi = xb + static_cast<size_t>(i) * nb;
                    for (size_t v = 0; v < kW; ++v) {
                        s0[v] += u0 * xi[v];
                        s1[v] += u1 * xi[nb + v];
                        s2[v] += u2 * xi[2 * nb + v];
                        s3[v] += u3 * xi[3 * nb + v];
                    }
                }
            } else {
                for (size_t v = 0; v < kW; ++v) {
                    s0[v] = 0.0;
                    s1[v] = 0.0;
                    s2[v] = 0.0;
                    s3[v] = 0.0;
                }
            }
            for (; i < in; ++i) {
                double *s = (i & 3) == 0 ? s0
                    : (i & 3) == 1 ? s1 : (i & 3) == 2 ? s2 : s3;
                const double wv = wj[static_cast<size_t>(i) * o];
                const double *xi = xb + static_cast<size_t>(i) * nb;
                for (size_t v = 0; v < kW; ++v)
                    s[v] += wv * xi[v];
            }
            for (size_t v = 0; v < kW; ++v)
                y[b + v] = ((s0[v] + s1[v]) + (s2[v] + s3[v])) + bias;
        }
        for (; b < nb; ++b)
            y[b] = dot4Strided(wj, o, xT + b, nb, in) + bias;
    }
    sigmoidInPlace(yT, o * nb);
}

/**
 * Momentum weight update (Equation 3.2) for a single-output layer,
 * whose weight column is contiguous: one unit-stride pass over
 * [in + 1] weights. Plain for the same reason as layerForwardOne.
 */
inline void
updateLayerOne(double *__restrict w, double *__restrict dw, int in,
               const double *__restrict x, double d0, double eta,
               double alpha)
{
    const double g0 = eta * d0;
    for (int i = 0; i < in; ++i) {
        const double update = g0 * x[i] + alpha * dw[i];
        w[i] += update;
        dw[i] = update;
    }
    const double update = g0 + alpha * dw[in];
    w[in] += update;
    dw[in] = update;
}

/**
 * Momentum weight update (Equation 3.2) for a multi-unit layer. In
 * the input-major layout this is a single unit-stride pass over the
 * whole [(in + 1) x out] arena slab: input i's row of per-unit
 * updates is g[j] * x[i] + alpha * dw, with g[j] = eta * d[j]
 * precomputed into @p g (out scratch doubles). Same per-weight
 * arithmetic and order as the classical per-unit loop.
 */
DSE_TARGET_CLONES void
updateLayer(double *__restrict w, double *__restrict dw, int in, int out,
            const double *__restrict x, const double *__restrict d,
            double eta, double alpha, double *__restrict g)
{
    const size_t o = static_cast<size_t>(out);
    for (int j = 0; j < out; ++j)
        g[j] = eta * d[j];
    for (int i = 0; i < in; ++i) {
        double *wr = w + static_cast<size_t>(i) * o;
        double *dwr = dw + static_cast<size_t>(i) * o;
        const double xi = x[i];
        for (int j = 0; j < out; ++j) {
            const double update = g[j] * xi + alpha * dwr[j];
            wr[j] += update;
            dwr[j] = update;
        }
    }
    double *wb = w + static_cast<size_t>(in) * o;
    double *dwb = dw + static_cast<size_t>(in) * o;
    for (int j = 0; j < out; ++j) {
        const double update = g[j] + alpha * dwb[j];
        wb[j] += update;
        dwb[j] = update;
    }
}

/**
 * Fused delta backprop + momentum update (Equation 3.2) for a
 * single-output layer, whose weight column is contiguous: one
 * unit-stride pass over [in + 1] weights reads each weight pre-update
 * to form the incoming delta d[i], then applies the update to that
 * same weight before moving on — exactly backpropDeltas followed by
 * updateLayerOne, with half the weight-arena traffic. The layer's
 * input vector IS the previous layer's activation vector, so @p act
 * serves both the sigmoid derivative (o_i (1 - o_i)) and the update's
 * x_i. Plain for the same reason as layerForwardOne.
 */
inline void
fusedBackUpdateOne(double *__restrict w, double *__restrict dw, int in,
                   const double *__restrict act, double dn0,
                   double *__restrict d, double eta, double alpha)
{
    const double g0 = eta * dn0;
    for (int i = 0; i < in; ++i) {
        const double oi = act[i];
        d[i] = (w[i] * dn0) * oi * (1.0 - oi);
        const double update = g0 * oi + alpha * dw[i];
        w[i] += update;
        dw[i] = update;
    }
    const double update = g0 + alpha * dw[in];
    w[in] += update;
    dw[in] = update;
}

/**
 * Body of the fused backprop + update for a multi-unit layer: per
 * input row i, the pre-update weight row forms the incoming delta
 * (dot4 against the layer's own deltas — the exact backpropDeltas
 * arithmetic), then the same row takes the Equation-3.2 momentum
 * update (the exact updateLayer arithmetic, g[j] = eta * d[j]
 * precomputed into @p g). Each [(in + 1) x out] slab of the weight
 * and momentum arenas is therefore touched once per example instead
 * of twice. Always-inlined into ISA-cloned wrappers like the forward
 * kernels; the fixed-width wrappers pass stack g rows.
 */
__attribute__((always_inline)) inline void
fusedBackUpdateWideBody(double *__restrict w, double *__restrict dw,
                        int in, int out, const double *__restrict act,
                        const double *__restrict dnext,
                        double *__restrict d, double eta, double alpha,
                        double *__restrict g)
{
    const size_t o = static_cast<size_t>(out);
    for (int j = 0; j < out; ++j)
        g[j] = eta * dnext[j];
    for (int i = 0; i < in; ++i) {
        double *wr = w + static_cast<size_t>(i) * o;
        double *dwr = dw + static_cast<size_t>(i) * o;
        const double sum = dot4(wr, dnext, out);
        const double oi = act[i];
        d[i] = sum * oi * (1.0 - oi);
        for (int j = 0; j < out; ++j) {
            const double update = g[j] * oi + alpha * dwr[j];
            wr[j] += update;
            dwr[j] = update;
        }
    }
    double *wb = w + static_cast<size_t>(in) * o;
    double *dwb = dw + static_cast<size_t>(in) * o;
    for (int j = 0; j < out; ++j) {
        const double update = g[j] + alpha * dwb[j];
        wb[j] += update;
        dwb[j] = update;
    }
}

DSE_TARGET_CLONES void
fusedBackUpdateWide(double *__restrict w, double *__restrict dw, int in,
                    int out, const double *__restrict act,
                    const double *__restrict dnext, double *__restrict d,
                    double eta, double alpha, double *__restrict g)
{
    fusedBackUpdateWideBody(w, dw, in, out, act, dnext, d, eta, alpha, g);
}

/** Fixed-width clone: the paper's default hidden width. */
DSE_TARGET_CLONES void
fusedBackUpdateWide16(double *__restrict w, double *__restrict dw, int in,
                      const double *__restrict act,
                      const double *__restrict dnext,
                      double *__restrict d, double eta, double alpha)
{
    double g[16];
    fusedBackUpdateWideBody(w, dw, in, 16, act, dnext, d, eta, alpha, g);
}

/** Fixed-width clone: the benchmarked double-width variant. */
DSE_TARGET_CLONES void
fusedBackUpdateWide32(double *__restrict w, double *__restrict dw, int in,
                      const double *__restrict act,
                      const double *__restrict dnext,
                      double *__restrict d, double eta, double alpha)
{
    double g[32];
    fusedBackUpdateWideBody(w, dw, in, 32, act, dnext, d, eta, alpha, g);
}

/**
 * Fused backward+update for one layer, dispatched by width with the
 * same discipline as the forward pass: out == 1 stays plain (the
 * dominant shape — one delta chain per output unit — where cloning
 * pessimizes the tiny reduction ~7x), the fixed 16/32 widths and the
 * runtime width are ISA-cloned. Every target computes backpropDeltas'
 * and updateLayer's exact per-element arithmetic, so which one runs
 * is invisible in the results.
 */
inline void
fusedBackUpdate(double *__restrict w, double *__restrict dw, int in,
                int out, const double *__restrict act,
                const double *__restrict dnext, double *__restrict d,
                double eta, double alpha, double *__restrict g)
{
    if (out == 1)
        fusedBackUpdateOne(w, dw, in, act, dnext[0], d, eta, alpha);
    else if (out == 16)
        fusedBackUpdateWide16(w, dw, in, act, dnext, d, eta, alpha);
    else if (out == 32)
        fusedBackUpdateWide32(w, dw, in, act, dnext, d, eta, alpha);
    else
        fusedBackUpdateWide(w, dw, in, out, act, dnext, d, eta, alpha, g);
}

/**
 * Per-thread scratch for the layer kernels (activation ping-pong and
 * cross-unit accumulators). Grow-only, so prediction does no heap
 * work after the first call on each thread.
 */
double *
kernelScratch(size_t n)
{
    thread_local std::vector<double> buf;
    if (buf.size() < n)
        buf.resize(n);
    return buf.data();
}

/**
 * Per-thread scratch for block transposes and outputs — distinct from
 * kernelScratch so predictBatch can hold a block while predictBlockT
 * sizes its own buffers.
 */
double *
ioScratch(size_t n)
{
    thread_local std::vector<double> buf;
    if (buf.size() < n)
        buf.resize(n);
    return buf.data();
}

} // namespace

Ann::Ann(int inputs, int outputs, const AnnParams &params, Rng &rng)
    : inputs_(inputs), outputs_(outputs), params_(params)
{
    if (inputs <= 0 || outputs <= 0)
        throw std::invalid_argument("network needs inputs and outputs");
    if (params.hiddenLayers < 1 || params.hiddenUnits < 1)
        throw std::invalid_argument("network needs a hidden layer");

    size_t wOff = 0;
    size_t actOff = 0;
    auto addLayer = [&](int in, int out) {
        Layer layer;
        layer.in = in;
        layer.out = out;
        layer.w = wOff;
        layer.act = actOff;
        wOff += static_cast<size_t>(in + 1) * out;
        actOff += static_cast<size_t>(out);
        maxWidth_ = std::max(maxWidth_, out);
        layers_.push_back(layer);
    };
    int prev = inputs;
    for (int l = 0; l < params.hiddenLayers; ++l) {
        addLayer(prev, params.hiddenUnits);
        prev = params.hiddenUnits;
    }
    addLayer(prev, outputs);

    w_.resize(wOff);
    dwPrev_.assign(wOff, 0.0);
    act_.assign(actOff, 0.0);
    delta_.assign(actOff, 0.0);
    // Draw in the historical per-unit order (unit-major, bias last per
    // unit) and scatter into the input-major arena, so a given seed
    // yields the same initial weight at every logical position.
    for (const Layer &layer : layers_) {
        double *w = w_.data() + layer.w;
        const size_t o = static_cast<size_t>(layer.out);
        for (int j = 0; j < layer.out; ++j)
            for (int i = 0; i <= layer.in; ++i)
                w[static_cast<size_t>(i) * o + static_cast<size_t>(j)] =
                    rng.uniform(-params.initWeightRange,
                                params.initWeightRange);
    }
}

void
Ann::predictBlockT(const double *xT, size_t nb, double *yT) const
{
    assert(nb >= 1 && nb <= kBlock);
    const size_t width = static_cast<size_t>(maxWidth_);
    if (nb == 1) {
        // Single point: the unit-vectorized scalar kernel, which
        // follows the same per-(point, unit) lane discipline as the
        // batch kernel, so the result matches the batched path bit
        // for bit.
        double *buf = kernelScratch(6 * width);
        double *a0 = buf;
        double *a1 = buf + width;
        double *acc = buf + 2 * width;
        const double *cur = xT;
        for (size_t l = 0; l < layers_.size(); ++l) {
            const Layer &layer = layers_[l];
            double *dst = l + 1 == layers_.size() ? yT
                : (l % 2 == 0 ? a0 : a1);
            layerForwardScalar(w_.data() + layer.w, layer.in, layer.out,
                               cur, dst, acc);
            cur = dst;
        }
        return;
    }
    double *buf = kernelScratch(2 * width * kBlock);
    double *a0 = buf;
    double *a1 = buf + width * kBlock;
    const double *cur = xT;
    for (size_t l = 0; l < layers_.size(); ++l) {
        const Layer &layer = layers_[l];
        double *dst = l + 1 == layers_.size() ? yT
            : (l % 2 == 0 ? a0 : a1);
        layerForwardBatch(w_.data() + layer.w, layer.in, layer.out,
                          cur, nb, dst);
        cur = dst;
    }
}

void
Ann::predictBatch(const double *x, size_t n, double *y) const
{
    const size_t in = static_cast<size_t>(inputs_);
    const size_t out = static_cast<size_t>(outputs_);
    double *buf = ioScratch((in + out) * kBlock);
    double *xT = buf;
    double *yT = buf + in * kBlock;
    for (size_t at = 0; at < n; at += kBlock) {
        const size_t nb = std::min(kBlock, n - at);
        const double *xb = x + at * in;
        for (size_t i = 0; i < in; ++i)
            for (size_t b = 0; b < nb; ++b)
                xT[i * nb + b] = xb[b * in + i];
        predictBlockT(xT, nb, yT);
        double *yb = y + at * out;
        for (size_t b = 0; b < nb; ++b)
            for (size_t o = 0; o < out; ++o)
                yb[b * out + o] = yT[o * nb + b];
    }
}

std::vector<double>
Ann::predict(const std::vector<double> &input) const
{
    assert(static_cast<int>(input.size()) == inputs_);
    // A feature vector is its own one-column transpose, so the input
    // is read in place — no copy, and the only allocation is the
    // returned vector itself.
    std::vector<double> out(static_cast<size_t>(outputs_));
    predictBlockT(input.data(), 1, out.data());
    return out;
}

double
Ann::predictScalar(const std::vector<double> &input) const
{
    assert(static_cast<int>(input.size()) == inputs_);
    double *yT = ioScratch(static_cast<size_t>(outputs_));
    predictBlockT(input.data(), 1, yT);
    return yT[0];
}

double
Ann::train(const std::vector<double> &input,
           const std::vector<double> &target)
{
    assert(static_cast<int>(input.size()) == inputs_);
    assert(static_cast<int>(target.size()) == outputs_);
    return trainEpoch(input.data(), target.data(), nullptr, 1);
}

double
Ann::trainEpoch(const double *x, const double *t, const uint32_t *order,
                size_t rows)
{
    const size_t in = static_cast<size_t>(inputs_);
    const size_t out = static_cast<size_t>(outputs_);
    double sum = 0.0;
    for (size_t r = 0; r < rows; ++r) {
        const size_t row = order ? order[r] : r;
        sum += trainExample(x + row * in, t + row * out);
    }
    return sum;
}

double
Ann::trainExample(const double *x, const double *t)
{
    // Forward, into the member activation arena (training owns it;
    // const predictions use per-thread scratch instead).
    double *acc = kernelScratch(4 * static_cast<size_t>(maxWidth_));
    const double *cur = x;
    for (size_t l = 0; l < layers_.size(); ++l) {
        const Layer &layer = layers_[l];
        layerForwardScalar(w_.data() + layer.w, layer.in, layer.out,
                           cur, act_.data() + layer.act, acc);
        cur = act_.data() + layer.act;
    }

    // Output deltas: (t - o) * o * (1 - o) for sigmoid outputs.
    double sq_error = 0.0;
    {
        const Layer &layer = layers_.back();
        const double *o = act_.data() + layer.act;
        double *d = delta_.data() + layer.act;
        for (int j = 0; j < outputs_; ++j) {
            const double oj = o[j];
            const double err = t[j] - oj;
            sq_error += err * err;
            d[j] = err * oj * (1.0 - oj);
        }
    }

    // Fused backward sweep, back to front (DESIGN.md, "Training
    // pipeline"): visiting layer l, its deltas are already known, so
    // each of its weight rows is read exactly once — forming row i's
    // contribution to the previous layer's delta from the pre-update
    // weights — and the Equation-3.2 momentum update lands on that
    // row in the same pass. Every delta still sees pre-update weights
    // and every weight sees the same operands as the historical
    // backprop-then-update loops (layer updates are independent of
    // each other), so the fusion is bit-invisible; it just halves the
    // weight- and momentum-arena traffic. acc doubles as the
    // g = eta * d scratch, as in the old update loop.
    const double eta = params_.learningRate;
    const double alpha = params_.momentum;
    for (size_t l = layers_.size(); l-- > 1;) {
        const Layer &layer = layers_[l];
        fusedBackUpdate(w_.data() + layer.w, dwPrev_.data() + layer.w,
                        layer.in, layer.out,
                        act_.data() + layers_[l - 1].act,
                        delta_.data() + layer.act,
                        delta_.data() + layers_[l - 1].act, eta, alpha,
                        acc);
    }

    // The first layer reads the example input and feeds no earlier
    // deltas: plain update.
    {
        const Layer &layer = layers_.front();
        if (layer.out == 1) {
            updateLayerOne(w_.data() + layer.w, dwPrev_.data() + layer.w,
                           layer.in, x, delta_[layer.act], eta, alpha);
        } else {
            updateLayer(w_.data() + layer.w, dwPrev_.data() + layer.w,
                        layer.in, layer.out, x,
                        delta_.data() + layer.act, eta, alpha, acc);
        }
    }
    if (!std::isfinite(sq_error))
        diverged_ = true;
    return sq_error;
}

bool
Ann::finiteWeights() const
{
    for (double w : w_) {
        if (!std::isfinite(w))
            return false;
    }
    for (double dw : dwPrev_) {
        if (!std::isfinite(dw))
            return false;
    }
    return true;
}

std::vector<double>
Ann::weights() const
{
    std::vector<double> flat;
    flat.reserve(w_.size());
    for (const Layer &layer : layers_) {
        const double *w = w_.data() + layer.w;
        const size_t o = static_cast<size_t>(layer.out);
        for (int j = 0; j < layer.out; ++j)
            for (int i = 0; i <= layer.in; ++i)
                flat.push_back(w[static_cast<size_t>(i) * o +
                                 static_cast<size_t>(j)]);
    }
    return flat;
}

void
Ann::setWeights(const std::vector<double> &flat)
{
    if (flat.size() != w_.size())
        throw std::invalid_argument("weight vector size mismatch");
    const double *src = flat.data();
    for (const Layer &layer : layers_) {
        double *w = w_.data() + layer.w;
        const size_t o = static_cast<size_t>(layer.out);
        for (int j = 0; j < layer.out; ++j)
            for (int i = 0; i <= layer.in; ++i)
                w[static_cast<size_t>(i) * o + static_cast<size_t>(j)] =
                    *src++;
    }
}

} // namespace ml
} // namespace dse
