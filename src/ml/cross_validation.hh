/**
 * @file
 * k-fold cross-validation ensemble training (Section 3.2).
 *
 * The training sample is split into k folds. Network i trains on
 * folds {1..k} \ {es_i, test_i}, early-stops on fold es_i, and its
 * accuracy is estimated on fold test_i; the es/test folds rotate so
 * every fold serves each role once. The resulting k networks form an
 * ensemble whose prediction is the average of the member predictions.
 * The pooled percentage errors on the k test folds give the
 * cross-validation estimate of the ensemble's mean error and its
 * standard deviation over the whole design space — the signal the
 * architect uses to decide when to stop simulating.
 *
 * Architecture-specific training details from Section 3.3:
 *  - examples are presented at a frequency proportional to the
 *    inverse of their target value, optimizing percentage (not
 *    absolute) error;
 *  - early stopping monitors percentage error on the ES fold and
 *    rolls back to the best-seen weights.
 *
 * Fold networks are independent: each owns an RNG stream derived from
 * the training seed via SplitMix64, so trainEnsemble trains the k
 * folds concurrently on the global ThreadPool, with results
 * bit-identical to serial execution at any DSE_THREADS setting (see
 * DESIGN.md, "Parallel execution & determinism").
 *
 * Per fold, training rows are packed once into a contiguous matrix
 * with pre-encoded targets, and each epoch runs as a single
 * Ann::trainEpoch call over a pre-drawn presentation order (see
 * DESIGN.md, "Training pipeline") — bit-identical to the historical
 * per-example loop, without its per-presentation encode and vector
 * traffic.
 */

#ifndef DSE_ML_CROSS_VALIDATION_HH
#define DSE_ML_CROSS_VALIDATION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ml/ann.hh"
#include "ml/encoding.hh"

namespace dse {
namespace ml {

/** A supervised regression data set (encoded features, raw targets). */
struct DataSet
{
    std::vector<std::vector<double>> x;
    std::vector<double> y;

    size_t size() const { return x.size(); }

    void
    add(std::vector<double> features, double target)
    {
        x.push_back(std::move(features));
        y.push_back(target);
    }
};

/** Cross-validation estimate of model error over the design space. */
struct ErrorEstimate
{
    double meanPct = 0.0;  ///< estimated mean percentage error
    double sdPct = 0.0;    ///< estimated SD of percentage error
};

/** Training configuration. */
struct TrainOptions
{
    int folds = 10;
    AnnParams ann;
    int maxEpochs = 8000;
    /** Evaluate the early-stopping fold every this many epochs. */
    int esInterval = 10;
    /** Early stopping: ES evaluations without improvement to stop. */
    int patience = 40;
    /** Present examples at frequency proportional to 1/target. */
    bool weightedPresentation = true;
    /** Early-stop on percentage (vs. squared) error. */
    bool percentageEarlyStop = true;
    /** Disable early stopping entirely (ablation). */
    bool earlyStopping = true;
    uint64_t seed = 12345;
    /**
     * Retraining attempts granted to a fold whose network diverges
     * (NaN/Inf weights or an exploding epoch loss). Each retry
     * reinitializes from a deterministically reseeded SplitMix64
     * stream, so recovery is bit-identical at any thread count. A
     * fold that exhausts 1 + foldRetries attempts is dropped and the
     * ensemble degrades gracefully (see trainEnsemble).
     */
    int foldRetries = 3;
};

/** One fold's failure report when training degraded (see Ensemble). */
struct TrainWarning
{
    int fold = 0;      ///< which fold was dropped
    int attempts = 0;  ///< initializations tried before giving up
    std::string message;
};

/**
 * The trained cross-validation ensemble: k networks plus the target
 * scaler and the error estimate derived from the test folds.
 */
class Ensemble
{
  public:
    Ensemble(std::vector<Ann> nets, TargetScaler scaler,
             ErrorEstimate estimate,
             std::vector<TrainWarning> warnings = {});

    /** Ensemble prediction: average of member predictions, decoded. */
    double predict(const std::vector<double> &features) const;

    /**
     * Batched ensemble prediction: @p x is row-major [n x inputs],
     * @p out receives the n decoded predictions. Each block of
     * Ann::kBlock points is transposed once and reused across all
     * members; per point, bit-for-bit identical to predict().
     * Thread-safe on a const ensemble.
     */
    void predictBatch(const double *x, size_t n, double *out) const;

    /**
     * Points per parallel chunk of the index-addressed batch paths
     * (predictIndices / predictRange / memberSpreadIndices): a few
     * Ann::kBlock panels per pool task. The chunk partition is a pure
     * function of the input length — never of DSE_THREADS — which is
     * what makes every chunked result bit-identical at any thread
     * count.
     */
    static constexpr size_t kScoreChunk = 4 * Ann::kBlock;

    /**
     * Predict a set of design points addressed by flat index,
     * encoding and evaluating block-wise in parallel on the global
     * ThreadPool. The block partition is fixed (independent of
     * DSE_THREADS), so results are bit-identical at any thread count
     * and to a predict() loop over the same indices.
     */
    std::vector<double> predictIndices(
        const DesignSpace &space,
        const std::vector<uint64_t> &indices) const;

    /**
     * Streaming prediction of the consecutive index range
     * [first, first + count): same fixed-chunk parallel evaluation as
     * predictIndices on an iota vector — bit-identical to it — but
     * the indices are implicit, so a full-space sweep never
     * materializes an 8-byte-per-point index vector. Every chunk
     * encodes through the odometer DesignSpace::encodeRangeInto.
     */
    std::vector<double> predictRange(const DesignSpace &space,
                                     uint64_t first, size_t count) const;

    /** Prediction of a single member (ablation/diagnostics). */
    double predictMember(size_t i,
                         const std::vector<double> &features) const;

    /**
     * Spread of member predictions on a point (sample SD, raw units).
     * High disagreement flags uncertainty — the active-learning
     * extension samples where this is largest.
     */
    double memberSpread(const std::vector<double> &features) const;

    /**
     * Batched member spread: @p x is row-major [n x inputs], @p out
     * receives the n sample SDs. Each block of Ann::kBlock points is
     * transposed once into a coordinate-major panel and reused across
     * all members (the predictBatch treatment applied to scoring);
     * per point the member predictions fold through OnlineStats in
     * member order, so every value is bit-for-bit the memberSpread()
     * result. Thread-safe on a const ensemble.
     */
    void memberSpreadBatch(const double *x, size_t n, double *out) const;

    /**
     * Member spread of a set of design points addressed by flat
     * index: encodes candidates in fixed kScoreChunk panels
     * (odometer encodeRangeInto for consecutive runs, encodeIndexInto
     * otherwise) and scores them via memberSpreadBatch in parallel on
     * the global ThreadPool. Results are in input order and
     * bit-identical to a memberSpread(space.encodeIndex(i)) loop at
     * any thread count — the query-by-committee hot path.
     */
    std::vector<double> memberSpreadIndices(
        const DesignSpace &space,
        const std::vector<uint64_t> &indices) const;

    size_t members() const { return nets_.size(); }

    /** Cross-validation error estimate (mean and SD, percent). When
     *  training degraded, the estimate is widened (see warnings()). */
    const ErrorEstimate &estimate() const { return estimate_; }

    /**
     * Structured reports for folds dropped during training. Empty
     * for a healthy ensemble; non-empty means fewer than the
     * requested k members survived and estimate() was widened by
     * sqrt(k / survivors) to stay conservative.
     */
    const std::vector<TrainWarning> &warnings() const
    {
        return warnings_;
    }

    /** True if any fold was dropped during training. */
    bool degraded() const { return !warnings_.empty(); }

    const TargetScaler &scaler() const { return scaler_; }

    /** Shared member-network topology (serialization). */
    struct NetMeta
    {
        int inputs = 0;
        int outputs = 0;
        AnnParams params;
    };

    /** Topology and hyper-parameters of the member networks. */
    NetMeta netMeta() const;

    /** Flat weight vector of one member (serialization). */
    std::vector<double> memberWeights(size_t i) const;

  private:
    std::vector<Ann> nets_;
    TargetScaler scaler_;
    ErrorEstimate estimate_;
    std::vector<TrainWarning> warnings_;
};

/**
 * Train a k-fold cross-validation ensemble on a data set.
 *
 * Failure containment: a fold whose network diverges is retried up
 * to opts.foldRetries times from deterministically reseeded
 * initializations; a fold that still fails is dropped rather than
 * aborting the campaign. The returned ensemble then carries the
 * surviving members, a warnings() entry per dropped fold, and an
 * error estimate widened by sqrt(k / survivors). Only if *every*
 * fold exhausts its retries does this throw.
 *
 * @param data encoded features and raw (unscaled) targets
 * @param opts training configuration
 * @return the ensemble with its error estimate
 * @throws std::runtime_error if all folds diverge
 */
Ensemble trainEnsemble(const DataSet &data, const TrainOptions &opts);

} // namespace ml
} // namespace dse

#endif // DSE_ML_CROSS_VALIDATION_HH
