#include "ml/explorer.hh"

#include <algorithm>
#include <stdexcept>

#include "util/metrics.hh"
#include "util/thread_pool.hh"
#include "util/trace.hh"

namespace dse {
namespace ml {

namespace {

/** Exploration-stage metrics (DESIGN.md "Observability"). */
struct ExploreMetrics
{
    obs::CounterId rounds, pointsSimulated, pointsPredicted,
        pointsScored, scoreChunks;
    obs::HistogramId encodeWallNs, predictWallNs, scoreWallNs;

    static const ExploreMetrics &
    get()
    {
        static const ExploreMetrics m = [] {
            auto &r = obs::MetricsRegistry::global();
            ExploreMetrics e;
            e.rounds = r.counter("explore.rounds");
            e.pointsSimulated = r.counter("explore.points_simulated");
            e.pointsPredicted = r.counter("explore.points_predicted");
            e.pointsScored = r.counter("explore.points_scored");
            e.scoreChunks = r.counter("explore.score_chunks");
            e.encodeWallNs = r.histogram("explore.encode_wall_ns");
            e.predictWallNs = r.histogram("explore.predict_wall_ns");
            e.scoreWallNs = r.histogram("explore.score_wall_ns");
            return e;
        }();
        return m;
    }
};

} // namespace

Explorer::Explorer(const DesignSpace &space, SimulatorFn simulator,
                   ExplorerOptions opts)
    : space_(space), simulator_(std::move(simulator)),
      opts_(std::move(opts)), rng_(opts_.seed)
{
    if (!simulator_)
        throw std::invalid_argument("explorer needs a simulator function");
    if (opts_.batchSize == 0)
        throw std::invalid_argument("batch size must be positive");
    seen_.assign(space_.size(), false);
    if (opts_.maxSimulations == 0)
        opts_.maxSimulations = space_.size();
}

std::vector<uint64_t>
Explorer::pickBatch(size_t n)
{
    const uint64_t space_size = space_.size();
    std::vector<uint64_t> batch;

    auto draw_unseen = [&](size_t want) {
        std::vector<uint64_t> out;
        // Rejection sampling is fine while the sampled fraction is
        // small (the regime this technique lives in); fall back to a
        // scan of the remainder otherwise.
        size_t attempts = 0;
        while (out.size() < want && attempts < want * 20) {
            const uint64_t idx = rng_.below(space_size);
            if (!seen_[idx]) {
                seen_[idx] = true;
                out.push_back(idx);
            }
            ++attempts;
        }
        if (out.size() < want) {
            for (uint64_t idx = 0; idx < space_size && out.size() < want;
                 ++idx) {
                if (!seen_[idx]) {
                    seen_[idx] = true;
                    out.push_back(idx);
                }
            }
        }
        return out;
    };

    if (!opts_.activeLearning || !ensemble_) {
        batch = draw_unseen(n);
    } else {
        // Query-by-committee: draw a candidate pool, rank by ensemble
        // member disagreement, keep the most uncertain points.
        std::vector<uint64_t> pool =
            draw_unseen(std::max(n, opts_.candidatePool));
        std::vector<double> spread;
        {
            const auto &em = ExploreMetrics::get();
            obs::TraceScope span("score", em.scoreWallNs);
            auto &registry = obs::MetricsRegistry::global();
            registry.add(em.pointsScored, pool.size());
            registry.add(em.scoreChunks,
                         (pool.size() + Ensemble::kScoreChunk - 1) /
                             Ensemble::kScoreChunk);
            // Blocked committee scoring: bit-identical per point to
            // memberSpread(space_.encodeIndex(i)) at any thread count.
            spread = ensemble_->memberSpreadIndices(space_, pool);
        }
        std::vector<std::pair<double, uint64_t>> scored(pool.size());
        for (size_t i = 0; i < pool.size(); ++i)
            scored[i] = {spread[i], pool[i]};
        // Deterministic top-n: spread descending with the candidate
        // index as tie-break, a strict total order (pool indices are
        // unique) — equal-spread candidates no longer land in
        // implementation-defined order. nth_element + a sort of the
        // kept prefix beats full-sorting the pool.
        const auto rank = [](const std::pair<double, uint64_t> &a,
                             const std::pair<double, uint64_t> &b) {
            if (a.first != b.first)
                return a.first > b.first;
            return a.second < b.second;
        };
        const size_t keep = std::min(n, scored.size());
        if (keep < scored.size())
            std::nth_element(scored.begin(),
                             scored.begin() + static_cast<ptrdiff_t>(keep),
                             scored.end(), rank);
        std::sort(scored.begin(),
                  scored.begin() + static_cast<ptrdiff_t>(keep), rank);
        for (size_t i = 0; i < scored.size(); ++i) {
            if (i < keep) {
                batch.push_back(scored[i].second);
            } else {
                seen_[scored[i].second] = false;  // return to the pool
            }
        }
    }
    return batch;
}

std::optional<ExplorationStep>
Explorer::step()
{
    const size_t budget_left = opts_.maxSimulations > indices_.size()
        ? opts_.maxSimulations - indices_.size() : 0;
    const size_t want = std::min(opts_.batchSize, budget_left);
    if (want == 0)
        return std::nullopt;

    const auto batch = pickBatch(want);
    if (batch.empty())
        return std::nullopt;

    // Let a dispatcher (or any batch-aware simulator) start on the
    // whole batch before the sequential per-index accumulation below.
    if (opts_.prefetch)
        opts_.prefetch(batch);

    const auto &em = ExploreMetrics::get();
    auto &registry = obs::MetricsRegistry::global();
    registry.add(em.rounds);
    registry.add(em.pointsSimulated, batch.size());

    // Encode the whole batch first (a span of pure feature encoding),
    // then simulate and accumulate. The simulator memoizes by index
    // and the encoding is a pure function of the index, so splitting
    // the loop changes no result. One contiguous
    // [batch x encodedWidth] buffer filled by encodeIndexInto — no
    // per-point heap allocation in the encode span.
    const size_t width = static_cast<size_t>(space_.encodedWidth());
    std::vector<double> features(batch.size() * width);
    {
        obs::TraceScope span("encode", em.encodeWallNs);
        for (size_t i = 0; i < batch.size(); ++i)
            space_.encodeIndexInto(batch[i], features.data() + i * width);
    }
    for (size_t i = 0; i < batch.size(); ++i) {
        indices_.push_back(batch[i]);
        const double *row = features.data() + i * width;
        data_.add(std::vector<double>(row, row + width),
                  simulator_(batch[i]));
    }

    TrainOptions train = opts_.train;
    // Vary the training seed with the data so successive rounds do
    // not reuse identical fold assignments on a prefix of the data.
    train.seed = opts_.train.seed + indices_.size();
    ensemble_ = std::make_unique<Ensemble>(trainEnsemble(data_, train));

    ExplorationStep out;
    out.totalSamples = indices_.size();
    out.estimate = ensemble_->estimate();
    return out;
}

std::vector<ExplorationStep>
Explorer::run()
{
    std::vector<ExplorationStep> history;
    for (;;) {
        auto step_result = step();
        if (!step_result)
            break;
        history.push_back(*step_result);
        if (step_result->estimate.meanPct <= opts_.targetMeanPct)
            break;
    }
    return history;
}

const Ensemble &
Explorer::ensemble() const
{
    if (!ensemble_)
        throw std::logic_error("no ensemble trained yet; call step()");
    return *ensemble_;
}

void
Explorer::seedEnsemble(Ensemble model)
{
    ensemble_ = std::make_unique<Ensemble>(std::move(model));
}

double
Explorer::predictIndex(uint64_t index) const
{
    return ensemble().predict(space_.encodeIndex(index));
}

std::vector<double>
Explorer::predictIndices(const std::vector<uint64_t> &indices) const
{
    const auto &em = ExploreMetrics::get();
    obs::TraceScope span("predict", em.predictWallNs);
    obs::MetricsRegistry::global().add(em.pointsPredicted,
                                       indices.size());
    // Batched, parallel, and bit-identical to a predictIndex loop.
    return ensemble().predictIndices(space_, indices);
}

std::vector<double>
Explorer::predictRange(uint64_t first, size_t count) const
{
    const auto &em = ExploreMetrics::get();
    obs::TraceScope span("predict", em.predictWallNs);
    obs::MetricsRegistry::global().add(em.pointsPredicted, count);
    return ensemble().predictRange(space_, first, count);
}

std::vector<double>
Explorer::predictSpace() const
{
    // Streamed: no iota index vector — for the 2^31-point spaces this
    // library targets that materialization is pure page traffic.
    return predictRange(0, space_.size());
}

} // namespace ml
} // namespace dse
