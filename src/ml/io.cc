#include "ml/io.hh"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace dse {
namespace ml {

namespace {

constexpr const char *kMagic = "dse-ensemble";
constexpr int kVersion = 1;

void
expectToken(std::istream &is, const std::string &expected)
{
    std::string token;
    if (!(is >> token) || token != expected) {
        throw std::runtime_error("ensemble file: expected '" + expected +
                                 "', got '" + token + "'");
    }
}

} // namespace

void
saveEnsemble(std::ostream &os, const Ensemble &model)
{
    os << std::setprecision(std::numeric_limits<double>::max_digits10);
    os << kMagic << ' ' << kVersion << '\n';

    // All members share topology/hyper-parameters; take member 0's.
    // (predictMember forces a forward pass; we only need structure,
    // which we recover from the weights() size and the stored params
    // below, so serialize the params explicitly.)
    os << "members " << model.members() << '\n';

    const TargetScaler &sc = model.scaler();
    os << "scaler " << sc.rawMin() << ' ' << sc.rawMax() << ' '
       << sc.lo() << ' ' << sc.hi() << '\n';
    os << "estimate " << model.estimate().meanPct << ' '
       << model.estimate().sdPct << '\n';
    os << "net-meta " << model.netMeta().inputs << ' '
       << model.netMeta().outputs << ' '
       << model.netMeta().params.hiddenUnits << ' '
       << model.netMeta().params.hiddenLayers << ' '
       << model.netMeta().params.learningRate << ' '
       << model.netMeta().params.momentum << ' '
       << model.netMeta().params.initWeightRange << ' '
       << model.netMeta().params.decayEpochs << '\n';

    for (size_t m = 0; m < model.members(); ++m) {
        const auto w = model.memberWeights(m);
        os << "net " << m << ' ' << w.size() << '\n';
        for (size_t i = 0; i < w.size(); ++i)
            os << w[i] << (i + 1 == w.size() ? '\n' : ' ');
    }
}

void
saveEnsemble(const std::string &path, const Ensemble &model)
{
    std::ofstream os(path);
    if (!os)
        throw std::runtime_error("cannot open for writing: " + path);
    saveEnsemble(os, model);
    if (!os)
        throw std::runtime_error("write failed: " + path);
}

Ensemble
loadEnsemble(std::istream &is)
{
    expectToken(is, kMagic);
    int version = 0;
    if (!(is >> version) || version != kVersion)
        throw std::runtime_error("unsupported ensemble file version");

    expectToken(is, "members");
    size_t members = 0;
    is >> members;
    if (!is || members == 0 || members > 1000)
        throw std::runtime_error("bad member count");

    expectToken(is, "scaler");
    double raw_min, raw_max, lo, hi;
    if (!(is >> raw_min >> raw_max >> lo >> hi))
        throw std::runtime_error("bad scaler");
    const auto scaler = TargetScaler::fromRange(raw_min, raw_max, lo, hi);

    expectToken(is, "estimate");
    ErrorEstimate estimate;
    if (!(is >> estimate.meanPct >> estimate.sdPct))
        throw std::runtime_error("bad estimate");

    expectToken(is, "net-meta");
    int inputs, outputs;
    AnnParams params;
    if (!(is >> inputs >> outputs >> params.hiddenUnits >>
          params.hiddenLayers >> params.learningRate >>
          params.momentum >> params.initWeightRange >>
          params.decayEpochs)) {
        throw std::runtime_error("bad network metadata");
    }

    Rng rng(0);  // placeholder init; weights overwritten below
    std::vector<Ann> nets;
    nets.reserve(members);
    for (size_t m = 0; m < members; ++m) {
        expectToken(is, "net");
        size_t index = 0, count = 0;
        if (!(is >> index >> count) || index != m)
            throw std::runtime_error("bad net header");
        Ann net(inputs, outputs, params, rng);
        if (count != net.weightCount())
            throw std::runtime_error("weight count mismatch");
        std::vector<double> w(count);
        for (double &x : w) {
            if (!(is >> x))
                throw std::runtime_error("truncated weights");
        }
        net.setWeights(w);
        nets.push_back(std::move(net));
    }
    return Ensemble(std::move(nets), scaler, estimate);
}

Ensemble
loadEnsemble(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        throw std::runtime_error("cannot open for reading: " + path);
    return loadEnsemble(is);
}

} // namespace ml
} // namespace dse
