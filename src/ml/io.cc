#include "ml/io.hh"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

#include "util/fault.hh"

namespace dse {
namespace ml {

namespace {

constexpr const char *kMagic = "dse-ensemble";
constexpr int kVersion = 1;
constexpr const char *kChecksumTag = "checksum";

void
expectToken(std::istream &is, const std::string &expected)
{
    std::string token;
    if (!(is >> token) || token != expected) {
        throw std::runtime_error("ensemble file: expected '" + expected +
                                 "', got '" + token + "'");
    }
}

uint64_t
fnv1a(const char *data, size_t n)
{
    uint64_t h = 1469598103934665603ull;
    for (size_t i = 0; i < n; ++i) {
        h ^= static_cast<uint8_t>(data[i]);
        h *= 1099511628211ull;
    }
    return h;
}

/** Write bytes to fd, retrying on EINTR. @throws on I/O error. */
void
writeAll(int fd, const char *data, size_t n, const std::string &path)
{
    size_t done = 0;
    while (done < n) {
        const ssize_t w = ::write(fd, data + done, n - done);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            throw std::runtime_error("write failed: " + path + ": " +
                                     std::strerror(errno));
        }
        done += static_cast<size_t>(w);
    }
}

} // namespace

void
saveEnsemble(std::ostream &os, const Ensemble &model)
{
    os << std::setprecision(std::numeric_limits<double>::max_digits10);
    os << kMagic << ' ' << kVersion << '\n';

    // All members share topology/hyper-parameters; take member 0's.
    // (predictMember forces a forward pass; we only need structure,
    // which we recover from the weights() size and the stored params
    // below, so serialize the params explicitly.)
    os << "members " << model.members() << '\n';

    const TargetScaler &sc = model.scaler();
    os << "scaler " << sc.rawMin() << ' ' << sc.rawMax() << ' '
       << sc.lo() << ' ' << sc.hi() << '\n';
    os << "estimate " << model.estimate().meanPct << ' '
       << model.estimate().sdPct << '\n';
    os << "net-meta " << model.netMeta().inputs << ' '
       << model.netMeta().outputs << ' '
       << model.netMeta().params.hiddenUnits << ' '
       << model.netMeta().params.hiddenLayers << ' '
       << model.netMeta().params.learningRate << ' '
       << model.netMeta().params.momentum << ' '
       << model.netMeta().params.initWeightRange << ' '
       << model.netMeta().params.decayEpochs << '\n';

    for (size_t m = 0; m < model.members(); ++m) {
        const auto w = model.memberWeights(m);
        os << "net " << m << ' ' << w.size() << '\n';
        for (size_t i = 0; i < w.size(); ++i)
            os << w[i] << (i + 1 == w.size() ? '\n' : ' ');
    }
}

void
saveEnsemble(const std::string &path, const Ensemble &model)
{
    // Serialize fully in memory, then append a whole-file checksum
    // trailer that loadEnsemble(path) verifies: any torn or bit-rotted
    // on-disk copy is detected at load, not at predict time.
    std::ostringstream body;
    saveEnsemble(body, model);
    std::string bytes = body.str();
    if (!body)
        throw std::runtime_error("ensemble serialization failed");
    {
        std::ostringstream trailer;
        trailer << kChecksumTag << ' ' << std::hex << std::setw(16)
                << std::setfill('0') << fnv1a(bytes.data(), bytes.size())
                << '\n';
        bytes += trailer.str();
    }

    if (util::FaultInjector::global().shouldFail("save")) {
        // Injected torn write: leave half the payload at the *final*
        // path — the wreckage a non-atomic writer (or a disk pulled
        // mid-write) leaves behind — so tests can prove the loader
        // rejects it.
        std::ofstream torn(path, std::ios::binary | std::ios::trunc);
        torn.write(bytes.data(),
                   static_cast<std::streamsize>(bytes.size() / 2));
        torn.flush();
        throw std::runtime_error("injected fault: saveEnsemble(" + path +
                                 ") torn write");
    }

    // Atomic publish: temp file in the same directory, fsync, rename.
    // Readers of `path` see either the old complete file or the new
    // complete file, never a partial write.
    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        throw std::runtime_error("cannot open for writing: " + tmp +
                                 ": " + std::strerror(errno));
    }
    try {
        writeAll(fd, bytes.data(), bytes.size(), tmp);
        if (::fsync(fd) != 0) {
            throw std::runtime_error("fsync failed: " + tmp + ": " +
                                     std::strerror(errno));
        }
    } catch (...) {
        ::close(fd);
        ::unlink(tmp.c_str());
        throw;
    }
    ::close(fd);
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        const int err = errno;
        ::unlink(tmp.c_str());
        throw std::runtime_error("rename failed: " + tmp + " -> " + path +
                                 ": " + std::strerror(err));
    }
}

Ensemble
loadEnsemble(std::istream &is)
{
    expectToken(is, kMagic);
    int version = 0;
    if (!(is >> version) || version != kVersion) {
        throw std::runtime_error(
            "unsupported ensemble file version " +
            std::to_string(version) + " (this build reads version " +
            std::to_string(kVersion) + ")");
    }

    expectToken(is, "members");
    size_t members = 0;
    is >> members;
    if (!is || members == 0 || members > 1000)
        throw std::runtime_error("bad member count");

    expectToken(is, "scaler");
    double raw_min, raw_max, lo, hi;
    if (!(is >> raw_min >> raw_max >> lo >> hi))
        throw std::runtime_error("bad scaler");
    const auto scaler = TargetScaler::fromRange(raw_min, raw_max, lo, hi);

    expectToken(is, "estimate");
    ErrorEstimate estimate;
    if (!(is >> estimate.meanPct >> estimate.sdPct))
        throw std::runtime_error("bad estimate");

    expectToken(is, "net-meta");
    int inputs, outputs;
    AnnParams params;
    if (!(is >> inputs >> outputs >> params.hiddenUnits >>
          params.hiddenLayers >> params.learningRate >>
          params.momentum >> params.initWeightRange >>
          params.decayEpochs)) {
        throw std::runtime_error("bad network metadata");
    }
    // Bound the topology before Ann's constructor sizes its arenas
    // from it: an adversarial header must not drive a huge (or
    // overflowing) allocation.
    if (inputs <= 0 || inputs > 4096 || outputs <= 0 || outputs > 4096 ||
        params.hiddenUnits <= 0 || params.hiddenUnits > 4096 ||
        params.hiddenLayers <= 0 || params.hiddenLayers > 64) {
        throw std::runtime_error("implausible network metadata");
    }

    Rng rng(0);  // placeholder init; weights overwritten below
    std::vector<Ann> nets;
    nets.reserve(members);
    for (size_t m = 0; m < members; ++m) {
        expectToken(is, "net");
        size_t index = 0, count = 0;
        if (!(is >> index >> count) || index != m)
            throw std::runtime_error("bad net header");
        Ann net(inputs, outputs, params, rng);
        if (count != net.weightCount())
            throw std::runtime_error("weight count mismatch");
        std::vector<double> w(count);
        for (double &x : w) {
            if (!(is >> x))
                throw std::runtime_error("truncated weights");
        }
        net.setWeights(w);
        nets.push_back(std::move(net));
    }
    return Ensemble(std::move(nets), scaler, estimate);
}

Ensemble
loadEnsemble(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw std::runtime_error("cannot open for reading: " + path);
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string bytes = buf.str();
    if (bytes.empty())
        throw std::runtime_error("ensemble file is empty: " + path);

    // The checksum trailer is the last line: "checksum <16 hex>\n".
    // Its absence means the writer never finished (torn/truncated
    // file); a mismatch means the bytes changed after the writer
    // finished (corruption). Keep the two failure modes distinct —
    // they call for different operator responses.
    const size_t tag_at = bytes.rfind(std::string(kChecksumTag) + " ");
    if (tag_at == std::string::npos ||
        (tag_at != 0 && bytes[tag_at - 1] != '\n')) {
        throw std::runtime_error(
            "ensemble file truncated (missing checksum trailer): " +
            path);
    }
    std::istringstream trailer(bytes.substr(tag_at));
    std::string tag;
    uint64_t stored = 0;
    if (!(trailer >> tag >> std::hex >> stored)) {
        throw std::runtime_error(
            "ensemble file truncated (unreadable checksum trailer): " +
            path);
    }
    if (fnv1a(bytes.data(), tag_at) != stored) {
        throw std::runtime_error(
            "ensemble file corrupt (checksum mismatch): " + path);
    }

    std::istringstream body(bytes.substr(0, tag_at));
    return loadEnsemble(body);
}

} // namespace ml
} // namespace dse
