/**
 * @file
 * Incremental design-space exploration (the procedure of Section 3.3):
 *
 *  1. sample N random unseen design points,
 *  2. simulate them,
 *  3. train a cross-validation ensemble on everything simulated so far,
 *  4. read the ensemble's error estimate,
 *  5. stop if the estimate is low enough, otherwise go to 1.
 *
 * The simulator is abstracted as a function from design-point index to
 * target value, so the explorer is reusable for any metric, any
 * simulator, and any partial-simulation scheme (e.g. SimPoint
 * estimates simply make the function noisy).
 */

#ifndef DSE_ML_EXPLORER_HH
#define DSE_ML_EXPLORER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "ml/cross_validation.hh"
#include "ml/encoding.hh"

namespace dse {
namespace ml {

/** Maps a design-point index to a simulated target value (e.g. IPC). */
using SimulatorFn = std::function<double(uint64_t)>;

/** Explorer configuration. */
struct ExplorerOptions
{
    /** Simulations added per refinement round. */
    size_t batchSize = 50;
    /** Stop when the estimated mean percentage error drops below. */
    double targetMeanPct = 2.0;
    /** Hard cap on total simulations (0 = space size). */
    size_t maxSimulations = 0;
    /** Ensemble training configuration. */
    TrainOptions train;
    /** Sampling seed (decoupled from the training seed). */
    uint64_t seed = 99;
    /**
     * Active learning (Chapter 7 extension): instead of random
     * sampling, rank a random candidate pool by ensemble disagreement
     * and simulate the most uncertain points.
     */
    bool activeLearning = false;
    /** Candidate pool size per batch when active learning is on. */
    size_t candidatePool = 500;
    /**
     * Optional batch prefetch hook, called with each round's chosen
     * indices before the per-index simulator loop. A remote
     * dispatcher uses it to fan the batch out across workers and
     * pre-warm the study memo cache; the per-index calls then hit
     * memoized results. Purely an acceleration hint — results are
     * identical with or without it.
     */
    std::function<void(const std::vector<uint64_t> &)> prefetch;
};

/** One refinement round's outcome. */
struct ExplorationStep
{
    size_t totalSamples = 0;
    ErrorEstimate estimate;
};

/**
 * Drives sample -> simulate -> train -> estimate rounds over a
 * DesignSpace and exposes the final predictive model.
 */
class Explorer
{
  public:
    Explorer(const DesignSpace &space, SimulatorFn simulator,
             ExplorerOptions opts);

    /**
     * Add one batch: pick unseen points, simulate, retrain.
     * @return the new error estimate, or nullopt when the space is
     *         exhausted
     */
    std::optional<ExplorationStep> step();

    /**
     * Run rounds until the estimated error reaches the target, the
     * simulation cap is hit, or the space is exhausted.
     * @return the full history of rounds
     */
    std::vector<ExplorationStep> run();

    /** The model trained on everything simulated so far. */
    const Ensemble &ensemble() const;

    /**
     * Inject a pre-trained ensemble (e.g. loaded via ml::io) before
     * the first step(), so an active-learning campaign can warm-start
     * its committee scoring instead of spending round one on random
     * sampling. step() replaces it with a freshly trained model as
     * usual.
     */
    void seedEnsemble(Ensemble model);

    /** Design points simulated so far. */
    const std::vector<uint64_t> &sampledIndices() const { return indices_; }

    /** Training data accumulated so far. */
    const DataSet &data() const { return data_; }

    /** Predict the target for any point in the space. */
    double predictIndex(uint64_t index) const;

    /**
     * Predict a set of points, evaluated in parallel chunks on the
     * global ThreadPool (results in input order, bit-identical to a
     * serial predictIndex loop at any thread count).
     */
    std::vector<double>
    predictIndices(const std::vector<uint64_t> &indices) const;

    /**
     * Streaming prediction of the consecutive index range
     * [first, first + count): bit-identical to predictIndices on the
     * equivalent iota vector, but without materializing an
     * 8-byte-per-point index vector — the form full-space sweeps use.
     */
    std::vector<double> predictRange(uint64_t first, size_t count) const;

    /** Predict every point of the design space (parallel chunks,
     *  streamed through predictRange). */
    std::vector<double> predictSpace() const;

  private:
    std::vector<uint64_t> pickBatch(size_t n);

    const DesignSpace &space_;
    SimulatorFn simulator_;
    ExplorerOptions opts_;
    Rng rng_;
    DataSet data_;
    std::vector<uint64_t> indices_;
    std::vector<bool> seen_;
    std::unique_ptr<Ensemble> ensemble_;
};

} // namespace ml
} // namespace dse

#endif // DSE_ML_EXPLORER_HH
