/**
 * @file
 * Fully connected feed-forward artificial neural network trained by
 * backpropagation with momentum (Chapter 3 of the paper).
 *
 * The paper's configuration: one hidden layer of 16 sigmoid units,
 * learning rate 0.001, momentum 0.5, weights initialized uniformly on
 * [-0.01, +0.01]. Inputs and targets are pre-normalized to [0, 1] by
 * the encoding layer, and the output unit is sigmoid as well. One or
 * more output units are supported (multiple outputs implement the
 * multi-task learning extension of Chapter 7).
 */

#ifndef DSE_ML_ANN_HH
#define DSE_ML_ANN_HH

#include <cstddef>
#include <vector>

#include "util/rng.hh"

namespace dse {
namespace ml {

/** Hyper-parameters for network construction and training. */
struct AnnParams
{
    /**
     * Defaults follow the paper (16 hidden units, one layer,
     * momentum 0.5, near-zero init) except the learning rate and its
     * decay: the paper's 0.001 assumes hours-scale training budgets;
     * with this library's seconds-scale budgets an aggressive rate
     * annealed by decayEpochs reaches the same fits (see
     * bench/ablation_model_choices).
     */
    int hiddenUnits = 16;
    int hiddenLayers = 1;
    double learningRate = 0.4;
    double momentum = 0.5;
    double initWeightRange = 0.01;  ///< weights uniform on [-r, +r]
    /**
     * Learning-rate decay horizon in epochs: the effective rate at
     * epoch e is learningRate / (1 + e / decayEpochs). 0 disables
     * decay. Decay lets training start aggressively and settle into
     * a fine-grained fit.
     */
    double decayEpochs = 2500.0;
};

/**
 * A feed-forward network with sigmoid activations throughout.
 *
 * The network owns its weights; training is incremental (per-example
 * stochastic gradient descent), so callers control presentation order
 * and frequency — which is how the percentage-error weighting of
 * Section 3.3 is implemented (frequent presentation of
 * low-target-value examples).
 */
class Ann
{
  public:
    /**
     * @param inputs width of the input layer
     * @param outputs width of the output layer
     * @param params topology and learning hyper-parameters
     * @param rng source for weight initialization
     */
    Ann(int inputs, int outputs, const AnnParams &params, Rng &rng);

    /**
     * Forward pass; returns the output activations. Thread-safe on a
     * const network: concurrent predictions (parallel design-space
     * evaluation) use per-thread scratch, not the member activation
     * buffers that train() owns.
     */
    std::vector<double> predict(const std::vector<double> &input) const;

    /** Convenience for single-output networks (also thread-safe). */
    double predictScalar(const std::vector<double> &input) const;

    /**
     * One stochastic gradient-descent step on a single example
     * (backpropagation with momentum, Equation 3.2).
     *
     * @return the example's squared error before the update
     */
    double train(const std::vector<double> &input,
                 const std::vector<double> &target);

    int inputs() const { return inputs_; }
    int outputs() const { return outputs_; }

    /** Total number of trainable weights (including biases). */
    size_t weightCount() const;

    /** Flat copy of all weights (testing/inspection/checkpointing). */
    std::vector<double> weights() const;

    /** Restore weights from a flat copy (early-stopping rollback). */
    void setWeights(const std::vector<double> &flat);

    /** Override the current learning rate (e.g. for decay schedules). */
    void setLearningRate(double eta) { params_.learningRate = eta; }

    /** The construction-time hyper-parameters. */
    const AnnParams &params() const { return params_; }

  private:
    struct Layer
    {
        int in = 0;
        int out = 0;
        std::vector<double> w;       ///< (in + 1) * out, bias last
        std::vector<double> dwPrev;  ///< previous update (momentum)
    };

    void forward(const std::vector<double> &input) const;
    void forwardInto(const std::vector<double> &input,
                     std::vector<std::vector<double>> &act) const;

    int inputs_;
    int outputs_;
    AnnParams params_;
    std::vector<Layer> layers_;
    // Scratch activations, reused across calls to avoid allocation.
    mutable std::vector<std::vector<double>> act_;
    mutable std::vector<std::vector<double>> delta_;
};

} // namespace ml
} // namespace dse

#endif // DSE_ML_ANN_HH
