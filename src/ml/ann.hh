/**
 * @file
 * Fully connected feed-forward artificial neural network trained by
 * backpropagation with momentum (Chapter 3 of the paper).
 *
 * The paper's configuration: one hidden layer of 16 sigmoid units,
 * learning rate 0.001, momentum 0.5, weights initialized uniformly on
 * [-0.01, +0.01]. Inputs and targets are pre-normalized to [0, 1] by
 * the encoding layer, and the output unit is sigmoid as well. One or
 * more output units are supported (multiple outputs implement the
 * multi-task learning extension of Chapter 7).
 *
 * Numeric core (see DESIGN.md, "Numeric kernels"): all weights live in
 * one flat contiguous arena per network, layer after layer, each layer
 * stored input-major [(in+1) x out] — row i holds every unit's weight
 * for input i, with the bias row last. That transposed-by-default
 * layout is what the hot loops want: the scalar forward and the
 * momentum update vectorize across units at unit stride, and delta
 * backprop reads unit-stride rows. weights()/setWeights() convert to
 * and from the historical unit-major flat order, so serialization and
 * checkpoint formats are unchanged. Prediction also has a blocked
 * batched path (predictBatch / predictBlockT) that streams each
 * layer's weights once per block of up to kBlock design points and is
 * bit-for-bit identical to the single-point path. Training is a fused
 * epoch pipeline (trainEpoch): delta backprop and the momentum update
 * run as one back-to-front arena sweep per example, and the
 * presentation loop sweeps packed row-major example matrices — see
 * DESIGN.md, "Training pipeline".
 */

#ifndef DSE_ML_ANN_HH
#define DSE_ML_ANN_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hh"

namespace dse {
namespace ml {

/** Hyper-parameters for network construction and training. */
struct AnnParams
{
    /**
     * Defaults follow the paper (16 hidden units, one layer,
     * momentum 0.5, near-zero init) except the learning rate and its
     * decay: the paper's 0.001 assumes hours-scale training budgets;
     * with this library's seconds-scale budgets an aggressive rate
     * annealed by decayEpochs reaches the same fits (see
     * bench/ablation_model_choices).
     */
    int hiddenUnits = 16;
    int hiddenLayers = 1;
    double learningRate = 0.4;
    double momentum = 0.5;
    double initWeightRange = 0.01;  ///< weights uniform on [-r, +r]
    /**
     * Learning-rate decay horizon in epochs: the effective rate at
     * epoch e is learningRate / (1 + e / decayEpochs). 0 disables
     * decay. Decay lets training start aggressively and settle into
     * a fine-grained fit.
     */
    double decayEpochs = 2500.0;
};

/**
 * Numerically stable sigmoid, 1 / (1 + e^-x), evaluated via a
 * range-reduced polynomial so the whole kernel autovectorizes (no
 * libm call in the hot loop) and never overflows: |x| is clamped at
 * 708 before exponentiation, which is value-preserving — the exact
 * result already saturates to 0/1 (to the last ulp of a double)
 * far inside that bound. Relative error vs. the libm form is below
 * 1e-15 across the whole clamped range (tests/test_ann.cc sweeps it).
 *
 * This is the single activation definition used by the scalar,
 * batched, and training kernels, which is what makes batched and
 * single-point prediction bit-for-bit identical.
 */
inline double
stableSigmoid(double x)
{
    double a = x < 0.0 ? -x : x;
    if (a > 708.0)
        a = 708.0;
    // e^{-a} = 2^n * e^r with n = round(-a * log2 e), |r| <= ln2 / 2.
    // The 1.5*2^52 shift trick rounds to nearest without a libm call,
    // and n is recovered from the shifted double's low mantissa bits.
    const double y = -a;
    constexpr double kLog2e = 1.4426950408889634074;
    constexpr double kLn2Hi = 6.93147180369123816490e-01;
    constexpr double kLn2Lo = 1.90821492927058770002e-10;
    constexpr double kShift = 6755399441055744.0;  // 1.5 * 2^52
    const double kd = y * kLog2e + kShift;
    const double n = kd - kShift;
    double r = y - n * kLn2Hi;
    r = r - n * kLn2Lo;
    const int64_t ki = std::bit_cast<int64_t>(kd) -
        std::bit_cast<int64_t>(kShift);
    const double scale =
        std::bit_cast<double>(static_cast<uint64_t>(ki + 1023) << 52);
    // e^r as a degree-12 Taylor polynomial: remainder < 7e-15 rel.
    // Estrin's scheme, not Horner's: the evaluation tree is ~4 levels
    // deep instead of a 12-step serial chain, and the output unit's
    // sigmoid sits on the training step's critical path.
    const double r2 = r * r;
    const double r4 = r2 * r2;
    const double r8 = r4 * r4;
    const double q0 = 1.0 + r * 1.0;
    const double q1 = 0.5 + r * 1.6666666666666666e-01;
    const double q2 = 4.1666666666666664e-02 + r * 8.3333333333333332e-03;
    const double q3 = 1.3888888888888889e-03 + r * 1.9841269841269841e-04;
    const double q4 = 2.4801587301587302e-05 + r * 2.7557319223985893e-06;
    const double q5 = 2.7557319223985888e-07 + r * 2.5052108385441720e-08;
    const double q6 = 2.0876756987868100e-09;
    const double t0 = q0 + r2 * q1;
    const double t1 = q2 + r2 * q3;
    const double t2 = q4 + r2 * q5;
    const double u0 = t0 + r4 * t1;
    const double u1 = t2 + r4 * q6;
    const double p = u0 + r8 * u1;
    const double t = p * scale;  // e^{-|x|}, in (0, 1]
    // Both sign branches divide by the same 1 + t; selecting the
    // numerator first keeps the result bit-identical per element
    // while letting the vectorizer emit one division and a blend
    // instead of two masked divisions.
    const double num = x >= 0.0 ? 1.0 : t;
    return num / (1.0 + t);
}

/**
 * A feed-forward network with sigmoid activations throughout.
 *
 * The network owns its weights; training is incremental (per-example
 * stochastic gradient descent), so callers control presentation order
 * and frequency — which is how the percentage-error weighting of
 * Section 3.3 is implemented (frequent presentation of
 * low-target-value examples).
 */
class Ann
{
  public:
    /**
     * Points per internal block of the batched-prediction path: each
     * layer's weights are streamed once per block and reused for all
     * points in it, keeping weights and the block's activations
     * L1-resident. Ensemble-level callers (predictBatch,
     * memberSpreadBatch) transpose one kBlock panel and run every
     * member over it; predictBlockT's per-thread scratch is sized
     * 2 * maxLayerWidth * kBlock doubles, so kBlock also bounds
     * per-thread scratch growth.
     */
    static constexpr size_t kBlock = 64;

    /**
     * @param inputs width of the input layer
     * @param outputs width of the output layer
     * @param params topology and learning hyper-parameters
     * @param rng source for weight initialization
     */
    Ann(int inputs, int outputs, const AnnParams &params, Rng &rng);

    /**
     * Forward pass; returns the output activations. Thread-safe on a
     * const network: concurrent predictions (parallel design-space
     * evaluation) use per-thread scratch, not the member activation
     * buffers that train() owns.
     */
    std::vector<double> predict(const std::vector<double> &input) const;

    /**
     * Convenience for single-output networks (also thread-safe; for
     * multi-output networks returns the first output). Performs no
     * heap allocation after per-thread scratch warm-up.
     */
    double predictScalar(const std::vector<double> &input) const;

    /**
     * Batched forward pass over n points. @p x is row-major
     * [n x inputs()], @p y is row-major [n x outputs()]. Processes the
     * points in blocks of kBlock; per point, bit-for-bit identical to
     * predict(). Thread-safe on a const network.
     */
    void predictBatch(const double *x, size_t n, double *y) const;

    /**
     * Low-level batched forward pass on one pre-transposed block:
     * @p xT is [inputs()][nb] (coordinate-major), @p yT is
     * [outputs()][nb]; nb must be in [1, kBlock]. Lets ensemble-level
     * callers (mean prediction and committee member-spread scoring
     * alike) transpose a block once and reuse it across member
     * networks. For nb == 1 this reads the input in place (a plain
     * feature vector is its own 1-column transpose).
     */
    void predictBlockT(const double *xT, size_t nb, double *yT) const;

    /**
     * One stochastic gradient-descent step on a single example
     * (backpropagation with momentum, Equation 3.2).
     *
     * Divergence detection: a non-finite example error (NaN/Inf
     * inputs, or weights that have already blown up) latches the
     * diverged() flag; the trainer uses it to abandon the attempt
     * and retry from a reseeded initialization rather than let NaNs
     * propagate into the ensemble (see trainEnsemble).
     *
     * @return the example's squared error before the update
     */
    double train(const std::vector<double> &input,
                 const std::vector<double> &target);

    /**
     * One epoch of stochastic gradient descent over packed example
     * matrices: @p x is row-major [rows_needed x inputs()], @p t is
     * row-major [rows_needed x outputs()], and presentation p trains
     * on example row order[p] (rows when @p order is null, i.e. the
     * in-place order). @p order entries may repeat and need not cover
     * every row — weighted presentation (Section 3.3) draws rows with
     * replacement — they only have to index valid rows of @p x/@p t.
     *
     * Per presentation this is exactly train() — same forward, same
     * fused backward+update sweep, same error accumulation order — so
     * the returned summed squared error and every weight are
     * bit-for-bit identical to the equivalent sequence of train()
     * calls. What the epoch form buys is the loop itself: no per-row
     * std::vector indirection or asserts, examples streamed from two
     * flat buffers (see trainEnsemble, which packs each fold once).
     *
     * @return the sum of per-example squared errors (pre-update),
     *         accumulated in presentation order
     */
    double trainEpoch(const double *x, const double *t,
                      const uint32_t *order, size_t rows);

    /** True once any training step produced a non-finite error. */
    bool diverged() const { return diverged_; }

    /** True iff every weight (and momentum term) is finite. */
    bool finiteWeights() const;

    int inputs() const { return inputs_; }
    int outputs() const { return outputs_; }

    /** Total number of trainable weights (including biases). */
    size_t weightCount() const { return w_.size(); }

    /**
     * Flat copy of all weights (testing/inspection/checkpointing):
     * layer after layer, each layer unit-major [out x (in+1)] with
     * the bias last in every row — the order this library has always
     * serialized, converted from the internal input-major arena.
     */
    std::vector<double> weights() const;

    /** Restore weights from a flat copy (early-stopping rollback). */
    void setWeights(const std::vector<double> &flat);

    /** Override the current learning rate (e.g. for decay schedules). */
    void setLearningRate(double eta) { params_.learningRate = eta; }

    /** The construction-time hyper-parameters. */
    const AnnParams &params() const { return params_; }

  private:
    /** Per-layer extents and offsets into the flat arenas. */
    struct Layer
    {
        int in = 0;
        int out = 0;
        size_t w = 0;    ///< offset into w_/dwPrev_: [(in + 1) x out]
        size_t act = 0;  ///< offset into act_/delta_: [out]
    };

    /** One presentation: forward + fused backward/update sweep. */
    double trainExample(const double *x, const double *t);

    int inputs_;
    int outputs_;
    AnnParams params_;
    bool diverged_ = false;  ///< latched by train() on non-finite error
    std::vector<Layer> layers_;
    int maxWidth_ = 0;  ///< max layer output width
    /**
     * Weight arena, input-major per layer: element [i * out + j] is
     * unit j's weight for input i; row `in` (last) is the biases.
     */
    std::vector<double> w_;
    std::vector<double> dwPrev_;  ///< previous updates, same layout
    // Scratch activations/deltas owned by train(); const prediction
    // paths use per-thread scratch instead.
    mutable std::vector<double> act_;
    mutable std::vector<double> delta_;
};

} // namespace ml
} // namespace dse

#endif // DSE_ML_ANN_HH
