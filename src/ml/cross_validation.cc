#include "ml/cross_validation.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <optional>
#include <stdexcept>

#include "util/fault.hh"
#include "util/metrics.hh"
#include "util/stats.hh"
#include "util/thread_pool.hh"
#include "util/trace.hh"

namespace dse {
namespace ml {

namespace {

/** Training-stage metrics (DESIGN.md "Observability"). */
struct TrainMetrics
{
    obs::CounterId ensembles, epochs, foldsTrained, foldRetries,
        divergences, foldsDropped;
    obs::HistogramId foldWallNs;

    static const TrainMetrics &
    get()
    {
        static const TrainMetrics m = [] {
            auto &r = obs::MetricsRegistry::global();
            TrainMetrics t;
            t.ensembles = r.counter("train.ensembles");
            t.epochs = r.counter("train.epochs");
            t.foldsTrained = r.counter("train.folds_trained");
            t.foldRetries = r.counter("train.fold_retries");
            t.divergences = r.counter("train.divergences");
            t.foldsDropped = r.counter("train.folds_dropped");
            t.foldWallNs = r.histogram("train.fold_wall_ns");
            return t;
        }();
        return m;
    }
};

/**
 * Cumulative presentation weights for one fold's training rows
 * (inverse-target weighting, Section 3.3), enabling O(log n) draws.
 */
std::vector<double>
presentationCdf(const DataSet &data, const std::vector<size_t> &rows,
                bool weighted)
{
    std::vector<double> cdf(rows.size());
    double acc = 0.0;
    for (size_t i = 0; i < rows.size(); ++i) {
        const double t = std::abs(data.y[rows[i]]);
        acc += weighted ? 1.0 / std::max(t, 1e-6) : 1.0;
        cdf[i] = acc;
    }
    return cdf;
}

size_t
drawRow(const std::vector<double> &cdf, Rng &rng)
{
    const double r = rng.uniform() * cdf.back();
    const auto it = std::upper_bound(cdf.begin(), cdf.end(), r);
    return static_cast<size_t>(std::min<ptrdiff_t>(
        it - cdf.begin(), static_cast<ptrdiff_t>(cdf.size()) - 1));
}

/** Mean model error on a set of rows, as defined by the options. */
double
evalError(const Ann &net, const DataSet &data, const TargetScaler &scaler,
          const std::vector<size_t> &rows, bool percentage)
{
    if (rows.empty())
        return 0.0;
    // Evaluate through the batched path (bit-identical to per-row
    // predictScalar, but streams each layer's weights once per
    // block); the error sum stays in row order.
    const size_t n = rows.size();
    const size_t in = static_cast<size_t>(net.inputs());
    const size_t outs = static_cast<size_t>(net.outputs());
    thread_local std::vector<double> xbuf;
    thread_local std::vector<double> ybuf;
    if (xbuf.size() < n * in)
        xbuf.resize(n * in);
    if (ybuf.size() < n * outs)
        ybuf.resize(n * outs);
    for (size_t r = 0; r < n; ++r)
        std::copy(data.x[rows[r]].begin(), data.x[rows[r]].end(),
                  xbuf.begin() + static_cast<ptrdiff_t>(r * in));
    net.predictBatch(xbuf.data(), n, ybuf.data());
    double sum = 0.0;
    for (size_t r = 0; r < n; ++r) {
        const double pred = scaler.decode(ybuf[r * outs]);
        if (percentage) {
            sum += percentageError(pred, data.y[rows[r]]);
        } else {
            const double d = pred - data.y[rows[r]];
            sum += d * d;
        }
    }
    return sum / static_cast<double>(n);
}

/**
 * Encode rows [0, m) of an index list into @p out (row-major
 * [m x encodedWidth()]). Full-space sweeps hand us consecutive
 * indices; encode those odometer-style (bit-identical to
 * encodeIndexInto, no per-point divisions).
 */
void
encodeChunk(const DesignSpace &space, const uint64_t *indices, size_t m,
            double *out)
{
    const size_t width = static_cast<size_t>(space.encodedWidth());
    bool consecutive = true;
    for (size_t r = 1; r < m && consecutive; ++r)
        consecutive = indices[r] == indices[0] + r;
    if (consecutive) {
        space.encodeRangeInto(indices[0], m, out);
    } else {
        for (size_t r = 0; r < m; ++r)
            space.encodeIndexInto(indices[r], out + r * width);
    }
}

} // namespace

Ensemble::Ensemble(std::vector<Ann> nets, TargetScaler scaler,
                   ErrorEstimate estimate,
                   std::vector<TrainWarning> warnings)
    : nets_(std::move(nets)), scaler_(scaler), estimate_(estimate),
      warnings_(std::move(warnings))
{
    if (nets_.empty())
        throw std::invalid_argument("ensemble needs at least one member");
}

double
Ensemble::predict(const std::vector<double> &features) const
{
    double sum = 0.0;
    for (const auto &net : nets_)
        sum += net.predictScalar(features);
    return scaler_.decode(sum / static_cast<double>(nets_.size()));
}

void
Ensemble::predictBatch(const double *x, size_t n, double *out) const
{
    const size_t in = static_cast<size_t>(nets_.front().inputs());
    const size_t outs = static_cast<size_t>(nets_.front().outputs());
    constexpr size_t B = Ann::kBlock;
    // xT + member-output block + ensemble accumulator, per thread.
    thread_local std::vector<double> scratch;
    const size_t need = (in + outs + 1) * B;
    if (scratch.size() < need)
        scratch.resize(need);
    double *xT = scratch.data();
    double *tmp = xT + in * B;
    double *acc = tmp + outs * B;
    for (size_t at = 0; at < n; at += B) {
        const size_t nb = std::min(B, n - at);
        const double *xb = x + at * in;
        for (size_t i = 0; i < in; ++i)
            for (size_t b = 0; b < nb; ++b)
                xT[i * nb + b] = xb[b * in + i];
        std::fill(acc, acc + nb, 0.0);
        // Member order matches predict()'s summation order, so the
        // accumulated sum is bit-identical.
        for (const auto &net : nets_) {
            net.predictBlockT(xT, nb, tmp);
            for (size_t b = 0; b < nb; ++b)
                acc[b] += tmp[b];
        }
        for (size_t b = 0; b < nb; ++b)
            out[at + b] =
                scaler_.decode(acc[b] / static_cast<double>(nets_.size()));
    }
}

std::vector<double>
Ensemble::predictIndices(const DesignSpace &space,
                         const std::vector<uint64_t> &indices) const
{
    const size_t n = indices.size();
    std::vector<double> out(n);
    const size_t width = static_cast<size_t>(space.encodedWidth());
    // A few kBlock blocks per pool task; the chunk partition is fixed
    // (independent of thread count), so every floating-point
    // operation — and thus the result — is too.
    const size_t chunks = (n + kScoreChunk - 1) / kScoreChunk;
    util::ThreadPool::global().parallelFor(0, chunks, [&](size_t c) {
        const size_t lo = c * kScoreChunk;
        const size_t m = std::min(kScoreChunk, n - lo);
        thread_local std::vector<double> xbuf;
        if (xbuf.size() < kScoreChunk * width)
            xbuf.resize(kScoreChunk * width);
        encodeChunk(space, indices.data() + lo, m, xbuf.data());
        predictBatch(xbuf.data(), m, out.data() + lo);
    });
    return out;
}

std::vector<double>
Ensemble::predictRange(const DesignSpace &space, uint64_t first,
                       size_t count) const
{
    if (first > space.size() || count > space.size() - first)
        throw std::out_of_range("predictRange outside the design space");
    std::vector<double> out(count);
    const size_t width = static_cast<size_t>(space.encodedWidth());
    // Same fixed chunk partition as predictIndices, with the chunk's
    // first index computed instead of loaded — so a sweep over
    // [first, first + count) is bit-identical to predictIndices on
    // the equivalent iota vector, without ever building that vector.
    const size_t chunks = (count + kScoreChunk - 1) / kScoreChunk;
    util::ThreadPool::global().parallelFor(0, chunks, [&](size_t c) {
        const size_t lo = c * kScoreChunk;
        const size_t m = std::min(kScoreChunk, count - lo);
        thread_local std::vector<double> xbuf;
        if (xbuf.size() < kScoreChunk * width)
            xbuf.resize(kScoreChunk * width);
        space.encodeRangeInto(first + lo, m, xbuf.data());
        predictBatch(xbuf.data(), m, out.data() + lo);
    });
    return out;
}

double
Ensemble::predictMember(size_t i, const std::vector<double> &features) const
{
    return scaler_.decode(nets_.at(i).predictScalar(features));
}

Ensemble::NetMeta
Ensemble::netMeta() const
{
    NetMeta meta;
    meta.inputs = nets_.front().inputs();
    meta.outputs = nets_.front().outputs();
    meta.params = nets_.front().params();
    return meta;
}

std::vector<double>
Ensemble::memberWeights(size_t i) const
{
    return nets_.at(i).weights();
}

double
Ensemble::memberSpread(const std::vector<double> &features) const
{
    OnlineStats acc;
    for (const auto &net : nets_)
        acc.add(scaler_.decode(net.predictScalar(features)));
    return acc.stddev();
}

void
Ensemble::memberSpreadBatch(const double *x, size_t n, double *out) const
{
    const size_t in = static_cast<size_t>(nets_.front().inputs());
    const size_t outs = static_cast<size_t>(nets_.front().outputs());
    const size_t k = nets_.size();
    constexpr size_t B = Ann::kBlock;
    // xT panel + member-output block, per thread (the ensemble
    // accumulator predictBatch carries is replaced by the per-point
    // Welford state below).
    thread_local std::vector<double> scratch;
    const size_t need = (in + outs) * B;
    if (scratch.size() < need)
        scratch.resize(need);
    double *xT = scratch.data();
    double *tmp = xT + in * B;
    // Scaler parameters hoisted into locals so the per-member decode
    // below is TargetScaler::decode's exact expression — same
    // subtractions, same division, same fused-nothing policy — but
    // inlined into the point-parallel loop.
    const double lo = scaler_.lo();
    const double denom = scaler_.hi() - scaler_.lo();
    const double raw_min = scaler_.rawMin();
    const double raw_span = scaler_.rawMax() - scaler_.rawMin();
    for (size_t at = 0; at < n; at += B) {
        const size_t nb = std::min(B, n - at);
        const double *xb = x + at * in;
        for (size_t i = 0; i < in; ++i)
            for (size_t b = 0; b < nb; ++b)
                xT[i * nb + b] = xb[b * in + i];
        // Structure-of-arrays Welford state, one lane per point in
        // the block. Per point this performs OnlineStats::add's
        // arithmetic (delta, mean += delta/count, m2 update — the
        // min/max bookkeeping stddev never reads is dropped) on the
        // members in nets_ order, so every point sees the exact
        // decode/add sequence memberSpread() performs; laying the
        // state out across points just lets the member fold
        // vectorize instead of calling two out-of-line functions per
        // member prediction.
        double mean[B];
        double m2[B];
        for (size_t b = 0; b < nb; ++b) {
            mean[b] = 0.0;
            m2[b] = 0.0;
        }
        for (size_t m = 0; m < k; ++m) {
            nets_[m].predictBlockT(xT, nb, tmp);
            const double count = static_cast<double>(m + 1);
            for (size_t b = 0; b < nb; ++b) {
                const double v =
                    raw_min + (tmp[b] - lo) / denom * raw_span;
                const double delta = v - mean[b];
                mean[b] += delta / count;
                m2[b] += delta * (v - mean[b]);
            }
        }
        // OnlineStats::stddev(): sqrt of the unbiased sample
        // variance, 0 with fewer than two members.
        for (size_t b = 0; b < nb; ++b)
            out[at + b] = k < 2
                ? 0.0
                : std::sqrt(m2[b] / static_cast<double>(k - 1));
    }
}

std::vector<double>
Ensemble::memberSpreadIndices(const DesignSpace &space,
                              const std::vector<uint64_t> &indices) const
{
    const size_t n = indices.size();
    std::vector<double> out(n);
    const size_t width = static_cast<size_t>(space.encodedWidth());
    const size_t chunks = (n + kScoreChunk - 1) / kScoreChunk;
    util::ThreadPool::global().parallelFor(0, chunks, [&](size_t c) {
        const size_t lo = c * kScoreChunk;
        const size_t m = std::min(kScoreChunk, n - lo);
        thread_local std::vector<double> xbuf;
        if (xbuf.size() < kScoreChunk * width)
            xbuf.resize(kScoreChunk * width);
        encodeChunk(space, indices.data() + lo, m, xbuf.data());
        memberSpreadBatch(xbuf.data(), m, out.data() + lo);
    });
    return out;
}

Ensemble
trainEnsemble(const DataSet &data, const TrainOptions &opts)
{
    if (data.size() < static_cast<size_t>(opts.folds) ||
        opts.folds < 2) {
        throw std::invalid_argument(
            "need at least `folds` >= 2 training points");
    }

    Rng rng(opts.seed);

    TargetScaler scaler;
    scaler.fit(data.y);

    // Shuffle row indices, then deal them into k folds.
    std::vector<size_t> order(data.size());
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);
    const int k = opts.folds;
    std::vector<std::vector<size_t>> folds(static_cast<size_t>(k));
    for (size_t i = 0; i < order.size(); ++i)
        folds[i % static_cast<size_t>(k)].push_back(order[i]);

    // Each fold network owns an independent RNG stream seeded from a
    // SplitMix64 sequence over the training seed, so folds can train
    // concurrently and still produce results bit-identical to serial
    // execution at any thread count.
    SplitMix64 seeder(opts.seed ^ 0xd1b54a32d192ed03ull);
    std::vector<uint64_t> fold_seeds(static_cast<size_t>(k));
    for (auto &s : fold_seeds)
        s = seeder.next();

    const int inputs = static_cast<int>(data.x.front().size());
    std::vector<std::optional<Ann>> slots(static_cast<size_t>(k));
    std::vector<std::vector<double>> fold_pct_errors(
        static_cast<size_t>(k));
    std::vector<std::optional<TrainWarning>> warn_slots(
        static_cast<size_t>(k));

    // One initialization of fold mi from the given seed; returns the
    // trained network, or nothing if it diverged (non-finite epoch
    // loss or weights). The happy path consumes the RNG stream
    // exactly as it always has, so healthy training is bit-identical
    // to the pre-retry implementation.
    auto attempt_fold = [&](size_t mi, uint64_t seed, bool scan_weights) {
        const int m = static_cast<int>(mi);
        // Model m: ES fold = (m + k - 1) % k, test fold = m, train on
        // the rest (Figure 3.3's rotation).
        const int test_fold = m;
        const int es_fold = (m + k - 1) % k;

        std::vector<size_t> train_rows;
        for (int f = 0; f < k; ++f) {
            if (f == test_fold || f == es_fold)
                continue;
            train_rows.insert(train_rows.end(), folds[f].begin(),
                              folds[f].end());
        }
        const std::vector<size_t> &es_rows =
            folds[static_cast<size_t>(es_fold)];

        Rng fold_rng(seed);
        Ann net(inputs, 1, opts.ann, fold_rng);
        const auto cdf = presentationCdf(data, train_rows,
                                         opts.weightedPresentation);

        // Pack the fold's training rows once: epochs sweep two flat
        // row-major buffers instead of chasing data.x[row] vectors,
        // and targets are encoded here rather than on every
        // presentation of every epoch (encode() is a pure function of
        // the fitted scaler, so hoisting it is bit-invisible).
        const size_t n_rows = train_rows.size();
        const size_t in_w = static_cast<size_t>(inputs);
        std::vector<double> fold_x(n_rows * in_w);
        std::vector<double> fold_t(n_rows);
        for (size_t r = 0; r < n_rows; ++r) {
            const size_t row = train_rows[r];
            std::copy(data.x[row].begin(), data.x[row].end(),
                      fold_x.begin() + static_cast<ptrdiff_t>(r * in_w));
            fold_t[r] = scaler.encode(data.y[row]);
        }
        std::vector<uint32_t> order(n_rows);

        double best_es = std::numeric_limits<double>::infinity();
        std::vector<double> best_weights = net.weights();
        int stale = 0;

        // An epoch's summed squared error on sigmoid outputs is
        // bounded by the row count; anything past this factor means
        // the arithmetic blew up, not that the fit is merely bad.
        const double explosion_bound =
            100.0 * static_cast<double>(train_rows.size());

        const auto &tm = TrainMetrics::get();
        auto &registry = obs::MetricsRegistry::global();
        const double base_lr = opts.ann.learningRate;
        for (int epoch = 0; epoch < opts.maxEpochs; ++epoch) {
            if (opts.ann.decayEpochs > 0.0) {
                net.setLearningRate(
                    base_lr / (1.0 + epoch / opts.ann.decayEpochs));
            }
            // One epoch = n_rows weighted presentations: draw the
            // whole presentation order first (consuming the fold's
            // RNG stream exactly as the historical per-presentation
            // loop did), then hand the packed fold to the fused epoch
            // kernel — bit-identical to the train()-per-row loop.
            for (size_t p = 0; p < n_rows; ++p)
                order[p] = static_cast<uint32_t>(drawRow(cdf, fold_rng));
            const double epoch_sq = net.trainEpoch(
                fold_x.data(), fold_t.data(), order.data(), n_rows);
            registry.add(tm.epochs);
            if (net.diverged() || !std::isfinite(epoch_sq) ||
                epoch_sq > explosion_bound) {
                return std::optional<Ann>();
            }
            if (!opts.earlyStopping ||
                (epoch + 1) % std::max(1, opts.esInterval) != 0) {
                continue;
            }
            const double es_err = evalError(net, data, scaler, es_rows,
                                            opts.percentageEarlyStop);
            if (es_err < best_es - 1e-12) {
                best_es = es_err;
                best_weights = net.weights();
                stale = 0;
            } else if (++stale >= opts.patience) {
                break;
            }
        }
        if (opts.earlyStopping)
            net.setWeights(best_weights);
        // Reaching here means every epoch's loss was finite and under
        // the explosion bound (the loop rejects the attempt
        // otherwise), which latches off the O(W) finiteWeights()
        // sweep on the healthy path. Retries keep the full scan: a
        // previous initialization of this fold has already blown up,
        // so the reseeded recovery path pays the sweep to certify its
        // accept decision.
        if (scan_weights && !net.finiteWeights())
            return std::optional<Ann>();
        return std::optional<Ann>(std::move(net));
    };

    auto train_fold = [&](size_t mi) {
        const auto &tm = TrainMetrics::get();
        auto &registry = obs::MetricsRegistry::global();
        obs::TraceScope span("train-fold", tm.foldWallNs);
        const int attempts_allowed = 1 + std::max(0, opts.foldRetries);
        // Retry seeds derive from the fold seed, not a shared
        // counter, so recovery is deterministic at any thread count.
        SplitMix64 reseeder(fold_seeds[mi] ^ 0x6a09e667f3bcc909ull);
        auto &injector = util::FaultInjector::global();

        for (int attempt = 0; attempt < attempts_allowed; ++attempt) {
            if (attempt > 0)
                registry.add(tm.foldRetries);
            const uint64_t seed =
                attempt == 0 ? fold_seeds[mi] : reseeder.next();
            // Injection site "fold": a fired probe stands in for a
            // diverged attempt, keyed by (fold, attempt) so the
            // outcome is independent of scheduling.
            std::optional<Ann> net;
            if (!injector.shouldFail(
                    "fold",
                    mi * 64 + static_cast<uint64_t>(attempt))) {
                net = attempt_fold(mi, seed, attempt > 0);
            }
            if (!net) {
                registry.add(tm.divergences);
                continue;
            }

            // Test-fold percentage errors feed the pooled estimate.
            for (size_t row : folds[mi]) {
                const double pred =
                    scaler.decode(net->predictScalar(data.x[row]));
                fold_pct_errors[mi].push_back(
                    percentageError(pred, data.y[row]));
            }
            slots[mi].emplace(std::move(*net));
            registry.add(tm.foldsTrained);
            return;
        }
        registry.add(tm.foldsDropped);
        warn_slots[mi] = TrainWarning{
            static_cast<int>(mi), attempts_allowed,
            "fold " + std::to_string(mi) + " diverged on all " +
                std::to_string(attempts_allowed) +
                " initializations; dropped from the ensemble"};
    };

    obs::MetricsRegistry::global().add(TrainMetrics::get().ensembles);
    util::ThreadPool::global().parallelFor(0, static_cast<size_t>(k),
                                           train_fold);

    // Reassemble in fold order: nets, pooled errors, and warnings are
    // identical regardless of which thread trained which fold.
    std::vector<Ann> nets;
    nets.reserve(static_cast<size_t>(k));
    std::vector<double> pooled_pct_errors;
    std::vector<TrainWarning> warnings;
    for (int m = 0; m < k; ++m) {
        if (warn_slots[static_cast<size_t>(m)]) {
            warnings.push_back(*warn_slots[static_cast<size_t>(m)]);
            continue;
        }
        nets.push_back(std::move(*slots[static_cast<size_t>(m)]));
        const auto &errs = fold_pct_errors[static_cast<size_t>(m)];
        pooled_pct_errors.insert(pooled_pct_errors.end(), errs.begin(),
                                 errs.end());
    }
    if (nets.empty()) {
        throw std::runtime_error(
            "trainEnsemble: every fold diverged after retries; "
            "no usable ensemble");
    }

    ErrorEstimate est;
    est.meanPct = mean(pooled_pct_errors);
    est.sdPct = stddev(pooled_pct_errors);
    if (!warnings.empty()) {
        // Fewer members and fewer pooled test folds mean a less
        // trustworthy estimate; widen it so a degraded ensemble
        // never looks *more* converged than a healthy one.
        const double widen = std::sqrt(
            static_cast<double>(k) / static_cast<double>(nets.size()));
        est.meanPct *= widen;
        est.sdPct *= widen;
    }
    return Ensemble(std::move(nets), scaler, est, std::move(warnings));
}

} // namespace ml
} // namespace dse
