#include "ml/crossapp.hh"

#include <stdexcept>

namespace dse {
namespace ml {

CrossAppSpace::CrossAppSpace(const DesignSpace &space,
                             std::vector<std::string> apps)
    : space_(space), apps_(std::move(apps))
{
    if (apps_.empty())
        throw std::invalid_argument("need at least one application");
}

int
CrossAppSpace::encodedWidth() const
{
    return static_cast<int>(apps_.size()) + space_.encodedWidth();
}

std::vector<double>
CrossAppSpace::encode(size_t app_index, uint64_t index) const
{
    if (app_index >= apps_.size())
        throw std::out_of_range("application index out of range");
    std::vector<double> x;
    x.reserve(static_cast<size_t>(encodedWidth()));
    for (size_t a = 0; a < apps_.size(); ++a)
        x.push_back(a == app_index ? 1.0 : 0.0);
    const auto design = space_.encodeIndex(index);
    x.insert(x.end(), design.begin(), design.end());
    return x;
}

size_t
CrossAppSpace::appIndex(const std::string &name) const
{
    for (size_t a = 0; a < apps_.size(); ++a) {
        if (apps_[a] == name)
            return a;
    }
    throw std::invalid_argument("unknown application: " + name);
}

Ensemble
trainCrossAppEnsemble(const CrossAppSpace &space,
                      const std::vector<CrossAppSample> &samples,
                      const TrainOptions &opts)
{
    DataSet data;
    for (const auto &s : samples)
        data.add(space.encode(s.appIndex, s.designIndex), s.target);
    return trainEnsemble(data, opts);
}

} // namespace ml
} // namespace dse
