#include "ml/multitask.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "util/stats.hh"

namespace dse {
namespace ml {

MultiTaskEnsemble::MultiTaskEnsemble(std::vector<Ann> nets,
                                     std::vector<TargetScaler> scalers,
                                     ErrorEstimate primary_estimate)
    : nets_(std::move(nets)), scalers_(std::move(scalers)),
      estimate_(primary_estimate)
{
    if (nets_.empty())
        throw std::invalid_argument("ensemble needs at least one member");
}

std::vector<double>
MultiTaskEnsemble::predictAll(const std::vector<double> &x) const
{
    // Per-member outputs land in per-thread scratch; the only
    // allocation is the returned vector.
    const size_t outs = scalers_.size();
    thread_local std::vector<double> tmp;
    if (tmp.size() < outs)
        tmp.resize(outs);
    std::vector<double> sum(outs, 0.0);
    for (const auto &net : nets_) {
        net.predictBlockT(x.data(), 1, tmp.data());
        for (size_t t = 0; t < outs; ++t)
            sum[t] += tmp[t];
    }
    std::vector<double> decoded(outs);
    for (size_t t = 0; t < outs; ++t) {
        decoded[t] = scalers_[t].decode(
            sum[t] / static_cast<double>(nets_.size()));
    }
    return decoded;
}

double
MultiTaskEnsemble::predictPrimary(const std::vector<double> &x) const
{
    return predictAll(x)[0];
}

MultiTaskEnsemble
trainMultiTaskEnsemble(const MultiTaskDataSet &data,
                       const TrainOptions &opts)
{
    if (data.targets() == 0)
        throw std::invalid_argument("need at least one target");
    if (data.size() < static_cast<size_t>(opts.folds) || opts.folds < 2)
        throw std::invalid_argument("need at least `folds` points");

    Rng rng(opts.seed);

    // Per-target scalers.
    std::vector<TargetScaler> scalers(data.targets());
    for (size_t t = 0; t < data.targets(); ++t) {
        std::vector<double> col(data.size());
        for (size_t i = 0; i < data.size(); ++i)
            col[i] = data.y[i][t];
        scalers[t].fit(col);
    }

    std::vector<size_t> order(data.size());
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);
    const int k = opts.folds;
    std::vector<std::vector<size_t>> folds(static_cast<size_t>(k));
    for (size_t i = 0; i < order.size(); ++i)
        folds[i % static_cast<size_t>(k)].push_back(order[i]);

    const int inputs = static_cast<int>(data.x.front().size());
    const int outputs = static_cast<int>(data.targets());
    std::vector<Ann> nets;
    std::vector<double> pooled_primary_errors;

    for (int m = 0; m < k; ++m) {
        const int test_fold = m;
        const int es_fold = (m + k - 1) % k;

        std::vector<size_t> train_rows;
        for (int f = 0; f < k; ++f) {
            if (f == test_fold || f == es_fold)
                continue;
            train_rows.insert(train_rows.end(), folds[f].begin(),
                              folds[f].end());
        }
        const auto &es_rows = folds[static_cast<size_t>(es_fold)];
        const auto &test_rows = folds[static_cast<size_t>(test_fold)];

        // Cumulative presentation weights by primary target.
        std::vector<double> cdf(train_rows.size());
        double acc = 0.0;
        for (size_t i = 0; i < train_rows.size(); ++i) {
            const double t = std::abs(data.y[train_rows[i]][0]);
            acc += opts.weightedPresentation ? 1.0 / std::max(t, 1e-6)
                                             : 1.0;
            cdf[i] = acc;
        }

        Ann net(inputs, outputs, opts.ann, rng);

        // Row pack/prediction buffers for primary_error, reused
        // across early-stopping evaluations.
        std::vector<double> exbuf;
        std::vector<double> eybuf;
        auto primary_error = [&](const std::vector<size_t> &rows) {
            if (rows.empty())
                return 0.0;
            const size_t n = rows.size();
            const size_t in = static_cast<size_t>(inputs);
            const size_t no = static_cast<size_t>(outputs);
            if (exbuf.size() < n * in)
                exbuf.resize(n * in);
            if (eybuf.size() < n * no)
                eybuf.resize(n * no);
            for (size_t r = 0; r < n; ++r)
                std::copy(data.x[rows[r]].begin(), data.x[rows[r]].end(),
                          exbuf.begin() + static_cast<ptrdiff_t>(r * in));
            net.predictBatch(exbuf.data(), n, eybuf.data());
            double sum = 0.0;
            for (size_t r = 0; r < n; ++r) {
                const double pred = scalers[0].decode(eybuf[r * no]);
                sum += percentageError(pred, data.y[rows[r]][0]);
            }
            return sum / static_cast<double>(n);
        };

        double best_es = std::numeric_limits<double>::infinity();
        auto best_weights = net.weights();
        int stale = 0;
        std::vector<double> target(static_cast<size_t>(outputs));

        const double base_lr = opts.ann.learningRate;
        for (int epoch = 0; epoch < opts.maxEpochs; ++epoch) {
            if (opts.ann.decayEpochs > 0.0) {
                net.setLearningRate(
                    base_lr / (1.0 + epoch / opts.ann.decayEpochs));
            }
            for (size_t n = 0; n < train_rows.size(); ++n) {
                const double r = rng.uniform() * cdf.back();
                const auto it = std::upper_bound(cdf.begin(), cdf.end(), r);
                const size_t row = train_rows[static_cast<size_t>(
                    std::min<ptrdiff_t>(it - cdf.begin(),
                        static_cast<ptrdiff_t>(cdf.size()) - 1))];
                for (size_t t = 0; t < data.targets(); ++t)
                    target[t] = scalers[t].encode(data.y[row][t]);
                net.train(data.x[row], target);
            }
            if (!opts.earlyStopping ||
                (epoch + 1) % std::max(1, opts.esInterval) != 0) {
                continue;
            }
            const double es_err = primary_error(es_rows);
            if (es_err < best_es - 1e-12) {
                best_es = es_err;
                best_weights = net.weights();
                stale = 0;
            } else if (++stale >= opts.patience) {
                break;
            }
        }
        if (opts.earlyStopping)
            net.setWeights(best_weights);

        for (size_t row : test_rows) {
            const double pred =
                scalers[0].decode(net.predict(data.x[row])[0]);
            pooled_primary_errors.push_back(
                percentageError(pred, data.y[row][0]));
        }
        nets.push_back(std::move(net));
    }

    ErrorEstimate est;
    est.meanPct = mean(pooled_primary_errors);
    est.sdPct = stddev(pooled_primary_errors);
    return MultiTaskEnsemble(std::move(nets), std::move(scalers), est);
}

} // namespace ml
} // namespace dse
