#include "ml/encoding.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace dse {
namespace ml {

void
DesignSpace::addCardinal(const std::string &name, std::vector<double> values)
{
    if (values.empty())
        throw std::invalid_argument("parameter needs at least one level");
    ParamDesc p;
    p.name = name;
    p.kind = ParamKind::Cardinal;
    p.values = std::move(values);
    params_.push_back(std::move(p));
    rebuildCache();
}

void
DesignSpace::addContinuous(const std::string &name,
                           std::vector<double> values)
{
    addCardinal(name, std::move(values));
    params_.back().kind = ParamKind::Continuous;
}

void
DesignSpace::addNominal(const std::string &name,
                        std::vector<std::string> labels)
{
    if (labels.empty())
        throw std::invalid_argument("parameter needs at least one level");
    ParamDesc p;
    p.name = name;
    p.kind = ParamKind::Nominal;
    p.labels = std::move(labels);
    params_.push_back(std::move(p));
    rebuildCache();
}

void
DesignSpace::addBoolean(const std::string &name)
{
    ParamDesc p;
    p.name = name;
    p.kind = ParamKind::Boolean;
    p.values = {0.0, 1.0};
    params_.push_back(std::move(p));
    rebuildCache();
}

void
DesignSpace::rebuildCache()
{
    const size_t n = params_.size();
    minRaw_.assign(n, 0.0);
    span_.assign(n, 0.0);
    stride_.assign(n, 1);
    size_ = 1;
    for (size_t i = n; i-- > 0;) {
        stride_[i] = size_;
        size_ *= static_cast<uint64_t>(params_[i].numLevels());
        const ParamDesc &p = params_[i];
        if (p.kind == ParamKind::Cardinal ||
            p.kind == ParamKind::Continuous) {
            const auto [mn, mx] = std::minmax_element(
                p.values.begin(), p.values.end());
            minRaw_[i] = *mn;
            span_[i] = *mx - *mn;
        }
    }
}

size_t
DesignSpace::paramIndex(const std::string &name) const
{
    for (size_t i = 0; i < params_.size(); ++i) {
        if (params_[i].name == name)
            return i;
    }
    throw std::invalid_argument("unknown parameter: " + name);
}

uint64_t
DesignSpace::size() const
{
    return size_;
}

int
DesignSpace::encodedWidth() const
{
    int w = 0;
    for (const auto &p : params_)
        w += p.encodedWidth();
    return w;
}

std::vector<int>
DesignSpace::levels(uint64_t index) const
{
    if (index >= size())
        throw std::out_of_range("design-point index out of range");
    std::vector<int> out(params_.size());
    // Mixed radix, last parameter fastest.
    for (size_t i = params_.size(); i-- > 0;) {
        const uint64_t radix =
            static_cast<uint64_t>(params_[i].numLevels());
        out[i] = static_cast<int>(index % radix);
        index /= radix;
    }
    return out;
}

uint64_t
DesignSpace::index(const std::vector<int> &levels) const
{
    validateLevels(levels);
    uint64_t idx = 0;
    for (size_t i = 0; i < params_.size(); ++i) {
        idx = idx * static_cast<uint64_t>(params_[i].numLevels()) +
            static_cast<uint64_t>(levels[i]);
    }
    return idx;
}

void
DesignSpace::validateLevels(const std::vector<int> &levels) const
{
    if (levels.size() != params_.size())
        throw std::invalid_argument("level vector has wrong arity");
    for (size_t i = 0; i < params_.size(); ++i) {
        if (levels[i] < 0 || levels[i] >= params_[i].numLevels())
            throw std::out_of_range("level out of range for parameter " +
                                    params_[i].name);
    }
}

void
DesignSpace::encodeLevelsInto(const int *levels, double *out) const
{
    for (size_t i = 0; i < params_.size(); ++i) {
        const ParamDesc &p = params_[i];
        switch (p.kind) {
          case ParamKind::Nominal:
            for (int l = 0; l < p.numLevels(); ++l)
                *out++ = l == levels[i] ? 1.0 : 0.0;
            break;
          case ParamKind::Boolean:
            *out++ = p.values[static_cast<size_t>(levels[i])];
            break;
          case ParamKind::Cardinal:
          case ParamKind::Continuous: {
            const double span = span_[i];
            const double v = p.values[static_cast<size_t>(levels[i])];
            *out++ = span > 0.0 ? (v - minRaw_[i]) / span : 0.5;
            break;
          }
        }
    }
}

std::vector<double>
DesignSpace::encode(const std::vector<int> &levels) const
{
    validateLevels(levels);
    std::vector<double> x(static_cast<size_t>(encodedWidth()));
    encodeLevelsInto(levels.data(), x.data());
    return x;
}

std::vector<double>
DesignSpace::encodeIndex(uint64_t index) const
{
    std::vector<double> x(static_cast<size_t>(encodedWidth()));
    encodeIndexInto(index, x.data());
    return x;
}

namespace {

/** Per-thread level scratch for the allocation-free encode paths. */
int *
levelScratch(size_t n)
{
    thread_local std::vector<int> buf;
    if (buf.size() < n)
        buf.resize(n);
    return buf.data();
}

} // namespace

void
DesignSpace::encodeIndexInto(uint64_t index, double *out) const
{
    if (index >= size_)
        throw std::out_of_range("design-point index out of range");
    int *levels = levelScratch(params_.size());
    // Mixed radix, last parameter fastest.
    for (size_t i = params_.size(); i-- > 0;) {
        const uint64_t radix =
            static_cast<uint64_t>(params_[i].numLevels());
        levels[i] = static_cast<int>(index % radix);
        index /= radix;
    }
    encodeLevelsInto(levels, out);
}

void
DesignSpace::encodeRangeInto(uint64_t first, size_t count,
                             double *out) const
{
    if (count == 0)
        return;
    if (first >= size_ || count > size_ - first)
        throw std::out_of_range("design-point range out of range");
    const size_t np = params_.size();
    int *levels = levelScratch(np);
    uint64_t index = first;
    for (size_t i = np; i-- > 0;) {
        const uint64_t radix =
            static_cast<uint64_t>(params_[i].numLevels());
        levels[i] = static_cast<int>(index % radix);
        index /= radix;
    }
    const size_t width = static_cast<size_t>(encodedWidth());
    for (size_t r = 0;;) {
        encodeLevelsInto(levels, out + r * width);
        if (++r == count)
            break;
        // Odometer step: increment the fastest (last) parameter,
        // carrying into slower ones.
        for (size_t i = np; i-- > 0;) {
            if (++levels[i] < params_[i].numLevels())
                break;
            levels[i] = 0;
        }
    }
}

double
DesignSpace::value(size_t p, int l) const
{
    const ParamDesc &desc = params_.at(p);
    if (desc.kind == ParamKind::Nominal)
        throw std::invalid_argument("nominal parameter has no value");
    return desc.values.at(static_cast<size_t>(l));
}

const std::string &
DesignSpace::label(size_t p, int l) const
{
    const ParamDesc &desc = params_.at(p);
    if (desc.kind != ParamKind::Nominal)
        throw std::invalid_argument("parameter is not nominal");
    return desc.labels.at(static_cast<size_t>(l));
}

double
DesignSpace::valueOf(const std::string &name,
                     const std::vector<int> &levels) const
{
    const size_t p = paramIndex(name);
    return value(p, levels.at(p));
}

const std::string &
DesignSpace::labelOf(const std::string &name,
                     const std::vector<int> &levels) const
{
    const size_t p = paramIndex(name);
    return label(p, levels.at(p));
}

void
TargetScaler::fit(const std::vector<double> &targets, double margin,
                  double lo, double hi)
{
    if (targets.empty())
        throw std::invalid_argument("cannot fit scaler to no targets");
    if (!(lo < hi))
        throw std::invalid_argument("scaler needs lo < hi");
    const auto [mn, mx] = std::minmax_element(targets.begin(),
                                              targets.end());
    double span = *mx - *mn;
    if (span <= 0.0)
        span = std::max(1e-9, std::abs(*mn));
    rawMin_ = *mn - margin * span;
    rawMax_ = *mx + margin * span;
    lo_ = lo;
    hi_ = hi;
}

TargetScaler
TargetScaler::fromRange(double raw_min, double raw_max, double lo,
                        double hi)
{
    if (!(raw_min < raw_max) || !(lo < hi))
        throw std::invalid_argument("bad scaler range");
    TargetScaler s;
    s.rawMin_ = raw_min;
    s.rawMax_ = raw_max;
    s.lo_ = lo;
    s.hi_ = hi;
    return s;
}

double
TargetScaler::encode(double raw) const
{
    const double t = (raw - rawMin_) / (rawMax_ - rawMin_);
    return lo_ + t * (hi_ - lo_);
}

double
TargetScaler::decode(double encoded) const
{
    const double t = (encoded - lo_) / (hi_ - lo_);
    return rawMin_ + t * (rawMax_ - rawMin_);
}

} // namespace ml
} // namespace dse
