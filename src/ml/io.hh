/**
 * @file
 * Ensemble serialization: save a trained model to a plain-text file
 * and restore it later, so an expensive exploration's result can be
 * reused across sessions and shared between tools (the model *is*
 * the product of a design-space study).
 *
 * Format: a line-oriented text file with a version header, topology,
 * scaler, error estimate, and per-member weight vectors. All numbers
 * are written with max_digits10 precision, so a save/load round trip
 * reproduces predictions bit-exactly.
 *
 * Durability (file overloads): saveEnsemble(path) writes the whole
 * serialization plus a trailing whole-file checksum line to a temp
 * file, fsyncs, and renames it into place — a crash mid-save leaves
 * the previous complete file, never a torn one. loadEnsemble(path)
 * verifies the checksum before parsing and reports *distinct* errors
 * for a truncated file (no/partial trailer), a corrupt file
 * (checksum mismatch), and a version mismatch, so an operator knows
 * whether to re-save, restore from backup, or upgrade. The stream
 * overloads keep the historical trailer-less format for embedding in
 * other streams.
 */

#ifndef DSE_ML_IO_HH
#define DSE_ML_IO_HH

#include <iosfwd>
#include <string>

#include "ml/cross_validation.hh"

namespace dse {
namespace ml {

/** Serialize an ensemble to a stream. */
void saveEnsemble(std::ostream &os, const Ensemble &model);

/** Serialize an ensemble to a file. @throws std::runtime_error */
void saveEnsemble(const std::string &path, const Ensemble &model);

/**
 * Restore an ensemble from a stream.
 * @throws std::runtime_error on malformed input
 */
Ensemble loadEnsemble(std::istream &is);

/** Restore an ensemble from a file. @throws std::runtime_error */
Ensemble loadEnsemble(const std::string &path);

} // namespace ml
} // namespace dse

#endif // DSE_ML_IO_HH
