/**
 * @file
 * Multi-task learning extension (Chapter 7, "Conclusions and Future
 * Work").
 *
 * Simulators report several statistics besides the main metric (cache
 * miss rates, branch misprediction rates, ...). These correlate with
 * IPC but cannot be model *inputs* — they are unknown for unsimulated
 * points. Multi-task learning exploits the correlations anyway: one
 * network with several outputs is trained to predict all metrics at
 * once, sharing its hidden layer. The shared representation acts as
 * an inductive bias that can improve the main metric's accuracy in
 * the sparse-sampling regime.
 */

#ifndef DSE_ML_MULTITASK_HH
#define DSE_ML_MULTITASK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ml/ann.hh"
#include "ml/cross_validation.hh"
#include "ml/encoding.hh"

namespace dse {
namespace ml {

/** A data set with several targets per row; target 0 is primary. */
struct MultiTaskDataSet
{
    std::vector<std::string> targetNames;
    std::vector<std::vector<double>> x;
    std::vector<std::vector<double>> y;  ///< one value per target

    size_t size() const { return x.size(); }
    size_t targets() const { return targetNames.size(); }

    void
    add(std::vector<double> features, std::vector<double> target_values)
    {
        x.push_back(std::move(features));
        y.push_back(std::move(target_values));
    }
};

/**
 * A k-fold cross-validation ensemble of multi-output networks.
 */
class MultiTaskEnsemble
{
  public:
    MultiTaskEnsemble(std::vector<Ann> nets,
                      std::vector<TargetScaler> scalers,
                      ErrorEstimate primary_estimate);

    /** Predict all targets (raw units, ensemble average). */
    std::vector<double> predictAll(const std::vector<double> &x) const;

    /** Predict only the primary target. */
    double predictPrimary(const std::vector<double> &x) const;

    /** Cross-validation estimate for the primary target. */
    const ErrorEstimate &estimate() const { return estimate_; }

    size_t members() const { return nets_.size(); }

  private:
    std::vector<Ann> nets_;
    std::vector<TargetScaler> scalers_;
    ErrorEstimate estimate_;
};

/**
 * Train a multi-task ensemble with the same fold rotation, weighted
 * presentation (by the primary target), and percentage-error early
 * stopping (on the primary target) as the single-task trainer.
 */
MultiTaskEnsemble trainMultiTaskEnsemble(const MultiTaskDataSet &data,
                                         const TrainOptions &opts);

} // namespace ml
} // namespace dse

#endif // DSE_ML_MULTITASK_HH
