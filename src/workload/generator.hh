/**
 * @file
 * Synthetic trace generation from application profiles.
 *
 * The generator first lays out *static code* for each phase — basic
 * blocks with fixed instruction sequences, loop regions, and static
 * branches — and then walks that code dynamically, drawing branch
 * outcomes from per-branch behavioural models and memory addresses
 * from per-slot access-pattern generators. The result is a fixed
 * dynamic trace with the structure real programs have: stable
 * per-block instruction sequences (so SimPoint's basic-block vectors
 * are meaningful), loop-dominated control flow, phase alternation,
 * and per-static-branch outcome processes that a real tournament
 * predictor can (imperfectly) learn.
 */

#ifndef DSE_WORKLOAD_GENERATOR_HH
#define DSE_WORKLOAD_GENERATOR_HH

#include <cstddef>

#include "workload/profile.hh"
#include "workload/trace.hh"

namespace dse {
namespace workload {

/** Default dynamic trace length used by the studies. */
constexpr size_t kDefaultTraceLength = 32768;

/**
 * Generate the dynamic trace for an application.
 *
 * Deterministic: the same profile (including its seed) and length
 * always produce the identical trace, so every machine configuration
 * in a study replays the same instruction stream.
 *
 * @param profile application description
 * @param length number of dynamic instructions; 0 uses the profile's
 *        own traceLength (memory-bound codes carry longer defaults)
 * @return the trace
 */
Trace generateTrace(const AppProfile &profile, size_t length = 0);

/** Convenience: generate the trace for a named paper benchmark. */
Trace generateBenchmarkTrace(const std::string &name, size_t length = 0);

} // namespace workload
} // namespace dse

#endif // DSE_WORKLOAD_GENERATOR_HH
