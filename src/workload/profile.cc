#include "workload/profile.hh"

#include <stdexcept>

namespace dse {
namespace workload {

namespace {

/// Integer benchmark skeleton; callers override the distinguishing knobs.
PhaseProfile
intPhase()
{
    PhaseProfile p;
    p.fLoad = 0.26;
    p.fStore = 0.11;
    p.fBranch = 0.17;
    p.fFpAlu = 0.0;
    p.fFpMul = 0.0;
    p.fIntMul = 0.02;
    return p;
}

/// Floating-point benchmark skeleton.
PhaseProfile
fpPhase()
{
    PhaseProfile p;
    p.fLoad = 0.30;
    p.fStore = 0.12;
    p.fBranch = 0.06;
    p.fFpAlu = 0.26;
    p.fFpMul = 0.12;
    p.fIntMul = 0.01;
    p.loopBranchFrac = 0.85;
    p.meanLoopTrip = 48.0;
    p.branchBias = 0.92;
    p.branchNoise = 0.02;
    p.depDistMean = 10.0;
    return p;
}

AppProfile
makeGzip()
{
    // gzip: integer compression. Small hot working set with good
    // locality, fairly predictable branches, a match/deflate phase
    // alternation. Among the easiest codes to model (Table 5.1).
    AppProfile app;
    app.name = "gzip";
    app.seed = 0x677a6970;
    app.traceLength = 32768;

    PhaseProfile deflate = intPhase();
    deflate.wsetBytes = 192 * 1024;
    deflate.streamFrac = 0.15;
    deflate.stackFrac = 0.5;
    deflate.reuseProb = 0.9;
    deflate.hotBytes = 5 * 1024;
    deflate.coldFrac = 0.005;
    deflate.nStreams = 2;
    deflate.strideBytes = 8;
    deflate.depDistMean = 6.0;
    deflate.branchBias = 0.86;
    deflate.branchNoise = 0.03;
    deflate.nStaticBranches = 96;
    deflate.nBlocks = 72;

    PhaseProfile match = deflate;
    match.wsetBytes = 96 * 1024;
    match.streamFrac = 0.1;
    match.stackFrac = 0.55;
    match.hotBytes = 4 * 1024;
    match.depDistMean = 4.0;
    match.branchBias = 0.78;
    match.nBlocks = 56;

    app.phases = {deflate, match};
    app.schedule = {{0, 0.3}, {1, 0.25}, {0, 0.25}, {1, 0.2}};
    return app;
}

AppProfile
makeMcf()
{
    // mcf: network-simplex solver; the study's memory-bound extreme.
    // Pointer chasing over an L2-straddling cyclic working set plus a
    // heavy never-reused tail (sustained DRAM traffic): strongly
    // sensitive to L2 capacity/latency, buses, and SDRAM.
    AppProfile app;
    app.name = "mcf";
    app.seed = 0x6d6366;
    app.traceLength = 131072;

    PhaseProfile chase = intPhase();
    chase.fLoad = 0.32;
    chase.fStore = 0.09;
    chase.wsetBytes = 512 * 1024;
    chase.streamFrac = 0.12;        // block-stride churn (L2 capacity)
    chase.nStreams = 1;
    chase.blockStrideStreams = 1;
    chase.pointerFrac = 0.22;       // L2-latency dependence chains
    chase.stackFrac = 0.3;
    chase.reuseProb = 0.55;
    chase.hotBytes = 24 * 1024;
    chase.coldFrac = 0.04;
    chase.depDistMean = 4.0;
    chase.branchBias = 0.80;
    chase.branchNoise = 0.05;
    chase.nStaticBranches = 80;
    chase.nBlocks = 64;

    PhaseProfile update = chase;
    update.pointerFrac = 0.1;
    update.streamFrac = 0.15;
    update.coldFrac = 0.025;
    update.reuseProb = 0.7;
    update.depDistMean = 5.0;

    app.phases = {chase, update};
    app.schedule = {{0, 0.4}, {1, 0.2}, {0, 0.3}, {1, 0.1}};
    return app;
}

AppProfile
makeCrafty()
{
    // crafty: chess search. Small working set (fits in L1), very
    // branchy with data-dependent branches, low memory sensitivity,
    // high sensitivity to branch prediction and width.
    AppProfile app;
    app.name = "crafty";
    app.seed = 0x63726166;
    app.traceLength = 32768;

    PhaseProfile search = intPhase();
    search.fBranch = 0.20;
    search.fLoad = 0.28;
    search.wsetBytes = 96 * 1024;
    search.streamFrac = 0.05;
    search.stackFrac = 0.55;
    search.reuseProb = 0.93;
    search.hotBytes = 4 * 1024;
    search.coldFrac = 0.002;
    search.depDistMean = 5.0;
    search.loopBranchFrac = 0.35;
    search.branchBias = 0.72;
    search.branchNoise = 0.05;
    search.nStaticBranches = 320;
    search.nBlocks = 160;

    PhaseProfile eval = search;
    eval.fBranch = 0.15;
    eval.fIntMul = 0.04;
    eval.depDistMean = 7.0;
    eval.branchBias = 0.82;
    eval.nBlocks = 120;

    app.phases = {search, eval};
    app.schedule = {{0, 0.35}, {1, 0.15}, {0, 0.35}, {1, 0.15}};
    return app;
}

AppProfile
makeTwolf()
{
    // twolf: place-and-route. The paper's hardest benchmark: an
    // irregular response surface from noisy data-dependent branches,
    // a working set straddling the L2 sizes, and three dissimilar
    // phases.
    AppProfile app;
    app.name = "twolf";
    app.seed = 0x74776f6c;
    app.traceLength = 98304;

    PhaseProfile place = intPhase();
    place.fLoad = 0.30;
    place.fBranch = 0.19;
    place.wsetBytes = 384 * 1024;
    place.streamFrac = 0.08;
    place.nStreams = 1;
    place.blockStrideStreams = 1;
    place.pointerFrac = 0.14;
    place.stackFrac = 0.42;
    place.reuseProb = 0.75;
    place.hotBytes = 12 * 1024;
    place.coldFrac = 0.015;
    place.depDistMean = 3.5;
    place.loopBranchFrac = 0.3;
    place.branchBias = 0.68;
    place.branchNoise = 0.08;
    place.nStaticBranches = 400;
    place.nBlocks = 200;

    PhaseProfile anneal = place;
    anneal.wsetBytes = 256 * 1024;
    anneal.pointerFrac = 0.08;
    anneal.branchNoise = 0.10;
    anneal.branchBias = 0.60;
    anneal.coldFrac = 0.01;
    anneal.depDistMean = 4.5;

    PhaseProfile rip = place;
    rip.wsetBytes = 512 * 1024;
    rip.pointerFrac = 0.2;
    rip.streamFrac = 0.1;
    rip.reuseProb = 0.65;
    rip.hotBytes = 24 * 1024;
    rip.coldFrac = 0.022;
    rip.depDistMean = 3.5;

    app.phases = {place, anneal, rip};
    app.schedule = {{0, 0.2}, {1, 0.15}, {2, 0.15}, {0, 0.2},
                    {1, 0.15}, {2, 0.15}};
    return app;
}

AppProfile
makeMgrid()
{
    // mgrid: multigrid PDE solver. Streaming FP loops, very high ILP,
    // near-perfectly predictable loop branches; bandwidth-sensitive
    // through its streaming tail.
    AppProfile app;
    app.name = "mgrid";
    app.seed = 0x6d677269;
    app.traceLength = 65536;

    PhaseProfile smooth = fpPhase();
    smooth.wsetBytes = 448 * 1024;
    smooth.streamFrac = 0.35;
    smooth.stackFrac = 0.32;
    smooth.reuseProb = 0.9;
    smooth.hotBytes = 6 * 1024;
    smooth.coldFrac = 0.01;
    smooth.nStreams = 4;
    smooth.blockStrideStreams = 1;  // capacity churn
    smooth.strideBytes = 8;         // plus spatial streams
    smooth.depDistMean = 12.0;
    smooth.nStaticBranches = 24;
    smooth.nBlocks = 32;

    PhaseProfile restrict_ = smooth;
    restrict_.nStreams = 2;
    restrict_.blockStrideStreams = 1;
    restrict_.strideBytes = 16;
    restrict_.wsetBytes = 256 * 1024;
    restrict_.depDistMean = 9.0;

    app.phases = {smooth, restrict_};
    app.schedule = {{0, 0.4}, {1, 0.1}, {0, 0.4}, {1, 0.1}};
    return app;
}

AppProfile
makeApplu()
{
    // applu: LU-factorization PDE solver. Streaming FP like mgrid but
    // shorter dependence chains (back-substitution) and a larger
    // cyclic working set.
    AppProfile app;
    app.name = "applu";
    app.seed = 0x6170706c;
    app.traceLength = 65536;

    PhaseProfile rhs = fpPhase();
    rhs.wsetBytes = 512 * 1024;
    rhs.streamFrac = 0.3;
    rhs.stackFrac = 0.35;
    rhs.reuseProb = 0.88;
    rhs.hotBytes = 8 * 1024;
    rhs.coldFrac = 0.01;
    rhs.nStreams = 3;
    rhs.blockStrideStreams = 1;
    rhs.depDistMean = 8.0;
    rhs.nStaticBranches = 32;
    rhs.nBlocks = 40;

    PhaseProfile solve = rhs;
    solve.depDistMean = 4.0;
    solve.fFpMul = 0.18;
    solve.streamFrac = 0.25;
    solve.wsetBytes = 320 * 1024;

    app.phases = {rhs, solve};
    app.schedule = {{0, 0.3}, {1, 0.2}, {0, 0.3}, {1, 0.2}};
    return app;
}

AppProfile
makeMesa()
{
    // mesa: software 3-D rendering. FP with integer control, small
    // hot working set, excellent locality; the easiest FP code in the
    // processor study (Table 5.1).
    AppProfile app;
    app.name = "mesa";
    app.seed = 0x6d657361;
    app.traceLength = 32768;

    PhaseProfile xform = fpPhase();
    xform.fBranch = 0.11;
    xform.fFpAlu = 0.22;
    xform.fFpMul = 0.10;
    xform.wsetBytes = 128 * 1024;
    xform.streamFrac = 0.18;
    xform.stackFrac = 0.45;
    xform.reuseProb = 0.93;
    xform.hotBytes = 5 * 1024;
    xform.coldFrac = 0.004;
    xform.nStreams = 2;
    xform.depDistMean = 8.0;
    xform.loopBranchFrac = 0.6;
    xform.branchBias = 0.85;
    xform.branchNoise = 0.02;
    xform.nStaticBranches = 120;
    xform.nBlocks = 96;

    PhaseProfile raster = xform;
    raster.fFpAlu = 0.12;
    raster.fLoad = 0.26;
    raster.fStore = 0.16;
    raster.wsetBytes = 160 * 1024;
    raster.streamFrac = 0.28;
    raster.stackFrac = 0.38;
    raster.depDistMean = 9.0;

    app.phases = {xform, raster};
    app.schedule = {{0, 0.25}, {1, 0.25}, {0, 0.25}, {1, 0.25}};
    return app;
}

AppProfile
makeEquake()
{
    // equake: earthquake FEM. Sparse matrix-vector FP with irregular
    // indexed references over an L2-straddling working set.
    AppProfile app;
    app.name = "equake";
    app.seed = 0x6571756b;
    app.traceLength = 98304;

    PhaseProfile smvp = fpPhase();
    smvp.fLoad = 0.34;
    smvp.fStore = 0.08;
    smvp.fFpAlu = 0.24;
    smvp.fFpMul = 0.10;
    smvp.wsetBytes = 448 * 1024;
    smvp.streamFrac = 0.14;
    smvp.nStreams = 2;
    smvp.blockStrideStreams = 1;
    smvp.pointerFrac = 0.1;
    smvp.stackFrac = 0.38;
    smvp.reuseProb = 0.8;
    smvp.hotBytes = 12 * 1024;
    smvp.coldFrac = 0.015;
    smvp.depDistMean = 6.0;
    smvp.nStaticBranches = 48;
    smvp.nBlocks = 48;

    PhaseProfile integrate = smvp;
    integrate.pointerFrac = 0.04;
    integrate.streamFrac = 0.3;
    integrate.blockStrideStreams = 1;
    integrate.wsetBytes = 256 * 1024;
    integrate.coldFrac = 0.008;
    integrate.depDistMean = 9.0;

    app.phases = {smvp, integrate};
    app.schedule = {{0, 0.35}, {1, 0.15}, {0, 0.35}, {1, 0.15}};
    return app;
}

} // namespace

const std::vector<std::string> &
benchmarkNames()
{
    static const std::vector<std::string> names = {
        "gzip", "mcf", "crafty", "twolf",
        "mgrid", "applu", "mesa", "equake",
    };
    return names;
}

AppProfile
benchmarkProfile(const std::string &name)
{
    if (name == "gzip")
        return makeGzip();
    if (name == "mcf")
        return makeMcf();
    if (name == "crafty")
        return makeCrafty();
    if (name == "twolf")
        return makeTwolf();
    if (name == "mgrid")
        return makeMgrid();
    if (name == "applu")
        return makeApplu();
    if (name == "mesa")
        return makeMesa();
    if (name == "equake")
        return makeEquake();
    throw std::invalid_argument("unknown benchmark: " + name);
}

} // namespace workload
} // namespace dse
