#include "workload/generator.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/rng.hh"

namespace dse {
namespace workload {

namespace {

/** How a static memory instruction computes its addresses. */
enum class AccessKind : uint8_t { Stack, Stream, Random, Chase, Cold };

/** One slot of a static basic block. */
struct StaticOp
{
    OpClass cls = OpClass::IntAlu;
    bool fpDest = false;
};

/** A static basic block: fixed instruction sequence plus metadata. */
struct StaticBlock
{
    std::vector<StaticOp> ops;
    uint32_t basePc = 0;
    uint16_t id = 0;
    int16_t branchId = -1;  ///< -1 when the block does not end in a branch
};

/** Behavioural model of one static conditional branch. */
struct StaticBranch
{
    bool isLoop = false;
    double bias = 0.8;     ///< stationary taken probability (data branches)
    double corr = 0.7;     ///< P(outcome == previous outcome)
    double noise = 0.05;   ///< probability of defying the model
    /**
     * Characteristic trip count of a loop branch. Real loops have
     * stable trip counts (bounds rarely change between entries), so
     * each entry draws near this value rather than from a memoryless
     * distribution — that stability is what makes loop exits
     * predictable by a local-history predictor.
     */
    double meanTrip = 24.0;
    bool lastOutcome = true;
    int tripRemaining = 0; ///< loop iterations left before exit
};

/** A loop region: blocks [first, last] executed as one loop body. */
struct LoopRegion
{
    int first = 0;
    int last = 0;
};

/** All static code and dynamic state for one phase. */
struct PhaseCode
{
    const PhaseProfile *profile = nullptr;
    std::vector<int> blockIdx;    ///< global indices of this phase's blocks
    std::vector<LoopRegion> loops;
    // Memory-generator state.
    uint64_t wsetBase = 0;
    uint64_t wsetSize = 0;
    std::vector<uint64_t> streamPos;
    std::vector<uint64_t> streamBase;
    std::vector<uint64_t> streamSize;
    std::vector<uint64_t> streamStride;
};

/// Memory layout constants. All phases share one data region (real
/// phases traverse the same arrays differently — sharing keeps the
/// hot head resident across phase changes); phases differ in how far
/// into the region their working sets extend and in their access
/// mixes. Code regions are disjoint per phase.
constexpr uint64_t kStackBase = 0x7ff0000000ull;
constexpr uint64_t kStackSize = 8 * 1024;
/// Cold (never-reused) accesses march page by page through their own
/// region, one page per access, so they never hit anything.
constexpr uint64_t kColdBase = 0x4000000000ull;
constexpr uint64_t kDataRegionBase = 0x10000000ull;
constexpr uint32_t kCodeRegionStride = 0x100000u;

/**
 * Deterministically scatter a hot-block rank across a region.
 *
 * Exponential draws concentrate at low ranks; mapping rank to block
 * straight through would pile every region's hot head onto the same
 * low cache sets and melt direct-mapped caches with conflicts no real
 * layout exhibits. A multiplicative hash spreads the hot blocks
 * uniformly over the region (and thus over cache sets) while keeping
 * the *number* of hot blocks — the property that drives capacity
 * behaviour — exactly the same.
 */
uint64_t
scatterBlock(uint64_t rank, uint64_t region_blocks)
{
    return (rank * 0x9e3779b97f4a7c15ull) % region_blocks;
}

/** Draw a geometric-ish positive integer with the given mean. */
int
geometric(Rng &rng, double mean_value)
{
    if (mean_value <= 1.0)
        return 1;
    const double p = 1.0 / mean_value;
    int v = 1;
    while (v < 4096 && !rng.chance(p))
        ++v;
    return v;
}

/**
 * Pick the OpClass for one non-branch slot. Branches live at block
 * ends at a rate set by the block length, so body slots draw from
 * the mix conditioned on "not a branch".
 */
OpClass
drawOpClass(Rng &rng, const PhaseProfile &p)
{
    double r = rng.uniform() * std::max(1e-9, 1.0 - p.fBranch);
    if ((r -= p.fLoad) < 0)
        return OpClass::Load;
    if ((r -= p.fStore) < 0)
        return OpClass::Store;
    if ((r -= p.fFpAlu) < 0)
        return OpClass::FpAlu;
    if ((r -= p.fFpMul) < 0)
        return OpClass::FpMul;
    if ((r -= p.fIntMul) < 0)
        return OpClass::IntMul;
    return OpClass::IntAlu;
}

/** Pick the address-generation kind for a static memory slot. */
AccessKind
drawAccessKind(Rng &rng, const PhaseProfile &p, bool is_load)
{
    double r = rng.uniform();
    if ((r -= p.stackFrac) < 0)
        return AccessKind::Stack;
    if ((r -= p.streamFrac) < 0)
        return AccessKind::Stream;
    if (is_load && (r -= p.pointerFrac) < 0)
        return AccessKind::Chase;
    if ((r -= p.coldFrac) < 0)
        return AccessKind::Cold;
    return AccessKind::Random;
}

/**
 * Builds static code for all phases, then walks it dynamically.
 */
class TraceBuilder
{
  public:
    TraceBuilder(const AppProfile &app, size_t length)
        : app_(app), length_(length), rng_(app.seed)
    {
        if (app.phases.empty() || app.schedule.empty())
            throw std::invalid_argument(
                "profile needs at least one phase and schedule entry");
        buildStaticCode();
    }

    Trace
    build()
    {
        Trace trace;
        trace.app = app_.name;
        trace.ops.reserve(length_);

        for (const auto &[phase_idx, frac] : app_.schedule) {
            if (phase_idx < 0 ||
                phase_idx >= static_cast<int>(app_.phases.size())) {
                throw std::invalid_argument("schedule references bad phase");
            }
            const size_t budget = static_cast<size_t>(
                std::llround(frac * static_cast<double>(length_)));
            runPhase(trace, phase_idx, budget);
            if (trace.ops.size() >= length_)
                break;
        }
        // Rounding may leave a shortfall; top up with the last phase.
        while (trace.ops.size() < length_)
            runPhase(trace, app_.schedule.back().first,
                     length_ - trace.ops.size());
        trace.ops.resize(length_);

        trace.numBlocks = static_cast<uint16_t>(blocks_.size());
        trace.numBranches = static_cast<int16_t>(branches_.size());
        return trace;
    }

  private:
    void
    buildStaticCode()
    {
        phases_.resize(app_.phases.size());
        for (size_t p = 0; p < app_.phases.size(); ++p) {
            const PhaseProfile &prof = app_.phases[p];
            PhaseCode &code = phases_[p];
            code.profile = &prof;

            // Data layout: one region shared by all phases.
            code.wsetBase = kDataRegionBase;
            code.wsetSize = std::max<uint64_t>(
                4096, static_cast<uint64_t>(prof.wsetBytes));
            const int n_streams = std::max(1, prof.nStreams);
            code.streamPos.resize(n_streams);
            code.streamBase.resize(n_streams);
            code.streamSize.resize(n_streams);
            code.streamStride.resize(n_streams);
            // Streams walk the region's tail so they do not march
            // through (and evict) the exponentially hot head.
            const uint64_t reserve = std::min(
                code.wsetSize / 2,
                static_cast<uint64_t>(4.0 * prof.hotBytes));
            const uint64_t per_stream =
                (code.wsetSize - reserve) / n_streams;
            for (int s = 0; s < n_streams; ++s) {
                code.streamBase[s] = code.wsetBase + reserve +
                    per_stream * s;
                code.streamSize[s] = std::max<uint64_t>(per_stream, 1024);
                code.streamPos[s] = 0;
                code.streamStride[s] = s < prof.blockStrideStreams
                    ? 64 : static_cast<uint64_t>(
                          std::max(1, prof.strideBytes));
            }

            // Static blocks.
            uint32_t pc = kCodeRegionStride * static_cast<uint32_t>(p + 1);
            const int n_blocks = std::max(4, prof.nBlocks);
            const double p_branch = prof.fBranch;
            for (int b = 0; b < n_blocks; ++b) {
                StaticBlock blk;
                blk.id = static_cast<uint16_t>(blocks_.size());
                blk.basePc = pc;
                // Block length realizes the phase's branch frequency:
                // one branch per ~1/fBranch instructions.
                const int target = std::clamp(static_cast<int>(
                    std::lround(1.0 / std::max(p_branch, 0.04))) - 1,
                    3, 20);
                const int body_len = static_cast<int>(rng_.range(
                    std::max(3, target - 2), target + 2));
                for (int i = 0; i < body_len; ++i) {
                    StaticOp op;
                    op.cls = drawOpClass(rng_, prof);
                    if (op.cls == OpClass::Branch)
                        op.cls = OpClass::IntAlu;  // branches only at ends
                    op.fpDest = op.cls == OpClass::FpAlu ||
                                op.cls == OpClass::FpMul ||
                                (op.cls == OpClass::Load &&
                                 rng_.chance(prof.fFpAlu + prof.fFpMul));
                    blk.ops.push_back(op);
                }
                // Most blocks end in a conditional branch; allocate its
                // static behavioural model.
                if (rng_.chance(0.8) && static_cast<int>(branches_.size()) <
                        32000) {
                    StaticOp br;
                    br.cls = OpClass::Branch;
                    blk.ops.push_back(br);
                    blk.branchId = allocBranch(prof);
                }
                // One spare slot: loop-region construction may later
                // append a back-edge branch to this block.
                pc += static_cast<uint32_t>(4 * (blk.ops.size() + 1));
                code.blockIdx.push_back(static_cast<int>(blocks_.size()));
                blocks_.push_back(std::move(blk));
            }

            // Partition the phase's blocks into loop regions of 2-6
            // blocks; the last block's branch becomes the back-edge.
            size_t i = 0;
            while (i < code.blockIdx.size()) {
                const size_t span = std::min<size_t>(
                    static_cast<size_t>(rng_.range(2, 6)),
                    code.blockIdx.size() - i);
                LoopRegion region;
                region.first = static_cast<int>(i);
                region.last = static_cast<int>(i + span - 1);
                // Force the closing block's branch to be a loop branch.
                StaticBlock &closing =
                    blocks_[code.blockIdx[region.last]];
                if (closing.branchId < 0) {
                    StaticOp br;
                    br.cls = OpClass::Branch;
                    closing.ops.push_back(br);
                    closing.branchId = allocBranch(prof);
                }
                branches_[closing.branchId].isLoop = true;
                code.loops.push_back(region);
                i += span;
            }
        }
    }

    int16_t
    allocBranch(const PhaseProfile &prof)
    {
        StaticBranch br;
        br.isLoop = rng_.chance(prof.loopBranchFrac);
        br.bias = std::clamp(
            rng_.gaussian(prof.branchBias, 0.08), 0.05, 0.98);
        br.corr = std::clamp(rng_.gaussian(0.88, 0.06), 0.6, 0.97);
        br.noise = prof.branchNoise;
        // Log-normal spread of characteristic trip counts across the
        // program's loops.
        br.meanTrip = std::max(2.0, std::exp(
            rng_.gaussian(std::log(prof.meanLoopTrip), 0.5)));
        branches_.push_back(br);
        return static_cast<int16_t>(branches_.size() - 1);
    }

    bool
    drawBranchOutcome(StaticBranch &br)
    {
        bool outcome;
        if (br.isLoop) {
            if (br.tripRemaining <= 0) {
                // Stable trip count with small jitter between entries.
                br.tripRemaining = std::max(2, static_cast<int>(
                    std::lround(br.meanTrip * rng_.uniform(0.85, 1.15))));
            }
            --br.tripRemaining;
            outcome = br.tripRemaining > 0;  // taken = continue looping
        } else {
            // First-order Markov process around the branch bias.
            const double p_taken = br.lastOutcome
                ? br.bias + br.corr * (1.0 - br.bias)
                : br.bias * (1.0 - br.corr);
            outcome = rng_.chance(p_taken);
        }
        if (rng_.chance(br.noise))
            outcome = !outcome;
        br.lastOutcome = outcome;
        return outcome;
    }

    uint64_t
    drawAddress(PhaseCode &code, AccessKind kind)
    {
        switch (kind) {
          case AccessKind::Stack: {
            // Active frames concentrate near the top of the stack:
            // exponentially distributed depth with ~1 KB decay,
            // scattered across the stack's blocks.
            const double d = -std::log(1.0 - rng_.uniform());
            const uint64_t rank = static_cast<uint64_t>(d * 1024.0) / 64;
            const uint64_t blk = scatterBlock(rank, kStackSize / 64);
            return kStackBase + blk * 64 + rng_.below(8) * 8;
          }
          case AccessKind::Stream: {
            const size_t s = static_cast<size_t>(
                rng_.below(code.streamPos.size()));
            const uint64_t addr = code.streamBase[s] + code.streamPos[s];
            code.streamPos[s] += code.streamStride[s];
            if (code.streamPos[s] >= code.streamSize[s])
                code.streamPos[s] = 0;
            return addr;
          }
          case AccessKind::Cold: {
            const uint64_t addr = kColdBase + coldPtr_;
            coldPtr_ += 4096;
            return addr;
          }
          case AccessKind::Chase:
          case AccessKind::Random: {
            if (rng_.chance(code.profile->reuseProb)) {
                // Hot set: exponentially distributed block rank, so a
                // cache of size S captures ~1 - e^(-S/hotBytes) of
                // these accesses — a smooth capacity response. Ranks
                // are scattered across the region's blocks so hot
                // data spreads evenly over cache sets.
                const double d = -std::log(1.0 - rng_.uniform());
                const uint64_t rank = static_cast<uint64_t>(
                    d * code.profile->hotBytes) / 64;
                const uint64_t blk =
                    scatterBlock(rank, code.wsetSize / 64);
                return code.wsetBase + blk * 64 + rng_.below(8) * 8;
            }
            return code.wsetBase + (rng_.below(code.wsetSize / 8) * 8);
          }
        }
        return code.wsetBase;
    }

    /** Emit the dynamic instance of one static block. */
    void
    emitBlock(Trace &trace, PhaseCode &code, const StaticBlock &blk,
              bool &branch_taken)
    {
        const PhaseProfile &prof = *code.profile;
        branch_taken = false;
        for (size_t i = 0; i < blk.ops.size(); ++i) {
            const StaticOp &sop = blk.ops[i];
            TraceOp op;
            op.cls = sop.cls;
            op.pc = blk.basePc + static_cast<uint32_t>(4 * i);
            op.block = blk.id;
            op.fpDest = sop.fpDest;

            const int32_t idx = static_cast<int32_t>(trace.ops.size());
            auto draw_dep = [&]() -> int32_t {
                // A quarter of inputs come from long-dead values
                // (constants, loop-invariant registers): no dependence.
                if (rng_.chance(0.25))
                    return 0;
                const int d = geometric(rng_, prof.depDistMean);
                return std::min<int32_t>(d, idx);
            };

            if (sop.cls == OpClass::Load || sop.cls == OpClass::Store) {
                // The access pattern is drawn per dynamic access so
                // the realized mix matches the phase profile exactly,
                // independent of which static slots sit in hot loops.
                const AccessKind kind = drawAccessKind(
                    rng_, prof, sop.cls == OpClass::Load);
                op.addr = drawAddress(code, kind);
                op.noWarm = kind == AccessKind::Cold;
                if (kind == AccessKind::Chase && lastChaseIdx_ >= 0 &&
                    lastChaseIdx_ < idx) {
                    // Address depends on the previous chased pointer.
                    op.src1 = idx - lastChaseIdx_;
                } else {
                    op.src1 = idx > 0 ? draw_dep() : 0;
                }
                if (sop.cls == OpClass::Store)
                    op.src2 = idx > 0 ? draw_dep() : 0;  // store data
                if (kind == AccessKind::Chase && sop.cls == OpClass::Load)
                    lastChaseIdx_ = idx;
            } else if (sop.cls == OpClass::Branch) {
                StaticBranch &br = branches_[blk.branchId];
                op.branchId = blk.branchId;
                op.taken = drawBranchOutcome(br);
                branch_taken = op.taken;
                op.src1 = idx > 0 ? draw_dep() : 0;  // condition input
            } else {
                op.src1 = idx > 0 ? draw_dep() : 0;
                if (rng_.chance(0.6))
                    op.src2 = idx > 0 ? draw_dep() : 0;
            }
            trace.ops.push_back(op);
        }
    }

    /** Generate ~budget instructions by walking one phase's code. */
    void
    runPhase(Trace &trace, int phase_idx, size_t budget)
    {
        PhaseCode &code = phases_[phase_idx];
        const size_t target = trace.ops.size() + budget;

        size_t loop_idx = 0;
        while (trace.ops.size() < target && trace.ops.size() < length_) {
            const LoopRegion &region = code.loops[loop_idx];
            // Execute one loop until its back-edge exits.
            bool exited = false;
            while (!exited && trace.ops.size() < target) {
                int b = region.first;
                while (b <= region.last) {
                    const StaticBlock &blk = blocks_[code.blockIdx[b]];
                    bool taken = false;
                    emitBlock(trace, code, blk, taken);
                    const bool is_backedge = b == region.last;
                    if (is_backedge) {
                        // Loop back-edge: taken repeats the body.
                        exited = !taken;
                        break;
                    }
                    // Intra-body data branch: taken skips a block,
                    // perturbing the basic-block mix.
                    b += taken ? 2 : 1;
                }
            }
            // Move to another loop region, favouring the next one.
            if (rng_.chance(0.75)) {
                loop_idx = (loop_idx + 1) % code.loops.size();
            } else {
                loop_idx = static_cast<size_t>(
                    rng_.below(code.loops.size()));
            }
        }
    }

    const AppProfile &app_;
    const size_t length_;
    Rng rng_;
    std::vector<StaticBlock> blocks_;
    std::vector<StaticBranch> branches_;
    std::vector<PhaseCode> phases_;
    int32_t lastChaseIdx_ = -1;
    uint64_t coldPtr_ = 0;
};

} // namespace

Trace
generateTrace(const AppProfile &profile, size_t length)
{
    TraceBuilder builder(profile,
                         length ? length : profile.traceLength);
    return builder.build();
}

Trace
generateBenchmarkTrace(const std::string &name, size_t length)
{
    return generateTrace(benchmarkProfile(name), length);
}

const char *
opClassName(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu: return "IntAlu";
      case OpClass::IntMul: return "IntMul";
      case OpClass::FpAlu: return "FpAlu";
      case OpClass::FpMul: return "FpMul";
      case OpClass::Load: return "Load";
      case OpClass::Store: return "Store";
      case OpClass::Branch: return "Branch";
    }
    return "?";
}

} // namespace workload
} // namespace dse
