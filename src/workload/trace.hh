/**
 * @file
 * Dynamic instruction trace representation.
 *
 * The simulator (dse::sim) is trace-driven: a workload is a fixed
 * sequence of dynamic instruction records produced once per
 * application (deterministically from its profile seed) and then
 * replayed under every machine configuration of a design-space study.
 * This mirrors how the paper holds the application fixed while the
 * architecture varies: IPC differences across configurations come
 * only from the machine model, never from the workload.
 */

#ifndef DSE_WORKLOAD_TRACE_HH
#define DSE_WORKLOAD_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dse {
namespace workload {

/** Functional class of a dynamic instruction. */
enum class OpClass : uint8_t {
    IntAlu,   ///< single-cycle integer operation
    IntMul,   ///< multi-cycle integer multiply/divide
    FpAlu,    ///< floating-point add/compare
    FpMul,    ///< floating-point multiply/divide/sqrt
    Load,     ///< memory read
    Store,    ///< memory write
    Branch,   ///< conditional branch
};

/** Number of distinct OpClass values. */
constexpr int kNumOpClasses = 7;

/** Human-readable OpClass name. */
const char *opClassName(OpClass cls);

/**
 * One dynamic instruction. Dependences are recorded as *distances*:
 * src1/src2 give how many instructions back in the dynamic stream the
 * producing instruction is (0 means no register input from a nearby
 * producer, i.e. the value is already available).
 */
struct TraceOp
{
    uint64_t addr = 0;      ///< effective address (Load/Store only)
    uint32_t pc = 0;        ///< instruction address (I-cache, BTB)
    int32_t src1 = 0;       ///< first input dependence distance
    int32_t src2 = 0;       ///< second input dependence distance
    uint16_t block = 0;     ///< static basic-block id (SimPoint BBVs)
    int16_t branchId = -1;  ///< static branch id; -1 when not a branch
    OpClass cls = OpClass::IntAlu;
    bool taken = false;     ///< branch outcome (Branch only)
    bool fpDest = false;    ///< destination register is floating point
    /**
     * Never pre-warmed: this access stands for the never-reused tail
     * of a working set far larger than the trace can express (e.g.
     * mcf's multi-megabyte graph). Functional warmup skips it so it
     * misses the hierarchy the way the real access would.
     */
    bool noWarm = false;
};

/**
 * A complete dynamic trace for one application, plus the static-code
 * metadata the simulator and SimPoint need.
 */
struct Trace
{
    std::string app;             ///< application name
    std::vector<TraceOp> ops;    ///< the dynamic instruction stream
    uint16_t numBlocks = 0;      ///< static basic-block count
    int16_t numBranches = 0;     ///< static branch count

    size_t size() const { return ops.size(); }
};

} // namespace workload
} // namespace dse

#endif // DSE_WORKLOAD_TRACE_HH
