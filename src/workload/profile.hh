/**
 * @file
 * Application profiles for the synthetic workload generator.
 *
 * The paper runs four SPEC CINT2000 (gzip, mcf, crafty, twolf) and
 * four SPEC CFP2000 (mgrid, applu, mesa, equake) benchmarks with
 * MinneSPEC reduced inputs. We cannot ship SPEC, so each benchmark is
 * replaced by a synthetic profile that reproduces its qualitative
 * character — instruction mix, ILP (dependence distances), working-set
 * size and access-pattern mix, branch predictability, and program
 * phase structure (DESIGN.md, substitution table). What matters for
 * the study is that the eight profiles yield eight *distinct*,
 * internally consistent nonlinear IPC response surfaces.
 */

#ifndef DSE_WORKLOAD_PROFILE_HH
#define DSE_WORKLOAD_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dse {
namespace workload {

/**
 * Behaviour of the program during one phase. A program is a sequence
 * of phases (loops/routines with distinct behaviour); SimPoint's
 * whole premise is that per-interval behaviour clusters by phase.
 */
struct PhaseProfile
{
    /// @name Instruction mix (fractions of dynamic instructions).
    /// The remainder after all listed classes is IntAlu.
    /// @{
    double fLoad = 0.25;
    double fStore = 0.10;
    double fBranch = 0.15;
    double fFpAlu = 0.0;
    double fFpMul = 0.0;
    double fIntMul = 0.02;
    /// @}

    /// @name Dependence structure.
    /// @{
    /// Mean register-dependence distance (geometric). Small values
    /// serialize execution (low ILP); large values expose parallelism.
    double depDistMean = 5.0;
    /// @}

    /// @name Memory behaviour.
    /// @{
    double wsetBytes = 256 * 1024;  ///< random-access working set
    double streamFrac = 0.4;   ///< memory ops that walk sequential streams
    double pointerFrac = 0.0;  ///< loads whose address depends on a prior load
    int nStreams = 4;          ///< concurrent sequential streams
    int strideBytes = 8;       ///< stream stride
    /**
     * The first `blockStrideStreams` streams walk with a 64-byte
     * (cache-block) stride instead of strideBytes: they touch a new
     * block every access and cycle their region, generating the
     * capacity churn that makes mid-size (L2) cache capacity matter
     * within a short trace.
     */
    int blockStrideStreams = 0;
    double stackFrac = 0.25;   ///< accesses to a small, hot stack region
    /**
     * Temporal locality of non-stream accesses: probability that a
     * random/chase access lands in the exponentially distributed hot
     * head of the working set instead of uniformly anywhere in it.
     * Real codes concentrate most accesses on a hot subset; this is
     * what makes cache capacity *gradually* valuable rather than
     * all-or-nothing.
     */
    double reuseProb = 0.6;
    /**
     * Characteristic size of the hot head: hot accesses fall at
     * exponentially distributed offsets with this mean, so the
     * fraction captured by a cache of size S grows smoothly
     * (~1 - e^(-S/hotBytes)) — the smooth capacity response real
     * applications exhibit.
     */
    double hotBytes = 24 * 1024;
    /**
     * Fraction of memory accesses that touch data that is never
     * reused within the trace (the far tail of a working set much
     * larger than the trace horizon). These always miss the whole
     * hierarchy — they are the application's sustained DRAM traffic,
     * and what makes FSB frequency and SDRAM latency matter.
     */
    double coldFrac = 0.01;
    /// @}

    /// @name Branch behaviour.
    /// @{
    double loopBranchFrac = 0.5;  ///< branches that are loop back-edges
    double meanLoopTrip = 24.0;   ///< mean loop trip count (taken run length)
    double branchBias = 0.8;      ///< mean bias of non-loop branches
    double branchNoise = 0.08;    ///< probability a branch defies its pattern
    int nStaticBranches = 64;     ///< static conditional branches in the phase
    int nBlocks = 48;             ///< static basic blocks in the phase
    /// @}
};

/**
 * A complete synthetic application: named phases plus the schedule in
 * which the program moves through them.
 */
struct AppProfile
{
    std::string name;
    /**
     * Dynamic trace length for this application. Memory-bound codes
     * need longer traces so cyclic working sets large enough to
     * exercise L2 capacity fit within the trace horizon.
     */
    size_t traceLength = 32768;
    std::vector<PhaseProfile> phases;
    /**
     * Phase schedule as (phase index, fraction of the trace) pairs,
     * in program order. Fractions must sum to ~1. Alternating entries
     * give the A-B-A-B structure real codes exhibit.
     */
    std::vector<std::pair<int, double>> schedule;
    uint64_t seed = 1;
};

/** Names of the eight benchmarks the paper evaluates. */
const std::vector<std::string> &benchmarkNames();

/**
 * Profile for one of the eight paper benchmarks by name
 * (gzip, mcf, crafty, twolf, mgrid, applu, mesa, equake).
 * @throws std::invalid_argument for an unknown name.
 */
AppProfile benchmarkProfile(const std::string &name);

} // namespace workload
} // namespace dse

#endif // DSE_WORKLOAD_PROFILE_HH
