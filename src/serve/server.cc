#include "serve/server.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "ml/explorer.hh"
#include "ml/io.hh"
#include "study/harness.hh"
#include "util/env.hh"
#include "util/fault.hh"
#include "util/metrics.hh"
#include "util/trace.hh"

namespace dse {
namespace serve {

namespace {

/** serve.* instrumentation (metrics.hh registration idiom). */
struct ServeMetrics
{
    obs::CounterId requests, predictions, batched, overloaded;
    obs::CounterId protocolErrors, bytesRx, bytesTx, connections;
    obs::HistogramId requestWallNs, batchWallNs, batchPoints;

    static const ServeMetrics &
    get()
    {
        static const ServeMetrics m = [] {
            auto &r = obs::MetricsRegistry::global();
            ServeMetrics s;
            s.requests = r.counter("serve.requests");
            s.predictions = r.counter("serve.predictions");
            s.batched = r.counter("serve.batched");
            s.overloaded = r.counter("serve.overloaded");
            s.protocolErrors = r.counter("serve.protocol_errors");
            s.bytesRx = r.counter("serve.bytes_rx");
            s.bytesTx = r.counter("serve.bytes_tx");
            s.connections = r.counter("serve.connections");
            s.requestWallNs = r.histogram("serve.request_wall_ns");
            s.batchWallNs = r.histogram("serve.batch_wall_ns");
            s.batchPoints = r.histogram("serve.batch_points");
            return s;
        }();
        return m;
    }
};

void
setNonBlocking(int fd)
{
    const int flags = fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/** Quick peek at a PredictPoints payload's point count (for batch
 *  sizing before the full decode; the decode still validates). */
size_t
peekPointCount(const std::string &payload)
{
    WireReader r(payload);
    const uint32_t n = r.u32();
    return (r.ok() && n) ? n : 1;
}

} // namespace

ServerOptions
ServerOptions::fromEnv()
{
    ServerOptions o;
    if (const char *addr = std::getenv("DSE_SERVE_ADDR")) {
        std::string s(addr);
        const auto colon = s.rfind(':');
        if (colon != std::string::npos) {
            o.port = static_cast<uint16_t>(
                std::atoi(s.c_str() + colon + 1));
            s.resize(colon);
        }
        if (!s.empty())
            o.addr = s;
    }
    o.workers =
        static_cast<size_t>(envInt("DSE_SERVE_WORKERS", 0));
    o.queueCapacity = static_cast<size_t>(
        envInt("DSE_SERVE_QUEUE", static_cast<long long>(o.queueCapacity)));
    o.maxBatchPoints = static_cast<size_t>(envInt(
        "DSE_SERVE_BATCH", static_cast<long long>(o.maxBatchPoints)));
    o.batchWindowUs = static_cast<int>(
        envInt("DSE_SERVE_BATCH_US", o.batchWindowUs));
    o.idleTimeoutMs = static_cast<int>(
        envInt("DSE_SERVE_IDLE_MS", o.idleTimeoutMs));
    o.writeTimeoutMs = static_cast<int>(
        envInt("DSE_SERVE_WRITE_MS", o.writeTimeoutMs));
    return o;
}

Server::Server(ServerOptions opts) : opts_(std::move(opts))
{
    if (opts_.queueCapacity == 0)
        opts_.queueCapacity = 1;
    if (opts_.maxBatchPoints == 0)
        opts_.maxBatchPoints = 1;
}

Server::~Server()
{
    stop();
}

uint64_t
Server::nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void
Server::setModel(ModelState state)
{
    auto shared = std::make_shared<const ModelState>(std::move(state));
    std::lock_guard<std::mutex> lock(modelMu_);
    model_ = std::move(shared);
}

std::shared_ptr<const ModelState>
Server::model() const
{
    std::lock_guard<std::mutex> lock(modelMu_);
    return model_;
}

void
Server::setSimulateHandler(SimulateHandler handler)
{
    auto shared =
        std::make_shared<const SimulateHandler>(std::move(handler));
    std::lock_guard<std::mutex> lock(modelMu_);
    simulateHandler_ = std::move(shared);
}

void
Server::start()
{
    if (running_.load())
        throw std::runtime_error("serve: server already started");
    stopping_.store(false);
    workersExit_.store(false);

    // Wake pipe: workers (and signal handlers via requestStop) nudge
    // the poll loop with one byte.
    int pipefd[2];
    if (pipe(pipefd) != 0)
        throw std::runtime_error("serve: pipe() failed");
    wakeRead_ = pipefd[0];
    wakeWrite_ = pipefd[1];
    setNonBlocking(wakeRead_);
    setNonBlocking(wakeWrite_);

    listenFd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        throw std::runtime_error("serve: socket() failed");
    const int one = 1;
    setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in sin{};
    sin.sin_family = AF_INET;
    sin.sin_port = htons(opts_.port);
    std::string addr = opts_.addr;
    if (addr == "localhost")
        addr = "127.0.0.1";
    if (inet_pton(AF_INET, addr.c_str(), &sin.sin_addr) != 1) {
        close(listenFd_);
        listenFd_ = -1;
        throw std::runtime_error("serve: bad bind address '" +
                                 opts_.addr + "'");
    }
    if (bind(listenFd_, reinterpret_cast<sockaddr *>(&sin),
             sizeof(sin)) != 0 ||
        listen(listenFd_, 128) != 0) {
        const std::string err = std::strerror(errno);
        close(listenFd_);
        listenFd_ = -1;
        throw std::runtime_error("serve: cannot listen on " + opts_.addr +
                                 ":" + std::to_string(opts_.port) + ": " +
                                 err);
    }
    setNonBlocking(listenFd_);

    socklen_t len = sizeof(sin);
    getsockname(listenFd_, reinterpret_cast<sockaddr *>(&sin), &len);
    boundPort_ = ntohs(sin.sin_port);

    workerCount_ = opts_.workers ? opts_.workers
                                 : util::ThreadPool::configuredThreads();
    workerPool_ = std::make_unique<util::ThreadPool>(workerCount_);
    // The driver thread participates in its own parallelFor, so every
    // one of workerCount_ indices becomes a live drain loop (each
    // iteration blocks until shutdown, pinning its claim to one
    // thread).
    workerDriver_ = std::thread([this] {
        workerPool_->parallelFor(0, workerCount_,
                                 [this](size_t) { workerLoop(); });
    });

    running_.store(true, std::memory_order_release);
    ioThread_ = std::thread([this] { ioLoop(); });
}

void
Server::requestStop()
{
    stopping_.store(true, std::memory_order_release);
    if (wakeWrite_ >= 0) {
        const char b = 1;
        [[maybe_unused]] ssize_t r = write(wakeWrite_, &b, 1);
    }
}

void
Server::stop()
{
    if (!running_.load(std::memory_order_acquire))
        return;

    // Phase 1: stop accepting and reading; the I/O thread sees
    // stopping_ and closes the listener.
    requestStop();
    pauseWorkersForTest(false);

    // Phase 2: let the workers drain everything already queued.
    {
        std::lock_guard<std::mutex> lock(queueMu_);
        workersExit_.store(true, std::memory_order_release);
    }
    queueCv_.notify_all();
    if (workerDriver_.joinable())
        workerDriver_.join();
    workerPool_.reset();

    // Phase 3: the I/O thread flushes the outboxes and exits (it
    // watches workersExit_ + empty queue + joined-worker state via
    // workersDrained_ implied by this ordering).
    workersDrained_.store(true, std::memory_order_release);
    wakeIo();
    if (ioThread_.joinable())
        ioThread_.join();

    if (wakeRead_ >= 0)
        close(wakeRead_);
    if (wakeWrite_ >= 0)
        close(wakeWrite_);
    wakeRead_ = wakeWrite_ = -1;
    workersDrained_.store(false);
    running_.store(false, std::memory_order_release);
}

void
Server::waitForStopRequest() const
{
    while (!stopRequested())
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
}

void
Server::pauseWorkersForTest(bool paused)
{
    {
        std::lock_guard<std::mutex> lock(queueMu_);
        workersPaused_.store(paused, std::memory_order_release);
    }
    queueCv_.notify_all();
}

StatsReply
Server::statsSnapshot() const
{
    StatsReply s;
    s.requests = counters_.requests.load();
    s.predictions = counters_.predictions.load();
    s.batchedRequests = counters_.batchedRequests.load();
    s.overloaded = counters_.overloaded.load();
    s.protocolErrors = counters_.protocolErrors.load();
    s.bytesRx = counters_.bytesRx.load();
    s.bytesTx = counters_.bytesTx.load();
    s.connectionsAccepted = counters_.connectionsAccepted.load();
    s.activeConnections = counters_.activeConnections.load();
    {
        std::lock_guard<std::mutex> lock(queueMu_);
        s.queueDepth = queue_.size();
    }
    return s;
}

// ------------------------------------------------------------- I/O thread

void
Server::wakeIo()
{
    if (wakeWrite_ >= 0) {
        const char b = 1;
        // A full pipe already guarantees a pending wake-up.
        [[maybe_unused]] ssize_t r = write(wakeWrite_, &b, 1);
    }
}

void
Server::ioLoop()
{
    std::vector<pollfd> pfds;
    std::vector<std::shared_ptr<Conn>> polled;
    bool listener_open = true;
    uint64_t drain_start_ns = 0;

    for (;;) {
        const bool stopping = stopping_.load(std::memory_order_acquire);
        if (stopping && listener_open) {
            close(listenFd_);
            listenFd_ = -1;
            listener_open = false;
        }

        // Exit once workers are done and every outbox has flushed (or
        // the drain deadline passes — a wedged client cannot hold
        // shutdown hostage).
        if (stopping && workersDrained_.load(std::memory_order_acquire)) {
            if (drain_start_ns == 0)
                drain_start_ns = nowNs();
            bool pending = false;
            for (auto &[fd, conn] : conns_) {
                std::lock_guard<std::mutex> lock(conn->txMu);
                if (!conn->tx.empty() && !conn->closed.load())
                    pending = true;
            }
            const uint64_t deadline =
                static_cast<uint64_t>(opts_.writeTimeoutMs) * 1000000ull;
            if (!pending || nowNs() - drain_start_ns > deadline)
                break;
        }

        pfds.clear();
        polled.clear();
        pfds.push_back({wakeRead_, POLLIN, 0});
        if (listener_open)
            pfds.push_back({listenFd_, POLLIN, 0});
        for (auto &[fd, conn] : conns_) {
            short events = 0;
            if (!stopping && !conn->draining)
                events |= POLLIN;
            {
                std::lock_guard<std::mutex> lock(conn->txMu);
                if (!conn->tx.empty())
                    events |= POLLOUT;
            }
            pfds.push_back({fd, events, 0});
            polled.push_back(conn);
        }

        poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 50);

        size_t at = 0;
        if (pfds[at].revents & POLLIN) {
            char buf[256];
            while (read(wakeRead_, buf, sizeof(buf)) > 0) {}
        }
        ++at;
        if (listener_open) {
            if (pfds[at].revents & POLLIN)
                acceptPending();
            ++at;
        }
        for (size_t i = 0; i < polled.size(); ++i, ++at) {
            const auto &conn = polled[i];
            if (conn->fd < 0)
                continue;  // closed earlier this iteration
            const short re = pfds[at].revents;
            if (re & (POLLERR | POLLNVAL)) {
                closeConn(conn);
                continue;
            }
            if (re & POLLOUT)
                flushWritable(conn);
            if (conn->fd >= 0 && (re & (POLLIN | POLLHUP)))
                handleReadable(conn);
        }

        reapTimeouts(nowNs());
    }

    // Shutdown: close whatever is left.
    std::vector<std::shared_ptr<Conn>> rest;
    rest.reserve(conns_.size());
    for (auto &[fd, conn] : conns_)
        rest.push_back(conn);
    for (auto &conn : rest)
        closeConn(conn);
    if (listener_open && listenFd_ >= 0) {
        close(listenFd_);
        listenFd_ = -1;
    }
}

void
Server::acceptPending()
{
    for (;;) {
        const int fd = accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            return;  // EAGAIN or transient error: poll again later
        const uint64_t key = counters_.connectionsAccepted.load();
        if (util::FaultInjector::global().shouldFail("serve.accept",
                                                     key)) {
            // Simulated accept failure: the client sees a clean
            // disconnect, nobody else is affected.
            close(fd);
            continue;
        }
        if (conns_.size() >= opts_.maxConnections) {
            // Best-effort structured refusal, then close: the frame
            // is small enough to fit any socket buffer.
            const std::string frame = encodeFrame(
                MsgType::Error, 0,
                ErrorReply{ErrCode::Overloaded,
                           "connection limit reached"}
                    .encode());
            [[maybe_unused]] ssize_t r =
                send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
            close(fd);
            counters_.overloaded.fetch_add(1);
            continue;
        }
        setNonBlocking(fd);
        const int one = 1;
        setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

        auto conn = std::make_shared<Conn>();
        conn->fd = fd;
        conn->id = nextConnId_++;
        conn->lastActivityNs = nowNs();
        conns_.emplace(fd, std::move(conn));
        counters_.connectionsAccepted.fetch_add(1);
        counters_.activeConnections.fetch_add(1);
        obs::MetricsRegistry::global().add(ServeMetrics::get().connections);
    }
}

void
Server::handleReadable(const std::shared_ptr<Conn> &conn)
{
    char buf[65536];
    for (;;) {
        const ssize_t n = read(conn->fd, buf, sizeof(buf));
        if (n > 0) {
            if (util::FaultInjector::global().shouldFail("serve.read",
                                                         conn->id)) {
                // Simulated read failure: drop the connection; its
                // queued requests still answer into a closed conn and
                // are discarded there.
                closeConn(conn);
                return;
            }
            counters_.bytesRx.fetch_add(static_cast<uint64_t>(n));
            obs::MetricsRegistry::global().add(
                ServeMetrics::get().bytesRx, static_cast<uint64_t>(n));
            conn->rx.append(buf, static_cast<size_t>(n));
            conn->lastActivityNs = nowNs();
            parseFrames(conn);
            if (conn->fd < 0)
                return;
            if (static_cast<ssize_t>(sizeof(buf)) != n)
                return;  // drained the socket
            continue;
        }
        if (n == 0) {
            // Orderly EOF. Keep the connection only to flush replies
            // still owed for queued requests.
            bool pending;
            {
                std::lock_guard<std::mutex> lock(conn->txMu);
                pending = !conn->tx.empty();
            }
            if (pending || conn->inflight.load() > 0)
                conn->draining = true;
            else
                closeConn(conn);
            return;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
            return;
        closeConn(conn);
        return;
    }
}

void
Server::parseFrames(const std::shared_ptr<Conn> &conn)
{
    while (conn->fd >= 0 && !conn->draining) {
        Frame frame;
        size_t consumed = 0;
        const DecodeStatus st =
            decodeFrame(conn->rx.data(), conn->rx.size(),
                        opts_.maxPayload, frame, consumed);
        switch (st) {
          case DecodeStatus::NeedMore:
            return;
          case DecodeStatus::Frame:
            conn->rx.erase(0, consumed);
            dispatchFrame(conn, std::move(frame));
            break;
          case DecodeStatus::BadPayload:
            // Header was authentic: reject exactly this frame and
            // keep serving the connection.
            conn->rx.erase(0, consumed);
            counters_.protocolErrors.fetch_add(1);
            obs::MetricsRegistry::global().add(
                ServeMetrics::get().protocolErrors);
            sendError(conn, frame.id, ErrCode::BadChecksum,
                      "payload checksum mismatch");
            break;
          case DecodeStatus::BadHeader:
          case DecodeStatus::TooLarge: {
            // The stream itself is untrustworthy: one structured
            // error, then flush-and-close.
            counters_.protocolErrors.fetch_add(1);
            obs::MetricsRegistry::global().add(
                ServeMetrics::get().protocolErrors);
            const bool too_large = st == DecodeStatus::TooLarge;
            sendError(conn, too_large ? frame.id : 0,
                      too_large ? ErrCode::FrameTooLarge
                                : ErrCode::BadFrame,
                      too_large ? "declared payload exceeds cap"
                                : "corrupt or unrecognized frame header");
            conn->rx.clear();
            conn->draining = true;
            return;
          }
        }
    }
}

void
Server::dispatchFrame(const std::shared_ptr<Conn> &conn, Frame frame)
{
    if (!isRequest(frame.type)) {
        sendError(conn, frame.id, ErrCode::BadRequest,
                  "not a request type");
        return;
    }
    counters_.requests.fetch_add(1);
    obs::MetricsRegistry::global().add(ServeMetrics::get().requests);

    switch (frame.type) {
      case MsgType::Ping:
        // Answered inline: a liveness probe must not queue behind
        // heavy prediction work.
        sendReply(conn, MsgType::Pong, frame.id, frame.payload);
        return;
      case MsgType::Stats:
        sendReply(conn, MsgType::StatsReply, frame.id,
                  statsSnapshot().encode());
        return;
      default:
        break;
    }

    {
        std::lock_guard<std::mutex> lock(queueMu_);
        if (queue_.size() >= opts_.queueCapacity) {
            counters_.overloaded.fetch_add(1);
            obs::MetricsRegistry::global().add(
                ServeMetrics::get().overloaded);
            sendError(conn, frame.id, ErrCode::Overloaded,
                      "request queue full");
            return;
        }
        conn->inflight.fetch_add(1);
        queue_.push_back(Request{conn, std::move(frame)});
    }
    queueCv_.notify_one();
}

void
Server::flushWritable(const std::shared_ptr<Conn> &conn)
{
    std::unique_lock<std::mutex> lock(conn->txMu);
    if (conn->tx.empty())
        return;
    if (util::FaultInjector::global().shouldFail("serve.write",
                                                 conn->id)) {
        lock.unlock();
        closeConn(conn);
        return;
    }
    // MSG_NOSIGNAL: a peer reset between poll() and the send must
    // surface as EPIPE, not kill embedders that never ignore SIGPIPE.
    const ssize_t n = send(conn->fd, conn->tx.data(), conn->tx.size(),
                           MSG_NOSIGNAL);
    if (n > 0) {
        conn->tx.erase(0, static_cast<size_t>(n));
        conn->writeBlockedSinceNs = 0;
        conn->lastActivityNs = nowNs();
        counters_.bytesTx.fetch_add(static_cast<uint64_t>(n));
        obs::MetricsRegistry::global().add(ServeMetrics::get().bytesTx,
                                           static_cast<uint64_t>(n));
    } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
               errno != EINTR) {
        lock.unlock();
        closeConn(conn);
        return;
    } else if (conn->writeBlockedSinceNs == 0) {
        conn->writeBlockedSinceNs = nowNs();
    }
    const bool done = conn->tx.empty();
    lock.unlock();
    if (done && conn->draining && conn->inflight.load() == 0)
        closeConn(conn);
}

void
Server::reapTimeouts(uint64_t now_ns)
{
    std::vector<std::shared_ptr<Conn>> victims;
    for (auto &[fd, conn] : conns_) {
        if (conn->closed.load()) {
            victims.push_back(conn);
            continue;
        }
        bool tx_empty;
        uint64_t blocked_since;
        {
            std::lock_guard<std::mutex> lock(conn->txMu);
            tx_empty = conn->tx.empty();
            blocked_since = conn->writeBlockedSinceNs;
        }
        if (!tx_empty && blocked_since != 0 &&
            now_ns - blocked_since >
                static_cast<uint64_t>(opts_.writeTimeoutMs) * 1000000ull) {
            victims.push_back(conn);  // write timeout: wedged reader
            continue;
        }
        if (conn->draining && tx_empty && conn->inflight.load() == 0) {
            victims.push_back(conn);
            continue;
        }
        if (tx_empty && conn->inflight.load() == 0 && !conn->draining &&
            now_ns - conn->lastActivityNs >
                static_cast<uint64_t>(opts_.idleTimeoutMs) * 1000000ull) {
            victims.push_back(conn);  // idle reap
        }
    }
    for (auto &conn : victims)
        closeConn(conn);
}

void
Server::closeConn(const std::shared_ptr<Conn> &conn)
{
    if (conn->fd < 0)
        return;
    conn->closed.store(true, std::memory_order_release);
    conns_.erase(conn->fd);
    shutdown(conn->fd, SHUT_RDWR);
    close(conn->fd);
    conn->fd = -1;
    counters_.activeConnections.fetch_sub(1);
}

// ---------------------------------------------------------------- replies

void
Server::sendReply(const std::shared_ptr<Conn> &conn, MsgType type,
                  uint64_t id, std::string_view payload)
{
    if (conn->closed.load(std::memory_order_acquire))
        return;
    std::string frame = encodeFrame(type, id, payload);
    {
        std::lock_guard<std::mutex> lock(conn->txMu);
        if (conn->closed.load(std::memory_order_acquire))
            return;
        // A reader that never drains its socket cannot buffer the
        // server into the ground: cap the outbox and cut the
        // connection past it (the write timeout would get it anyway;
        // this bounds memory in the meantime).
        if (conn->tx.size() >
            static_cast<size_t>(opts_.maxPayload) * 2 + (64u << 10)) {
            conn->closed.store(true, std::memory_order_release);
            return;
        }
        conn->tx.append(frame);
    }
    wakeIo();
}

void
Server::sendError(const std::shared_ptr<Conn> &conn, uint64_t id,
                  ErrCode code, const std::string &message)
{
    sendReply(conn, MsgType::Error, id,
              ErrorReply{code, message}.encode());
}

// ---------------------------------------------------------------- workers

bool
Server::popBatch(std::vector<Request> &batch)
{
    batch.clear();
    std::unique_lock<std::mutex> lock(queueMu_);
    queueCv_.wait(lock, [&] {
        return workersExit_.load(std::memory_order_acquire) ||
            (!workersPaused_.load(std::memory_order_acquire) &&
             !queue_.empty());
    });
    if (queue_.empty())
        return !workersExit_.load(std::memory_order_acquire);

    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
    if (batch[0].frame.type != MsgType::PredictPoints)
        return true;

    // Micro-batching: coalesce consecutive PredictPoints requests up
    // to maxBatchPoints, optionally waiting batchWindowUs for more.
    size_t points = peekPointCount(batch[0].frame.payload);
    const auto deadline = std::chrono::steady_clock::now() +
        std::chrono::microseconds(opts_.batchWindowUs);
    for (;;) {
        while (!queue_.empty() &&
               queue_.front().frame.type == MsgType::PredictPoints &&
               points < opts_.maxBatchPoints) {
            points += peekPointCount(queue_.front().frame.payload);
            batch.push_back(std::move(queue_.front()));
            queue_.pop_front();
        }
        if (opts_.batchWindowUs <= 0 || points >= opts_.maxBatchPoints ||
            workersExit_.load(std::memory_order_acquire))
            break;
        if (queueCv_.wait_until(lock, deadline) ==
            std::cv_status::timeout)
            break;
        if (!queue_.empty() &&
            queue_.front().frame.type != MsgType::PredictPoints)
            break;
    }
    return true;
}

void
Server::workerLoop()
{
    std::vector<Request> batch;
    while (popBatch(batch)) {
        if (batch.empty())
            continue;
        // No handler exception may escape the worker thread: an
        // escaped throw would std::terminate the whole server off one
        // hostile frame. Decoders are designed not to throw, but a
        // resize/alloc failure still must die as a structured error.
        try {
            if (batch[0].frame.type == MsgType::PredictPoints)
                handlePredictPoints(batch);
            else
                handleOne(batch[0]);
        } catch (const std::exception &e) {
            for (auto &req : batch)
                sendError(req.conn, req.frame.id, ErrCode::Internal,
                          std::string("request failed: ") + e.what());
        }
        for (auto &req : batch)
            req.conn->inflight.fetch_sub(1);
        wakeIo();
        batch.clear();
    }
}

void
Server::handlePredictPoints(std::vector<Request> &group)
{
    obs::TraceScope scope("serve-predict-batch",
                          ServeMetrics::get().batchWallNs);
    const auto state = model();
    auto &registry = obs::MetricsRegistry::global();

    // Decode every rider; a malformed member only fails itself.
    struct Decoded
    {
        const Request *req;
        PredictPointsRequest points;
    };
    std::vector<Decoded> valid;
    valid.reserve(group.size());
    for (const auto &req : group) {
        PredictPointsRequest p;
        if (!PredictPointsRequest::decode(req.frame.payload, p)) {
            sendError(req.conn, req.frame.id, ErrCode::BadRequest,
                      "malformed PredictPoints payload");
            continue;
        }
        if (!state || !state->ensemble) {
            sendError(req.conn, req.frame.id, ErrCode::NoModel,
                      "no model loaded");
            continue;
        }
        if (p.width !=
            static_cast<uint32_t>(state->ensemble->netMeta().inputs)) {
            sendError(req.conn, req.frame.id, ErrCode::BadIndex,
                      "feature width does not match the model");
            continue;
        }
        valid.push_back(Decoded{&req, std::move(p)});
    }
    if (valid.empty())
        return;

    // One contiguous predictBatch over every rider's points: the
    // coalesced call is bit-identical per point to individual calls
    // (blocked kernels, ann.hh), so batching never changes answers.
    size_t total = 0;
    for (const auto &d : valid)
        total += d.points.points();
    const size_t width = valid[0].points.width;
    std::vector<double> x;
    x.reserve(total * width);
    for (const auto &d : valid)
        x.insert(x.end(), d.points.x.begin(), d.points.x.end());
    std::vector<double> y(total);
    state->ensemble->predictBatch(x.data(), total, y.data());

    // Count before replying: a client that has its reply in hand may
    // immediately ask for Stats, and the counters must already cover
    // every answered prediction (the reconciliation tests rely on it).
    counters_.predictions.fetch_add(total);
    registry.add(ServeMetrics::get().predictions, total);
    registry.observe(ServeMetrics::get().batchPoints, total);
    if (valid.size() > 1) {
        counters_.batchedRequests.fetch_add(valid.size() - 1);
        registry.add(ServeMetrics::get().batched, valid.size() - 1);
    }

    size_t off = 0;
    for (const auto &d : valid) {
        PredictionsReply reply;
        reply.y.assign(y.begin() + static_cast<ptrdiff_t>(off),
                       y.begin() +
                           static_cast<ptrdiff_t>(off + d.points.points()));
        off += d.points.points();
        sendReply(d.req->conn, MsgType::Predictions, d.req->frame.id,
                  reply.encode());
    }
}

void
Server::handleOne(const Request &req)
{
    obs::TraceScope scope("serve-request",
                          ServeMetrics::get().requestWallNs);
    switch (req.frame.type) {
      case MsgType::PredictRange: {
        PredictRangeRequest range;
        if (!PredictRangeRequest::decode(req.frame.payload, range)) {
            sendError(req.conn, req.frame.id, ErrCode::BadRequest,
                      "malformed PredictRange payload");
            return;
        }
        const auto state = model();
        if (!state || !state->ensemble) {
            sendError(req.conn, req.frame.id, ErrCode::NoModel,
                      "no model loaded");
            return;
        }
        if (!state->space) {
            sendError(req.conn, req.frame.id, ErrCode::BadRequest,
                      "no design space attached (load with a study)");
            return;
        }
        const uint64_t size = state->space->size();
        if (range.first > size || range.count > size - range.first) {
            sendError(req.conn, req.frame.id, ErrCode::BadIndex,
                      "index range outside the design space");
            return;
        }
        if (range.count > (opts_.maxPayload - 8) / 8) {
            sendError(req.conn, req.frame.id, ErrCode::BadIndex,
                      "range reply would exceed the frame cap");
            return;
        }
        std::vector<uint64_t> indices(range.count);
        for (uint64_t i = 0; i < range.count; ++i)
            indices[i] = range.first + i;
        PredictionsReply reply;
        reply.y = state->ensemble->predictIndices(*state->space, indices);
        counters_.predictions.fetch_add(reply.y.size());
        obs::MetricsRegistry::global().add(
            ServeMetrics::get().predictions, reply.y.size());
        sendReply(req.conn, MsgType::Predictions, req.frame.id,
                  reply.encode());
        return;
      }
      case MsgType::ModelInfo:
        sendReply(req.conn, MsgType::ModelInfoReply, req.frame.id,
                  buildModelInfo());
        return;
      case MsgType::LoadModel:
        handleLoadModel(req);
        return;
      case MsgType::SimulateBatch:
        handleSimulateBatch(req);
        return;
      default:
        sendError(req.conn, req.frame.id, ErrCode::BadRequest,
                  "unknown request type");
        return;
    }
}

void
Server::handleSimulateBatch(const Request &req)
{
    SimulateBatchRequest sim;
    if (!SimulateBatchRequest::decode(req.frame.payload, sim)) {
        sendError(req.conn, req.frame.id, ErrCode::BadRequest,
                  "malformed SimulateBatch payload");
        return;
    }
    std::shared_ptr<const SimulateHandler> handler;
    {
        std::lock_guard<std::mutex> lock(modelMu_);
        handler = simulateHandler_;
    }
    if (!handler || !*handler) {
        sendError(req.conn, req.frame.id, ErrCode::BadRequest,
                  "this server does not simulate (no handler)");
        return;
    }
    SimulateBatchReply reply;
    std::string error;
    switch ((*handler)(sim, reply, error)) {
      case SimulateVerdict::Reply:
        sendReply(req.conn, MsgType::SimulateBatchReply, req.frame.id,
                  reply.encode());
        return;
      case SimulateVerdict::BadRequest:
        sendError(req.conn, req.frame.id, ErrCode::BadRequest, error);
        return;
      case SimulateVerdict::Crash:
        // In-process crash emulation: mute the connection (the client
        // sees a timeout, then EOF at close) and take the whole server
        // down so reconnects are refused — indistinguishable from a
        // SIGKILLed worker daemon to the dispatcher.
        req.conn->closed.store(true, std::memory_order_release);
        requestStop();
        return;
    }
}

std::string
Server::buildModelInfo() const
{
    ModelInfoReply info;
    const auto state = model();
    if (state && state->ensemble) {
        const auto meta = state->ensemble->netMeta();
        info.members = static_cast<uint32_t>(state->ensemble->members());
        info.inputs = static_cast<uint32_t>(meta.inputs);
        info.outputs = static_cast<uint32_t>(meta.outputs);
        info.estMeanPct = state->ensemble->estimate().meanPct;
        info.estSdPct = state->ensemble->estimate().sdPct;
        info.degraded = state->ensemble->degraded();
        info.spaceSize = state->space ? state->space->size() : 0;
        info.study = state->study;
        info.app = state->app;
    }
    return info.encode();
}

void
Server::handleLoadModel(const Request &req)
{
    LoadModelRequest load;
    if (!LoadModelRequest::decode(req.frame.payload, load)) {
        sendError(req.conn, req.frame.id, ErrCode::BadRequest,
                  "malformed LoadModel payload");
        return;
    }
    if (load.path.empty() && !load.train) {
        sendError(req.conn, req.frame.id, ErrCode::BadRequest,
                  "LoadModel needs a path or train=1");
        return;
    }
    if (load.hasStudy && load.study > 1) {
        sendError(req.conn, req.frame.id, ErrCode::BadRequest,
                  "unknown study kind");
        return;
    }
    if (load.train && (!load.hasStudy || load.app.empty())) {
        sendError(req.conn, req.frame.id, ErrCode::BadRequest,
                  "training needs a study and an app");
        return;
    }

    try {
        ModelState state;
        if (load.hasStudy) {
            const auto kind = static_cast<study::StudyKind>(load.study);
            state.space = std::make_shared<const ml::DesignSpace>(
                study::spaceFor(kind));
            state.study = study::studyName(kind);
            state.app = load.app;
        }
        if (!load.path.empty()) {
            state.ensemble = std::make_shared<const ml::Ensemble>(
                ml::loadEnsemble(load.path));
        } else {
            // Train on the spot. Worker threads sit inside the serve
            // pool's parallel region, so the explorer's inner
            // parallelism degrades to serial — keep wire-triggered
            // budgets small; heavy training belongs in dse_serve's
            // startup path or dse_explore --save-model.
            const auto kind = static_cast<study::StudyKind>(load.study);
            study::StudyContext ctx(kind, load.app);
            ml::ExplorerOptions eopts;
            eopts.batchSize = std::max<size_t>(1, load.maxSims);
            eopts.maxSimulations = load.maxSims;
            eopts.targetMeanPct = 0.0;  // one full batch, then stop
            eopts.train.maxEpochs = static_cast<int>(load.maxEpochs);
            ml::Explorer explorer(
                ctx.space(),
                [&](uint64_t i) { return ctx.simulateIpc(i); }, eopts);
            explorer.step();
            state.ensemble = std::make_shared<const ml::Ensemble>(
                explorer.ensemble());
        }
        setModel(std::move(state));
        sendReply(req.conn, MsgType::ModelLoaded, req.frame.id,
                  buildModelInfo());
    } catch (const std::exception &e) {
        sendError(req.conn, req.frame.id, ErrCode::Internal,
                  std::string("load failed: ") + e.what());
    }
}

} // namespace serve
} // namespace dse
