#include "serve/client.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "util/env.hh"

namespace dse {
namespace serve {

namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void
transportError(const std::string &what)
{
    throw ServeError(ErrCode::Internal, what);
}

[[noreturn]] void
timeoutError(const std::string &what)
{
    throw ServeError(ErrCode::Timeout, what);
}

[[noreturn]] void
disconnectedError(const std::string &what)
{
    throw ServeError(ErrCode::Disconnected, what);
}

/** Milliseconds left before @p deadline, clamped to >= 0. A poll()
 *  with the result can therefore never block unboundedly. */
int
remainingMs(Clock::time_point deadline)
{
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (left.count() <= 0)
        return 0;
    if (left.count() > 3600000)
        return 3600000;
    return static_cast<int>(left.count());
}

} // namespace

int
Client::defaultTimeoutMs()
{
    const long long ms = envInt("DSE_SERVE_TIMEOUT_MS", 30000);
    return ms > 0 ? static_cast<int>(ms) : 30000;
}

Client::Client() : timeoutMs_(defaultTimeoutMs())
{}

Client::~Client()
{
    close();
}

Client::Client(Client &&other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      timeoutMs_(other.timeoutMs_),
      nextId_(other.nextId_),
      rx_(std::move(other.rx_))
{}

Client &
Client::operator=(Client &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
        timeoutMs_ = other.timeoutMs_;
        nextId_ = other.nextId_;
        rx_ = std::move(other.rx_);
    }
    return *this;
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    rx_.clear();
}

void
Client::connect(const std::string &host, uint16_t port, int timeout_ms)
{
    close();
    if (timeout_ms <= 0)
        timeout_ms = timeoutMs_;

    sockaddr_in sin{};
    sin.sin_family = AF_INET;
    sin.sin_port = htons(port);
    std::string addr = host;
    if (addr == "localhost")
        addr = "127.0.0.1";
    if (inet_pton(AF_INET, addr.c_str(), &sin.sin_addr) != 1)
        transportError("bad address '" + host + "'");

    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        transportError("socket() failed");

    // Nonblocking connect with a poll deadline so an unreachable
    // server fails fast.
    const int flags = fcntl(fd_, F_GETFL, 0);
    fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd_, reinterpret_cast<sockaddr *>(&sin),
                       sizeof(sin));
    if (rc != 0 && errno == EINPROGRESS) {
        pollfd pfd{fd_, POLLOUT, 0};
        rc = poll(&pfd, 1, timeout_ms);
        if (rc <= 0) {
            close();
            timeoutError("connect timeout to " + host + ":" +
                         std::to_string(port));
        }
        int err = 0;
        socklen_t len = sizeof(err);
        getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len);
        if (err != 0) {
            close();
            if (err == ECONNREFUSED || err == ECONNRESET ||
                err == EPIPE || err == EHOSTUNREACH ||
                err == ENETUNREACH) {
                disconnectedError(std::string("connect failed: ") +
                                  std::strerror(err));
            }
            transportError(std::string("connect failed: ") +
                           std::strerror(err));
        }
    } else if (rc != 0) {
        const int err = errno;
        close();
        if (err == ECONNREFUSED || err == ECONNRESET ||
            err == EHOSTUNREACH || err == ENETUNREACH) {
            disconnectedError(std::string("connect failed: ") +
                              std::strerror(err));
        }
        transportError(std::string("connect failed: ") +
                       std::strerror(err));
    }
    const int one = 1;
    setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void
Client::sendRaw(const void *data, size_t n)
{
    if (fd_ < 0)
        disconnectedError("not connected");
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(timeoutMs_);
    const char *p = static_cast<const char *>(data);
    size_t off = 0;
    while (off < n) {
        // MSG_NOSIGNAL: a dropped peer must raise EPIPE through a
        // structured error, not SIGPIPE the host process.
        const ssize_t w = send(fd_, p + off, n - off, MSG_NOSIGNAL);
        if (w > 0) {
            off += static_cast<size_t>(w);
            continue;
        }
        if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            // Hard deadline across the whole send, not per poll: a
            // peer that drains one byte per timeout window cannot
            // stretch the operation unboundedly.
            const int left = remainingMs(deadline);
            pollfd pfd{fd_, POLLOUT, 0};
            if (left == 0 || poll(&pfd, 1, left) == 0)
                timeoutError("send timeout");
            continue;
        }
        if (w < 0 && errno == EINTR)
            continue;
        if (w < 0 && (errno == EPIPE || errno == ECONNRESET))
            disconnectedError(std::string("send failed: ") +
                              std::strerror(errno));
        transportError(std::string("send failed: ") +
                       std::strerror(errno));
    }
}

uint64_t
Client::sendFrame(MsgType type, std::string_view payload)
{
    const uint64_t id = nextId_++;
    const std::string frame = encodeFrame(type, id, payload);
    sendRaw(frame.data(), frame.size());
    return id;
}

std::optional<Frame>
Client::recvFrame()
{
    if (fd_ < 0)
        disconnectedError("not connected");
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(timeoutMs_);
    char buf[65536];
    for (;;) {
        Frame frame;
        size_t consumed = 0;
        const DecodeStatus st = decodeFrame(
            rx_.data(), rx_.size(), kDefaultMaxPayload, frame, consumed);
        if (st == DecodeStatus::Frame) {
            rx_.erase(0, consumed);
            return frame;
        }
        if (st != DecodeStatus::NeedMore)
            transportError("corrupt frame from server");

        // One deadline across the whole frame: a server trickling a
        // byte per poll window cannot hold the client past timeoutMs_.
        const int left = remainingMs(deadline);
        pollfd pfd{fd_, POLLIN, 0};
        const int rc = left == 0 ? 0 : poll(&pfd, 1, left);
        if (rc == 0)
            timeoutError("receive timeout");
        if (rc < 0 && errno != EINTR)
            transportError("poll failed");
        const ssize_t n = read(fd_, buf, sizeof(buf));
        if (n == 0)
            return std::nullopt;  // orderly EOF
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK ||
                errno == EINTR)
                continue;
            if (errno == ECONNRESET || errno == EPIPE)
                disconnectedError(std::string("recv failed: ") +
                                  std::strerror(errno));
            transportError(std::string("recv failed: ") +
                           std::strerror(errno));
        }
        rx_.append(buf, static_cast<size_t>(n));
    }
}

Frame
Client::expectReply(uint64_t id, MsgType want)
{
    for (;;) {
        auto frame = recvFrame();
        if (!frame)
            disconnectedError("server closed the connection");
        if (frame->id != id && frame->id != 0)
            continue;  // stale reply from an abandoned request
        if (frame->type == MsgType::Error) {
            ErrorReply err;
            if (!ErrorReply::decode(frame->payload, err))
                transportError("undecodable error reply");
            throw ServeError(err.code, err.message);
        }
        if (frame->type != want)
            transportError("unexpected reply type");
        return *std::move(frame);
    }
}

void
Client::ping()
{
    const uint64_t id = sendFrame(MsgType::Ping, "dse");
    const Frame reply = expectReply(id, MsgType::Pong);
    if (reply.payload != "dse")
        transportError("ping payload not echoed");
}

ModelInfoReply
Client::loadModel(const LoadModelRequest &req)
{
    const uint64_t id = sendFrame(MsgType::LoadModel, req.encode());
    const Frame reply = expectReply(id, MsgType::ModelLoaded);
    ModelInfoReply info;
    if (!ModelInfoReply::decode(reply.payload, info))
        transportError("undecodable ModelLoaded reply");
    return info;
}

std::vector<double>
Client::predictPoints(const double *x, size_t n, size_t width)
{
    PredictPointsRequest req;
    req.width = static_cast<uint32_t>(width);
    req.x.assign(x, x + n * width);
    const uint64_t id =
        sendFrame(MsgType::PredictPoints, req.encode());
    const Frame reply = expectReply(id, MsgType::Predictions);
    PredictionsReply pred;
    if (!PredictionsReply::decode(reply.payload, pred) ||
        pred.y.size() != n)
        transportError("undecodable Predictions reply");
    return std::move(pred.y);
}

std::vector<double>
Client::predictRange(uint64_t first, uint64_t count)
{
    const uint64_t id = sendFrame(
        MsgType::PredictRange, PredictRangeRequest{first, count}.encode());
    const Frame reply = expectReply(id, MsgType::Predictions);
    PredictionsReply pred;
    if (!PredictionsReply::decode(reply.payload, pred))
        transportError("undecodable Predictions reply");
    return std::move(pred.y);
}

ModelInfoReply
Client::modelInfo()
{
    const uint64_t id = sendFrame(MsgType::ModelInfo, "");
    const Frame reply = expectReply(id, MsgType::ModelInfoReply);
    ModelInfoReply info;
    if (!ModelInfoReply::decode(reply.payload, info))
        transportError("undecodable ModelInfo reply");
    return info;
}

SimulateBatchReply
Client::simulateBatch(const SimulateBatchRequest &req)
{
    const uint64_t id = sendFrame(MsgType::SimulateBatch, req.encode());
    const Frame reply = expectReply(id, MsgType::SimulateBatchReply);
    SimulateBatchReply out;
    if (!SimulateBatchReply::decode(reply.payload, out) ||
        out.points() != req.indices.size())
        transportError("undecodable SimulateBatchReply");
    return out;
}

StatsReply
Client::stats()
{
    const uint64_t id = sendFrame(MsgType::Stats, "");
    const Frame reply = expectReply(id, MsgType::StatsReply);
    StatsReply s;
    if (!StatsReply::decode(reply.payload, s))
        transportError("undecodable Stats reply");
    return s;
}

} // namespace serve
} // namespace dse
