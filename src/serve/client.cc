#include "serve/client.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace dse {
namespace serve {

namespace {

[[noreturn]] void
transportError(const std::string &what)
{
    throw ServeError(ErrCode::Internal, what);
}

} // namespace

Client::~Client()
{
    close();
}

Client::Client(Client &&other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      timeoutMs_(other.timeoutMs_),
      nextId_(other.nextId_),
      rx_(std::move(other.rx_))
{}

Client &
Client::operator=(Client &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
        timeoutMs_ = other.timeoutMs_;
        nextId_ = other.nextId_;
        rx_ = std::move(other.rx_);
    }
    return *this;
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    rx_.clear();
}

void
Client::connect(const std::string &host, uint16_t port, int timeout_ms)
{
    close();

    sockaddr_in sin{};
    sin.sin_family = AF_INET;
    sin.sin_port = htons(port);
    std::string addr = host;
    if (addr == "localhost")
        addr = "127.0.0.1";
    if (inet_pton(AF_INET, addr.c_str(), &sin.sin_addr) != 1)
        transportError("bad address '" + host + "'");

    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        transportError("socket() failed");

    // Nonblocking connect with a poll deadline so an unreachable
    // server fails fast.
    const int flags = fcntl(fd_, F_GETFL, 0);
    fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd_, reinterpret_cast<sockaddr *>(&sin),
                       sizeof(sin));
    if (rc != 0 && errno == EINPROGRESS) {
        pollfd pfd{fd_, POLLOUT, 0};
        rc = poll(&pfd, 1, timeout_ms);
        if (rc <= 0) {
            close();
            transportError("connect timeout to " + host + ":" +
                           std::to_string(port));
        }
        int err = 0;
        socklen_t len = sizeof(err);
        getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len);
        if (err != 0) {
            close();
            transportError(std::string("connect failed: ") +
                           std::strerror(err));
        }
    } else if (rc != 0) {
        const std::string err = std::strerror(errno);
        close();
        transportError("connect failed: " + err);
    }
    const int one = 1;
    setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void
Client::sendRaw(const void *data, size_t n)
{
    if (fd_ < 0)
        transportError("not connected");
    const char *p = static_cast<const char *>(data);
    size_t off = 0;
    while (off < n) {
        // MSG_NOSIGNAL: a dropped peer must raise EPIPE through
        // transportError, not SIGPIPE the host process.
        const ssize_t w = send(fd_, p + off, n - off, MSG_NOSIGNAL);
        if (w > 0) {
            off += static_cast<size_t>(w);
            continue;
        }
        if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            pollfd pfd{fd_, POLLOUT, 0};
            if (poll(&pfd, 1, timeoutMs_) <= 0)
                transportError("send timeout");
            continue;
        }
        if (w < 0 && errno == EINTR)
            continue;
        transportError(std::string("send failed: ") +
                       std::strerror(errno));
    }
}

uint64_t
Client::sendFrame(MsgType type, std::string_view payload)
{
    const uint64_t id = nextId_++;
    const std::string frame = encodeFrame(type, id, payload);
    sendRaw(frame.data(), frame.size());
    return id;
}

std::optional<Frame>
Client::recvFrame()
{
    if (fd_ < 0)
        transportError("not connected");
    char buf[65536];
    for (;;) {
        Frame frame;
        size_t consumed = 0;
        const DecodeStatus st = decodeFrame(
            rx_.data(), rx_.size(), kDefaultMaxPayload, frame, consumed);
        if (st == DecodeStatus::Frame) {
            rx_.erase(0, consumed);
            return frame;
        }
        if (st != DecodeStatus::NeedMore)
            transportError("corrupt frame from server");

        pollfd pfd{fd_, POLLIN, 0};
        const int rc = poll(&pfd, 1, timeoutMs_);
        if (rc == 0)
            transportError("receive timeout");
        if (rc < 0 && errno != EINTR)
            transportError("poll failed");
        const ssize_t n = read(fd_, buf, sizeof(buf));
        if (n == 0)
            return std::nullopt;  // orderly EOF
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK ||
                errno == EINTR)
                continue;
            transportError(std::string("recv failed: ") +
                           std::strerror(errno));
        }
        rx_.append(buf, static_cast<size_t>(n));
    }
}

Frame
Client::expectReply(uint64_t id, MsgType want)
{
    for (;;) {
        auto frame = recvFrame();
        if (!frame)
            transportError("server closed the connection");
        if (frame->id != id && frame->id != 0)
            continue;  // stale reply from an abandoned request
        if (frame->type == MsgType::Error) {
            ErrorReply err;
            if (!ErrorReply::decode(frame->payload, err))
                transportError("undecodable error reply");
            throw ServeError(err.code, err.message);
        }
        if (frame->type != want)
            transportError("unexpected reply type");
        return *std::move(frame);
    }
}

void
Client::ping()
{
    const uint64_t id = sendFrame(MsgType::Ping, "dse");
    const Frame reply = expectReply(id, MsgType::Pong);
    if (reply.payload != "dse")
        transportError("ping payload not echoed");
}

ModelInfoReply
Client::loadModel(const LoadModelRequest &req)
{
    const uint64_t id = sendFrame(MsgType::LoadModel, req.encode());
    const Frame reply = expectReply(id, MsgType::ModelLoaded);
    ModelInfoReply info;
    if (!ModelInfoReply::decode(reply.payload, info))
        transportError("undecodable ModelLoaded reply");
    return info;
}

std::vector<double>
Client::predictPoints(const double *x, size_t n, size_t width)
{
    PredictPointsRequest req;
    req.width = static_cast<uint32_t>(width);
    req.x.assign(x, x + n * width);
    const uint64_t id =
        sendFrame(MsgType::PredictPoints, req.encode());
    const Frame reply = expectReply(id, MsgType::Predictions);
    PredictionsReply pred;
    if (!PredictionsReply::decode(reply.payload, pred) ||
        pred.y.size() != n)
        transportError("undecodable Predictions reply");
    return std::move(pred.y);
}

std::vector<double>
Client::predictRange(uint64_t first, uint64_t count)
{
    const uint64_t id = sendFrame(
        MsgType::PredictRange, PredictRangeRequest{first, count}.encode());
    const Frame reply = expectReply(id, MsgType::Predictions);
    PredictionsReply pred;
    if (!PredictionsReply::decode(reply.payload, pred))
        transportError("undecodable Predictions reply");
    return std::move(pred.y);
}

ModelInfoReply
Client::modelInfo()
{
    const uint64_t id = sendFrame(MsgType::ModelInfo, "");
    const Frame reply = expectReply(id, MsgType::ModelInfoReply);
    ModelInfoReply info;
    if (!ModelInfoReply::decode(reply.payload, info))
        transportError("undecodable ModelInfo reply");
    return info;
}

StatsReply
Client::stats()
{
    const uint64_t id = sendFrame(MsgType::Stats, "");
    const Frame reply = expectReply(id, MsgType::StatsReply);
    StatsReply s;
    if (!StatsReply::decode(reply.payload, s))
        transportError("undecodable Stats reply");
    return s;
}

} // namespace serve
} // namespace dse
