/**
 * @file
 * dse::serve wire protocol — length-prefixed, versioned, checksummed
 * binary frames for the prediction service.
 *
 * Every message is one frame: a fixed 40-byte header followed by a
 * variable payload. All integers are little-endian (the only byte
 * order this library targets); doubles travel as their IEEE-754 bit
 * pattern in a u64, so a prediction served over the wire is the exact
 * double the server computed — bit-identical to a local
 * Ensemble::predictBatch call.
 *
 * Header layout (kHeaderSize = 40 bytes):
 *
 *     off  size  field
 *       0     4  magic            "DSRV"
 *       4     2  version          kProtocolVersion
 *       6     2  type             MsgType
 *       8     8  id               request correlation id (echoed in
 *                                 the reply, so pipelined clients can
 *                                 match replies to requests)
 *      16     4  payloadLen       bytes following the header
 *      20     4  reserved         must be 0
 *      24     8  payloadChecksum  FNV-1a 64 over the payload bytes
 *      32     8  headerChecksum   FNV-1a 64 over bytes [0, 32)
 *
 * The two checksums split the failure modes: a bad *header* checksum
 * (or magic/version mismatch) means the stream itself cannot be
 * trusted — the peer gets one structured Error frame and a clean
 * disconnect; a bad *payload* checksum under an intact header means
 * exactly one frame is corrupt — it is rejected with an Error reply
 * and the connection keeps serving, because the validated payloadLen
 * keeps the stream in sync. A declared length above the negotiated
 * cap is rejected before any payload is buffered, so an adversarial
 * header can never balloon server memory.
 */

#ifndef DSE_SERVE_PROTOCOL_HH
#define DSE_SERVE_PROTOCOL_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/config.hh"

namespace dse {
namespace serve {

/** Protocol version carried in every frame header. */
constexpr uint16_t kProtocolVersion = 1;

/** Frame magic, "DSRV" as bytes on the wire. */
constexpr uint32_t kMagic = 0x56525344u;

/** Fixed header size in bytes. */
constexpr size_t kHeaderSize = 40;

/** Default cap on payload bytes per frame (16 MiB). */
constexpr uint32_t kDefaultMaxPayload = 16u << 20;

/** Message types. Requests are < 16, replies >= 16. */
enum class MsgType : uint16_t {
    // requests
    Ping = 1,
    LoadModel = 2,
    PredictPoints = 3,
    PredictRange = 4,
    ModelInfo = 5,
    Stats = 6,
    SimulateBatch = 7,
    // replies
    Pong = 16,
    ModelLoaded = 17,
    Predictions = 18,
    ModelInfoReply = 19,
    StatsReply = 20,
    SimulateBatchReply = 21,
    Error = 31,
};

/** True for request-kind message types (client -> server). */
inline bool
isRequest(MsgType t)
{
    return static_cast<uint16_t>(t) < 16;
}

/** Structured error codes carried by Error replies. */
enum class ErrCode : uint16_t {
    None = 0,
    BadFrame = 1,       ///< header corrupt/unrecognized; conn closes
    BadChecksum = 2,    ///< payload checksum mismatch; conn survives
    FrameTooLarge = 3,  ///< declared length over the cap; conn closes
    BadRequest = 4,     ///< malformed/unknown request payload
    NoModel = 5,        ///< no model loaded yet
    BadIndex = 6,       ///< point index/width outside the model/space
    Overloaded = 7,     ///< request queue full — back off and retry
    ShuttingDown = 8,   ///< server is draining
    Internal = 9,       ///< server-side failure (message has details)
    // Client-side transport outcomes (never sent on the wire; raised
    // by serve::Client so callers can tell a deadline expiry from a
    // dead peer and react differently — retry elsewhere vs. reconnect).
    Timeout = 10,       ///< operation deadline expired
    Disconnected = 11,  ///< peer closed/reset the connection
};

/** Human-readable name of an error code (stable, for logs/tests). */
const char *errCodeName(ErrCode code);

/** FNV-1a 64 over a byte range (the project-wide checksum). */
uint64_t fnv1a64(const void *data, size_t n);

/**
 * Bounds-checked little-endian payload serializer. Appending never
 * fails; the buffer grows as needed.
 */
class WireWriter
{
  public:
    void u8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
    void u16(uint16_t v);
    void u32(uint32_t v);
    void u64(uint64_t v);
    void f64(double v);
    /** u32 length prefix + raw bytes. */
    void str(std::string_view s);
    /** Raw bytes, no prefix (pre-counted arrays). */
    void raw(const void *data, size_t n);

    const std::string &bytes() const { return buf_; }
    std::string take() { return std::move(buf_); }

  private:
    std::string buf_;
};

/**
 * Bounds-checked little-endian payload parser. A read past the end
 * (or a length prefix pointing outside the buffer) latches the fail
 * flag and returns zeros/empties; callers check ok() once at the end
 * instead of guarding every field — hostile payloads can never read
 * out of bounds or throw from the parse path.
 */
class WireReader
{
  public:
    WireReader(const void *data, size_t n)
        : p_(static_cast<const char *>(data)), n_(n)
    {}
    explicit WireReader(std::string_view s) : WireReader(s.data(), s.size()) {}

    uint8_t u8();
    uint16_t u16();
    uint32_t u32();
    uint64_t u64();
    double f64();
    std::string str();
    /** Read n raw bytes into out; out is cleared on bounds failure. */
    void raw(void *out, size_t n);

    /** True iff no read ever ran past the end. */
    bool ok() const { return ok_; }
    /** True iff the whole buffer was consumed (and ok()). */
    bool atEnd() const { return ok_ && off_ == n_; }
    size_t remaining() const { return ok_ ? n_ - off_ : 0; }

  private:
    bool take(size_t n, const char **out);

    const char *p_;
    size_t n_;
    size_t off_ = 0;
    bool ok_ = true;
};

/** A fully decoded frame. */
struct Frame
{
    MsgType type = MsgType::Ping;
    uint64_t id = 0;
    std::string payload;
};

/** Outcome of an incremental decode attempt. */
enum class DecodeStatus {
    NeedMore,    ///< not enough bytes buffered yet; consumed == 0
    Frame,       ///< one intact frame decoded; consumed advances
    BadHeader,   ///< magic/version/reserved/header-checksum violation
    TooLarge,    ///< declared payload length over the cap
    BadPayload,  ///< header intact, payload checksum mismatch;
                 ///< consumed skips exactly this frame
};

/**
 * Try to decode one frame from the front of a byte buffer.
 *
 * @param data   buffered bytes from the peer
 * @param len    bytes available
 * @param max_payload cap on the declared payload length
 * @param out    receives the frame on Frame (and the header fields,
 *               for error replies, on BadPayload)
 * @param consumed bytes to drop from the front of the buffer
 *               (0 on NeedMore/BadHeader/TooLarge)
 * @return decode status; BadHeader/TooLarge poison the stream — the
 *         caller should error out and close
 */
DecodeStatus decodeFrame(const char *data, size_t len, size_t max_payload,
                         Frame &out, size_t &consumed);

/** Serialize a complete frame (header + payload). */
std::string encodeFrame(MsgType type, uint64_t id,
                        std::string_view payload);

/// @name Typed payloads.
/// @{

/**
 * LoadModel request: point the server at a new model. Either a file
 * path produced by saveEnsemble, or a (study, app) pair the server
 * trains on the spot (bounded by maxSims/maxEpochs). Naming a study
 * also attaches that study's DesignSpace, which is what PredictRange
 * serves from.
 */
struct LoadModelRequest
{
    std::string path;     ///< ensemble file ("" = none)
    bool hasStudy = false;
    uint8_t study = 0;    ///< study::StudyKind as an integer
    std::string app;      ///< benchmark name ("" = none)
    bool train = false;   ///< train via the explorer (needs study+app)
    uint32_t maxSims = 200;
    uint32_t maxEpochs = 2000;

    std::string encode() const;
    static bool decode(std::string_view payload, LoadModelRequest &out);
};

/** PredictPoints request: n encoded design points, row-major. */
struct PredictPointsRequest
{
    uint32_t width = 0;
    std::vector<double> x;  ///< [n x width]

    size_t points() const { return width ? x.size() / width : 0; }
    std::string encode() const;
    static bool decode(std::string_view payload, PredictPointsRequest &out);
};

/** PredictRange request: [first, first + count) flat space indices. */
struct PredictRangeRequest
{
    uint64_t first = 0;
    uint64_t count = 0;

    std::string encode() const;
    static bool decode(std::string_view payload, PredictRangeRequest &out);
};

/** Predictions reply: one decoded double per requested point. */
struct PredictionsReply
{
    std::vector<double> y;

    std::string encode() const;
    static bool decode(std::string_view payload, PredictionsReply &out);
};

/** ModelInfo / ModelLoaded reply. */
struct ModelInfoReply
{
    uint32_t members = 0;
    uint32_t inputs = 0;
    uint32_t outputs = 0;
    double estMeanPct = 0.0;
    double estSdPct = 0.0;
    bool degraded = false;
    uint64_t spaceSize = 0;  ///< 0 = no design space attached
    std::string study;       ///< "" = none
    std::string app;

    std::string encode() const;
    static bool decode(std::string_view payload, ModelInfoReply &out);
};

/** Stats reply: server counters at snapshot time. */
struct StatsReply
{
    uint64_t requests = 0;       ///< frames accepted for processing
    uint64_t predictions = 0;    ///< points predicted
    uint64_t batchedRequests = 0;  ///< requests coalesced into a
                                   ///< shared predictBatch beyond the
                                   ///< first of each group
    uint64_t overloaded = 0;     ///< requests refused queue-full
    uint64_t protocolErrors = 0; ///< corrupt/oversized/bad frames
    uint64_t bytesRx = 0;
    uint64_t bytesTx = 0;
    uint64_t connectionsAccepted = 0;
    uint64_t activeConnections = 0;
    uint64_t queueDepth = 0;

    std::string encode() const;
    static bool decode(std::string_view payload, StatsReply &out);
};

/**
 * SimulateBatch request: farm a batch of design-point simulations out
 * to a remote worker (dse::remote). The worker reconstructs the same
 * StudyContext identity — (study, app, trace length) — so simulation
 * is the same pure function on both sides, and results travel as raw
 * IEEE-754 bit patterns: a remotely simulated point is bit-identical
 * to a locally simulated one.
 */
struct SimulateBatchRequest
{
    uint8_t study = 0;      ///< study::StudyKind as an integer
    std::string app;        ///< benchmark name
    uint64_t traceLength = 0;  ///< 0 = library default
    bool simpoint = false;  ///< SimPoint estimates instead of full sims
    std::vector<uint64_t> indices;  ///< design-point indices

    std::string encode() const;
    static bool decode(std::string_view payload, SimulateBatchRequest &out);
};

/**
 * SimulateBatchReply: one result per requested index, in request
 * order. Full mode carries complete SimResult records (the same 15
 * fixed fields the journal persists) so the dispatcher can merge them
 * into the study memo cache exactly as if simulated locally; SimPoint
 * mode carries only the calibrated IPC estimate.
 */
struct SimulateBatchReply
{
    bool simpoint = false;
    std::vector<sim::SimResult> results;  ///< full mode (simpoint false)
    std::vector<double> ipc;              ///< simpoint mode

    size_t points() const
    {
        return simpoint ? ipc.size() : results.size();
    }
    std::string encode() const;
    static bool decode(std::string_view payload, SimulateBatchReply &out);
};

/** Error reply: structured code + human-readable detail. */
struct ErrorReply
{
    ErrCode code = ErrCode::None;
    std::string message;

    std::string encode() const;
    static bool decode(std::string_view payload, ErrorReply &out);
};

/// @}

} // namespace serve
} // namespace dse

#endif // DSE_SERVE_PROTOCOL_HH
