/**
 * @file
 * dse::serve::Client — a small blocking client for the prediction
 * service: one TCP connection, typed request/reply helpers over the
 * frame protocol, and poll-based timeouts so a dead server turns into
 * an error instead of a hang.
 *
 * The client is deliberately synchronous (tests, tools, and the load
 * generator each own as many Client instances as they want
 * concurrency); it is not thread-safe per instance.
 */

#ifndef DSE_SERVE_CLIENT_HH
#define DSE_SERVE_CLIENT_HH

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/protocol.hh"

namespace dse {
namespace serve {

/** A structured Error reply (or transport failure) raised by the
 *  typed helpers. Transport failures carry a structured code too:
 *  ErrCode::Timeout when an operation deadline expired,
 *  ErrCode::Disconnected when the peer closed or reset the
 *  connection, ErrCode::Internal for anything else. */
class ServeError : public std::runtime_error
{
  public:
    ServeError(ErrCode code, const std::string &message)
        : std::runtime_error(std::string(errCodeName(code)) + ": " +
                             message),
          code_(code)
    {}

    ErrCode code() const { return code_; }

  private:
    ErrCode code_;
};

class Client
{
  public:
    Client();
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;
    Client(Client &&other) noexcept;
    Client &operator=(Client &&other) noexcept;

    /**
     * Connect to host:port under a hard poll-based deadline.
     * @param timeout_ms connect deadline; <= 0 = the per-operation
     *        timeout (DSE_SERVE_TIMEOUT_MS / setTimeout)
     * @throws ServeError (Timeout/Disconnected/Internal) on failure
     */
    void connect(const std::string &host, uint16_t port,
                 int timeout_ms = 0);

    bool connected() const { return fd_ >= 0; }
    void close();

    /**
     * Per-operation deadline. Every typed helper — and every low-level
     * send/recv — completes or raises ServeError(Timeout) within this
     * budget; there is no code path that blocks indefinitely on a dead
     * peer. Defaults to DSE_SERVE_TIMEOUT_MS (30 s when unset); values
     * <= 0 clamp to 1 ms so a deadline always exists.
     */
    void setTimeout(int ms) { timeoutMs_ = ms > 0 ? ms : 1; }
    int timeout() const { return timeoutMs_; }

    /** The process-wide default deadline: DSE_SERVE_TIMEOUT_MS when
     *  set (> 0), else 30000 ms. */
    static int defaultTimeoutMs();

    /// @name Typed helpers. Each sends one request and blocks for its
    /// reply; an Error reply becomes a ServeError.
    /// @{

    /** Round-trip a Ping (payload echoed by the server). */
    void ping();

    /** Load/serve a model; returns the resulting model info. */
    ModelInfoReply loadModel(const LoadModelRequest &req);

    /** Predict encoded points; y is bit-identical to a local
     *  Ensemble::predictBatch over the same rows. */
    std::vector<double> predictPoints(const double *x, size_t n,
                                      size_t width);

    /** Predict [first, first+count) flat design-space indices. */
    std::vector<double> predictRange(uint64_t first, uint64_t count);

    ModelInfoReply modelInfo();
    StatsReply stats();

    /** Remotely simulate a batch of design points (dse::remote
     *  workers); results are bit-identical to local simulation. */
    SimulateBatchReply simulateBatch(const SimulateBatchRequest &req);

    /// @}

    /// @name Low-level access (fuzz tests, pipelining experiments).
    /// @{

    /** Send raw bytes as-is — deliberately allows invalid frames. */
    void sendRaw(const void *data, size_t n);

    /** Send one well-formed frame with the next correlation id. */
    uint64_t sendFrame(MsgType type, std::string_view payload);

    /**
     * Receive one frame under the operation deadline.
     * nullopt = orderly EOF (server closed).
     * @throws ServeError (Timeout) when the deadline expires,
     *         (Disconnected) on reset, (Internal) otherwise
     */
    std::optional<Frame> recvFrame();

    /// @}

  private:
    /** Wait for the reply to @p id, raising Error replies. */
    Frame expectReply(uint64_t id, MsgType want);

    int fd_ = -1;
    int timeoutMs_ = 30000;
    uint64_t nextId_ = 1;
    std::string rx_;
};

} // namespace serve
} // namespace dse

#endif // DSE_SERVE_CLIENT_HH
