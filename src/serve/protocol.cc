#include "serve/protocol.hh"

#include <bit>
#include <cstring>

namespace dse {
namespace serve {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

inline void
putLe(std::string &out, uint64_t v, size_t bytes)
{
    for (size_t i = 0; i < bytes; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline uint64_t
getLe(const char *p, size_t bytes)
{
    uint64_t v = 0;
    for (size_t i = 0; i < bytes; ++i)
        v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i]))
            << (8 * i);
    return v;
}

} // namespace

uint64_t
fnv1a64(const void *data, size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    uint64_t h = kFnvOffset;
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

const char *
errCodeName(ErrCode code)
{
    switch (code) {
      case ErrCode::None: return "none";
      case ErrCode::BadFrame: return "bad_frame";
      case ErrCode::BadChecksum: return "bad_checksum";
      case ErrCode::FrameTooLarge: return "frame_too_large";
      case ErrCode::BadRequest: return "bad_request";
      case ErrCode::NoModel: return "no_model";
      case ErrCode::BadIndex: return "bad_index";
      case ErrCode::Overloaded: return "overloaded";
      case ErrCode::ShuttingDown: return "shutting_down";
      case ErrCode::Internal: return "internal";
      case ErrCode::Timeout: return "timeout";
      case ErrCode::Disconnected: return "disconnected";
    }
    return "unknown";
}

// ---------------------------------------------------------------- writer

void
WireWriter::u16(uint16_t v)
{
    putLe(buf_, v, 2);
}

void
WireWriter::u32(uint32_t v)
{
    putLe(buf_, v, 4);
}

void
WireWriter::u64(uint64_t v)
{
    putLe(buf_, v, 8);
}

void
WireWriter::f64(double v)
{
    putLe(buf_, std::bit_cast<uint64_t>(v), 8);
}

void
WireWriter::str(std::string_view s)
{
    u32(static_cast<uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
}

void
WireWriter::raw(const void *data, size_t n)
{
    buf_.append(static_cast<const char *>(data), n);
}

// ---------------------------------------------------------------- reader

bool
WireReader::take(size_t n, const char **out)
{
    if (!ok_ || n > n_ - off_) {
        ok_ = false;
        return false;
    }
    *out = p_ + off_;
    off_ += n;
    return true;
}

uint8_t
WireReader::u8()
{
    const char *p;
    return take(1, &p) ? static_cast<uint8_t>(getLe(p, 1)) : 0;
}

uint16_t
WireReader::u16()
{
    const char *p;
    return take(2, &p) ? static_cast<uint16_t>(getLe(p, 2)) : 0;
}

uint32_t
WireReader::u32()
{
    const char *p;
    return take(4, &p) ? static_cast<uint32_t>(getLe(p, 4)) : 0;
}

uint64_t
WireReader::u64()
{
    const char *p;
    return take(8, &p) ? getLe(p, 8) : 0;
}

double
WireReader::f64()
{
    return std::bit_cast<double>(u64());
}

std::string
WireReader::str()
{
    const uint32_t n = u32();
    const char *p;
    if (!take(n, &p))
        return {};
    return std::string(p, n);
}

void
WireReader::raw(void *out, size_t n)
{
    const char *p;
    if (take(n, &p))
        std::memcpy(out, p, n);
    else
        std::memset(out, 0, n);
}

// ---------------------------------------------------------------- framing

std::string
encodeFrame(MsgType type, uint64_t id, std::string_view payload)
{
    std::string frame;
    frame.reserve(kHeaderSize + payload.size());
    putLe(frame, kMagic, 4);
    putLe(frame, kProtocolVersion, 2);
    putLe(frame, static_cast<uint16_t>(type), 2);
    putLe(frame, id, 8);
    putLe(frame, static_cast<uint32_t>(payload.size()), 4);
    putLe(frame, 0, 4);  // reserved
    putLe(frame, fnv1a64(payload.data(), payload.size()), 8);
    putLe(frame, fnv1a64(frame.data(), 32), 8);
    frame.append(payload.data(), payload.size());
    return frame;
}

DecodeStatus
decodeFrame(const char *data, size_t len, size_t max_payload, Frame &out,
            size_t &consumed)
{
    consumed = 0;
    if (len < kHeaderSize)
        return DecodeStatus::NeedMore;

    // Authenticate the header before trusting any field in it.
    const uint64_t header_sum = getLe(data + 32, 8);
    if (fnv1a64(data, 32) != header_sum)
        return DecodeStatus::BadHeader;
    if (getLe(data, 4) != kMagic ||
        getLe(data + 4, 2) != kProtocolVersion || getLe(data + 20, 4) != 0)
        return DecodeStatus::BadHeader;

    out.type = static_cast<MsgType>(getLe(data + 6, 2));
    out.id = getLe(data + 8, 8);
    const uint64_t payload_len = getLe(data + 16, 4);
    if (payload_len > max_payload)
        return DecodeStatus::TooLarge;
    if (len < kHeaderSize + payload_len)
        return DecodeStatus::NeedMore;

    const char *payload = data + kHeaderSize;
    if (fnv1a64(payload, payload_len) != getLe(data + 24, 8)) {
        // The header (and therefore payload_len) is authentic, so the
        // stream stays in sync: drop exactly this frame.
        consumed = kHeaderSize + payload_len;
        out.payload.clear();
        return DecodeStatus::BadPayload;
    }
    out.payload.assign(payload, payload_len);
    consumed = kHeaderSize + payload_len;
    return DecodeStatus::Frame;
}

// ---------------------------------------------------------------- payloads

std::string
LoadModelRequest::encode() const
{
    WireWriter w;
    w.str(path);
    w.u8(hasStudy ? 1 : 0);
    w.u8(study);
    w.str(app);
    w.u8(train ? 1 : 0);
    w.u32(maxSims);
    w.u32(maxEpochs);
    return w.take();
}

bool
LoadModelRequest::decode(std::string_view payload, LoadModelRequest &out)
{
    WireReader r(payload);
    out.path = r.str();
    out.hasStudy = r.u8() != 0;
    out.study = r.u8();
    out.app = r.str();
    out.train = r.u8() != 0;
    out.maxSims = r.u32();
    out.maxEpochs = r.u32();
    return r.atEnd();
}

std::string
PredictPointsRequest::encode() const
{
    WireWriter w;
    w.u32(static_cast<uint32_t>(points()));
    w.u32(width);
    for (double v : x)
        w.f64(v);
    return w.take();
}

bool
PredictPointsRequest::decode(std::string_view payload,
                             PredictPointsRequest &out)
{
    WireReader r(payload);
    const uint32_t n = r.u32();
    out.width = r.u32();
    if (!r.ok() || out.width == 0 || n == 0)
        return false;
    // Validate the element count against the remaining bytes without
    // multiplying by 8: n*width can reach 2^64/8, so `elems * 8` could
    // wrap and let a tiny hostile frame pass as a huge allocation.
    const uint64_t elems = static_cast<uint64_t>(n) * out.width;
    if (r.remaining() % 8 != 0 || elems != r.remaining() / 8)
        return false;
    out.x.resize(elems);
    for (auto &v : out.x)
        v = r.f64();
    return r.atEnd();
}

std::string
PredictRangeRequest::encode() const
{
    WireWriter w;
    w.u64(first);
    w.u64(count);
    return w.take();
}

bool
PredictRangeRequest::decode(std::string_view payload,
                            PredictRangeRequest &out)
{
    WireReader r(payload);
    out.first = r.u64();
    out.count = r.u64();
    return r.atEnd();
}

std::string
PredictionsReply::encode() const
{
    WireWriter w;
    w.u32(static_cast<uint32_t>(y.size()));
    for (double v : y)
        w.f64(v);
    return w.take();
}

bool
PredictionsReply::decode(std::string_view payload, PredictionsReply &out)
{
    WireReader r(payload);
    const uint32_t n = r.u32();
    if (!r.ok() || static_cast<uint64_t>(n) * 8 != r.remaining())
        return false;
    out.y.resize(n);
    for (auto &v : out.y)
        v = r.f64();
    return r.atEnd();
}

std::string
ModelInfoReply::encode() const
{
    WireWriter w;
    w.u32(members);
    w.u32(inputs);
    w.u32(outputs);
    w.f64(estMeanPct);
    w.f64(estSdPct);
    w.u8(degraded ? 1 : 0);
    w.u64(spaceSize);
    w.str(study);
    w.str(app);
    return w.take();
}

bool
ModelInfoReply::decode(std::string_view payload, ModelInfoReply &out)
{
    WireReader r(payload);
    out.members = r.u32();
    out.inputs = r.u32();
    out.outputs = r.u32();
    out.estMeanPct = r.f64();
    out.estSdPct = r.f64();
    out.degraded = r.u8() != 0;
    out.spaceSize = r.u64();
    out.study = r.str();
    out.app = r.str();
    return r.atEnd();
}

std::string
StatsReply::encode() const
{
    WireWriter w;
    w.u64(requests);
    w.u64(predictions);
    w.u64(batchedRequests);
    w.u64(overloaded);
    w.u64(protocolErrors);
    w.u64(bytesRx);
    w.u64(bytesTx);
    w.u64(connectionsAccepted);
    w.u64(activeConnections);
    w.u64(queueDepth);
    return w.take();
}

bool
StatsReply::decode(std::string_view payload, StatsReply &out)
{
    WireReader r(payload);
    out.requests = r.u64();
    out.predictions = r.u64();
    out.batchedRequests = r.u64();
    out.overloaded = r.u64();
    out.protocolErrors = r.u64();
    out.bytesRx = r.u64();
    out.bytesTx = r.u64();
    out.connectionsAccepted = r.u64();
    out.activeConnections = r.u64();
    out.queueDepth = r.u64();
    return r.atEnd();
}

std::string
SimulateBatchRequest::encode() const
{
    WireWriter w;
    w.u8(study);
    w.str(app);
    w.u64(traceLength);
    w.u8(simpoint ? 1 : 0);
    w.u32(static_cast<uint32_t>(indices.size()));
    for (uint64_t idx : indices)
        w.u64(idx);
    return w.take();
}

bool
SimulateBatchRequest::decode(std::string_view payload,
                             SimulateBatchRequest &out)
{
    WireReader r(payload);
    out.study = r.u8();
    out.app = r.str();
    out.traceLength = r.u64();
    out.simpoint = r.u8() != 0;
    const uint32_t n = r.u32();
    // Divide-side validation (as in PredictPointsRequest): the index
    // count must exactly account for the remaining bytes, checked
    // without a multiply that could wrap on a hostile count.
    if (!r.ok() || n == 0 || r.remaining() % 8 != 0 ||
        n != r.remaining() / 8)
        return false;
    out.indices.resize(n);
    for (auto &idx : out.indices)
        idx = r.u64();
    return r.atEnd();
}

namespace {

/** SimResult fields on the wire, in declaration order (the same 15
 *  fixed 8-byte fields the journal persists). */
constexpr size_t kSimResultWireBytes = 15 * 8;

void
putSimResult(WireWriter &w, const sim::SimResult &r)
{
    w.u64(r.cycles);
    w.u64(r.instructions);
    w.f64(r.ipc);
    w.f64(r.l1dMissRate);
    w.f64(r.l2MissRate);
    w.f64(r.l1iMissRate);
    w.f64(r.branchMispredictRate);
    w.u64(r.l1dAccesses);
    w.u64(r.l1dMisses);
    w.u64(r.l2Accesses);
    w.u64(r.l2Misses);
    w.u64(r.l1iAccesses);
    w.u64(r.l1iMisses);
    w.u64(r.branches);
    w.u64(r.branchMispredicts);
}

sim::SimResult
getSimResult(WireReader &r)
{
    sim::SimResult out;
    out.cycles = r.u64();
    out.instructions = r.u64();
    out.ipc = r.f64();
    out.l1dMissRate = r.f64();
    out.l2MissRate = r.f64();
    out.l1iMissRate = r.f64();
    out.branchMispredictRate = r.f64();
    out.l1dAccesses = r.u64();
    out.l1dMisses = r.u64();
    out.l2Accesses = r.u64();
    out.l2Misses = r.u64();
    out.l1iAccesses = r.u64();
    out.l1iMisses = r.u64();
    out.branches = r.u64();
    out.branchMispredicts = r.u64();
    return out;
}

} // namespace

std::string
SimulateBatchReply::encode() const
{
    WireWriter w;
    w.u8(simpoint ? 1 : 0);
    w.u32(static_cast<uint32_t>(points()));
    if (simpoint) {
        for (double v : ipc)
            w.f64(v);
    } else {
        for (const auto &r : results)
            putSimResult(w, r);
    }
    return w.take();
}

bool
SimulateBatchReply::decode(std::string_view payload,
                           SimulateBatchReply &out)
{
    WireReader r(payload);
    out.simpoint = r.u8() != 0;
    const uint32_t n = r.u32();
    const size_t per = out.simpoint ? 8 : kSimResultWireBytes;
    if (!r.ok() || r.remaining() % per != 0 || n != r.remaining() / per)
        return false;
    out.results.clear();
    out.ipc.clear();
    if (out.simpoint) {
        out.ipc.resize(n);
        for (auto &v : out.ipc)
            v = r.f64();
    } else {
        out.results.reserve(n);
        for (uint32_t i = 0; i < n; ++i)
            out.results.push_back(getSimResult(r));
    }
    return r.atEnd();
}

std::string
ErrorReply::encode() const
{
    WireWriter w;
    w.u16(static_cast<uint16_t>(code));
    w.str(message);
    return w.take();
}

bool
ErrorReply::decode(std::string_view payload, ErrorReply &out)
{
    WireReader r(payload);
    out.code = static_cast<ErrCode>(r.u16());
    out.message = r.str();
    return r.atEnd();
}

} // namespace serve
} // namespace dse
