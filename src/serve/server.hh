/**
 * @file
 * dse::serve::Server — the concurrent prediction service.
 *
 * One poll-based I/O thread owns every socket: it accepts loopback
 * TCP connections, incrementally frames their byte streams
 * (protocol.hh), and pushes decoded requests onto a *bounded* queue.
 * A dse::util::ThreadPool of workers drains the queue; adjacent small
 * PredictPoints requests of the same feature width are coalesced into
 * a single Ensemble::predictBatch call (micro-batching), so many
 * clients asking for one point each ride the blocked SIMD kernels
 * instead of paying a full per-point pass. Replies are appended to a
 * per-connection outbox and flushed by the I/O thread, which is the
 * only thread that ever touches a socket — a slow or wedged client
 * can therefore stall only its own outbox, never another client's
 * replies or a worker.
 *
 * Backpressure is explicit: when the queue is full the I/O thread
 * sends an immediate Overloaded error reply instead of buffering —
 * memory per client is bounded by one frame plus one outbox, and the
 * server never falls behind silently. Idle connections are reaped,
 * writes that make no progress for writeTimeoutMs are cut, and stop()
 * drains: accepted requests are answered, outboxes are flushed, then
 * sockets close.
 *
 * Predictions served over the wire are bit-identical to local
 * Ensemble::predictBatch output — doubles travel as raw IEEE-754 bit
 * patterns and batching is blocked per point (ann.hh), so coalescing
 * never changes a client's answer.
 *
 * Instrumentation: serve.* counters/histograms through dse::obs, a
 * TraceScope per worker batch, and FaultInjector sites serve.accept /
 * serve.read / serve.write for the fault suite.
 */

#ifndef DSE_SERVE_SERVER_HH
#define DSE_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "ml/cross_validation.hh"
#include "ml/encoding.hh"
#include "serve/protocol.hh"
#include "util/thread_pool.hh"

namespace dse {
namespace serve {

/** Server configuration. fromEnv() fills every field that has an
 *  environment knob; explicit fields always win. */
struct ServerOptions
{
    /** Bind address (loopback unless deliberately exposed). */
    std::string addr = "127.0.0.1";
    /** TCP port; 0 = ephemeral (read the bound port via port()). */
    uint16_t port = 0;
    /** Worker threads draining the queue (0 = DSE_THREADS/hardware). */
    size_t workers = 0;
    /** Bounded request-queue capacity; full => Overloaded replies. */
    size_t queueCapacity = 256;
    /** Max design points coalesced into one predictBatch call. */
    size_t maxBatchPoints = 1024;
    /** Micro-batch window: after popping a request, wait up to this
     *  long for more coalescable requests (0 = opportunistic only). */
    int batchWindowUs = 0;
    /** Per-frame payload cap (protocol.hh). */
    uint32_t maxPayload = kDefaultMaxPayload;
    /** Close a connection idle (no frame, nothing pending) this long. */
    int idleTimeoutMs = 30000;
    /** Close a connection whose outbox makes no progress this long. */
    int writeTimeoutMs = 10000;
    /** Cap on simultaneously open client connections. */
    size_t maxConnections = 256;

    /** Defaults overridden by DSE_SERVE_ADDR ("host" or "host:port"),
     *  DSE_SERVE_BATCH, DSE_SERVE_BATCH_US, DSE_SERVE_QUEUE,
     *  DSE_SERVE_WORKERS, DSE_SERVE_IDLE_MS, DSE_SERVE_WRITE_MS. */
    static ServerOptions fromEnv();
};

/** Verdict returned by a simulate handler (dse::remote workers). */
enum class SimulateVerdict : uint8_t {
    Reply,       ///< send the filled SimulateBatchReply
    BadRequest,  ///< send ErrCode::BadRequest carrying the message
    Crash,       ///< emulate a worker crash: drop the connection
                 ///< without a reply and stop the server, so the
                 ///< client sees silence then refused reconnects —
                 ///< exactly what a SIGKILLed daemon looks like
};

/** Handler a simulation worker installs for SimulateBatch requests.
 *  Runs on the server's worker pool; must be thread-safe. */
using SimulateHandler = std::function<SimulateVerdict(
    const SimulateBatchRequest &req, SimulateBatchReply &reply,
    std::string &error)>;

/** The model a server instance serves (swapped atomically as a unit
 *  so in-flight requests keep a consistent view). */
struct ModelState
{
    std::shared_ptr<const ml::Ensemble> ensemble;
    std::shared_ptr<const ml::DesignSpace> space;  ///< for PredictRange
    std::string study;  ///< "" when no study attached
    std::string app;
};

class Server
{
  public:
    explicit Server(ServerOptions opts = ServerOptions::fromEnv());
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Install the model served to clients (may be called before
     *  start() or at any time after; also reachable over the wire via
     *  LoadModel). */
    void setModel(ModelState state);

    /** Current model (nullptr ensemble when none loaded). */
    std::shared_ptr<const ModelState> model() const;

    /** Install the SimulateBatch handler (dse::remote::SimWorker).
     *  Without one, SimulateBatch requests get BadRequest. */
    void setSimulateHandler(SimulateHandler handler);

    /** Bind, listen, and spawn the I/O thread and worker pool.
     *  @throws std::runtime_error when the address cannot be bound */
    void start();

    /** The port actually bound (after start(); resolves port 0). */
    uint16_t port() const { return boundPort_; }

    /** Graceful drain-then-stop: stop accepting, answer everything
     *  already queued, flush outboxes, close, join. Idempotent. */
    void stop();

    /**
     * Request an asynchronous stop from a signal handler: sets a flag
     * and writes one byte to the wake pipe (both async-signal-safe).
     * The owner must still call stop() afterwards to join.
     */
    void requestStop();

    bool running() const { return running_.load(std::memory_order_acquire); }

    /** True once requestStop()/stop() has been asked for. */
    bool stopRequested() const
    {
        return stopping_.load(std::memory_order_acquire);
    }

    /** Block (sleep-polling, so safe around signal handlers) until
     *  requestStop() fires; the daemon main loop parks here. */
    void waitForStopRequest() const;

    /** Server-side counters (same values Stats serves). */
    StatsReply statsSnapshot() const;

    /**
     * Test hook: freeze/unfreeze the worker pool. With workers held,
     * requests pile into the bounded queue, which is how the test
     * suite forces the Overloaded path deterministically.
     */
    void pauseWorkersForTest(bool paused);

  private:
    struct Conn
    {
        int fd = -1;
        uint64_t id = 0;       ///< unique per accepted connection
        std::string rx;        ///< I/O-thread-only read buffer
        std::mutex txMu;       ///< guards tx (workers append)
        std::string tx;        ///< pending reply bytes
        std::atomic<bool> closed{false};  ///< no further replies wanted
        std::atomic<uint32_t> inflight{0};  ///< queued, not yet replied
        uint64_t lastActivityNs = 0;
        uint64_t writeBlockedSinceNs = 0;  ///< 0 = outbox empty/progressing
        bool draining = false;  ///< close once tx flushes
    };

    struct Request
    {
        std::shared_ptr<Conn> conn;
        Frame frame;
    };

    // I/O thread.
    void ioLoop();
    void acceptPending();
    void handleReadable(const std::shared_ptr<Conn> &conn);
    void parseFrames(const std::shared_ptr<Conn> &conn);
    void dispatchFrame(const std::shared_ptr<Conn> &conn, Frame frame);
    void flushWritable(const std::shared_ptr<Conn> &conn);
    void reapTimeouts(uint64_t now_ns);
    void closeConn(const std::shared_ptr<Conn> &conn);

    // Worker side.
    void workerLoop();
    /** Pop one request (plus coalescable followers) from the queue. */
    bool popBatch(std::vector<Request> &batch);
    void handleOne(const Request &req);
    void handlePredictPoints(std::vector<Request> &group);
    void handleLoadModel(const Request &req);
    void handleSimulateBatch(const Request &req);
    std::string buildModelInfo() const;

    /** Append an encoded frame to a connection's outbox and wake the
     *  I/O thread (thread-safe; drops the reply if conn closed). */
    void sendReply(const std::shared_ptr<Conn> &conn, MsgType type,
                   uint64_t id, std::string_view payload);
    void sendError(const std::shared_ptr<Conn> &conn, uint64_t id,
                   ErrCode code, const std::string &message);
    void wakeIo();

    static uint64_t nowNs();

    ServerOptions opts_;
    uint16_t boundPort_ = 0;
    int listenFd_ = -1;
    int wakeRead_ = -1;
    int wakeWrite_ = -1;

    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};   ///< stop accepting/reading
    std::atomic<bool> workersExit_{false};  ///< workers drain then exit
    std::atomic<bool> workersDrained_{false};  ///< workers joined; flush & exit
    std::atomic<bool> workersPaused_{false};

    mutable std::mutex modelMu_;
    std::shared_ptr<const ModelState> model_;
    std::shared_ptr<const SimulateHandler> simulateHandler_;

    // Bounded request queue.
    mutable std::mutex queueMu_;
    std::condition_variable queueCv_;
    std::deque<Request> queue_;

    // I/O-thread-private connection table (shared_ptrs so workers can
    // hold a connection across its close).
    std::unordered_map<int, std::shared_ptr<Conn>> conns_;
    uint64_t nextConnId_ = 1;

    std::thread ioThread_;
    std::unique_ptr<util::ThreadPool> workerPool_;
    std::thread workerDriver_;  ///< runs workerPool_->parallelFor
    size_t workerCount_ = 0;

    // Counters behind Stats (atomics; obs mirrors are separate).
    struct Counters
    {
        std::atomic<uint64_t> requests{0};
        std::atomic<uint64_t> predictions{0};
        std::atomic<uint64_t> batchedRequests{0};
        std::atomic<uint64_t> overloaded{0};
        std::atomic<uint64_t> protocolErrors{0};
        std::atomic<uint64_t> bytesRx{0};
        std::atomic<uint64_t> bytesTx{0};
        std::atomic<uint64_t> connectionsAccepted{0};
        std::atomic<uint64_t> activeConnections{0};
    };
    Counters counters_;
};

} // namespace serve
} // namespace dse

#endif // DSE_SERVE_SERVER_HH
