#include "util/metrics.hh"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/env.hh"
#include "util/table.hh"

namespace dse {
namespace obs {

namespace detail {
std::atomic<int> metricsMode{-1};

bool
metricsEnabledSlow()
{
    // First probe with the mode unset: resolve DSE_METRICS once. A
    // concurrent racer resolves to the same value, so the CAS loser
    // just rereads.
    const int resolved = envBool("DSE_METRICS", false) ? 1 : 0;
    int expected = -1;
    metricsMode.compare_exchange_strong(expected, resolved,
                                        std::memory_order_relaxed);
    return metricsMode.load(std::memory_order_relaxed) != 0;
}
} // namespace detail

void
setMetricsEnabled(bool on)
{
    detail::metricsMode.store(on ? 1 : 0, std::memory_order_relaxed);
}

void
reportGlobalMetrics(const std::string &path)
{
    const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
    if (path.empty()) {
        std::fflush(stdout);  // tools print via stdio; keep order
        snap.printTable(std::cout);
        std::cout.flush();
        return;
    }
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        throw std::runtime_error("cannot write metrics file: " + path);
    out << snap.toJson() << '\n';
    out.flush();
    if (!out)
        throw std::runtime_error("metrics write failed: " + path);
}

uint64_t
HistogramSnapshot::bucketBound(size_t i)
{
    if (i + 1 >= kHistogramBuckets)
        return UINT64_MAX;
    return (uint64_t{1} << i) - 1;
}

namespace {

size_t
bucketOf(uint64_t value)
{
    const size_t width = static_cast<size_t>(std::bit_width(value));
    return std::min(width, kHistogramBuckets - 1);
}

/** One thread's accumulation cells. Writes are thread-private; every
 *  cell is a relaxed atomic only so snapshot() can read concurrently
 *  without a data race. */
struct alignas(64) Shard
{
    struct Hist
    {
        std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets{};
        std::atomic<uint64_t> count{0};
        std::atomic<uint64_t> sum{0};
        std::atomic<uint64_t> min{UINT64_MAX};
        std::atomic<uint64_t> max{0};
    };
    std::array<std::atomic<uint64_t>, kMaxCounters> counters{};
    std::array<Hist, kMaxHistograms> hists{};
};

} // namespace

struct MetricsRegistry::Impl
{
    mutable std::mutex mu;  ///< guards names and the shard list shape
    std::vector<std::string> counterNames;
    std::vector<std::string> gaugeNames;
    std::vector<std::string> histogramNames;
    std::array<std::atomic<int64_t>, kMaxGauges> gauges{};
    std::vector<std::unique_ptr<Shard>> shards;
    uint64_t serial = 0;  ///< globally unique per registry instance

    uint32_t
    registerName(std::vector<std::string> &names, const char *kind,
                 size_t cap, const std::string &name)
    {
        if (!MetricsRegistry::validName(name)) {
            throw std::invalid_argument(
                std::string("metric name '") + name +
                "' must match ^[a-z0-9_.]+$");
        }
        std::lock_guard<std::mutex> lock(mu);
        const auto hit = std::find(names.begin(), names.end(), name);
        if (hit != names.end())
            return static_cast<uint32_t>(hit - names.begin());
        // Same name under a different kind would export two colliding
        // series; refuse at registration, not at dashboard time.
        for (const auto *other :
             {&counterNames, &gaugeNames, &histogramNames}) {
            if (other != &names &&
                std::find(other->begin(), other->end(), name) !=
                    other->end()) {
                throw std::invalid_argument(
                    "metric name '" + name +
                    "' already registered as a different kind");
            }
        }
        if (names.size() >= cap) {
            throw std::length_error(std::string("too many ") + kind +
                                    " metrics (cap " +
                                    std::to_string(cap) + ")");
        }
        names.push_back(name);
        return static_cast<uint32_t>(names.size() - 1);
    }
};

namespace {

/** Thread-local shard cache. Entries are keyed by (registry pointer,
 *  registry serial): serials are globally unique, so an entry left by
 *  a destroyed registry can never be matched — even if a new registry
 *  reuses the same address — and its dangling shard pointer is never
 *  dereferenced. */
struct TlsEntry
{
    const void *registry;
    uint64_t serial;
    Shard *shard;
};
thread_local std::vector<TlsEntry> t_shardCache;

std::atomic<uint64_t> g_registrySerial{1};

Shard &
localShard(const MetricsRegistry::Impl &impl)
{
    for (const auto &e : t_shardCache) {
        if (e.registry == &impl && e.serial == impl.serial)
            return *e.shard;
    }
    auto shard = std::make_unique<Shard>();
    Shard *raw = shard.get();
    {
        auto &mu = const_cast<std::mutex &>(impl.mu);
        std::lock_guard<std::mutex> lock(mu);
        const_cast<MetricsRegistry::Impl &>(impl).shards.push_back(
            std::move(shard));
    }
    t_shardCache.push_back({&impl, impl.serial, raw});
    return *raw;
}

} // namespace

MetricsRegistry::MetricsRegistry() : impl_(std::make_unique<Impl>())
{
    impl_->serial =
        g_registrySerial.fetch_add(1, std::memory_order_relaxed);
}

MetricsRegistry::~MetricsRegistry() = default;

bool
MetricsRegistry::validName(const std::string &name)
{
    if (name.empty())
        return false;
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
            (c >= '0' && c <= '9') || c == '_' || c == '.';
        if (!ok)
            return false;
    }
    return true;
}

CounterId
MetricsRegistry::counter(const std::string &name)
{
    return CounterId{impl_->registerName(impl_->counterNames, "counter",
                                         kMaxCounters, name)};
}

GaugeId
MetricsRegistry::gauge(const std::string &name)
{
    return GaugeId{impl_->registerName(impl_->gaugeNames, "gauge",
                                       kMaxGauges, name)};
}

HistogramId
MetricsRegistry::histogram(const std::string &name)
{
    return HistogramId{impl_->registerName(
        impl_->histogramNames, "histogram", kMaxHistograms, name)};
}

void
MetricsRegistry::addSlow(CounterId id, uint64_t n)
{
    localShard(*impl_).counters[id.idx].fetch_add(
        n, std::memory_order_relaxed);
}

void
MetricsRegistry::observeSlow(HistogramId id, uint64_t value)
{
    auto &h = localShard(*impl_).hists[id.idx];
    h.buckets[bucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    h.count.fetch_add(1, std::memory_order_relaxed);
    h.sum.fetch_add(value, std::memory_order_relaxed);
    // The cell is thread-private, so plain read-modify-write ordering
    // suffices; the atomics only make snapshot() race-free.
    if (value < h.min.load(std::memory_order_relaxed))
        h.min.store(value, std::memory_order_relaxed);
    if (value > h.max.load(std::memory_order_relaxed))
        h.max.store(value, std::memory_order_relaxed);
}

void
MetricsRegistry::setGaugeSlow(GaugeId id, int64_t value)
{
    impl_->gauges[id.idx].store(value, std::memory_order_relaxed);
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (size_t c = 0; c < impl_->counterNames.size(); ++c) {
        uint64_t total = 0;
        for (const auto &shard : impl_->shards)
            total += shard->counters[c].load(std::memory_order_relaxed);
        snap.counters.emplace_back(impl_->counterNames[c], total);
    }
    for (size_t g = 0; g < impl_->gaugeNames.size(); ++g) {
        snap.gauges.emplace_back(
            impl_->gaugeNames[g],
            impl_->gauges[g].load(std::memory_order_relaxed));
    }
    for (size_t h = 0; h < impl_->histogramNames.size(); ++h) {
        HistogramSnapshot hs;
        hs.name = impl_->histogramNames[h];
        uint64_t min = UINT64_MAX;
        for (const auto &shard : impl_->shards) {
            const auto &cell = shard->hists[h];
            hs.count += cell.count.load(std::memory_order_relaxed);
            hs.sum += cell.sum.load(std::memory_order_relaxed);
            min = std::min(min,
                           cell.min.load(std::memory_order_relaxed));
            hs.max = std::max(hs.max,
                              cell.max.load(std::memory_order_relaxed));
            for (size_t b = 0; b < kHistogramBuckets; ++b) {
                hs.buckets[b] +=
                    cell.buckets[b].load(std::memory_order_relaxed);
            }
        }
        hs.min = hs.count ? min : 0;
        snap.histograms.push_back(std::move(hs));
    }
    return snap;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (auto &g : impl_->gauges)
        g.store(0, std::memory_order_relaxed);
    for (auto &shard : impl_->shards) {
        for (auto &c : shard->counters)
            c.store(0, std::memory_order_relaxed);
        for (auto &h : shard->hists) {
            for (auto &b : h.buckets)
                b.store(0, std::memory_order_relaxed);
            h.count.store(0, std::memory_order_relaxed);
            h.sum.store(0, std::memory_order_relaxed);
            h.min.store(UINT64_MAX, std::memory_order_relaxed);
            h.max.store(0, std::memory_order_relaxed);
        }
    }
}

MetricsRegistry &
MetricsRegistry::global()
{
    // Leaked: instrumented code and thread-local caches may outlive
    // any static destruction order.
    static MetricsRegistry *registry = new MetricsRegistry();
    return *registry;
}

uint64_t
MetricsSnapshot::counter(const std::string &name) const
{
    for (const auto &[n, v] : counters) {
        if (n == name)
            return v;
    }
    return 0;
}

int64_t
MetricsSnapshot::gauge(const std::string &name) const
{
    for (const auto &[n, v] : gauges) {
        if (n == name)
            return v;
    }
    return 0;
}

const HistogramSnapshot *
MetricsSnapshot::histogram(const std::string &name) const
{
    for (const auto &h : histograms) {
        if (h.name == name)
            return &h;
    }
    return nullptr;
}

std::string
MetricsSnapshot::toJson() const
{
    std::ostringstream os;
    os << "{\"counters\":{";
    for (size_t i = 0; i < counters.size(); ++i) {
        os << (i ? "," : "") << '"' << counters[i].first
           << "\":" << counters[i].second;
    }
    os << "},\"gauges\":{";
    for (size_t i = 0; i < gauges.size(); ++i) {
        os << (i ? "," : "") << '"' << gauges[i].first
           << "\":" << gauges[i].second;
    }
    os << "},\"histograms\":{";
    for (size_t i = 0; i < histograms.size(); ++i) {
        const auto &h = histograms[i];
        os << (i ? "," : "") << '"' << h.name << "\":{\"count\":"
           << h.count << ",\"sum\":" << h.sum << ",\"min\":" << h.min
           << ",\"max\":" << h.max << ",\"buckets\":[";
        bool first = true;
        for (size_t b = 0; b < kHistogramBuckets; ++b) {
            if (!h.buckets[b])
                continue;
            os << (first ? "" : ",") << "{\"le\":"
               << HistogramSnapshot::bucketBound(b)
               << ",\"count\":" << h.buckets[b] << '}';
            first = false;
        }
        os << "]}";
    }
    os << "}}";
    return os.str();
}

void
MetricsSnapshot::printTable(std::ostream &os) const
{
    if (!counters.empty()) {
        os << "counters:\n";
        Table t({"name", "value"});
        for (const auto &[n, v] : counters) {
            t.newRow();
            t.add(n);
            t.add(static_cast<long long>(v));
        }
        t.print(os);
    }
    if (!gauges.empty()) {
        os << "gauges:\n";
        Table t({"name", "value"});
        for (const auto &[n, v] : gauges) {
            t.newRow();
            t.add(n);
            t.add(static_cast<long long>(v));
        }
        t.print(os);
    }
    if (!histograms.empty()) {
        os << "histograms:\n";
        Table t({"name", "count", "mean", "min", "max"});
        for (const auto &h : histograms) {
            t.newRow();
            t.add(h.name);
            t.add(static_cast<long long>(h.count));
            t.add(h.mean(), 1);
            t.add(static_cast<long long>(h.min));
            t.add(static_cast<long long>(h.max));
        }
        t.print(os);
    }
}

} // namespace obs
} // namespace dse
