#include "util/env.hh"

#include <algorithm>
#include <cstdlib>

#include "util/table.hh"

namespace dse {

namespace {

const char *
rawEnv(const char *name)
{
    const char *v = std::getenv(name);
    return (v && *v) ? v : nullptr;
}

} // namespace

long long
envInt(const char *name, long long fallback)
{
    const char *v = rawEnv(name);
    if (!v)
        return fallback;
    char *end = nullptr;
    long long parsed = std::strtoll(v, &end, 10);
    return (end && *end == '\0') ? parsed : fallback;
}

double
envDouble(const char *name, double fallback)
{
    const char *v = rawEnv(name);
    if (!v)
        return fallback;
    char *end = nullptr;
    double parsed = std::strtod(v, &end);
    return (end && *end == '\0') ? parsed : fallback;
}

bool
envBool(const char *name, bool fallback)
{
    const char *v = rawEnv(name);
    if (!v)
        return fallback;
    std::string s(v);
    std::transform(s.begin(), s.end(), s.begin(), ::tolower);
    if (s == "1" || s == "true" || s == "yes" || s == "on")
        return true;
    if (s == "0" || s == "false" || s == "no" || s == "off")
        return false;
    return fallback;
}

std::vector<std::string>
envList(const char *name, const std::vector<std::string> &fallback)
{
    const char *v = rawEnv(name);
    if (!v)
        return fallback;
    auto parts = split(v, ',');
    return parts.empty() ? fallback : parts;
}

} // namespace dse
