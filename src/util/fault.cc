#include "util/fault.hh"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "util/rng.hh"
#include "util/table.hh"

namespace dse {
namespace util {

namespace {

/**
 * Mix (site seed, probe key) into a uniform 64-bit hash. Two rounds
 * of SplitMix64 over the xor keeps distinct keys decorrelated even
 * when they are small consecutive integers (the common case: design
 * point indices, fold numbers).
 */
uint64_t
probeHash(uint64_t seed, uint64_t key)
{
    SplitMix64 mix(seed ^ (key * 0x9e3779b97f4a7c15ull));
    mix.next();
    return mix.next();
}

} // namespace

void
FaultInjector::configure(const std::string &spec)
{
    std::map<std::string, std::unique_ptr<Site>> sites;
    for (const auto &entry : split(spec, ',')) {
        if (entry.empty())
            continue;
        const auto parts = split(entry, ':');
        if (parts.size() != 3 || parts[0].empty()) {
            throw std::invalid_argument(
                "DSE_FAULTS entry '" + entry +
                "' is not site:rate:seed");
        }
        char *end = nullptr;
        const double rate = std::strtod(parts[1].c_str(), &end);
        if (!end || *end != '\0' || !(rate >= 0.0) || rate > 1.0) {
            throw std::invalid_argument(
                "DSE_FAULTS rate '" + parts[1] +
                "' must be a number in [0, 1]");
        }
        const unsigned long long seed =
            std::strtoull(parts[2].c_str(), &end, 10);
        if (!end || *end != '\0') {
            throw std::invalid_argument(
                "DSE_FAULTS seed '" + parts[2] + "' is not an integer");
        }
        auto site = std::make_unique<Site>();
        // threshold == ~0ull is reserved to mean "always fire" so
        // rate 1 hits every key, including one whose hash is ~0ull;
        // fractional rates map onto [0, 2^64) with a clamp to keep
        // the double->uint64 conversion in range.
        if (rate >= 1.0) {
            site->threshold = ~0ull;
        } else {
            const long double scaled =
                static_cast<long double>(rate) * 18446744073709551616.0L;
            site->threshold = scaled >= 18446744073709551615.0L
                ? ~0ull - 1
                : static_cast<uint64_t>(scaled);
        }
        site->seed = seed;
        // Export injections per site as `faults.injected.<site>` when
        // the site name fits the metric naming scheme (it always does
        // for the built-in sites; a creative test site just goes
        // unexported rather than aborting the run).
        const std::string metric_name = "faults.injected." + parts[0];
        if (obs::MetricsRegistry::validName(metric_name)) {
            site->metric =
                obs::MetricsRegistry::global().counter(metric_name);
        }
        sites[parts[0]] = std::move(site);
    }

    std::lock_guard<std::mutex> lock(mu_);
    sites_ = std::move(sites);
    active_.store(!sites_.empty(), std::memory_order_relaxed);
}

void
FaultInjector::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    sites_.clear();
    active_.store(false, std::memory_order_relaxed);
}

FaultInjector::Site *
FaultInjector::find(const char *site) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sites_.find(site);
    return it == sites_.end() ? nullptr : it->second.get();
}

bool
FaultInjector::shouldFail(const char *site, uint64_t key)
{
    if (!active())
        return false;
    Site *s = find(site);
    if (!s)
        return false;
    const bool fail = s->threshold == ~0ull ||
        probeHash(s->seed, key) < s->threshold;
    if (fail) {
        s->injected.fetch_add(1, std::memory_order_relaxed);
        obs::MetricsRegistry::global().add(s->metric);
    }
    return fail;
}

bool
FaultInjector::shouldFail(const char *site)
{
    if (!active())
        return false;
    Site *s = find(site);
    if (!s)
        return false;
    return shouldFail(site,
                      s->autoKey.fetch_add(1, std::memory_order_relaxed));
}

uint64_t
FaultInjector::injected(const char *site) const
{
    Site *s = find(site);
    return s ? s->injected.load(std::memory_order_relaxed) : 0;
}

FaultInjector &
FaultInjector::global()
{
    static FaultInjector *injector = [] {
        auto *fi = new FaultInjector();
        if (const char *spec = std::getenv("DSE_FAULTS"); spec && *spec)
            fi->configure(spec);
        return fi;
    }();
    return *injector;
}

} // namespace util
} // namespace dse
