/**
 * @file
 * Deterministic fault injection for exercising the library's recovery
 * paths (journal replay, fold retry/degradation, torn-write
 * detection) from tests and from the command line.
 *
 * Faults are configured per *site* — a short string compiled into the
 * code path that can fail (e.g. "sim", "fold", "journal", "save") —
 * with a failure rate and a seed:
 *
 *     DSE_FAULTS=site:rate:seed[,site:rate:seed...]
 *
 * e.g. `DSE_FAULTS=sim:0.1:42,fold:1:7`. A site that is not listed
 * never fails, so production runs (DSE_FAULTS unset) pay one atomic
 * load per probe and nothing else.
 *
 * Determinism: the fail/no-fail decision for a probe is a pure
 * function of (site seed, probe key) — the key is a caller-supplied
 * stable identifier such as a design-point index or a fold number,
 * never a wall clock or a global counter racing across threads. The
 * same configuration therefore injects the same faults at any thread
 * count and in any interleaving, which is what lets the fault suite
 * assert exact recovery behavior. Probes without a natural key fall
 * back to a per-site counter (deterministic in single-threaded use).
 */

#ifndef DSE_UTIL_FAULT_HH
#define DSE_UTIL_FAULT_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "util/metrics.hh"

namespace dse {
namespace util {

class FaultInjector
{
  public:
    FaultInjector() = default;

    /**
     * Replace the configuration with a parsed `site:rate:seed,...`
     * spec (empty string disables all sites). Rates must be in
     * [0, 1]. @throws std::invalid_argument on a malformed spec.
     */
    void configure(const std::string &spec);

    /** Disable every site and zero the probe/injection counters. */
    void reset();

    /**
     * Probe a site with a stable key. Returns true if the fault
     * fires: the decision is hash(site seed, key) < rate, so it is
     * identical for the same (configuration, site, key) regardless
     * of threading or call order.
     */
    bool shouldFail(const char *site, uint64_t key);

    /** Probe with an auto-incremented per-site key (nth call). */
    bool shouldFail(const char *site);

    /** Number of faults injected at a site so far (0 if unknown). */
    uint64_t injected(const char *site) const;

    /** True if any site is configured (cheap; one relaxed load). */
    bool active() const { return active_.load(std::memory_order_relaxed); }

    /**
     * The process-wide injector, configured once from DSE_FAULTS on
     * first use. Tests reconfigure it directly via configure()/reset().
     */
    static FaultInjector &global();

  private:
    struct Site
    {
        uint64_t threshold = 0;  ///< fail iff hash < threshold
        uint64_t seed = 0;
        std::atomic<uint64_t> autoKey{0};
        std::atomic<uint64_t> injected{0};
        /** `faults.injected.<site>` counter; invalid (and never
         *  bumped) when the site name fails the metric name rules. */
        obs::CounterId metric;
    };

    Site *find(const char *site) const;

    mutable std::mutex mu_;  ///< guards sites_ (map shape only)
    std::map<std::string, std::unique_ptr<Site>> sites_;
    std::atomic<bool> active_{false};
};

} // namespace util
} // namespace dse

#endif // DSE_UTIL_FAULT_HH
