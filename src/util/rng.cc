#include "util/rng.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

namespace dse {

namespace {

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

uint64_t
SplitMix64::next()
{
    x_ += 0x9e3779b97f4a7c15ull;
    uint64_t z = x_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed)
{
    SplitMix64 sm(seed);
    for (auto &word : s_)
        word = sm.next();
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::below(uint64_t n)
{
    assert(n > 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = (0 - n) % n;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % n;
    }
}

int64_t
Rng::range(int64_t lo, int64_t hi)
{
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
        below(static_cast<uint64_t>(hi - lo) + 1));
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

double
Rng::gaussian()
{
    // Box-Muller; regenerate on the (measure-zero) log(0) edge.
    double u1 = uniform();
    while (u1 <= 0.0)
        u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double
Rng::gaussian(double mean, double sd)
{
    return mean + sd * gaussian();
}

int
Rng::burstLength(double p, int max_len)
{
    int len = 1;
    while (len < max_len && chance(p))
        ++len;
    return len;
}

std::vector<uint64_t>
Rng::sampleWithoutReplacement(uint64_t n, uint64_t k)
{
    if (k > n)
        throw std::invalid_argument("sampleWithoutReplacement: k > n");

    if (k * 2 >= n) {
        // Dense case: shuffle the full index range and truncate.
        std::vector<uint64_t> all(n);
        std::iota(all.begin(), all.end(), 0);
        shuffle(all);
        all.resize(k);
        return all;
    }

    // Floyd's algorithm: for j in [n-k, n), draw t in [0, j]; insert
    // t unless already chosen, in which case insert j.
    std::unordered_set<uint64_t> chosen;
    std::vector<uint64_t> out;
    out.reserve(k);
    for (uint64_t j = n - k; j < n; ++j) {
        uint64_t t = below(j + 1);
        if (chosen.count(t)) {
            chosen.insert(j);
            out.push_back(j);
        } else {
            chosen.insert(t);
            out.push_back(t);
        }
    }
    return out;
}

size_t
Rng::weightedIndex(const std::vector<double> &weights)
{
    assert(!weights.empty());
    double total = 0.0;
    for (double w : weights) {
        assert(w >= 0.0);
        total += w;
    }
    if (total <= 0.0)
        return static_cast<size_t>(below(weights.size()));

    double r = uniform() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
        r -= weights[i];
        if (r < 0.0)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::fork()
{
    return Rng(next());
}

} // namespace dse
