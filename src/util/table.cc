#include "util/table.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace dse {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::newRow()
{
    rows_.emplace_back();
}

void
Table::add(const std::string &cell)
{
    if (rows_.empty())
        newRow();
    rows_.back().push_back(cell);
}

void
Table::add(double value, int prec)
{
    add(formatFixed(value, prec));
}

void
Table::add(long long value)
{
    add(std::to_string(value));
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < widths.size(); ++c) {
            const std::string &cell = c < cells.size() ? cells[c] : "";
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << cell;
        }
        os << '\n';
    };

    print_row(headers_);
    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        print_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    os << join(headers_, ",") << '\n';
    for (const auto &row : rows_)
        os << join(row, ",") << '\n';
}

std::string
formatFixed(double value, int prec)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(prec) << value;
    return os.str();
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::vector<std::string>
split(const std::string &s, char delim)
{
    std::vector<std::string> out;
    std::string cur;
    for (char ch : s) {
        if (ch == delim) {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += ch;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

} // namespace dse
