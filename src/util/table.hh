/**
 * @file
 * Plain-text table formatting for benchmark harness output. Every
 * bench binary prints the rows/series of the paper table or figure it
 * regenerates; this gives them one consistent, aligned format plus an
 * optional CSV dump for plotting.
 */

#ifndef DSE_UTIL_TABLE_HH
#define DSE_UTIL_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace dse {

/**
 * A simple column-aligned text table. Cells are strings; numeric
 * convenience setters format with fixed precision.
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Begin a new row; subsequent add() calls fill it left to right. */
    void newRow();

    /** Append a string cell to the current row. */
    void add(const std::string &cell);

    /** Append a formatted floating-point cell (fixed, `prec` digits). */
    void add(double value, int prec = 2);

    /** Append an integer cell. */
    void add(long long value);

    /** Number of data rows so far. */
    size_t rows() const { return rows_.size(); }

    /** Render aligned text to a stream. */
    void print(std::ostream &os) const;

    /** Render comma-separated values (header + rows) to a stream. */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed precision. */
std::string formatFixed(double value, int prec);

/** Join strings with a separator. */
std::string join(const std::vector<std::string> &parts, const std::string &sep);

/** Split a string on a delimiter, dropping empty pieces. */
std::vector<std::string> split(const std::string &s, char delim);

} // namespace dse

#endif // DSE_UTIL_TABLE_HH
