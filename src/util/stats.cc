#include "util/stats.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace dse {

void
OnlineStats::add(double x)
{
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
OnlineStats::merge(const OnlineStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const size_t total = n_ + other.n_;
    const double nd = static_cast<double>(n_);
    const double od = static_cast<double>(other.n_);
    mean_ += delta * od / static_cast<double>(total);
    m2_ += other.m2_ + delta * delta * nd * od / static_cast<double>(total);
    n_ = total;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
OnlineStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

Summary
summarize(const std::vector<double> &xs)
{
    OnlineStats acc;
    for (double x : xs)
        acc.add(x);
    Summary s;
    s.mean = acc.mean();
    s.stddev = acc.stddev();
    s.min = acc.count() ? acc.min() : 0.0;
    s.max = acc.count() ? acc.max() : 0.0;
    s.count = acc.count();
    return s;
}

double
percentageError(double predicted, double actual, double cap)
{
    if (actual == 0.0)
        return predicted == 0.0 ? 0.0 : cap;
    const double err = 100.0 * std::abs(predicted - actual) / std::abs(actual);
    return std::min(err, cap);
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double ss = 0.0;
    for (double x : xs)
        ss += (x - m) * (x - m);
    return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double
pearson(const std::vector<double> &xs, const std::vector<double> &ys)
{
    assert(xs.size() == ys.size());
    if (xs.size() < 2)
        return 0.0;
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (size_t i = 0; i < xs.size(); ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

double
interpolate(const std::vector<double> &xs, const std::vector<double> &ys,
            double x)
{
    assert(xs.size() == ys.size());
    assert(!xs.empty());
    if (x <= xs.front())
        return ys.front();
    if (x >= xs.back())
        return ys.back();
    for (size_t i = 1; i < xs.size(); ++i) {
        if (x <= xs[i]) {
            const double span = xs[i] - xs[i - 1];
            if (span == 0.0)
                return ys[i];
            const double t = (x - xs[i - 1]) / span;
            return ys[i - 1] + t * (ys[i] - ys[i - 1]);
        }
    }
    return ys.back();
}

} // namespace dse
