/**
 * @file
 * dse::obs — lock-cheap, thread-aware metrics for the study engine.
 *
 * A MetricsRegistry holds named counters, gauges, and fixed-bucket
 * latency histograms. Registration (cold) hands back a small integer
 * id; the hot mutation paths (add/observe) write through a per-thread
 * shard of relaxed atomics, so concurrent instrumented code never
 * contends on a shared cache line. snapshot() merges every thread's
 * shard into one consistent view on demand.
 *
 * Naming scheme: every metric name is lowercase dotted —
 * `^[a-z0-9_.]+$` — with the subsystem as the leading component
 * (`sim.executed`, `train.fold_retries`, `journal.appends`).
 * Registration enforces the pattern and rejects a name already taken
 * by a different metric kind, so exported series can never collide.
 *
 * Cost model:
 *  - compiled out (CMake -DDSE_METRICS=OFF defines DSE_OBS_DISABLED):
 *    add/observe/TraceScope are empty inline functions — zero code in
 *    the hot paths;
 *  - compiled in, runtime-disabled (the default; DSE_METRICS env var
 *    unset or 0): one relaxed atomic load and a branch per probe;
 *  - enabled (DSE_METRICS=1 or setMetricsEnabled(true)): one
 *    relaxed fetch_add on a thread-private cell per probe.
 *
 * Determinism: metrics only ever read the clock and bump counters —
 * they touch no RNG stream and no model arithmetic, so enabling them
 * leaves every study result bit-for-bit identical (tests/test_obs.cc
 * proves this against the golden pins).
 */

#ifndef DSE_UTIL_METRICS_HH
#define DSE_UTIL_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace dse {
namespace obs {

/** Buckets per histogram: bucket i counts values whose bit width is
 *  i (bucket 0 holds zeros, bucket i holds [2^(i-1), 2^i - 1]); the
 *  last bucket absorbs everything wider. 40 buckets span 1 ns to
 *  ~9 minutes of latency. */
constexpr size_t kHistogramBuckets = 40;

/** Fixed shard capacities (per-thread storage is allocated once per
 *  thread at first touch; registration past these throws). */
constexpr size_t kMaxCounters = 96;
constexpr size_t kMaxGauges = 32;
constexpr size_t kMaxHistograms = 48;

struct CounterId
{
    uint32_t idx = UINT32_MAX;
    bool valid() const { return idx != UINT32_MAX; }
};
struct GaugeId
{
    uint32_t idx = UINT32_MAX;
    bool valid() const { return idx != UINT32_MAX; }
};
struct HistogramId
{
    uint32_t idx = UINT32_MAX;
    bool valid() const { return idx != UINT32_MAX; }
};

namespace detail {
/** -1 = not yet resolved (consult DSE_METRICS), 0 = off, 1 = on. */
extern std::atomic<int> metricsMode;
bool metricsEnabledSlow();
} // namespace detail

/** True when metric collection is on (env DSE_METRICS or setter). */
inline bool
metricsEnabled()
{
#if defined(DSE_OBS_DISABLED)
    return false;
#else
    const int mode = detail::metricsMode.load(std::memory_order_relaxed);
    if (mode >= 0)
        return mode != 0;
    return detail::metricsEnabledSlow();
#endif
}

/** Force collection on/off (tests, --metrics); overrides DSE_METRICS. */
void setMetricsEnabled(bool on);

/**
 * Snapshot the global registry and report it: JSON written to @p path
 * when non-empty, else a human-readable table to stdout. The shared
 * back end of the tools' `--metrics[=path]` flag.
 * @throws std::runtime_error when @p path cannot be written.
 */
void reportGlobalMetrics(const std::string &path);

/** One histogram's merged state in a snapshot. */
struct HistogramSnapshot
{
    std::string name;
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;  ///< 0 when count == 0
    uint64_t max = 0;
    std::array<uint64_t, kHistogramBuckets> buckets{};

    double mean() const
    {
        return count ? static_cast<double>(sum) /
                static_cast<double>(count)
                     : 0.0;
    }
    /** Inclusive upper bound of bucket i (UINT64_MAX for the last). */
    static uint64_t bucketBound(size_t i);
};

/**
 * A point-in-time merge of every thread's shard. Lookups are by name;
 * a name that was never registered reads as zero/absent so report
 * code need not care which subsystems ran.
 */
struct MetricsSnapshot
{
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, int64_t>> gauges;
    std::vector<HistogramSnapshot> histograms;

    uint64_t counter(const std::string &name) const;
    int64_t gauge(const std::string &name) const;
    const HistogramSnapshot *histogram(const std::string &name) const;

    /** Machine-readable JSON (stable key order; nonzero buckets only). */
    std::string toJson() const;
    /** Human-readable aligned tables (counters, gauges, histograms). */
    void printTable(std::ostream &os) const;
};

class MetricsRegistry
{
  public:
    MetricsRegistry();
    ~MetricsRegistry();

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /**
     * Register (or look up) a metric by name. Re-registering the same
     * name with the same kind returns the existing id; the same name
     * as a different kind, an invalid name (must match
     * `^[a-z0-9_.]+$`), or exhausting the fixed capacity throws.
     */
    CounterId counter(const std::string &name);
    GaugeId gauge(const std::string &name);
    HistogramId histogram(const std::string &name);

    /** Hot paths: no-ops unless metricsEnabled(). */
    void
    add(CounterId id, uint64_t n = 1)
    {
#if !defined(DSE_OBS_DISABLED)
        if (metricsEnabled() && id.valid())
            addSlow(id, n);
#else
        (void)id;
        (void)n;
#endif
    }

    void
    observe(HistogramId id, uint64_t value)
    {
#if !defined(DSE_OBS_DISABLED)
        if (metricsEnabled() && id.valid())
            observeSlow(id, value);
#else
        (void)id;
        (void)value;
#endif
    }

    /** Gauges are registry-global (last write wins), not sharded. */
    void
    setGauge(GaugeId id, int64_t value)
    {
#if !defined(DSE_OBS_DISABLED)
        if (metricsEnabled() && id.valid())
            setGaugeSlow(id, value);
#else
        (void)id;
        (void)value;
#endif
    }

    /** Merge every thread's shard into one consistent view. */
    MetricsSnapshot snapshot() const;

    /** Zero all values everywhere; registered names survive. */
    void reset();

    /** True iff @p name matches the metric naming scheme. */
    static bool validName(const std::string &name);

    /** The process-wide registry all built-in instrumentation uses. */
    static MetricsRegistry &global();

    struct Impl;  ///< internal (named publicly for the .cc helpers)

  private:
    void addSlow(CounterId id, uint64_t n);
    void observeSlow(HistogramId id, uint64_t value);
    void setGaugeSlow(GaugeId id, int64_t value);

    std::unique_ptr<Impl> impl_;
};

} // namespace obs
} // namespace dse

#endif // DSE_UTIL_METRICS_HH
