#include "util/trace.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include <unistd.h>

namespace dse {
namespace obs {

namespace detail {

std::atomic<int> traceMode{-1};

uint64_t
steadyNowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

bool
tracingEnabledSlow()
{
    // Resolve DSE_TRACE once: a set path arms the global collector
    // and schedules an exit-time flush.
    const char *path = std::getenv("DSE_TRACE");
    if (path && *path) {
        TraceCollector::global().start(path);
    } else {
        int expected = -1;
        traceMode.compare_exchange_strong(expected, 0,
                                          std::memory_order_relaxed);
    }
    return traceMode.load(std::memory_order_relaxed) != 0;
}

} // namespace detail

namespace {

struct Event
{
    const char *name;
    uint32_t tid;
    uint64_t startNs;
    uint64_t durNs;
};

struct ThreadBuf
{
    uint32_t tid = 0;
    std::vector<Event> events;
};

std::atomic<uint32_t> g_nextTid{1};
/** Cache of this thread's buffer, keyed by owning collector impl so a
 *  test-local collector never aliases the global one's buffer. */
struct TlsBuf
{
    const void *owner = nullptr;
    ThreadBuf *buf = nullptr;
};
thread_local std::vector<TlsBuf> t_bufs;

} // namespace

struct TraceCollector::Impl
{
    mutable std::mutex mu;  ///< guards bufs (list shape) and path
    std::vector<std::unique_ptr<ThreadBuf>> bufs;
    std::string path;
    std::atomic<uint64_t> dropped{0};
    std::atomic<bool> exitFlushArmed{false};
};

TraceCollector::TraceCollector() : impl_(std::make_unique<Impl>()) {}
TraceCollector::~TraceCollector() = default;

void
TraceCollector::start(const std::string &path)
{
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        impl_->path = path;
    }
    detail::traceMode.store(1, std::memory_order_relaxed);
    if (!impl_->exitFlushArmed.exchange(true))
        std::atexit([] { TraceCollector::global().write(); });
}

void
TraceCollector::stop()
{
    detail::traceMode.store(0, std::memory_order_relaxed);
}

void
TraceCollector::record(const char *name, uint64_t start_ns,
                       uint64_t dur_ns)
{
    ThreadBuf *buf = nullptr;
    for (const auto &e : t_bufs) {
        if (e.owner == impl_.get()) {
            buf = e.buf;
            break;
        }
    }
    if (!buf) {
        auto owned = std::make_unique<ThreadBuf>();
        owned->tid = g_nextTid.fetch_add(1, std::memory_order_relaxed);
        buf = owned.get();
        {
            std::lock_guard<std::mutex> lock(impl_->mu);
            impl_->bufs.push_back(std::move(owned));
        }
        t_bufs.push_back({impl_.get(), buf});
    }
    if (buf->events.size() >= kMaxEventsPerThread) {
        impl_->dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    buf->events.push_back({name, buf->tid, start_ns, dur_ns});
}

bool
TraceCollector::writeTo(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "obs: cannot write trace to %s\n",
                     path.c_str());
        return false;
    }
    std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", f);
    const int pid = static_cast<int>(::getpid());
    bool first = true;
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (const auto &buf : impl_->bufs) {
        for (const auto &e : buf->events) {
            std::fprintf(
                f,
                "%s\n{\"name\":\"%s\",\"cat\":\"dse\",\"ph\":\"X\","
                "\"pid\":%d,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f}",
                first ? "" : ",", e.name, pid, e.tid,
                static_cast<double>(e.startNs) / 1e3,
                static_cast<double>(e.durNs) / 1e3);
            first = false;
        }
    }
    std::fputs("\n]}\n", f);
    const bool ok = std::fflush(f) == 0 && !std::ferror(f);
    std::fclose(f);
    if (!ok)
        std::fprintf(stderr, "obs: short trace write to %s\n",
                     path.c_str());
    return ok;
}

bool
TraceCollector::write() const
{
    std::string path;
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        path = impl_->path;
    }
    if (path.empty())
        return false;
    return writeTo(path);
}

void
TraceCollector::clear()
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (auto &buf : impl_->bufs)
        buf->events.clear();
    impl_->dropped.store(0, std::memory_order_relaxed);
}

size_t
TraceCollector::eventCount() const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    size_t n = 0;
    for (const auto &buf : impl_->bufs)
        n += buf->events.size();
    return n;
}

uint64_t
TraceCollector::droppedCount() const
{
    return impl_->dropped.load(std::memory_order_relaxed);
}

TraceCollector &
TraceCollector::global()
{
    // Leaked deliberately: the atexit flush and worker threads may
    // outlive static destruction order.
    static TraceCollector *collector = new TraceCollector();
    return *collector;
}

} // namespace obs
} // namespace dse
