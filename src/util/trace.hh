/**
 * @file
 * dse::obs scoped tracing — RAII spans over the engine's coarse
 * stages (sim / encode / train-fold / predict-batch / journal-append)
 * that feed the latency histograms of the MetricsRegistry and,
 * optionally, a chrome://tracing-compatible JSON timeline.
 *
 * A TraceScope reads the steady clock twice (construction and
 * destruction) only when metrics or tracing are enabled; otherwise it
 * costs two relaxed loads, and with -DDSE_METRICS=OFF it compiles to
 * nothing. Span names are expected to be string literals (the
 * collector stores the pointer, not a copy).
 *
 * Tracing is armed by the DSE_TRACE environment variable (a file
 * path) or programmatically via TraceCollector::global().start().
 * Events accumulate in per-thread buffers — no contention on the
 * record path — and are merged when write() runs (explicitly, or at
 * process exit when DSE_TRACE armed it). write() must not run while
 * spans are still being recorded on other threads; quiesce first,
 * which every call site here does naturally (tools flush after the
 * study, tests after the pool drains).
 *
 * The emitted file loads directly in chrome://tracing or Perfetto:
 * one complete ("ph":"X") event per span, microsecond timestamps on
 * the process steady clock, one tid per recording thread.
 */

#ifndef DSE_UTIL_TRACE_HH
#define DSE_UTIL_TRACE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "util/metrics.hh"

namespace dse {
namespace obs {

namespace detail {
/** -1 = not yet resolved (consult DSE_TRACE), 0 = off, 1 = on. */
extern std::atomic<int> traceMode;
bool tracingEnabledSlow();
uint64_t steadyNowNs();
} // namespace detail

/** True when span events are being collected. */
inline bool
tracingEnabled()
{
#if defined(DSE_OBS_DISABLED)
    return false;
#else
    const int mode = detail::traceMode.load(std::memory_order_relaxed);
    if (mode >= 0)
        return mode != 0;
    return detail::tracingEnabledSlow();
#endif
}

class TraceCollector
{
  public:
    TraceCollector();
    ~TraceCollector();

    TraceCollector(const TraceCollector &) = delete;
    TraceCollector &operator=(const TraceCollector &) = delete;

    /** Arm collection and remember where write() should publish. */
    void start(const std::string &path);

    /** Disarm collection (buffered events are kept until clear()). */
    void stop();

    /** Record one complete span. @p name must be a string literal. */
    void record(const char *name, uint64_t start_ns, uint64_t dur_ns);

    /**
     * Merge every thread's buffer and write the chrome://tracing JSON
     * to @p path. Returns false (after logging to stderr) on I/O
     * failure instead of throwing: tracing must never abort a study.
     */
    bool writeTo(const std::string &path) const;

    /** writeTo() the start() path; no-op without one. */
    bool write() const;

    /** Drop all buffered events (tests). */
    void clear();

    /** Events recorded so far across all threads. */
    size_t eventCount() const;

    /** Events dropped because a thread hit its buffer cap. */
    uint64_t droppedCount() const;

    /** Per-thread buffer cap; beyond it events are counted, not kept. */
    static constexpr size_t kMaxEventsPerThread = 1u << 20;

    /** The process-wide collector DSE_TRACE arms. */
    static TraceCollector &global();

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * RAII span: times a scope, feeds the duration into @p hist, and
 * emits a trace event when tracing is armed. Does nothing (not even a
 * clock read) when both metrics and tracing are off.
 */
class TraceScope
{
  public:
    TraceScope(const char *name, HistogramId hist)
    {
#if !defined(DSE_OBS_DISABLED)
        name_ = name;
        hist_ = hist;
        metrics_ = metricsEnabled();
        trace_ = tracingEnabled();
        if (metrics_ || trace_)
            startNs_ = detail::steadyNowNs();
#else
        (void)name;
        (void)hist;
#endif
    }

    ~TraceScope()
    {
#if !defined(DSE_OBS_DISABLED)
        if (!metrics_ && !trace_)
            return;
        const uint64_t end = detail::steadyNowNs();
        const uint64_t dur = end - startNs_;
        if (metrics_)
            MetricsRegistry::global().observe(hist_, dur);
        if (trace_)
            TraceCollector::global().record(name_, startNs_, dur);
#endif
    }

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

  private:
#if !defined(DSE_OBS_DISABLED)
    const char *name_ = nullptr;
    HistogramId hist_;
    uint64_t startNs_ = 0;
    bool metrics_ = false;
    bool trace_ = false;
#endif
};

} // namespace obs
} // namespace dse

#endif // DSE_UTIL_TRACE_HH
