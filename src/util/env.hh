/**
 * @file
 * Environment-variable configuration knobs shared by the benchmark
 * harnesses. These let the same binary run a quick representative
 * sweep by default and a full paper-scale sweep on request
 * (DESIGN.md, "Per-experiment index").
 */

#ifndef DSE_UTIL_ENV_HH
#define DSE_UTIL_ENV_HH

#include <string>
#include <vector>

namespace dse {

/** Read an integer env var, or `fallback` when unset/unparsable. */
long long envInt(const char *name, long long fallback);

/** Read a floating-point env var, or `fallback` when unset/unparsable. */
double envDouble(const char *name, double fallback);

/** Read a boolean env var ("1"/"true"/"yes" are true). */
bool envBool(const char *name, bool fallback);

/** Read a comma-separated list env var, or `fallback` when unset. */
std::vector<std::string> envList(const char *name,
                                 const std::vector<std::string> &fallback);

} // namespace dse

#endif // DSE_UTIL_ENV_HH
