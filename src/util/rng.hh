/**
 * @file
 * Deterministic pseudo-random number generation for reproducible
 * experiments. All stochastic components in the library (trace
 * generation, sampling, network initialization, clustering) draw from
 * Rng instances seeded explicitly so that every experiment is exactly
 * repeatable across runs and platforms.
 */

#ifndef DSE_UTIL_RNG_HH
#define DSE_UTIL_RNG_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace dse {

/**
 * SplitMix64 sequence generator (Steele et al.). Primarily a seed
 * deriver: successive next() values from one stream make statistically
 * decorrelated seeds for independent Rng streams — e.g. one seed per
 * cross-validation fold, so folds can train concurrently yet produce
 * results bit-identical to serial execution at any thread count.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(uint64_t seed) : x_(seed) {}

    /** Next 64-bit value of the stream. */
    uint64_t next();

  private:
    uint64_t x_;
};

/**
 * xoshiro256** PRNG with a splitmix64 seeding sequence.
 *
 * Chosen over std::mt19937 because its output sequence is fully
 * specified (libstdc++'s distributions are not portable across
 * implementations), it is fast, and its state is small.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; any value (including 0) is valid. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). Requires n > 0. */
    uint64_t below(uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    int64_t range(int64_t lo, int64_t hi);

    /** Bernoulli draw with probability p of returning true. */
    bool chance(double p);

    /** Standard normal deviate (Box-Muller, no caching). */
    double gaussian();

    /** Normal deviate with the given mean and standard deviation. */
    double gaussian(double mean, double sd);

    /** Geometric-ish burst length in [1, max_len] with decay p. */
    int burstLength(double p, int max_len);

    /** Fisher-Yates shuffle of a vector in place. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            size_t j = static_cast<size_t>(below(i));
            std::swap(v[i - 1], v[j]);
        }
    }

    /**
     * Sample k distinct values from [0, n) uniformly at random.
     * Uses Floyd's algorithm; O(k) expected time for k << n, falls
     * back to shuffling when k is a large fraction of n.
     */
    std::vector<uint64_t> sampleWithoutReplacement(uint64_t n, uint64_t k);

    /** Draw an index from an (unnormalized) non-negative weight vector. */
    size_t weightedIndex(const std::vector<double> &weights);

    /** Fork a child generator with a decorrelated seed. */
    Rng fork();

  private:
    uint64_t s_[4];
};

} // namespace dse

#endif // DSE_UTIL_RNG_HH
