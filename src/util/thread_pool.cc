#include "util/thread_pool.hh"

#include <algorithm>
#include <memory>

#include "util/env.hh"
#include "util/metrics.hh"

namespace dse {
namespace util {

namespace {

/**
 * True on any thread currently inside a parallel region (a pool
 * worker, or a caller participating in its own parallelFor). Nested
 * parallelFor calls from such threads run inline: the outer loop
 * already owns the hardware, and recursing into the pool could
 * deadlock on submitMu_.
 */
thread_local bool t_in_parallel_region = false;

} // namespace

ThreadPool::ThreadPool(size_t threads)
{
    if (threads == 0)
        threads = configuredThreads();
    workers_.reserve(threads - 1);
    for (size_t i = 0; i + 1 < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

size_t
ThreadPool::configuredThreads()
{
    const long long v = envInt("DSE_THREADS", 0);
    if (v > 0)
        return static_cast<size_t>(v);
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

void
ThreadPool::runChunks(const std::function<void(size_t)> &fn, size_t end,
                      size_t chunk)
{
    for (;;) {
        const size_t start = next_.fetch_add(chunk);
        if (start >= end)
            return;
        const size_t stop = std::min(end, start + chunk);
        for (size_t i = start; i < stop; ++i) {
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mu_);
                if (!error_)
                    error_ = std::current_exception();
                next_.store(end);  // abandon remaining iterations
                return;
            }
        }
    }
}

void
ThreadPool::workerLoop()
{
    t_in_parallel_region = true;
    uint64_t seen = 0;
    for (;;) {
        const std::function<void(size_t)> *fn = nullptr;
        size_t end = 0, chunk = 1;
        {
            std::unique_lock<std::mutex> lock(mu_);
            workCv_.wait(lock, [&] {
                return stop_ || generation_ != seen;
            });
            if (stop_)
                return;
            seen = generation_;
            fn = fn_;
            end = end_;
            chunk = chunk_;
        }
        runChunks(*fn, end, chunk);
        {
            std::lock_guard<std::mutex> lock(mu_);
            --active_;
        }
        doneCv_.notify_all();
    }
}

void
ThreadPool::parallelFor(size_t begin, size_t end,
                        const std::function<void(size_t)> &fn)
{
    if (end <= begin)
        return;
    const size_t n = end - begin;

    // Inline fallbacks: single-threaded pool, trivially small range,
    // nested call, or another thread mid-submission. All produce the
    // same results as the parallel path.
    if (workers_.empty() || n == 1 || t_in_parallel_region ||
        !submitMu_.try_lock()) {
        for (size_t i = begin; i < end; ++i)
            fn(i);
        return;
    }
    std::lock_guard<std::mutex> submit(submitMu_, std::adopt_lock);

    {
        std::lock_guard<std::mutex> lock(mu_);
        fn_ = &fn;
        next_.store(begin);
        end_ = end;
        // ~4 chunks per thread: coarse enough to amortize the claim,
        // fine enough for the atomic counter to balance uneven work.
        chunk_ = std::max<size_t>(1, n / (4 * threadCount()));
        error_ = nullptr;
        active_ = workers_.size();
        ++generation_;
    }
    workCv_.notify_all();

    t_in_parallel_region = true;
    runChunks(fn, end, chunk_);
    t_in_parallel_region = false;

    std::unique_lock<std::mutex> lock(mu_);
    doneCv_.wait(lock, [&] { return active_ == 0; });
    fn_ = nullptr;
    if (error_)
        std::rethrow_exception(error_);
}

namespace {

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;

} // namespace

namespace {

/** Record the global pool's width as the `pool.threads` gauge. */
void
recordPoolWidth(const ThreadPool &pool)
{
    auto &registry = obs::MetricsRegistry::global();
    static const obs::GaugeId gauge = registry.gauge("pool.threads");
    registry.setGauge(gauge,
                      static_cast<int64_t>(pool.threadCount()));
}

} // namespace

ThreadPool &
ThreadPool::global()
{
    std::lock_guard<std::mutex> lock(g_pool_mu);
    if (!g_pool) {
        g_pool = std::make_unique<ThreadPool>();
        recordPoolWidth(*g_pool);
    }
    return *g_pool;
}

void
ThreadPool::resetGlobal(size_t threads)
{
    std::lock_guard<std::mutex> lock(g_pool_mu);
    g_pool = std::make_unique<ThreadPool>(threads);
    recordPoolWidth(*g_pool);
}

} // namespace util
} // namespace dse
