/**
 * @file
 * Fixed-size worker pool for the library's embarrassingly parallel
 * loops (batch simulation, per-fold ensemble training, design-space
 * prediction).
 *
 * Design goals, in order:
 *
 *  1. **Determinism.** parallelFor(i) writes results into slot i of a
 *     caller-owned vector; the loop body never shares mutable state
 *     between iterations, so results are bit-identical at any thread
 *     count (including 1). The pool only schedules — it never
 *     reorders observable effects.
 *  2. **Simplicity over peak throughput.** Work is handed out as
 *     contiguous index chunks from a single atomic counter
 *     ("work-stealing-lite"): idle workers grab the next chunk, so
 *     uneven iteration costs self-balance without per-worker deques.
 *  3. **Graceful degradation.** With one configured thread, a tiny
 *     range, or a nested/concurrent call, the loop runs inline on the
 *     calling thread — same results, no deadlock.
 *
 * The worker count comes from DSE_THREADS when set (>0), else
 * std::thread::hardware_concurrency(). The calling thread always
 * participates, so a pool of size N spawns N-1 workers.
 */

#ifndef DSE_UTIL_THREAD_POOL_HH
#define DSE_UTIL_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dse {
namespace util {

class ThreadPool
{
  public:
    /**
     * @param threads total thread count including the caller;
     *        0 = configuredThreads() (DSE_THREADS or hardware)
     */
    explicit ThreadPool(size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total threads that execute a loop (workers + calling thread). */
    size_t threadCount() const { return workers_.size() + 1; }

    /**
     * Run fn(i) for every i in [begin, end). Blocks until all
     * iterations complete; rethrows the first exception any iteration
     * threw. Iterations must not share mutable state except through
     * their own synchronization. Nested or concurrent calls fall back
     * to inline serial execution.
     */
    void parallelFor(size_t begin, size_t end,
                     const std::function<void(size_t)> &fn);

    /** parallelFor producing a result vector: out[i] = fn(i). */
    template <typename T>
    std::vector<T>
    parallelMap(size_t n, const std::function<T(size_t)> &fn)
    {
        std::vector<T> out(n);
        parallelFor(0, n, [&](size_t i) { out[i] = fn(i); });
        return out;
    }

    /** DSE_THREADS when set (>0), else hardware concurrency (>=1). */
    static size_t configuredThreads();

    /** The process-wide pool (created on first use). */
    static ThreadPool &global();

    /**
     * Replace the global pool with one of the given size (0 = re-read
     * the environment). Test/bench hook: callers must ensure no
     * parallel work is in flight.
     */
    static void resetGlobal(size_t threads = 0);

  private:
    void workerLoop();
    void runChunks(const std::function<void(size_t)> &fn, size_t end,
                   size_t chunk);

    std::mutex mu_;
    std::condition_variable workCv_;
    std::condition_variable doneCv_;
    /** Serializes submissions; concurrent callers run inline. */
    std::mutex submitMu_;

    // Current job, written under mu_ before workers are woken.
    const std::function<void(size_t)> *fn_ = nullptr;
    std::atomic<size_t> next_{0};
    size_t end_ = 0;
    size_t chunk_ = 1;
    uint64_t generation_ = 0;
    size_t active_ = 0;
    bool stop_ = false;
    std::exception_ptr error_;

    std::vector<std::thread> workers_;
};

} // namespace util
} // namespace dse

#endif // DSE_UTIL_THREAD_POOL_HH
