/**
 * @file
 * Small statistics helpers used throughout the library: single-pass
 * (Welford) accumulation of mean/variance, batch summaries, and the
 * percentage-error metric the paper reports (error as a percentage of
 * the true simulation result, Section 3.3).
 */

#ifndef DSE_UTIL_STATS_HH
#define DSE_UTIL_STATS_HH

#include <cstddef>
#include <vector>

namespace dse {

/**
 * Numerically stable single-pass accumulator for mean and standard
 * deviation (Welford's algorithm).
 */
class OnlineStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Merge another accumulator into this one (Chan et al.). */
    void merge(const OnlineStats &other);

    /** Number of observations so far. */
    size_t count() const { return n_; }

    /** Sample mean; 0 when empty. */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Unbiased sample variance; 0 with fewer than two observations. */
    double variance() const;

    /** Square root of variance(). */
    double stddev() const;

    /** Smallest observation; +inf when empty. */
    double min() const { return min_; }

    /** Largest observation; -inf when empty. */
    double max() const { return max_; }

  private:
    size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 1.0 / 0.0;
    double max_ = -1.0 / 0.0;
};

/** Summary of a batch of observations. */
struct Summary
{
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
    size_t count = 0;
};

/** Summarize a vector of observations. */
Summary summarize(const std::vector<double> &xs);

/**
 * Percentage error of a prediction with respect to the true value:
 * 100 * |predicted - actual| / |actual|.
 *
 * The paper reports all model errors this way (erring by one second
 * matters if the run takes two seconds, not if it takes an hour).
 * Returns 0 for actual == 0 && predicted == 0 and caps the value at
 * `cap` to keep one degenerate point from dominating a mean.
 */
double percentageError(double predicted, double actual, double cap = 1000.0);

/** Arithmetic mean; 0 for an empty vector. */
double mean(const std::vector<double> &xs);

/** Unbiased sample standard deviation; 0 with fewer than two points. */
double stddev(const std::vector<double> &xs);

/** Pearson correlation of two equal-length vectors; 0 if degenerate. */
double pearson(const std::vector<double> &xs, const std::vector<double> &ys);

/**
 * Linear interpolation of y at x over a piecewise-linear curve given
 * by sorted xs. Clamps outside the domain.
 */
double interpolate(const std::vector<double> &xs, const std::vector<double> &ys,
                   double x);

} // namespace dse

#endif // DSE_UTIL_STATS_HH
