/**
 * @file
 * Basic-block vectors (BBVs) for SimPoint [23].
 *
 * A trace is divided into fixed-length intervals; each interval's BBV
 * counts how many instructions it executed in each static basic
 * block, normalized to sum to one. Intervals from the same program
 * phase have nearly identical BBVs — the structure SimPoint's
 * clustering exploits. Following the SimPoint tool, BBVs are randomly
 * projected to a low dimension before clustering.
 */

#ifndef DSE_SIMPOINT_BBV_HH
#define DSE_SIMPOINT_BBV_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "workload/trace.hh"

namespace dse {
namespace simpoint {

/** Default interval length in instructions (scaled to our traces as
 *  the paper scaled 100M -> 10M for MinneSPEC). */
constexpr size_t kDefaultIntervalLength = 2048;

/**
 * Compute per-interval normalized basic-block vectors.
 *
 * @param trace the dynamic trace
 * @param interval_length instructions per interval; the trailing
 *        partial interval (if any) is dropped
 * @return one normalized vector of numBlocks entries per interval
 */
std::vector<std::vector<double>> computeBbvs(const workload::Trace &trace,
                                             size_t interval_length);

/**
 * Random linear projection of vectors to `dims` dimensions (SimPoint
 * projects BBVs to ~15 dimensions before clustering).
 *
 * @param vectors input vectors (all the same width)
 * @param dims output dimensionality
 * @param seed projection matrix seed (deterministic)
 */
std::vector<std::vector<double>> randomProject(
    const std::vector<std::vector<double>> &vectors, size_t dims,
    uint64_t seed);

} // namespace simpoint
} // namespace dse

#endif // DSE_SIMPOINT_BBV_HH
