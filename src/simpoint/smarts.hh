/**
 * @file
 * SMARTS-style systematic sampling (Wunderlich et al. [27]) — the
 * other partial-simulation technique the paper names as a natural
 * companion ("combining our approach with the SMARTS framework is
 * another interesting future work", Chapter 2).
 *
 * Where SimPoint picks a few *representative* intervals by program
 * phase, SMARTS simulates many *tiny* units at a fixed systematic
 * cadence with functional warming in between, and aggregates them.
 * Both produce a cheap, noisy estimate of whole-run performance that
 * an ANN ensemble can train on.
 */

#ifndef DSE_SIMPOINT_SMARTS_HH
#define DSE_SIMPOINT_SMARTS_HH

#include <cstddef>

#include "sim/config.hh"
#include "workload/trace.hh"

namespace dse {
namespace simpoint {

/** SMARTS sampling parameters. */
struct SmartsOptions
{
    /** Detailed-simulation unit size in instructions. */
    size_t unitInstructions = 512;
    /** Detail every k-th unit (sampling cadence). */
    size_t cadence = 8;
    /** First detailed unit (offset into the cadence). */
    size_t phase = 0;
};

/** A SMARTS estimate and its detailed-instruction cost. */
struct SmartsEstimate
{
    double ipc = 0.0;
    size_t instructionsSimulated = 0;  ///< detailed instructions only
    size_t unitsSampled = 0;
};

/**
 * Estimate a configuration's IPC by detailed simulation of every
 * k-th unit (with warmed caches/predictor, mirroring SMARTS'
 * continuous functional warming), aggregating per-unit CPI.
 */
SmartsEstimate smartsEstimateIpc(const workload::Trace &trace,
                                 const sim::MachineConfig &cfg,
                                 const SmartsOptions &opts = {});

} // namespace simpoint
} // namespace dse

#endif // DSE_SIMPOINT_SMARTS_HH
