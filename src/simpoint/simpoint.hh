/**
 * @file
 * SimPoint [23]: pick representative simulation intervals.
 *
 * Pipeline: per-interval BBVs -> random projection -> k-means for
 * k = 1..maxK -> choose the smallest k whose BIC reaches a fraction
 * of the best BIC -> the representative of each cluster is the
 * interval nearest its centroid, weighted by cluster population.
 *
 * A configuration's performance is then *estimated* by simulating
 * only the representative intervals in detail (with functional
 * warmup of prior history) and combining their IPCs by weight —
 * noisy but far cheaper, exactly the noise/speed trade the paper
 * studies in Section 5.3.
 */

#ifndef DSE_SIMPOINT_SIMPOINT_HH
#define DSE_SIMPOINT_SIMPOINT_HH

#include <cstdint>
#include <vector>

#include "sim/config.hh"
#include "workload/trace.hh"

namespace dse {
namespace simpoint {

/** The chosen simulation points for one application. */
struct SimPoints
{
    size_t intervalLength = 0;
    int k = 0;                       ///< clusters chosen by BIC
    std::vector<size_t> intervals;   ///< representative interval index
    std::vector<double> weights;     ///< cluster population fractions

    /** Instructions simulated in detail per estimate. */
    size_t
    detailedInstructions() const
    {
        return intervals.size() * intervalLength;
    }
};

/** Selection knobs. */
struct SimPointOptions
{
    size_t intervalLength = 2048;
    int maxK = 10;
    /**
     * Smallest cluster count considered. On short traces the BIC of
     * a 30-odd-interval clustering can collapse to one cluster whose
     * single representative carries a large, configuration-dependent
     * bias; a small floor keeps several program regions represented.
     */
    int minK = 3;
    size_t projectedDims = 15;
    /** Accept the smallest k scoring >= this fraction of the best BIC. */
    double bicThreshold = 0.9;
    uint64_t seed = 42;
};

/** Run the SimPoint selection pipeline on a trace. */
SimPoints pickSimPoints(const workload::Trace &trace,
                        const SimPointOptions &opts = {});

/** A SimPoint performance estimate and its cost. */
struct SimPointEstimate
{
    double ipc = 0.0;
    size_t instructionsSimulated = 0;  ///< detailed instructions only
};

/**
 * Estimate a configuration's IPC from its simulation points: each
 * representative interval is simulated in detail after functional
 * warmup of all prior history, and the per-interval IPCs combine by
 * cluster weight.
 */
SimPointEstimate estimateIpc(const workload::Trace &trace,
                             const sim::MachineConfig &cfg,
                             const SimPoints &points);

} // namespace simpoint
} // namespace dse

#endif // DSE_SIMPOINT_SIMPOINT_HH
