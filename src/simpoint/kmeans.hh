/**
 * @file
 * k-means clustering with k-means++ seeding and the Bayesian
 * Information Criterion (BIC) score SimPoint uses to choose k.
 */

#ifndef DSE_SIMPOINT_KMEANS_HH
#define DSE_SIMPOINT_KMEANS_HH

#include <cstdint>
#include <vector>

namespace dse {
namespace simpoint {

/** Result of one k-means run. */
struct KMeansResult
{
    std::vector<int> assignment;             ///< cluster per point
    std::vector<std::vector<double>> centroids;
    double inertia = 0.0;                    ///< sum of squared distances
    int k = 0;
};

/**
 * Lloyd's algorithm with k-means++ initialization.
 *
 * @param points input points (same dimensionality)
 * @param k number of clusters (clamped to the number of points)
 * @param seed deterministic initialization
 * @param max_iters Lloyd iteration cap
 */
KMeansResult kmeans(const std::vector<std::vector<double>> &points, int k,
                    uint64_t seed, int max_iters = 100);

/**
 * BIC score of a clustering under the identical-spherical-Gaussian
 * model (Pelleg & Moore, as used by SimPoint). Higher is better.
 */
double bicScore(const std::vector<std::vector<double>> &points,
                const KMeansResult &clustering);

} // namespace simpoint
} // namespace dse

#endif // DSE_SIMPOINT_KMEANS_HH
