#include "simpoint/bbv.hh"

#include <stdexcept>

#include "util/rng.hh"

namespace dse {
namespace simpoint {

std::vector<std::vector<double>>
computeBbvs(const workload::Trace &trace, size_t interval_length)
{
    if (interval_length == 0)
        throw std::invalid_argument("interval length must be positive");
    const size_t intervals = trace.size() / interval_length;
    std::vector<std::vector<double>> bbvs(
        intervals, std::vector<double>(trace.numBlocks, 0.0));

    for (size_t i = 0; i < intervals * interval_length; ++i) {
        const auto &op = trace.ops[i];
        bbvs[i / interval_length][op.block] += 1.0;
    }
    for (auto &v : bbvs) {
        for (double &x : v)
            x /= static_cast<double>(interval_length);
    }
    return bbvs;
}

std::vector<std::vector<double>>
randomProject(const std::vector<std::vector<double>> &vectors, size_t dims,
              uint64_t seed)
{
    if (vectors.empty())
        return {};
    const size_t width = vectors.front().size();
    Rng rng(seed);

    // Projection matrix with entries uniform on [-1, 1] (as in the
    // SimPoint tool).
    std::vector<double> proj(width * dims);
    for (double &p : proj)
        p = rng.uniform(-1.0, 1.0);

    std::vector<std::vector<double>> out(
        vectors.size(), std::vector<double>(dims, 0.0));
    for (size_t v = 0; v < vectors.size(); ++v) {
        if (vectors[v].size() != width)
            throw std::invalid_argument("inconsistent vector widths");
        for (size_t i = 0; i < width; ++i) {
            const double x = vectors[v][i];
            if (x == 0.0)
                continue;
            for (size_t d = 0; d < dims; ++d)
                out[v][d] += x * proj[i * dims + d];
        }
    }
    return out;
}

} // namespace simpoint
} // namespace dse
