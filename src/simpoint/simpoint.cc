#include "simpoint/simpoint.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "sim/core.hh"
#include "simpoint/bbv.hh"
#include "simpoint/kmeans.hh"

namespace dse {
namespace simpoint {

SimPoints
pickSimPoints(const workload::Trace &trace, const SimPointOptions &opts)
{
    const auto bbvs = computeBbvs(trace, opts.intervalLength);
    if (bbvs.size() < 2)
        throw std::invalid_argument("trace too short for SimPoint");
    const auto projected =
        randomProject(bbvs, opts.projectedDims, opts.seed);

    // Cluster for k = 1..maxK and score with BIC; accept the smallest
    // k reaching bicThreshold of the best score (the SimPoint rule).
    const int max_k = std::min<int>(opts.maxK,
                                    static_cast<int>(projected.size()));
    const int min_k = std::max(1, std::min(opts.minK, max_k));
    std::vector<KMeansResult> runs;
    std::vector<double> scores;
    for (int k = min_k; k <= max_k; ++k) {
        runs.push_back(kmeans(projected, k, opts.seed + k));
        scores.push_back(bicScore(projected, runs.back()));
    }
    // SimPoint's rule: normalize scores to their observed range and
    // accept the smallest k reaching bicThreshold of that range.
    const double lo = *std::min_element(scores.begin(), scores.end());
    const double hi = *std::max_element(scores.begin(), scores.end());
    const double target = lo + opts.bicThreshold * (hi - lo);
    size_t chosen = runs.size() - 1;
    for (size_t i = 0; i < runs.size(); ++i) {
        if (scores[i] >= target) {
            chosen = i;
            break;
        }
    }
    const KMeansResult &clustering = runs[chosen];

    // Representative of each cluster: interval nearest the centroid.
    SimPoints out;
    out.intervalLength = opts.intervalLength;
    out.k = clustering.k;
    std::vector<size_t> counts(static_cast<size_t>(clustering.k), 0);
    std::vector<double> best_dist(
        static_cast<size_t>(clustering.k),
        std::numeric_limits<double>::infinity());
    std::vector<size_t> representative(
        static_cast<size_t>(clustering.k), 0);
    for (size_t i = 0; i < projected.size(); ++i) {
        const int c = clustering.assignment[i];
        ++counts[static_cast<size_t>(c)];
        double d = 0.0;
        for (size_t j = 0; j < projected[i].size(); ++j) {
            const double diff =
                projected[i][j] - clustering.centroids[c][j];
            d += diff * diff;
        }
        if (d < best_dist[static_cast<size_t>(c)]) {
            best_dist[static_cast<size_t>(c)] = d;
            representative[static_cast<size_t>(c)] = i;
        }
    }
    for (int c = 0; c < clustering.k; ++c) {
        if (counts[static_cast<size_t>(c)] == 0)
            continue;
        out.intervals.push_back(representative[static_cast<size_t>(c)]);
        out.weights.push_back(
            static_cast<double>(counts[static_cast<size_t>(c)]) /
            static_cast<double>(projected.size()));
    }
    return out;
}

SimPointEstimate
estimateIpc(const workload::Trace &trace, const sim::MachineConfig &cfg,
            const SimPoints &points)
{
    if (points.intervals.empty())
        throw std::invalid_argument("no simulation points");

    // Weighted harmonic-style combination: weights apply to CPI
    // (cycles per instruction accumulate linearly over intervals).
    double weighted_cpi = 0.0;
    double total_weight = 0.0;
    SimPointEstimate est;
    for (size_t i = 0; i < points.intervals.size(); ++i) {
        sim::SimOptions opts;
        opts.begin = points.intervals[i] * points.intervalLength;
        opts.end = opts.begin + points.intervalLength;
        opts.warmCaches = true;  // same steady state as full runs
        // Detailed warming: half an interval of pre-roll drains the
        // pipeline-fill transient out of the measurement.
        opts.detailedWarmup = points.intervalLength / 2;
        const auto result = sim::simulate(trace, cfg, opts);
        weighted_cpi += points.weights[i] / std::max(result.ipc, 1e-9);
        total_weight += points.weights[i];
        est.instructionsSimulated +=
            points.intervalLength + opts.detailedWarmup;
    }
    est.ipc = total_weight / weighted_cpi;
    return est;
}

} // namespace simpoint
} // namespace dse
