#include "simpoint/kmeans.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/rng.hh"

namespace dse {
namespace simpoint {

namespace {

double
sqDist(const std::vector<double> &a, const std::vector<double> &b)
{
    double d = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        const double diff = a[i] - b[i];
        d += diff * diff;
    }
    return d;
}

} // namespace

KMeansResult
kmeans(const std::vector<std::vector<double>> &points, int k, uint64_t seed,
       int max_iters)
{
    if (points.empty())
        throw std::invalid_argument("kmeans needs points");
    k = std::min<int>(k, static_cast<int>(points.size()));
    if (k < 1)
        throw std::invalid_argument("kmeans needs k >= 1");

    Rng rng(seed);
    const size_t n = points.size();
    const size_t dims = points.front().size();

    // k-means++ seeding.
    std::vector<std::vector<double>> centroids;
    centroids.push_back(points[rng.below(n)]);
    std::vector<double> dist2(n);
    while (static_cast<int>(centroids.size()) < k) {
        double total = 0.0;
        for (size_t i = 0; i < n; ++i) {
            double best = std::numeric_limits<double>::infinity();
            for (const auto &c : centroids)
                best = std::min(best, sqDist(points[i], c));
            dist2[i] = best;
            total += best;
        }
        if (total <= 0.0) {
            // All remaining points coincide with centroids.
            centroids.push_back(points[rng.below(n)]);
            continue;
        }
        double r = rng.uniform() * total;
        size_t chosen = n - 1;
        for (size_t i = 0; i < n; ++i) {
            r -= dist2[i];
            if (r < 0.0) {
                chosen = i;
                break;
            }
        }
        centroids.push_back(points[chosen]);
    }

    std::vector<int> assignment(n, 0);
    for (int iter = 0; iter < max_iters; ++iter) {
        bool changed = false;
        // Assign.
        for (size_t i = 0; i < n; ++i) {
            int best_c = 0;
            double best = std::numeric_limits<double>::infinity();
            for (int c = 0; c < k; ++c) {
                const double d = sqDist(points[i], centroids[c]);
                if (d < best) {
                    best = d;
                    best_c = c;
                }
            }
            if (assignment[i] != best_c) {
                assignment[i] = best_c;
                changed = true;
            }
        }
        if (!changed && iter > 0)
            break;
        // Update.
        std::vector<std::vector<double>> sums(
            k, std::vector<double>(dims, 0.0));
        std::vector<size_t> counts(k, 0);
        for (size_t i = 0; i < n; ++i) {
            for (size_t d = 0; d < dims; ++d)
                sums[assignment[i]][d] += points[i][d];
            ++counts[assignment[i]];
        }
        for (int c = 0; c < k; ++c) {
            if (counts[c] == 0) {
                // Re-seed an empty cluster at a random point.
                centroids[c] = points[rng.below(n)];
                continue;
            }
            for (size_t d = 0; d < dims; ++d)
                centroids[c][d] = sums[c][d] /
                    static_cast<double>(counts[c]);
        }
    }

    KMeansResult result;
    result.k = k;
    result.assignment = std::move(assignment);
    result.centroids = std::move(centroids);
    result.inertia = 0.0;
    for (size_t i = 0; i < n; ++i) {
        result.inertia += sqDist(points[i],
                                 result.centroids[result.assignment[i]]);
    }
    return result;
}

double
bicScore(const std::vector<std::vector<double>> &points,
         const KMeansResult &clustering)
{
    const double r = static_cast<double>(points.size());
    const double dims = static_cast<double>(points.front().size());
    const int k = clustering.k;

    if (points.size() <= static_cast<size_t>(k))
        return -std::numeric_limits<double>::infinity();

    // Identical spherical Gaussians (Pelleg & Moore): ML variance
    // estimate over all clusters.
    const double variance = std::max(
        clustering.inertia / (r - static_cast<double>(k)), 1e-12);

    std::vector<size_t> counts(static_cast<size_t>(k), 0);
    for (int a : clustering.assignment)
        ++counts[static_cast<size_t>(a)];

    double loglik = 0.0;
    for (int c = 0; c < k; ++c) {
        const double rc = static_cast<double>(counts[static_cast<size_t>(c)]);
        if (rc <= 0.0)
            continue;
        loglik += rc * std::log(rc / r)
            - rc * dims / 2.0 * std::log(2.0 * M_PI * variance)
            - (rc - 1.0) / 2.0;
    }
    const double params = static_cast<double>(k) * (dims + 1.0);
    return loglik - params / 2.0 * std::log(r);
}

} // namespace simpoint
} // namespace dse
