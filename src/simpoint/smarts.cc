#include "simpoint/smarts.hh"

#include <algorithm>
#include <stdexcept>

#include "sim/core.hh"

namespace dse {
namespace simpoint {

SmartsEstimate
smartsEstimateIpc(const workload::Trace &trace,
                  const sim::MachineConfig &cfg,
                  const SmartsOptions &opts)
{
    if (opts.unitInstructions == 0 || opts.cadence == 0)
        throw std::invalid_argument("SMARTS needs positive unit/cadence");
    const size_t n_units = trace.size() / opts.unitInstructions;
    if (n_units == 0)
        throw std::invalid_argument("trace shorter than one unit");

    SmartsEstimate est;
    double cpi_sum = 0.0;
    for (size_t u = opts.phase % opts.cadence; u < n_units;
         u += opts.cadence) {
        sim::SimOptions sim_opts;
        sim_opts.begin = u * opts.unitInstructions;
        sim_opts.end = sim_opts.begin + opts.unitInstructions;
        sim_opts.warmCaches = true;  // continuous functional warming
        const auto result = sim::simulate(trace, cfg, sim_opts);
        cpi_sum += 1.0 / std::max(result.ipc, 1e-9);
        est.instructionsSimulated += opts.unitInstructions;
        ++est.unitsSampled;
    }
    if (est.unitsSampled == 0)
        throw std::invalid_argument("cadence sampled no units");
    est.ipc = static_cast<double>(est.unitsSampled) / cpi_sum;
    return est;
}

} // namespace simpoint
} // namespace dse
