/**
 * @file
 * Plackett-Burman fractional factorial designs with foldover, as used
 * by Yi et al. [29] and by the paper (Chapter 4) to verify that the
 * parameters each study varies are the significant ones.
 *
 * A PB design estimates the main effect of N two-level factors with
 * only ~N+1 runs (2(N+1) with foldover, which cancels two-factor
 * aliasing into the main effects). The result is a *relative ranking*
 * of parameter importance, not absolute effect sizes.
 */

#ifndef DSE_DOE_PLACKETT_BURMAN_HH
#define DSE_DOE_PLACKETT_BURMAN_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace dse {
namespace doe {

/**
 * PB design matrix for up to `factors` two-level factors. Rows are
 * runs; entries are +1 (high) or -1 (low). The number of rows is the
 * smallest supported design size (12, 20, 24 or 28) that fits the
 * factor count; with foldover the negated matrix is appended.
 *
 * @throws std::invalid_argument when factors exceeds the largest
 *         supported design (27)
 */
std::vector<std::vector<int8_t>> pbDesign(int factors,
                                          bool foldover = true);

/** Outcome of a PB screening experiment. */
struct PbResult
{
    /** Signed main effect per factor (mean(high) - mean(low)). */
    std::vector<double> effects;
    /** Factor indices sorted by decreasing |effect|. */
    std::vector<size_t> ranking;
};

/**
 * Run a PB screening experiment.
 *
 * @param factors number of two-level factors
 * @param evaluate maps a +1/-1 setting vector to a response (e.g.
 *        IPC from a simulation at high/low parameter values)
 * @param foldover use the foldover design (recommended)
 */
PbResult pbScreen(int factors,
                  const std::function<double(
                      const std::vector<int8_t> &)> &evaluate,
                  bool foldover = true);

} // namespace doe
} // namespace dse

#endif // DSE_DOE_PLACKETT_BURMAN_HH
