#include "doe/plackett_burman.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dse {
namespace doe {

namespace {

/** First rows of the standard PB designs (Plackett & Burman 1946). */
const char *kGenerator12 = "++-+++---+-";
const char *kGenerator20 = "++--++++-+-+----++-";
const char *kGenerator24 = "+++++-+-++--++--+-+----";
const char *kGenerator28 = nullptr;  // 28 is not cyclic; unsupported

/** Build an N-run cyclic PB design from its generator row. */
std::vector<std::vector<int8_t>>
cyclicDesign(const char *generator)
{
    const size_t width = std::string(generator).size();
    std::vector<std::vector<int8_t>> rows;
    for (size_t r = 0; r < width; ++r) {
        std::vector<int8_t> row(width);
        for (size_t c = 0; c < width; ++c) {
            const char ch = generator[(c + width - r) % width];
            row[c] = ch == '+' ? 1 : -1;
        }
        rows.push_back(std::move(row));
    }
    rows.emplace_back(width, static_cast<int8_t>(-1));  // all-low run
    return rows;
}

} // namespace

std::vector<std::vector<int8_t>>
pbDesign(int factors, bool foldover)
{
    if (factors < 1)
        throw std::invalid_argument("need at least one factor");

    const char *generator = nullptr;
    if (factors <= 11)
        generator = kGenerator12;
    else if (factors <= 19)
        generator = kGenerator20;
    else if (factors <= 23)
        generator = kGenerator24;
    else
        (void)kGenerator28;
    if (!generator)
        throw std::invalid_argument("PB designs supported up to 23 factors");

    auto design = cyclicDesign(generator);
    // Truncate columns to the requested factor count.
    for (auto &row : design)
        row.resize(static_cast<size_t>(factors));

    if (foldover) {
        const size_t base = design.size();
        for (size_t r = 0; r < base; ++r) {
            std::vector<int8_t> negated(design[r].size());
            for (size_t c = 0; c < negated.size(); ++c)
                negated[c] = static_cast<int8_t>(-design[r][c]);
            design.push_back(std::move(negated));
        }
    }
    return design;
}

PbResult
pbScreen(int factors,
         const std::function<double(const std::vector<int8_t> &)> &evaluate,
         bool foldover)
{
    if (!evaluate)
        throw std::invalid_argument("pbScreen needs an evaluator");
    const auto design = pbDesign(factors, foldover);

    std::vector<double> responses;
    responses.reserve(design.size());
    for (const auto &row : design)
        responses.push_back(evaluate(row));

    PbResult result;
    result.effects.assign(static_cast<size_t>(factors), 0.0);
    for (int f = 0; f < factors; ++f) {
        double high = 0.0, low = 0.0;
        size_t nh = 0, nl = 0;
        for (size_t r = 0; r < design.size(); ++r) {
            if (design[r][static_cast<size_t>(f)] > 0) {
                high += responses[r];
                ++nh;
            } else {
                low += responses[r];
                ++nl;
            }
        }
        result.effects[static_cast<size_t>(f)] =
            (nh ? high / static_cast<double>(nh) : 0.0) -
            (nl ? low / static_cast<double>(nl) : 0.0);
    }

    result.ranking.resize(static_cast<size_t>(factors));
    for (size_t i = 0; i < result.ranking.size(); ++i)
        result.ranking[i] = i;
    std::sort(result.ranking.begin(), result.ranking.end(),
              [&](size_t a, size_t b) {
                  return std::abs(result.effects[a]) >
                      std::abs(result.effects[b]);
              });
    return result;
}

} // namespace doe
} // namespace dse
