file(REMOVE_RECURSE
  "CMakeFiles/fig_5_4_simpoint_curves.dir/fig_5_4_simpoint_curves.cc.o"
  "CMakeFiles/fig_5_4_simpoint_curves.dir/fig_5_4_simpoint_curves.cc.o.d"
  "fig_5_4_simpoint_curves"
  "fig_5_4_simpoint_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_5_4_simpoint_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
