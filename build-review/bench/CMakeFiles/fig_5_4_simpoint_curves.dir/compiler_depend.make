# Empty compiler generated dependencies file for fig_5_4_simpoint_curves.
# This may be replaced when dependencies are built.
