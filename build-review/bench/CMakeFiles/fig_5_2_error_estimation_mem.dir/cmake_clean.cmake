file(REMOVE_RECURSE
  "CMakeFiles/fig_5_2_error_estimation_mem.dir/fig_5_2_error_estimation_mem.cc.o"
  "CMakeFiles/fig_5_2_error_estimation_mem.dir/fig_5_2_error_estimation_mem.cc.o.d"
  "fig_5_2_error_estimation_mem"
  "fig_5_2_error_estimation_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_5_2_error_estimation_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
