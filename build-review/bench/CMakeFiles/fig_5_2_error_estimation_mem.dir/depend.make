# Empty dependencies file for fig_5_2_error_estimation_mem.
# This may be replaced when dependencies are built.
