# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig_5_2_error_estimation_mem.
