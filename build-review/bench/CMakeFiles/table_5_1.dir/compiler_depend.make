# Empty compiler generated dependencies file for table_5_1.
# This may be replaced when dependencies are built.
