file(REMOVE_RECURSE
  "CMakeFiles/table_5_1.dir/table_5_1.cc.o"
  "CMakeFiles/table_5_1.dir/table_5_1.cc.o.d"
  "table_5_1"
  "table_5_1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_5_1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
