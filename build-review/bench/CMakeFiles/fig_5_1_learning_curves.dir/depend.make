# Empty dependencies file for fig_5_1_learning_curves.
# This may be replaced when dependencies are built.
