file(REMOVE_RECURSE
  "CMakeFiles/ext_active_learning.dir/ext_active_learning.cc.o"
  "CMakeFiles/ext_active_learning.dir/ext_active_learning.cc.o.d"
  "ext_active_learning"
  "ext_active_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_active_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
