file(REMOVE_RECURSE
  "CMakeFiles/fig_5_7_gain_breakdown.dir/fig_5_7_gain_breakdown.cc.o"
  "CMakeFiles/fig_5_7_gain_breakdown.dir/fig_5_7_gain_breakdown.cc.o.d"
  "fig_5_7_gain_breakdown"
  "fig_5_7_gain_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_5_7_gain_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
