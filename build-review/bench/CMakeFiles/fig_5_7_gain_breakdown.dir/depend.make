# Empty dependencies file for fig_5_7_gain_breakdown.
# This may be replaced when dependencies are built.
