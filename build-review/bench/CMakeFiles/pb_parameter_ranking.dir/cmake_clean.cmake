file(REMOVE_RECURSE
  "CMakeFiles/pb_parameter_ranking.dir/pb_parameter_ranking.cc.o"
  "CMakeFiles/pb_parameter_ranking.dir/pb_parameter_ranking.cc.o.d"
  "pb_parameter_ranking"
  "pb_parameter_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pb_parameter_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
