# Empty dependencies file for pb_parameter_ranking.
# This may be replaced when dependencies are built.
