# Empty compiler generated dependencies file for micro_ann.
# This may be replaced when dependencies are built.
