file(REMOVE_RECURSE
  "CMakeFiles/micro_ann.dir/micro_ann.cc.o"
  "CMakeFiles/micro_ann.dir/micro_ann.cc.o.d"
  "micro_ann"
  "micro_ann.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ann.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
