# Empty compiler generated dependencies file for ext_crossapp.
# This may be replaced when dependencies are built.
