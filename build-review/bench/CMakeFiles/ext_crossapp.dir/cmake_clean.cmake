file(REMOVE_RECURSE
  "CMakeFiles/ext_crossapp.dir/ext_crossapp.cc.o"
  "CMakeFiles/ext_crossapp.dir/ext_crossapp.cc.o.d"
  "ext_crossapp"
  "ext_crossapp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_crossapp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
