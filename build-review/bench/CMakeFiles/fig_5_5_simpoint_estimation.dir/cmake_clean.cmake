file(REMOVE_RECURSE
  "CMakeFiles/fig_5_5_simpoint_estimation.dir/fig_5_5_simpoint_estimation.cc.o"
  "CMakeFiles/fig_5_5_simpoint_estimation.dir/fig_5_5_simpoint_estimation.cc.o.d"
  "fig_5_5_simpoint_estimation"
  "fig_5_5_simpoint_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_5_5_simpoint_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
