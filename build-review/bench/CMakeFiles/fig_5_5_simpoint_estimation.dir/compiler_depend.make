# Empty compiler generated dependencies file for fig_5_5_simpoint_estimation.
# This may be replaced when dependencies are built.
