# Empty compiler generated dependencies file for appendix_a.
# This may be replaced when dependencies are built.
