file(REMOVE_RECURSE
  "CMakeFiles/appendix_a.dir/appendix_a.cc.o"
  "CMakeFiles/appendix_a.dir/appendix_a.cc.o.d"
  "appendix_a"
  "appendix_a.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendix_a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
