# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig_5_3_error_estimation_proc.
