# Empty compiler generated dependencies file for fig_5_3_error_estimation_proc.
# This may be replaced when dependencies are built.
