file(REMOVE_RECURSE
  "CMakeFiles/fig_5_3_error_estimation_proc.dir/fig_5_3_error_estimation_proc.cc.o"
  "CMakeFiles/fig_5_3_error_estimation_proc.dir/fig_5_3_error_estimation_proc.cc.o.d"
  "fig_5_3_error_estimation_proc"
  "fig_5_3_error_estimation_proc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_5_3_error_estimation_proc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
