file(REMOVE_RECURSE
  "CMakeFiles/fig_5_8_training_times.dir/fig_5_8_training_times.cc.o"
  "CMakeFiles/fig_5_8_training_times.dir/fig_5_8_training_times.cc.o.d"
  "fig_5_8_training_times"
  "fig_5_8_training_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_5_8_training_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
