# Empty dependencies file for fig_5_8_training_times.
# This may be replaced when dependencies are built.
