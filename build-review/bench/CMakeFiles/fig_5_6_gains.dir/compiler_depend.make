# Empty compiler generated dependencies file for fig_5_6_gains.
# This may be replaced when dependencies are built.
