file(REMOVE_RECURSE
  "CMakeFiles/fig_5_6_gains.dir/fig_5_6_gains.cc.o"
  "CMakeFiles/fig_5_6_gains.dir/fig_5_6_gains.cc.o.d"
  "fig_5_6_gains"
  "fig_5_6_gains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_5_6_gains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
