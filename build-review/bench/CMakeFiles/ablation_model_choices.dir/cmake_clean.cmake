file(REMOVE_RECURSE
  "CMakeFiles/ablation_model_choices.dir/ablation_model_choices.cc.o"
  "CMakeFiles/ablation_model_choices.dir/ablation_model_choices.cc.o.d"
  "ablation_model_choices"
  "ablation_model_choices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_model_choices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
