# Empty dependencies file for ablation_model_choices.
# This may be replaced when dependencies are built.
