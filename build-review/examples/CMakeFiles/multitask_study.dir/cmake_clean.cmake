file(REMOVE_RECURSE
  "CMakeFiles/multitask_study.dir/multitask_study.cpp.o"
  "CMakeFiles/multitask_study.dir/multitask_study.cpp.o.d"
  "multitask_study"
  "multitask_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multitask_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
