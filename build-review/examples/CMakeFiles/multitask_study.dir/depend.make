# Empty dependencies file for multitask_study.
# This may be replaced when dependencies are built.
