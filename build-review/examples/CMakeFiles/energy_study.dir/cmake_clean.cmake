file(REMOVE_RECURSE
  "CMakeFiles/energy_study.dir/energy_study.cpp.o"
  "CMakeFiles/energy_study.dir/energy_study.cpp.o.d"
  "energy_study"
  "energy_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
