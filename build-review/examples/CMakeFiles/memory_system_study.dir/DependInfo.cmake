
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/memory_system_study.cpp" "examples/CMakeFiles/memory_system_study.dir/memory_system_study.cpp.o" "gcc" "examples/CMakeFiles/memory_system_study.dir/memory_system_study.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/study/CMakeFiles/dse_study.dir/DependInfo.cmake"
  "/root/repo/build-review/src/simpoint/CMakeFiles/dse_simpoint.dir/DependInfo.cmake"
  "/root/repo/build-review/src/doe/CMakeFiles/dse_doe.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ml/CMakeFiles/dse_ml.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/dse_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/workload/CMakeFiles/dse_workload.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/dse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
