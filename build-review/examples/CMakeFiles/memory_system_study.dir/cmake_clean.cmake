file(REMOVE_RECURSE
  "CMakeFiles/memory_system_study.dir/memory_system_study.cpp.o"
  "CMakeFiles/memory_system_study.dir/memory_system_study.cpp.o.d"
  "memory_system_study"
  "memory_system_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_system_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
