# Empty compiler generated dependencies file for memory_system_study.
# This may be replaced when dependencies are built.
