# Empty dependencies file for simpoint_study.
# This may be replaced when dependencies are built.
