file(REMOVE_RECURSE
  "CMakeFiles/simpoint_study.dir/simpoint_study.cpp.o"
  "CMakeFiles/simpoint_study.dir/simpoint_study.cpp.o.d"
  "simpoint_study"
  "simpoint_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simpoint_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
