# Empty dependencies file for active_learning.
# This may be replaced when dependencies are built.
