file(REMOVE_RECURSE
  "CMakeFiles/active_learning.dir/active_learning.cpp.o"
  "CMakeFiles/active_learning.dir/active_learning.cpp.o.d"
  "active_learning"
  "active_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/active_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
