
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_ann.cc" "tests/CMakeFiles/dse_tests.dir/test_ann.cc.o" "gcc" "tests/CMakeFiles/dse_tests.dir/test_ann.cc.o.d"
  "/root/repo/tests/test_ann_parity.cc" "tests/CMakeFiles/dse_tests.dir/test_ann_parity.cc.o" "gcc" "tests/CMakeFiles/dse_tests.dir/test_ann_parity.cc.o.d"
  "/root/repo/tests/test_branch.cc" "tests/CMakeFiles/dse_tests.dir/test_branch.cc.o" "gcc" "tests/CMakeFiles/dse_tests.dir/test_branch.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/dse_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/dse_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_core.cc" "tests/CMakeFiles/dse_tests.dir/test_core.cc.o" "gcc" "tests/CMakeFiles/dse_tests.dir/test_core.cc.o.d"
  "/root/repo/tests/test_core_micro.cc" "tests/CMakeFiles/dse_tests.dir/test_core_micro.cc.o" "gcc" "tests/CMakeFiles/dse_tests.dir/test_core_micro.cc.o.d"
  "/root/repo/tests/test_cross_validation.cc" "tests/CMakeFiles/dse_tests.dir/test_cross_validation.cc.o" "gcc" "tests/CMakeFiles/dse_tests.dir/test_cross_validation.cc.o.d"
  "/root/repo/tests/test_doe.cc" "tests/CMakeFiles/dse_tests.dir/test_doe.cc.o" "gcc" "tests/CMakeFiles/dse_tests.dir/test_doe.cc.o.d"
  "/root/repo/tests/test_encoding.cc" "tests/CMakeFiles/dse_tests.dir/test_encoding.cc.o" "gcc" "tests/CMakeFiles/dse_tests.dir/test_encoding.cc.o.d"
  "/root/repo/tests/test_energy.cc" "tests/CMakeFiles/dse_tests.dir/test_energy.cc.o" "gcc" "tests/CMakeFiles/dse_tests.dir/test_energy.cc.o.d"
  "/root/repo/tests/test_explorer.cc" "tests/CMakeFiles/dse_tests.dir/test_explorer.cc.o" "gcc" "tests/CMakeFiles/dse_tests.dir/test_explorer.cc.o.d"
  "/root/repo/tests/test_extensions.cc" "tests/CMakeFiles/dse_tests.dir/test_extensions.cc.o" "gcc" "tests/CMakeFiles/dse_tests.dir/test_extensions.cc.o.d"
  "/root/repo/tests/test_fuzz.cc" "tests/CMakeFiles/dse_tests.dir/test_fuzz.cc.o" "gcc" "tests/CMakeFiles/dse_tests.dir/test_fuzz.cc.o.d"
  "/root/repo/tests/test_golden.cc" "tests/CMakeFiles/dse_tests.dir/test_golden.cc.o" "gcc" "tests/CMakeFiles/dse_tests.dir/test_golden.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/dse_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/dse_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_memsys.cc" "tests/CMakeFiles/dse_tests.dir/test_memsys.cc.o" "gcc" "tests/CMakeFiles/dse_tests.dir/test_memsys.cc.o.d"
  "/root/repo/tests/test_multitask.cc" "tests/CMakeFiles/dse_tests.dir/test_multitask.cc.o" "gcc" "tests/CMakeFiles/dse_tests.dir/test_multitask.cc.o.d"
  "/root/repo/tests/test_parallel.cc" "tests/CMakeFiles/dse_tests.dir/test_parallel.cc.o" "gcc" "tests/CMakeFiles/dse_tests.dir/test_parallel.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/dse_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/dse_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_sim_properties.cc" "tests/CMakeFiles/dse_tests.dir/test_sim_properties.cc.o" "gcc" "tests/CMakeFiles/dse_tests.dir/test_sim_properties.cc.o.d"
  "/root/repo/tests/test_simpoint.cc" "tests/CMakeFiles/dse_tests.dir/test_simpoint.cc.o" "gcc" "tests/CMakeFiles/dse_tests.dir/test_simpoint.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/dse_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/dse_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_study.cc" "tests/CMakeFiles/dse_tests.dir/test_study.cc.o" "gcc" "tests/CMakeFiles/dse_tests.dir/test_study.cc.o.d"
  "/root/repo/tests/test_table_env.cc" "tests/CMakeFiles/dse_tests.dir/test_table_env.cc.o" "gcc" "tests/CMakeFiles/dse_tests.dir/test_table_env.cc.o.d"
  "/root/repo/tests/test_workload.cc" "tests/CMakeFiles/dse_tests.dir/test_workload.cc.o" "gcc" "tests/CMakeFiles/dse_tests.dir/test_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/study/CMakeFiles/dse_study.dir/DependInfo.cmake"
  "/root/repo/build-review/src/simpoint/CMakeFiles/dse_simpoint.dir/DependInfo.cmake"
  "/root/repo/build-review/src/doe/CMakeFiles/dse_doe.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ml/CMakeFiles/dse_ml.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/dse_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/workload/CMakeFiles/dse_workload.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/dse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
