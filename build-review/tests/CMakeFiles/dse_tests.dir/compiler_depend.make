# Empty compiler generated dependencies file for dse_tests.
# This may be replaced when dependencies are built.
