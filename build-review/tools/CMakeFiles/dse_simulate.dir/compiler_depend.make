# Empty compiler generated dependencies file for dse_simulate.
# This may be replaced when dependencies are built.
