file(REMOVE_RECURSE
  "CMakeFiles/dse_simulate.dir/dse_sim.cc.o"
  "CMakeFiles/dse_simulate.dir/dse_sim.cc.o.d"
  "dse_simulate"
  "dse_simulate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dse_simulate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
