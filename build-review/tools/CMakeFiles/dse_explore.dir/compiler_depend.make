# Empty compiler generated dependencies file for dse_explore.
# This may be replaced when dependencies are built.
