file(REMOVE_RECURSE
  "CMakeFiles/dse_explore.dir/dse_explore.cc.o"
  "CMakeFiles/dse_explore.dir/dse_explore.cc.o.d"
  "dse_explore"
  "dse_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dse_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
