
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/branch.cc" "src/sim/CMakeFiles/dse_sim.dir/branch.cc.o" "gcc" "src/sim/CMakeFiles/dse_sim.dir/branch.cc.o.d"
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/dse_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/dse_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/cacti.cc" "src/sim/CMakeFiles/dse_sim.dir/cacti.cc.o" "gcc" "src/sim/CMakeFiles/dse_sim.dir/cacti.cc.o.d"
  "/root/repo/src/sim/core.cc" "src/sim/CMakeFiles/dse_sim.dir/core.cc.o" "gcc" "src/sim/CMakeFiles/dse_sim.dir/core.cc.o.d"
  "/root/repo/src/sim/energy.cc" "src/sim/CMakeFiles/dse_sim.dir/energy.cc.o" "gcc" "src/sim/CMakeFiles/dse_sim.dir/energy.cc.o.d"
  "/root/repo/src/sim/memsys.cc" "src/sim/CMakeFiles/dse_sim.dir/memsys.cc.o" "gcc" "src/sim/CMakeFiles/dse_sim.dir/memsys.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/dse_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/workload/CMakeFiles/dse_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
