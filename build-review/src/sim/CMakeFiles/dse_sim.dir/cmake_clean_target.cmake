file(REMOVE_RECURSE
  "libdse_sim.a"
)
