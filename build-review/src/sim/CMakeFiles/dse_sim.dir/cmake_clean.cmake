file(REMOVE_RECURSE
  "CMakeFiles/dse_sim.dir/branch.cc.o"
  "CMakeFiles/dse_sim.dir/branch.cc.o.d"
  "CMakeFiles/dse_sim.dir/cache.cc.o"
  "CMakeFiles/dse_sim.dir/cache.cc.o.d"
  "CMakeFiles/dse_sim.dir/cacti.cc.o"
  "CMakeFiles/dse_sim.dir/cacti.cc.o.d"
  "CMakeFiles/dse_sim.dir/core.cc.o"
  "CMakeFiles/dse_sim.dir/core.cc.o.d"
  "CMakeFiles/dse_sim.dir/energy.cc.o"
  "CMakeFiles/dse_sim.dir/energy.cc.o.d"
  "CMakeFiles/dse_sim.dir/memsys.cc.o"
  "CMakeFiles/dse_sim.dir/memsys.cc.o.d"
  "libdse_sim.a"
  "libdse_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dse_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
