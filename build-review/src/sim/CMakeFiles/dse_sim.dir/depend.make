# Empty dependencies file for dse_sim.
# This may be replaced when dependencies are built.
