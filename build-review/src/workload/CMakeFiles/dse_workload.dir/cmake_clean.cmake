file(REMOVE_RECURSE
  "CMakeFiles/dse_workload.dir/generator.cc.o"
  "CMakeFiles/dse_workload.dir/generator.cc.o.d"
  "CMakeFiles/dse_workload.dir/profile.cc.o"
  "CMakeFiles/dse_workload.dir/profile.cc.o.d"
  "libdse_workload.a"
  "libdse_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dse_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
