# Empty dependencies file for dse_workload.
# This may be replaced when dependencies are built.
