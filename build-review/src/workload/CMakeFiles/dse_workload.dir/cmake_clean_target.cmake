file(REMOVE_RECURSE
  "libdse_workload.a"
)
