
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/ann.cc" "src/ml/CMakeFiles/dse_ml.dir/ann.cc.o" "gcc" "src/ml/CMakeFiles/dse_ml.dir/ann.cc.o.d"
  "/root/repo/src/ml/cross_validation.cc" "src/ml/CMakeFiles/dse_ml.dir/cross_validation.cc.o" "gcc" "src/ml/CMakeFiles/dse_ml.dir/cross_validation.cc.o.d"
  "/root/repo/src/ml/crossapp.cc" "src/ml/CMakeFiles/dse_ml.dir/crossapp.cc.o" "gcc" "src/ml/CMakeFiles/dse_ml.dir/crossapp.cc.o.d"
  "/root/repo/src/ml/encoding.cc" "src/ml/CMakeFiles/dse_ml.dir/encoding.cc.o" "gcc" "src/ml/CMakeFiles/dse_ml.dir/encoding.cc.o.d"
  "/root/repo/src/ml/explorer.cc" "src/ml/CMakeFiles/dse_ml.dir/explorer.cc.o" "gcc" "src/ml/CMakeFiles/dse_ml.dir/explorer.cc.o.d"
  "/root/repo/src/ml/io.cc" "src/ml/CMakeFiles/dse_ml.dir/io.cc.o" "gcc" "src/ml/CMakeFiles/dse_ml.dir/io.cc.o.d"
  "/root/repo/src/ml/multitask.cc" "src/ml/CMakeFiles/dse_ml.dir/multitask.cc.o" "gcc" "src/ml/CMakeFiles/dse_ml.dir/multitask.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/dse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
