# Empty compiler generated dependencies file for dse_ml.
# This may be replaced when dependencies are built.
