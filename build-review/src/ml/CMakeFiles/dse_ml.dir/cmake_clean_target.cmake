file(REMOVE_RECURSE
  "libdse_ml.a"
)
