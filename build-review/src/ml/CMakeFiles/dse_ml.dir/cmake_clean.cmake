file(REMOVE_RECURSE
  "CMakeFiles/dse_ml.dir/ann.cc.o"
  "CMakeFiles/dse_ml.dir/ann.cc.o.d"
  "CMakeFiles/dse_ml.dir/cross_validation.cc.o"
  "CMakeFiles/dse_ml.dir/cross_validation.cc.o.d"
  "CMakeFiles/dse_ml.dir/crossapp.cc.o"
  "CMakeFiles/dse_ml.dir/crossapp.cc.o.d"
  "CMakeFiles/dse_ml.dir/encoding.cc.o"
  "CMakeFiles/dse_ml.dir/encoding.cc.o.d"
  "CMakeFiles/dse_ml.dir/explorer.cc.o"
  "CMakeFiles/dse_ml.dir/explorer.cc.o.d"
  "CMakeFiles/dse_ml.dir/io.cc.o"
  "CMakeFiles/dse_ml.dir/io.cc.o.d"
  "CMakeFiles/dse_ml.dir/multitask.cc.o"
  "CMakeFiles/dse_ml.dir/multitask.cc.o.d"
  "libdse_ml.a"
  "libdse_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dse_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
