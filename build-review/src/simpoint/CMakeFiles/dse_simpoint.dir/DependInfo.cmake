
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simpoint/bbv.cc" "src/simpoint/CMakeFiles/dse_simpoint.dir/bbv.cc.o" "gcc" "src/simpoint/CMakeFiles/dse_simpoint.dir/bbv.cc.o.d"
  "/root/repo/src/simpoint/kmeans.cc" "src/simpoint/CMakeFiles/dse_simpoint.dir/kmeans.cc.o" "gcc" "src/simpoint/CMakeFiles/dse_simpoint.dir/kmeans.cc.o.d"
  "/root/repo/src/simpoint/simpoint.cc" "src/simpoint/CMakeFiles/dse_simpoint.dir/simpoint.cc.o" "gcc" "src/simpoint/CMakeFiles/dse_simpoint.dir/simpoint.cc.o.d"
  "/root/repo/src/simpoint/smarts.cc" "src/simpoint/CMakeFiles/dse_simpoint.dir/smarts.cc.o" "gcc" "src/simpoint/CMakeFiles/dse_simpoint.dir/smarts.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/dse_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/workload/CMakeFiles/dse_workload.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/dse_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
