# Empty compiler generated dependencies file for dse_simpoint.
# This may be replaced when dependencies are built.
