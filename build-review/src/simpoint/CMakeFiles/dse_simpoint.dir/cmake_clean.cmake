file(REMOVE_RECURSE
  "CMakeFiles/dse_simpoint.dir/bbv.cc.o"
  "CMakeFiles/dse_simpoint.dir/bbv.cc.o.d"
  "CMakeFiles/dse_simpoint.dir/kmeans.cc.o"
  "CMakeFiles/dse_simpoint.dir/kmeans.cc.o.d"
  "CMakeFiles/dse_simpoint.dir/simpoint.cc.o"
  "CMakeFiles/dse_simpoint.dir/simpoint.cc.o.d"
  "CMakeFiles/dse_simpoint.dir/smarts.cc.o"
  "CMakeFiles/dse_simpoint.dir/smarts.cc.o.d"
  "libdse_simpoint.a"
  "libdse_simpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dse_simpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
