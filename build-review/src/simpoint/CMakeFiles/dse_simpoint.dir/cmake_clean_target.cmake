file(REMOVE_RECURSE
  "libdse_simpoint.a"
)
