# Empty compiler generated dependencies file for dse_util.
# This may be replaced when dependencies are built.
