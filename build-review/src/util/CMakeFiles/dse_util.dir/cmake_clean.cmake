file(REMOVE_RECURSE
  "CMakeFiles/dse_util.dir/env.cc.o"
  "CMakeFiles/dse_util.dir/env.cc.o.d"
  "CMakeFiles/dse_util.dir/rng.cc.o"
  "CMakeFiles/dse_util.dir/rng.cc.o.d"
  "CMakeFiles/dse_util.dir/stats.cc.o"
  "CMakeFiles/dse_util.dir/stats.cc.o.d"
  "CMakeFiles/dse_util.dir/table.cc.o"
  "CMakeFiles/dse_util.dir/table.cc.o.d"
  "CMakeFiles/dse_util.dir/thread_pool.cc.o"
  "CMakeFiles/dse_util.dir/thread_pool.cc.o.d"
  "libdse_util.a"
  "libdse_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dse_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
