file(REMOVE_RECURSE
  "libdse_util.a"
)
