file(REMOVE_RECURSE
  "CMakeFiles/dse_study.dir/harness.cc.o"
  "CMakeFiles/dse_study.dir/harness.cc.o.d"
  "CMakeFiles/dse_study.dir/spaces.cc.o"
  "CMakeFiles/dse_study.dir/spaces.cc.o.d"
  "libdse_study.a"
  "libdse_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dse_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
