file(REMOVE_RECURSE
  "libdse_study.a"
)
