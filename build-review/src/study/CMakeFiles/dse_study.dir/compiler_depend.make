# Empty compiler generated dependencies file for dse_study.
# This may be replaced when dependencies are built.
