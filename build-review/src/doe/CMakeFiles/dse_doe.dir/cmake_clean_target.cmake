file(REMOVE_RECURSE
  "libdse_doe.a"
)
