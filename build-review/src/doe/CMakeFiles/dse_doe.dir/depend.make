# Empty dependencies file for dse_doe.
# This may be replaced when dependencies are built.
