file(REMOVE_RECURSE
  "CMakeFiles/dse_doe.dir/plackett_burman.cc.o"
  "CMakeFiles/dse_doe.dir/plackett_burman.cc.o.d"
  "libdse_doe.a"
  "libdse_doe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dse_doe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
