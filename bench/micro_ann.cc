/**
 * @file
 * Microbenchmarks of the core numeric kernels: ANN forward and
 * training passes (the O(H(I+O)) inner loop the Section 5.4 footnote
 * analyses), ensemble prediction, cache accesses, and detailed
 * simulation throughput.
 */

#include <benchmark/benchmark.h>

#include <cmath>

#include "ml/ann.hh"
#include "ml/cross_validation.hh"
#include "ml/explorer.hh"
#include "sim/cache.hh"
#include "sim/cacti.hh"
#include "sim/core.hh"
#include "study/spaces.hh"
#include "util/rng.hh"
#include "workload/generator.hh"

using namespace dse;

namespace {

void
BM_AnnForward(benchmark::State &state)
{
    Rng rng(1);
    ml::AnnParams p;
    p.hiddenUnits = static_cast<int>(state.range(0));
    ml::Ann net(16, 1, p, rng);
    std::vector<double> x(16, 0.5);
    for (auto _ : state)
        benchmark::DoNotOptimize(net.predictScalar(x));
}

void
BM_AnnTrainStep(benchmark::State &state)
{
    Rng rng(2);
    ml::AnnParams p;
    p.hiddenUnits = static_cast<int>(state.range(0));
    p.learningRate = 0.1;
    ml::Ann net(16, 1, p, rng);
    std::vector<double> x(16, 0.5);
    std::vector<double> t{0.7};
    for (auto _ : state)
        benchmark::DoNotOptimize(net.train(x, t));
}

void
BM_AnnTrainEpoch(benchmark::State &state)
{
    // The fused epoch pipeline as trainEnsemble drives it: packed
    // example matrices, a drawn presentation order, one trainEpoch
    // call per epoch. Compare items/s against BM_AnnTrainStep for the
    // win from the epoch loop itself (no per-row vector indirection).
    Rng rng(2);
    ml::AnnParams p;
    p.hiddenUnits = static_cast<int>(state.range(0));
    p.learningRate = 0.1;
    ml::Ann net(16, 1, p, rng);
    const size_t rows = 256;
    std::vector<double> x(rows * 16);
    std::vector<double> t(rows);
    for (auto &v : x)
        v = rng.uniform();
    for (auto &v : t)
        v = 0.2 + 0.6 * rng.uniform();
    std::vector<uint32_t> order(rows);
    for (auto &o : order)
        o = static_cast<uint32_t>(rng.below(rows));
    for (auto _ : state)
        benchmark::DoNotOptimize(
            net.trainEpoch(x.data(), t.data(), order.data(), rows));
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(rows));
}

void
BM_AnnPredictBatch(benchmark::State &state)
{
    // Blocked batched forward over a block's worth of points: the
    // kernel the full-space sweeps are built from. Compare against
    // BM_AnnForward x n for the win from streaming each layer's
    // weights once per block.
    Rng rng(3);
    ml::AnnParams p;
    ml::Ann net(16, 1, p, rng);
    const size_t n = static_cast<size_t>(state.range(0));
    std::vector<double> x(n * 16);
    for (auto &v : x)
        v = rng.uniform();
    std::vector<double> y(n);
    for (auto _ : state) {
        net.predictBatch(x.data(), n, y.data());
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(n));
}

void
BM_EnsemblePredictSpace(benchmark::State &state)
{
    // Full-space prediction through the real Explorer path over the
    // Table 4.1 memory-system space (23,040 points): the dominant
    // modeling cost after training itself (Section 5.4 / Fig 5.8).
    // The simulator is a cheap analytic stand-in so the bench times
    // prediction, not simulation; the ensemble is trained once.
    static const ml::DesignSpace space = study::memorySystemSpace();
    static ml::Explorer *explorer = [] {
        auto sim = [](uint64_t idx) {
            return 0.3 + 0.1 * std::sin(static_cast<double>(idx) * 1e-3) +
                1e-6 * static_cast<double>(idx % 97);
        };
        ml::ExplorerOptions opts;
        opts.batchSize = 50;
        opts.train.folds = 5;
        opts.train.maxEpochs = 60;
        opts.train.esInterval = 20;
        opts.train.patience = 3;
        auto *e = new ml::Explorer(space, sim, opts);
        e->step();
        return e;
    }();
    for (auto _ : state) {
        auto preds = explorer->predictSpace();
        benchmark::DoNotOptimize(preds.data());
    }
    state.counters["points_per_sec"] = benchmark::Counter(
        static_cast<double>(space.size()),
        benchmark::Counter::kIsIterationInvariantRate);
}

void
BM_CacheAccess(benchmark::State &state)
{
    sim::Cache cache({32, 32, static_cast<int>(state.range(0)), true});
    Rng rng(3);
    uint64_t addr = 0;
    for (auto _ : state) {
        addr = (addr * 2654435761u + 12345) % (256 * 1024);
        benchmark::DoNotOptimize(cache.access(addr, false).hit);
    }
}

void
BM_DetailedSimulation(benchmark::State &state)
{
    const auto trace = workload::generateBenchmarkTrace("gzip", 16384);
    sim::MachineConfig cfg;
    sim::CactiModel::applyLatencies(cfg);
    sim::SimOptions opts;
    opts.warmCaches = true;
    for (auto _ : state) {
        auto result = sim::simulate(trace, cfg, opts);
        benchmark::DoNotOptimize(result.ipc);
    }
    state.counters["instr_per_sec"] = benchmark::Counter(
        16384.0, benchmark::Counter::kIsIterationInvariantRate);
}

void
BM_TraceGeneration(benchmark::State &state)
{
    for (auto _ : state) {
        auto trace = workload::generateBenchmarkTrace("gzip", 16384);
        benchmark::DoNotOptimize(trace.size());
    }
}

} // namespace

BENCHMARK(BM_AnnForward)->Arg(16)->Arg(32);
BENCHMARK(BM_AnnTrainStep)->Arg(16)->Arg(32);
BENCHMARK(BM_AnnTrainEpoch)->Arg(16)->Arg(32);
BENCHMARK(BM_AnnPredictBatch)->Arg(64)->Arg(1024);
BENCHMARK(BM_EnsemblePredictSpace)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CacheAccess)->Arg(1)->Arg(8);
BENCHMARK(BM_DetailedSimulation)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TraceGeneration)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
