/**
 * @file
 * Microbenchmarks of the core numeric kernels: ANN forward and
 * training passes (the O(H(I+O)) inner loop the Section 5.4 footnote
 * analyses), ensemble prediction, cache accesses, and detailed
 * simulation throughput.
 */

#include <benchmark/benchmark.h>

#include "ml/ann.hh"
#include "ml/cross_validation.hh"
#include "sim/cache.hh"
#include "sim/cacti.hh"
#include "sim/core.hh"
#include "util/rng.hh"
#include "workload/generator.hh"

using namespace dse;

namespace {

void
BM_AnnForward(benchmark::State &state)
{
    Rng rng(1);
    ml::AnnParams p;
    p.hiddenUnits = static_cast<int>(state.range(0));
    ml::Ann net(16, 1, p, rng);
    std::vector<double> x(16, 0.5);
    for (auto _ : state)
        benchmark::DoNotOptimize(net.predictScalar(x));
}

void
BM_AnnTrainStep(benchmark::State &state)
{
    Rng rng(2);
    ml::AnnParams p;
    p.hiddenUnits = static_cast<int>(state.range(0));
    p.learningRate = 0.1;
    ml::Ann net(16, 1, p, rng);
    std::vector<double> x(16, 0.5);
    std::vector<double> t{0.7};
    for (auto _ : state)
        benchmark::DoNotOptimize(net.train(x, t));
}

void
BM_CacheAccess(benchmark::State &state)
{
    sim::Cache cache({32, 32, static_cast<int>(state.range(0)), true});
    Rng rng(3);
    uint64_t addr = 0;
    for (auto _ : state) {
        addr = (addr * 2654435761u + 12345) % (256 * 1024);
        benchmark::DoNotOptimize(cache.access(addr, false).hit);
    }
}

void
BM_DetailedSimulation(benchmark::State &state)
{
    const auto trace = workload::generateBenchmarkTrace("gzip", 16384);
    sim::MachineConfig cfg;
    sim::CactiModel::applyLatencies(cfg);
    sim::SimOptions opts;
    opts.warmCaches = true;
    for (auto _ : state) {
        auto result = sim::simulate(trace, cfg, opts);
        benchmark::DoNotOptimize(result.ipc);
    }
    state.counters["instr_per_sec"] = benchmark::Counter(
        16384.0, benchmark::Counter::kIsIterationInvariantRate);
}

void
BM_TraceGeneration(benchmark::State &state)
{
    for (auto _ : state) {
        auto trace = workload::generateBenchmarkTrace("gzip", 16384);
        benchmark::DoNotOptimize(trace.size());
    }
}

} // namespace

BENCHMARK(BM_AnnForward)->Arg(16)->Arg(32);
BENCHMARK(BM_AnnTrainStep)->Arg(16)->Arg(32);
BENCHMARK(BM_CacheAccess)->Arg(1)->Arg(8);
BENCHMARK(BM_DetailedSimulation)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TraceGeneration)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
