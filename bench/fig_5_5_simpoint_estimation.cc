/**
 * @file
 * Regenerates **Figure 5.5**: estimated versus true error when ANN
 * modeling is combined with SimPoint.
 *
 * The nuance reproduced here (Section 5.3): cross validation
 * computes its estimate against the *SimPoint* targets, unaware of
 * their noise, so outside the sparse regime the estimates can run
 * slightly *below* the true error (never by much).
 */

#include <cstdio>

#include "bench/common.hh"

using namespace dse;
using namespace dse::bench;

int
main()
{
    const auto scope = study::BenchScope::fromEnv({"mesa"});
    std::printf("Figure 5.5: estimated vs true error with "
                "ANN+SimPoint, processor study\n(apps: %s)\n",
                join(scope.apps, ",").c_str());

    for (const auto &app : scope.apps) {
        study::StudyContext ctx(study::StudyKind::Processor, app,
                                scope.traceLength);
        const auto sizes = curveSizes(ctx.space().size(),
                                      scope.maxSamplePct, scope.batch);
        const auto curve = learningCurve(ctx, sizes, scope.evalPoints,
                                         /*simpoint=*/true);
        printCurve(app + " (ANN+SimPoint): estimate vs truth", curve);

        Table dev({"sample%", "mean_delta%", "underestimates"});
        for (const auto &p : curve) {
            dev.newRow();
            dev.add(p.samplePct, 2);
            dev.add(p.estimated.meanPct - p.truth.meanPct, 2);
            dev.add(std::string(
                p.estimated.meanPct < p.truth.meanPct ? "yes" : "no"));
        }
        std::printf("\n-- estimate minus truth (%s) --\n", app.c_str());
        dev.print(std::cout);
    }
    return 0;
}
