/**
 * @file
 * Regenerates **Figure 5.7**: the decomposition of the combined
 * gains into SimPoint's contribution (fewer instructions per
 * experiment) and the ANN's contribution (fewer experiments), shown
 * side by side with their product (the combined factor).
 */

#include <cstdio>

#include "bench/common.hh"

using namespace dse;
using namespace dse::bench;

int
main()
{
    const auto scope = study::BenchScope::fromEnv({"mesa", "crafty"});
    std::printf("Figure 5.7: SimPoint vs ANN contributions to the "
                "combined reduction, processor study\n(apps: %s)\n",
                join(scope.apps, ",").c_str());

    Table table({"app", "achieved_err%", "simpoint_x", "ann_x",
                 "combined_x"});
    for (const auto &app : scope.apps) {
        study::StudyContext ctx(study::StudyKind::Processor, app,
                                scope.traceLength);
        const auto sizes = curveSizes(ctx.space().size(),
                                      scope.maxSamplePct, scope.batch);
        const auto curve = learningCurve(ctx, sizes, scope.evalPoints,
                                         /*simpoint=*/true);

        // SimPoint factor: instructions per full simulation over
        // instructions per SimPoint estimate.
        const double simpoint_x =
            static_cast<double>(ctx.instructionsPerSimulation()) /
            static_cast<double>(ctx.simPointInstructionsPerEstimate());

        double best = 1e9;
        for (const auto &p : curve)
            best = std::min(best, p.truth.meanPct);
        const CurvePoint *last_point = nullptr;
        for (double scale : {2.5, 1.5, 1.0}) {
            const auto *point = firstReaching(curve, best * scale);
            if (!point || point == last_point)
                continue;
            last_point = point;
            // ANN factor: experiments avoided.
            const double ann_x =
                static_cast<double>(ctx.space().size()) /
                static_cast<double>(point->samples);
            table.newRow();
            table.add(app);
            table.add(point->truth.meanPct, 2);
            table.add(simpoint_x, 1);
            table.add(ann_x, 1);
            table.add(simpoint_x * ann_x, 0);
        }
    }
    table.print(std::cout);
    std::printf("\nThe paper attributes 41-208x to the ANN and 8-63x "
                "to SimPoint; the factors multiply because they attack "
                "orthogonal costs (experiments vs instructions per "
                "experiment).\n");
    return 0;
}
