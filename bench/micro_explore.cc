/**
 * @file
 * Microbenchmarks of the active-learning scoring path: per-round,
 * query-by-committee ranks a candidate pool by ensemble member
 * disagreement (Explorer::pickBatch), which at production pool sizes
 * is the last prediction-side hot path. BM_MemberSpreadScalar is the
 * pre-blocked per-point loop (heap-allocating encodeIndex + k scalar
 * member predictions); BM_MemberSpreadBatched is the panelized
 * Ensemble::memberSpreadIndices kernel, bit-identical per point.
 * BM_PickBatch times one end-to-end selection round (pool draw,
 * scoring, deterministic top-k) via the prefetch hook.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <memory>
#include <vector>

#include "ml/cross_validation.hh"
#include "ml/explorer.hh"
#include "study/spaces.hh"
#include "util/rng.hh"

using namespace dse;

namespace {

/** Cheap analytic stand-in response over the memory-system space. */
double
analyticResponse(uint64_t idx)
{
    return 0.3 + 0.1 * std::sin(static_cast<double>(idx) * 1e-3) +
        1e-6 * static_cast<double>(idx % 97);
}

const ml::DesignSpace &
benchSpace()
{
    static const ml::DesignSpace space = study::memorySystemSpace();
    return space;
}

/** One paper-sized (10-fold) committee, trained once and shared. */
const ml::Ensemble &
benchEnsemble()
{
    static const ml::Ensemble model = [] {
        const auto &space = benchSpace();
        Rng rng(0xbe9c);
        const auto indices =
            rng.sampleWithoutReplacement(space.size(), 120);
        ml::DataSet data;
        for (uint64_t idx : indices)
            data.add(space.encodeIndex(idx), analyticResponse(idx));
        ml::TrainOptions opts;
        opts.maxEpochs = 60;
        opts.esInterval = 20;
        opts.patience = 3;
        return ml::trainEnsemble(data, opts);
    }();
    return model;
}

std::vector<uint64_t>
benchPool(size_t n)
{
    Rng rng(0x9001);
    return rng.sampleWithoutReplacement(benchSpace().size(), n);
}

void
BM_MemberSpreadScalar(benchmark::State &state)
{
    // The historical scoring loop, per candidate: heap-allocating
    // encodeIndex plus k predictScalar passes folded through
    // OnlineStats — what Explorer::pickBatch did per pool point
    // before the blocked kernel.
    const auto &space = benchSpace();
    const auto &model = benchEnsemble();
    const auto pool = benchPool(static_cast<size_t>(state.range(0)));
    std::vector<double> spread(pool.size());
    for (auto _ : state) {
        for (size_t i = 0; i < pool.size(); ++i)
            spread[i] = model.memberSpread(space.encodeIndex(pool[i]));
        benchmark::DoNotOptimize(spread.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(pool.size()));
}

void
BM_MemberSpreadBatched(benchmark::State &state)
{
    // The blocked replacement: fixed-chunk panels, one transpose per
    // kBlock block reused by every member, per point bit-identical to
    // the scalar loop above.
    const auto &space = benchSpace();
    const auto &model = benchEnsemble();
    const auto pool = benchPool(static_cast<size_t>(state.range(0)));
    for (auto _ : state) {
        auto spread = model.memberSpreadIndices(space, pool);
        benchmark::DoNotOptimize(spread.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(pool.size()));
}

void
BM_PickBatch(benchmark::State &state)
{
    // One end-to-end active-learning selection round at the given
    // candidate-pool size: pool draw, committee scoring, and the
    // deterministic top-k. Manual timing brackets exactly the
    // pickBatch span (step() entry to the prefetch callback, which
    // fires with the chosen batch before any simulation); the
    // simulate/retrain tail of step() runs untimed.
    const auto &space = benchSpace();
    const auto &model = benchEnsemble();
    const size_t pool = static_cast<size_t>(state.range(0));
    for (auto _ : state) {
        ml::ExplorerOptions opts;
        opts.batchSize = 50;
        opts.candidatePool = pool;
        opts.activeLearning = true;
        opts.train.folds = 5;
        opts.train.maxEpochs = 20;
        opts.train.esInterval = 10;
        opts.train.patience = 2;
        double elapsed = 0.0;
        std::chrono::steady_clock::time_point start;
        opts.prefetch = [&](const std::vector<uint64_t> &) {
            elapsed = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
        };
        ml::Explorer ex(
            space, [](uint64_t idx) { return analyticResponse(idx); },
            opts);
        ex.seedEnsemble(model);
        start = std::chrono::steady_clock::now();
        ex.step();
        state.SetIterationTime(elapsed);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(pool));
}

} // namespace

BENCHMARK(BM_MemberSpreadScalar)->Arg(1024)->Arg(4096)->Arg(16384);
BENCHMARK(BM_MemberSpreadBatched)->Arg(1024)->Arg(4096)->Arg(16384);
BENCHMARK(BM_PickBatch)->Arg(1024)->Arg(4096)->Arg(16384)->UseManualTime();

BENCHMARK_MAIN();
