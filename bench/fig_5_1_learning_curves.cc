/**
 * @file
 * Regenerates **Figure 5.1** (and its appendix sibling A.1): learning
 * curves of model percentage error versus the fraction of the design
 * space sampled, for the memory-system (left column) and processor
 * (right column) studies.
 *
 * The paper plots mean error with +-1 SD bars; this harness prints
 * the same series (mean and SD per training-set size).
 */

#include <cstdio>

#include "bench/common.hh"

using namespace dse;
using namespace dse::bench;

int
main()
{
    const auto scope = study::BenchScope::fromEnv({"mesa", "crafty"});
    std::printf("Figure 5.1: learning curves (error vs %% of space "
                "sampled)\n(apps: %s; paper plots mesa, equake, mcf, "
                "crafty — set DSE_APPS)\n",
                join(scope.apps, ",").c_str());

    for (const auto &app : scope.apps) {
        for (auto kind : {study::StudyKind::MemorySystem,
                          study::StudyKind::Processor}) {
            study::StudyContext ctx(kind, app, scope.traceLength);
            const auto sizes = curveSizes(ctx.space().size(),
                                          scope.maxSamplePct,
                                          scope.batch);
            const auto curve =
                learningCurve(ctx, sizes, scope.evalPoints);
            printCurve(app + " (" + study::studyName(kind) + ")",
                       curve);
        }
    }
    return 0;
}
