/**
 * @file
 * Regenerates **Figure 5.6**: factors of reduction in total simulated
 * instructions when ANN modeling and SimPoint are combined, at three
 * achieved mean-error levels per application.
 *
 * Accounting (as in the paper):
 *   full study        = |space| * instructions-per-full-simulation
 *   ANN+SimPoint at e = n(e) * instructions-per-SimPoint-estimate
 * where n(e) is the smallest training-set size whose model reaches
 * mean error e on the holdout. The reduction is their ratio.
 */

#include <cstdio>

#include "bench/common.hh"

using namespace dse;
using namespace dse::bench;

int
main()
{
    const auto scope = study::BenchScope::fromEnv({"mesa", "crafty"});
    std::printf("Figure 5.6: reductions in simulated instructions, "
                "ANN+SimPoint, processor study\n(apps: %s)\n",
                join(scope.apps, ",").c_str());

    Table table({"app", "achieved_err%", "trained_on", "reduction_x"});
    for (const auto &app : scope.apps) {
        study::StudyContext ctx(study::StudyKind::Processor, app,
                                scope.traceLength);
        const auto sizes = curveSizes(ctx.space().size(),
                                      scope.maxSamplePct, scope.batch);
        const auto curve = learningCurve(ctx, sizes, scope.evalPoints,
                                         /*simpoint=*/true);

        const double full_instructions =
            static_cast<double>(ctx.space().size()) *
            static_cast<double>(ctx.instructionsPerSimulation());
        const double per_estimate = static_cast<double>(
            ctx.simPointInstructionsPerEstimate());

        // Report three achieved error levels: the best point, and
        // ~1.5x / ~2.5x that error (mirroring the paper's three
        // columns per app).
        double best = 1e9;
        for (const auto &p : curve)
            best = std::min(best, p.truth.meanPct);
        const CurvePoint *last_point = nullptr;
        for (double scale : {2.5, 1.5, 1.0}) {
            const auto *point = firstReaching(curve, best * scale);
            if (!point || point == last_point)
                continue;
            last_point = point;
            const double cost =
                static_cast<double>(point->samples) * per_estimate;
            table.newRow();
            table.add(app);
            table.add(point->truth.meanPct, 2);
            table.add(static_cast<long long>(point->samples));
            table.add(full_instructions / cost, 0);
        }
    }
    table.print(std::cout);
    std::printf("\nThe paper reports 172-906x at ~1%% error up to "
                "1129-13018x at ~3.5%%; reductions here follow the "
                "same shape at this scaled-down space/holdout.\n");
    return 0;
}
