/**
 * @file
 * Microbenchmarks of the remote-dispatch hot path that is pure CPU:
 * SimulateBatch request/reply encode+decode (what every batch pays on
 * the wire, both sides) and the backoff schedule computation. Network
 * and simulation time dominate a real dispatch; these pin down the
 * protocol overhead so a frame-format change that bloats it shows up.
 */

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "remote/dispatcher.hh"
#include "serve/protocol.hh"
#include "sim/config.hh"

using namespace dse;

namespace {

serve::SimulateBatchRequest
sampleRequest(size_t points)
{
    serve::SimulateBatchRequest req;
    req.study = 0;
    req.app = "gzip";
    req.traceLength = 1 << 20;
    req.indices.reserve(points);
    for (size_t i = 0; i < points; ++i)
        req.indices.push_back(i * 977 + 13);
    return req;
}

serve::SimulateBatchReply
sampleReply(size_t points)
{
    serve::SimulateBatchReply reply;
    reply.results.reserve(points);
    for (size_t i = 0; i < points; ++i) {
        sim::SimResult r;
        r.cycles = 100000 + i;
        r.instructions = 90000 + i;
        r.ipc = 0.9 + 0.001 * static_cast<double>(i);
        r.l1dMissRate = 0.031;
        r.l2MissRate = 0.004;
        r.branchMispredictRate = 0.017;
        r.l1dAccesses = 40000 + i;
        r.l1dMisses = 1200 + i;
        r.branches = 9000 + i;
        reply.results.push_back(r);
    }
    return reply;
}

void
BM_SimulateBatchRequestRoundTrip(benchmark::State &state)
{
    const auto req = sampleRequest(static_cast<size_t>(state.range(0)));
    serve::SimulateBatchRequest out;
    for (auto _ : state) {
        const std::string wire = req.encode();
        benchmark::DoNotOptimize(
            serve::SimulateBatchRequest::decode(wire, out));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

void
BM_SimulateBatchReplyRoundTrip(benchmark::State &state)
{
    const auto reply = sampleReply(static_cast<size_t>(state.range(0)));
    serve::SimulateBatchReply out;
    for (auto _ : state) {
        const std::string wire = reply.encode();
        benchmark::DoNotOptimize(
            serve::SimulateBatchReply::decode(wire, out));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

void
BM_BackoffSchedule(benchmark::State &state)
{
    uint64_t key = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            remote::RemoteDispatcher::backoffDelayMs(
                0xd15e7c4ull, ++key, 3, 5, 1000));
    }
}

BENCHMARK(BM_SimulateBatchRequestRoundTrip)->Arg(16)->Arg(256);
BENCHMARK(BM_SimulateBatchReplyRoundTrip)->Arg(16)->Arg(256);
BENCHMARK(BM_BackoffSchedule);

} // namespace

BENCHMARK_MAIN();
