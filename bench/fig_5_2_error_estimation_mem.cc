/**
 * @file
 * Regenerates **Figure 5.2** (and appendix A.2): estimated versus
 * true mean and standard deviation of percentage error as a function
 * of training-set size, for the **memory-system** study.
 *
 * The claim under test: cross-validation estimates track the true
 * error closely (within ~0.5% once >1% of the space is sampled) and
 * are conservative in the sparse regime (Section 5.2).
 */

#include <cstdio>

#include "bench/common.hh"

using namespace dse;
using namespace dse::bench;

int
main()
{
    const auto scope = study::BenchScope::fromEnv({"mesa"});
    std::printf("Figure 5.2: estimated vs true error, memory-system "
                "study\n(apps: %s; paper plots mesa, equake, mcf, "
                "crafty — set DSE_APPS)\n",
                join(scope.apps, ",").c_str());

    for (const auto &app : scope.apps) {
        study::StudyContext ctx(study::StudyKind::MemorySystem, app,
                                scope.traceLength);
        const auto sizes = curveSizes(ctx.space().size(),
                                      scope.maxSamplePct, scope.batch);
        const auto curve = learningCurve(ctx, sizes, scope.evalPoints);
        printCurve(app + " (memory system): estimate vs truth", curve);

        // The figure's takeaway: deviation of estimate from truth.
        Table dev({"sample%", "mean_delta%", "sd_delta%",
                   "conservative"});
        for (const auto &p : curve) {
            dev.newRow();
            dev.add(p.samplePct, 2);
            dev.add(p.estimated.meanPct - p.truth.meanPct, 2);
            dev.add(p.estimated.sdPct - p.truth.sdPct, 2);
            dev.add(std::string(
                p.estimated.meanPct >= p.truth.meanPct ? "yes" : "no"));
        }
        std::printf("\n-- estimate minus truth (%s) --\n", app.c_str());
        dev.print(std::cout);
    }
    return 0;
}
