/**
 * @file
 * Reproduces the paper's **Chapter 4 methodology check**: a
 * Plackett-Burman fractional factorial design with foldover (Yi et
 * al. [29]) ranking the significance of each study's variable
 * parameters — the validation step that justifies which parameters
 * the sensitivity studies vary.
 */

#include <cstdio>

#include "bench/common.hh"
#include "doe/plackett_burman.hh"

using namespace dse;
using namespace dse::bench;

namespace {

void
rankStudy(study::StudyKind kind, const std::string &app,
          size_t trace_length)
{
    study::StudyContext ctx(kind, app, trace_length);
    const auto &space = ctx.space();
    const int factors = static_cast<int>(space.numParams());

    // High/low settings = extreme levels of each parameter.
    auto evaluate = [&](const std::vector<int8_t> &setting) {
        std::vector<int> levels(space.numParams());
        for (size_t p = 0; p < space.numParams(); ++p) {
            levels[p] = setting[p] > 0
                ? space.param(p).numLevels() - 1 : 0;
        }
        return ctx.simulateIpc(space.index(levels));
    };
    const auto result = doe::pbScreen(factors, evaluate,
                                      /*foldover=*/true);

    std::printf("\n== %s / %s: Plackett-Burman ranking (foldover, "
                "%zu runs) ==\n",
                app.c_str(), study::studyName(kind),
                doe::pbDesign(factors, true).size());
    Table t({"rank", "parameter", "effect_on_ipc"});
    for (size_t r = 0; r < result.ranking.size(); ++r) {
        const size_t f = result.ranking[r];
        t.newRow();
        t.add(static_cast<long long>(r + 1));
        t.add(space.param(f).name);
        t.add(result.effects[f], 4);
    }
    t.print(std::cout);
}

} // namespace

int
main()
{
    const auto scope = study::BenchScope::fromEnv({"crafty", "mcf"});
    std::printf("Chapter 4 check: Plackett-Burman parameter "
                "significance ranking\n(apps: %s)\n",
                join(scope.apps, ",").c_str());
    for (const auto &app : scope.apps) {
        rankStudy(study::StudyKind::MemorySystem, app,
                  scope.traceLength);
        rankStudy(study::StudyKind::Processor, app, scope.traceLength);
    }
    return 0;
}
