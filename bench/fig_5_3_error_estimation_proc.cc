/**
 * @file
 * Regenerates **Figure 5.3** (and appendix A.3): estimated versus
 * true mean and standard deviation of percentage error for the
 * **processor** study (same analysis as Figure 5.2 on the other
 * design space).
 */

#include <cstdio>

#include "bench/common.hh"

using namespace dse;
using namespace dse::bench;

int
main()
{
    const auto scope = study::BenchScope::fromEnv({"gzip"});
    std::printf("Figure 5.3: estimated vs true error, processor "
                "study\n(apps: %s; paper plots mesa, equake, mcf, "
                "crafty — set DSE_APPS)\n",
                join(scope.apps, ",").c_str());

    for (const auto &app : scope.apps) {
        study::StudyContext ctx(study::StudyKind::Processor, app,
                                scope.traceLength);
        const auto sizes = curveSizes(ctx.space().size(),
                                      scope.maxSamplePct, scope.batch);
        const auto curve = learningCurve(ctx, sizes, scope.evalPoints);
        printCurve(app + " (processor): estimate vs truth", curve);

        Table dev({"sample%", "mean_delta%", "sd_delta%",
                   "conservative"});
        for (const auto &p : curve) {
            dev.newRow();
            dev.add(p.samplePct, 2);
            dev.add(p.estimated.meanPct - p.truth.meanPct, 2);
            dev.add(p.estimated.sdPct - p.truth.sdPct, 2);
            dev.add(std::string(
                p.estimated.meanPct >= p.truth.meanPct ? "yes" : "no"));
        }
        std::printf("\n-- estimate minus truth (%s) --\n", app.c_str());
        dev.print(std::cout);
    }
    return 0;
}
