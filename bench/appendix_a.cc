/**
 * @file
 * Regenerates **Appendix A (Figures A.1-A.3)**: the learning curves
 * and error-estimation plots for the four applications not shown in
 * the paper's body (applu, mgrid, gzip, twolf), on both studies.
 *
 * Defaults run a single appendix application; the full appendix is
 * DSE_APPS=applu,mgrid,gzip,twolf.
 */

#include <cstdio>

#include "bench/common.hh"

using namespace dse;
using namespace dse::bench;

int
main()
{
    const auto scope = study::BenchScope::fromEnv({"applu"});
    std::printf("Appendix A (Figures A.1-A.3): remaining applications"
                "\n(apps: %s; full appendix: "
                "DSE_APPS=applu,mgrid,gzip,twolf)\n",
                join(scope.apps, ",").c_str());

    for (const auto &app : scope.apps) {
        for (auto kind : {study::StudyKind::MemorySystem,
                          study::StudyKind::Processor}) {
            study::StudyContext ctx(kind, app, scope.traceLength);
            const auto sizes = curveSizes(ctx.space().size(),
                                          scope.maxSamplePct,
                                          scope.batch);
            const auto curve =
                learningCurve(ctx, sizes, scope.evalPoints);
            printCurve(app + " (" + study::studyName(kind) +
                           "): curve + estimate-vs-truth",
                       curve);
        }
    }
    return 0;
}
