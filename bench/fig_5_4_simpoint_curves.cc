/**
 * @file
 * Regenerates **Figure 5.4**: learning curves when ANN modeling is
 * combined with SimPoint — the ensembles train on *SimPoint
 * estimates* (noisy, cheap) of the processor study, while error is
 * measured against full detailed simulation (Section 5.3).
 *
 * The claim under test: ANNs tolerate SimPoint's noise; the curves
 * are only slightly above the full-simulation ones.
 */

#include <cstdio>

#include "bench/common.hh"

using namespace dse;
using namespace dse::bench;

int
main()
{
    const auto scope = study::BenchScope::fromEnv({"mesa", "crafty"});
    std::printf("Figure 5.4: ANN+SimPoint learning curves, processor "
                "study\n(apps: %s; paper plots mesa, equake, mcf, "
                "crafty — set DSE_APPS)\n",
                join(scope.apps, ",").c_str());

    for (const auto &app : scope.apps) {
        study::StudyContext ctx(study::StudyKind::Processor, app,
                                scope.traceLength);
        std::printf("\n%s: SimPoint picked k=%d intervals "
                    "(%zu of %zu instructions detailed, %.1fx fewer)\n",
                    app.c_str(), ctx.simPoints().k,
                    ctx.simPoints().detailedInstructions(),
                    ctx.trace().size(),
                    static_cast<double>(ctx.trace().size()) /
                        static_cast<double>(
                            ctx.simPoints().detailedInstructions()));
        const auto sizes = curveSizes(ctx.space().size(),
                                      scope.maxSamplePct, scope.batch);
        const auto curve = learningCurve(ctx, sizes, scope.evalPoints,
                                         /*simpoint=*/true);
        printCurve(app + " (processor, ANN+SimPoint)", curve);
    }
    return 0;
}
