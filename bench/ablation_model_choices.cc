/**
 * @file
 * Ablation of the modeling design choices the paper motivates in
 * Sections 3.2-3.3 (DESIGN.md "ablation benches"):
 *
 *  - ensemble average vs a single network trained the same way;
 *  - weighted (1/IPC) presentation vs uniform presentation;
 *  - early stopping on vs off;
 *  - fold count (5 / 10 / 20);
 *  - hidden-layer width (8 / 16 / 32).
 *
 * Each variant trains on the same 2% sample of the memory-system
 * space and is measured on the same holdout.
 */

#include <cstdio>

#include "bench/common.hh"
#include "util/stats.hh"

using namespace dse;
using namespace dse::bench;

int
main()
{
    const auto scope = study::BenchScope::fromEnv({"mesa"});
    const std::string app = scope.apps.front();
    std::printf("Ablation: modeling design choices (%s, memory-system "
                "study, 2%% sample)\n", app.c_str());

    study::StudyContext ctx(study::StudyKind::MemorySystem, app,
                            scope.traceLength);
    Rng rng(31);
    const size_t n = static_cast<size_t>(
        0.02 * static_cast<double>(ctx.space().size()));
    const auto train_idx =
        rng.sampleWithoutReplacement(ctx.space().size(), n);
    ml::DataSet data;
    for (uint64_t idx : train_idx)
        data.add(ctx.space().encodeIndex(idx), ctx.simulateIpc(idx));
    const auto eval = study::holdoutIndices(ctx.space(), train_idx,
                                            scope.evalPoints, 33);

    Table t({"variant", "est_mean%", "true_mean%", "true_sd%"});
    auto report = [&](const std::string &name,
                      const ml::TrainOptions &opts) {
        const auto model = ml::trainEnsemble(data, opts);
        const auto err = study::measureTrueError(ctx, model, eval);
        t.newRow();
        t.add(name);
        t.add(model.estimate().meanPct, 2);
        t.add(err.meanPct, 2);
        t.add(err.sdPct, 2);
        std::fprintf(stderr, "  %-28s true=%.2f%%\n", name.c_str(),
                     err.meanPct);
    };

    const auto base = benchTrainOptions();
    report("baseline (paper setup)", base);

    {
        auto opts = base;
        opts.weightedPresentation = false;
        report("uniform presentation", opts);
    }
    {
        auto opts = base;
        opts.earlyStopping = false;
        report("no early stopping", opts);
    }
    {
        auto opts = base;
        opts.folds = 5;
        report("5 folds", opts);
    }
    {
        auto opts = base;
        opts.folds = 20;
        report("20 folds", opts);
    }
    {
        auto opts = base;
        opts.ann.hiddenUnits = 8;
        report("8 hidden units", opts);
    }
    {
        auto opts = base;
        opts.ann.hiddenUnits = 32;
        report("32 hidden units", opts);
    }

    // Single network vs the ensemble: train one member on all data
    // by collapsing to 2 folds and reading a single member.
    {
        auto opts = base;
        const auto model = ml::trainEnsemble(data, opts);
        std::vector<double> errors;
        for (uint64_t idx : eval) {
            const double pred = model.predictMember(
                0, ctx.space().encodeIndex(idx));
            errors.push_back(
                percentageError(pred, ctx.simulateIpc(idx)));
        }
        t.newRow();
        t.add(std::string("single member (no averaging)"));
        t.add(model.estimate().meanPct, 2);
        t.add(mean(errors), 2);
        t.add(stddev(errors), 2);
    }

    t.print(std::cout);
    std::printf("\nExpected shape: baseline <= each ablated variant; "
                "averaging beats any single member (Section 3.2).\n");
    return 0;
}
