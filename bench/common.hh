/**
 * @file
 * Shared machinery for the paper-reproduction benchmark harnesses:
 * learning-curve sweeps (incremental training sets, fixed holdout),
 * default training budgets, and simulated-instruction accounting for
 * the reduction-factor figures.
 *
 * Scope knobs (environment): DSE_APPS, DSE_EVAL_POINTS,
 * DSE_FULL_SPACE, DSE_TRACE_LEN, DSE_MAX_SAMPLE_PCT, DSE_BATCH
 * (study::BenchScope), plus DSE_MAX_EPOCHS for the training budget
 * and DSE_THREADS for the worker pool that batch simulation, fold
 * training, and holdout evaluation fan out on.
 */

#ifndef DSE_BENCH_COMMON_HH
#define DSE_BENCH_COMMON_HH

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "ml/cross_validation.hh"
#include "study/harness.hh"
#include "util/env.hh"
#include "util/metrics.hh"
#include "util/rng.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

namespace dse {
namespace bench {

/** Threads the global pool runs loops on (DSE_THREADS / hardware). */
inline size_t
effectiveThreads()
{
    return util::ThreadPool::global().threadCount();
}

/** One point of a learning curve. */
struct CurvePoint
{
    size_t samples = 0;
    double samplePct = 0.0;
    ml::ErrorEstimate estimated;   ///< cross-validation estimate
    study::TrueError truth;        ///< measured on the holdout
};

/** Training budget for benchmark runs (reduced wall clock). */
inline ml::TrainOptions
benchTrainOptions()
{
    ml::TrainOptions opts;
    opts.maxEpochs = static_cast<int>(envInt("DSE_MAX_EPOCHS", 5000));
    opts.esInterval = 25;
    opts.patience = 20;
    return opts;
}

/**
 * Training-set sizes for a learning curve: `batch` up to
 * `max_pct` percent of the space, in a handful of increments
 * (the paper uses 50-instruction increments; the default here is
 * coarser to fit a laptop-scale run — tighten with DSE_BATCH).
 */
inline std::vector<size_t>
curveSizes(uint64_t space_size, double max_pct, size_t batch)
{
    const size_t cap = static_cast<size_t>(
        max_pct / 100.0 * static_cast<double>(space_size));
    std::vector<size_t> sizes;
    // Geometric-ish ramp: dense early where the curve moves fastest.
    for (size_t n = batch; n < cap; n = n * 3 / 2 + batch)
        sizes.push_back(n);
    // Top up with the exact cap unless the ramp already landed there
    // (within one batch).
    if (sizes.empty() || sizes.back() + batch / 2 < cap)
        sizes.push_back(cap);
    return sizes;
}

/**
 * Sweep a learning curve on one (study, app) context.
 *
 * Training sets grow incrementally (size i is a prefix of size i+1,
 * as in the paper's batched collection); the holdout is fixed and
 * disjoint from every training set.
 *
 * @param simpoint train on SimPoint estimates instead of full
 *        simulations (true error is still measured against full
 *        simulation, Section 5.3)
 */
inline std::vector<CurvePoint>
learningCurve(study::StudyContext &ctx, const std::vector<size_t> &sizes,
              size_t eval_points, bool simpoint = false,
              ml::TrainOptions train = benchTrainOptions(),
              uint64_t seed = 2024)
{
    Rng rng(seed);
    const size_t max_n = sizes.back();
    const auto order =
        rng.sampleWithoutReplacement(ctx.space().size(), max_n);
    const auto eval = study::holdoutIndices(ctx.space(), order,
                                            eval_points, seed + 1);

    // Run every training-set simulation up front as one parallel
    // batch; the incremental loop below then reads the memoized
    // results (the holdout is batched inside measureTrueError).
    if (simpoint)
        ctx.simulateSimPointBatch(order);
    else
        ctx.simulateBatch(order);

    std::vector<CurvePoint> curve;
    ml::DataSet data;
    size_t filled = 0;
    for (size_t n : sizes) {
        for (; filled < n; ++filled) {
            const uint64_t idx = order[filled];
            const double y = simpoint ? ctx.simulateSimPointIpc(idx)
                                      : ctx.simulateIpc(idx);
            data.add(ctx.space().encodeIndex(idx), y);
        }
        ml::TrainOptions opts = train;
        opts.seed = train.seed + n;
        const auto model = ml::trainEnsemble(data, opts);

        CurvePoint point;
        point.samples = n;
        point.samplePct = 100.0 * static_cast<double>(n) /
            static_cast<double>(ctx.space().size());
        point.estimated = model.estimate();
        point.truth = study::measureTrueError(ctx, model, eval);
        curve.push_back(point);
        std::fprintf(stderr,
                     "  [%s/%s%s] n=%zu (%.2f%%) est=%.2f%% true=%.2f%%\n",
                     ctx.app().c_str(), study::studyName(ctx.kind()),
                     simpoint ? "+SimPoint" : "", n, point.samplePct,
                     point.estimated.meanPct, point.truth.meanPct);
    }
    return curve;
}

/** Smallest sample size on a curve whose true error is <= target. */
inline const CurvePoint *
firstReaching(const std::vector<CurvePoint> &curve, double target_pct)
{
    for (const auto &p : curve) {
        if (p.truth.meanPct <= target_pct)
            return &p;
    }
    return nullptr;
}

/** Print a curve as an aligned table (and CSV when DSE_CSV=1). */
inline void
printCurve(const std::string &title, const std::vector<CurvePoint> &curve)
{
    if (obs::metricsEnabled()) {
        // Annotate the curve header with the simulation-cache story
        // so a bench log records how much work was memoized away.
        const auto snap = obs::MetricsRegistry::global().snapshot();
        std::printf("\n== %s (threads=%zu sim.executed=%llu "
                    "sim.memo_hits=%llu) ==\n",
                    title.c_str(), effectiveThreads(),
                    static_cast<unsigned long long>(
                        snap.counter("sim.executed")),
                    static_cast<unsigned long long>(
                        snap.counter("sim.memo_hits")));
    } else {
        std::printf("\n== %s (threads=%zu) ==\n", title.c_str(),
                    effectiveThreads());
    }
    Table t({"samples", "sample%", "est_mean%", "est_sd%", "true_mean%",
             "true_sd%"});
    for (const auto &p : curve) {
        t.newRow();
        t.add(static_cast<long long>(p.samples));
        t.add(p.samplePct, 2);
        t.add(p.estimated.meanPct, 2);
        t.add(p.estimated.sdPct, 2);
        t.add(p.truth.meanPct, 2);
        t.add(p.truth.sdPct, 2);
    }
    std::ostream &os = std::cout;
    if (envBool("DSE_CSV", false))
        t.printCsv(os);
    else
        t.print(os);
}

} // namespace bench
} // namespace dse

#endif // DSE_BENCH_COMMON_HH
