/**
 * @file
 * Regenerates **Table 5.1** ("Results for all studies"): for each
 * application and both studies, the true and cross-validation-
 * estimated mean and standard deviation of percentage error at
 * training sets of roughly 1%, 2%, and 4% of the full design space.
 *
 * Defaults run the four applications the paper's body focuses on;
 * set DSE_APPS=gzip,mcf,crafty,twolf,mgrid,applu,mesa,equake for the
 * full table (the appendix_a binary covers the other four too).
 */

#include <cstdio>

#include "bench/common.hh"

using namespace dse;
using namespace dse::bench;

namespace {

void
runStudy(study::StudyKind kind, const study::BenchScope &scope,
         Table &table)
{
    for (const auto &app : scope.apps) {
        study::StudyContext ctx(kind, app, scope.traceLength);
        const uint64_t space = ctx.space().size();
        // The paper's columns: ~1%, ~2%, ~4% of the space.
        const std::vector<size_t> sizes = {
            static_cast<size_t>(0.01 * static_cast<double>(space)),
            static_cast<size_t>(0.02 * static_cast<double>(space)),
            static_cast<size_t>(0.04 * static_cast<double>(space)),
        };
        const auto curve =
            learningCurve(ctx, sizes, scope.evalPoints);
        for (const auto &p : curve) {
            table.newRow();
            table.add(std::string(study::studyName(kind)));
            table.add(app);
            table.add(p.samplePct, 2);
            table.add(p.truth.meanPct, 2);
            table.add(p.estimated.meanPct, 2);
            table.add(p.truth.sdPct, 2);
            table.add(p.estimated.sdPct, 2);
        }
    }
}

} // namespace

int
main()
{
    const auto scope = study::BenchScope::fromEnv(
        {"mesa", "mcf", "crafty", "equake"});

    std::printf("Table 5.1: true vs. estimated mean/SD of percentage "
                "error at ~1/2/4%% samples\n");
    std::printf("(apps: %s; eval points: %zu; set DSE_APPS/"
                "DSE_EVAL_POINTS to widen)\n",
                join(scope.apps, ",").c_str(), scope.evalPoints);

    Table table({"study", "app", "sample%", "true_mean%", "est_mean%",
                 "true_sd%", "est_sd%"});
    runStudy(study::StudyKind::MemorySystem, scope, table);
    runStudy(study::StudyKind::Processor, scope, table);
    if (envBool("DSE_CSV", false))
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    return 0;
}
