/**
 * @file
 * Regenerates **Figure 5.8**: ensemble training time as a function of
 * training-set size (1-9% of the memory-system space). The paper's
 * claims: training time scales linearly in the training-set size
 * (complexity O(H(I+O)PD), Section 5.4 footnote) and is negligible
 * next to simulation time.
 *
 * Implemented with google-benchmark so timing methodology (warmup,
 * repetition) is standard.
 */

#include <benchmark/benchmark.h>

#include "bench/common.hh"

using namespace dse;
using namespace dse::bench;

namespace {

/** Shared data: one memory-system context + simulated targets. */
study::StudyContext &
sharedContext()
{
    static study::StudyContext ctx(study::StudyKind::MemorySystem,
                                   "mesa", 16384);
    return ctx;
}

const ml::DataSet &
sharedData(size_t n)
{
    static ml::DataSet data;
    static std::vector<uint64_t> order;
    auto &ctx = sharedContext();
    if (order.empty()) {
        Rng rng(7);
        order = rng.sampleWithoutReplacement(
            ctx.space().size(),
            static_cast<size_t>(0.09 * static_cast<double>(
                ctx.space().size())) + 1);
    }
    while (data.size() < n && data.size() < order.size()) {
        const uint64_t idx = order[data.size()];
        data.add(ctx.space().encodeIndex(idx), ctx.simulateIpc(idx));
    }
    return data;
}

void
BM_EnsembleTraining(benchmark::State &state)
{
    auto &ctx = sharedContext();
    const double pct = static_cast<double>(state.range(0));
    const size_t n = static_cast<size_t>(
        pct / 100.0 * static_cast<double>(ctx.space().size()));
    const auto &all = sharedData(n);
    ml::DataSet data;
    for (size_t i = 0; i < n; ++i)
        data.add(all.x[i], all.y[i]);

    ml::TrainOptions opts = benchTrainOptions();
    // Fixed epoch budget so the measurement isolates the per-pass
    // cost's linear scaling in D (the paper trains a fixed pipeline
    // per batch too).
    opts.maxEpochs = 400;
    opts.earlyStopping = false;

    for (auto _ : state) {
        auto model = ml::trainEnsemble(data, opts);
        benchmark::DoNotOptimize(model.estimate().meanPct);
    }
    state.counters["train_points"] = static_cast<double>(n);
    state.counters["points_per_sec"] = benchmark::Counter(
        static_cast<double>(n) * 400 * 10,
        benchmark::Counter::kIsIterationInvariantRate);
}

} // namespace

BENCHMARK(BM_EnsembleTraining)
    ->Arg(1)
    ->Arg(3)
    ->Arg(5)
    ->Arg(7)
    ->Arg(9)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK_MAIN();
