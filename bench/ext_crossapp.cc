/**
 * @file
 * Future-work extension bench (Chapter 7): **cross-application
 * modeling** — make the application identity a one-hot model input
 * and train one joint ensemble over several benchmarks. Where the
 * benchmarks share response structure, the joint model reaches a
 * given accuracy from fewer simulations *per application* than
 * separate models do.
 *
 * Also exercises the **SMARTS** systematic-sampling substrate named
 * in Chapter 2 as a companion to SimPoint, comparing the two partial-
 * simulation estimators' noise at matched instruction budgets.
 */

#include <cstdio>

#include "bench/common.hh"
#include "ml/crossapp.hh"
#include "simpoint/smarts.hh"
#include "util/stats.hh"

using namespace dse;
using namespace dse::bench;

namespace {

void
crossAppComparison(const std::vector<std::string> &apps,
                   size_t per_app, size_t eval_points,
                   size_t trace_length)
{
    std::printf("\n== joint vs per-app models (%zu sims per app) ==\n",
                per_app);
    // Shared space, shared sample indices.
    std::vector<std::unique_ptr<study::StudyContext>> ctxs;
    for (const auto &app : apps) {
        ctxs.push_back(std::make_unique<study::StudyContext>(
            study::StudyKind::Processor, app, trace_length));
    }
    const auto &space = ctxs.front()->space();
    ml::CrossAppSpace joint(space, apps);

    Rng rng(41);
    const auto train_idx =
        rng.sampleWithoutReplacement(space.size(), per_app);
    const auto eval = study::holdoutIndices(space, train_idx,
                                            eval_points, 43);

    // Joint model over all apps' samples.
    std::vector<ml::CrossAppSample> samples;
    for (size_t a = 0; a < apps.size(); ++a) {
        for (uint64_t idx : train_idx)
            samples.push_back({a, idx, ctxs[a]->simulateIpc(idx)});
    }
    const auto joint_model =
        ml::trainCrossAppEnsemble(joint, samples, benchTrainOptions());

    Table t({"app", "per-app_model%", "joint_model%"});
    for (size_t a = 0; a < apps.size(); ++a) {
        // Per-app baseline on the same sample.
        ml::DataSet solo;
        for (uint64_t idx : train_idx)
            solo.add(space.encodeIndex(idx), ctxs[a]->simulateIpc(idx));
        const auto solo_model =
            ml::trainEnsemble(solo, benchTrainOptions());

        std::vector<double> solo_err, joint_err;
        for (uint64_t idx : eval) {
            const double truth = ctxs[a]->simulateIpc(idx);
            solo_err.push_back(percentageError(
                solo_model.predict(space.encodeIndex(idx)), truth));
            joint_err.push_back(percentageError(
                joint_model.predict(joint.encode(a, idx)), truth));
        }
        t.newRow();
        t.add(apps[a]);
        t.add(mean(solo_err), 2);
        t.add(mean(joint_err), 2);
    }
    t.print(std::cout);
}

void
smartsVsSimPoint(const std::string &app, size_t trace_length)
{
    std::printf("\n== SMARTS vs SimPoint estimator noise (%s) ==\n",
                app.c_str());
    study::StudyContext ctx(study::StudyKind::Processor, app,
                            trace_length);
    // Match budgets: SMARTS cadence chosen so both simulate a similar
    // number of detailed instructions.
    const size_t sp_instr = ctx.simPointInstructionsPerEstimate();
    simpoint::SmartsOptions smarts;
    smarts.unitInstructions =
        std::max<size_t>(256, ctx.trace().size() / 64);
    smarts.cadence = std::max<size_t>(
        1, ctx.trace().size() / std::max<size_t>(1, sp_instr) / 2);

    Rng rng(47);
    std::vector<double> sp_err, sm_err;
    size_t sm_instr = 0;
    for (int i = 0; i < 12; ++i) {
        const uint64_t idx = rng.below(ctx.space().size());
        const double full = ctx.simulateIpc(idx);
        sp_err.push_back(percentageError(
            ctx.simulateSimPointIpc(idx), full));
        const auto est = simpoint::smartsEstimateIpc(
            ctx.trace(), ctx.config(idx), smarts);
        sm_instr = est.instructionsSimulated;
        sm_err.push_back(percentageError(est.ipc, full));
    }
    Table t({"estimator", "detailed_instr", "mean_err%", "sd_err%"});
    t.newRow();
    t.add(std::string("SimPoint (calibrated)"));
    t.add(static_cast<long long>(sp_instr));
    t.add(mean(sp_err), 2);
    t.add(stddev(sp_err), 2);
    t.newRow();
    t.add(std::string("SMARTS (systematic)"));
    t.add(static_cast<long long>(sm_instr));
    t.add(mean(sm_err), 2);
    t.add(stddev(sm_err), 2);
    t.print(std::cout);
}

} // namespace

int
main()
{
    const auto scope = study::BenchScope::fromEnv({"gzip", "crafty"});
    std::printf("Extension: cross-application modeling and SMARTS "
                "sampling (Chapters 2 and 7)\n(apps: %s)\n",
                join(scope.apps, ",").c_str());
    crossAppComparison(scope.apps, 150,
                       std::min<size_t>(scope.evalPoints, 400),
                       scope.traceLength);
    smartsVsSimPoint(scope.apps.front(), scope.traceLength);
    return 0;
}
