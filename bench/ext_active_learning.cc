/**
 * @file
 * Future-work extension bench (Chapter 7): **active learning** —
 * instead of sampling the design space uniformly, let the ensemble
 * pick the points its members disagree on most (query by committee).
 * Compares error versus simulations spent against random sampling,
 * and also exercises the cross-application idea by reporting both an
 * easy and a hard application.
 */

#include <cstdio>

#include "bench/common.hh"
#include "ml/explorer.hh"

using namespace dse;
using namespace dse::bench;

namespace {

void
compareStrategies(const std::string &app, size_t trace_length,
                  size_t eval_points)
{
    std::printf("\n== %s (processor study) ==\n", app.c_str());
    Table t({"strategy", "samples", "est_mean%", "true_mean%"});

    for (bool active : {false, true}) {
        study::StudyContext ctx(study::StudyKind::Processor, app,
                                trace_length);
        ml::ExplorerOptions opts;
        opts.batchSize = 50;
        opts.maxSimulations = 250;
        opts.targetMeanPct = 0.0;  // run to the cap
        opts.activeLearning = active;
        opts.candidatePool = 400;
        opts.train = benchTrainOptions();

        ml::Explorer explorer(
            ctx.space(),
            [&](uint64_t i) { return ctx.simulateIpc(i); }, opts);
        const auto history = explorer.run();

        const auto eval = study::holdoutIndices(
            ctx.space(), explorer.sampledIndices(), eval_points, 17);
        const auto err = study::measureTrueError(
            ctx, explorer.ensemble(), eval);
        t.newRow();
        t.add(std::string(active ? "active (committee spread)"
                                 : "random sampling"));
        t.add(static_cast<long long>(explorer.sampledIndices().size()));
        t.add(history.back().estimate.meanPct, 2);
        t.add(err.meanPct, 2);
    }
    t.print(std::cout);
}

} // namespace

int
main()
{
    const auto scope = study::BenchScope::fromEnv({"mesa", "twolf"});
    std::printf("Extension: active learning vs random sampling "
                "(Chapter 7 future work)\n(apps: %s)\n",
                join(scope.apps, ",").c_str());
    for (const auto &app : scope.apps)
        compareStrategies(app, scope.traceLength,
                          std::min<size_t>(scope.evalPoints, 600));
    return 0;
}
