#!/bin/bash
# Fail fast on script bugs, and report a nonzero exit when any bench
# fails so CI can gate on this script instead of eyeballing logs.
set -euo pipefail
cd /root/repo
# Fan batch simulation / fold training / holdout evaluation out over
# all cores unless the caller pinned a thread count.
export DSE_THREADS="${DSE_THREADS:-$(nproc)}"
echo "DSE_THREADS=$DSE_THREADS"
# Google-Benchmark binaries also emit machine-readable JSON next to
# this script (BENCH_<name>.json) so perf changes can be diffed against
# the committed baselines (e.g. BENCH_ann.json for micro_ann).
GBENCH_BINARIES="micro_ann fig_5_8_training_times"
failed=0
for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo "===================================================================="
    echo "== $b"
    echo "===================================================================="
    name=$(basename "$b")
    extra=()
    case " $GBENCH_BINARIES " in
      *" $name "*)
        out="BENCH_${name#micro_}.json"
        extra=("--benchmark_out=$out" "--benchmark_out_format=json")
        ;;
    esac
    rc=0
    timeout 3000 "$b" "${extra[@]}" 2>/dev/null || rc=$?
    if [ "$rc" -ne 0 ]; then
        echo "BENCH FAILED: $b (exit $rc)" >&2
        failed=1
    fi
    echo
done
if [ "$failed" -ne 0 ]; then
    echo "one or more benches failed" >&2
    exit 1
fi
