#!/bin/bash
cd /root/repo
for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo "===================================================================="
    echo "== $b"
    echo "===================================================================="
    timeout 3000 "$b" 2>/dev/null
    echo
done
