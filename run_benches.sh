#!/bin/bash
cd /root/repo
# Fan batch simulation / fold training / holdout evaluation out over
# all cores unless the caller pinned a thread count.
export DSE_THREADS="${DSE_THREADS:-$(nproc)}"
echo "DSE_THREADS=$DSE_THREADS"
for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo "===================================================================="
    echo "== $b"
    echo "===================================================================="
    timeout 3000 "$b" 2>/dev/null
    echo
done
