#!/bin/bash
# Fail fast on script bugs, and report a nonzero exit when any bench
# fails so CI can gate on this script instead of eyeballing logs.
set -euo pipefail
cd /root/repo
# Fan batch simulation / fold training / holdout evaluation out over
# all cores unless the caller pinned a thread count.
export DSE_THREADS="${DSE_THREADS:-$(nproc)}"
# Arm the dse::obs metrics layer so curve headers record the
# simulation-cache story (sim.executed / sim.memo_hits). Callers can
# pin DSE_METRICS=0 for an instrumentation-free timing run.
export DSE_METRICS="${DSE_METRICS:-1}"
echo "DSE_THREADS=$DSE_THREADS DSE_METRICS=$DSE_METRICS"
# Google-Benchmark binaries also emit machine-readable JSON next to
# this script (BENCH_<name>.json) so perf changes can be diffed against
# the committed baselines (e.g. BENCH_ann.json for micro_ann).
GBENCH_BINARIES="micro_ann micro_explore fig_5_8_training_times"

# Gate a freshly written BENCH_<name>.json before it can replace the
# committed baseline: it must parse as JSON and contain a non-empty
# "benchmarks" array. A crashed or timed-out bench otherwise leaves a
# truncated file that silently poisons every later perf diff.
check_bench_json() {
    local f="$1"
    if command -v python3 >/dev/null 2>&1; then
        python3 - "$f" <<'EOF'
import json, sys
try:
    with open(sys.argv[1]) as fh:
        doc = json.load(fh)
except (OSError, ValueError) as e:
    sys.exit(f"{sys.argv[1]}: not valid JSON: {e}")
benches = doc.get("benchmarks")
if not isinstance(benches, list) or not benches:
    sys.exit(f"{sys.argv[1]}: no benchmarks recorded")
EOF
    else
        # Fallback sanity check without python3: non-empty, contains a
        # benchmarks array, and ends with a closing brace (gbench JSON
        # is truncated mid-array when the process dies).
        [ -s "$f" ] && grep -q '"benchmarks"' "$f" &&
            [ "$(tail -c 2 "$f" | tr -d '[:space:]')" = "}" ]
    fi
}

failed=0
for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo "===================================================================="
    echo "== $b"
    echo "===================================================================="
    name=$(basename "$b")
    out=""
    extra=()
    case " $GBENCH_BINARIES " in
      *" $name "*)
        out="BENCH_${name#micro_}.json"
        # Write to a temp file first; only a validated run may replace
        # the committed baseline.
        extra=("--benchmark_out=$out.tmp" "--benchmark_out_format=json")
        ;;
    esac
    rc=0
    timeout 3000 "$b" "${extra[@]}" 2>/dev/null || rc=$?
    if [ "$rc" -ne 0 ]; then
        echo "BENCH FAILED: $b (exit $rc)" >&2
        [ -n "$out" ] && rm -f "$out.tmp"
        failed=1
    elif [ -n "$out" ]; then
        if check_bench_json "$out.tmp"; then
            mv "$out.tmp" "$out"
            # Advisory regression diff against the committed baseline
            # (tools/bench_compare.py, same gate ctest runs
            # parse-only). Advisory because this host's load differs
            # from the baseline host's — a FAIL here means "look
            # before committing the refreshed numbers", not "the run
            # is broken".
            gate=()
            case "$out" in
              BENCH_ann.json)
                gate=(--bench 'BM_AnnTrainStep/.*'
                      --bench 'BM_EnsemblePredictSpace')
                ;;
              BENCH_explore.json)
                gate=(--bench 'BM_MemberSpreadBatched/.*'
                      --bench 'BM_PickBatch/.*')
                ;;
            esac
            if [ "${#gate[@]}" -gt 0 ] &&
                command -v python3 >/dev/null 2>&1 &&
                git show "HEAD:$out" >"$out.base" 2>/dev/null; then
                python3 tools/bench_compare.py "$out.base" "$out" \
                    "${gate[@]}" ||
                    echo "ADVISORY: $out regressed vs HEAD baseline" >&2
                rm -f "$out.base"
            fi
        else
            echo "BENCH OUTPUT INVALID: $out.tmp (kept $out)" >&2
            rm -f "$out.tmp"
            failed=1
        fi
    fi
    echo
done
# Prediction-service throughput: start dse_serve on an ephemeral port
# with a small self-trained model, drive it with the closed-loop load
# generator, and archive the latency/throughput report the same way as
# the gbench JSON. The model quality is irrelevant here — the bench
# measures the wire + batching + predictBatch path.
echo "===================================================================="
echo "== serve (dse_serve + dse_loadgen)"
echo "===================================================================="
if [ -x build/tools/dse_serve ] && [ -x build/tools/dse_loadgen ]; then
    port_file=$(mktemp)
    rm -f "$port_file"
    build/tools/dse_serve --study=memory --app=gzip --train \
        --max-sims=120 --max-epochs=800 --port=0 \
        --port-file="$port_file" &
    serve_pid=$!
    # The port file appears once the socket is listening (training
    # happens first and dominates startup).
    for _ in $(seq 1 600); do
        [ -s "$port_file" ] && break
        kill -0 "$serve_pid" 2>/dev/null || break
        sleep 0.5
    done
    if [ -s "$port_file" ] &&
        timeout 600 build/tools/dse_loadgen --port-file="$port_file" \
            --connections=8 --requests=20000 --points=1 \
            --json=BENCH_serve.json.tmp &&
        check_bench_json BENCH_serve.json.tmp; then
        mv BENCH_serve.json.tmp BENCH_serve.json
    else
        echo "BENCH FAILED: serve" >&2
        rm -f BENCH_serve.json.tmp
        failed=1
    fi
    kill -TERM "$serve_pid" 2>/dev/null || true
    wait "$serve_pid" 2>/dev/null || true
    rm -f "$port_file"
else
    echo "serve tools not built; skipping" >&2
fi
echo

if [ "$failed" -ne 0 ]; then
    echo "one or more benches failed" >&2
    exit 1
fi
