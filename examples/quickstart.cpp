/**
 * @file
 * Quickstart: the library in ~40 effective lines.
 *
 * 1. Describe a design space (here: a small slice of the paper's
 *    memory-system space).
 * 2. Provide a "simulator" — any function from design-point index to
 *    a metric. Here it is the bundled cycle-level simulator running
 *    the synthetic gzip workload.
 * 3. Let the Explorer sample, simulate, and train until its
 *    cross-validation error estimate is low enough.
 * 4. Predict any point in the space without simulating it.
 */

#include <cstdio>

#include "ml/explorer.hh"
#include "sim/cacti.hh"
#include "sim/core.hh"
#include "workload/generator.hh"

using namespace dse;

int
main()
{
    // 1. A 3-parameter design space: 4 * 4 * 2 = 32 points... too
    // tiny to show off; use L1/L2/bus: 4 * 4 * 3 = 48 points so the
    // quickstart finishes in seconds.
    ml::DesignSpace space;
    space.addCardinal("L1SizeKB", {8, 16, 32, 64});
    space.addCardinal("L2SizeKB", {256, 512, 1024, 2048});
    space.addCardinal("L2BusB", {8, 16, 32});

    // 2. Wire design points to the simulator.
    const auto trace = workload::generateBenchmarkTrace("gzip", 16384);
    auto simulate_point = [&](uint64_t index) {
        const auto lv = space.levels(index);
        sim::MachineConfig cfg;
        cfg.l1d.sizeKB = static_cast<int>(space.value(0, lv[0]));
        cfg.l2.sizeKB = static_cast<int>(space.value(1, lv[1]));
        cfg.l2BusBytes = static_cast<int>(space.value(2, lv[2]));
        sim::CactiModel::applyLatencies(cfg);
        sim::SimOptions opts;
        opts.warmCaches = true;
        return sim::simulate(trace, cfg, opts).ipc;
    };

    // 3. Explore: batches of 8 simulations until the estimated mean
    // percentage error drops below 3%.
    ml::ExplorerOptions opts;
    opts.batchSize = 8;
    opts.targetMeanPct = 3.0;
    opts.train.folds = 5;
    opts.train.maxEpochs = 3000;

    ml::Explorer explorer(space, simulate_point, opts);
    for (const auto &step : explorer.run()) {
        std::printf("after %3zu simulations: estimated error "
                    "%.2f%% +- %.2f%%\n",
                    step.totalSamples, step.estimate.meanPct,
                    step.estimate.sdPct);
    }

    // 4. Predict everywhere; verify one unsampled point.
    for (uint64_t idx : {0ull, 20ull, 47ull}) {
        std::printf("point %2llu: predicted IPC %.3f, simulated %.3f\n",
                    static_cast<unsigned long long>(idx),
                    explorer.predictIndex(idx), simulate_point(idx));
    }
    std::printf("\nsimulated %zu of %llu points (%.0f%%)\n",
                explorer.sampledIndices().size(),
                static_cast<unsigned long long>(space.size()),
                100.0 * static_cast<double>(
                    explorer.sampledIndices().size()) /
                    static_cast<double>(space.size()));
    return 0;
}
