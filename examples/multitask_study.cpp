/**
 * @file
 * Multi-task learning extension (Chapter 7): one ensemble with
 * several output units predicts IPC *and* the correlated secondary
 * metrics a simulator reports (L1D/L2 miss rates, branch
 * misprediction rate) for unsimulated configurations. The secondary
 * metrics cannot be inputs — they are unknown before simulation —
 * but sharing the hidden layer lets their structure inform the IPC
 * prediction.
 */

#include <cstdio>

#include "ml/multitask.hh"
#include "study/harness.hh"
#include "util/rng.hh"
#include "util/stats.hh"

using namespace dse;

int
main()
{
    const char *app = "twolf";
    study::StudyContext ctx(study::StudyKind::MemorySystem, app);
    const auto &space = ctx.space();

    Rng rng(55);
    const size_t n = static_cast<size_t>(
        0.02 * static_cast<double>(space.size()));
    const auto sample = rng.sampleWithoutReplacement(space.size(), n);

    ml::MultiTaskDataSet data;
    data.targetNames = {"IPC", "L1D miss rate", "L2 miss rate",
                        "BP misprediction rate"};
    for (uint64_t idx : sample) {
        const auto &r = ctx.simulateFull(idx);
        data.add(space.encodeIndex(idx),
                 {r.ipc, r.l1dMissRate, r.l2MissRate,
                  r.branchMispredictRate});
    }

    ml::TrainOptions train;
    train.maxEpochs = 5000;
    const auto model = ml::trainMultiTaskEnsemble(data, train);
    std::printf("%s (memory-system): multi-task ensemble on %zu "
                "simulations, primary estimate %.2f%%\n",
                app, n, model.estimate().meanPct);

    // Evaluate all four heads on a holdout.
    const auto eval = study::holdoutIndices(space, sample, 250, 3);
    std::vector<std::vector<double>> errs(data.targets());
    for (uint64_t idx : eval) {
        const auto &r = ctx.simulateFull(idx);
        const double truth[] = {r.ipc, r.l1dMissRate, r.l2MissRate,
                                r.branchMispredictRate};
        const auto pred = model.predictAll(space.encodeIndex(idx));
        for (size_t t = 0; t < data.targets(); ++t)
            errs[t].push_back(percentageError(pred[t], truth[t]));
    }
    std::printf("\nper-metric true error on a %zu-point holdout:\n",
                eval.size());
    for (size_t t = 0; t < data.targets(); ++t) {
        std::printf("  %-24s %.2f%% +- %.2f%%\n",
                    data.targetNames[t].c_str(), mean(errs[t]),
                    stddev(errs[t]));
    }

    // Show one prediction in full.
    const uint64_t probe = eval.front();
    const auto pred = model.predictAll(space.encodeIndex(probe));
    const auto &r = ctx.simulateFull(probe);
    std::printf("\nexample point %llu:\n",
                static_cast<unsigned long long>(probe));
    std::printf("  IPC        predicted %.3f  simulated %.3f\n",
                pred[0], r.ipc);
    std::printf("  L1D miss   predicted %.3f  simulated %.3f\n",
                pred[1], r.l1dMissRate);
    std::printf("  L2 miss    predicted %.3f  simulated %.3f\n",
                pred[2], r.l2MissRate);
    std::printf("  BP mispred predicted %.3f  simulated %.3f\n",
                pred[3], r.branchMispredictRate);
    return 0;
}
