/**
 * @file
 * Active-learning extension (Chapter 7): instead of random sampling,
 * let the committee (the cross-validation ensemble) choose which
 * configurations to simulate next — the points where its members
 * disagree most. This example runs both strategies side by side on
 * the processor study and reports error per simulation budget.
 */

#include <cstdio>

#include "ml/explorer.hh"
#include "study/harness.hh"

using namespace dse;

namespace {

void
runStrategy(study::StudyKind kind, const char *app, bool active)
{
    study::StudyContext ctx(kind, app);
    ml::ExplorerOptions opts;
    opts.batchSize = 50;
    opts.maxSimulations = 200;
    opts.targetMeanPct = 0.0;
    opts.activeLearning = active;
    opts.candidatePool = 400;
    opts.train.maxEpochs = 4000;

    ml::Explorer explorer(
        ctx.space(), [&](uint64_t i) { return ctx.simulateIpc(i); },
        opts);

    std::printf("\n%s sampling:\n",
                active ? "active (query-by-committee)" : "random");
    for (const auto &step : explorer.run()) {
        // Measure the true error as the rounds progress.
        const auto eval = study::holdoutIndices(
            ctx.space(), explorer.sampledIndices(), 250, 13);
        const auto err =
            study::measureTrueError(ctx, explorer.ensemble(), eval);
        std::printf("  %3zu sims: estimated %.2f%%  true %.2f%%\n",
                    step.totalSamples, step.estimate.meanPct,
                    err.meanPct);
    }
}

} // namespace

int
main()
{
    const char *app = "gzip";
    std::printf("active learning vs random sampling "
                "(processor study, %s)\n", app);
    runStrategy(study::StudyKind::Processor, app, false);
    runStrategy(study::StudyKind::Processor, app, true);
    std::printf("\nActive learning spends its budget on the regions "
                "the committee is unsure about; gains grow with the "
                "roughness of the response surface (Chapter 7).\n");
    return 0;
}
