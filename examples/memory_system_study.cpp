/**
 * @file
 * The paper's memory-system sensitivity study (Table 4.1) as a user
 * would run it: incrementally collect simulations of the 23,040-point
 * space for one application until the model's own error estimate
 * reaches a target, then use the model to answer the architect's
 * actual questions — here, the IPC cost of halving the L2 and the
 * best configuration under a "no 2 MB L2" constraint — without
 * running any further simulations.
 */

#include <cstdio>

#include "ml/explorer.hh"
#include "study/harness.hh"
#include "util/table.hh"

using namespace dse;

int
main()
{
    const char *app = "crafty";
    study::StudyContext ctx(study::StudyKind::MemorySystem, app);
    const auto &space = ctx.space();
    std::printf("memory-system study on %s: %llu design points\n", app,
                static_cast<unsigned long long>(space.size()));

    ml::ExplorerOptions opts;
    opts.batchSize = 50;           // the paper's batch size
    opts.targetMeanPct = 6.0;
    opts.maxSimulations = 500;
    opts.train.maxEpochs = 4000;

    ml::Explorer explorer(
        space, [&](uint64_t i) { return ctx.simulateIpc(i); }, opts);
    for (const auto &step : explorer.run()) {
        std::printf("  %3zu sims -> estimated error %.2f%%\n",
                    step.totalSamples, step.estimate.meanPct);
    }

    // Question 1: predicted IPC across the L2 size sweep with
    // everything else at a mid-range configuration.
    std::vector<int> mid(space.numParams());
    for (size_t p = 0; p < space.numParams(); ++p)
        mid[p] = space.param(p).numLevels() / 2;
    std::printf("\npredicted IPC vs L2 size (other parameters "
                "mid-range):\n");
    const size_t l2 = space.paramIndex("L2SizeKB");
    for (int lv = 0; lv < space.param(l2).numLevels(); ++lv) {
        auto levels = mid;
        levels[l2] = lv;
        std::printf("  L2 %4.0f KB: predicted %.3f (simulated %.3f)\n",
                    space.value(l2, lv),
                    explorer.predictIndex(space.index(levels)),
                    ctx.simulateIpc(space.index(levels)));
    }

    // Question 2: best predicted configuration without a 2 MB L2.
    double best_ipc = -1.0;
    uint64_t best_idx = 0;
    for (uint64_t i = 0; i < space.size(); ++i) {
        const auto lv = space.levels(i);
        if (space.valueOf("L2SizeKB", lv) >= 2048)
            continue;
        const double pred = explorer.predictIndex(i);
        if (pred > best_ipc) {
            best_ipc = pred;
            best_idx = i;
        }
    }
    std::printf("\nbest predicted config without 2MB L2 "
                "(predicted %.3f, simulated %.3f):\n",
                best_ipc, ctx.simulateIpc(best_idx));
    const auto lv = space.levels(best_idx);
    for (size_t p = 0; p < space.numParams(); ++p) {
        if (space.param(p).kind == ml::ParamKind::Nominal) {
            std::printf("  %-16s %s\n", space.param(p).name.c_str(),
                        space.label(p, lv[p]).c_str());
        } else {
            std::printf("  %-16s %g\n", space.param(p).name.c_str(),
                        space.value(p, lv[p]));
        }
    }
    std::printf("\ntotal detailed simulations: %zu of %llu (%.1f%%)\n",
                ctx.simulationsRun(),
                static_cast<unsigned long long>(space.size()),
                100.0 * static_cast<double>(ctx.simulationsRun()) /
                    static_cast<double>(space.size()));
    return 0;
}
