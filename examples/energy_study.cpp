/**
 * @file
 * Energy-delay exploration: the predictive-modeling mechanism applied
 * to a metric other than IPC (Chapter 7: "our approach is
 * sufficiently general to predict other architectural statistics").
 * Trains one ensemble on energy-delay product over the processor
 * space and uses it to find efficient configurations — where the
 * best-EDP design differs from the best-IPC design.
 */

#include <algorithm>
#include <cstdio>

#include "ml/cross_validation.hh"
#include "sim/energy.hh"
#include "study/harness.hh"
#include "util/rng.hh"
#include "util/stats.hh"

using namespace dse;

int
main()
{
    const char *app = "mesa";
    study::StudyContext ctx(study::StudyKind::Processor, app);
    const auto &space = ctx.space();

    auto edp_of = [&](uint64_t idx) {
        const auto &r = ctx.simulateFull(idx);
        return sim::computeEnergy(ctx.config(idx), r).edp * 1e6;
    };

    // Train an EDP model from a 1.5% sample.
    Rng rng(21);
    const size_t n = static_cast<size_t>(
        0.015 * static_cast<double>(space.size()));
    const auto sample = rng.sampleWithoutReplacement(space.size(), n);
    ml::DataSet data;
    for (uint64_t idx : sample)
        data.add(space.encodeIndex(idx), edp_of(idx));

    ml::TrainOptions train;
    train.maxEpochs = 5000;
    const auto model = ml::trainEnsemble(data, train);
    std::printf("%s: EDP model from %zu sims, estimated error "
                "%.2f%%\n", app, n, model.estimate().meanPct);

    // Validate on a holdout.
    const auto eval = study::holdoutIndices(space, sample, 250, 9);
    std::vector<double> errs;
    for (uint64_t idx : eval) {
        errs.push_back(percentageError(
            model.predict(space.encodeIndex(idx)), edp_of(idx)));
    }
    std::printf("true EDP error on holdout: %.2f%% +- %.2f%%\n",
                mean(errs), stddev(errs));

    // Best predicted EDP vs best predicted IPC configuration.
    uint64_t best_edp_idx = 0;
    double best_edp = 1e300;
    for (uint64_t i = 0; i < space.size(); ++i) {
        const double pred = model.predict(space.encodeIndex(i));
        if (pred < best_edp) {
            best_edp = pred;
            best_edp_idx = i;
        }
    }
    const auto lv = space.levels(best_edp_idx);
    const auto &r = ctx.simulateFull(best_edp_idx);
    const auto energy = sim::computeEnergy(ctx.config(best_edp_idx), r);
    std::printf("\nbest predicted-EDP config (point %llu):\n",
                static_cast<unsigned long long>(best_edp_idx));
    std::printf("  width=%g freq=%gGHz rob=%g l1d=%gKB l2=%gKB\n",
                space.valueOf("Width", lv), space.valueOf("FreqGHz", lv),
                space.valueOf("ROBSize", lv),
                space.valueOf("L1DSizeKB", lv),
                space.valueOf("L2SizeKB", lv));
    std::printf("  simulated: IPC %.3f, energy %.1f uJ "
                "(core %.0f%%, caches %.0f%%, DRAM %.0f%%, leak %.0f%%)\n",
                r.ipc, energy.totalNj() / 1000.0,
                100.0 * energy.coreDynamicNj / energy.totalNj(),
                100.0 * energy.cacheDynamicNj / energy.totalNj(),
                100.0 * energy.dramDynamicNj / energy.totalNj(),
                100.0 * energy.leakageNj / energy.totalNj());
    std::printf("\nNote how the efficient design differs from the "
                "max-IPC design (examples/processor_study): the model "
                "mechanism is metric-agnostic.\n");
    return 0;
}
