/**
 * @file
 * ANN + SimPoint composition (Section 5.3): the training data itself
 * comes from partial simulation. SimPoint picks representative
 * intervals of the workload once; every training "simulation" then
 * runs only those intervals. The model still predicts *full-run* IPC
 * well — the two techniques' savings multiply.
 */

#include <cstdio>

#include "ml/cross_validation.hh"
#include "study/harness.hh"
#include "util/rng.hh"
#include "util/stats.hh"

using namespace dse;

int
main()
{
    const char *app = "mesa";
    study::StudyContext ctx(study::StudyKind::Processor, app);
    const auto &space = ctx.space();

    const auto &points = ctx.simPoints();
    std::printf("%s: SimPoint chose %d representative intervals of %zu "
                "instructions\n", app, points.k, points.intervalLength);
    std::printf("  detailed instructions per estimate: %zu of %zu "
                "(%.1fx fewer)\n",
                points.detailedInstructions(), ctx.trace().size(),
                static_cast<double>(ctx.trace().size()) /
                    static_cast<double>(points.detailedInstructions()));

    // Train on SimPoint estimates of a 1.5% sample.
    Rng rng(99);
    const size_t n = static_cast<size_t>(
        0.015 * static_cast<double>(space.size()));
    const auto sample = rng.sampleWithoutReplacement(space.size(), n);
    ml::DataSet noisy;
    for (uint64_t idx : sample)
        noisy.add(space.encodeIndex(idx), ctx.simulateSimPointIpc(idx));

    ml::TrainOptions train;
    train.maxEpochs = 5000;
    const auto model = ml::trainEnsemble(noisy, train);

    // Measure against FULL simulation on a holdout.
    const auto eval = study::holdoutIndices(space, sample, 300, 5);
    const auto err = study::measureTrueError(ctx, model, eval);
    std::printf("\ntrained on SimPoint estimates of %zu points:\n", n);
    std::printf("  cross-validation estimate: %.2f%% (vs the noisy "
                "targets)\n", model.estimate().meanPct);
    std::printf("  true error vs full simulation: %.2f%% +- %.2f%%\n",
                err.meanPct, err.sdPct);

    const double ann_x = static_cast<double>(space.size()) /
        static_cast<double>(n);
    const double sp_x = static_cast<double>(ctx.trace().size()) /
        static_cast<double>(points.detailedInstructions());
    std::printf("\ncombined reduction in simulated instructions: "
                "%.0fx (ANN) * %.1fx (SimPoint) = %.0fx\n",
                ann_x, sp_x, ann_x * sp_x);
    return 0;
}
