/**
 * @file
 * The paper's processor study (Table 4.2) used for design ranking:
 * train a model from a ~1.5% sample, predict IPC for all 20,736
 * configurations, and check how well the model's top-10 list agrees
 * with detailed simulation — the "which design wins?" workflow that
 * motivates predictive design-space exploration.
 */

#include <algorithm>
#include <cstdio>

#include "ml/cross_validation.hh"
#include "study/harness.hh"
#include "util/rng.hh"
#include "util/stats.hh"

using namespace dse;

int
main()
{
    const char *app = "gzip";
    study::StudyContext ctx(study::StudyKind::Processor, app);
    const auto &space = ctx.space();
    std::printf("processor study on %s: %llu design points\n", app,
                static_cast<unsigned long long>(space.size()));

    // Simulate a ~1.5% random sample and train the ensemble.
    Rng rng(77);
    const size_t n = static_cast<size_t>(
        0.015 * static_cast<double>(space.size()));
    const auto sample = rng.sampleWithoutReplacement(space.size(), n);
    ml::DataSet data;
    for (uint64_t idx : sample)
        data.add(space.encodeIndex(idx), ctx.simulateIpc(idx));

    ml::TrainOptions train;
    train.maxEpochs = 5000;
    const auto model = ml::trainEnsemble(data, train);
    std::printf("trained on %zu simulations; estimated error "
                "%.2f%% +- %.2f%%\n",
                n, model.estimate().meanPct, model.estimate().sdPct);

    // Predict the whole space (fractions of a second) and rank.
    std::vector<std::pair<double, uint64_t>> ranked;
    ranked.reserve(space.size());
    for (uint64_t i = 0; i < space.size(); ++i)
        ranked.emplace_back(model.predict(space.encodeIndex(i)), i);
    std::sort(ranked.rbegin(), ranked.rend());

    std::printf("\nmodel's top-10 configurations vs detailed "
                "simulation:\n");
    std::printf("%-6s %-10s %-10s %s\n", "rank", "predicted",
                "simulated", "config");
    for (int r = 0; r < 10; ++r) {
        const auto [pred, idx] = ranked[static_cast<size_t>(r)];
        const double actual = ctx.simulateIpc(idx);
        const auto lv = space.levels(idx);
        std::printf("%-6d %-10.3f %-10.3f width=%g freq=%gGHz rob=%g "
                    "l1d=%gKB l2=%gKB\n",
                    r + 1, pred, actual,
                    space.valueOf("Width", lv),
                    space.valueOf("FreqGHz", lv),
                    space.valueOf("ROBSize", lv),
                    space.valueOf("L1DSizeKB", lv),
                    space.valueOf("L2SizeKB", lv));
    }

    // How good is the model's #1 relative to the true best among the
    // top-10 predictions (the architect would simulate those few)?
    double best_sim = 0.0;
    for (int r = 0; r < 10; ++r)
        best_sim = std::max(best_sim,
                            ctx.simulateIpc(ranked[static_cast<size_t>(
                                r)].second));
    std::printf("\nbest simulated IPC among model's top-10: %.3f\n",
                best_sim);
    std::printf("simulations spent: %zu (sample) + 10 (verification) "
                "of %llu total\n",
                n, static_cast<unsigned long long>(space.size()));
    return 0;
}
