/**
 * @file
 * dse::remote chaos suite: the dispatcher/worker pair under injected
 * crashes, hangs, and dropped connections. The headline invariants:
 *
 *  - worker failure costs latency, never correctness — every chaos
 *    scenario must produce results bit-identical to an all-local run,
 *    including the scenario where every worker is dead;
 *  - no client call blocks past its deadline (structured Timeout /
 *    Disconnected errors, wall-clock asserted);
 *  - the retry/backoff schedule and the injected-fault set are pure
 *    functions of configuration, so dispatch counters reconcile
 *    exactly with the faults injected, at any thread count.
 *
 * Suites are named Remote* and live in the dse_remote_tests binary
 * (label `remote`), so the remote-tsan / remote-asan presets cover
 * exactly this subsystem under the sanitizers.
 */

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ml/explorer.hh"
#include "remote/dispatcher.hh"
#include "remote/worker.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "study/harness.hh"
#include "util/fault.hh"
#include "util/thread_pool.hh"

namespace dse {
namespace {

using Clock = std::chrono::steady_clock;

constexpr size_t kTraceLen = 4096;

/** Design points spread across the memory-system space. */
std::vector<uint64_t>
sampleIndices()
{
    return {0, 7, 42, 123, 999, 4242, 5000, 8008, 12345, 15000, 23039};
}

int64_t
elapsedMs(Clock::time_point since)
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               Clock::now() - since)
        .count();
}

/** Restores the default global pool when a test scope ends. */
struct PoolGuard
{
    explicit PoolGuard(size_t threads)
    {
        util::ThreadPool::resetGlobal(threads);
    }
    ~PoolGuard() { util::ThreadPool::resetGlobal(); }
};

/** Clears global fault configuration around every test. */
class RemoteTest : public ::testing::Test
{
  protected:
    void SetUp() override { util::FaultInjector::global().reset(); }
    void TearDown() override { util::FaultInjector::global().reset(); }
};

remote::SimWorkerOptions
workerOptions(uint64_t fault_salt = 0)
{
    remote::SimWorkerOptions opts;
    opts.server.addr = "127.0.0.1";
    opts.server.port = 0;
    opts.server.workers = 2;
    opts.faultSalt = fault_salt;
    return opts;
}

remote::DispatcherOptions
dispatcherOptions(std::initializer_list<uint16_t> ports)
{
    remote::DispatcherOptions opts;
    for (uint16_t port : ports)
        opts.endpoints.push_back(remote::Endpoint{"127.0.0.1", port});
    opts.batchPoints = 4;
    opts.requestTimeoutMs = 10000;
    opts.backoffBaseMs = 2;
    opts.backoffCapMs = 20;
    return opts;
}

void
expectResultsIdentical(const sim::SimResult &r, const sim::SimResult &f,
                       uint64_t idx)
{
    EXPECT_EQ(r.cycles, f.cycles) << idx;
    EXPECT_EQ(r.instructions, f.instructions) << idx;
    EXPECT_EQ(r.ipc, f.ipc) << idx;
    EXPECT_EQ(r.l1dMissRate, f.l1dMissRate) << idx;
    EXPECT_EQ(r.l2MissRate, f.l2MissRate) << idx;
    EXPECT_EQ(r.l1iMissRate, f.l1iMissRate) << idx;
    EXPECT_EQ(r.branchMispredictRate, f.branchMispredictRate) << idx;
    EXPECT_EQ(r.l1dAccesses, f.l1dAccesses) << idx;
    EXPECT_EQ(r.l1dMisses, f.l1dMisses) << idx;
    EXPECT_EQ(r.l2Accesses, f.l2Accesses) << idx;
    EXPECT_EQ(r.l2Misses, f.l2Misses) << idx;
    EXPECT_EQ(r.l1iAccesses, f.l1iAccesses) << idx;
    EXPECT_EQ(r.l1iMisses, f.l1iMisses) << idx;
    EXPECT_EQ(r.branches, f.branches) << idx;
    EXPECT_EQ(r.branchMispredicts, f.branchMispredicts) << idx;
}

// ---------------------------------------------------------------------
// Wire protocol.
// ---------------------------------------------------------------------

TEST(RemoteProtocol, SimulateBatchRequestRoundTrip)
{
    serve::SimulateBatchRequest req;
    req.study = 1;
    req.app = "gzip";
    req.traceLength = kTraceLen;
    req.simpoint = true;
    req.indices = sampleIndices();

    serve::SimulateBatchRequest out;
    ASSERT_TRUE(serve::SimulateBatchRequest::decode(req.encode(), out));
    EXPECT_EQ(out.study, req.study);
    EXPECT_EQ(out.app, req.app);
    EXPECT_EQ(out.traceLength, req.traceLength);
    EXPECT_EQ(out.simpoint, req.simpoint);
    EXPECT_EQ(out.indices, req.indices);
}

TEST(RemoteProtocol, SimulateBatchRequestRejectsHostilePayloads)
{
    serve::SimulateBatchRequest req;
    req.app = "mcf";
    req.indices = {1, 2, 3};
    const std::string good = req.encode();

    serve::SimulateBatchRequest out;
    EXPECT_FALSE(serve::SimulateBatchRequest::decode("", out));
    EXPECT_FALSE(serve::SimulateBatchRequest::decode("x", out));
    // Any truncation of a valid payload must be rejected, at every
    // byte offset — a short frame must never decode to a smaller
    // batch.
    for (size_t cut = 0; cut < good.size(); ++cut) {
        EXPECT_FALSE(serve::SimulateBatchRequest::decode(
            std::string_view(good.data(), cut), out))
            << "prefix of " << cut << " bytes decoded";
    }
    // An empty batch is meaningless and must not round-trip.
    serve::SimulateBatchRequest empty;
    empty.app = "mcf";
    EXPECT_FALSE(serve::SimulateBatchRequest::decode(empty.encode(), out));
}

TEST(RemoteProtocol, SimulateBatchReplyRoundTripsBitPatterns)
{
    serve::SimulateBatchReply full;
    full.simpoint = false;
    for (uint64_t i = 0; i < 3; ++i) {
        sim::SimResult r;
        r.cycles = 1000 + i;
        r.instructions = 900 + i;
        r.ipc = 0.1 * static_cast<double>(i + 1);  // inexact in binary
        r.l1dMissRate = 1.0 / 3.0;
        r.branchMispredictRate = 0.017;
        r.l1dAccesses = 12345 * (i + 1);
        r.branchMispredicts = 17 * i;
        full.results.push_back(r);
    }
    serve::SimulateBatchReply out;
    ASSERT_TRUE(serve::SimulateBatchReply::decode(full.encode(), out));
    ASSERT_EQ(out.points(), full.points());
    EXPECT_FALSE(out.simpoint);
    for (size_t i = 0; i < full.results.size(); ++i)
        expectResultsIdentical(out.results[i], full.results[i], i);

    serve::SimulateBatchReply sp;
    sp.simpoint = true;
    sp.ipc = {0.25, 1.0 / 7.0, 3.14159265358979};
    serve::SimulateBatchReply spOut;
    ASSERT_TRUE(serve::SimulateBatchReply::decode(sp.encode(), spOut));
    EXPECT_TRUE(spOut.simpoint);
    EXPECT_EQ(spOut.ipc, sp.ipc);

    for (size_t cut = 0; cut + 1 < full.encode().size(); cut += 7) {
        EXPECT_FALSE(serve::SimulateBatchReply::decode(
            full.encode().substr(0, cut), out));
    }
}

TEST(RemoteProtocol, ParseEndpoints)
{
    const auto eps = remote::parseEndpoints("10.0.0.1:7080,host:1");
    ASSERT_EQ(eps.size(), 2u);
    EXPECT_EQ(eps[0].host, "10.0.0.1");
    EXPECT_EQ(eps[0].port, 7080);
    EXPECT_EQ(eps[1].host, "host");
    EXPECT_EQ(eps[1].port, 1);

    EXPECT_THROW(remote::parseEndpoints("nohost"),
                 std::invalid_argument);
    EXPECT_THROW(remote::parseEndpoints(":7080"), std::invalid_argument);
    EXPECT_THROW(remote::parseEndpoints("h:0"), std::invalid_argument);
    EXPECT_THROW(remote::parseEndpoints("h:99999"),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------
// Backoff schedule: a pure function, identical at any thread count.
// ---------------------------------------------------------------------

TEST(RemoteBackoff, PureFunctionOfArgumentsAtAnyThreadCount)
{
    // Reference schedule computed single-threaded...
    std::vector<int> want;
    for (uint64_t key = 0; key < 64; ++key) {
        for (uint32_t attempt = 0; attempt < 6; ++attempt) {
            want.push_back(remote::RemoteDispatcher::backoffDelayMs(
                42, key, attempt, 5, 1000));
        }
    }
    // ...must be what every racing thread computes too.
    for (size_t threads : {1u, 2u, 8u}) {
        std::vector<std::thread> pool;
        std::vector<std::vector<int>> got(threads);
        for (size_t t = 0; t < threads; ++t) {
            pool.emplace_back([&, t] {
                for (uint64_t key = 0; key < 64; ++key) {
                    for (uint32_t attempt = 0; attempt < 6; ++attempt) {
                        got[t].push_back(
                            remote::RemoteDispatcher::backoffDelayMs(
                                42, key, attempt, 5, 1000));
                    }
                }
            });
        }
        for (auto &th : pool)
            th.join();
        for (size_t t = 0; t < threads; ++t)
            EXPECT_EQ(got[t], want) << threads << " threads";
    }
}

TEST(RemoteBackoff, DelaysStayInsideTheJitterWindow)
{
    for (uint64_t key = 0; key < 256; ++key) {
        // Attempt 0 has a degenerate window: exactly the base delay.
        EXPECT_EQ(remote::RemoteDispatcher::backoffDelayMs(
                      7, key, 0, 5, 1000),
                  5);
        for (uint32_t attempt = 1; attempt < 12; ++attempt) {
            const int d = remote::RemoteDispatcher::backoffDelayMs(
                7, key, attempt, 5, 1000);
            const uint64_t window =
                std::min<uint64_t>(1000, 5ull << attempt);
            EXPECT_GE(d, 5) << key << "/" << attempt;
            EXPECT_LE(static_cast<uint64_t>(d), window)
                << key << "/" << attempt;
        }
        // Degenerate configuration never divides by zero or inverts.
        EXPECT_EQ(remote::RemoteDispatcher::backoffDelayMs(
                      7, key, 3, 10, 1),
                  10);
    }
}

// ---------------------------------------------------------------------
// Client deadlines: structured errors, wall clock bounded.
// ---------------------------------------------------------------------

TEST_F(RemoteTest, ClientTimeoutIsStructuredAndBounded)
{
    // A listener that accepts nothing: connects succeed via the SYN
    // backlog, replies never come, so the deadline is what returns.
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                     sizeof(addr)),
              0);
    ASSERT_EQ(::listen(fd, 8), 0);
    socklen_t len = sizeof(addr);
    ASSERT_EQ(::getsockname(fd, reinterpret_cast<sockaddr *>(&addr),
                            &len),
              0);
    const uint16_t port = ntohs(addr.sin_port);

    serve::Client client;
    client.setTimeout(200);
    client.connect("127.0.0.1", port);
    const auto t0 = Clock::now();
    try {
        client.ping();
        FAIL() << "ping to a mute server returned";
    } catch (const serve::ServeError &e) {
        EXPECT_EQ(e.code(), serve::ErrCode::Timeout) << e.what();
    }
    // The watchdog assertion: the call came back at the deadline, not
    // at some transitive OS default minutes later.
    const int64_t waited = elapsedMs(t0);
    EXPECT_GE(waited, 190);
    EXPECT_LT(waited, 5000);
    ::close(fd);
}

TEST_F(RemoteTest, ClientRefusedConnectionIsDisconnected)
{
    // Grab a port the kernel just released: connecting to it refuses.
    uint16_t port = 0;
    {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                         sizeof(addr)),
                  0);
        socklen_t len = sizeof(addr);
        ASSERT_EQ(::getsockname(
                      fd, reinterpret_cast<sockaddr *>(&addr), &len),
                  0);
        port = ntohs(addr.sin_port);
        ::close(fd);
    }
    serve::Client client;
    client.setTimeout(2000);
    const auto t0 = Clock::now();
    try {
        client.connect("127.0.0.1", port);
        FAIL() << "connect to a closed port succeeded";
    } catch (const serve::ServeError &e) {
        EXPECT_EQ(e.code(), serve::ErrCode::Disconnected) << e.what();
    }
    EXPECT_LT(elapsedMs(t0), 5000);
}

TEST_F(RemoteTest, DefaultDeadlineComesFromEnvironment)
{
    ::setenv("DSE_SERVE_TIMEOUT_MS", "1234", 1);
    EXPECT_EQ(serve::Client::defaultTimeoutMs(), 1234);
    EXPECT_EQ(serve::Client().timeout(), 1234);
    // Nonsense and non-positive values fall back to the safe default
    // rather than disabling the deadline.
    ::setenv("DSE_SERVE_TIMEOUT_MS", "0", 1);
    EXPECT_EQ(serve::Client::defaultTimeoutMs(), 30000);
    ::setenv("DSE_SERVE_TIMEOUT_MS", "banana", 1);
    EXPECT_EQ(serve::Client::defaultTimeoutMs(), 30000);
    ::unsetenv("DSE_SERVE_TIMEOUT_MS");
    EXPECT_EQ(serve::Client::defaultTimeoutMs(), 30000);
}

// ---------------------------------------------------------------------
// Dispatch round trips: remote results are bit-identical memo hits.
// ---------------------------------------------------------------------

TEST_F(RemoteTest, DispatchedBatchBitIdenticalToLocal)
{
    const auto indices = sampleIndices();
    study::StudyContext local(study::StudyKind::MemorySystem, "gzip",
                              kTraceLen);
    const auto want = local.simulateBatch(indices);

    remote::SimWorker worker(workerOptions());
    worker.start();
    study::StudyContext ctx(study::StudyKind::MemorySystem, "gzip",
                            kTraceLen);
    remote::RemoteDispatcher dispatcher(
        ctx, dispatcherOptions({worker.port()}));
    const auto got = dispatcher.simulateBatch(indices);
    EXPECT_EQ(got, want);

    // Everything came over the wire: the dispatcher's context executed
    // nothing itself, yet holds full bit-identical SimResult records.
    EXPECT_EQ(ctx.simulationsExecuted(), 0u);
    for (uint64_t idx : indices) {
        ASSERT_TRUE(ctx.hasResult(idx));
        expectResultsIdentical(ctx.simulateFull(idx),
                               local.simulateFull(idx), idx);
    }
    const auto st = dispatcher.stats();
    EXPECT_EQ(st.completed, 3u);  // 11 points / 4 per batch
    EXPECT_EQ(st.fallbacks, 0u);
    EXPECT_EQ(st.retries, 0u);
    worker.stop();
}

TEST_F(RemoteTest, SimPointBatchBitIdenticalToLocal)
{
    const auto indices = sampleIndices();
    study::StudyContext local(study::StudyKind::MemorySystem, "gzip",
                              kTraceLen);
    const auto want = local.simulateSimPointBatch(indices);

    remote::SimWorker worker(workerOptions());
    worker.start();
    study::StudyContext ctx(study::StudyKind::MemorySystem, "gzip",
                            kTraceLen);
    auto dopts = dispatcherOptions({worker.port()});
    dopts.simpoint = true;
    remote::RemoteDispatcher dispatcher(ctx, dopts);
    EXPECT_EQ(dispatcher.simulateBatch(indices), want);
    // The one detailed simulation is the context's own one-time
    // SimPoint scale calibration (space midpoint); every requested
    // estimate itself came over the wire.
    EXPECT_EQ(ctx.simulationsExecuted(), 1u);
    worker.stop();
}

// ---------------------------------------------------------------------
// Chaos: crashes, hangs, dead fleets — latency, never correctness.
// ---------------------------------------------------------------------

TEST_F(RemoteTest, WorkerCrashMidRunStaysBitIdentical)
{
    const auto indices = sampleIndices();
    study::StudyContext local(study::StudyKind::MemorySystem, "gzip",
                              kTraceLen);
    const auto want = local.simulateBatch(indices);

    // Two workers sharing the process-global injector: distinct salts
    // make the crash site fire for different batches on each, so a
    // batch that kills worker A re-dispatches to a live worker B.
    util::FaultInjector::global().configure("remote.worker.crash:0.4:11");
    remote::SimWorker workerA(workerOptions(1));
    remote::SimWorker workerB(workerOptions(2));
    workerA.start();
    workerB.start();

    study::StudyContext ctx(study::StudyKind::MemorySystem, "gzip",
                            kTraceLen);
    auto dopts = dispatcherOptions({workerA.port(), workerB.port()});
    dopts.requestTimeoutMs = 500;  // crashed conns go silent
    remote::RemoteDispatcher dispatcher(ctx, dopts);

    const auto t0 = Clock::now();
    const auto got = dispatcher.simulateBatch(indices);
    EXPECT_EQ(got, want);
    for (uint64_t idx : indices)
        expectResultsIdentical(ctx.simulateFull(idx),
                               local.simulateFull(idx), idx);

    // Every batch settled exactly once — answered or handed to the
    // local path — and faults were actually injected.
    const auto st = dispatcher.stats();
    EXPECT_GE(st.completed + st.fallbacks, 3u);
    EXPECT_GT(util::FaultInjector::global().injected(
                  "remote.worker.crash"),
              0u);
    // Deadlines bounded the whole episode (3 batches, <=3 attempts of
    // <=500ms each, small backoff) — nothing hung on a dead socket.
    EXPECT_LT(elapsedMs(t0), 30000);

    workerA.stop();
    workerB.stop();
}

TEST_F(RemoteTest, EveryWorkerDeadFallsBackToLocalBitIdentical)
{
    const auto indices = sampleIndices();
    study::StudyContext local(study::StudyKind::MemorySystem, "gzip",
                              kTraceLen);
    const auto want = local.simulateBatch(indices);

    // Two endpoints nobody listens on: every connect refuses.
    study::StudyContext ctx(study::StudyKind::MemorySystem, "gzip",
                            kTraceLen);
    auto dopts = dispatcherOptions({1, 1});
    dopts.requestTimeoutMs = 300;
    dopts.maxAttempts = 2;
    remote::RemoteDispatcher dispatcher(ctx, dopts);

    const auto t0 = Clock::now();
    const auto got = dispatcher.simulateBatch(indices);
    EXPECT_EQ(got, want);
    EXPECT_LT(elapsedMs(t0), 30000);

    const auto st = dispatcher.stats();
    EXPECT_EQ(st.completed, 0u);
    EXPECT_EQ(st.fallbacks, 3u);  // every batch exhausted to local
    // This context did the work itself.
    EXPECT_EQ(ctx.simulationsExecuted(), indices.size());
}

TEST_F(RemoteTest, DropFaultCountersReconcileAtAnyThreadCount)
{
    const auto indices = sampleIndices();
    // Drop every attempt before it touches the network. With the
    // breaker disabled the outcome is a pure function of the
    // configuration: every batch burns exactly maxAttempts attempts
    // and falls back, independent of scheduling.
    for (size_t threads : {1u, 2u, 8u}) {
        PoolGuard pool(threads);
        util::FaultInjector::global().configure(
            "remote.conn.drop:1:13");

        study::StudyContext ctx(study::StudyKind::MemorySystem, "gzip",
                                kTraceLen);
        auto dopts = dispatcherOptions({1});
        dopts.maxAttempts = 3;
        dopts.breakerThreshold = 1000000;  // never opens
        remote::RemoteDispatcher dispatcher(ctx, dopts);
        dispatcher.prefetch(indices);

        const auto st = dispatcher.stats();
        EXPECT_EQ(st.dispatched, 9u) << threads;   // 3 batches x 3
        EXPECT_EQ(st.retries, 6u) << threads;      // 3 x (3 - 1)
        EXPECT_EQ(st.redispatches, 6u) << threads; // drops disconnect
        EXPECT_EQ(st.fallbacks, 3u) << threads;
        EXPECT_EQ(st.completed, 0u) << threads;
        EXPECT_EQ(st.hedges, 0u) << threads;
        EXPECT_EQ(util::FaultInjector::global().injected(
                      "remote.conn.drop"),
                  st.dispatched)
            << threads;
        util::FaultInjector::global().reset();
    }
}

TEST_F(RemoteTest, HedgedStragglerFirstReplyWins)
{
    const auto indices = sampleIndices();
    study::StudyContext local(study::StudyKind::MemorySystem, "gzip",
                              kTraceLen);
    const auto want = local.simulateBatch(indices);

    // Every batch hangs 300ms at the worker; two endpoints into the
    // same daemon let the coordinator hedge the straggler onto the
    // second connection after 50ms. First reply wins, the duplicate's
    // identical answer is dropped.
    util::FaultInjector::global().configure("remote.conn.delay:1:17");
    auto wopts = workerOptions();
    wopts.delayMs = 300;
    remote::SimWorker worker(wopts);
    worker.start();

    study::StudyContext ctx(study::StudyKind::MemorySystem, "gzip",
                            kTraceLen);
    auto dopts = dispatcherOptions({worker.port(), worker.port()});
    dopts.batchPoints = indices.size();  // one task
    dopts.hedgeAfterMs = 50;
    remote::RemoteDispatcher dispatcher(ctx, dopts);
    EXPECT_EQ(dispatcher.simulateBatch(indices), want);

    const auto st = dispatcher.stats();
    EXPECT_EQ(st.hedges, 1u);
    EXPECT_EQ(st.dispatched, 2u);  // original + hedge
    EXPECT_EQ(st.completed, 1u);   // deduped: one injection
    EXPECT_EQ(st.fallbacks, 0u);
    EXPECT_EQ(st.retries, 0u);
    EXPECT_EQ(ctx.simulationsExecuted(), 0u);
    worker.stop();
}

TEST_F(RemoteTest, CrashChaosResultsIdenticalAcrossPoolSizes)
{
    const auto indices = sampleIndices();
    std::vector<double> want;
    {
        study::StudyContext local(study::StudyKind::MemorySystem,
                                  "gzip", kTraceLen);
        want = local.simulateBatch(indices);
    }
    for (size_t threads : {1u, 2u, 8u}) {
        PoolGuard pool(threads);
        util::FaultInjector::global().configure(
            "remote.worker.crash:0.4:11");
        remote::SimWorker workerA(workerOptions(1));
        remote::SimWorker workerB(workerOptions(2));
        workerA.start();
        workerB.start();

        study::StudyContext ctx(study::StudyKind::MemorySystem, "gzip",
                                kTraceLen);
        auto dopts =
            dispatcherOptions({workerA.port(), workerB.port()});
        dopts.requestTimeoutMs = 500;
        remote::RemoteDispatcher dispatcher(ctx, dopts);
        EXPECT_EQ(dispatcher.simulateBatch(indices), want)
            << threads << " threads";
        workerA.stop();
        workerB.stop();
        util::FaultInjector::global().reset();
    }
}

// ---------------------------------------------------------------------
// Explorer integration: a full campaign under chaos matches all-local.
// ---------------------------------------------------------------------

TEST_F(RemoteTest, ExplorerRunUnderCrashChaosBitIdenticalToLocal)
{
    ml::ExplorerOptions eopts;
    eopts.batchSize = 16;
    eopts.maxSimulations = 32;
    eopts.targetMeanPct = 0.0;  // run to the simulation cap
    eopts.train.maxEpochs = 60;

    // Reference: all-local exploration.
    std::vector<ml::ExplorationStep> localSteps;
    ml::ErrorEstimate localEstimate;
    std::vector<uint64_t> localSampled;
    {
        study::StudyContext ctx(study::StudyKind::MemorySystem, "gzip",
                                kTraceLen);
        auto simulate = [&](uint64_t i) { return ctx.simulateIpc(i); };
        ml::Explorer explorer(ctx.space(), simulate, eopts);
        localSteps = explorer.run();
        localEstimate = explorer.ensemble().estimate();
        localSampled = explorer.sampledIndices();
    }

    // Same campaign, remote dispatch with a crashing worker in the
    // fleet. The prefetch hook is an acceleration hint only: sampling,
    // training, and the error estimate must not notice it exists.
    util::FaultInjector::global().configure("remote.worker.crash:0.4:11");
    remote::SimWorker workerA(workerOptions(1));
    remote::SimWorker workerB(workerOptions(2));
    workerA.start();
    workerB.start();

    study::StudyContext ctx(study::StudyKind::MemorySystem, "gzip",
                            kTraceLen);
    auto dopts = dispatcherOptions({workerA.port(), workerB.port()});
    dopts.requestTimeoutMs = 500;
    remote::RemoteDispatcher dispatcher(ctx, dopts);
    eopts.prefetch = [&](const std::vector<uint64_t> &batch) {
        dispatcher.prefetch(batch);
    };
    auto simulate = [&](uint64_t i) { return ctx.simulateIpc(i); };
    ml::Explorer explorer(ctx.space(), simulate, eopts);
    const auto steps = explorer.run();

    EXPECT_EQ(explorer.sampledIndices(), localSampled);
    ASSERT_EQ(steps.size(), localSteps.size());
    for (size_t i = 0; i < steps.size(); ++i) {
        EXPECT_EQ(steps[i].totalSamples, localSteps[i].totalSamples);
        EXPECT_EQ(steps[i].estimate.meanPct,
                  localSteps[i].estimate.meanPct)
            << i;
        EXPECT_EQ(steps[i].estimate.sdPct, localSteps[i].estimate.sdPct)
            << i;
    }
    EXPECT_EQ(explorer.ensemble().estimate().meanPct,
              localEstimate.meanPct);
    EXPECT_EQ(explorer.ensemble().estimate().sdPct,
              localEstimate.sdPct);

    workerA.stop();
    workerB.stop();
}

} // namespace
} // namespace dse
