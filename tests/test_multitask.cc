/**
 * @file
 * Tests for the multi-task learning extension (Chapter 7).
 */

#include <gtest/gtest.h>

#include "ml/multitask.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace dse {
namespace ml {
namespace {

/** Two correlated targets over [0,1]^2. */
MultiTaskDataSet
correlatedData(size_t n, uint64_t seed)
{
    Rng rng(seed);
    MultiTaskDataSet data;
    data.targetNames = {"ipc", "missRate"};
    for (size_t i = 0; i < n; ++i) {
        const double a = rng.uniform(), b = rng.uniform();
        const double ipc = 0.4 + 0.5 * a - 0.2 * a * b;
        const double miss = 0.3 - 0.25 * a + 0.1 * b;  // anti-correlated
        data.add({a, b}, {ipc, miss});
    }
    return data;
}

TrainOptions
fastOptions()
{
    TrainOptions opts;
    opts.maxEpochs = 1200;
    opts.esInterval = 25;
    opts.patience = 8;
    opts.ann.decayEpochs = 400;
    return opts;
}

TEST(MultiTask, PredictsAllTargets)
{
    const auto data = correlatedData(200, 1);
    const auto model = trainMultiTaskEnsemble(data, fastOptions());
    const auto out = model.predictAll({0.5, 0.5});
    EXPECT_EQ(out.size(), 2u);
    EXPECT_DOUBLE_EQ(model.predictPrimary({0.5, 0.5}), out[0]);
}

TEST(MultiTask, LearnsBothTargets)
{
    const auto data = correlatedData(300, 2);
    const auto model = trainMultiTaskEnsemble(data, fastOptions());
    const auto holdout = correlatedData(100, 91);
    double err0 = 0.0, err1 = 0.0;
    for (size_t i = 0; i < holdout.size(); ++i) {
        const auto out = model.predictAll(holdout.x[i]);
        err0 += percentageError(out[0], holdout.y[i][0]);
        err1 += percentageError(out[1], holdout.y[i][1]);
    }
    EXPECT_LT(err0 / holdout.size(), 8.0);
    EXPECT_LT(err1 / holdout.size(), 15.0);
}

TEST(MultiTask, EstimateIsForPrimaryTarget)
{
    const auto data = correlatedData(200, 3);
    const auto model = trainMultiTaskEnsemble(data, fastOptions());
    EXPECT_GE(model.estimate().meanPct, 0.0);
    EXPECT_LT(model.estimate().meanPct, 50.0);
}

TEST(MultiTask, MemberCountMatchesFolds)
{
    const auto data = correlatedData(100, 4);
    auto opts = fastOptions();
    opts.folds = 5;
    opts.maxEpochs = 100;
    const auto model = trainMultiTaskEnsemble(data, opts);
    EXPECT_EQ(model.members(), 5u);
}

TEST(MultiTask, RejectsDegenerateInputs)
{
    MultiTaskDataSet empty;
    EXPECT_THROW(trainMultiTaskEnsemble(empty, fastOptions()),
                 std::invalid_argument);

    auto tiny = correlatedData(4, 5);
    EXPECT_THROW(trainMultiTaskEnsemble(tiny, fastOptions()),
                 std::invalid_argument);
}

TEST(MultiTask, DeterministicForSeed)
{
    const auto data = correlatedData(120, 6);
    auto opts = fastOptions();
    opts.maxEpochs = 200;
    const auto a = trainMultiTaskEnsemble(data, opts);
    const auto b = trainMultiTaskEnsemble(data, opts);
    EXPECT_DOUBLE_EQ(a.predictPrimary({0.4, 0.7}),
                     b.predictPrimary({0.4, 0.7}));
}

} // namespace
} // namespace ml
} // namespace dse
