/**
 * @file
 * Fault-injection and recovery tests: every failure-containment path
 * in the study pipeline is exercised deterministically — journal
 * kill-and-resume replay, torn tails and corrupt records, fold
 * retry and graceful ensemble degradation, torn/corrupt model files,
 * and exception propagation out of the thread pool.
 *
 * Suites are named Faults* (the tsan preset filter matches them) and
 * the binary carries the `faults` ctest label, so `ctest -L faults`
 * and the faults-tsan / faults-asan presets run exactly this file.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "ml/cross_validation.hh"
#include "ml/io.hh"
#include "study/harness.hh"
#include "study/journal.hh"
#include "util/fault.hh"
#include "util/thread_pool.hh"

namespace dse {
namespace {

/** Fresh scratch path under /tmp, clobbering any previous run. */
std::string
tmpPath(const std::string &name)
{
    std::string path = "/tmp/dse_faults_" + name;
    std::remove(path.c_str());
    return path;
}

std::string
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/** Base fixture: every test starts and ends with no faults armed. */
class FaultsBase : public ::testing::Test
{
  protected:
    void SetUp() override { util::FaultInjector::global().reset(); }
    void TearDown() override { util::FaultInjector::global().reset(); }
};

using FaultsInjector = FaultsBase;
using FaultsJournal = FaultsBase;
using FaultsTraining = FaultsBase;
using FaultsIo = FaultsBase;
using FaultsPool = FaultsBase;

// ---------------------------------------------------------------------
// FaultInjector semantics.
// ---------------------------------------------------------------------

TEST_F(FaultsInjector, RejectsMalformedSpecs)
{
    util::FaultInjector fi;
    EXPECT_THROW(fi.configure("nonsense"), std::invalid_argument);
    EXPECT_THROW(fi.configure("site:notanumber:1"),
                 std::invalid_argument);
    EXPECT_THROW(fi.configure("site:2:1"), std::invalid_argument);
    EXPECT_THROW(fi.configure("site:-0.5:1"), std::invalid_argument);
    EXPECT_THROW(fi.configure("site:0.5:xyz"), std::invalid_argument);
    EXPECT_THROW(fi.configure(":0.5:1"), std::invalid_argument);
    EXPECT_NO_THROW(fi.configure(""));
    EXPECT_NO_THROW(fi.configure("a:0.5:1,b:1:2"));
}

TEST_F(FaultsInjector, DecisionsAreDeterministicPerKey)
{
    util::FaultInjector a, b;
    a.configure("x:0.3:42");
    b.configure("x:0.3:42");
    size_t fired = 0;
    for (uint64_t key = 0; key < 1000; ++key) {
        const bool fa = a.shouldFail("x", key);
        EXPECT_EQ(fa, b.shouldFail("x", key)) << key;
        fired += fa;
    }
    // ~30% of keys fire; well away from 0% and 100%.
    EXPECT_GT(fired, 200u);
    EXPECT_LT(fired, 400u);
    EXPECT_EQ(a.injected("x"), fired);
    EXPECT_EQ(a.injected("unknown-site"), 0u);
}

TEST_F(FaultsInjector, RateZeroNeverFiresRateOneAlwaysFires)
{
    util::FaultInjector fi;
    fi.configure("off:0:1,on:1:1");
    for (uint64_t key = 0; key < 200; ++key) {
        EXPECT_FALSE(fi.shouldFail("off", key));
        EXPECT_TRUE(fi.shouldFail("on", key));
        EXPECT_FALSE(fi.shouldFail("unconfigured", key));
    }
    fi.reset();
    EXPECT_FALSE(fi.shouldFail("on", 0));
    EXPECT_FALSE(fi.active());
}

// ---------------------------------------------------------------------
// Crash-safe simulation journal.
// ---------------------------------------------------------------------

constexpr size_t kTraceLen = 4096;

std::vector<uint64_t>
sampleIndices()
{
    return {0, 7, 42, 123, 999, 4242, 5000, 8008, 12345, 15000, 23039};
}

TEST_F(FaultsJournal, KillAndResumeReplaysBitIdentical)
{
    const std::string path = tmpPath("resume.journal");
    const auto indices = sampleIndices();

    // "Campaign" one: simulate N points, then die (scope exit).
    std::vector<sim::SimResult> first;
    {
        study::StudyContext ctx(study::StudyKind::MemorySystem, "gzip",
                                kTraceLen, path);
        ASSERT_TRUE(ctx.journalActive());
        EXPECT_EQ(ctx.journalStats().replayed, 0u);
        for (uint64_t idx : indices)
            first.push_back(ctx.simulateFull(idx));
        EXPECT_EQ(ctx.simulationsExecuted(), indices.size());
    }

    // Resumed campaign: every record replays, zero re-simulations,
    // and every field of every result is bit-identical.
    study::StudyContext ctx(study::StudyKind::MemorySystem, "gzip",
                            kTraceLen, path);
    EXPECT_EQ(ctx.journalStats().replayed, indices.size());
    EXPECT_EQ(ctx.journalStats().rejected, 0u);
    EXPECT_FALSE(ctx.journalStats().tornTail);

    const auto ipc = ctx.simulateBatch(indices);
    EXPECT_EQ(ctx.simulationsExecuted(), 0u);
    for (size_t i = 0; i < indices.size(); ++i) {
        const auto &r = ctx.simulateFull(indices[i]);
        const auto &f = first[i];
        EXPECT_EQ(ipc[i], f.ipc);
        EXPECT_EQ(r.cycles, f.cycles);
        EXPECT_EQ(r.instructions, f.instructions);
        EXPECT_EQ(r.ipc, f.ipc);
        EXPECT_EQ(r.l1dMissRate, f.l1dMissRate);
        EXPECT_EQ(r.l2MissRate, f.l2MissRate);
        EXPECT_EQ(r.l1iMissRate, f.l1iMissRate);
        EXPECT_EQ(r.branchMispredictRate, f.branchMispredictRate);
        EXPECT_EQ(r.l1dAccesses, f.l1dAccesses);
        EXPECT_EQ(r.l1dMisses, f.l1dMisses);
        EXPECT_EQ(r.l2Accesses, f.l2Accesses);
        EXPECT_EQ(r.l2Misses, f.l2Misses);
        EXPECT_EQ(r.branches, f.branches);
        EXPECT_EQ(r.branchMispredicts, f.branchMispredicts);
    }
    EXPECT_EQ(ctx.simulationsExecuted(), 0u);
    EXPECT_EQ(ctx.simulationsRun(), indices.size());
}

TEST_F(FaultsJournal, ToleratesTornTailAndRepairsIt)
{
    const std::string path = tmpPath("torn.journal");
    const std::vector<uint64_t> indices = {1, 2, 3, 4, 5};
    double last_ipc = 0.0;
    {
        study::StudyContext ctx(study::StudyKind::MemorySystem, "gzip",
                                kTraceLen, path);
        for (uint64_t idx : indices)
            last_ipc = ctx.simulateFull(idx).ipc;
    }

    // Tear the tail: drop the last 10 bytes, as a crash mid-append
    // would.
    const std::string bytes = readFile(path);
    ASSERT_GT(bytes.size(), 10u);
    writeFile(path, bytes.substr(0, bytes.size() - 10));

    {
        study::StudyContext ctx(study::StudyKind::MemorySystem, "gzip",
                                kTraceLen, path);
        EXPECT_EQ(ctx.journalStats().replayed, indices.size() - 1);
        EXPECT_TRUE(ctx.journalStats().tornTail);
        // The torn point re-simulates (once) and re-journals.
        EXPECT_EQ(ctx.simulateFull(5).ipc, last_ipc);
        EXPECT_EQ(ctx.simulationsExecuted(), 1u);
    }

    // The repaired journal is whole again.
    study::StudyContext ctx(study::StudyKind::MemorySystem, "gzip",
                            kTraceLen, path);
    EXPECT_EQ(ctx.journalStats().replayed, indices.size());
    EXPECT_FALSE(ctx.journalStats().tornTail);
}

TEST_F(FaultsJournal, RejectsChecksumCorruptRecordButKeepsTheRest)
{
    const std::string path = tmpPath("corrupt.journal");
    const std::vector<uint64_t> indices = {10, 20, 30, 40};
    std::vector<double> ipc;
    {
        study::StudyContext ctx(study::StudyKind::MemorySystem, "gzip",
                                kTraceLen, path);
        for (uint64_t idx : indices)
            ipc.push_back(ctx.simulateFull(idx).ipc);
    }

    // Flip one byte inside the second record's payload.
    std::string bytes = readFile(path);
    const size_t header =
        bytes.size() - indices.size() * study::SimJournal::kRecordSize;
    bytes[header + study::SimJournal::kRecordSize + 20] ^= 0x01;
    writeFile(path, bytes);

    study::StudyContext ctx(study::StudyKind::MemorySystem, "gzip",
                            kTraceLen, path);
    EXPECT_EQ(ctx.journalStats().replayed, indices.size() - 1);
    EXPECT_EQ(ctx.journalStats().rejected, 1u);
    // Records after the corrupt one still replayed (fixed-size
    // resync), and the rejected point re-simulates to the same value.
    EXPECT_EQ(ctx.simulateFull(30).ipc, ipc[2]);
    EXPECT_EQ(ctx.simulationsExecuted(), 0u);
    EXPECT_EQ(ctx.simulateFull(20).ipc, ipc[1]);
    EXPECT_EQ(ctx.simulationsExecuted(), 1u);
}

TEST_F(FaultsJournal, RefusesForeignAndMismatchedFiles)
{
    const std::string garbage = tmpPath("garbage.journal");
    writeFile(garbage, "this is not a journal, not even close");
    EXPECT_THROW(study::StudyContext(study::StudyKind::MemorySystem,
                                     "gzip", kTraceLen, garbage),
                 std::runtime_error);

    const std::string path = tmpPath("identity.journal");
    {
        study::StudyContext ctx(study::StudyKind::MemorySystem, "gzip",
                                kTraceLen, path);
    }
    // Different app, study, or trace length must refuse to replay.
    EXPECT_THROW(study::StudyContext(study::StudyKind::MemorySystem,
                                     "mcf", kTraceLen, path),
                 std::runtime_error);
    EXPECT_THROW(study::StudyContext(study::StudyKind::Processor, "gzip",
                                     kTraceLen, path),
                 std::runtime_error);
    EXPECT_THROW(study::StudyContext(study::StudyKind::MemorySystem,
                                     "gzip", kTraceLen * 2, path),
                 std::runtime_error);
}

TEST_F(FaultsJournal, EnvVarAttachesWithPlaceholders)
{
    const std::string templ = tmpPath("env_{study}_{app}.journal");
    const std::string expanded = tmpPath("env_memory-system_gzip.journal");
    ASSERT_EQ(setenv("DSE_JOURNAL", templ.c_str(), 1), 0);
    {
        study::StudyContext ctx(study::StudyKind::MemorySystem, "gzip",
                                kTraceLen);
        EXPECT_TRUE(ctx.journalActive());
        ctx.simulateFull(3);
    }
    unsetenv("DSE_JOURNAL");
    EXPECT_EQ(::access(expanded.c_str(), F_OK), 0);

    // Explicit path resumes what the env-attached run journaled.
    study::StudyContext ctx(study::StudyKind::MemorySystem, "gzip",
                            kTraceLen, expanded);
    EXPECT_EQ(ctx.journalStats().replayed, 1u);
}

TEST_F(FaultsJournal, InjectedTornAppendIsRecoveredOnResume)
{
    const std::string path = tmpPath("injected_torn.journal");
    util::FaultInjector::global().configure("journal:1:1");
    {
        study::StudyContext ctx(study::StudyKind::MemorySystem, "gzip",
                                kTraceLen, path);
        EXPECT_THROW(ctx.simulateFull(9), std::runtime_error);
    }
    util::FaultInjector::global().reset();

    // The half-written record reads as a torn tail; the resumed
    // campaign truncates it and re-simulates cleanly.
    study::StudyContext ctx(study::StudyKind::MemorySystem, "gzip",
                            kTraceLen, path);
    EXPECT_EQ(ctx.journalStats().replayed, 0u);
    EXPECT_TRUE(ctx.journalStats().tornTail);
    EXPECT_GT(ctx.simulateFull(9).ipc, 0.0);
    EXPECT_EQ(ctx.simulationsExecuted(), 1u);
}

TEST_F(FaultsJournal, InjectedSimFailurePropagatesAndRecovers)
{
    util::FaultInjector::global().configure("sim:1:1");
    study::StudyContext ctx(study::StudyKind::MemorySystem, "gzip",
                            kTraceLen);
    // Both the direct path and the thread-pool batch path surface the
    // failure as an exception (no std::terminate, no hang).
    EXPECT_THROW(ctx.simulateFull(5), std::runtime_error);
    EXPECT_THROW(ctx.simulateBatch({1, 2, 3, 4, 5, 6, 7, 8}),
                 std::runtime_error);
    EXPECT_EQ(ctx.simulationsExecuted(), 0u);

    util::FaultInjector::global().reset();
    EXPECT_GT(ctx.simulateFull(5).ipc, 0.0);
    EXPECT_EQ(ctx.simulationsExecuted(), 1u);
}

// ---------------------------------------------------------------------
// Training divergence, retry, and graceful degradation.
// ---------------------------------------------------------------------

ml::DataSet
smallDataSet()
{
    Rng rng(3);
    ml::DataSet data;
    for (int i = 0; i < 80; ++i) {
        const double a = rng.uniform(), b = rng.uniform();
        data.add({a, b}, 0.5 + 0.3 * a - 0.2 * b);
    }
    return data;
}

ml::TrainOptions
fastTrainOptions()
{
    ml::TrainOptions opts;
    opts.folds = 4;
    opts.maxEpochs = 200;
    opts.esInterval = 50;
    opts.patience = 3;
    return opts;
}

TEST_F(FaultsTraining, AnnFlagsNonFiniteTraining)
{
    ml::AnnParams params;
    Rng rng(1);
    ml::Ann net(2, 1, params, rng);
    EXPECT_FALSE(net.diverged());
    EXPECT_TRUE(net.finiteWeights());

    const double nan = std::numeric_limits<double>::quiet_NaN();
    net.train({nan, 0.5}, {0.5});
    EXPECT_TRUE(net.diverged());
}

TEST_F(FaultsTraining, InjectedDivergenceRetriesDeterministically)
{
    const auto data = smallDataSet();
    const auto opts = fastTrainOptions();

    // Find a fault seed where some but not all folds exhaust their
    // retries — the interesting degraded-but-usable regime. The
    // search is deterministic: same seeds, same outcome, every run.
    int found_seed = -1;
    for (int seed = 1; seed <= 32 && found_seed < 0; ++seed) {
        util::FaultInjector::global().configure(
            "fold:0.6:" + std::to_string(seed));
        try {
            const auto model = ml::trainEnsemble(data, opts);
            if (model.degraded())
                found_seed = seed;
        } catch (const std::runtime_error &) {
            // every fold diverged for this seed; keep looking
        }
    }
    ASSERT_GT(found_seed, 0);

    const std::string spec = "fold:0.6:" + std::to_string(found_seed);
    util::FaultInjector::global().configure(spec);
    const auto model = ml::trainEnsemble(data, opts);
    ASSERT_TRUE(model.degraded());
    ASSERT_GT(model.members(), 0u);
    ASSERT_LT(model.members(),
              static_cast<size_t>(opts.folds));
    EXPECT_EQ(model.warnings().size(),
              static_cast<size_t>(opts.folds) - model.members());
    for (const auto &w : model.warnings()) {
        EXPECT_GE(w.fold, 0);
        EXPECT_LT(w.fold, opts.folds);
        EXPECT_EQ(w.attempts, 1 + opts.foldRetries);
        EXPECT_FALSE(w.message.empty());
    }
    // The survivors predict finite, sane values.
    EXPECT_TRUE(std::isfinite(model.predict({0.3, 0.7})));
    EXPECT_TRUE(std::isfinite(model.estimate().meanPct));

    // Deterministic under DSE_FAULTS at any thread count: retrain at
    // 1 and 4 threads and compare everything, member weights
    // included, bit for bit.
    util::ThreadPool::resetGlobal(1);
    util::FaultInjector::global().configure(spec);
    const auto serial = ml::trainEnsemble(data, opts);
    util::ThreadPool::resetGlobal(4);
    util::FaultInjector::global().configure(spec);
    const auto parallel = ml::trainEnsemble(data, opts);
    util::ThreadPool::resetGlobal();

    ASSERT_EQ(serial.members(), model.members());
    ASSERT_EQ(parallel.members(), model.members());
    EXPECT_EQ(serial.estimate().meanPct, parallel.estimate().meanPct);
    EXPECT_EQ(serial.estimate().sdPct, parallel.estimate().sdPct);
    ASSERT_EQ(serial.warnings().size(), parallel.warnings().size());
    for (size_t i = 0; i < serial.warnings().size(); ++i)
        EXPECT_EQ(serial.warnings()[i].fold, parallel.warnings()[i].fold);
    for (size_t m = 0; m < serial.members(); ++m)
        EXPECT_EQ(serial.memberWeights(m), parallel.memberWeights(m));
}

TEST_F(FaultsTraining, DegradedEstimateIsWidened)
{
    const auto data = smallDataSet();
    const auto opts = fastTrainOptions();

    util::FaultInjector::global().reset();
    const auto healthy = ml::trainEnsemble(data, opts);
    ASSERT_FALSE(healthy.degraded());

    // Force exactly the first attempt of fold 0 to fail (keys are
    // fold*64 + attempt, so key 0 is fold 0, attempt 0): the fold
    // recovers on retry, the ensemble stays whole.
    int retry_seed = -1;
    for (int seed = 1; seed <= 64; ++seed) {
        util::FaultInjector fi;
        fi.configure("fold:0.2:" + std::to_string(seed));
        if (fi.shouldFail("fold", 0) && !fi.shouldFail("fold", 1) &&
            !fi.shouldFail("fold", 64) && !fi.shouldFail("fold", 128) &&
            !fi.shouldFail("fold", 192)) {
            retry_seed = seed;
            break;
        }
    }
    ASSERT_GT(retry_seed, 0);
    util::FaultInjector::global().configure(
        "fold:0.2:" + std::to_string(retry_seed));
    const auto retried = ml::trainEnsemble(data, opts);
    EXPECT_FALSE(retried.degraded());
    EXPECT_EQ(retried.members(), static_cast<size_t>(opts.folds));
    // Folds 1..3 never saw a fault, so their members are identical
    // to the healthy run's; fold 0 retrained from a reseeded stream.
    for (int m = 1; m < opts.folds; ++m) {
        EXPECT_EQ(retried.memberWeights(static_cast<size_t>(m)),
                  healthy.memberWeights(static_cast<size_t>(m)));
    }
    EXPECT_NE(retried.memberWeights(0), healthy.memberWeights(0));

    // All folds failing is a hard error, not a silent empty model.
    util::FaultInjector::global().configure("fold:1:7");
    EXPECT_THROW(ml::trainEnsemble(data, opts), std::runtime_error);
}

TEST_F(FaultsTraining, FaultsOnOtherSitesLeaveTrainingBitIdentical)
{
    const auto data = smallDataSet();
    const auto opts = fastTrainOptions();
    util::FaultInjector::global().reset();
    const auto base = ml::trainEnsemble(data, opts);
    util::FaultInjector::global().configure("sim:1:1,save:1:1");
    const auto probed = ml::trainEnsemble(data, opts);
    for (size_t m = 0; m < base.members(); ++m)
        EXPECT_EQ(base.memberWeights(m), probed.memberWeights(m));
}

// ---------------------------------------------------------------------
// Durable model I/O.
// ---------------------------------------------------------------------

ml::Ensemble
smallTrainedEnsemble()
{
    return ml::trainEnsemble(smallDataSet(), fastTrainOptions());
}

TEST_F(FaultsIo, AtomicSaveRoundTripsAndLeavesNoTemp)
{
    const auto model = smallTrainedEnsemble();
    const std::string path = tmpPath("model.txt");
    ml::saveEnsemble(path, model);
    EXPECT_NE(::access(path.c_str(), F_OK), -1);
    EXPECT_EQ(::access((path + ".tmp").c_str(), F_OK), -1);

    const auto restored = ml::loadEnsemble(path);
    EXPECT_EQ(restored.members(), model.members());
    Rng rng(9);
    for (int i = 0; i < 20; ++i) {
        const std::vector<double> x{rng.uniform(), rng.uniform()};
        EXPECT_EQ(restored.predict(x), model.predict(x));
    }

    // Overwriting an existing model is just as safe.
    ml::saveEnsemble(path, model);
    EXPECT_NO_THROW(ml::loadEnsemble(path));
}

TEST_F(FaultsIo, TornWriteIsDetectedAsTruncated)
{
    const auto model = smallTrainedEnsemble();
    const std::string path = tmpPath("torn_model.txt");
    util::FaultInjector::global().configure("save:1:1");
    EXPECT_THROW(ml::saveEnsemble(path, model), std::runtime_error);
    util::FaultInjector::global().reset();

    // The injected fault left a half-written file at the final path.
    ASSERT_NE(::access(path.c_str(), F_OK), -1);
    try {
        ml::loadEnsemble(path);
        FAIL() << "torn model file must not load";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("truncated"),
                  std::string::npos)
            << e.what();
    }

    // A clean save over the wreckage heals it.
    ml::saveEnsemble(path, model);
    EXPECT_NO_THROW(ml::loadEnsemble(path));
}

TEST_F(FaultsIo, DistinctErrorsForTruncatedCorruptAndVersion)
{
    const auto model = smallTrainedEnsemble();
    const std::string path = tmpPath("adversarial_model.txt");
    ml::saveEnsemble(path, model);
    const std::string good = readFile(path);

    const auto load_error = [&](const std::string &bytes) {
        writeFile(path, bytes);
        try {
            ml::loadEnsemble(path);
            return std::string("(loaded)");
        } catch (const std::runtime_error &e) {
            return std::string(e.what());
        }
    };

    // Empty file.
    EXPECT_NE(load_error("").find("empty"), std::string::npos);
    // Truncated mid-weights: the checksum trailer is gone.
    EXPECT_NE(load_error(good.substr(0, good.size() / 2))
                  .find("truncated"),
              std::string::npos);
    // A single flipped byte: checksum mismatch.
    {
        std::string bad = good;
        bad[bad.size() / 2] ^= 0x04;
        EXPECT_NE(load_error(bad).find("corrupt"), std::string::npos);
    }
    // Version mismatch reads as such (stream-level: the trailer-less
    // format the stream overloads keep).
    {
        std::string bad = good.substr(0, good.find('\n'));
        bad.replace(bad.find(" 1"), 2, " 9");
        std::istringstream is(bad + "\n" +
                              good.substr(good.find('\n') + 1));
        try {
            ml::loadEnsemble(is);
            FAIL() << "wrong version must not load";
        } catch (const std::runtime_error &e) {
            EXPECT_NE(std::string(e.what()).find("version"),
                      std::string::npos)
                << e.what();
        }
    }
}

TEST_F(FaultsIo, AdversarialHeadersFailCleanly)
{
    const auto model = smallTrainedEnsemble();
    std::stringstream buffer;
    ml::saveEnsemble(buffer, model);
    const std::string good = buffer.str();

    const auto expect_reject = [](const std::string &bytes) {
        std::istringstream is(bytes);
        EXPECT_THROW(ml::loadEnsemble(is), std::runtime_error) << bytes;
    };

    // Huge claimed member count: rejected before any allocation.
    expect_reject("dse-ensemble 1\nmembers 4000000000\n");
    expect_reject("dse-ensemble 1\nmembers 18446744073709551615\n");
    // Implausible topology in net-meta.
    {
        std::string bad = good;
        const size_t at = bad.find("net-meta ");
        bad.replace(at, bad.find('\n', at) - at,
                    "net-meta 1000000000 1 16 1 0.4 0.5 0.01 2500");
        expect_reject(bad);
    }
    // Huge claimed weight count: rejected by the count check, not by
    // attempting an 18-exabyte read.
    {
        std::string bad = good;
        const size_t at = bad.find("\nnet 0 ");
        const size_t end = bad.find('\n', at + 1);
        bad.replace(at, end - at, "\nnet 0 18446744073709551615");
        expect_reject(bad);
    }
    // Truncated mid-weights at the stream level: clear error.
    expect_reject(good.substr(0, good.size() * 3 / 4));
}

/** FNV-1a over @p n bytes — must match the hash io.cc checksums
 *  model files with, so tests can forge a *valid* trailer around a
 *  tampered body. */
uint64_t
fnv1aHash(const char *data, size_t n)
{
    uint64_t h = 1469598103934665603ull;
    for (size_t i = 0; i < n; ++i) {
        h ^= static_cast<uint8_t>(data[i]);
        h *= 1099511628211ull;
    }
    return h;
}

TEST_F(FaultsIo, NegativePathsRaiseTheirOwnDocumentedErrors)
{
    const auto model = smallTrainedEnsemble();
    const std::string path = tmpPath("negative_model.txt");
    ml::saveEnsemble(path, model);
    const std::string good = readFile(path);

    const auto load_error = [&](const std::string &bytes) {
        writeFile(path, bytes);
        try {
            ml::loadEnsemble(path);
            return std::string("(loaded)");
        } catch (const std::runtime_error &e) {
            return std::string(e.what());
        }
    };

    // 1. Zero-byte file: its own error, not a parse failure.
    EXPECT_NE(load_error("").find("ensemble file is empty"),
              std::string::npos);

    // 2. A flipped digit inside the checksum trailer itself: the body
    //    is intact, but the stored hash no longer matches — reported
    //    as corruption, distinct from truncation.
    {
        const size_t tag_at = good.rfind("checksum ");
        ASSERT_NE(tag_at, std::string::npos);
        std::string bad = good;
        char &digit = bad[tag_at + 9];
        digit = digit == '0' ? '1' : '0';
        EXPECT_NE(load_error(bad).find("corrupt (checksum mismatch)"),
                  std::string::npos);
    }

    // 3. Oversized member count with a *recomputed, valid* trailer:
    //    the checksum passes, so the member-count bound itself must
    //    reject the file.
    {
        const size_t tag_at = good.rfind("checksum ");
        std::string body = good.substr(0, tag_at);
        const size_t at = body.find("members ");
        ASSERT_NE(at, std::string::npos);
        body.replace(at, body.find('\n', at) - at, "members 5000");
        char trailer[32];
        std::snprintf(trailer, sizeof(trailer), "checksum %016llx\n",
                      static_cast<unsigned long long>(
                          fnv1aHash(body.data(), body.size())));
        EXPECT_NE(load_error(body + trailer).find("bad member count"),
                  std::string::npos);
    }

    // A clean save still loads after all that tampering.
    ml::saveEnsemble(path, model);
    EXPECT_NO_THROW(ml::loadEnsemble(path));
}

// ---------------------------------------------------------------------
// Thread-pool exception containment.
// ---------------------------------------------------------------------

TEST_F(FaultsPool, ParallelForRethrowsFirstExceptionAndStaysUsable)
{
    util::ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(0, 1000,
                         [](size_t i) {
                             if (i == 537)
                                 throw std::runtime_error("boom");
                         }),
        std::runtime_error);

    // The pool survives: a follow-up loop runs every iteration.
    std::atomic<size_t> count{0};
    pool.parallelFor(0, 1000, [&](size_t) { ++count; });
    EXPECT_EQ(count.load(), 1000u);

    // Inline fallback path (single-threaded pool) propagates too.
    util::ThreadPool serial(1);
    EXPECT_THROW(
        serial.parallelFor(0, 10,
                           [](size_t i) {
                               if (i == 3)
                                   throw std::runtime_error("boom");
                           }),
        std::runtime_error);
}

} // namespace
} // namespace dse
