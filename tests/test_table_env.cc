/**
 * @file
 * Unit tests for table formatting and environment configuration.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "util/env.hh"
#include "util/table.hh"

namespace dse {
namespace {

TEST(Table, AlignedOutputContainsCells)
{
    Table t({"app", "ipc"});
    t.newRow();
    t.add("mesa");
    t.add(0.512, 3);
    t.newRow();
    t.add("mcf");
    t.add(0.087, 3);

    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("app"), std::string::npos);
    EXPECT_NE(out.find("mesa"), std::string::npos);
    EXPECT_NE(out.find("0.512"), std::string::npos);
    EXPECT_NE(out.find("0.087"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvOutput)
{
    Table t({"a", "b"});
    t.newRow();
    t.add(1ll);
    t.add(2ll);
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, AddWithoutNewRowStartsRow)
{
    Table t({"x"});
    t.add("v");
    EXPECT_EQ(t.rows(), 1u);
}

TEST(FormatFixed, Precision)
{
    EXPECT_EQ(formatFixed(1.23456, 2), "1.23");
    EXPECT_EQ(formatFixed(1.0, 0), "1");
    EXPECT_EQ(formatFixed(-0.5, 1), "-0.5");
}

TEST(JoinSplit, RoundTrip)
{
    const std::vector<std::string> parts{"a", "bb", "ccc"};
    EXPECT_EQ(join(parts, ","), "a,bb,ccc");
    EXPECT_EQ(split("a,bb,ccc", ','), parts);
}

TEST(Split, DropsEmptyPieces)
{
    EXPECT_EQ(split(",,a,,b,", ','),
              (std::vector<std::string>{"a", "b"}));
    EXPECT_TRUE(split("", ',').empty());
}

class EnvTest : public ::testing::Test
{
  protected:
    void TearDown() override { unsetenv("DSE_TEST_VAR"); }
};

TEST_F(EnvTest, IntParsesAndFallsBack)
{
    setenv("DSE_TEST_VAR", "42", 1);
    EXPECT_EQ(envInt("DSE_TEST_VAR", 7), 42);
    setenv("DSE_TEST_VAR", "not-a-number", 1);
    EXPECT_EQ(envInt("DSE_TEST_VAR", 7), 7);
    unsetenv("DSE_TEST_VAR");
    EXPECT_EQ(envInt("DSE_TEST_VAR", 7), 7);
}

TEST_F(EnvTest, DoubleParses)
{
    setenv("DSE_TEST_VAR", "2.5", 1);
    EXPECT_DOUBLE_EQ(envDouble("DSE_TEST_VAR", 1.0), 2.5);
    unsetenv("DSE_TEST_VAR");
    EXPECT_DOUBLE_EQ(envDouble("DSE_TEST_VAR", 1.0), 1.0);
}

TEST_F(EnvTest, BoolVariants)
{
    for (const char *v : {"1", "true", "YES", "on"}) {
        setenv("DSE_TEST_VAR", v, 1);
        EXPECT_TRUE(envBool("DSE_TEST_VAR", false)) << v;
    }
    for (const char *v : {"0", "false", "NO", "off"}) {
        setenv("DSE_TEST_VAR", v, 1);
        EXPECT_FALSE(envBool("DSE_TEST_VAR", true)) << v;
    }
    setenv("DSE_TEST_VAR", "maybe", 1);
    EXPECT_TRUE(envBool("DSE_TEST_VAR", true));
}

TEST_F(EnvTest, ListSplitsOnComma)
{
    setenv("DSE_TEST_VAR", "mesa,mcf,crafty", 1);
    auto v = envList("DSE_TEST_VAR", {"x"});
    EXPECT_EQ(v, (std::vector<std::string>{"mesa", "mcf", "crafty"}));
    unsetenv("DSE_TEST_VAR");
    EXPECT_EQ(envList("DSE_TEST_VAR", {"x"}),
              std::vector<std::string>{"x"});
}

} // namespace
} // namespace dse
