/**
 * @file
 * Tests for design-space description, indexing, and encoding
 * (Section 3.3's parameter representation rules).
 */

#include <gtest/gtest.h>

#include "ml/encoding.hh"
#include "util/rng.hh"

namespace dse {
namespace ml {
namespace {

DesignSpace
sampleSpace()
{
    DesignSpace space;
    space.addCardinal("size", {4, 8, 16});
    space.addNominal("policy", {"WT", "WB"});
    space.addBoolean("prefetch");
    space.addContinuous("freq", {1.0, 2.0});
    return space;
}

TEST(DesignSpace, SizeIsCrossProduct)
{
    EXPECT_EQ(sampleSpace().size(), 3u * 2 * 2 * 2);
}

TEST(DesignSpace, EncodedWidthCountsOneHot)
{
    // cardinal 1 + nominal 2 + boolean 1 + continuous 1
    EXPECT_EQ(sampleSpace().encodedWidth(), 5);
}

TEST(DesignSpace, IndexLevelsRoundTrip)
{
    const auto space = sampleSpace();
    for (uint64_t i = 0; i < space.size(); ++i)
        EXPECT_EQ(space.index(space.levels(i)), i);
}

TEST(DesignSpace, LevelsAreInRange)
{
    const auto space = sampleSpace();
    for (uint64_t i = 0; i < space.size(); ++i) {
        const auto lv = space.levels(i);
        ASSERT_EQ(lv.size(), space.numParams());
        for (size_t p = 0; p < lv.size(); ++p) {
            EXPECT_GE(lv[p], 0);
            EXPECT_LT(lv[p], space.param(p).numLevels());
        }
    }
}

TEST(DesignSpace, DistinctIndicesDistinctLevels)
{
    const auto space = sampleSpace();
    EXPECT_NE(space.levels(0), space.levels(1));
    EXPECT_NE(space.levels(5), space.levels(17));
}

TEST(DesignSpace, OutOfRangeThrows)
{
    const auto space = sampleSpace();
    EXPECT_THROW(space.levels(space.size()), std::out_of_range);
    EXPECT_THROW(space.index({0, 0, 0}), std::invalid_argument);
    EXPECT_THROW(space.index({5, 0, 0, 0}), std::out_of_range);
}

TEST(DesignSpace, CardinalMinimaxScaling)
{
    const auto space = sampleSpace();
    EXPECT_DOUBLE_EQ(space.encode({0, 0, 0, 0})[0], 0.0);     // size 4
    EXPECT_DOUBLE_EQ(space.encode({2, 0, 0, 0})[0], 1.0);     // size 16
    EXPECT_NEAR(space.encode({1, 0, 0, 0})[0], 4.0 / 12.0, 1e-12);
}

TEST(DesignSpace, NominalOneHot)
{
    const auto space = sampleSpace();
    const auto wt = space.encode({0, 0, 0, 0});
    EXPECT_DOUBLE_EQ(wt[1], 1.0);
    EXPECT_DOUBLE_EQ(wt[2], 0.0);
    const auto wb = space.encode({0, 1, 0, 0});
    EXPECT_DOUBLE_EQ(wb[1], 0.0);
    EXPECT_DOUBLE_EQ(wb[2], 1.0);
}

TEST(DesignSpace, BooleanZeroOne)
{
    const auto space = sampleSpace();
    EXPECT_DOUBLE_EQ(space.encode({0, 0, 0, 0})[3], 0.0);
    EXPECT_DOUBLE_EQ(space.encode({0, 0, 1, 0})[3], 1.0);
}

TEST(DesignSpace, AllEncodedValuesInUnitRange)
{
    const auto space = sampleSpace();
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        const auto x = space.encodeIndex(rng.below(space.size()));
        for (double v : x) {
            EXPECT_GE(v, 0.0);
            EXPECT_LE(v, 1.0);
        }
    }
}

TEST(DesignSpace, EncodingIsInjective)
{
    const auto space = sampleSpace();
    std::vector<std::vector<double>> seen;
    for (uint64_t i = 0; i < space.size(); ++i) {
        const auto x = space.encodeIndex(i);
        for (const auto &other : seen)
            EXPECT_NE(x, other);
        seen.push_back(x);
    }
}

TEST(DesignSpace, NamedAccessors)
{
    const auto space = sampleSpace();
    EXPECT_EQ(space.paramIndex("policy"), 1u);
    EXPECT_THROW(space.paramIndex("nope"), std::invalid_argument);
    const auto lv = space.levels(7);
    EXPECT_EQ(space.labelOf("policy", lv),
              space.label(1, lv[1]));
    EXPECT_EQ(space.valueOf("size", lv), space.value(0, lv[0]));
    EXPECT_THROW(space.valueOf("policy", lv), std::invalid_argument);
    EXPECT_THROW(space.labelOf("size", lv), std::invalid_argument);
}

TEST(DesignSpace, RejectsEmptyParameter)
{
    DesignSpace space;
    EXPECT_THROW(space.addCardinal("x", {}), std::invalid_argument);
    EXPECT_THROW(space.addNominal("y", {}), std::invalid_argument);
}

TEST(TargetScaler, RoundTrip)
{
    TargetScaler s;
    s.fit({0.2, 0.5, 1.4});
    for (double v : {0.2, 0.5, 1.0, 1.4})
        EXPECT_NEAR(s.decode(s.encode(v)), v, 1e-9);
}

TEST(TargetScaler, EncodesWithinSafeBand)
{
    TargetScaler s;
    s.fit({1.0, 2.0, 3.0});
    for (double v : {1.0, 2.0, 3.0}) {
        const double e = s.encode(v);
        EXPECT_GE(e, 0.1);
        EXPECT_LE(e, 0.9);
    }
}

TEST(TargetScaler, MarginCoversUnseenExtremes)
{
    TargetScaler s;
    s.fit({1.0, 2.0});  // margin 0.25 -> raw range [0.75, 2.25]
    EXPECT_GT(s.encode(2.2), 0.0);
    EXPECT_LT(s.encode(0.8), 1.0);
    EXPECT_NEAR(s.decode(s.encode(2.2)), 2.2, 1e-9);
}

TEST(TargetScaler, ConstantTargetsSurvive)
{
    TargetScaler s;
    s.fit({2.0, 2.0, 2.0});
    EXPECT_NEAR(s.decode(s.encode(2.0)), 2.0, 1e-9);
}

TEST(TargetScaler, RejectsEmptyAndBadBand)
{
    TargetScaler s;
    EXPECT_THROW(s.fit({}), std::invalid_argument);
    EXPECT_THROW(s.fit({1.0}, 0.25, 0.9, 0.1), std::invalid_argument);
}

/** Round-trip property on random indices of a large space. */
class EncodingRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EncodingRoundTripTest, LargeSpaceRoundTrip)
{
    DesignSpace space;
    space.addCardinal("a", {1, 2, 3, 4});
    space.addCardinal("b", {1, 2});
    space.addCardinal("c", {1, 2, 3, 4, 5});
    space.addNominal("d", {"x", "y", "z"});
    space.addCardinal("e", {1, 2, 3});
    Rng rng(GetParam());
    for (int i = 0; i < 200; ++i) {
        const uint64_t idx = rng.below(space.size());
        EXPECT_EQ(space.index(space.levels(idx)), idx);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodingRoundTripTest,
                         ::testing::Values(1, 2, 3));

} // namespace
} // namespace ml
} // namespace dse
