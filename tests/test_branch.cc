/**
 * @file
 * Tests for the tournament branch predictor and BTB.
 */

#include <gtest/gtest.h>

#include "sim/branch.hh"
#include "util/rng.hh"

namespace dse {
namespace sim {
namespace {

double
mispredictRate(TournamentPredictor &bp, uint32_t pc,
               const std::vector<bool> &outcomes)
{
    int miss = 0;
    for (bool taken : outcomes) {
        if (bp.predict(pc) != taken)
            ++miss;
        bp.update(pc, taken);
    }
    return static_cast<double>(miss) /
        static_cast<double>(outcomes.size());
}

TEST(TournamentPredictor, LearnsAlwaysTaken)
{
    TournamentPredictor bp(4096);
    std::vector<bool> outcomes(5000, true);
    EXPECT_LT(mispredictRate(bp, 0x1000, outcomes), 0.01);
}

TEST(TournamentPredictor, LearnsAlwaysNotTaken)
{
    TournamentPredictor bp(4096);
    std::vector<bool> outcomes(5000, false);
    EXPECT_LT(mispredictRate(bp, 0x1000, outcomes), 0.01);
}

TEST(TournamentPredictor, LearnsAlternatingViaHistory)
{
    TournamentPredictor bp(4096);
    std::vector<bool> outcomes;
    for (int i = 0; i < 5000; ++i)
        outcomes.push_back(i % 2 == 0);
    EXPECT_LT(mispredictRate(bp, 0x2000, outcomes), 0.05);
}

TEST(TournamentPredictor, LearnsShortLoop)
{
    // Period-8 loop (7 taken, 1 not): local history captures it.
    TournamentPredictor bp(4096);
    std::vector<bool> outcomes;
    for (int i = 0; i < 8000; ++i)
        outcomes.push_back(i % 8 != 7);
    EXPECT_LT(mispredictRate(bp, 0x3000, outcomes), 0.05);
}

TEST(TournamentPredictor, RandomBranchNearChance)
{
    TournamentPredictor bp(4096);
    Rng rng(5);
    std::vector<bool> outcomes;
    for (int i = 0; i < 20000; ++i)
        outcomes.push_back(rng.chance(0.5));
    const double rate = mispredictRate(bp, 0x4000, outcomes);
    EXPECT_GT(rate, 0.4);
    EXPECT_LT(rate, 0.6);
}

TEST(TournamentPredictor, BiasedBranchBeatsChance)
{
    TournamentPredictor bp(4096);
    Rng rng(5);
    std::vector<bool> outcomes;
    for (int i = 0; i < 20000; ++i)
        outcomes.push_back(rng.chance(0.9));
    EXPECT_LT(mispredictRate(bp, 0x5000, outcomes), 0.15);
}

TEST(TournamentPredictor, LargerTablesHelpUnderAliasing)
{
    // Many interleaved biased branches alias in a small table.
    auto run = [](int entries) {
        TournamentPredictor bp(entries);
        Rng rng(11);
        std::vector<double> bias(512);
        for (auto &b : bias)
            b = rng.chance(0.5) ? 0.92 : 0.12;
        int miss = 0;
        const int n = 100000;
        for (int i = 0; i < n; ++i) {
            const int id = static_cast<int>(rng.below(512));
            const uint32_t pc = 0x1000 + 4 * static_cast<uint32_t>(id);
            const bool taken = rng.chance(bias[static_cast<size_t>(id)]);
            if (bp.predict(pc) != taken)
                ++miss;
            bp.update(pc, taken);
        }
        return static_cast<double>(miss) / n;
    };
    const double small = run(256);
    const double large = run(4096);
    EXPECT_LT(large, small);
}

TEST(TournamentPredictor, ResetForgets)
{
    TournamentPredictor bp(1024);
    for (int i = 0; i < 1000; ++i)
        bp.update(0x100, true);
    EXPECT_TRUE(bp.predict(0x100));
    bp.reset();
    // Initial counters are weakly not-taken.
    EXPECT_FALSE(bp.predict(0x100));
}

TEST(TournamentPredictor, RejectsNonPowerOfTwo)
{
    EXPECT_THROW(TournamentPredictor(1000), std::invalid_argument);
    EXPECT_THROW(TournamentPredictor(0), std::invalid_argument);
    EXPECT_THROW(TournamentPredictor(-4), std::invalid_argument);
}

TEST(Btb, InsertThenLookup)
{
    BranchTargetBuffer btb(1024);
    EXPECT_FALSE(btb.lookup(0x1234));
    btb.insert(0x1234);
    EXPECT_TRUE(btb.lookup(0x1234));
}

TEST(Btb, TwoWaysPerSet)
{
    BranchTargetBuffer btb(16);
    // Three PCs mapping to the same set: the LRU one is evicted.
    const uint32_t stride = 16 * 4;
    btb.insert(0 * stride);
    btb.insert(1 * stride);
    EXPECT_TRUE(btb.lookup(0 * stride));  // refresh 0
    btb.insert(2 * stride);               // evicts 1
    EXPECT_TRUE(btb.lookup(0 * stride));
    EXPECT_FALSE(btb.lookup(1 * stride));
    EXPECT_TRUE(btb.lookup(2 * stride));
}

TEST(Btb, ResetForgets)
{
    BranchTargetBuffer btb(64);
    btb.insert(0x40);
    btb.reset();
    EXPECT_FALSE(btb.lookup(0x40));
}

TEST(Btb, RejectsBadGeometry)
{
    EXPECT_THROW(BranchTargetBuffer(0), std::invalid_argument);
    EXPECT_THROW(BranchTargetBuffer(100), std::invalid_argument);
}

/** All predictor sizes the processor study sweeps must behave. */
class PredictorSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(PredictorSizeTest, LearnsBiasedBranch)
{
    TournamentPredictor bp(GetParam());
    Rng rng(3);
    int miss = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const bool taken = rng.chance(0.95);
        if (bp.predict(0x800) != taken)
            ++miss;
        bp.update(0x800, taken);
    }
    EXPECT_LT(static_cast<double>(miss) / n, 0.10);
}

INSTANTIATE_TEST_SUITE_P(StudySizes, PredictorSizeTest,
                         ::testing::Values(1024, 2048, 4096));

} // namespace
} // namespace sim
} // namespace dse
