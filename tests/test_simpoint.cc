/**
 * @file
 * Tests for the SimPoint substrate: basic-block vectors, k-means and
 * BIC, simulation-point selection, and estimate quality.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/cacti.hh"
#include "sim/core.hh"
#include "simpoint/bbv.hh"
#include "simpoint/kmeans.hh"
#include "simpoint/simpoint.hh"
#include "util/rng.hh"
#include "util/stats.hh"
#include "workload/generator.hh"

namespace dse {
namespace simpoint {
namespace {

TEST(Bbv, IntervalCountAndNormalization)
{
    const auto trace = workload::generateBenchmarkTrace("gzip", 8192);
    const auto bbvs = computeBbvs(trace, 1024);
    EXPECT_EQ(bbvs.size(), 8u);
    for (const auto &v : bbvs) {
        EXPECT_EQ(v.size(), static_cast<size_t>(trace.numBlocks));
        double sum = 0.0;
        for (double x : v) {
            EXPECT_GE(x, 0.0);
            sum += x;
        }
        EXPECT_NEAR(sum, 1.0, 1e-9);
    }
}

TEST(Bbv, DropsPartialTrailingInterval)
{
    const auto trace = workload::generateBenchmarkTrace("gzip", 2500);
    EXPECT_EQ(computeBbvs(trace, 1024).size(), 2u);
}

TEST(Bbv, RejectsZeroInterval)
{
    const auto trace = workload::generateBenchmarkTrace("gzip", 2048);
    EXPECT_THROW(computeBbvs(trace, 0), std::invalid_argument);
}

TEST(Bbv, ProjectionPreservesCountAndWidth)
{
    const auto trace = workload::generateBenchmarkTrace("mesa", 8192);
    const auto bbvs = computeBbvs(trace, 1024);
    const auto proj = randomProject(bbvs, 15, 7);
    EXPECT_EQ(proj.size(), bbvs.size());
    for (const auto &v : proj)
        EXPECT_EQ(v.size(), 15u);
}

TEST(Bbv, ProjectionIsDeterministic)
{
    const auto trace = workload::generateBenchmarkTrace("mesa", 4096);
    const auto bbvs = computeBbvs(trace, 1024);
    EXPECT_EQ(randomProject(bbvs, 8, 3), randomProject(bbvs, 8, 3));
}

TEST(Bbv, ProjectionIsLinear)
{
    // project(2x) == 2*project(x)
    std::vector<std::vector<double>> v{{1.0, 2.0, 3.0}};
    std::vector<std::vector<double>> v2{{2.0, 4.0, 6.0}};
    const auto p = randomProject(v, 4, 5);
    const auto p2 = randomProject(v2, 4, 5);
    for (size_t d = 0; d < 4; ++d)
        EXPECT_NEAR(p2[0][d], 2.0 * p[0][d], 1e-9);
}

std::vector<std::vector<double>>
threeClusters(uint64_t seed, int per_cluster = 30)
{
    Rng rng(seed);
    std::vector<std::vector<double>> pts;
    const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
    for (int c = 0; c < 3; ++c)
        for (int i = 0; i < per_cluster; ++i)
            pts.push_back({centers[c][0] + rng.gaussian() * 0.3,
                           centers[c][1] + rng.gaussian() * 0.3});
    return pts;
}

TEST(KMeans, RecoverWellSeparatedClusters)
{
    const auto pts = threeClusters(11);
    const auto result = kmeans(pts, 3, 5);
    // Every cluster of 30 consecutive points must share a label.
    for (int c = 0; c < 3; ++c) {
        const int label = result.assignment[static_cast<size_t>(c) * 30];
        for (int i = 0; i < 30; ++i)
            EXPECT_EQ(result.assignment[static_cast<size_t>(c) * 30 + i],
                      label);
    }
    EXPECT_LT(result.inertia, 60.0);
}

TEST(KMeans, KOneCentroidIsMean)
{
    std::vector<std::vector<double>> pts{{0, 0}, {2, 0}, {0, 2}, {2, 2}};
    const auto result = kmeans(pts, 1, 3);
    EXPECT_NEAR(result.centroids[0][0], 1.0, 1e-9);
    EXPECT_NEAR(result.centroids[0][1], 1.0, 1e-9);
}

TEST(KMeans, AssignmentsValid)
{
    const auto pts = threeClusters(13);
    const auto result = kmeans(pts, 5, 7);
    EXPECT_EQ(result.assignment.size(), pts.size());
    for (int a : result.assignment) {
        EXPECT_GE(a, 0);
        EXPECT_LT(a, 5);
    }
}

TEST(KMeans, InertiaDecreasesWithK)
{
    const auto pts = threeClusters(17);
    double prev = 1e18;
    for (int k = 1; k <= 4; ++k) {
        const auto result = kmeans(pts, k, 3);
        EXPECT_LE(result.inertia, prev + 1e-9);
        prev = result.inertia;
    }
}

TEST(KMeans, ClampsKToPointCount)
{
    std::vector<std::vector<double>> pts{{0.0}, {1.0}};
    const auto result = kmeans(pts, 10, 3);
    EXPECT_EQ(result.k, 2);
}

TEST(KMeans, RejectsEmpty)
{
    EXPECT_THROW(kmeans({}, 2, 3), std::invalid_argument);
}

TEST(Bic, PrefersTrueClusterCount)
{
    const auto pts = threeClusters(19);
    double best_score = -1e300;
    int best_k = 0;
    for (int k = 1; k <= 6; ++k) {
        const auto result = kmeans(pts, k, 23);
        const double score = bicScore(pts, result);
        if (score > best_score) {
            best_score = score;
            best_k = k;
        }
    }
    EXPECT_EQ(best_k, 3);
}

class SimPointTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SimPointTest, SelectionIsWellFormed)
{
    const auto trace = workload::generateBenchmarkTrace(GetParam());
    SimPointOptions opts;
    opts.intervalLength = std::max<size_t>(1024, trace.size() / 32);
    opts.maxK = 8;
    const auto points = pickSimPoints(trace, opts);

    EXPECT_GE(points.k, 1);
    EXPECT_LE(points.k, 8);
    EXPECT_EQ(points.intervals.size(), points.weights.size());
    EXPECT_FALSE(points.intervals.empty());

    double weight_sum = 0.0;
    const size_t n_intervals = trace.size() / opts.intervalLength;
    for (size_t i = 0; i < points.intervals.size(); ++i) {
        EXPECT_LT(points.intervals[i], n_intervals);
        EXPECT_GT(points.weights[i], 0.0);
        weight_sum += points.weights[i];
    }
    EXPECT_NEAR(weight_sum, 1.0, 1e-9);
    EXPECT_LT(points.detailedInstructions(), trace.size());
}

TEST_P(SimPointTest, EstimateTracksFullSimulation)
{
    const auto trace = workload::generateBenchmarkTrace(GetParam());
    SimPointOptions sp_opts;
    // Match the study harness policy: 16 intervals per trace (shorter
    // intervals stop being content-representative at this scale).
    sp_opts.intervalLength = std::max<size_t>(2048, trace.size() / 16);
    const auto points = pickSimPoints(trace, sp_opts);

    sim::MachineConfig cfg;
    sim::CactiModel::applyLatencies(cfg);
    sim::SimOptions opts;
    opts.warmCaches = true;
    const auto full = sim::simulate(trace, cfg, opts);
    const auto est = estimateIpc(trace, cfg, points);

    // Uncalibrated estimates are noisy but must land in the right
    // ballpark (the paper's point is that the ANN absorbs this).
    EXPECT_LT(percentageError(est.ipc, full.ipc), 45.0) << GetParam();
    // Cost includes the detailed warm-up prefix per interval.
    EXPECT_GE(est.instructionsSimulated, points.detailedInstructions());
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, SimPointTest,
                         ::testing::Values("gzip", "mesa", "crafty"));

TEST(SimPoint, ThrowsOnTooShortTrace)
{
    const auto trace = workload::generateBenchmarkTrace("gzip", 2048);
    SimPointOptions opts;
    opts.intervalLength = 2048;
    EXPECT_THROW(pickSimPoints(trace, opts), std::invalid_argument);
}

TEST(SimPoint, EstimateRejectsEmptyPoints)
{
    const auto trace = workload::generateBenchmarkTrace("gzip", 4096);
    sim::MachineConfig cfg;
    SimPoints empty;
    EXPECT_THROW(estimateIpc(trace, cfg, empty), std::invalid_argument);
}

} // namespace
} // namespace simpoint
} // namespace dse
