/**
 * @file
 * Tests for the incremental explorer (sample -> simulate -> train ->
 * estimate loop of Section 3.3) and the active-learning extension.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "ml/explorer.hh"

namespace dse {
namespace ml {
namespace {

DesignSpace
toySpace()
{
    DesignSpace space;
    space.addCardinal("a", {1, 2, 3, 4, 5, 6, 7, 8});
    space.addCardinal("b", {1, 2, 3, 4, 5, 6, 7, 8});
    space.addCardinal("c", {1, 2, 3, 4});
    space.addNominal("m", {"x", "y"});
    return space;  // 512 points
}

/** Nonlinear synthetic response over the toy space; the interaction
 *  terms keep sparse samples from trivially nailing it. */
double
toyResponse(const DesignSpace &space, uint64_t idx)
{
    const auto x = space.encodeIndex(idx);
    const double nominal = x[3];  // one-hot "x"
    return 0.5 + 0.4 * x[0] - 0.25 * x[1] * x[2] + 0.1 * nominal +
        0.35 * x[0] * x[1] * (1.0 - x[2]);
}

ExplorerOptions
fastOptions()
{
    ExplorerOptions opts;
    opts.batchSize = 40;
    opts.targetMeanPct = 2.0;
    opts.train.maxEpochs = 800;
    opts.train.esInterval = 25;
    opts.train.patience = 8;
    opts.train.ann.decayEpochs = 300;
    return opts;
}

TEST(Explorer, StepAddsExactlyOneBatch)
{
    const auto space = toySpace();
    Explorer ex(space,
                [&](uint64_t i) { return toyResponse(space, i); },
                fastOptions());
    auto step = ex.step();
    ASSERT_TRUE(step.has_value());
    EXPECT_EQ(step->totalSamples, 40u);
    EXPECT_EQ(ex.sampledIndices().size(), 40u);
    step = ex.step();
    ASSERT_TRUE(step.has_value());
    EXPECT_EQ(step->totalSamples, 80u);
}

TEST(Explorer, NeverSamplesSamePointTwice)
{
    const auto space = toySpace();
    Explorer ex(space,
                [&](uint64_t i) { return toyResponse(space, i); },
                fastOptions());
    for (int i = 0; i < 5; ++i)
        ex.step();
    const auto &sampled = ex.sampledIndices();
    std::set<uint64_t> uniq(sampled.begin(), sampled.end());
    EXPECT_EQ(uniq.size(), sampled.size());
}

TEST(Explorer, RunStopsAtTargetError)
{
    const auto space = toySpace();
    auto opts = fastOptions();
    opts.targetMeanPct = 6.0;
    Explorer ex(space,
                [&](uint64_t i) { return toyResponse(space, i); },
                opts);
    const auto history = ex.run();
    ASSERT_FALSE(history.empty());
    EXPECT_LE(history.back().estimate.meanPct, 6.0);
}

TEST(Explorer, RunHonoursSimulationCap)
{
    const auto space = toySpace();
    auto opts = fastOptions();
    opts.targetMeanPct = 0.0;  // unreachable
    opts.maxSimulations = 120;
    Explorer ex(space,
                [&](uint64_t i) { return toyResponse(space, i); },
                opts);
    ex.run();
    EXPECT_EQ(ex.sampledIndices().size(), 120u);
}

TEST(Explorer, ExhaustsSpaceGracefully)
{
    DesignSpace small;
    small.addCardinal("a", {1, 2, 3, 4, 5, 6});
    small.addCardinal("b", {1, 2, 3, 4, 5, 6});  // 36 points
    auto opts = fastOptions();
    opts.batchSize = 30;
    opts.targetMeanPct = 0.0;
    opts.train.folds = 5;
    Explorer ex(small,
                [&](uint64_t i) { return 1.0 + 0.1 * (i % 7); },
                opts);
    auto first = ex.step();
    ASSERT_TRUE(first.has_value());
    auto second = ex.step();  // only 6 left
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->totalSamples, 36u);
    EXPECT_FALSE(ex.step().has_value());
}

TEST(Explorer, TrueErrorImprovesWithMoreRounds)
{
    const auto space = toySpace();
    auto opts = fastOptions();
    opts.targetMeanPct = 0.0;
    opts.maxSimulations = 200;
    Explorer ex(space,
                [&](uint64_t i) { return toyResponse(space, i); },
                opts);

    auto true_error = [&] {
        double err = 0.0;
        int n = 0;
        for (uint64_t i = 0; i < space.size(); i += 3) {
            const double truth = toyResponse(space, i);
            err += std::abs(ex.predictIndex(i) - truth) / truth;
            ++n;
        }
        return err / n;
    };

    ASSERT_TRUE(ex.step().has_value());
    const double sparse = true_error();
    while (ex.step().has_value()) {
    }
    EXPECT_LT(true_error(), sparse);
}

TEST(Explorer, PredictsUnsampledPointsAccurately)
{
    const auto space = toySpace();
    auto opts = fastOptions();
    opts.maxSimulations = 200;
    opts.targetMeanPct = 3.0;
    Explorer ex(space,
                [&](uint64_t i) { return toyResponse(space, i); },
                opts);
    ex.run();
    std::set<uint64_t> sampled(ex.sampledIndices().begin(),
                               ex.sampledIndices().end());
    double err = 0.0;
    int n = 0;
    for (uint64_t i = 0; i < space.size(); ++i) {
        if (sampled.count(i))
            continue;
        const double truth = toyResponse(space, i);
        err += std::abs(ex.predictIndex(i) - truth) / truth;
        ++n;
    }
    EXPECT_LT(100.0 * err / n, 8.0);
}

TEST(Explorer, EnsembleUnavailableBeforeFirstStep)
{
    const auto space = toySpace();
    Explorer ex(space, [](uint64_t) { return 1.0; }, fastOptions());
    EXPECT_THROW(ex.ensemble(), std::logic_error);
}

TEST(Explorer, RejectsBadArguments)
{
    const auto space = toySpace();
    EXPECT_THROW(Explorer(space, nullptr, fastOptions()),
                 std::invalid_argument);
    auto opts = fastOptions();
    opts.batchSize = 0;
    EXPECT_THROW(Explorer(space, [](uint64_t) { return 1.0; }, opts),
                 std::invalid_argument);
}

TEST(Explorer, ActiveLearningSamplesValidPoints)
{
    const auto space = toySpace();
    auto opts = fastOptions();
    opts.activeLearning = true;
    opts.candidatePool = 100;
    opts.maxSimulations = 160;
    opts.targetMeanPct = 0.0;
    Explorer ex(space,
                [&](uint64_t i) { return toyResponse(space, i); },
                opts);
    ex.run();
    const auto &sampled = ex.sampledIndices();
    std::set<uint64_t> uniq(sampled.begin(), sampled.end());
    EXPECT_EQ(uniq.size(), sampled.size());
    EXPECT_EQ(sampled.size(), 160u);
    for (uint64_t i : sampled)
        EXPECT_LT(i, space.size());
}

TEST(Explorer, DeterministicForSeeds)
{
    const auto space = toySpace();
    auto opts = fastOptions();
    opts.maxSimulations = 80;
    opts.targetMeanPct = 0.0;
    auto run_once = [&] {
        Explorer ex(space,
                    [&](uint64_t i) { return toyResponse(space, i); },
                    opts);
        ex.run();
        return ex.sampledIndices();
    };
    EXPECT_EQ(run_once(), run_once());
}

} // namespace
} // namespace ml
} // namespace dse
