/**
 * @file
 * Microscopic pipeline-semantics tests on hand-crafted traces: exact
 * throughput of independent vs dependent instruction streams,
 * structural-limit behaviour, and branch/memory event costs — pinning
 * the core model's timing contract.
 */

#include <gtest/gtest.h>

#include "sim/cacti.hh"
#include "sim/core.hh"
#include "workload/trace.hh"

namespace dse {
namespace sim {
namespace {

using workload::OpClass;
using workload::Trace;
using workload::TraceOp;

/** A trace of n ops built from a prototype op, laid out in one block. */
Trace
makeTrace(size_t n, const TraceOp &proto)
{
    Trace t;
    t.app = "micro";
    t.numBlocks = 1;
    t.numBranches = 1;
    for (size_t i = 0; i < n; ++i) {
        TraceOp op = proto;
        // Same 32B I-cache block group, advancing pc.
        op.pc = static_cast<uint32_t>(0x1000 + 4 * i);
        op.block = 0;
        t.ops.push_back(op);
    }
    return t;
}

MachineConfig
wideConfig()
{
    MachineConfig cfg;
    cfg.fetchWidth = cfg.issueWidth = cfg.commitWidth = 4;
    CactiModel::applyLatencies(cfg);
    return cfg;
}

SimResult
run(const Trace &t, const MachineConfig &cfg)
{
    SimOptions opts;
    opts.warmCaches = true;
    return simulate(t, cfg, opts);
}

TEST(CoreMicro, IndependentAluStreamSaturatesWidth)
{
    TraceOp alu;
    alu.cls = OpClass::IntAlu;
    const auto r = run(makeTrace(4000, alu), wideConfig());
    // 4-wide with 4 ALUs and no dependences: IPC within a few percent
    // of 4 (pipeline fill amortized over 4000 instructions).
    EXPECT_GT(r.ipc, 3.8);
    EXPECT_LE(r.ipc, 4.0);
}

TEST(CoreMicro, SerialDependenceChainHalvesThroughput)
{
    // Each op reads the previous op's result: with a 1-cycle ALU and
    // issue->wakeup the next cycle, steady state is one op per two
    // cycles.
    TraceOp dep;
    dep.cls = OpClass::IntAlu;
    dep.src1 = 1;
    const auto r = run(makeTrace(4000, dep), wideConfig());
    EXPECT_NEAR(r.ipc, 0.5, 0.05);
}

TEST(CoreMicro, MultiplyChainIsSlowerThanAluChain)
{
    TraceOp alu_dep;
    alu_dep.cls = OpClass::IntAlu;
    alu_dep.src1 = 1;
    TraceOp mul_dep;
    mul_dep.cls = OpClass::IntMul;
    mul_dep.src1 = 1;
    const auto alu = run(makeTrace(2000, alu_dep), wideConfig());
    const auto mul = run(makeTrace(2000, mul_dep), wideConfig());
    // IntMul latency 3 vs IntAlu 1: chain throughput 1/(3+1) vs 1/2.
    EXPECT_NEAR(mul.ipc, 0.25, 0.03);
    EXPECT_GT(alu.ipc, mul.ipc);
}

TEST(CoreMicro, IssueWidthCapsEvenWithManyUnits)
{
    TraceOp alu;
    alu.cls = OpClass::IntAlu;
    auto cfg = wideConfig();
    cfg.fetchWidth = cfg.commitWidth = 8;
    cfg.issueWidth = 2;
    cfg.intAluUnits = 8;
    const auto r = run(makeTrace(4000, alu), cfg);
    EXPECT_LE(r.ipc, 2.0);
    EXPECT_GT(r.ipc, 1.9);
}

TEST(CoreMicro, FunctionalUnitsCapBelowWidth)
{
    TraceOp alu;
    alu.cls = OpClass::IntAlu;
    auto cfg = wideConfig();
    cfg.fetchWidth = cfg.issueWidth = cfg.commitWidth = 8;
    cfg.intAluUnits = 3;
    const auto r = run(makeTrace(4000, alu), cfg);
    EXPECT_LE(r.ipc, 3.0);
    EXPECT_GT(r.ipc, 2.9);
}

TEST(CoreMicro, LoadsToOneHotBlockPipelineThroughPorts)
{
    TraceOp load;
    load.cls = OpClass::Load;
    load.addr = 0x8000;  // same warm block every time
    auto cfg = wideConfig();
    cfg.loadPorts = 2;
    const auto r = run(makeTrace(4000, load), cfg);
    // Two load ports bound throughput at 2/cycle.
    EXPECT_LE(r.ipc, 2.0);
    EXPECT_GT(r.ipc, 1.8);
}

TEST(CoreMicro, PointerChaseCostsFullMemoryLatency)
{
    // Each load's address depends on the previous load (src1 = 1):
    // throughput = 1 / L1-hit-latency-ish when everything hits.
    TraceOp chase;
    chase.cls = OpClass::Load;
    chase.addr = 0x8000;
    chase.src1 = 1;
    const auto cfg = wideConfig();
    const auto r = run(makeTrace(2000, chase), cfg);
    // L1 hit latency is 2 cycles at 4 GHz; issue-to-issue adds one.
    EXPECT_LT(r.ipc, 0.55);
    EXPECT_GT(r.ipc, 0.2);
}

TEST(CoreMicro, AllTakenPredictableBranchesFlowFreely)
{
    TraceOp br;
    br.cls = OpClass::Branch;
    br.branchId = 0;
    br.taken = true;
    const auto r = run(makeTrace(3000, br), wideConfig());
    // Perfectly biased branches predict cleanly, but a taken branch
    // ends the fetch group (at most one per cycle), and the 3000
    // distinct branch pcs overflow the BTB (2048 entries), adding
    // decode bubbles.
    EXPECT_EQ(r.branches, 3000u);
    EXPECT_LT(r.branchMispredictRate, 0.01);
    EXPECT_LE(r.ipc, 1.0);
    EXPECT_GT(r.ipc, 0.3);
}

TEST(CoreMicro, NotTakenBranchesDontEndFetchGroups)
{
    TraceOp br;
    br.cls = OpClass::Branch;
    br.branchId = 0;
    br.taken = false;
    const auto r = run(makeTrace(3000, br), wideConfig());
    EXPECT_GT(r.ipc, 3.0);  // up to fetchWidth per cycle
}

TEST(CoreMicro, MaxBranchesOneSerializesBranches)
{
    TraceOp br;
    br.cls = OpClass::Branch;
    br.branchId = 0;
    br.taken = false;
    auto cfg = wideConfig();
    cfg.maxBranches = 1;
    const auto limited = run(makeTrace(3000, br), cfg);
    const auto free = run(makeTrace(3000, br), wideConfig());
    EXPECT_LT(limited.ipc, free.ipc);
}

TEST(CoreMicro, AlternatingBranchLearnedByHistory)
{
    Trace t;
    t.app = "micro";
    t.numBlocks = 1;
    t.numBranches = 1;
    for (size_t i = 0; i < 4000; ++i) {
        TraceOp op;
        op.cls = OpClass::Branch;
        op.branchId = 0;
        op.taken = i % 2 == 0;
        op.pc = 0x1000;
        t.ops.push_back(op);
    }
    const auto r = run(t, wideConfig());
    EXPECT_LT(r.branchMispredictRate, 0.05);
}

TEST(CoreMicro, StoresRetireThroughPorts)
{
    TraceOp store;
    store.cls = OpClass::Store;
    store.addr = 0x9000;
    auto cfg = wideConfig();
    cfg.storePorts = 1;
    const auto r = run(makeTrace(3000, store), cfg);
    EXPECT_LE(r.ipc, 1.0);
    EXPECT_GT(r.ipc, 0.9);
}

TEST(CoreMicro, RobOfOneFullySerializes)
{
    TraceOp alu;
    alu.cls = OpClass::IntAlu;
    auto cfg = wideConfig();
    cfg.robSize = 1;
    const auto r = run(makeTrace(1000, alu), cfg);
    // Dispatch -> issue -> complete -> commit, one at a time.
    EXPECT_LE(r.ipc, 0.5);
}

TEST(CoreMicro, CyclesAreAdditiveAcrossRanges)
{
    // Simulating [0, N) and [0, N/2) + warmup-consistent [N/2, N)
    // should give comparable totals for a uniform stream (no phase
    // change): the model has no cross-range hidden state beyond the
    // caches, which warmCaches equalizes.
    TraceOp alu;
    alu.cls = OpClass::IntAlu;
    alu.src1 = 1;
    const auto trace = makeTrace(2000, alu);
    const auto cfg = wideConfig();
    const auto full = run(trace, cfg);

    SimOptions first;
    first.begin = 0;
    first.end = 1000;
    first.warmCaches = true;
    SimOptions second;
    second.begin = 1000;
    second.end = 2000;
    second.warmCaches = true;
    const auto a = simulate(trace, cfg, first);
    const auto b = simulate(trace, cfg, second);
    EXPECT_NEAR(static_cast<double>(a.cycles + b.cycles),
                static_cast<double>(full.cycles),
                0.05 * static_cast<double>(full.cycles));
}

} // namespace
} // namespace sim
} // namespace dse
