/**
 * @file
 * Tests for k-fold cross-validation ensemble training: fold
 * mechanics, error estimation, ensemble behaviour, and the
 * architecture-specific training options of Section 3.3.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ml/cross_validation.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace dse {
namespace ml {
namespace {

/** A learnable synthetic "design space": y = f(x) on [0,1]^3. */
DataSet
syntheticData(size_t n, uint64_t seed)
{
    Rng rng(seed);
    DataSet data;
    for (size_t i = 0; i < n; ++i) {
        const double a = rng.uniform(), b = rng.uniform(),
                     c = rng.uniform();
        const double y = 0.4 + 0.8 * a + 0.5 * b * c - 0.3 * a * b;
        data.add({a, b, c}, y);
    }
    return data;
}

TrainOptions
fastOptions()
{
    TrainOptions opts;
    opts.maxEpochs = 1500;
    opts.esInterval = 25;
    opts.patience = 10;
    opts.ann.learningRate = 0.4;
    opts.ann.decayEpochs = 500;
    return opts;
}

TEST(CrossValidation, EnsembleHasOneMemberPerFold)
{
    const auto data = syntheticData(100, 1);
    auto opts = fastOptions();
    opts.folds = 5;
    opts.maxEpochs = 50;
    const auto model = trainEnsemble(data, opts);
    EXPECT_EQ(model.members(), 5u);
}

TEST(CrossValidation, LearnsSmoothFunction)
{
    const auto data = syntheticData(300, 2);
    const auto model = trainEnsemble(data, fastOptions());

    const auto holdout = syntheticData(200, 99);
    double err = 0.0;
    for (size_t i = 0; i < holdout.size(); ++i)
        err += percentageError(model.predict(holdout.x[i]),
                               holdout.y[i]);
    EXPECT_LT(err / holdout.size(), 5.0);
}

TEST(CrossValidation, EstimateTracksTrueError)
{
    const auto data = syntheticData(300, 3);
    const auto model = trainEnsemble(data, fastOptions());

    const auto holdout = syntheticData(300, 77);
    std::vector<double> errs;
    for (size_t i = 0; i < holdout.size(); ++i)
        errs.push_back(percentageError(model.predict(holdout.x[i]),
                                       holdout.y[i]));
    const double true_mean = mean(errs);
    // Estimated and true mean within a couple of percentage points
    // (the paper finds <0.5% once sampling is dense; the synthetic
    // set here is small).
    EXPECT_NEAR(model.estimate().meanPct, true_mean,
                std::max(2.0, true_mean));
}

TEST(CrossValidation, EnsemblePredictionWithinMemberRange)
{
    const auto data = syntheticData(150, 4);
    auto opts = fastOptions();
    opts.maxEpochs = 300;
    const auto model = trainEnsemble(data, opts);
    const std::vector<double> x{0.3, 0.6, 0.2};
    double lo = 1e9, hi = -1e9;
    for (size_t m = 0; m < model.members(); ++m) {
        lo = std::min(lo, model.predictMember(m, x));
        hi = std::max(hi, model.predictMember(m, x));
    }
    const double p = model.predict(x);
    EXPECT_GE(p, lo - 1e-9);
    EXPECT_LE(p, hi + 1e-9);
}

TEST(CrossValidation, MemberSpreadNonNegative)
{
    const auto data = syntheticData(100, 5);
    auto opts = fastOptions();
    opts.maxEpochs = 200;
    const auto model = trainEnsemble(data, opts);
    EXPECT_GE(model.memberSpread({0.5, 0.5, 0.5}), 0.0);
}

TEST(CrossValidation, DeterministicForSeed)
{
    const auto data = syntheticData(120, 6);
    auto opts = fastOptions();
    opts.maxEpochs = 200;
    const auto a = trainEnsemble(data, opts);
    const auto b = trainEnsemble(data, opts);
    EXPECT_DOUBLE_EQ(a.predict({0.1, 0.2, 0.3}),
                     b.predict({0.1, 0.2, 0.3}));
    EXPECT_DOUBLE_EQ(a.estimate().meanPct, b.estimate().meanPct);
}

TEST(CrossValidation, SeedChangesModel)
{
    const auto data = syntheticData(120, 6);
    auto opts = fastOptions();
    opts.maxEpochs = 200;
    auto opts2 = opts;
    opts2.seed = opts.seed + 1;
    const auto a = trainEnsemble(data, opts);
    const auto b = trainEnsemble(data, opts2);
    EXPECT_NE(a.predict({0.1, 0.2, 0.3}), b.predict({0.1, 0.2, 0.3}));
}

TEST(CrossValidation, RejectsTooFewPoints)
{
    const auto data = syntheticData(5, 7);
    TrainOptions opts;  // 10 folds
    EXPECT_THROW(trainEnsemble(data, opts), std::invalid_argument);
}

TEST(CrossValidation, RejectsSingleFold)
{
    const auto data = syntheticData(50, 7);
    TrainOptions opts;
    opts.folds = 1;
    EXPECT_THROW(trainEnsemble(data, opts), std::invalid_argument);
}

TEST(CrossValidation, MoreDataImprovesAccuracy)
{
    auto run = [](size_t n) {
        const auto data = syntheticData(n, 8);
        auto opts = fastOptions();
        const auto model = trainEnsemble(data, opts);
        const auto holdout = syntheticData(200, 55);
        double err = 0.0;
        for (size_t i = 0; i < holdout.size(); ++i)
            err += percentageError(model.predict(holdout.x[i]),
                                   holdout.y[i]);
        return err / holdout.size();
    };
    // Learning-curve property: 400 points beat 40 points.
    EXPECT_LT(run(400), run(40));
}

TEST(CrossValidation, WeightedPresentationFavoursSmallTargets)
{
    // Targets split into a small-value and a large-value cluster with
    // conflicting structure; weighting should fit the small cluster
    // relatively better than unweighted training does.
    Rng rng(9);
    DataSet data;
    for (int i = 0; i < 200; ++i) {
        const double a = rng.uniform();
        data.add({a, 1.0}, 0.05 + 0.02 * a);    // small targets
        data.add({a, 0.0}, 2.0 - 0.5 * a);      // large targets
    }
    auto weighted_opts = fastOptions();
    auto flat_opts = fastOptions();
    flat_opts.weightedPresentation = false;

    const auto weighted = trainEnsemble(data, weighted_opts);
    const auto flat = trainEnsemble(data, flat_opts);

    double werr = 0.0, ferr = 0.0;
    for (double a = 0.05; a < 1.0; a += 0.05) {
        const double target = 0.05 + 0.02 * a;
        werr += percentageError(weighted.predict({a, 1.0}), target);
        ferr += percentageError(flat.predict({a, 1.0}), target);
    }
    EXPECT_LT(werr, ferr);
}

TEST(CrossValidation, EarlyStoppingOffStillTrains)
{
    const auto data = syntheticData(100, 10);
    auto opts = fastOptions();
    opts.earlyStopping = false;
    opts.maxEpochs = 300;
    const auto model = trainEnsemble(data, opts);
    EXPECT_LT(model.estimate().meanPct, 50.0);
}

TEST(CrossValidation, EstimateFieldsPopulated)
{
    const auto data = syntheticData(100, 11);
    auto opts = fastOptions();
    opts.maxEpochs = 200;
    const auto model = trainEnsemble(data, opts);
    EXPECT_GE(model.estimate().meanPct, 0.0);
    EXPECT_GE(model.estimate().sdPct, 0.0);
}

/** Fold-count sweep: any reasonable k must work. */
class FoldCountTest : public ::testing::TestWithParam<int> {};

TEST_P(FoldCountTest, TrainsAndEstimates)
{
    const auto data = syntheticData(120, 12);
    auto opts = fastOptions();
    opts.folds = GetParam();
    opts.maxEpochs = 300;
    const auto model = trainEnsemble(data, opts);
    EXPECT_EQ(model.members(), static_cast<size_t>(GetParam()));
    EXPECT_LT(model.estimate().meanPct, 100.0);
}

INSTANTIATE_TEST_SUITE_P(Folds, FoldCountTest,
                         ::testing::Values(2, 5, 10, 20));

} // namespace
} // namespace ml
} // namespace dse
