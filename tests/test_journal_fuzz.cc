/**
 * @file
 * Journal truncation fuzz: a 50-record journal is cut at EVERY byte
 * offset, reopened, and replayed — the torn-tail rule (journal.hh)
 * must hold exactly at each cut: whole records before the cut replay
 * verbatim and in order, a trailing partial record is reported as a
 * torn tail and dropped, and a file cut inside the header is refused.
 * Also: one-byte corruption inside each record body rejects exactly
 * that record, and a truncated journal accepts new appends after the
 * tail is dropped.
 *
 * Suites are named Faults* and live in the dse_fault_tests binary
 * (label `faults`), so the sanitizer presets cover this file too.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "study/journal.hh"

namespace dse {
namespace {

std::string
fuzzPath(const std::string &name)
{
    std::string path = "/tmp/dse_journal_fuzz_" + name;
    std::remove(path.c_str());
    return path;
}

std::string
readBytes(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
}

void
writeBytes(const std::string &path, const std::string &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

constexpr auto kKind = study::StudyKind::MemorySystem;
constexpr const char *kApp = "gzip";
constexpr uint64_t kTraceLen = 4096;
constexpr uint64_t kRecords = 50;

/** Synthetic but fully populated result for record @p i. */
sim::SimResult
syntheticResult(uint64_t i)
{
    sim::SimResult r{};
    r.cycles = 1000 + i;
    r.instructions = 2000 + 3 * i;
    r.ipc = 0.25 + 0.001 * static_cast<double>(i);
    r.l1dMissRate = 0.01 * static_cast<double>(i % 7);
    r.l2MissRate = 0.02;
    r.l1iMissRate = 0.001;
    r.branchMispredictRate = 0.05;
    r.l1dAccesses = 100 + i;
    r.l1dMisses = i;
    r.l2Accesses = 50 + i;
    r.l2Misses = i / 2;
    r.l1iAccesses = 10 + i;
    r.l1iMisses = i % 3;
    r.branches = 30 + i;
    r.branchMispredicts = i % 5;
    return r;
}

/** Write a complete kRecords-record journal, returning (bytes,
 *  header length). */
std::pair<std::string, size_t>
buildJournal(const std::string &path)
{
    size_t header_len = 0;
    {
        study::SimJournal j(path, kKind, kApp, kTraceLen);
        header_len = readBytes(path).size();
        for (uint64_t i = 0; i < kRecords; ++i)
            j.append(i, syntheticResult(i));
    }
    return {readBytes(path), header_len};
}

using FaultsJournalFuzz = ::testing::Test;

TEST_F(FaultsJournalFuzz, TruncationAtEveryByteOffset)
{
    const auto [full, header_len] = buildJournal(fuzzPath("build"));
    ASSERT_EQ(full.size(),
              header_len + kRecords * study::SimJournal::kRecordSize);

    const std::string cut_path = fuzzPath("cut");
    for (size_t len = 0; len <= full.size(); ++len) {
        writeBytes(cut_path, full.substr(0, len));

        if (len == 0) {
            // Empty file: reopening writes a fresh header — a valid,
            // empty journal.
            study::SimJournal j(cut_path, kKind, kApp, kTraceLen);
            const auto stats = j.replay(
                [](uint64_t, const sim::SimResult &) { FAIL(); });
            EXPECT_EQ(stats.replayed, 0u);
            EXPECT_FALSE(stats.tornTail);
            continue;
        }
        if (len < header_len) {
            // A cut inside the header must be refused outright: the
            // file's identity cannot be verified.
            EXPECT_THROW(
                study::SimJournal(cut_path, kKind, kApp, kTraceLen),
                std::runtime_error)
                << "cut at " << len;
            continue;
        }

        study::SimJournal j(cut_path, kKind, kApp, kTraceLen);
        std::vector<std::pair<uint64_t, sim::SimResult>> got;
        const auto stats =
            j.replay([&](uint64_t index, const sim::SimResult &r) {
                got.emplace_back(index, r);
            });

        const size_t body = len - header_len;
        const size_t whole = body / study::SimJournal::kRecordSize;
        EXPECT_EQ(stats.replayed, whole) << "cut at " << len;
        EXPECT_EQ(stats.rejected, 0u) << "cut at " << len;
        EXPECT_EQ(stats.tornTail,
                  body % study::SimJournal::kRecordSize != 0)
            << "cut at " << len;

        // Replay is exactly the prefix, verbatim and in order.
        ASSERT_EQ(got.size(), whole) << "cut at " << len;
        for (size_t i = 0; i < whole; ++i) {
            EXPECT_EQ(got[i].first, i);
            const auto want = syntheticResult(i);
            EXPECT_EQ(got[i].second.cycles, want.cycles);
            EXPECT_EQ(got[i].second.instructions, want.instructions);
            EXPECT_EQ(got[i].second.ipc, want.ipc);
            EXPECT_EQ(got[i].second.l1dMisses, want.l1dMisses);
            EXPECT_EQ(got[i].second.branchMispredicts,
                      want.branchMispredicts);
        }
    }
}

TEST_F(FaultsJournalFuzz, AppendAfterTornTailExtendsTheValidPrefix)
{
    const auto [full, header_len] = buildJournal(fuzzPath("append_src"));
    const std::string cut_path = fuzzPath("append_cut");

    // Sample cut offsets across the body (every offset is covered by
    // the truncation test above; here each reopened journal also takes
    // a new append and must replay it after a second reopen).
    for (size_t len = header_len; len <= full.size(); len += 97) {
        writeBytes(cut_path, full.substr(0, len));
        const size_t whole =
            (len - header_len) / study::SimJournal::kRecordSize;
        {
            study::SimJournal j(cut_path, kKind, kApp, kTraceLen);
            j.replay([](uint64_t, const sim::SimResult &) {});
            j.append(9999, syntheticResult(9999));
        }
        study::SimJournal j(cut_path, kKind, kApp, kTraceLen);
        std::vector<uint64_t> indices;
        const auto stats =
            j.replay([&](uint64_t index, const sim::SimResult &) {
                indices.push_back(index);
            });
        EXPECT_EQ(stats.replayed, whole + 1) << "cut at " << len;
        EXPECT_FALSE(stats.tornTail) << "cut at " << len;
        ASSERT_FALSE(indices.empty());
        EXPECT_EQ(indices.back(), 9999u) << "cut at " << len;
    }
}

TEST_F(FaultsJournalFuzz, SingleByteCorruptionRejectsExactlyThatRecord)
{
    const auto [full, header_len] = buildJournal(fuzzPath("corrupt_src"));
    const std::string path = fuzzPath("corrupt");
    const size_t rec = study::SimJournal::kRecordSize;

    for (uint64_t victim = 0; victim < kRecords; ++victim) {
        std::string bytes = full;
        // Flip one byte mid-record (offset 13 lands inside the cycles
        // field for every record).
        bytes[header_len + victim * rec + 13] ^= 0x5a;
        writeBytes(path, bytes);

        study::SimJournal j(path, kKind, kApp, kTraceLen);
        std::vector<uint64_t> indices;
        const auto stats =
            j.replay([&](uint64_t index, const sim::SimResult &) {
                indices.push_back(index);
            });
        EXPECT_EQ(stats.replayed, kRecords - 1) << "victim " << victim;
        EXPECT_EQ(stats.rejected, 1u) << "victim " << victim;
        EXPECT_FALSE(stats.tornTail);
        // Every record except the victim replays, still in order.
        ASSERT_EQ(indices.size(), kRecords - 1);
        size_t at = 0;
        for (uint64_t i = 0; i < kRecords; ++i) {
            if (i == victim)
                continue;
            EXPECT_EQ(indices[at++], i);
        }
    }
}

} // namespace
} // namespace dse
