/**
 * @file
 * Tests for the out-of-order core model: determinism, conservation,
 * resource-limit behaviour, and directional sensitivities.
 */

#include <gtest/gtest.h>

#include "sim/cacti.hh"
#include "sim/core.hh"
#include "workload/generator.hh"

namespace dse {
namespace sim {
namespace {

MachineConfig
strongConfig()
{
    MachineConfig cfg;
    CactiModel::applyLatencies(cfg);
    return cfg;
}

SimResult
run(const workload::Trace &trace, const MachineConfig &cfg,
    bool warm = true)
{
    SimOptions opts;
    opts.warmCaches = warm;
    return simulate(trace, cfg, opts);
}

class CoreTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        trace_ = new workload::Trace(
            workload::generateBenchmarkTrace("gzip", 16384));
    }
    static void TearDownTestSuite() { delete trace_; }
    static workload::Trace *trace_;
};

workload::Trace *CoreTest::trace_ = nullptr;

TEST_F(CoreTest, Deterministic)
{
    const auto a = run(*trace_, strongConfig());
    const auto b = run(*trace_, strongConfig());
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.l1dMisses, b.l1dMisses);
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts);
}

TEST_F(CoreTest, CommitsEveryInstruction)
{
    const auto r = run(*trace_, strongConfig());
    EXPECT_EQ(r.instructions, trace_->size());
    EXPECT_GT(r.cycles, 0u);
    EXPECT_NEAR(r.ipc,
                static_cast<double>(r.instructions) /
                    static_cast<double>(r.cycles), 1e-12);
}

TEST_F(CoreTest, IpcBoundedByWidth)
{
    const auto r = run(*trace_, strongConfig());
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_LE(r.ipc, 4.0);
}

TEST_F(CoreTest, WarmupImprovesIpc)
{
    const auto cold = run(*trace_, strongConfig(), false);
    const auto warm = run(*trace_, strongConfig(), true);
    EXPECT_GT(warm.ipc, cold.ipc);
}

TEST_F(CoreTest, StatisticsAreConsistent)
{
    const auto r = run(*trace_, strongConfig());
    EXPECT_LE(r.l1dMisses, r.l1dAccesses);
    EXPECT_LE(r.l2Misses, r.l2Accesses);
    EXPECT_LE(r.branchMispredicts, r.branches);
    EXPECT_GT(r.branches, 0u);
    EXPECT_GT(r.l1dAccesses, 0u);
    EXPECT_NEAR(r.l1dMissRate,
                static_cast<double>(r.l1dMisses) /
                    static_cast<double>(r.l1dAccesses), 1e-12);
}

TEST_F(CoreTest, WiderCoreNoSlower)
{
    auto narrow = strongConfig();
    narrow.fetchWidth = narrow.issueWidth = narrow.commitWidth = 2;
    auto wide = strongConfig();
    wide.fetchWidth = wide.issueWidth = wide.commitWidth = 8;
    EXPECT_LE(run(*trace_, narrow).ipc, run(*trace_, wide).ipc);
}

TEST_F(CoreTest, BiggerRobNoSlower)
{
    auto small = strongConfig();
    small.robSize = 32;
    auto large = strongConfig();
    large.robSize = 160;
    EXPECT_LE(run(*trace_, small).ipc, run(*trace_, large).ipc * 1.001);
}

TEST_F(CoreTest, TinyLsqThrottles)
{
    auto tiny = strongConfig();
    tiny.lsqLoads = tiny.lsqStores = 2;
    EXPECT_LT(run(*trace_, tiny).ipc, run(*trace_, strongConfig()).ipc);
}

TEST_F(CoreTest, FewRegistersThrottle)
{
    auto tiny = strongConfig();
    tiny.intRegs = tiny.fpRegs = 36;  // only 4 rename registers
    EXPECT_LT(run(*trace_, tiny).ipc, run(*trace_, strongConfig()).ipc);
}

TEST_F(CoreTest, HigherMispredictPenaltyHurts)
{
    auto cheap = strongConfig();
    cheap.mispredictPenaltyCycles = 2;
    auto steep = strongConfig();
    steep.mispredictPenaltyCycles = 40;
    EXPECT_GT(run(*trace_, cheap).ipc, run(*trace_, steep).ipc);
}

TEST_F(CoreTest, SlowMemoryHurts)
{
    auto slow = strongConfig();
    slow.sdramNs = 500.0;
    slow.l2 = {256, 64, 1, true};
    CactiModel::applyLatencies(slow);
    EXPECT_LT(run(*trace_, slow).ipc, run(*trace_, strongConfig()).ipc);
}

TEST_F(CoreTest, IntervalSimulationRunsSubrange)
{
    SimOptions opts;
    opts.begin = 4096;
    opts.end = 8192;
    opts.warmCaches = true;
    const auto r = simulate(*trace_, strongConfig(), opts);
    EXPECT_EQ(r.instructions, 4096u);
    EXPECT_GT(r.ipc, 0.0);
}

TEST_F(CoreTest, FunctionalWarmupOfPrefixWorks)
{
    SimOptions cold_opts;
    cold_opts.begin = 8192;
    cold_opts.end = 12288;
    const auto cold = simulate(*trace_, strongConfig(), cold_opts);

    SimOptions warm_opts = cold_opts;
    warm_opts.warmupInstructions = 8192;
    const auto warm = simulate(*trace_, strongConfig(), warm_opts);
    EXPECT_GE(warm.ipc, cold.ipc);
}

TEST_F(CoreTest, RejectsOversizedRob)
{
    auto bad = strongConfig();
    bad.robSize = 4096;
    EXPECT_THROW(run(*trace_, bad), std::invalid_argument);
}

TEST(CoreEdge, EmptyRangeCompletesInstantly)
{
    const auto trace = workload::generateBenchmarkTrace("gzip", 2048);
    SimOptions opts;
    opts.begin = 100;
    opts.end = 100;
    const auto r = simulate(trace, MachineConfig{}, opts);
    EXPECT_EQ(r.instructions, 0u);
}

/** Directional sanity across every benchmark. */
class PerAppCoreTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PerAppCoreTest, StrongBeatsWeakMachine)
{
    const auto trace =
        workload::generateBenchmarkTrace(GetParam(), 16384);
    auto strong = strongConfig();
    auto weak = strongConfig();
    weak.l1d = {8, 32, 1, false};
    weak.l2 = {256, 64, 1, true};
    weak.l2BusBytes = 8;
    weak.fsbGHz = 0.533;
    CactiModel::applyLatencies(weak);
    const auto s = run(trace, strong);
    const auto w = run(trace, weak);
    EXPECT_GT(s.ipc, w.ipc) << GetParam();
}

TEST_P(PerAppCoreTest, IpcInPlausibleRange)
{
    const auto trace =
        workload::generateBenchmarkTrace(GetParam(), 16384);
    const auto r = run(trace, strongConfig());
    EXPECT_GT(r.ipc, 0.01) << GetParam();
    EXPECT_LT(r.ipc, 4.0) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, PerAppCoreTest,
                         ::testing::ValuesIn(workload::benchmarkNames()));

} // namespace
} // namespace sim
} // namespace dse
