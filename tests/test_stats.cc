/**
 * @file
 * Unit tests for the statistics helpers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/stats.hh"

namespace dse {
namespace {

TEST(OnlineStats, EmptyIsZero)
{
    OnlineStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(OnlineStats, SingleValue)
{
    OnlineStats s;
    s.add(3.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 3.5);
    EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(OnlineStats, MatchesDirectComputation)
{
    const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
    OnlineStats s;
    for (double x : xs)
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 6.2);
    // Unbiased variance: sum((x-6.2)^2)/4 = (27.04+17.64+4.84+3.24+96.04)/4
    EXPECT_NEAR(s.variance(), 37.2, 1e-9);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 16.0);
}

TEST(OnlineStats, MergeEqualsCombined)
{
    OnlineStats a, b, all;
    for (int i = 0; i < 50; ++i) {
        const double x = i * 0.37;
        (i % 2 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty)
{
    OnlineStats a, empty;
    a.add(1.0);
    a.add(2.0);
    const double mean_before = a.mean();
    a.merge(empty);
    EXPECT_DOUBLE_EQ(a.mean(), mean_before);

    OnlineStats c;
    c.merge(a);
    EXPECT_DOUBLE_EQ(c.mean(), a.mean());
}

TEST(Summarize, Basic)
{
    auto s = summarize({2.0, 4.0, 6.0});
    EXPECT_DOUBLE_EQ(s.mean, 4.0);
    EXPECT_DOUBLE_EQ(s.min, 2.0);
    EXPECT_DOUBLE_EQ(s.max, 6.0);
    EXPECT_EQ(s.count, 3u);
    EXPECT_NEAR(s.stddev, 2.0, 1e-12);
}

TEST(Summarize, Empty)
{
    auto s = summarize({});
    EXPECT_EQ(s.count, 0u);
    EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(PercentageError, Basics)
{
    EXPECT_DOUBLE_EQ(percentageError(1.1, 1.0), 10.000000000000009);
    EXPECT_NEAR(percentageError(0.9, 1.0), 10.0, 1e-9);
    EXPECT_DOUBLE_EQ(percentageError(2.0, 2.0), 0.0);
}

TEST(PercentageError, RelativeNotAbsolute)
{
    // Erring by 1 matters more on a small target (Section 3.3).
    EXPECT_GT(percentageError(3.0, 2.0), percentageError(61.0, 60.0));
}

TEST(PercentageError, ZeroActual)
{
    EXPECT_DOUBLE_EQ(percentageError(0.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(percentageError(1.0, 0.0), 1000.0);  // capped
}

TEST(PercentageError, Capped)
{
    EXPECT_DOUBLE_EQ(percentageError(100.0, 0.001), 1000.0);
    EXPECT_DOUBLE_EQ(percentageError(100.0, 0.001, 50.0), 50.0);
}

TEST(MeanStddev, Vectors)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
    EXPECT_NEAR(stddev({1.0, 3.0}), std::sqrt(2.0), 1e-12);
}

TEST(Pearson, PerfectCorrelation)
{
    EXPECT_NEAR(pearson({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
    EXPECT_NEAR(pearson({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
}

TEST(Pearson, DegenerateIsZero)
{
    EXPECT_DOUBLE_EQ(pearson({1, 1, 1}, {2, 3, 4}), 0.0);
    EXPECT_DOUBLE_EQ(pearson({1}, {2}), 0.0);
}

TEST(Interpolate, MidpointAndClamping)
{
    const std::vector<double> xs{0.0, 1.0, 2.0};
    const std::vector<double> ys{0.0, 10.0, 40.0};
    EXPECT_DOUBLE_EQ(interpolate(xs, ys, 0.5), 5.0);
    EXPECT_DOUBLE_EQ(interpolate(xs, ys, 1.5), 25.0);
    EXPECT_DOUBLE_EQ(interpolate(xs, ys, -1.0), 0.0);   // clamp low
    EXPECT_DOUBLE_EQ(interpolate(xs, ys, 9.0), 40.0);   // clamp high
    EXPECT_DOUBLE_EQ(interpolate(xs, ys, 1.0), 10.0);   // exact knot
}

/** Property: OnlineStats matches two-pass formulas on random data. */
class StatsPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(StatsPropertyTest, WelfordMatchesTwoPass)
{
    const int n = GetParam();
    std::vector<double> xs;
    OnlineStats s;
    for (int i = 0; i < n; ++i) {
        const double x = std::sin(i * 12.9898) * 43758.5453;
        const double v = x - std::floor(x);
        xs.push_back(v);
        s.add(v);
    }
    EXPECT_NEAR(s.mean(), mean(xs), 1e-9);
    EXPECT_NEAR(s.stddev(), stddev(xs), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, StatsPropertyTest,
                         ::testing::Values(2, 3, 10, 100, 1000));

} // namespace
} // namespace dse
