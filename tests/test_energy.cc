/**
 * @file
 * Tests for the first-order energy model: structural scaling rules
 * and directional behaviour on real simulations.
 */

#include <gtest/gtest.h>

#include "sim/cacti.hh"
#include "sim/core.hh"
#include "sim/energy.hh"
#include "workload/generator.hh"

namespace dse {
namespace sim {
namespace {

SimResult
fixedResult()
{
    SimResult r;
    r.cycles = 100000;
    r.instructions = 80000;
    r.ipc = 0.8;
    r.l1dAccesses = 30000;
    r.l1dMisses = 1500;
    r.l1iAccesses = 10000;
    r.l2Accesses = 1600;
    r.l2Misses = 100;
    return r;
}

TEST(Energy, AllComponentsPositive)
{
    MachineConfig cfg;
    const auto e = computeEnergy(cfg, fixedResult());
    EXPECT_GT(e.coreDynamicNj, 0.0);
    EXPECT_GT(e.cacheDynamicNj, 0.0);
    EXPECT_GT(e.dramDynamicNj, 0.0);
    EXPECT_GT(e.leakageNj, 0.0);
    EXPECT_GT(e.edp, 0.0);
    EXPECT_NEAR(e.totalNj(),
                e.coreDynamicNj + e.cacheDynamicNj + e.dramDynamicNj +
                    e.leakageNj, 1e-9);
}

TEST(Energy, WiderCoreCostsMore)
{
    MachineConfig narrow;
    narrow.issueWidth = 4;
    MachineConfig wide;
    wide.issueWidth = 8;
    const auto r = fixedResult();
    EXPECT_GT(computeEnergy(wide, r).coreDynamicNj,
              computeEnergy(narrow, r).coreDynamicNj);
    EXPECT_GT(computeEnergy(wide, r).leakageNj,
              computeEnergy(narrow, r).leakageNj);
}

TEST(Energy, BiggerCachesCostMore)
{
    MachineConfig small;
    small.l2.sizeKB = 256;
    MachineConfig large;
    large.l2.sizeKB = 2048;
    const auto r = fixedResult();
    EXPECT_GT(computeEnergy(large, r).cacheDynamicNj,
              computeEnergy(small, r).cacheDynamicNj);
    EXPECT_GT(computeEnergy(large, r).leakageNj,
              computeEnergy(small, r).leakageNj);
}

TEST(Energy, DramEnergyScalesWithL2Misses)
{
    MachineConfig cfg;
    auto few = fixedResult();
    auto many = fixedResult();
    many.l2Misses = 1000;
    EXPECT_GT(computeEnergy(cfg, many).dramDynamicNj,
              computeEnergy(cfg, few).dramDynamicNj);
}

TEST(Energy, LongerRunsLeakMore)
{
    MachineConfig cfg;
    auto quick = fixedResult();
    auto slow = fixedResult();
    slow.cycles = 400000;
    EXPECT_GT(computeEnergy(cfg, slow).leakageNj,
              computeEnergy(cfg, quick).leakageNj);
    EXPECT_GT(computeEnergy(cfg, slow).edp,
              computeEnergy(cfg, quick).edp);
}

TEST(Energy, EndToEndOnRealSimulation)
{
    const auto trace = workload::generateBenchmarkTrace("gzip", 8192);
    MachineConfig cfg;
    CactiModel::applyLatencies(cfg);
    SimOptions opts;
    opts.warmCaches = true;
    const auto r = simulate(trace, cfg, opts);
    const auto e = computeEnergy(cfg, r);
    // Sanity: ~0.5-2 nJ per instruction overall at this scale.
    const double nj_per_instr =
        e.totalNj() / static_cast<double>(r.instructions);
    EXPECT_GT(nj_per_instr, 0.1);
    EXPECT_LT(nj_per_instr, 10.0);
}

TEST(Energy, EdpTradesPerformanceForPower)
{
    // A slower but narrower machine can win EDP over a faster, wider
    // one: run both on the same app and check EDP ordering can
    // diverge from IPC ordering. (Not guaranteed in general; this
    // pair is chosen so it does — documenting the tradeoff exists.)
    const auto trace = workload::generateBenchmarkTrace("crafty", 8192);
    MachineConfig lean;
    lean.issueWidth = lean.fetchWidth = lean.commitWidth = 4;
    lean.robSize = 96;
    CactiModel::applyLatencies(lean);
    MachineConfig beefy;
    beefy.issueWidth = beefy.fetchWidth = beefy.commitWidth = 8;
    beefy.robSize = 160;
    beefy.intAluUnits = 8;
    CactiModel::applyLatencies(beefy);

    SimOptions opts;
    opts.warmCaches = true;
    const auto lean_r = simulate(trace, lean, opts);
    const auto beefy_r = simulate(trace, beefy, opts);
    const auto lean_e = computeEnergy(lean, lean_r);
    const auto beefy_e = computeEnergy(beefy, beefy_r);

    EXPECT_GE(beefy_r.ipc, lean_r.ipc);
    // The wide machine pays materially more energy per instruction.
    EXPECT_GT(beefy_e.totalNj() / lean_e.totalNj(), 1.1);
}

} // namespace
} // namespace sim
} // namespace dse
