/**
 * @file
 * Blocked committee-scoring suite: the batched member-spread kernels
 * (Ensemble::memberSpreadBatch / memberSpreadIndices), the
 * deterministic top-k selection in Explorer::pickBatch, and the
 * streaming Explorer::predictRange must all be bit-identical to
 * their scalar counterparts — per point, at any thread count, and
 * across dispatch topologies. The scalar memberSpread() is the
 * oracle throughout (it predates the blocked kernel and its member
 * predictions are pinned to predictScalar by the parity suite).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "ml/explorer.hh"
#include "util/thread_pool.hh"

namespace dse {
namespace {

using util::ThreadPool;

constexpr size_t kThreadCounts[] = {1, 2, 8};

/** Restores the default global pool when a test scope ends. */
struct PoolGuard
{
    explicit PoolGuard(size_t threads) { ThreadPool::resetGlobal(threads); }
    ~PoolGuard() { ThreadPool::resetGlobal(); }
};

ml::DesignSpace
scoringSpace()
{
    ml::DesignSpace space;
    space.addCardinal("a", {1, 2, 3, 4, 5, 6, 7, 8});
    space.addCardinal("b", {1, 2, 3, 4, 5, 6, 7, 8});
    space.addCardinal("c", {1, 2, 3, 4});
    space.addNominal("m", {"x", "y"});
    return space;  // 512 points, 5 encoded inputs
}

double
scoringResponse(const ml::DesignSpace &space, uint64_t idx)
{
    const auto x = space.encodeIndex(idx);
    return 0.5 + 0.4 * x[0] - 0.25 * x[1] * x[2] + 0.1 * x[3] +
        0.35 * x[0] * x[1] * (1.0 - x[2]);
}

/** A small real ensemble over the scoring space (trained once). */
ml::Ensemble
trainScoringEnsemble(const ml::DesignSpace &space, int folds = 5)
{
    ml::DataSet data;
    Rng rng(0x5c0e);
    const auto indices = rng.sampleWithoutReplacement(space.size(), 80);
    for (uint64_t idx : indices)
        data.add(space.encodeIndex(idx), scoringResponse(space, idx));
    ml::TrainOptions opts;
    opts.folds = folds;
    opts.maxEpochs = 150;
    opts.esInterval = 25;
    opts.patience = 4;
    return ml::trainEnsemble(data, opts);
}

/**
 * An ensemble whose members are bitwise copies of one network: every
 * member prediction is identical, so memberSpread is exactly 0.0 at
 * every point — maximal ties for the selection tie-break tests.
 */
ml::Ensemble
constantSpreadEnsemble(const ml::DesignSpace &space, size_t members = 5)
{
    ml::AnnParams params;
    Rng rng(0xc0de);
    ml::Ann net(space.encodedWidth(), 1, params, rng);
    std::vector<ml::Ann> nets(members, net);
    return ml::Ensemble(std::move(nets), ml::TargetScaler{},
                        ml::ErrorEstimate{});
}

TEST(ExplorerScoring, MemberSpreadBatchMatchesScalarPerPoint)
{
    const auto space = scoringSpace();
    const auto model = trainScoringEnsemble(space);
    const size_t width = static_cast<size_t>(space.encodedWidth());
    // An awkward size on purpose: several full kBlock panels plus a
    // ragged tail, so both kernel shapes are exercised.
    const size_t n = 3 * 64 + 17;
    std::vector<double> x(n * width);
    for (size_t r = 0; r < n; ++r)
        space.encodeIndexInto(r % space.size(), x.data() + r * width);
    std::vector<double> batched(n);
    model.memberSpreadBatch(x.data(), n, batched.data());
    for (size_t r = 0; r < n; ++r) {
        const std::vector<double> row(x.begin() + r * width,
                                      x.begin() + (r + 1) * width);
        EXPECT_EQ(batched[r], model.memberSpread(row)) << "point " << r;
    }
}

TEST(ExplorerScoring, MemberSpreadBatchMatchesScalarAcrossTopologies)
{
    // The blocked kernel must hold bit-identity on every dispatch
    // shape, not just the default 16-unit single-layer net: wide
    // layers take the cloned vector kernels, deep nets re-enter the
    // panel per layer, and multi-output nets score on output 0.
    const auto space = scoringSpace();
    const size_t width = static_cast<size_t>(space.encodedWidth());
    const size_t n = 2 * 64 + 5;
    std::vector<double> x(n * width);
    for (size_t r = 0; r < n; ++r)
        space.encodeIndexInto((r * 7) % space.size(),
                              x.data() + r * width);

    struct Shape
    {
        int hidden, layers, outputs;
    };
    const Shape shapes[] = {{16, 1, 1}, {32, 1, 1}, {7, 1, 1},
                            {16, 2, 1}, {16, 1, 4}};
    for (const auto &shape : shapes) {
        ml::AnnParams params;
        params.hiddenUnits = shape.hidden;
        params.hiddenLayers = shape.layers;
        std::vector<ml::Ann> nets;
        Rng rng(31 * static_cast<uint64_t>(shape.hidden) +
                static_cast<uint64_t>(shape.layers));
        for (int m = 0; m < 4; ++m)
            nets.emplace_back(space.encodedWidth(), shape.outputs,
                              params, rng);
        ml::Ensemble model(std::move(nets), ml::TargetScaler{},
                           ml::ErrorEstimate{});
        std::vector<double> batched(n);
        model.memberSpreadBatch(x.data(), n, batched.data());
        for (size_t r = 0; r < n; ++r) {
            const std::vector<double> row(x.begin() + r * width,
                                          x.begin() + (r + 1) * width);
            EXPECT_EQ(batched[r], model.memberSpread(row))
                << "hidden=" << shape.hidden
                << " layers=" << shape.layers
                << " outputs=" << shape.outputs << " point " << r;
        }
    }
}

TEST(ParallelScoring, MemberSpreadIndicesBitIdenticalAcrossThreadCounts)
{
    const auto space = scoringSpace();
    const auto model = trainScoringEnsemble(space);

    // Candidate sets in both shapes the encoder distinguishes: a
    // scattered draw (per-point encodeIndexInto) and a consecutive
    // run (odometer encodeRangeInto).
    std::vector<std::vector<uint64_t>> candidate_sets;
    {
        Rng rng(0xca7);
        candidate_sets.push_back(
            rng.sampleWithoutReplacement(space.size(), 300));
        std::vector<uint64_t> run(300);
        std::iota(run.begin(), run.end(), 100);
        candidate_sets.push_back(std::move(run));
    }

    for (const auto &indices : candidate_sets) {
        // Serial per-point oracle: the scalar path, no pool involved.
        std::vector<double> oracle(indices.size());
        for (size_t i = 0; i < indices.size(); ++i)
            oracle[i] =
                model.memberSpread(space.encodeIndex(indices[i]));

        for (size_t threads : kThreadCounts) {
            PoolGuard guard(threads);
            const auto got = model.memberSpreadIndices(space, indices);
            ASSERT_EQ(got.size(), oracle.size());
            for (size_t i = 0; i < got.size(); ++i)
                EXPECT_EQ(got[i], oracle[i])
                    << "threads=" << threads << " index " << i;
        }
    }
}

TEST(ParallelScoring, PickBatchSelectionIdenticalAcrossThreadCounts)
{
    const auto space = scoringSpace();
    ml::ExplorerOptions opts;
    opts.batchSize = 25;
    opts.candidatePool = 150;
    opts.activeLearning = true;
    opts.targetMeanPct = 0.0;
    opts.train.folds = 5;
    opts.train.maxEpochs = 120;
    opts.train.esInterval = 25;
    opts.train.patience = 4;

    std::vector<std::vector<uint64_t>> sampled;
    for (size_t threads : kThreadCounts) {
        PoolGuard guard(threads);
        ml::Explorer ex(space,
                        [&](uint64_t i) {
                            return scoringResponse(space, i);
                        },
                        opts);
        // Three rounds: round one is random, rounds two and three go
        // through committee scoring and top-k selection.
        ex.step();
        ex.step();
        ex.step();
        sampled.push_back(ex.sampledIndices());
    }
    for (size_t t = 1; t < sampled.size(); ++t)
        EXPECT_EQ(sampled[t], sampled[0])
            << "threads=" << kThreadCounts[t];
}

TEST(ExplorerScoring, ConstantEnsembleTieBreakSelectsSmallestIndices)
{
    // Every candidate ties at spread exactly 0.0, so the (spread
    // desc, index asc) tie-break is the whole ordering: with the pool
    // covering the entire space, the selection must be the n smallest
    // indices, in ascending order — not whatever order the sort
    // implementation happens to leave equal keys in.
    const auto space = scoringSpace();
    ml::ExplorerOptions opts;
    opts.batchSize = 16;
    opts.candidatePool = 1000;  // > space size: pool = every point
    opts.activeLearning = true;
    opts.train.folds = 5;
    opts.train.maxEpochs = 20;
    opts.train.esInterval = 10;
    opts.train.patience = 2;
    ml::Explorer ex(space,
                    [](uint64_t i) {
                        return 1.0 + 0.1 * static_cast<double>(i % 5);
                    },
                    opts);
    ex.seedEnsemble(constantSpreadEnsemble(space));
    ASSERT_TRUE(ex.step().has_value());

    std::vector<uint64_t> expected(16);
    std::iota(expected.begin(), expected.end(), 0);
    EXPECT_EQ(ex.sampledIndices(), expected);
}

TEST(ExplorerScoring, SeededEnsembleScoresTheFirstBatch)
{
    // seedEnsemble warm-starts the committee: the very first batch is
    // already uncertainty-ranked rather than random, so two explorers
    // seeded with the same model pick the same first batch.
    const auto space = scoringSpace();
    const auto model = trainScoringEnsemble(space);
    ml::ExplorerOptions opts;
    opts.batchSize = 20;
    opts.candidatePool = 120;
    opts.activeLearning = true;
    opts.train.folds = 5;
    opts.train.maxEpochs = 20;
    opts.train.esInterval = 10;
    opts.train.patience = 2;
    auto first_batch = [&] {
        ml::Explorer ex(space,
                        [&](uint64_t i) {
                            return scoringResponse(space, i);
                        },
                        opts);
        ex.seedEnsemble(model);
        ex.step();
        return ex.sampledIndices();
    };
    const auto a = first_batch();
    EXPECT_EQ(a.size(), 20u);
    EXPECT_EQ(a, first_batch());
}

TEST(ExplorerScoring, PredictRangeMatchesPredictIndices)
{
    const auto space = scoringSpace();
    ml::ExplorerOptions opts;
    opts.batchSize = 40;
    opts.train.folds = 5;
    opts.train.maxEpochs = 120;
    opts.train.esInterval = 25;
    opts.train.patience = 4;
    ml::Explorer ex(space,
                    [&](uint64_t i) { return scoringResponse(space, i); },
                    opts);
    ASSERT_TRUE(ex.step().has_value());

    // An unaligned interior window, the full space, and an empty
    // range must all match the index-vector path bit for bit.
    struct Window
    {
        uint64_t first;
        size_t count;
    };
    const Window windows[] = {{37, 301}, {0, 512}, {511, 1}, {512, 0}};
    for (const auto &w : windows) {
        std::vector<uint64_t> indices(w.count);
        std::iota(indices.begin(), indices.end(), w.first);
        EXPECT_EQ(ex.predictRange(w.first, w.count),
                  ex.predictIndices(indices))
            << "first=" << w.first << " count=" << w.count;
    }
    EXPECT_EQ(ex.predictSpace(), ex.predictRange(0, space.size()));
    EXPECT_THROW(ex.predictRange(0, space.size() + 1),
                 std::out_of_range);
    EXPECT_THROW(ex.predictRange(space.size() + 1, 0),
                 std::out_of_range);
}

} // namespace
} // namespace dse
