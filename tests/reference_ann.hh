/**
 * @file
 * Reference ANN kernels: the straightforward nested-vector
 * implementation this library used before the flat-arena numeric core
 * (see DESIGN.md, "Numeric kernels"). Kept verbatim in spirit — libm
 * sigmoid, bias-first single-chain dot products, column-strided delta
 * backprop, per-unit weight rows — as the independent oracle for
 * tests/test_ann_parity.cc. A ReferenceAnn is constructed from an
 * Ann's flat weights() so both start from identical parameters.
 *
 * The production kernels reorder floating-point accumulation (fixed
 * four-lane dots, bias added last) and use a polynomial sigmoid, so
 * agreement is asserted to a small relative tolerance, not bitwise.
 */

#ifndef DSE_TESTS_REFERENCE_ANN_HH
#define DSE_TESTS_REFERENCE_ANN_HH

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "ml/ann.hh"

namespace dse {
namespace ml {
namespace testref {

class ReferenceAnn
{
  public:
    ReferenceAnn(int inputs, int outputs, const AnnParams &params,
                 const std::vector<double> &flat)
        : inputs_(inputs), outputs_(outputs), params_(params)
    {
        int prev = inputs;
        for (int l = 0; l < params.hiddenLayers; ++l) {
            addLayer(prev, params.hiddenUnits);
            prev = params.hiddenUnits;
        }
        addLayer(prev, outputs);
        setWeights(flat);

        act_.resize(layers_.size() + 1);
        act_[0].resize(static_cast<size_t>(inputs));
        delta_.resize(layers_.size());
        for (size_t l = 0; l < layers_.size(); ++l) {
            act_[l + 1].resize(static_cast<size_t>(layers_[l].out));
            delta_[l].resize(static_cast<size_t>(layers_[l].out));
        }
    }

    std::vector<double>
    predict(const std::vector<double> &input)
    {
        forward(input);
        return act_.back();
    }

    double
    train(const std::vector<double> &input,
          const std::vector<double> &target)
    {
        forward(input);

        double sq_error = 0.0;
        {
            const std::vector<double> &o = act_.back();
            std::vector<double> &d = delta_.back();
            for (int j = 0; j < outputs_; ++j) {
                const double oj = o[static_cast<size_t>(j)];
                const double err = target[static_cast<size_t>(j)] - oj;
                sq_error += err * err;
                d[static_cast<size_t>(j)] = err * oj * (1.0 - oj);
            }
        }

        for (size_t l = layers_.size() - 1; l-- > 0;) {
            const Layer &next = layers_[l + 1];
            const std::vector<double> &o = act_[l + 1];
            const std::vector<double> &dn = delta_[l + 1];
            std::vector<double> &d = delta_[l];
            for (int i = 0; i < next.in; ++i) {
                double sum = 0.0;
                for (int j = 0; j < next.out; ++j)
                    sum += next.w[static_cast<size_t>(j) *
                                  (next.in + 1) + i] *
                        dn[static_cast<size_t>(j)];
                const double oi = o[static_cast<size_t>(i)];
                d[static_cast<size_t>(i)] = sum * oi * (1.0 - oi);
            }
        }

        const double eta = params_.learningRate;
        const double alpha = params_.momentum;
        for (size_t l = 0; l < layers_.size(); ++l) {
            Layer &layer = layers_[l];
            const std::vector<double> &in = act_[l];
            const std::vector<double> &d = delta_[l];
            for (int j = 0; j < layer.out; ++j) {
                double *w =
                    &layer.w[static_cast<size_t>(j) * (layer.in + 1)];
                double *dw = &layer.dwPrev[static_cast<size_t>(j) *
                                           (layer.in + 1)];
                const double dj = d[static_cast<size_t>(j)];
                for (int i = 0; i < layer.in; ++i) {
                    const double update =
                        eta * dj * in[i] + alpha * dw[i];
                    w[i] += update;
                    dw[i] = update;
                }
                const double update = eta * dj + alpha * dw[layer.in];
                w[layer.in] += update;
                dw[layer.in] = update;
            }
        }
        return sq_error;
    }

    /**
     * Epoch oracle mirroring Ann::trainEpoch's presentation
     * semantics: sequential per-example train() calls over packed
     * row-major example matrices, presentation p training on row
     * order[p] (row p when @p order is null). Returns the summed
     * squared error in presentation order.
     */
    double
    trainEpoch(const double *x, const double *t, const uint32_t *order,
               size_t rows)
    {
        const size_t in = static_cast<size_t>(inputs_);
        const size_t out = static_cast<size_t>(outputs_);
        double sum = 0.0;
        for (size_t r = 0; r < rows; ++r) {
            const size_t row = order ? order[r] : r;
            sum += train(
                std::vector<double>(x + row * in, x + (row + 1) * in),
                std::vector<double>(t + row * out,
                                    t + (row + 1) * out));
        }
        return sum;
    }

    void setLearningRate(double eta) { params_.learningRate = eta; }

    std::vector<double>
    weights() const
    {
        std::vector<double> all;
        for (const auto &layer : layers_)
            all.insert(all.end(), layer.w.begin(), layer.w.end());
        return all;
    }

  private:
    struct Layer
    {
        int in = 0;
        int out = 0;
        std::vector<double> w;       ///< [out x (in + 1)], bias last
        std::vector<double> dwPrev;
    };

    void
    addLayer(int in, int out)
    {
        Layer layer;
        layer.in = in;
        layer.out = out;
        layer.w.resize(static_cast<size_t>(in + 1) * out);
        layer.dwPrev.assign(layer.w.size(), 0.0);
        layers_.push_back(std::move(layer));
    }

    void
    setWeights(const std::vector<double> &flat)
    {
        size_t at = 0;
        for (auto &layer : layers_) {
            if (at + layer.w.size() > flat.size())
                throw std::invalid_argument("weight vector too short");
            std::copy(flat.begin() + static_cast<ptrdiff_t>(at),
                      flat.begin() +
                          static_cast<ptrdiff_t>(at + layer.w.size()),
                      layer.w.begin());
            at += layer.w.size();
        }
        if (at != flat.size())
            throw std::invalid_argument("weight vector too long");
    }

    void
    forward(const std::vector<double> &input)
    {
        act_[0] = input;
        for (size_t l = 0; l < layers_.size(); ++l) {
            const Layer &layer = layers_[l];
            const std::vector<double> &in = act_[l];
            std::vector<double> &out = act_[l + 1];
            for (int j = 0; j < layer.out; ++j) {
                const double *w = &layer.w[static_cast<size_t>(j) *
                                           (layer.in + 1)];
                double net = w[layer.in];  // bias first
                for (int i = 0; i < layer.in; ++i)
                    net += w[i] * in[i];
                out[static_cast<size_t>(j)] =
                    1.0 / (1.0 + std::exp(-net));
            }
        }
    }

    int inputs_;
    int outputs_;
    AnnParams params_;
    std::vector<Layer> layers_;
    std::vector<std::vector<double>> act_;
    std::vector<std::vector<double>> delta_;
};

} // namespace testref
} // namespace ml
} // namespace dse

#endif // DSE_TESTS_REFERENCE_ANN_HH
