/**
 * @file
 * Golden-value regression tests: a handful of (space, app, seed) →
 * result pins so refactors of the simulator, the training engine, or
 * the parallel scheduling cannot silently drift the reproduction.
 * Values were produced by this library at the revision that
 * introduced the parallel engine and have survived the flat-arena
 * kernel rewrite and the fused epoch-level training pipeline
 * unchanged — both were bit-exact refactors; a legitimate modelling
 * change that moves them must update the pins deliberately.
 */

#include <gtest/gtest.h>

#include "ml/cross_validation.hh"
#include "ml/explorer.hh"
#include "study/harness.hh"
#include "util/rng.hh"

namespace dse {
namespace {

TEST(Golden, MemorySystemGzipIpc)
{
    study::StudyContext ctx(study::StudyKind::MemorySystem, "gzip",
                            8192);
    EXPECT_NEAR(ctx.simulateIpc(100), 0.29359902515948677, 1e-9);
}

TEST(Golden, MemorySystemMcfIpc)
{
    study::StudyContext ctx(study::StudyKind::MemorySystem, "mcf",
                            8192);
    EXPECT_NEAR(ctx.simulateIpc(12345), 0.10456315016912375, 1e-9);
}

TEST(Golden, ProcessorEquakeIpc)
{
    study::StudyContext ctx(study::StudyKind::Processor, "equake",
                            8192);
    EXPECT_NEAR(ctx.simulateIpc(777), 0.30537538209200032, 1e-9);
}

TEST(Golden, SmallEnsembleEstimate)
{
    // 60 random memory-system points for gzip, 5-fold ensemble with a
    // reduced budget; pins the cross-validation error estimate (and
    // with it the per-fold SplitMix64 seed derivation).
    study::StudyContext ctx(study::StudyKind::MemorySystem, "gzip",
                            8192);
    Rng rng(42);
    const auto indices =
        rng.sampleWithoutReplacement(ctx.space().size(), 60);
    const auto ipc = ctx.simulateBatch(indices);

    ml::DataSet data;
    for (size_t i = 0; i < indices.size(); ++i)
        data.add(ctx.space().encodeIndex(indices[i]), ipc[i]);

    ml::TrainOptions opts;
    opts.folds = 5;
    opts.maxEpochs = 300;
    opts.esInterval = 25;
    opts.patience = 5;
    const auto model = ml::trainEnsemble(data, opts);
    EXPECT_NEAR(model.estimate().meanPct, 25.809202971370066, 1e-6);
    EXPECT_NEAR(model.estimate().sdPct, 22.809921024581772, 1e-6);
}

TEST(Golden, ActiveLearningPickBatchSelection)
{
    // Pins which design points one committee-scored round chooses to
    // simulate: round one samples randomly, round two ranks a
    // candidate pool by member spread and keeps the top batch under
    // the (spread desc, index asc) tie-break. Future kernel work on
    // the scoring path cannot silently change which points get
    // simulated without moving this pin deliberately.
    ml::DesignSpace space;
    space.addCardinal("a", {1, 2, 3, 4, 5, 6, 7, 8});
    space.addCardinal("b", {1, 2, 3, 4, 5, 6, 7, 8});
    space.addCardinal("c", {1, 2, 3, 4});
    space.addNominal("m", {"x", "y"});  // 512 points
    auto simulator = [&](uint64_t i) {
        const auto x = space.encodeIndex(i);
        return 0.5 + 0.4 * x[0] - 0.25 * x[1] * x[2] + 0.1 * x[3] +
            0.35 * x[0] * x[1] * (1.0 - x[2]);
    };
    ml::ExplorerOptions opts;
    opts.batchSize = 20;
    opts.candidatePool = 120;
    opts.activeLearning = true;
    opts.targetMeanPct = 0.0;
    opts.train.folds = 5;
    opts.train.maxEpochs = 150;
    opts.train.esInterval = 25;
    opts.train.patience = 4;
    ml::Explorer ex(space, simulator, opts);
    ex.step();
    ex.step();
    const auto &sampled = ex.sampledIndices();
    ASSERT_EQ(sampled.size(), 40u);
    const std::vector<uint64_t> round_two(sampled.begin() + 20,
                                          sampled.end());
    const std::vector<uint64_t> expected = {
        450, 392, 322, 457, 385, 465, 393, 338, 401, 208,
        63,  346, 504, 274, 409, 288, 144, 0,   119, 406};
    EXPECT_EQ(round_two, expected);
}

} // namespace
} // namespace dse
