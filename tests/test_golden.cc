/**
 * @file
 * Golden-value regression tests: a handful of (space, app, seed) →
 * result pins so refactors of the simulator, the training engine, or
 * the parallel scheduling cannot silently drift the reproduction.
 * Values were produced by this library at the revision that
 * introduced the parallel engine and have survived the flat-arena
 * kernel rewrite and the fused epoch-level training pipeline
 * unchanged — both were bit-exact refactors; a legitimate modelling
 * change that moves them must update the pins deliberately.
 */

#include <gtest/gtest.h>

#include "ml/cross_validation.hh"
#include "study/harness.hh"
#include "util/rng.hh"

namespace dse {
namespace {

TEST(Golden, MemorySystemGzipIpc)
{
    study::StudyContext ctx(study::StudyKind::MemorySystem, "gzip",
                            8192);
    EXPECT_NEAR(ctx.simulateIpc(100), 0.29359902515948677, 1e-9);
}

TEST(Golden, MemorySystemMcfIpc)
{
    study::StudyContext ctx(study::StudyKind::MemorySystem, "mcf",
                            8192);
    EXPECT_NEAR(ctx.simulateIpc(12345), 0.10456315016912375, 1e-9);
}

TEST(Golden, ProcessorEquakeIpc)
{
    study::StudyContext ctx(study::StudyKind::Processor, "equake",
                            8192);
    EXPECT_NEAR(ctx.simulateIpc(777), 0.30537538209200032, 1e-9);
}

TEST(Golden, SmallEnsembleEstimate)
{
    // 60 random memory-system points for gzip, 5-fold ensemble with a
    // reduced budget; pins the cross-validation error estimate (and
    // with it the per-fold SplitMix64 seed derivation).
    study::StudyContext ctx(study::StudyKind::MemorySystem, "gzip",
                            8192);
    Rng rng(42);
    const auto indices =
        rng.sampleWithoutReplacement(ctx.space().size(), 60);
    const auto ipc = ctx.simulateBatch(indices);

    ml::DataSet data;
    for (size_t i = 0; i < indices.size(); ++i)
        data.add(ctx.space().encodeIndex(indices[i]), ipc[i]);

    ml::TrainOptions opts;
    opts.folds = 5;
    opts.maxEpochs = 300;
    opts.esInterval = 25;
    opts.patience = 5;
    const auto model = ml::trainEnsemble(data, opts);
    EXPECT_NEAR(model.estimate().meanPct, 25.809202971370066, 1e-6);
    EXPECT_NEAR(model.estimate().sdPct, 22.809921024581772, 1e-6);
}

} // namespace
} // namespace dse
