/**
 * @file
 * Tests for the study layer: the paper's two design spaces (Tables
 * 4.1/4.2), the design-point -> machine mapping with its dependent
 * parameters, and the evaluation utilities.
 */

#include <gtest/gtest.h>

#include <set>

#include "study/harness.hh"
#include "study/spaces.hh"
#include "util/stats.hh"

namespace dse {
namespace study {
namespace {

TEST(Spaces, MemorySystemMatchesPaperSize)
{
    // Table 4.1: 23,040 simulations per benchmark.
    EXPECT_EQ(memorySystemSpace().size(), 23040u);
}

TEST(Spaces, ProcessorMatchesPaperSize)
{
    // Table 4.2: 20,736 simulations per benchmark.
    EXPECT_EQ(processorSpace().size(), 20736u);
}

TEST(Spaces, MemorySystemParameterNames)
{
    const auto space = memorySystemSpace();
    for (const char *name :
         {"L1DSizeKB", "L1DBlockB", "L1DAssoc", "L1DWritePolicy",
          "L2SizeKB", "L2BlockB", "L2Assoc", "L2BusB", "FSBGHz"}) {
        EXPECT_NO_THROW(space.paramIndex(name)) << name;
    }
}

TEST(Spaces, MemorySystemConfigMapsAllParameters)
{
    const auto space = memorySystemSpace();
    std::vector<int> lv(space.numParams(), 0);
    lv[space.paramIndex("L1DSizeKB")] = 3;       // 64 KB
    lv[space.paramIndex("L1DWritePolicy")] = 0;  // WT
    lv[space.paramIndex("L2Assoc")] = 4;         // 16-way
    lv[space.paramIndex("FSBGHz")] = 2;          // 1.4 GHz
    const auto cfg = memorySystemConfig(space, lv);
    EXPECT_EQ(cfg.l1d.sizeKB, 64);
    EXPECT_FALSE(cfg.l1d.writeBack);
    EXPECT_EQ(cfg.l2.assoc, 16);
    EXPECT_DOUBLE_EQ(cfg.fsbGHz, 1.4);
    // Fixed parameters from the right side of Table 4.1.
    EXPECT_DOUBLE_EQ(cfg.freqGHz, 4.0);
    EXPECT_EQ(cfg.fetchWidth, 4);
    EXPECT_EQ(cfg.robSize, 128);
    EXPECT_EQ(cfg.l1i.sizeKB, 32);
    EXPECT_EQ(cfg.l1iLatency, 2);
    EXPECT_GE(cfg.l1dLatency, 1);
    EXPECT_GT(cfg.l2Latency, cfg.l1dLatency);
}

TEST(Spaces, ProcessorConfigDependentParameters)
{
    const auto space = processorSpace();
    std::vector<int> lv(space.numParams(), 0);

    // 2 GHz -> 11-cycle penalty; 4 GHz -> 20 cycles.
    lv[space.paramIndex("FreqGHz")] = 0;
    EXPECT_EQ(processorConfig(space, lv).mispredictPenaltyCycles, 11);
    lv[space.paramIndex("FreqGHz")] = 1;
    EXPECT_EQ(processorConfig(space, lv).mispredictPenaltyCycles, 20);

    // L1/L2 associativity tied to size (Table 4.2 right side).
    lv[space.paramIndex("L1DSizeKB")] = 0;  // 8 KB -> direct
    EXPECT_EQ(processorConfig(space, lv).l1d.assoc, 1);
    lv[space.paramIndex("L1DSizeKB")] = 1;  // 32 KB -> 2-way
    EXPECT_EQ(processorConfig(space, lv).l1d.assoc, 2);
    lv[space.paramIndex("L2SizeKB")] = 0;   // 256 KB -> 4-way
    EXPECT_EQ(processorConfig(space, lv).l2.assoc, 4);
    lv[space.paramIndex("L2SizeKB")] = 1;   // 1 MB -> 8-way
    EXPECT_EQ(processorConfig(space, lv).l2.assoc, 8);
}

TEST(Spaces, RegisterFileCoupledToRob)
{
    // Table 4.2: two register-file choices per ROB size.
    const auto space = processorSpace();
    std::vector<int> lv(space.numParams(), 0);
    const size_t rob = space.paramIndex("ROBSize");
    const size_t reg = space.paramIndex("RegFileChoice");

    const int expected[3][2] = {{64, 80}, {80, 96}, {96, 112}};
    for (int r = 0; r < 3; ++r) {
        for (int c = 0; c < 2; ++c) {
            lv[rob] = r;
            lv[reg] = c;
            const auto cfg = processorConfig(space, lv);
            EXPECT_EQ(cfg.intRegs, expected[r][c]) << r << "," << c;
            EXPECT_EQ(cfg.fpRegs, expected[r][c]);
        }
    }
}

TEST(Spaces, WidthSetsAllThreeStages)
{
    const auto space = processorSpace();
    std::vector<int> lv(space.numParams(), 0);
    lv[space.paramIndex("Width")] = 2;  // 8-wide
    const auto cfg = processorConfig(space, lv);
    EXPECT_EQ(cfg.fetchWidth, 8);
    EXPECT_EQ(cfg.issueWidth, 8);
    EXPECT_EQ(cfg.commitWidth, 8);
}

TEST(Spaces, EveryMemoryPointYieldsValidGeometry)
{
    const auto space = memorySystemSpace();
    // Sweep a systematic sample of the space; every point must build
    // a structurally valid machine (power-of-two sets etc.).
    for (uint64_t i = 0; i < space.size(); i += 487) {
        const auto cfg = memorySystemConfig(space, space.levels(i));
        EXPECT_GT(cfg.l1d.numSets(), 0);
        EXPECT_GT(cfg.l2.numSets(), 0);
    }
}

TEST(Spaces, StudyNamesAndDispatch)
{
    EXPECT_STREQ(studyName(StudyKind::MemorySystem), "memory-system");
    EXPECT_STREQ(studyName(StudyKind::Processor), "processor");
    EXPECT_EQ(spaceFor(StudyKind::MemorySystem).size(), 23040u);
    EXPECT_EQ(spaceFor(StudyKind::Processor).size(), 20736u);
}

TEST(Harness, SimulationIsMemoized)
{
    StudyContext ctx(StudyKind::MemorySystem, "gzip", 8192);
    const double a = ctx.simulateIpc(100);
    EXPECT_EQ(ctx.simulationsRun(), 1u);
    const double b = ctx.simulateIpc(100);
    EXPECT_EQ(ctx.simulationsRun(), 1u);
    EXPECT_DOUBLE_EQ(a, b);
    ctx.simulateIpc(200);
    EXPECT_EQ(ctx.simulationsRun(), 2u);
}

TEST(Harness, DifferentPointsDiffer)
{
    StudyContext ctx(StudyKind::MemorySystem, "crafty", 8192);
    // Extreme corners of the space should give different IPC.
    EXPECT_NE(ctx.simulateIpc(0), ctx.simulateIpc(ctx.space().size() - 1));
}

TEST(Harness, HoldoutExcludesAndIsDisjoint)
{
    const auto space = memorySystemSpace();
    const std::vector<uint64_t> excluded{1, 2, 3, 500, 900};
    const auto holdout = holdoutIndices(space, excluded, 300, 5);
    EXPECT_EQ(holdout.size(), 300u);
    std::set<uint64_t> seen;
    for (uint64_t idx : holdout) {
        EXPECT_LT(idx, space.size());
        EXPECT_TRUE(seen.insert(idx).second);
        for (uint64_t e : excluded)
            EXPECT_NE(idx, e);
    }
}

TEST(Harness, HoldoutZeroMeansFullSpace)
{
    ml::DesignSpace small;
    small.addCardinal("a", {1, 2, 3, 4});
    small.addCardinal("b", {1, 2, 3});
    const auto all = holdoutIndices(small, {3, 5}, 0, 1);
    EXPECT_EQ(all.size(), 10u);  // 12 - 2 excluded
}

TEST(Harness, BenchScopeDefaults)
{
    unsetenv("DSE_APPS");
    unsetenv("DSE_EVAL_POINTS");
    unsetenv("DSE_FULL_SPACE");
    const auto scope = BenchScope::fromEnv({"mesa", "mcf"});
    EXPECT_EQ(scope.apps, (std::vector<std::string>{"mesa", "mcf"}));
    EXPECT_EQ(scope.evalPoints, 1000u);
}

TEST(Harness, BenchScopeEnvOverrides)
{
    setenv("DSE_APPS", "gzip", 1);
    setenv("DSE_EVAL_POINTS", "123", 1);
    const auto scope = BenchScope::fromEnv({"mesa"});
    EXPECT_EQ(scope.apps, std::vector<std::string>{"gzip"});
    EXPECT_EQ(scope.evalPoints, 123u);
    unsetenv("DSE_APPS");
    unsetenv("DSE_EVAL_POINTS");
}

TEST(Harness, SimPointSelectionIsStable)
{
    StudyContext ctx(StudyKind::Processor, "gzip", 16384);
    const auto &a = ctx.simPoints();
    const auto &b = ctx.simPoints();
    EXPECT_EQ(&a, &b);
    EXPECT_GE(a.k, 1);
    EXPECT_LT(a.detailedInstructions(), ctx.trace().size());
}

TEST(Harness, SimPointEstimateReasonable)
{
    StudyContext ctx(StudyKind::Processor, "gzip", 16384);
    const uint64_t idx = ctx.space().size() / 3;
    const double full = ctx.simulateIpc(idx);
    const double est = ctx.simulateSimPointIpc(idx);
    EXPECT_GT(est, 0.0);
    EXPECT_LT(percentageError(est, full), 40.0);
}

} // namespace
} // namespace study
} // namespace dse
