/**
 * @file
 * Tests for the synthetic workload generator: determinism, profile
 * fidelity, and the structural properties the simulator and SimPoint
 * rely on.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/generator.hh"
#include "workload/profile.hh"

namespace dse {
namespace workload {
namespace {

TEST(Profile, AllEightBenchmarksExist)
{
    EXPECT_EQ(benchmarkNames().size(), 8u);
    for (const auto &name : benchmarkNames()) {
        const auto profile = benchmarkProfile(name);
        EXPECT_EQ(profile.name, name);
        EXPECT_FALSE(profile.phases.empty());
        EXPECT_FALSE(profile.schedule.empty());
    }
}

TEST(Profile, UnknownBenchmarkThrows)
{
    EXPECT_THROW(benchmarkProfile("doom"), std::invalid_argument);
}

TEST(Profile, ScheduleFractionsSumToOne)
{
    for (const auto &name : benchmarkNames()) {
        const auto profile = benchmarkProfile(name);
        double total = 0.0;
        for (const auto &[phase, frac] : profile.schedule) {
            EXPECT_GE(phase, 0);
            EXPECT_LT(phase, static_cast<int>(profile.phases.size()));
            total += frac;
        }
        EXPECT_NEAR(total, 1.0, 1e-9) << name;
    }
}

TEST(Generator, RequestedLengthHonoured)
{
    const auto trace = generateBenchmarkTrace("gzip", 10000);
    EXPECT_EQ(trace.size(), 10000u);
}

TEST(Generator, ZeroLengthUsesProfileDefault)
{
    const auto profile = benchmarkProfile("mcf");
    const auto trace = generateBenchmarkTrace("mcf");
    EXPECT_EQ(trace.size(), profile.traceLength);
}

TEST(Generator, MemoryBoundAppsHaveLongerTraces)
{
    EXPECT_GT(benchmarkProfile("mcf").traceLength,
              benchmarkProfile("gzip").traceLength);
    EXPECT_GT(benchmarkProfile("twolf").traceLength,
              benchmarkProfile("crafty").traceLength);
}

TEST(Generator, RejectsEmptyProfile)
{
    AppProfile empty;
    empty.name = "empty";
    EXPECT_THROW(generateTrace(empty, 100), std::invalid_argument);
}

/** Per-benchmark structural property checks. */
class TraceTest : public ::testing::TestWithParam<std::string>
{
  protected:
    void SetUp() override { trace_ = generateBenchmarkTrace(GetParam()); }
    Trace trace_;
};

TEST_P(TraceTest, DeterministicReplay)
{
    const auto again = generateBenchmarkTrace(GetParam());
    ASSERT_EQ(trace_.size(), again.size());
    for (size_t i = 0; i < trace_.size(); i += 997) {
        EXPECT_EQ(trace_.ops[i].pc, again.ops[i].pc);
        EXPECT_EQ(trace_.ops[i].addr, again.ops[i].addr);
        EXPECT_EQ(trace_.ops[i].cls, again.ops[i].cls);
        EXPECT_EQ(trace_.ops[i].taken, again.ops[i].taken);
    }
}

TEST_P(TraceTest, DependencesPointBackwards)
{
    for (size_t i = 0; i < trace_.size(); ++i) {
        const auto &op = trace_.ops[i];
        EXPECT_GE(op.src1, 0);
        EXPECT_GE(op.src2, 0);
        EXPECT_LE(static_cast<size_t>(op.src1), i);
        EXPECT_LE(static_cast<size_t>(op.src2), i);
    }
}

TEST_P(TraceTest, BranchMetadataConsistent)
{
    for (const auto &op : trace_.ops) {
        if (op.cls == OpClass::Branch) {
            EXPECT_GE(op.branchId, 0);
            EXPECT_LT(op.branchId, trace_.numBranches);
        } else {
            EXPECT_EQ(op.branchId, -1);
            EXPECT_FALSE(op.taken);
        }
    }
}

TEST_P(TraceTest, BlockIdsWithinRange)
{
    for (const auto &op : trace_.ops)
        EXPECT_LT(op.block, trace_.numBlocks);
}

TEST_P(TraceTest, StaticBlocksHaveStablePcs)
{
    // Every dynamic instance of a block must execute the same
    // instruction sequence at the same addresses (SimPoint's BBVs
    // depend on this).
    std::map<uint32_t, std::pair<uint16_t, OpClass>> by_pc;
    for (const auto &op : trace_.ops) {
        auto [it, inserted] =
            by_pc.try_emplace(op.pc, op.block, op.cls);
        if (!inserted) {
            EXPECT_EQ(it->second.first, op.block);
            EXPECT_EQ(it->second.second, op.cls);
        }
    }
}

TEST_P(TraceTest, MixRoughlyMatchesProfile)
{
    const auto profile = benchmarkProfile(GetParam());
    // Expected dynamic fractions: schedule-weighted phase mixes.
    double f_load = 0.0, f_branch = 0.0, f_fp = 0.0;
    for (const auto &[phase, frac] : profile.schedule) {
        const auto &p = profile.phases[static_cast<size_t>(phase)];
        f_load += frac * p.fLoad;
        f_branch += frac * p.fBranch;
        f_fp += frac * (p.fFpAlu + p.fFpMul);
    }
    size_t loads = 0, branches = 0, fp = 0;
    for (const auto &op : trace_.ops) {
        loads += op.cls == OpClass::Load;
        branches += op.cls == OpClass::Branch;
        fp += op.cls == OpClass::FpAlu || op.cls == OpClass::FpMul;
    }
    // Loop weighting and skip branches reshape the realized mix;
    // require agreement to within a few percentage points.
    const double n = static_cast<double>(trace_.size());
    EXPECT_NEAR(loads / n, f_load, 0.09);
    EXPECT_NEAR(branches / n, f_branch, 0.09);
    EXPECT_NEAR(fp / n, f_fp, 0.09);
}

TEST_P(TraceTest, MemoryOpsHaveAddresses)
{
    for (const auto &op : trace_.ops) {
        if (op.cls == OpClass::Load || op.cls == OpClass::Store)
            EXPECT_NE(op.addr, 0u);
        else
            EXPECT_FALSE(op.noWarm);
    }
}

TEST_P(TraceTest, ColdAccessesNeverRepeat)
{
    std::set<uint64_t> cold;
    for (const auto &op : trace_.ops) {
        if (op.noWarm) {
            EXPECT_TRUE(cold.insert(op.addr).second)
                << "cold address repeated";
        }
    }
}

TEST_P(TraceTest, UsesMultipleBlocksAndBranches)
{
    std::set<uint16_t> blocks;
    std::set<int16_t> branch_ids;
    for (const auto &op : trace_.ops) {
        blocks.insert(op.block);
        if (op.branchId >= 0)
            branch_ids.insert(op.branchId);
    }
    EXPECT_GT(blocks.size(), 10u);
    EXPECT_GT(branch_ids.size(), 5u);
}

TEST_P(TraceTest, TracesDifferAcrossBenchmarks)
{
    const auto other =
        generateBenchmarkTrace(GetParam() == "gzip" ? "mcf" : "gzip",
                               trace_.size());
    size_t differing = 0;
    for (size_t i = 0; i < trace_.size(); i += 101)
        differing += trace_.ops[i].pc != other.ops[i].pc;
    EXPECT_GT(differing, trace_.size() / 101 / 2);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, TraceTest,
                         ::testing::ValuesIn(benchmarkNames()));

} // namespace
} // namespace workload
} // namespace dse
