/**
 * @file
 * Tests for Plackett-Burman designs: matrix structure, orthogonality,
 * foldover, and effect-ranking recovery.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "doe/plackett_burman.hh"
#include "util/rng.hh"

namespace dse {
namespace doe {
namespace {

TEST(PbDesign, TwelveRunShapeWithoutFoldover)
{
    const auto design = pbDesign(11, false);
    EXPECT_EQ(design.size(), 12u);
    for (const auto &row : design)
        EXPECT_EQ(row.size(), 11u);
}

TEST(PbDesign, FoldoverDoublesRuns)
{
    const auto design = pbDesign(11, true);
    EXPECT_EQ(design.size(), 24u);
    // Second half is the negation of the first.
    for (size_t r = 0; r < 12; ++r)
        for (size_t c = 0; c < 11; ++c)
            EXPECT_EQ(design[r][c], -design[r + 12][c]);
}

TEST(PbDesign, EntriesArePlusMinusOne)
{
    for (const auto &row : pbDesign(11, true))
        for (int8_t v : row)
            EXPECT_TRUE(v == 1 || v == -1);
}

TEST(PbDesign, ColumnsAreBalanced)
{
    // Each column has as many highs as lows in the folded design.
    const auto design = pbDesign(11, true);
    for (size_t c = 0; c < 11; ++c) {
        int sum = 0;
        for (const auto &row : design)
            sum += row[c];
        EXPECT_EQ(sum, 0) << "column " << c;
    }
}

TEST(PbDesign, ColumnsAreOrthogonal)
{
    // Main-effect columns of a PB design are mutually orthogonal.
    const auto design = pbDesign(11, false);
    for (size_t a = 0; a < 11; ++a) {
        for (size_t b = a + 1; b < 11; ++b) {
            int dot = 0;
            for (const auto &row : design)
                dot += row[a] * row[b];
            EXPECT_EQ(dot, 0) << a << "," << b;
        }
    }
}

TEST(PbDesign, PicksLargerDesignForMoreFactors)
{
    EXPECT_EQ(pbDesign(9, false).size(), 12u);
    EXPECT_EQ(pbDesign(12, false).size(), 20u);
    EXPECT_EQ(pbDesign(19, false).size(), 20u);
    EXPECT_EQ(pbDesign(23, false).size(), 24u);
    EXPECT_EQ(pbDesign(12, false).front().size(), 12u);
}

TEST(PbDesign, TwentyRunOrthogonality)
{
    const auto design = pbDesign(19, false);
    for (size_t a = 0; a < 19; ++a) {
        for (size_t b = a + 1; b < 19; ++b) {
            int dot = 0;
            for (const auto &row : design)
                dot += row[a] * row[b];
            EXPECT_EQ(dot, 0) << a << "," << b;
        }
    }
}

TEST(PbDesign, RejectsBadFactorCounts)
{
    EXPECT_THROW(pbDesign(0), std::invalid_argument);
    EXPECT_THROW(pbDesign(24), std::invalid_argument);
}

TEST(PbScreen, RecoversLinearEffectRanking)
{
    // Response = 5*x0 + 2*x3 - 1*x7; ranking must be 0, 3, 7.
    auto result = pbScreen(9, [](const std::vector<int8_t> &s) {
        return 5.0 * s[0] + 2.0 * s[3] - 1.0 * s[7];
    });
    ASSERT_EQ(result.effects.size(), 9u);
    EXPECT_EQ(result.ranking[0], 0u);
    EXPECT_EQ(result.ranking[1], 3u);
    EXPECT_EQ(result.ranking[2], 7u);
    EXPECT_NEAR(result.effects[0], 10.0, 1e-9);   // high-low = 2*5
    EXPECT_NEAR(result.effects[3], 4.0, 1e-9);
    EXPECT_NEAR(result.effects[7], -2.0, 1e-9);
    for (size_t f : {1u, 2u, 4u, 5u, 6u, 8u})
        EXPECT_NEAR(result.effects[f], 0.0, 1e-9);
}

TEST(PbScreen, FoldoverCancelsPairwiseInteractions)
{
    // Response with a strong two-factor interaction: with foldover
    // the interaction must not contaminate main effects of other
    // factors.
    auto response = [](const std::vector<int8_t> &s) {
        return 3.0 * s[0] + 4.0 * s[1] * s[2];
    };
    auto folded = pbScreen(9, response, true);
    EXPECT_NEAR(folded.effects[0], 6.0, 1e-9);
    // Factors 3..8 see no interaction bleed-through.
    for (size_t f = 3; f < 9; ++f)
        EXPECT_NEAR(folded.effects[f], 0.0, 1e-9) << f;
}

TEST(PbScreen, NoisyResponseStillRanksDominantFactor)
{
    Rng rng(5);
    auto result = pbScreen(11, [&](const std::vector<int8_t> &s) {
        return 10.0 * s[2] + rng.gaussian() * 0.5;
    });
    EXPECT_EQ(result.ranking[0], 2u);
}

TEST(PbScreen, RejectsNullEvaluator)
{
    EXPECT_THROW(pbScreen(5, nullptr), std::invalid_argument);
}

} // namespace
} // namespace doe
} // namespace dse
