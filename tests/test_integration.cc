/**
 * @file
 * Cross-module integration tests: the full paper pipeline at reduced
 * scale — sample a study's design space, simulate, train the
 * ensemble, and check prediction quality and error estimation; plus
 * the ANN+SimPoint composition and the explorer driving a real
 * simulator.
 */

#include <gtest/gtest.h>

#include "ml/explorer.hh"
#include "study/harness.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace dse {
namespace {

ml::TrainOptions
integrationTrainOptions()
{
    ml::TrainOptions opts;
    opts.maxEpochs = 3000;
    opts.esInterval = 50;
    opts.patience = 12;
    return opts;
}

TEST(Integration, MemoryStudyModelBeatsMeanPredictor)
{
    study::StudyContext ctx(study::StudyKind::MemorySystem, "mesa",
                            16384);
    Rng rng(42);
    const auto train_idx =
        rng.sampleWithoutReplacement(ctx.space().size(), 300);
    ml::DataSet data;
    for (uint64_t idx : train_idx)
        data.add(ctx.space().encodeIndex(idx), ctx.simulateIpc(idx));

    const auto model = ml::trainEnsemble(data, integrationTrainOptions());
    const auto eval = study::holdoutIndices(ctx.space(), train_idx,
                                            150, 7);
    const auto err = study::measureTrueError(ctx, model, eval);

    // Mean-predictor baseline.
    const double y_mean = mean(data.y);
    double mean_err = 0.0;
    for (uint64_t idx : eval)
        mean_err += percentageError(y_mean, ctx.simulateIpc(idx));
    mean_err /= static_cast<double>(eval.size());

    EXPECT_LT(err.meanPct, mean_err * 0.6)
        << "model " << err.meanPct << "% vs mean " << mean_err << "%";
    EXPECT_LT(err.meanPct, 20.0);
}

TEST(Integration, ErrorEstimateTracksTruth)
{
    study::StudyContext ctx(study::StudyKind::Processor, "gzip", 16384);
    Rng rng(43);
    const auto train_idx =
        rng.sampleWithoutReplacement(ctx.space().size(), 300);
    ml::DataSet data;
    for (uint64_t idx : train_idx)
        data.add(ctx.space().encodeIndex(idx), ctx.simulateIpc(idx));

    const auto model = ml::trainEnsemble(data, integrationTrainOptions());
    const auto eval = study::holdoutIndices(ctx.space(), train_idx,
                                            150, 9);
    const auto err = study::measureTrueError(ctx, model, eval);

    // Cross-validation estimate within a factor of ~2 of truth even
    // at this deliberately tiny sample (the paper gets within 0.5%
    // at realistic samples).
    EXPECT_LT(model.estimate().meanPct, err.meanPct * 2.5);
    EXPECT_GT(model.estimate().meanPct, err.meanPct * 0.4);
}

TEST(Integration, ExplorerDrivesRealStudy)
{
    study::StudyContext ctx(study::StudyKind::MemorySystem, "crafty",
                            16384);
    ml::ExplorerOptions opts;
    opts.batchSize = 60;
    opts.maxSimulations = 240;
    opts.targetMeanPct = 0.0;  // run to the cap
    opts.train = integrationTrainOptions();
    opts.train.maxEpochs = 1500;

    ml::Explorer explorer(
        ctx.space(), [&](uint64_t i) { return ctx.simulateIpc(i); },
        opts);
    const auto history = explorer.run();
    ASSERT_EQ(history.size(), 4u);
    // The estimate at 240 samples must beat the estimate at 60.
    EXPECT_LT(history.back().estimate.meanPct,
              history.front().estimate.meanPct);
}

TEST(Integration, AnnPlusSimPointStillLearns)
{
    study::StudyContext ctx(study::StudyKind::Processor, "gzip", 16384);
    Rng rng(44);
    const auto train_idx =
        rng.sampleWithoutReplacement(ctx.space().size(), 250);

    // Train on noisy SimPoint estimates...
    ml::DataSet noisy;
    for (uint64_t idx : train_idx)
        noisy.add(ctx.space().encodeIndex(idx),
                  ctx.simulateSimPointIpc(idx));
    const auto model = ml::trainEnsemble(noisy, integrationTrainOptions());

    // ...and measure against the true (full-simulation) space.
    const auto eval = study::holdoutIndices(ctx.space(), train_idx,
                                            120, 11);
    const auto err = study::measureTrueError(ctx, model, eval);
    EXPECT_LT(err.meanPct, 30.0);
}

TEST(Integration, ModelRanksConfigurationsUsefully)
{
    // The practical use case: the model's predicted ordering of
    // configurations correlates strongly with the true ordering.
    study::StudyContext ctx(study::StudyKind::MemorySystem, "gzip",
                            16384);
    Rng rng(45);
    const auto train_idx =
        rng.sampleWithoutReplacement(ctx.space().size(), 300);
    ml::DataSet data;
    for (uint64_t idx : train_idx)
        data.add(ctx.space().encodeIndex(idx), ctx.simulateIpc(idx));
    const auto model = ml::trainEnsemble(data, integrationTrainOptions());

    const auto eval = study::holdoutIndices(ctx.space(), train_idx,
                                            120, 13);
    std::vector<double> predicted, actual;
    for (uint64_t idx : eval) {
        predicted.push_back(model.predict(ctx.space().encodeIndex(idx)));
        actual.push_back(ctx.simulateIpc(idx));
    }
    EXPECT_GT(pearson(predicted, actual), 0.9);
}

} // namespace
} // namespace dse
