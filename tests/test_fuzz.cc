/**
 * @file
 * Randomized robustness tests: the simulator must complete and
 * conserve instructions on *any* valid study configuration and any
 * generated trace; the explorer/training stack must behave on
 * adversarial (constant, extreme-ratio) targets.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "ml/cross_validation.hh"
#include "sim/cacti.hh"
#include "study/harness.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"
#include "workload/generator.hh"

namespace dse {
namespace {

TEST(Fuzz, RandomMemoryStudyPointsAlwaysComplete)
{
    study::StudyContext ctx(study::StudyKind::MemorySystem, "twolf",
                            8192);
    Rng rng(0xfeed);
    for (int i = 0; i < 40; ++i) {
        const uint64_t idx = rng.below(ctx.space().size());
        const auto &r = ctx.simulateFull(idx);
        EXPECT_EQ(r.instructions, 8192u) << idx;
        EXPECT_GT(r.ipc, 0.0) << idx;
        EXPECT_LE(r.ipc, 8.0) << idx;
    }
}

TEST(Fuzz, RandomProcessorStudyPointsAlwaysComplete)
{
    study::StudyContext ctx(study::StudyKind::Processor, "equake",
                            8192);
    Rng rng(0xbeef);
    for (int i = 0; i < 40; ++i) {
        const uint64_t idx = rng.below(ctx.space().size());
        const auto &r = ctx.simulateFull(idx);
        EXPECT_EQ(r.instructions, 8192u) << idx;
        EXPECT_GT(r.ipc, 0.0) << idx;
        EXPECT_LE(r.ipc, 8.0) << idx;
    }
}

TEST(Fuzz, ExtremeCornersOfBothSpaces)
{
    for (auto kind : {study::StudyKind::MemorySystem,
                      study::StudyKind::Processor}) {
        study::StudyContext ctx(kind, "mcf", 8192);
        // First, last, and the all-max/all-min corners.
        const uint64_t corners[] = {0, ctx.space().size() - 1,
                                    ctx.space().size() / 2};
        for (uint64_t idx : corners) {
            const auto &r = ctx.simulateFull(idx);
            EXPECT_GT(r.ipc, 0.0);
        }
    }
}

TEST(Fuzz, TrainingOnConstantTargetsSurvives)
{
    Rng rng(3);
    ml::DataSet data;
    for (int i = 0; i < 60; ++i)
        data.add({rng.uniform(), rng.uniform()}, 0.7);
    ml::TrainOptions opts;
    opts.folds = 5;
    opts.maxEpochs = 200;
    opts.esInterval = 25;
    opts.patience = 3;
    const auto model = ml::trainEnsemble(data, opts);
    EXPECT_NEAR(model.predict({0.5, 0.5}), 0.7, 0.1);
    EXPECT_LT(model.estimate().meanPct, 10.0);
}

TEST(Fuzz, TrainingOnExtremeTargetRatiosSurvives)
{
    // Targets spanning four orders of magnitude: the inverse-target
    // presentation weighting must not overflow or starve.
    Rng rng(5);
    ml::DataSet data;
    for (int i = 0; i < 80; ++i) {
        const double a = rng.uniform();
        data.add({a, rng.uniform()}, a < 0.5 ? 0.0005 : 5.0);
    }
    ml::TrainOptions opts;
    opts.folds = 5;
    opts.maxEpochs = 300;
    opts.esInterval = 25;
    opts.patience = 4;
    EXPECT_NO_THROW({
        const auto model = ml::trainEnsemble(data, opts);
        (void)model.predict({0.25, 0.5});
    });
}

TEST(Fuzz, SimulateBatchRandomSizesAndDuplicates)
{
    // Random batch sizes with heavy duplication, fed through the
    // parallel batch path: no crash, IPC matches the memoized scalar
    // path, and the cache holds exactly the distinct indices.
    util::ThreadPool::resetGlobal(4);
    study::StudyContext ctx(study::StudyKind::MemorySystem, "twolf",
                            4096);
    Rng rng(0xabcd);
    std::unordered_set<uint64_t> unique;
    for (int round = 0; round < 6; ++round) {
        const size_t n = 1 + rng.below(30);
        std::vector<uint64_t> batch;
        for (size_t i = 0; i < n; ++i) {
            // Draw from a small window to force duplicates within and
            // across rounds.
            batch.push_back(rng.below(200));
        }
        const auto ipcs = ctx.simulateBatch(batch);
        ASSERT_EQ(ipcs.size(), batch.size());
        for (size_t i = 0; i < batch.size(); ++i) {
            EXPECT_GT(ipcs[i], 0.0);
            EXPECT_EQ(ipcs[i], ctx.simulateIpc(batch[i]));
            unique.insert(batch[i]);
        }
        EXPECT_EQ(ctx.simulationsRun(), unique.size());
    }
    EXPECT_TRUE(ctx.simulateBatch({}).empty());
    EXPECT_EQ(ctx.simulationsRun(), unique.size());
    util::ThreadPool::resetGlobal();
}

TEST(Fuzz, TinyTracesSimulateOnEveryBenchmark)
{
    sim::MachineConfig cfg;
    sim::CactiModel::applyLatencies(cfg);
    for (const auto &name : workload::benchmarkNames()) {
        const auto trace = workload::generateBenchmarkTrace(name, 512);
        sim::SimOptions opts;
        opts.warmCaches = true;
        const auto r = sim::simulate(trace, cfg, opts);
        EXPECT_EQ(r.instructions, 512u) << name;
    }
}

} // namespace
} // namespace dse
