/**
 * @file
 * Wire-protocol fuzz: hostile byte streams against a live server —
 * truncation at every byte offset, a bit flip at every header and
 * payload offset, an oversized declared length, and garbage spliced
 * mid-stream. Every case must end in a structured Error reply or a
 * clean disconnect, never a crash, a hang, or a reply surfacing on a
 * different client's connection (a control connection stays open
 * throughout and must keep round-tripping).
 *
 * Suites are named ServeFuzz* and live in the dse_serve_tests binary
 * (label `serve`), so the serve-tsan / serve-asan presets cover this
 * file too (mirroring test_journal_fuzz.cc for the journal).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ml/cross_validation.hh"
#include "ml/encoding.hh"
#include "serve/client.hh"
#include "serve/server.hh"

namespace dse {
namespace {

/** Tiny shared model so prediction requests are answerable. */
const ml::Ensemble &
fuzzEnsemble()
{
    static const ml::Ensemble model = [] {
        ml::DataSet data;
        uint64_t s = 42;
        auto next = [&s] {
            s = s * 6364136223846793005ull + 1442695040888963407ull;
            return static_cast<double>((s >> 33) & 0xffffff) /
                static_cast<double>(0xffffff);
        };
        for (size_t i = 0; i < 40; ++i) {
            const double a = next(), b = next(), c = next();
            data.add({a, b, c}, 0.5 + a + 0.5 * b - 0.2 * c);
        }
        ml::TrainOptions opts;
        opts.folds = 3;
        opts.maxEpochs = 60;
        opts.esInterval = 20;
        opts.patience = 3;
        return ml::trainEnsemble(data, opts);
    }();
    return model;
}

class ServeFuzz : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        serve::ServerOptions opts;
        opts.addr = "127.0.0.1";
        opts.port = 0;
        opts.workers = 2;
        server_ = std::make_unique<serve::Server>(opts);
        serve::ModelState state;
        state.ensemble =
            std::make_shared<const ml::Ensemble>(fuzzEnsemble());
        server_->setModel(std::move(state));
        server_->start();
        control_.connect("127.0.0.1", server_->port());
        control_.setTimeout(20000);
    }

    void
    TearDown() override
    {
        control_.close();
        server_->stop();
    }

    serve::Client
    attacker()
    {
        serve::Client c;
        c.connect("127.0.0.1", server_->port());
        c.setTimeout(20000);
        return c;
    }

    /** The control connection must still round-trip: no crash, and no
     *  reply leaked to it from any attacker connection. */
    void
    assertControlAlive()
    {
        ASSERT_NO_THROW(control_.ping());
    }

    /** A well-formed one-point PredictPoints frame. */
    static std::string
    validFrame(uint64_t id = 7)
    {
        serve::PredictPointsRequest req;
        req.width = 3;
        req.x = {0.25, 0.5, 0.75};
        return serve::encodeFrame(serve::MsgType::PredictPoints, id,
                                  req.encode());
    }

    std::unique_ptr<serve::Server> server_;
    serve::Client control_;
};

TEST_F(ServeFuzz, TruncationAtEveryByteOffset)
{
    const std::string frame = validFrame();
    for (size_t cut = 0; cut < frame.size(); ++cut) {
        auto client = attacker();
        client.sendRaw(frame.data(), cut);
        client.close();  // EOF mid-frame
    }
    assertControlAlive();
    // A truncated frame is not a protocol violation (the bytes that
    // arrived were valid) — it must simply never produce a reply or
    // wedge the server.
    const auto stats = server_->statsSnapshot();
    EXPECT_EQ(stats.overloaded, 0u);
}

TEST_F(ServeFuzz, HeaderBitFlipAtEveryOffsetDisconnectsCleanly)
{
    const std::string frame = validFrame();
    for (size_t i = 0; i < serve::kHeaderSize; ++i) {
        std::string bad = frame;
        bad[i] = static_cast<char>(bad[i] ^ 0x20);
        auto client = attacker();
        client.sendRaw(bad.data(), bad.size());
        // Every header byte is covered by the header checksum, so any
        // flip means an untrustworthy stream: one structured error,
        // then EOF — and never a crash or a stall.
        auto reply = client.recvFrame();
        ASSERT_TRUE(reply.has_value()) << "offset " << i;
        ASSERT_EQ(reply->type, serve::MsgType::Error) << "offset " << i;
        serve::ErrorReply err;
        ASSERT_TRUE(serve::ErrorReply::decode(reply->payload, err));
        EXPECT_EQ(err.code, serve::ErrCode::BadFrame) << "offset " << i;
        EXPECT_FALSE(client.recvFrame().has_value()) << "offset " << i;
    }
    assertControlAlive();
}

TEST_F(ServeFuzz, PayloadBitFlipRejectsOneFrameAndSurvives)
{
    const std::string frame = validFrame(11);
    for (size_t i = serve::kHeaderSize; i < frame.size(); ++i) {
        std::string bad = frame;
        bad[i] = static_cast<char>(bad[i] ^ 0x01);
        auto client = attacker();
        client.sendRaw(bad.data(), bad.size());
        auto reply = client.recvFrame();
        ASSERT_TRUE(reply.has_value()) << "offset " << i;
        ASSERT_EQ(reply->type, serve::MsgType::Error) << "offset " << i;
        serve::ErrorReply err;
        ASSERT_TRUE(serve::ErrorReply::decode(reply->payload, err));
        EXPECT_EQ(err.code, serve::ErrCode::BadChecksum)
            << "offset " << i;

        // The header was authentic, so the stream stayed in sync: the
        // SAME connection must keep serving valid frames.
        const uint64_t id = client.sendFrame(
            serve::MsgType::Ping, "still-here");
        auto pong = client.recvFrame();
        ASSERT_TRUE(pong.has_value()) << "offset " << i;
        EXPECT_EQ(pong->type, serve::MsgType::Pong) << "offset " << i;
        EXPECT_EQ(pong->id, id) << "offset " << i;
    }
    assertControlAlive();
}

TEST_F(ServeFuzz, OversizedDeclaredLengthIsRefusedBeforeBuffering)
{
    // Hand-build a header whose authentic checksum declares a payload
    // far over the cap: it must be refused from the header alone.
    std::string header;
    auto putLe = [&header](uint64_t v, size_t bytes) {
        for (size_t i = 0; i < bytes; ++i)
            header.push_back(
                static_cast<char>((v >> (8 * i)) & 0xff));
    };
    putLe(serve::kMagic, 4);
    putLe(serve::kProtocolVersion, 2);
    putLe(static_cast<uint16_t>(serve::MsgType::PredictPoints), 2);
    putLe(99, 8);                        // id
    putLe(serve::kDefaultMaxPayload + 1, 4);  // over the cap
    putLe(0, 4);                         // reserved
    putLe(serve::fnv1a64("", 0), 8);     // payload checksum
    putLe(serve::fnv1a64(header.data(), 32), 8);
    ASSERT_EQ(header.size(), serve::kHeaderSize);

    auto client = attacker();
    client.sendRaw(header.data(), header.size());
    auto reply = client.recvFrame();
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(reply->type, serve::MsgType::Error);
    serve::ErrorReply err;
    ASSERT_TRUE(serve::ErrorReply::decode(reply->payload, err));
    EXPECT_EQ(err.code, serve::ErrCode::FrameTooLarge);
    EXPECT_EQ(reply->id, 99u);  // the id survives header validation
    EXPECT_FALSE(client.recvFrame().has_value());
    assertControlAlive();
}

TEST_F(ServeFuzz, PointCountOverflowIsRejected)
{
    // n * width = 2^61, so the naive size check `elems * 8` wraps to
    // 0 mod 2^64 and matches an empty remainder — the decode must
    // reject it outright instead of attempting a 2^61-element resize
    // (which would throw on a worker thread and kill the server).
    serve::WireWriter w;
    w.u32(0x80000000u);  // n     = 2^31
    w.u32(0x40000000u);  // width = 2^30
    const std::string payload = w.take();

    serve::PredictPointsRequest decoded;
    EXPECT_FALSE(serve::PredictPointsRequest::decode(payload, decoded));

    const std::string frame = serve::encodeFrame(
        serve::MsgType::PredictPoints, 31, payload);
    auto client = attacker();
    client.sendRaw(frame.data(), frame.size());
    auto reply = client.recvFrame();
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(reply->type, serve::MsgType::Error);
    serve::ErrorReply err;
    ASSERT_TRUE(serve::ErrorReply::decode(reply->payload, err));
    EXPECT_EQ(err.code, serve::ErrCode::BadRequest);
    EXPECT_EQ(reply->id, 31u);
    assertControlAlive();
}

TEST_F(ServeFuzz, GarbageSplicedMidStream)
{
    // valid frame | garbage | valid frame, one write: the first frame
    // must be answered normally, the garbage must produce a BadFrame
    // error and a disconnect, and the second frame must never execute.
    std::string stream = validFrame(21);
    for (int i = 0; i < 64; ++i)
        stream.push_back(static_cast<char>((i * 37 + 11) & 0xff));
    stream += validFrame(22);

    auto client = attacker();
    client.sendRaw(stream.data(), stream.size());

    // The BadFrame error is sent by the I/O thread while the first
    // request is still with a worker, so the two replies can arrive
    // in either order; what is fixed is the set — one prediction for
    // id 21, one BadFrame error, nothing for id 22 — then EOF.
    int predictions = 0, bad_frames = 0;
    for (;;) {
        auto frame = client.recvFrame();
        if (!frame.has_value())
            break;
        if (frame->type == serve::MsgType::Predictions) {
            EXPECT_EQ(frame->id, 21u);
            ++predictions;
        } else {
            ASSERT_EQ(frame->type, serve::MsgType::Error);
            serve::ErrorReply err;
            ASSERT_TRUE(serve::ErrorReply::decode(frame->payload, err));
            EXPECT_EQ(err.code, serve::ErrCode::BadFrame);
            ++bad_frames;
        }
    }
    EXPECT_EQ(predictions, 1);
    EXPECT_EQ(bad_frames, 1);
    assertControlAlive();
}

TEST_F(ServeFuzz, ReplyNeverCrossesConnections)
{
    // Two clients with colliding correlation ids: each must get its
    // own prediction back (conn identity, not id, routes replies).
    auto a = attacker();
    auto b = attacker();

    serve::PredictPointsRequest ra, rb;
    ra.width = rb.width = 3;
    ra.x = {0.1, 0.1, 0.1};
    rb.x = {0.9, 0.9, 0.9};
    std::vector<double> ya(1), yb(1);
    fuzzEnsemble().predictBatch(ra.x.data(), 1, ya.data());
    fuzzEnsemble().predictBatch(rb.x.data(), 1, yb.data());
    ASSERT_NE(ya[0], yb[0]);

    // Both clients use their first correlation id, so the ids collide
    // across connections by construction.
    ASSERT_EQ(a.sendFrame(serve::MsgType::PredictPoints, ra.encode()),
              b.sendFrame(serve::MsgType::PredictPoints, rb.encode()));

    auto fa = a.recvFrame();
    auto fb = b.recvFrame();
    ASSERT_TRUE(fa.has_value());
    ASSERT_TRUE(fb.has_value());
    serve::PredictionsReply pa, pb;
    ASSERT_TRUE(serve::PredictionsReply::decode(fa->payload, pa));
    ASSERT_TRUE(serve::PredictionsReply::decode(fb->payload, pb));
    ASSERT_EQ(pa.y.size(), 1u);
    ASSERT_EQ(pb.y.size(), 1u);
    EXPECT_EQ(pa.y[0], ya[0]);
    EXPECT_EQ(pb.y[0], yb[0]);
    assertControlAlive();
}

} // namespace
} // namespace dse
