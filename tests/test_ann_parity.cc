/**
 * @file
 * Parity tests for the flat-arena ANN numeric core (DESIGN.md,
 * "Numeric kernels"), along two axes:
 *
 *  - against the pre-rewrite reference implementation
 *    (tests/reference_ann.hh): the production kernels fix a different
 *    (four-lane) accumulation order and use a polynomial sigmoid, so
 *    forward passes and training steps must agree to a tight relative
 *    tolerance, not bitwise;
 *  - between the production paths themselves: batched prediction is
 *    specified to be bit-for-bit identical to single-point
 *    prediction, at the network, ensemble, and design-space level —
 *    EXPECT_EQ, no tolerance.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "ml/ann.hh"
#include "ml/cross_validation.hh"
#include "ml/encoding.hh"
#include "reference_ann.hh"

namespace dse {
namespace ml {
namespace {

struct Topology
{
    int inputs;
    int outputs;
    int hiddenUnits;
    int hiddenLayers;
};

// Covers every kernel dispatch: out == 1 (contiguous column), the
// fixed-width 16 and 32 clones, the runtime-width path (2, 5), narrow
// inputs (in < 4, partial first strip), strip remainders, multiple
// hidden layers, and multi-output layers.
const Topology kTopologies[] = {
    {16, 1, 16, 1}, {3, 1, 16, 1}, {10, 2, 8, 1}, {7, 1, 5, 2},
    {5, 3, 32, 1},  {2, 1, 2, 1},  {13, 1, 16, 2}, {6, 4, 16, 1},
};

std::vector<double>
randomInput(Rng &rng, int n)
{
    std::vector<double> x(static_cast<size_t>(n));
    for (auto &v : x)
        v = rng.uniform();
    return x;
}

double
maxRelDiff(const std::vector<double> &a, const std::vector<double> &b)
{
    EXPECT_EQ(a.size(), b.size());
    double worst = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        const double scale =
            std::max({std::abs(a[i]), std::abs(b[i]), 1e-300});
        worst = std::max(worst, std::abs(a[i] - b[i]) / scale);
    }
    return worst;
}

TEST(AnnParity, ForwardMatchesReference)
{
    Rng rng(101);
    for (const Topology &t : kTopologies) {
        AnnParams p;
        p.hiddenUnits = t.hiddenUnits;
        p.hiddenLayers = t.hiddenLayers;
        Ann net(t.inputs, t.outputs, p, rng);
        testref::ReferenceAnn ref(t.inputs, t.outputs, p, net.weights());
        for (int trial = 0; trial < 20; ++trial) {
            const auto x = randomInput(rng, t.inputs);
            EXPECT_LE(maxRelDiff(net.predict(x), ref.predict(x)), 1e-12)
                << "topology " << t.inputs << "->" << t.hiddenUnits
                << "x" << t.hiddenLayers << "->" << t.outputs;
        }
    }
}

TEST(AnnParity, TrainStepMatchesReference)
{
    Rng rng(202);
    for (const Topology &t : kTopologies) {
        AnnParams p;
        p.hiddenUnits = t.hiddenUnits;
        p.hiddenLayers = t.hiddenLayers;
        p.learningRate = 0.4;
        p.momentum = 0.5;
        Ann net(t.inputs, t.outputs, p, rng);
        testref::ReferenceAnn ref(t.inputs, t.outputs, p, net.weights());
        const auto x = randomInput(rng, t.inputs);
        const auto target = randomInput(rng, t.outputs);
        const double e_net = net.train(x, target);
        const double e_ref = ref.train(x, target);
        EXPECT_NEAR(e_net, e_ref, 1e-12 * (1.0 + std::abs(e_ref)));
        EXPECT_LE(maxRelDiff(net.weights(), ref.weights()), 1e-12)
            << "topology " << t.inputs << "->" << t.hiddenUnits << "x"
            << t.hiddenLayers << "->" << t.outputs;
    }
}

TEST(AnnParity, TrainingTrajectoryTracksReference)
{
    // Many consecutive steps: per-step kernel differences are ~1e-15
    // relative, and SGD amplifies them, so the drift bound after 100
    // steps is looser than the single-step bound — but must stay tiny.
    Rng rng(303);
    AnnParams p;
    p.learningRate = 0.4;
    p.momentum = 0.5;
    Ann net(12, 1, p, rng);
    testref::ReferenceAnn ref(12, 1, p, net.weights());
    Rng data_rng(304);
    for (int step = 0; step < 100; ++step) {
        const auto x = randomInput(data_rng, 12);
        const std::vector<double> target{data_rng.uniform()};
        net.train(x, target);
        ref.train(x, target);
    }
    EXPECT_LE(maxRelDiff(net.weights(), ref.weights()), 1e-9);
}

TEST(AnnParity, TrainEpochBitIdenticalToPerExampleTrain)
{
    // trainEpoch's contract is exact: same forward, same fused
    // backward+update sweep, same error accumulation order as the
    // equivalent sequence of train() calls — EXPECT_EQ, no tolerance.
    // The presentation order draws rows with replacement (repeats and
    // gaps), as weighted presentation does.
    Rng data_rng(606);
    for (const Topology &t : kTopologies) {
        AnnParams p;
        p.hiddenUnits = t.hiddenUnits;
        p.hiddenLayers = t.hiddenLayers;
        Rng rng_a(707), rng_b(707);
        Ann a(t.inputs, t.outputs, p, rng_a);
        Ann b(t.inputs, t.outputs, p, rng_b);
        ASSERT_EQ(a.weights(), b.weights());

        const size_t rows = 19;
        const size_t in = static_cast<size_t>(t.inputs);
        const size_t out = static_cast<size_t>(t.outputs);
        std::vector<double> x(rows * in);
        std::vector<double> target(rows * out);
        for (auto &v : x)
            v = data_rng.uniform();
        for (auto &v : target)
            v = data_rng.uniform();
        std::vector<uint32_t> order(3 * rows);
        for (auto &o : order)
            o = static_cast<uint32_t>(data_rng.below(rows));

        double sum_b = 0.0;
        for (uint32_t row : order) {
            const std::vector<double> xi(
                x.begin() + static_cast<ptrdiff_t>(row * in),
                x.begin() + static_cast<ptrdiff_t>((row + 1) * in));
            const std::vector<double> ti(
                target.begin() + static_cast<ptrdiff_t>(row * out),
                target.begin() + static_cast<ptrdiff_t>((row + 1) * out));
            sum_b += b.train(xi, ti);
        }
        const double sum_a = a.trainEpoch(x.data(), target.data(),
                                          order.data(), order.size());
        EXPECT_EQ(sum_a, sum_b)
            << "topology " << t.inputs << "->" << t.hiddenUnits << "x"
            << t.hiddenLayers << "->" << t.outputs;
        EXPECT_EQ(a.weights(), b.weights())
            << "topology " << t.inputs << "->" << t.hiddenUnits << "x"
            << t.hiddenLayers << "->" << t.outputs;
    }
}

TEST(AnnParity, TrainEpochTrajectoryTracksReference)
{
    // The fused epoch pipeline vs the pre-rewrite per-example oracle
    // over several epochs (null order = in-place presentation): the
    // fused backward+update sweep reorders no arithmetic, so drift
    // stays at the kernel-vs-libm level of the other trajectory test.
    Rng rng(808);
    for (const Topology &t : kTopologies) {
        AnnParams p;
        p.hiddenUnits = t.hiddenUnits;
        p.hiddenLayers = t.hiddenLayers;
        Ann net(t.inputs, t.outputs, p, rng);
        testref::ReferenceAnn ref(t.inputs, t.outputs, p, net.weights());

        const size_t rows = 25;
        const size_t in = static_cast<size_t>(t.inputs);
        const size_t out = static_cast<size_t>(t.outputs);
        std::vector<double> x(rows * in);
        std::vector<double> target(rows * out);
        Rng data_rng(809);
        for (auto &v : x)
            v = data_rng.uniform();
        for (auto &v : target)
            v = data_rng.uniform();

        for (int epoch = 0; epoch < 4; ++epoch) {
            const double e_net =
                net.trainEpoch(x.data(), target.data(), nullptr, rows);
            const double e_ref =
                ref.trainEpoch(x.data(), target.data(), nullptr, rows);
            EXPECT_NEAR(e_net, e_ref, 1e-10 * (1.0 + std::abs(e_ref)));
        }
        EXPECT_LE(maxRelDiff(net.weights(), ref.weights()), 1e-9)
            << "topology " << t.inputs << "->" << t.hiddenUnits << "x"
            << t.hiddenLayers << "->" << t.outputs;
    }
}

TEST(AnnParity, BatchedPredictionBitIdenticalToSingle)
{
    Rng rng(404);
    for (const Topology &t : kTopologies) {
        AnnParams p;
        p.hiddenUnits = t.hiddenUnits;
        p.hiddenLayers = t.hiddenLayers;
        Ann net(t.inputs, t.outputs, p, rng);
        // 257 points: full kBlock blocks, a register sub-block
        // remainder, and a final nb == 1 block.
        const size_t n = 4 * Ann::kBlock + 1;
        const size_t in = static_cast<size_t>(t.inputs);
        const size_t out = static_cast<size_t>(t.outputs);
        std::vector<double> x(n * in);
        for (auto &v : x)
            v = rng.uniform();
        std::vector<double> y(n * out, -1.0);
        net.predictBatch(x.data(), n, y.data());
        for (size_t r = 0; r < n; ++r) {
            const std::vector<double> xi(
                x.begin() + static_cast<ptrdiff_t>(r * in),
                x.begin() + static_cast<ptrdiff_t>((r + 1) * in));
            const auto yi = net.predict(xi);
            for (size_t o = 0; o < out; ++o)
                EXPECT_EQ(y[r * out + o], yi[o])
                    << "row " << r << " output " << o;
        }
    }
}

TEST(AnnParity, EnsembleBatchedPathsBitIdenticalToPredict)
{
    // A small real ensemble over a design space, then the three
    // prediction paths — per-point predict(), flat predictBatch(),
    // and index-driven predictIndices() (both the consecutive
    // odometer encode and the scattered per-index encode) — must
    // agree exactly.
    DesignSpace space;
    space.addCardinal("a", {1, 2, 3, 4});
    space.addNominal("b", {"x", "y", "z"});
    space.addBoolean("c");
    space.addCardinal("d", {1, 2, 3, 4, 5});

    DataSet data;
    Rng rng(505);
    const auto sample = rng.sampleWithoutReplacement(space.size(), 40);
    for (uint64_t idx : sample) {
        const auto x = space.encodeIndex(idx);
        data.add(x, 1.0 + x[0] + 0.5 * x[2] * x[3] + 0.1 * x[5]);
    }
    TrainOptions opts;
    opts.folds = 5;
    opts.maxEpochs = 80;
    opts.esInterval = 20;
    opts.patience = 3;
    const Ensemble model = trainEnsemble(data, opts);

    const size_t n = space.size();
    std::vector<uint64_t> all(n);
    std::iota(all.begin(), all.end(), 0);
    const auto consecutive = model.predictIndices(space, all);
    ASSERT_EQ(consecutive.size(), n);

    std::vector<uint64_t> shuffled = all;
    Rng(506).shuffle(shuffled);
    const auto scattered = model.predictIndices(space, shuffled);

    const size_t width = static_cast<size_t>(space.encodedWidth());
    std::vector<double> xflat(n * width);
    for (size_t i = 0; i < n; ++i)
        space.encodeIndexInto(all[i], xflat.data() + i * width);
    std::vector<double> batched(n);
    model.predictBatch(xflat.data(), n, batched.data());

    for (size_t i = 0; i < n; ++i) {
        const double single = model.predict(space.encodeIndex(all[i]));
        EXPECT_EQ(consecutive[i], single) << "index " << i;
        EXPECT_EQ(batched[i], single) << "index " << i;
    }
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(scattered[i], consecutive[shuffled[i]])
            << "shuffled slot " << i;
}

TEST(AnnParity, EncodeRangeMatchesEncodeIndex)
{
    DesignSpace space;
    space.addCardinal("a", {1, 2, 3});
    space.addNominal("b", {"p", "q"});
    space.addCardinal("c", {1, 2, 3, 4, 5, 6, 7});
    const size_t width = static_cast<size_t>(space.encodedWidth());
    const uint64_t first = 5;
    const size_t count = static_cast<size_t>(space.size()) - 7;
    std::vector<double> ranged(count * width);
    space.encodeRangeInto(first, count, ranged.data());
    std::vector<double> one(width);
    for (size_t r = 0; r < count; ++r) {
        space.encodeIndexInto(first + r, one.data());
        for (size_t c = 0; c < width; ++c)
            EXPECT_EQ(ranged[r * width + c], one[c])
                << "row " << r << " col " << c;
    }
    EXPECT_THROW(space.encodeRangeInto(first, space.size(), one.data()),
                 std::out_of_range);
}

} // namespace
} // namespace ml
} // namespace dse
