/**
 * @file
 * dse::serve integration tests: loopback round trips that must be
 * bit-identical to local Ensemble::predictBatch, concurrent clients,
 * deterministic queue-full backpressure, graceful-shutdown drain, and
 * counter reconciliation against client-observed traffic.
 *
 * Suites are named Serve* and live in the dse_serve_tests binary
 * (label `serve`), so the serve-tsan / serve-asan presets cover
 * exactly this subsystem under the sanitizers.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ml/cross_validation.hh"
#include "ml/encoding.hh"
#include "ml/io.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "util/metrics.hh"

namespace dse {
namespace {

/** y = f(x) on [0,1]^3 — cheap to learn, deterministic. */
ml::DataSet
syntheticData(size_t n, uint64_t seed)
{
    ml::DataSet data;
    uint64_t s = seed * 6364136223846793005ull + 1442695040888963407ull;
    auto next = [&s] {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        return static_cast<double>((s >> 33) & 0xffffff) /
            static_cast<double>(0xffffff);
    };
    for (size_t i = 0; i < n; ++i) {
        const double a = next(), b = next(), c = next();
        data.add({a, b, c}, 0.4 + 0.8 * a + 0.5 * b * c - 0.3 * a * b);
    }
    return data;
}

/** One shared tiny ensemble (3 inputs) for every test. */
const ml::Ensemble &
tinyEnsemble()
{
    static const ml::Ensemble model = [] {
        ml::TrainOptions opts;
        opts.folds = 3;
        opts.maxEpochs = 120;
        opts.esInterval = 20;
        opts.patience = 4;
        return ml::trainEnsemble(syntheticData(60, 7), opts);
    }();
    return model;
}

/** A 4x4x4 design space whose encoded width matches the ensemble. */
ml::DesignSpace
tinySpace()
{
    ml::DesignSpace space;
    space.addCardinal("a", {1, 2, 4, 8});
    space.addCardinal("b", {1, 2, 4, 8});
    space.addCardinal("c", {1, 2, 4, 8});
    return space;
}

serve::ModelState
tinyModel()
{
    serve::ModelState state;
    state.ensemble =
        std::make_shared<const ml::Ensemble>(tinyEnsemble());
    state.space = std::make_shared<const ml::DesignSpace>(tinySpace());
    state.study = "synthetic";
    state.app = "unit-test";
    return state;
}

serve::ServerOptions
testOptions()
{
    serve::ServerOptions opts;
    opts.addr = "127.0.0.1";
    opts.port = 0;
    opts.workers = 2;
    return opts;
}

serve::Client
connectTo(const serve::Server &server)
{
    serve::Client client;
    client.connect("127.0.0.1", server.port());
    client.setTimeout(20000);
    return client;
}

TEST(ServeRoundTrip, PredictPointsBitIdenticalToLocalBatch)
{
    serve::Server server(testOptions());
    server.setModel(tinyModel());
    server.start();
    auto client = connectTo(server);

    const auto space = tinySpace();
    const size_t n = 17;
    const size_t width = static_cast<size_t>(space.encodedWidth());
    std::vector<double> x(n * width);
    for (size_t i = 0; i < n; ++i)
        space.encodeIndexInto(i * 3, &x[i * width]);

    std::vector<double> local(n);
    tinyEnsemble().predictBatch(x.data(), n, local.data());

    const auto remote = client.predictPoints(x.data(), n, width);
    ASSERT_EQ(remote.size(), n);
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(remote[i], local[i]) << "point " << i;
    server.stop();
}

TEST(ServeRoundTrip, PredictRangeMatchesPredictIndices)
{
    serve::Server server(testOptions());
    server.setModel(tinyModel());
    server.start();
    auto client = connectTo(server);

    const auto space = tinySpace();
    std::vector<uint64_t> indices;
    for (uint64_t i = 5; i < 25; ++i)
        indices.push_back(i);
    const auto local = tinyEnsemble().predictIndices(space, indices);

    const auto remote = client.predictRange(5, 20);
    ASSERT_EQ(remote.size(), local.size());
    for (size_t i = 0; i < local.size(); ++i)
        EXPECT_EQ(remote[i], local[i]) << "index " << indices[i];
    server.stop();
}

TEST(ServeRoundTrip, PingAndModelInfo)
{
    serve::Server server(testOptions());
    server.setModel(tinyModel());
    server.start();
    auto client = connectTo(server);

    client.ping();
    const auto info = client.modelInfo();
    EXPECT_EQ(info.members, tinyEnsemble().members());
    EXPECT_EQ(info.inputs, 3u);
    EXPECT_EQ(info.spaceSize, tinySpace().size());
    EXPECT_EQ(info.study, "synthetic");
    EXPECT_EQ(info.app, "unit-test");
    server.stop();
}

TEST(ServeConcurrent, ManyClientsGetTheirOwnAnswers)
{
    serve::Server server(testOptions());
    server.setModel(tinyModel());
    server.start();

    const auto space = tinySpace();
    const size_t width = static_cast<size_t>(space.encodedWidth());
    // Precompute the expected answer for every space index once.
    std::vector<uint64_t> all(space.size());
    for (uint64_t i = 0; i < space.size(); ++i)
        all[i] = i;
    const auto expected = tinyEnsemble().predictIndices(space, all);

    constexpr size_t kClients = 8;
    constexpr size_t kRequests = 40;
    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    for (size_t c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
            serve::Client client;
            client.connect("127.0.0.1", server.port());
            client.setTimeout(20000);
            std::vector<double> x(width);
            for (size_t r = 0; r < kRequests; ++r) {
                // Each client walks its own index sequence, so a
                // cross-wired reply would be caught immediately.
                const uint64_t idx = (c * 13 + r * 5) % space.size();
                space.encodeIndexInto(idx, x.data());
                const auto y = client.predictPoints(x.data(), 1, width);
                if (y.size() != 1 || y[0] != expected[idx])
                    failures.fetch_add(1);
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(failures.load(), 0);

    const auto stats = server.statsSnapshot();
    EXPECT_GE(stats.requests, kClients * kRequests);
    EXPECT_GE(stats.predictions, kClients * kRequests);
    server.stop();
}

TEST(ServeBackpressure, QueueFullYieldsOverloaded)
{
    auto opts = testOptions();
    opts.queueCapacity = 2;
    serve::Server server(opts);
    server.setModel(tinyModel());
    server.start();
    server.pauseWorkersForTest(true);

    auto client = connectTo(server);
    const auto space = tinySpace();
    const size_t width = static_cast<size_t>(space.encodedWidth());
    std::vector<double> x(width);
    space.encodeIndexInto(0, x.data());

    serve::PredictPointsRequest req;
    req.width = static_cast<uint32_t>(width);
    req.x = x;
    const std::string payload = req.encode();

    // With workers frozen the first two requests occupy the queue;
    // the next three must be refused immediately.
    std::vector<uint64_t> ids;
    for (int i = 0; i < 5; ++i)
        ids.push_back(
            client.sendFrame(serve::MsgType::PredictPoints, payload));

    for (int i = 0; i < 3; ++i) {
        auto frame = client.recvFrame();
        ASSERT_TRUE(frame.has_value());
        ASSERT_EQ(frame->type, serve::MsgType::Error);
        serve::ErrorReply err;
        ASSERT_TRUE(serve::ErrorReply::decode(frame->payload, err));
        EXPECT_EQ(err.code, serve::ErrCode::Overloaded);
        EXPECT_EQ(frame->id, ids[2 + i]);
    }

    // Unfreezing answers the two queued requests.
    server.pauseWorkersForTest(false);
    for (int i = 0; i < 2; ++i) {
        auto frame = client.recvFrame();
        ASSERT_TRUE(frame.has_value());
        EXPECT_EQ(frame->type, serve::MsgType::Predictions);
    }
    EXPECT_EQ(server.statsSnapshot().overloaded, 3u);
    server.stop();
}

TEST(ServeShutdown, StopDrainsQueuedRequests)
{
    auto opts = testOptions();
    serve::Server server(opts);
    server.setModel(tinyModel());
    server.start();
    server.pauseWorkersForTest(true);

    auto client = connectTo(server);
    const auto space = tinySpace();
    const size_t width = static_cast<size_t>(space.encodedWidth());
    serve::PredictPointsRequest req;
    req.width = static_cast<uint32_t>(width);
    req.x.resize(width);
    space.encodeIndexInto(1, req.x.data());
    const std::string payload = req.encode();

    constexpr int kQueued = 3;
    for (int i = 0; i < kQueued; ++i)
        client.sendFrame(serve::MsgType::PredictPoints, payload);

    // stop() unfreezes the workers, answers everything queued,
    // flushes, then closes: the client must see every reply and only
    // then EOF.
    std::thread stopper([&] { server.stop(); });
    int predictions = 0;
    for (;;) {
        auto frame = client.recvFrame();
        if (!frame.has_value())
            break;  // orderly close after the drain
        EXPECT_EQ(frame->type, serve::MsgType::Predictions);
        ++predictions;
    }
    stopper.join();
    EXPECT_EQ(predictions, kQueued);
}

TEST(ServeStats, CountersReconcileWithClientTraffic)
{
    serve::Server server(testOptions());
    server.setModel(tinyModel());
    server.start();
    auto client = connectTo(server);

    const auto space = tinySpace();
    const size_t width = static_cast<size_t>(space.encodedWidth());
    std::vector<double> x(width);
    constexpr uint64_t kPredicts = 12;
    for (uint64_t i = 0; i < kPredicts; ++i) {
        space.encodeIndexInto(i, x.data());
        client.predictPoints(x.data(), 1, width);
    }
    const auto stats = client.stats();
    // One connection, every reply received before Stats was sent, so
    // the counters are exact: kPredicts + the Stats request itself.
    EXPECT_EQ(stats.requests, kPredicts + 1);
    EXPECT_EQ(stats.predictions, kPredicts);
    EXPECT_EQ(stats.overloaded, 0u);
    EXPECT_EQ(stats.protocolErrors, 0u);
    EXPECT_EQ(stats.connectionsAccepted, 1u);
    EXPECT_EQ(stats.activeConnections, 1u);
    EXPECT_GT(stats.bytesRx, 0u);
    EXPECT_GT(stats.bytesTx, 0u);
    server.stop();
}

TEST(ServeStats, ObsMetricsMirrorServerCounters)
{
    obs::MetricsRegistry::global().reset();
    obs::setMetricsEnabled(true);

    serve::Server server(testOptions());
    server.setModel(tinyModel());
    server.start();
    {
        auto client = connectTo(server);
        const auto space = tinySpace();
        const size_t width = static_cast<size_t>(space.encodedWidth());
        std::vector<double> x(width);
        for (uint64_t i = 0; i < 5; ++i) {
            space.encodeIndexInto(i, x.data());
            client.predictPoints(x.data(), 1, width);
        }
    }
    server.stop();
    obs::setMetricsEnabled(false);

    const auto snap = obs::MetricsRegistry::global().snapshot();
    EXPECT_EQ(snap.counter("serve.requests"), 5u);
    EXPECT_EQ(snap.counter("serve.predictions"), 5u);
    EXPECT_EQ(snap.counter("serve.connections"), 1u);
    EXPECT_GT(snap.counter("serve.bytes_rx"), 0u);
    EXPECT_GT(snap.counter("serve.bytes_tx"), 0u);
    const auto *hist = snap.histogram("serve.batch_points");
    ASSERT_NE(hist, nullptr);
    EXPECT_GT(hist->count, 0u);
    obs::MetricsRegistry::global().reset();
}

TEST(ServeErrors, StructuredErrorsKeepTheConnectionAlive)
{
    serve::Server server(testOptions());
    server.start();  // no model installed
    auto client = connectTo(server);

    double x[3] = {0.1, 0.2, 0.3};
    try {
        client.predictPoints(x, 1, 3);
        FAIL() << "expected NoModel";
    } catch (const serve::ServeError &e) {
        EXPECT_EQ(e.code(), serve::ErrCode::NoModel);
    }

    server.setModel(tinyModel());
    try {
        client.predictPoints(x, 1, 2);  // wrong feature width
        FAIL() << "expected BadIndex";
    } catch (const serve::ServeError &e) {
        EXPECT_EQ(e.code(), serve::ErrCode::BadIndex);
    }
    try {
        client.predictRange(60, 100);  // past the 64-point space
        FAIL() << "expected BadIndex";
    } catch (const serve::ServeError &e) {
        EXPECT_EQ(e.code(), serve::ErrCode::BadIndex);
    }

    // Malformed payload under a valid frame: BadRequest, not a drop.
    const uint64_t id =
        client.sendFrame(serve::MsgType::PredictPoints, "garbage");
    auto frame = client.recvFrame();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, serve::MsgType::Error);
    EXPECT_EQ(frame->id, id);

    // The same connection still serves valid requests afterwards.
    const auto y = client.predictPoints(x, 1, 3);
    EXPECT_EQ(y.size(), 1u);
    server.stop();
}

TEST(ServeModel, LoadModelByPathThenPredict)
{
    const std::string path = "/tmp/dse_serve_test_model.bin";
    std::remove(path.c_str());
    ml::saveEnsemble(path, tinyEnsemble());

    serve::Server server(testOptions());
    server.start();  // empty; the wire loads the model
    auto client = connectTo(server);

    serve::LoadModelRequest req;
    req.path = path;
    const auto info = client.loadModel(req);
    EXPECT_EQ(info.members, tinyEnsemble().members());
    EXPECT_EQ(info.inputs, 3u);

    const auto space = tinySpace();
    const size_t width = static_cast<size_t>(space.encodedWidth());
    std::vector<double> x(width);
    space.encodeIndexInto(9, x.data());
    std::vector<double> local(1);
    tinyEnsemble().predictBatch(x.data(), 1, local.data());
    const auto y = client.predictPoints(x.data(), 1, width);
    ASSERT_EQ(y.size(), 1u);
    EXPECT_EQ(y[0], local[0]);

    server.stop();
    std::remove(path.c_str());
}

} // namespace
} // namespace dse
