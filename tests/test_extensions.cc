/**
 * @file
 * Tests for the future-work extensions and library utilities:
 * cross-application modeling, SMARTS-style systematic sampling, and
 * ensemble serialization.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "ml/crossapp.hh"
#include "ml/io.hh"
#include "sim/cacti.hh"
#include "sim/core.hh"
#include "simpoint/smarts.hh"
#include "util/stats.hh"
#include "workload/generator.hh"

namespace dse {
namespace {

ml::DesignSpace
toySpace()
{
    ml::DesignSpace space;
    space.addCardinal("a", {1, 2, 3, 4});
    space.addCardinal("b", {1, 2, 3, 4});
    return space;
}

TEST(CrossApp, EncodingPrependsAppOneHot)
{
    const auto space = toySpace();
    ml::CrossAppSpace joint(space, {"alpha", "beta", "gamma"});
    EXPECT_EQ(joint.encodedWidth(), 3 + space.encodedWidth());

    const auto x = joint.encode(1, 5);
    EXPECT_DOUBLE_EQ(x[0], 0.0);
    EXPECT_DOUBLE_EQ(x[1], 1.0);
    EXPECT_DOUBLE_EQ(x[2], 0.0);
    const auto design = space.encodeIndex(5);
    for (size_t i = 0; i < design.size(); ++i)
        EXPECT_DOUBLE_EQ(x[3 + i], design[i]);
}

TEST(CrossApp, AppIndexLookup)
{
    const auto space = toySpace();
    ml::CrossAppSpace joint(space, {"alpha", "beta"});
    EXPECT_EQ(joint.appIndex("beta"), 1u);
    EXPECT_THROW(joint.appIndex("nope"), std::invalid_argument);
    EXPECT_THROW(joint.encode(2, 0), std::out_of_range);
}

TEST(CrossApp, RejectsNoApps)
{
    const auto space = toySpace();
    EXPECT_THROW(ml::CrossAppSpace(space, {}), std::invalid_argument);
}

TEST(CrossApp, JointModelLearnsSharedStructure)
{
    // Two "applications" with the same shape, different offsets: the
    // joint model must separate them via the identity input.
    const auto space = toySpace();
    ml::CrossAppSpace joint(space, {"alpha", "beta"});

    auto response = [&](size_t app, uint64_t idx) {
        const auto x = space.encodeIndex(idx);
        const double base = 0.4 + 0.4 * x[0] - 0.2 * x[0] * x[1];
        return app == 0 ? base : base + 0.3;
    };

    std::vector<ml::CrossAppSample> samples;
    for (size_t app = 0; app < 2; ++app)
        for (uint64_t i = 0; i < space.size(); ++i)
            samples.push_back({app, i, response(app, i)});

    ml::TrainOptions opts;
    opts.folds = 5;
    opts.maxEpochs = 2500;
    opts.esInterval = 50;
    opts.patience = 10;
    const auto model = ml::trainCrossAppEnsemble(joint, samples, opts);

    double err = 0.0;
    int n = 0;
    for (size_t app = 0; app < 2; ++app) {
        for (uint64_t i = 0; i < space.size(); ++i) {
            err += percentageError(model.predict(joint.encode(app, i)),
                                   response(app, i));
            ++n;
        }
    }
    EXPECT_LT(err / n, 6.0);
}

TEST(Smarts, EstimateTracksFullSimulation)
{
    const auto trace = workload::generateBenchmarkTrace("gzip", 16384);
    sim::MachineConfig cfg;
    sim::CactiModel::applyLatencies(cfg);

    sim::SimOptions full_opts;
    full_opts.warmCaches = true;
    const auto full = sim::simulate(trace, cfg, full_opts);

    simpoint::SmartsOptions opts;
    opts.unitInstructions = 512;
    opts.cadence = 4;
    const auto est = simpoint::smartsEstimateIpc(trace, cfg, opts);

    EXPECT_EQ(est.unitsSampled, 8u);  // 32 units / cadence 4
    EXPECT_EQ(est.instructionsSimulated, 8u * 512);
    EXPECT_LT(percentageError(est.ipc, full.ipc), 30.0);
}

TEST(Smarts, DenserSamplingCostsMore)
{
    const auto trace = workload::generateBenchmarkTrace("gzip", 8192);
    sim::MachineConfig cfg;
    sim::CactiModel::applyLatencies(cfg);
    simpoint::SmartsOptions sparse;
    sparse.cadence = 8;
    simpoint::SmartsOptions dense;
    dense.cadence = 2;
    EXPECT_LT(simpoint::smartsEstimateIpc(trace, cfg, sparse)
                  .instructionsSimulated,
              simpoint::smartsEstimateIpc(trace, cfg, dense)
                  .instructionsSimulated);
}

TEST(Smarts, PhaseShiftsSampledUnits)
{
    const auto trace = workload::generateBenchmarkTrace("mesa", 8192);
    sim::MachineConfig cfg;
    sim::CactiModel::applyLatencies(cfg);
    simpoint::SmartsOptions a;
    a.cadence = 4;
    a.phase = 0;
    simpoint::SmartsOptions b = a;
    b.phase = 2;
    // Different phases sample different units; estimates may differ
    // but both remain positive and finite.
    const auto ea = simpoint::smartsEstimateIpc(trace, cfg, a);
    const auto eb = simpoint::smartsEstimateIpc(trace, cfg, b);
    EXPECT_GT(ea.ipc, 0.0);
    EXPECT_GT(eb.ipc, 0.0);
}

TEST(Smarts, RejectsDegenerateOptions)
{
    const auto trace = workload::generateBenchmarkTrace("gzip", 4096);
    sim::MachineConfig cfg;
    simpoint::SmartsOptions bad;
    bad.unitInstructions = 0;
    EXPECT_THROW(simpoint::smartsEstimateIpc(trace, cfg, bad),
                 std::invalid_argument);
    simpoint::SmartsOptions too_big;
    too_big.unitInstructions = 1 << 20;
    EXPECT_THROW(simpoint::smartsEstimateIpc(trace, cfg, too_big),
                 std::invalid_argument);
}

ml::Ensemble
smallTrainedEnsemble()
{
    Rng rng(3);
    ml::DataSet data;
    for (int i = 0; i < 80; ++i) {
        const double a = rng.uniform(), b = rng.uniform();
        data.add({a, b}, 0.5 + 0.3 * a - 0.2 * b);
    }
    ml::TrainOptions opts;
    opts.folds = 4;
    opts.maxEpochs = 400;
    opts.esInterval = 50;
    opts.patience = 4;
    return ml::trainEnsemble(data, opts);
}

TEST(EnsembleIo, RoundTripIsBitExact)
{
    const auto model = smallTrainedEnsemble();
    std::stringstream buffer;
    ml::saveEnsemble(buffer, model);
    const auto restored = ml::loadEnsemble(buffer);

    EXPECT_EQ(restored.members(), model.members());
    EXPECT_DOUBLE_EQ(restored.estimate().meanPct,
                     model.estimate().meanPct);
    Rng rng(9);
    for (int i = 0; i < 50; ++i) {
        const std::vector<double> x{rng.uniform(), rng.uniform()};
        EXPECT_DOUBLE_EQ(restored.predict(x), model.predict(x));
    }
}

TEST(EnsembleIo, FileRoundTrip)
{
    const auto model = smallTrainedEnsemble();
    const std::string path = "/tmp/dse_test_ensemble.txt";
    ml::saveEnsemble(path, model);
    const auto restored = ml::loadEnsemble(path);
    EXPECT_DOUBLE_EQ(restored.predict({0.3, 0.7}),
                     model.predict({0.3, 0.7}));
}

TEST(EnsembleIo, RejectsGarbage)
{
    std::stringstream garbage("not an ensemble file");
    EXPECT_THROW(ml::loadEnsemble(garbage), std::runtime_error);

    std::stringstream truncated("dse-ensemble 1\nmembers 4\n");
    EXPECT_THROW(ml::loadEnsemble(truncated), std::runtime_error);

    EXPECT_THROW(ml::loadEnsemble("/nonexistent/path"),
                 std::runtime_error);
}

TEST(EnsembleIo, RejectsWrongVersion)
{
    const auto model = smallTrainedEnsemble();
    std::stringstream buffer;
    ml::saveEnsemble(buffer, model);
    std::string text = buffer.str();
    text.replace(text.find(" 1\n"), 3, " 9\n");
    std::stringstream bad(text);
    EXPECT_THROW(ml::loadEnsemble(bad), std::runtime_error);
}

} // namespace
} // namespace dse
