/**
 * @file
 * Unit and property tests for the set-associative cache model.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/cache.hh"

namespace dse {
namespace sim {
namespace {

CacheConfig
smallCache()
{
    return {1, 32, 2, true};  // 1KB, 32B blocks, 2-way: 16 sets
}

TEST(Cache, MissThenHit)
{
    Cache c(smallCache());
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x101f, false).hit);   // same 32B block
    EXPECT_FALSE(c.access(0x1020, false).hit);  // next block
}

TEST(Cache, StatisticsCount)
{
    Cache c(smallCache());
    c.access(0x0, false);
    c.access(0x0, false);
    c.access(0x40, false);
    EXPECT_EQ(c.accesses(), 3u);
    EXPECT_EQ(c.misses(), 2u);
    EXPECT_NEAR(c.missRate(), 2.0 / 3.0, 1e-12);
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    // 2-way set: fill both ways, touch the first, insert a third;
    // the second (LRU) must be evicted.
    Cache c(smallCache());
    const uint64_t set_stride = 16 * 32;  // 16 sets * 32B
    c.access(0 * set_stride, false);  // way A
    c.access(1 * set_stride, false);  // way B
    c.access(0 * set_stride, false);  // refresh A
    c.access(2 * set_stride, false);  // evicts B
    EXPECT_TRUE(c.contains(0 * set_stride));
    EXPECT_FALSE(c.contains(1 * set_stride));
    EXPECT_TRUE(c.contains(2 * set_stride));
}

TEST(Cache, WriteBackTracksDirtyVictims)
{
    Cache c({1, 32, 1, true});  // direct mapped, 32 sets
    const uint64_t stride = 32 * 32;
    c.access(0, true);                    // dirty
    auto r = c.access(stride, false);     // evicts dirty block 0
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(r.victimAddr, 0u);
    EXPECT_EQ(c.writebacks(), 1u);
}

TEST(Cache, CleanVictimNoWriteback)
{
    Cache c({1, 32, 1, true});
    const uint64_t stride = 32 * 32;
    c.access(0, false);                   // clean
    auto r = c.access(stride, false);
    EXPECT_FALSE(r.writeback);
}

TEST(Cache, WriteThroughNeverDirty)
{
    Cache c({1, 32, 1, false});  // write-through
    const uint64_t stride = 32 * 32;
    c.access(0, true);
    auto r = c.access(stride, false);
    EXPECT_FALSE(r.writeback);
    EXPECT_EQ(c.writebacks(), 0u);
}

TEST(Cache, NoAllocateLeavesCacheUntouched)
{
    Cache c(smallCache());
    c.access(0x2000, true, /*allocate=*/false);
    EXPECT_FALSE(c.contains(0x2000));
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, ResetClearsEverything)
{
    Cache c(smallCache());
    c.access(0x0, true);
    c.reset();
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_FALSE(c.contains(0x0));
}

TEST(Cache, ResetStatsKeepsContents)
{
    Cache c(smallCache());
    c.access(0x0, false);
    c.resetStats();
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_TRUE(c.contains(0x0));
    EXPECT_TRUE(c.access(0x0, false).hit);
}

TEST(Cache, RejectsBadGeometry)
{
    EXPECT_THROW(Cache({0, 32, 2, true}), std::invalid_argument);
    EXPECT_THROW(Cache({32, 0, 2, true}), std::invalid_argument);
    EXPECT_THROW(Cache({32, 48, 2, true}), std::invalid_argument);
    EXPECT_THROW(Cache({32, 32, 3, true}), std::invalid_argument);
}

TEST(CacheConfig, NumSets)
{
    EXPECT_EQ(CacheConfig({32, 32, 2, true}).numSets(), 512);
    EXPECT_EQ(CacheConfig({1024, 64, 8, true}).numSets(), 2048);
}

TEST(CacheConfig, Describe)
{
    EXPECT_EQ(CacheConfig({32, 64, 4, true}).describe(), "32KB/64B/4way/WB");
    EXPECT_EQ(CacheConfig({8, 32, 1, false}).describe(), "8KB/32B/1way/WT");
}

/** Geometry sweep over every L1 shape the studies use. */
struct Geometry
{
    int size_kb;
    int block;
    int assoc;
};

class CacheGeometryTest : public ::testing::TestWithParam<Geometry> {};

TEST_P(CacheGeometryTest, FitsWorkingSetAfterWarmup)
{
    const auto [size_kb, block, assoc] = GetParam();
    Cache c({size_kb, block, assoc, true});
    // A working set half the cache size must fully fit.
    const uint64_t bytes = static_cast<uint64_t>(size_kb) * 1024 / 2;
    for (uint64_t a = 0; a < bytes; a += block)
        c.access(a, false);
    c.resetStats();
    for (uint64_t a = 0; a < bytes; a += block)
        c.access(a, false);
    EXPECT_EQ(c.misses(), 0u)
        << size_kb << "KB/" << block << "B/" << assoc << "way";
}

TEST_P(CacheGeometryTest, ThrashesWorkingSetTwiceItsSize)
{
    const auto [size_kb, block, assoc] = GetParam();
    Cache c({size_kb, block, assoc, true});
    // Cyclic sweep over 2x the capacity with LRU never hits.
    const uint64_t bytes = static_cast<uint64_t>(size_kb) * 1024 * 2;
    for (int pass = 0; pass < 2; ++pass)
        for (uint64_t a = 0; a < bytes; a += block)
            c.access(a, false);
    EXPECT_EQ(c.misses(), c.accesses());
}

INSTANTIATE_TEST_SUITE_P(
    StudyGeometries, CacheGeometryTest,
    ::testing::Values(Geometry{8, 32, 1}, Geometry{8, 64, 2},
                      Geometry{16, 32, 2}, Geometry{32, 32, 2},
                      Geometry{32, 64, 4}, Geometry{64, 64, 8},
                      Geometry{256, 64, 4}, Geometry{1024, 64, 8},
                      Geometry{2048, 128, 16}));

TEST(CacheProperty, LargerCacheNeverMissesMore)
{
    // On any fixed address sequence, a bigger cache of the same shape
    // (same block, same or higher assoc covering the smaller one)
    // should not have more misses: LRU with nested capacity.
    std::vector<uint64_t> addrs;
    uint64_t x = 12345;
    for (int i = 0; i < 20000; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        addrs.push_back((x >> 20) % (64 * 1024));
    }
    uint64_t prev_misses = ~0ull;
    for (int size_kb : {8, 16, 32, 64}) {
        Cache c({size_kb, 32, 8, true});
        for (uint64_t a : addrs)
            c.access(a, false);
        EXPECT_LE(c.misses(), prev_misses) << size_kb;
        prev_misses = c.misses();
    }
}

} // namespace
} // namespace sim
} // namespace dse
