/**
 * @file
 * Unit and property tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/rng.hh"

namespace dse {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformMeanIsCentred)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysBelow)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(7), 7u);
}

TEST(Rng, BelowCoversAllValues)
{
    Rng rng(5);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.below(5));
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, BelowIsApproximatelyUniform)
{
    Rng rng(17);
    std::vector<int> counts(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.below(10)];
    for (int c : counts)
        EXPECT_NEAR(c, n / 10, n / 100);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        const int64_t v = rng.range(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        saw_lo |= v == -2;
        saw_hi |= v == 2;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(13);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(21);
    double sum = 0.0, sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianScaled)
{
    Rng rng(23);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(5.0, 2.0);
    EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(31);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyMoves)
{
    Rng rng(31);
    std::vector<int> v(100);
    for (int i = 0; i < 100; ++i)
        v[i] = i;
    rng.shuffle(v);
    int moved = 0;
    for (int i = 0; i < 100; ++i)
        moved += v[i] != i;
    EXPECT_GT(moved, 50);
}

TEST(Rng, SampleWithoutReplacementDistinct)
{
    Rng rng(41);
    auto s = rng.sampleWithoutReplacement(1000, 100);
    EXPECT_EQ(s.size(), 100u);
    std::set<uint64_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 100u);
    for (uint64_t x : s)
        EXPECT_LT(x, 1000u);
}

TEST(Rng, SampleWithoutReplacementFullRange)
{
    Rng rng(43);
    auto s = rng.sampleWithoutReplacement(50, 50);
    std::set<uint64_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 50u);
}

TEST(Rng, SampleWithoutReplacementRejectsOversample)
{
    Rng rng(47);
    EXPECT_THROW(rng.sampleWithoutReplacement(10, 11),
                 std::invalid_argument);
}

TEST(Rng, WeightedIndexRespectsWeights)
{
    Rng rng(53);
    std::vector<double> w{0.0, 10.0, 0.0};
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.weightedIndex(w), 1u);
}

TEST(Rng, WeightedIndexProportional)
{
    Rng rng(59);
    std::vector<double> w{1.0, 3.0};
    int ones = 0;
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        ones += rng.weightedIndex(w) == 1;
    EXPECT_NEAR(ones / static_cast<double>(n), 0.75, 0.02);
}

TEST(Rng, ForkDecorrelates)
{
    Rng a(61);
    Rng b = a.fork();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, BurstLengthBounded)
{
    Rng rng(67);
    for (int i = 0; i < 1000; ++i) {
        const int len = rng.burstLength(0.9, 16);
        EXPECT_GE(len, 1);
        EXPECT_LE(len, 16);
    }
}

/** Property sweep: determinism and bounds across seeds. */
class RngSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSeedTest, ReplayIsIdentical)
{
    Rng a(GetParam()), b(GetParam());
    for (int i = 0; i < 50; ++i) {
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
        EXPECT_EQ(a.below(100), b.below(100));
    }
}

TEST_P(RngSeedTest, SampleIsValidForAnySeed)
{
    Rng rng(GetParam());
    auto s = rng.sampleWithoutReplacement(200, 50);
    std::set<uint64_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 50u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedTest,
                         ::testing::Values(0, 1, 42, 0xdeadbeef,
                                           ~0ull, 123456789));

} // namespace
} // namespace dse
