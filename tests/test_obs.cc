/**
 * @file
 * dse::obs observability tests: registry/naming semantics, histogram
 * bucketing, per-thread shard merging under the pool, trace JSON
 * emission, and — the property the whole layer is designed around —
 * proof that enabling metrics and tracing leaves study results
 * bit-for-bit identical to the instrumentation-free run (and to the
 * golden pins).
 *
 * Suites are named Obs* so the obs-tsan / obs-asan presets (and the
 * main tsan preset's filter) can select exactly this file; the binary
 * carries the `obs` ctest label.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "ml/cross_validation.hh"
#include "ml/explorer.hh"
#include "study/harness.hh"
#include "util/fault.hh"
#include "util/metrics.hh"
#include "util/thread_pool.hh"
#include "util/trace.hh"

namespace dse {
namespace {

std::string
tmpPath(const std::string &name)
{
    std::string path = "/tmp/dse_obs_" + name;
    std::remove(path.c_str());
    return path;
}

std::string
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
}

/** Every test leaves collection in the armed state it found nothing
 *  in: metrics on for the test body, off afterwards, no tracing. */
class ObsBase : public ::testing::Test
{
  protected:
    void SetUp() override
    {
#if defined(DSE_OBS_DISABLED)
        GTEST_SKIP() << "dse::obs compiled out (DSE_METRICS=OFF)";
#endif
        obs::setMetricsEnabled(true);
    }
    void TearDown() override
    {
        obs::TraceCollector::global().stop();
        obs::TraceCollector::global().clear();
        obs::setMetricsEnabled(false);
    }
};

using ObsRegistry = ObsBase;
using ObsHistogram = ObsBase;
using ObsSharding = ObsBase;
using ObsDeterminism = ObsBase;
using ObsTrace = ObsBase;
using ObsNames = ObsBase;

// ---------------------------------------------------------------------
// Registry semantics.
// ---------------------------------------------------------------------

TEST_F(ObsRegistry, RejectsInvalidNames)
{
    obs::MetricsRegistry r;
    EXPECT_THROW(r.counter(""), std::invalid_argument);
    EXPECT_THROW(r.counter("Sim.executed"), std::invalid_argument);
    EXPECT_THROW(r.counter("sim-executed"), std::invalid_argument);
    EXPECT_THROW(r.counter("sim executed"), std::invalid_argument);
    EXPECT_THROW(r.gauge("pool/threads"), std::invalid_argument);
    EXPECT_THROW(r.histogram("wall:ns"), std::invalid_argument);
    EXPECT_NO_THROW(r.counter("sim.executed_2"));

    EXPECT_TRUE(obs::MetricsRegistry::validName("a.b_c.0"));
    EXPECT_FALSE(obs::MetricsRegistry::validName("A"));
    EXPECT_FALSE(obs::MetricsRegistry::validName(""));
}

TEST_F(ObsRegistry, SameNameSameKindIsSameSeries)
{
    obs::MetricsRegistry r;
    const auto a = r.counter("dup.count");
    const auto b = r.counter("dup.count");
    EXPECT_EQ(a.idx, b.idx);
    r.add(a, 2);
    r.add(b, 3);
    EXPECT_EQ(r.snapshot().counter("dup.count"), 5u);
}

TEST_F(ObsRegistry, SameNameDifferentKindThrows)
{
    obs::MetricsRegistry r;
    r.counter("x.y");
    EXPECT_THROW(r.gauge("x.y"), std::invalid_argument);
    EXPECT_THROW(r.histogram("x.y"), std::invalid_argument);
    r.histogram("h.y");
    EXPECT_THROW(r.counter("h.y"), std::invalid_argument);
}

TEST_F(ObsRegistry, CapacityIsEnforced)
{
    obs::MetricsRegistry r;
    for (size_t i = 0; i < obs::kMaxCounters; ++i)
        r.counter("c." + std::to_string(i));
    EXPECT_THROW(r.counter("c.overflow"), std::length_error);
}

TEST_F(ObsRegistry, ResetZeroesValuesButKeepsNames)
{
    obs::MetricsRegistry r;
    const auto c = r.counter("reset.count");
    const auto g = r.gauge("reset.gauge");
    const auto h = r.histogram("reset.hist");
    r.add(c, 7);
    r.setGauge(g, -3);
    r.observe(h, 100);
    r.reset();
    const auto snap = r.snapshot();
    EXPECT_EQ(snap.counter("reset.count"), 0u);
    EXPECT_EQ(snap.gauge("reset.gauge"), 0);
    ASSERT_NE(snap.histogram("reset.hist"), nullptr);
    EXPECT_EQ(snap.histogram("reset.hist")->count, 0u);
    EXPECT_EQ(snap.histogram("reset.hist")->min, 0u);
}

TEST_F(ObsRegistry, RuntimeDisabledProbesAreDropped)
{
    obs::MetricsRegistry r;
    const auto c = r.counter("off.count");
    obs::setMetricsEnabled(false);
    r.add(c, 41);
    EXPECT_EQ(r.snapshot().counter("off.count"), 0u);
    obs::setMetricsEnabled(true);
    r.add(c, 41);
    EXPECT_EQ(r.snapshot().counter("off.count"), 41u);
}

TEST_F(ObsRegistry, UnregisteredNamesReadAsAbsent)
{
    obs::MetricsRegistry r;
    const auto snap = r.snapshot();
    EXPECT_EQ(snap.counter("never.registered"), 0u);
    EXPECT_EQ(snap.gauge("never.registered"), 0);
    EXPECT_EQ(snap.histogram("never.registered"), nullptr);
}

// ---------------------------------------------------------------------
// Histogram semantics.
// ---------------------------------------------------------------------

TEST_F(ObsHistogram, BucketsByBitWidth)
{
    obs::MetricsRegistry r;
    const auto h = r.histogram("bw.hist");
    const std::vector<std::pair<uint64_t, size_t>> cases = {
        {0, 0},  {1, 1},    {2, 2},    {3, 2},
        {4, 3},  {7, 3},    {8, 4},    {1023, 10},
        {1024, 11}, {UINT64_MAX, obs::kHistogramBuckets - 1},
    };
    for (const auto &[value, bucket] : cases)
        r.observe(h, value);
    const auto snap = r.snapshot();
    const auto *hs = snap.histogram("bw.hist");
    ASSERT_NE(hs, nullptr);
    EXPECT_EQ(hs->count, cases.size());
    EXPECT_EQ(hs->min, 0u);
    EXPECT_EQ(hs->max, UINT64_MAX);
    std::array<uint64_t, obs::kHistogramBuckets> want{};
    for (const auto &[value, bucket] : cases)
        ++want[bucket];
    for (size_t b = 0; b < obs::kHistogramBuckets; ++b)
        EXPECT_EQ(hs->buckets[b], want[b]) << "bucket " << b;
}

TEST_F(ObsHistogram, BucketBoundsArePowersOfTwoMinusOne)
{
    EXPECT_EQ(obs::HistogramSnapshot::bucketBound(0), 0u);
    EXPECT_EQ(obs::HistogramSnapshot::bucketBound(1), 1u);
    EXPECT_EQ(obs::HistogramSnapshot::bucketBound(2), 3u);
    EXPECT_EQ(obs::HistogramSnapshot::bucketBound(10), 1023u);
    EXPECT_EQ(obs::HistogramSnapshot::bucketBound(
                  obs::kHistogramBuckets - 1),
              UINT64_MAX);
}

TEST_F(ObsHistogram, MeanMinMaxSum)
{
    obs::MetricsRegistry r;
    const auto h = r.histogram("mm.hist");
    for (uint64_t v : {10u, 20u, 30u})
        r.observe(h, v);
    const auto snap = r.snapshot();
    const auto *hs = snap.histogram("mm.hist");
    ASSERT_NE(hs, nullptr);
    EXPECT_EQ(hs->sum, 60u);
    EXPECT_EQ(hs->min, 10u);
    EXPECT_EQ(hs->max, 30u);
    EXPECT_DOUBLE_EQ(hs->mean(), 20.0);
}

// ---------------------------------------------------------------------
// Per-thread sharding: concurrent accumulation merges exactly.
// ---------------------------------------------------------------------

TEST_F(ObsSharding, SnapshotMergesShardsAtAnyThreadCount)
{
    constexpr size_t kN = 20000;
    for (const size_t threads : {1u, 2u, 8u}) {
        util::ThreadPool::resetGlobal(threads);
        obs::MetricsRegistry r;
        const auto c = r.counter("merge.count");
        const auto h = r.histogram("merge.hist");
        util::ThreadPool::global().parallelFor(0, kN, [&](size_t i) {
            r.add(c);
            r.observe(h, static_cast<uint64_t>(i));
        });
        const auto snap = r.snapshot();
        EXPECT_EQ(snap.counter("merge.count"), kN) << threads;
        const auto *hs = snap.histogram("merge.hist");
        ASSERT_NE(hs, nullptr);
        EXPECT_EQ(hs->count, kN) << threads;
        EXPECT_EQ(hs->sum, kN * (kN - 1) / 2) << threads;
        EXPECT_EQ(hs->min, 0u) << threads;
        EXPECT_EQ(hs->max, kN - 1) << threads;
        uint64_t bucket_total = 0;
        for (const uint64_t b : hs->buckets)
            bucket_total += b;
        EXPECT_EQ(bucket_total, kN) << threads;
    }
    util::ThreadPool::resetGlobal();
}

TEST_F(ObsSharding, SnapshotIsReadableWhileWritersRun)
{
    // A mid-flight snapshot must be race-free (the tsan preset runs
    // this) and see between 0 and kN increments.
    constexpr size_t kN = 20000;
    util::ThreadPool::resetGlobal(8);
    obs::MetricsRegistry r;
    const auto c = r.counter("live.count");
    util::ThreadPool::global().parallelFor(0, kN, [&](size_t i) {
        r.add(c);
        if (i % 512 == 0) {
            const uint64_t seen = r.snapshot().counter("live.count");
            EXPECT_LE(seen, kN);
        }
    });
    EXPECT_EQ(r.snapshot().counter("live.count"), kN);
    util::ThreadPool::resetGlobal();
}

// ---------------------------------------------------------------------
// Determinism: instrumentation must not perturb study results.
// ---------------------------------------------------------------------

TEST_F(ObsDeterminism, MetricsAndTracingLeaveResultsBitIdentical)
{
    // 12 distinct indices (>= the default fold count so the ensemble
    // trains) plus 2 repeats to exercise the memo-hit accounting.
    const std::vector<uint64_t> points = {0,    100,  512,  1024, 2048,
                                          3000, 4096, 5000, 6000, 7777,
                                          9000, 12000, 100,  1024};
    constexpr uint64_t kDistinct = 12;

    // Baseline: instrumentation compiled in but disarmed.
    obs::setMetricsEnabled(false);
    std::vector<double> base_ipc;
    ml::ErrorEstimate base_estimate;
    std::vector<double> base_pred;
    {
        study::StudyContext ctx(study::StudyKind::MemorySystem, "gzip",
                                8192);
        base_ipc = ctx.simulateBatch(points);
        ml::DataSet data;
        for (size_t i = 0; i < points.size(); ++i) {
            data.add(ctx.space().encodeIndex(points[i]), base_ipc[i]);
        }
        ml::TrainOptions train;
        train.maxEpochs = 200;
        const auto model = ml::trainEnsemble(data, train);
        base_estimate = model.estimate();
        base_pred = model.predictIndices(ctx.space(), points);
    }

    // Same run with metrics armed, tracing armed, and a journal
    // attached (covering the journal-append spans).
    obs::setMetricsEnabled(true);
    obs::MetricsRegistry::global().reset();
    const std::string trace_path = tmpPath("determinism_trace.json");
    obs::TraceCollector::global().start(trace_path);
    {
        study::StudyContext ctx(study::StudyKind::MemorySystem, "gzip",
                                8192, tmpPath("determinism.journal"));
        const auto ipc = ctx.simulateBatch(points);
        EXPECT_EQ(ipc, base_ipc);  // bit-identical, no tolerance

        // Golden pin (tests/test_golden.cc): instrumentation must not
        // drift the simulator's arithmetic.
        EXPECT_NEAR(ctx.simulateIpc(100), 0.29359902515948677, 1e-9);

        ml::DataSet data;
        for (size_t i = 0; i < points.size(); ++i)
            data.add(ctx.space().encodeIndex(points[i]), ipc[i]);
        ml::TrainOptions train;
        train.maxEpochs = 200;
        const auto model = ml::trainEnsemble(data, train);
        EXPECT_EQ(model.estimate().meanPct, base_estimate.meanPct);
        EXPECT_EQ(model.estimate().sdPct, base_estimate.sdPct);
        EXPECT_EQ(model.predictIndices(ctx.space(), points), base_pred);

        // The snapshot must agree with the engine's own accounting.
        const auto snap = obs::MetricsRegistry::global().snapshot();
        EXPECT_EQ(snap.counter("sim.executed"),
                  ctx.simulationsExecuted());
        EXPECT_EQ(snap.counter("sim.memo_hits") +
                      snap.counter("sim.executed"),
                  snap.counter("sim.requests"));
        // The batch executes each distinct index once, reads every
        // entry back from the memo, and the golden pin re-reads index
        // 100 — so each counter is fully determined.
        EXPECT_EQ(snap.counter("sim.executed"), kDistinct);
        EXPECT_EQ(snap.counter("sim.requests"),
                  kDistinct + points.size() + 1);
        EXPECT_EQ(snap.counter("sim.memo_hits"), points.size() + 1);
        EXPECT_EQ(snap.counter("journal.appends"), kDistinct);
        EXPECT_EQ(snap.counter("journal.fsyncs"), kDistinct);
        EXPECT_GT(snap.counter("train.epochs"), 0u);
        const auto *wall = snap.histogram("sim.wall_ns");
        ASSERT_NE(wall, nullptr);
        EXPECT_EQ(wall->count, kDistinct);
        EXPECT_GT(wall->sum, 0u);
    }
    obs::TraceCollector::global().stop();
    EXPECT_GT(obs::TraceCollector::global().eventCount(), 0u);
    EXPECT_TRUE(obs::TraceCollector::global().writeTo(trace_path));
    EXPECT_FALSE(readFile(trace_path).empty());
}

TEST_F(ObsDeterminism, JournalReplayCountsSurviveRestart)
{
    const std::string path = tmpPath("replay_metrics.journal");
    obs::MetricsRegistry::global().reset();
    const std::vector<uint64_t> points = {1, 2, 3};
    {
        study::StudyContext ctx(study::StudyKind::MemorySystem, "gzip",
                                4096, path);
        ctx.simulateBatch(points);
    }
    {
        study::StudyContext ctx(study::StudyKind::MemorySystem, "gzip",
                                4096, path);
        EXPECT_EQ(ctx.journalStats().replayed, points.size());
        EXPECT_EQ(ctx.simulationsExecuted(), 0u);
    }
    const auto snap = obs::MetricsRegistry::global().snapshot();
    EXPECT_EQ(snap.counter("journal.replayed"), points.size());
    EXPECT_EQ(snap.counter("journal.rejected"), 0u);
    EXPECT_EQ(snap.counter("journal.torn_tails"), 0u);
}

// ---------------------------------------------------------------------
// Trace emission.
// ---------------------------------------------------------------------

/** Minimal structural check of the chrome://tracing JSON: find every
 *  "name" and "ph" field of the traceEvents array without a JSON
 *  library (the values this writer emits never contain escapes). */
std::vector<std::string>
fieldValues(const std::string &json, const std::string &key)
{
    std::vector<std::string> out;
    const std::string needle = "\"" + key + "\":\"";
    for (size_t at = json.find(needle); at != std::string::npos;
         at = json.find(needle, at + 1)) {
        const size_t start = at + needle.size();
        const size_t end = json.find('"', start);
        if (end == std::string::npos)
            break;
        out.push_back(json.substr(start, end - start));
    }
    return out;
}

TEST_F(ObsTrace, EmitsParseableChromeTracingJson)
{
    obs::MetricsRegistry::global().reset();
    const std::string path = tmpPath("trace.json");
    obs::TraceCollector::global().start(path);
    {
        study::StudyContext ctx(study::StudyKind::MemorySystem, "gzip",
                                4096);
        ctx.simulateBatch({0, 1, 2});
    }
    obs::TraceCollector::global().stop();
    ASSERT_TRUE(obs::TraceCollector::global().writeTo(path));

    const std::string json = readFile(path);
    ASSERT_FALSE(json.empty());
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.substr(json.find_last_not_of(" \n"), 1), "}");
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""),
              std::string::npos);

    const auto names = fieldValues(json, "name");
    ASSERT_EQ(names.size(), 3u);
    for (const auto &n : names)
        EXPECT_EQ(n, "sim");
    for (const auto &ph : fieldValues(json, "ph"))
        EXPECT_EQ(ph, "X");
    EXPECT_NE(json.find("\"ts\":"), std::string::npos);
    EXPECT_NE(json.find("\"dur\":"), std::string::npos);
}

TEST_F(ObsTrace, DisarmedScopesRecordNothing)
{
    obs::TraceCollector::global().clear();
    {
        study::StudyContext ctx(study::StudyKind::MemorySystem, "gzip",
                                4096);
        ctx.simulateIpc(0);
    }
    EXPECT_EQ(obs::TraceCollector::global().eventCount(), 0u);
}

// ---------------------------------------------------------------------
// Naming discipline over everything the engine registers.
// ---------------------------------------------------------------------

TEST_F(ObsNames, EveryRegisteredNameIsValidAndUnique)
{
    // Touch every instrumented subsystem so all built-in metrics are
    // registered: sim + journal (StudyContext), train + explore
    // (Explorer over a synthetic simulator), faults, and the pool.
    {
        study::StudyContext ctx(study::StudyKind::MemorySystem, "gzip",
                                4096, tmpPath("names.journal"));
        ctx.simulateBatch({0, 1});
        ctx.simulateSimPointIpc(0);

        ml::ExplorerOptions eopts;
        eopts.batchSize = 12;  // >= the default fold count
        eopts.maxSimulations = 24;
        eopts.activeLearning = true;
        eopts.candidatePool = 32;
        eopts.train.maxEpochs = 50;
        ml::Explorer explorer(
            ctx.space(),
            [](uint64_t i) { return 0.5 + 1e-6 * double(i); }, eopts);
        explorer.run();
        explorer.predictIndices({0, 1, 2});
    }
    util::FaultInjector::global().configure("sim:0:1");
    util::FaultInjector::global().reset();
    util::ThreadPool::global();

    const auto snap = obs::MetricsRegistry::global().snapshot();
    EXPECT_GE(snap.counters.size(), 18u);
    EXPECT_GE(snap.histograms.size(), 7u);

    std::set<std::string> seen;
    const auto check = [&](const std::string &name) {
        EXPECT_TRUE(obs::MetricsRegistry::validName(name))
            << "invalid metric name: " << name;
        EXPECT_TRUE(seen.insert(name).second)
            << "duplicate metric name: " << name;
    };
    for (const auto &[name, value] : snap.counters)
        check(name);
    for (const auto &[name, value] : snap.gauges)
        check(name);
    for (const auto &h : snap.histograms)
        check(h.name);
    EXPECT_TRUE(seen.count("sim.executed"));
    EXPECT_TRUE(seen.count("train.epochs"));
    EXPECT_TRUE(seen.count("explore.rounds"));
    EXPECT_TRUE(seen.count("journal.appends"));
    EXPECT_TRUE(seen.count("faults.injected.sim"));
    EXPECT_TRUE(seen.count("pool.threads"));
}

} // namespace
} // namespace dse
