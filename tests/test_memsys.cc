/**
 * @file
 * Tests for the timed memory hierarchy: latency ordering, MSHR
 * behaviour, bus contention, and write-policy traffic.
 */

#include <gtest/gtest.h>

#include "sim/cacti.hh"
#include "sim/memsys.hh"

namespace dse {
namespace sim {
namespace {

MachineConfig
baseConfig()
{
    MachineConfig cfg;
    CactiModel::applyLatencies(cfg);
    return cfg;
}

TEST(MemorySystem, L1HitLatency)
{
    auto cfg = baseConfig();
    MemorySystem mem(cfg);
    mem.warmAccess(0x1000, false);
    const uint64_t done = mem.load(0x1000, 100);
    EXPECT_EQ(done, 100 + static_cast<uint64_t>(cfg.l1dLatency));
}

TEST(MemorySystem, L1MissCostsMoreThanHit)
{
    auto cfg = baseConfig();
    MemorySystem mem(cfg);
    mem.warmAccess(0x1000, false);
    const uint64_t hit = mem.load(0x1000, 100);
    MemorySystem cold(cfg);
    const uint64_t miss = cold.load(0x1000, 100);
    EXPECT_GT(miss, hit);
}

TEST(MemorySystem, L2MissCostsMoreThanL2Hit)
{
    auto cfg = baseConfig();
    // L2 hit: warm only the L2 (access once, then evict... simpler:
    // warm fully, then measure a second distinct L1-missing block
    // that is L2-resident).
    MemorySystem mem(cfg);
    mem.warmAccess(0x8000, false);
    // Evict 0x8000 from L1 by filling its set (L1 32KB/2-way: stride
    // = numSets*block = 512*32 = 16KB).
    mem.warmAccess(0x8000 + 16 * 1024, false);
    mem.warmAccess(0x8000 + 32 * 1024, false);
    const uint64_t l2_hit = mem.load(0x8000, 1000);

    MemorySystem cold(cfg);
    const uint64_t l2_miss = cold.load(0x8000, 1000);
    EXPECT_GT(l2_miss, l2_hit);
    // DRAM latency at 4 GHz is 400 cycles; the miss must reflect it.
    EXPECT_GE(l2_miss - 1000, 400u);
}

TEST(MemorySystem, MshrMergesSameBlock)
{
    auto cfg = baseConfig();
    MemorySystem mem(cfg);
    const uint64_t first = mem.load(0x4000, 10);
    const uint64_t second = mem.load(0x4008, 11);  // same block
    // The second load waits on the first load's in-flight fill.
    EXPECT_EQ(second, std::max(first, 11 + static_cast<uint64_t>(
        cfg.l1dLatency)));
    EXPECT_EQ(mem.l1d().accesses(), 2u);
}

TEST(MemorySystem, MshrExhaustionReturnsZero)
{
    auto cfg = baseConfig();
    cfg.mshrs = 2;
    MemorySystem mem(cfg);
    EXPECT_NE(mem.load(0x10000, 10), 0u);
    EXPECT_NE(mem.load(0x20000, 10), 0u);
    EXPECT_EQ(mem.load(0x30000, 10), 0u);  // all MSHRs busy
}

TEST(MemorySystem, MshrFreesAfterCompletion)
{
    auto cfg = baseConfig();
    cfg.mshrs = 1;
    MemorySystem mem(cfg);
    const uint64_t done = mem.load(0x10000, 10);
    ASSERT_NE(done, 0u);
    EXPECT_EQ(mem.load(0x20000, 11), 0u);
    EXPECT_NE(mem.load(0x20000, done + 1), 0u);
}

TEST(MemorySystem, BusContentionSerializesMisses)
{
    auto cfg = baseConfig();
    cfg.l2BusBytes = 8;  // narrow bus
    CactiModel::applyLatencies(cfg);
    MemorySystem mem(cfg);
    const uint64_t a = mem.load(0x10000, 10);
    const uint64_t b = mem.load(0x20000, 10);
    EXPECT_GT(b, a);  // second miss queues behind the first transfer
}

TEST(MemorySystem, WiderBusNoSlower)
{
    for (uint64_t start : {10ull, 500ull}) {
        auto narrow_cfg = baseConfig();
        narrow_cfg.l2BusBytes = 8;
        auto wide_cfg = baseConfig();
        wide_cfg.l2BusBytes = 32;
        MemorySystem narrow(narrow_cfg), wide(wide_cfg);
        uint64_t last_narrow = 0, last_wide = 0;
        for (int i = 0; i < 8; ++i) {
            last_narrow = narrow.load(0x10000 + i * 4096, start);
            last_wide = wide.load(0x10000 + i * 4096, start);
        }
        EXPECT_LE(last_wide, last_narrow);
    }
}

TEST(MemorySystem, FasterFsbNoSlower)
{
    auto slow_cfg = baseConfig();
    slow_cfg.fsbGHz = 0.533;
    auto fast_cfg = baseConfig();
    fast_cfg.fsbGHz = 1.4;
    MemorySystem slow(slow_cfg), fast(fast_cfg);
    uint64_t last_slow = 0, last_fast = 0;
    for (int i = 0; i < 8; ++i) {
        last_slow = slow.load(0x100000 + i * 65536, 10);
        last_fast = fast.load(0x100000 + i * 65536, 10);
    }
    EXPECT_LE(last_fast, last_slow);
}

TEST(MemorySystem, WriteBackStoreHitIsFast)
{
    auto cfg = baseConfig();
    MemorySystem mem(cfg);
    mem.warmAccess(0x1000, false);
    EXPECT_EQ(mem.store(0x1000, 50),
              50 + static_cast<uint64_t>(cfg.l1dLatency));
}

TEST(MemorySystem, WriteThroughGeneratesL2Traffic)
{
    auto cfg = baseConfig();
    cfg.l1d.writeBack = false;
    MemorySystem mem(cfg);
    mem.warmAccess(0x1000, false);
    const uint64_t l2_before = mem.l2().accesses();
    mem.store(0x1000, 50);
    EXPECT_GT(mem.l2().accesses(), l2_before);
}

TEST(MemorySystem, WriteThroughBackpressureStallsSustainedStores)
{
    auto cfg = baseConfig();
    cfg.l1d.writeBack = false;
    cfg.l2BusBytes = 8;
    MemorySystem mem(cfg);
    // Hammer stores at the same cycle: eventually the write buffer
    // fills and the store's ready time exceeds the L1 latency.
    uint64_t worst = 0;
    for (int i = 0; i < 64; ++i)
        worst = std::max(worst, mem.store(0x1000 + i * 64, 10));
    EXPECT_GT(worst, 10 + static_cast<uint64_t>(cfg.l1dLatency));
}

TEST(MemorySystem, FetchPathWorks)
{
    auto cfg = baseConfig();
    MemorySystem mem(cfg);
    const uint64_t miss = mem.fetch(0x400000, 10);
    EXPECT_GT(miss, 10 + static_cast<uint64_t>(cfg.l1iLatency));
    const uint64_t hit = mem.fetch(0x400000, miss);
    EXPECT_EQ(hit, miss + static_cast<uint64_t>(cfg.l1iLatency));
}

TEST(MemorySystem, ResetStatsZeroesCounters)
{
    auto cfg = baseConfig();
    MemorySystem mem(cfg);
    mem.load(0x1000, 10);
    mem.resetStats();
    EXPECT_EQ(mem.l1d().accesses(), 0u);
    EXPECT_EQ(mem.l2().accesses(), 0u);
}

TEST(Cacti, CalibratedL1Point)
{
    // The paper's fixed L1I: 32KB -> 2 cycles at 4 GHz.
    EXPECT_EQ(CactiModel::cycles(
        CactiModel::l1AccessNs({32, 32, 2, true}), 4.0), 2);
}

TEST(Cacti, MonotoneInSize)
{
    double prev = 0.0;
    for (int kb : {8, 16, 32, 64}) {
        const double t = CactiModel::l1AccessNs({kb, 32, 2, true});
        EXPECT_GT(t, prev);
        prev = t;
    }
    prev = 0.0;
    for (int kb : {256, 512, 1024, 2048}) {
        const double t = CactiModel::l2AccessNs({kb, 64, 8, true});
        EXPECT_GT(t, prev);
        prev = t;
    }
}

TEST(Cacti, MonotoneInAssociativity)
{
    double prev = 0.0;
    for (int w : {1, 2, 4, 8}) {
        const double t = CactiModel::l1AccessNs({32, 32, w, true});
        EXPECT_GT(t, prev);
        prev = t;
    }
}

TEST(Cacti, CyclesScaleWithFrequency)
{
    const double ns = CactiModel::l2AccessNs({1024, 64, 8, true});
    EXPECT_LE(CactiModel::cycles(ns, 2.0), CactiModel::cycles(ns, 4.0));
    EXPECT_GE(CactiModel::cycles(ns, 0.001), 1);
}

TEST(Cacti, AppliesAllLatencies)
{
    MachineConfig cfg;
    cfg.freqGHz = 2.0;
    CactiModel::applyLatencies(cfg);
    EXPECT_GE(cfg.l1iLatency, 1);
    EXPECT_GE(cfg.l1dLatency, 1);
    EXPECT_GT(cfg.l2Latency, cfg.l1dLatency);
}

} // namespace
} // namespace sim
} // namespace dse
