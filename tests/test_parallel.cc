/**
 * @file
 * Determinism suite for the parallel simulation & training engine.
 *
 * The contract under test (DESIGN.md, "Parallel execution &
 * determinism"): every parallel loop in the library — batch
 * simulation, per-fold ensemble training, design-space prediction,
 * holdout evaluation — produces results **bit-identical** to serial
 * execution at any thread count. Each case below computes the same
 * quantity with the global pool set to 1, 2, and 8 threads and
 * compares exactly (no tolerances), plus a stress test hammering the
 * sharded memoization cache from concurrent batches.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "ml/ann.hh"
#include "ml/explorer.hh"
#include "study/harness.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

namespace dse {
namespace {

using util::ThreadPool;

constexpr size_t kThreadCounts[] = {1, 2, 8};

/** Restores the default global pool when a test scope ends. */
struct PoolGuard
{
    explicit PoolGuard(size_t threads) { ThreadPool::resetGlobal(threads); }
    ~PoolGuard() { ThreadPool::resetGlobal(); }
};

void
expectEnsemblesIdentical(const ml::Ensemble &a, const ml::Ensemble &b,
                         const char *what)
{
    ASSERT_EQ(a.members(), b.members()) << what;
    for (size_t m = 0; m < a.members(); ++m)
        EXPECT_EQ(a.memberWeights(m), b.memberWeights(m))
            << what << ": member " << m;
    EXPECT_EQ(a.estimate().meanPct, b.estimate().meanPct) << what;
    EXPECT_EQ(a.estimate().sdPct, b.estimate().sdPct) << what;
}

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(8);
    std::vector<int> hits(5000, 0);
    pool.parallelFor(0, hits.size(),
                     [&](size_t i) { hits[i] += 1; });
    for (size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i], 1) << i;
}

TEST(ThreadPoolTest, ParallelMapPreservesOrder)
{
    ThreadPool pool(4);
    const auto out = pool.parallelMap<size_t>(
        257, [](size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 257u);
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPoolTest, EmptyRangeIsANoOp)
{
    ThreadPool pool(4);
    bool ran = false;
    pool.parallelFor(5, 5, [&](size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, PropagatesFirstException)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(0, 200,
                                  [](size_t i) {
                                      if (i == 37)
                                          throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);
    // The pool must still be usable afterwards.
    std::atomic<size_t> n{0};
    pool.parallelFor(0, 64, [&](size_t) { n.fetch_add(1); });
    EXPECT_EQ(n.load(), 64u);
}

TEST(ThreadPoolTest, NestedCallsRunInline)
{
    PoolGuard guard(4);
    std::vector<int> hits(40 * 40, 0);
    ThreadPool::global().parallelFor(0, 40, [&](size_t i) {
        // Nested parallelFor must not deadlock; it degrades to a
        // serial inner loop on the calling worker.
        ThreadPool::global().parallelFor(0, 40, [&](size_t j) {
            hits[i * 40 + j] += 1;
        });
    });
    for (int h : hits)
        ASSERT_EQ(h, 1);
}

TEST(ThreadPoolTest, ConfiguredThreadsReadsEnv)
{
    setenv("DSE_THREADS", "3", 1);
    EXPECT_EQ(ThreadPool::configuredThreads(), 3u);
    unsetenv("DSE_THREADS");
    EXPECT_GE(ThreadPool::configuredThreads(), 1u);
}

TEST(ThreadPoolTest, BenchScopeReadsThreads)
{
    setenv("DSE_THREADS", "5", 1);
    EXPECT_EQ(study::BenchScope::fromEnv({"mesa"}).threads, 5u);
    unsetenv("DSE_THREADS");
    EXPECT_GE(study::BenchScope::fromEnv({"mesa"}).threads, 1u);
}

TEST(ParallelDeterminism, SplitMixFoldSeedsAreStableAndDistinct)
{
    SplitMix64 a(12345), b(12345);
    std::set<uint64_t> seen;
    for (int i = 0; i < 64; ++i) {
        const uint64_t v = a.next();
        EXPECT_EQ(v, b.next());
        EXPECT_TRUE(seen.insert(v).second) << "seed collision at " << i;
    }
}

TEST(ParallelDeterminism, SimulateBatchBitIdenticalAcrossThreadCounts)
{
    // The same indices simulated at 1/2/8 threads must give the same
    // bits: simulation is a pure function of the design point, and
    // the sharded cache only memoizes.
    std::vector<uint64_t> indices;
    {
        Rng rng(0x5eed);
        study::StudyContext probe(study::StudyKind::MemorySystem,
                                  "gzip", 4096);
        for (int i = 0; i < 24; ++i)
            indices.push_back(rng.below(probe.space().size()));
    }

    std::vector<std::vector<double>> results;
    for (size_t threads : kThreadCounts) {
        PoolGuard guard(threads);
        study::StudyContext ctx(study::StudyKind::MemorySystem, "gzip",
                                4096);
        results.push_back(ctx.simulateBatch(indices));
    }
    for (size_t t = 1; t < results.size(); ++t) {
        ASSERT_EQ(results[t].size(), results[0].size());
        for (size_t i = 0; i < results[0].size(); ++i)
            EXPECT_EQ(results[t][i], results[0][i])
                << "threads=" << kThreadCounts[t] << " index " << i;
    }
}

TEST(ParallelDeterminism, TrainEnsembleBitIdenticalAcrossThreadCounts)
{
    // Build a synthetic regression set once.
    Rng rng(21);
    ml::DataSet data;
    for (int i = 0; i < 100; ++i) {
        const double a = rng.uniform(), b = rng.uniform();
        data.add({a, b}, 0.5 + 0.9 * a - 0.4 * a * b);
    }
    ml::TrainOptions opts;
    opts.folds = 5;
    opts.maxEpochs = 150;
    opts.esInterval = 25;
    opts.patience = 4;

    std::vector<ml::Ensemble> models;
    for (size_t threads : kThreadCounts) {
        PoolGuard guard(threads);
        models.push_back(ml::trainEnsemble(data, opts));
    }
    expectEnsemblesIdentical(models[0], models[1], "1 vs 2 threads");
    expectEnsemblesIdentical(models[0], models[2], "1 vs 8 threads");
    EXPECT_EQ(models[0].predict({0.3, 0.7}),
              models[2].predict({0.3, 0.7}));
}

TEST(ParallelDeterminism, TrainEpochBitIdenticalToPerExampleAcrossThreadCounts)
{
    // The fused epoch pipeline under the pool: six networks trained
    // concurrently via trainEpoch (one per pool task, as trainEnsemble
    // trains folds) must match a serial per-example train() oracle
    // exactly, at every thread count. Exercises the fused
    // backward+update kernels' dispatch under concurrent execution.
    constexpr size_t kNets = 6;
    constexpr size_t kRows = 20;
    constexpr int kInputs = 8;
    constexpr int kEpochs = 3;

    std::vector<double> x(kRows * kInputs);
    std::vector<double> target(kRows);
    std::vector<uint32_t> order(kRows);
    {
        Rng rng(0xfa57);
        for (auto &v : x)
            v = rng.uniform();
        for (auto &v : target)
            v = rng.uniform();
        for (auto &o : order)
            o = static_cast<uint32_t>(rng.below(kRows));
    }

    auto make_net = [&](size_t m) {
        ml::AnnParams p;
        Rng rng(1000 + m);
        return ml::Ann(kInputs, 1, p, rng);
    };

    // Serial oracle: per-example train() calls, no pool involved.
    std::vector<std::vector<double>> expected;
    for (size_t m = 0; m < kNets; ++m) {
        ml::Ann net = make_net(m);
        for (int e = 0; e < kEpochs; ++e)
            for (uint32_t row : order)
                net.train(std::vector<double>(
                              x.begin() + row * kInputs,
                              x.begin() + (row + 1) * kInputs),
                          {target[row]});
        expected.push_back(net.weights());
    }

    for (size_t threads : kThreadCounts) {
        PoolGuard guard(threads);
        std::vector<std::vector<double>> got(kNets);
        ThreadPool::global().parallelFor(0, kNets, [&](size_t m) {
            ml::Ann net = make_net(m);
            for (int e = 0; e < kEpochs; ++e)
                net.trainEpoch(x.data(), target.data(), order.data(),
                               order.size());
            got[m] = net.weights();
        });
        for (size_t m = 0; m < kNets; ++m)
            EXPECT_EQ(got[m], expected[m])
                << "threads=" << threads << " net " << m;
    }
}

TEST(ParallelDeterminism, ExplorerPredictionsBitIdenticalAcrossThreadCounts)
{
    ml::DesignSpace space;
    space.addCardinal("a", {1, 2, 3, 4, 5, 6});
    space.addCardinal("b", {1, 2, 3, 4, 5, 6});
    space.addCardinal("c", {1, 2, 3, 4, 5, 6});
    auto simulator = [&](uint64_t idx) {
        const auto x = space.encodeIndex(idx);
        return 0.8 + 0.6 * x[0] + 0.3 * x[1] * x[2];
    };

    ml::ExplorerOptions opts;
    opts.batchSize = 30;
    opts.train.folds = 5;
    opts.train.maxEpochs = 120;
    opts.train.esInterval = 25;
    opts.train.patience = 4;

    std::vector<std::vector<uint64_t>> sampled;
    std::vector<std::vector<double>> predictions;
    for (size_t threads : kThreadCounts) {
        PoolGuard guard(threads);
        ml::Explorer explorer(space, simulator, opts);
        explorer.step();
        explorer.step();
        sampled.push_back(explorer.sampledIndices());
        predictions.push_back(explorer.predictSpace());
    }
    for (size_t t = 1; t < predictions.size(); ++t) {
        EXPECT_EQ(sampled[t], sampled[0])
            << "threads=" << kThreadCounts[t];
        ASSERT_EQ(predictions[t].size(), predictions[0].size());
        for (size_t i = 0; i < predictions[0].size(); ++i)
            EXPECT_EQ(predictions[t][i], predictions[0][i])
                << "threads=" << kThreadCounts[t] << " point " << i;
    }
}

TEST(ParallelDeterminism, MeasureTrueErrorBitIdenticalAcrossThreadCounts)
{
    // Train one tiny model, then evaluate the same holdout at each
    // thread count on a fresh (cold-cache) context.
    std::vector<uint64_t> train_idx;
    std::vector<uint64_t> eval_idx;
    ml::DataSet data;
    {
        PoolGuard guard(1);
        study::StudyContext ctx(study::StudyKind::Processor, "equake",
                                4096);
        Rng rng(77);
        train_idx = rng.sampleWithoutReplacement(ctx.space().size(), 40);
        eval_idx = study::holdoutIndices(ctx.space(), train_idx, 30, 78);
        const auto y = ctx.simulateBatch(train_idx);
        for (size_t i = 0; i < train_idx.size(); ++i)
            data.add(ctx.space().encodeIndex(train_idx[i]), y[i]);
    }
    ml::TrainOptions opts;
    opts.folds = 5;
    opts.maxEpochs = 120;
    opts.esInterval = 25;
    opts.patience = 4;
    const auto model = ml::trainEnsemble(data, opts);

    std::vector<study::TrueError> errors;
    for (size_t threads : kThreadCounts) {
        PoolGuard guard(threads);
        study::StudyContext ctx(study::StudyKind::Processor, "equake",
                                4096);
        errors.push_back(study::measureTrueError(ctx, model, eval_idx));
    }
    for (size_t t = 1; t < errors.size(); ++t) {
        EXPECT_EQ(errors[t].meanPct, errors[0].meanPct)
            << "threads=" << kThreadCounts[t];
        EXPECT_EQ(errors[t].sdPct, errors[0].sdPct)
            << "threads=" << kThreadCounts[t];
    }
}

TEST(ParallelDeterminism, SimPointBatchBitIdenticalAcrossThreadCounts)
{
    std::vector<uint64_t> indices;
    {
        Rng rng(0x51);
        study::StudyContext probe(study::StudyKind::Processor, "gzip",
                                  16384);
        for (int i = 0; i < 10; ++i)
            indices.push_back(rng.below(probe.space().size()));
    }
    std::vector<std::vector<double>> results;
    for (size_t threads : kThreadCounts) {
        PoolGuard guard(threads);
        study::StudyContext ctx(study::StudyKind::Processor, "gzip",
                                16384);
        results.push_back(ctx.simulateSimPointBatch(indices));
    }
    for (size_t t = 1; t < results.size(); ++t)
        EXPECT_EQ(results[t], results[0])
            << "threads=" << kThreadCounts[t];
}

TEST(ParallelStress, ConcurrentOverlappingBatchesShareTheCache)
{
    // Four threads hammer simulateBatch with overlapping index sets
    // while the global pool also runs 8 workers: every result must
    // match a serially computed reference, and the cache must hold
    // exactly the distinct indices.
    PoolGuard guard(8);

    std::vector<std::vector<uint64_t>> sets(4);
    std::set<uint64_t> unique;
    {
        Rng rng(0xca11);
        study::StudyContext probe(study::StudyKind::MemorySystem,
                                  "twolf", 4096);
        for (auto &set : sets) {
            for (int i = 0; i < 20; ++i) {
                // Small window so sets overlap heavily.
                const uint64_t idx = rng.below(60);
                set.push_back(idx);
                unique.insert(idx);
            }
        }
    }

    study::StudyContext ctx(study::StudyKind::MemorySystem, "twolf",
                            4096);
    std::vector<std::vector<double>> got(sets.size());
    std::vector<std::thread> threads;
    for (size_t t = 0; t < sets.size(); ++t) {
        threads.emplace_back([&, t] {
            // Two rounds each: the second round is all cache hits.
            got[t] = ctx.simulateBatch(sets[t]);
            const auto again = ctx.simulateBatch(sets[t]);
            EXPECT_EQ(again, got[t]);
        });
    }
    for (auto &th : threads)
        th.join();

    EXPECT_EQ(ctx.simulationsRun(), unique.size());

    study::StudyContext ref(study::StudyKind::MemorySystem, "twolf",
                            4096);
    for (size_t t = 0; t < sets.size(); ++t) {
        ASSERT_EQ(got[t].size(), sets[t].size());
        for (size_t i = 0; i < sets[t].size(); ++i)
            EXPECT_EQ(got[t][i], ref.simulateIpc(sets[t][i]))
                << "set " << t << " index " << i;
    }
}

} // namespace
} // namespace dse
