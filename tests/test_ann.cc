/**
 * @file
 * Tests for the feed-forward network and backpropagation: gradient
 * correctness, learnability of canonical functions, and API behaviour.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "ml/ann.hh"

namespace dse {
namespace ml {
namespace {

TEST(Ann, OutputInSigmoidRange)
{
    Rng rng(1);
    AnnParams p;
    Ann net(3, 1, p, rng);
    const double o = net.predictScalar({0.1, 0.5, 0.9});
    EXPECT_GT(o, 0.0);
    EXPECT_LT(o, 1.0);
}

TEST(Ann, NearZeroInitPredictsNearHalf)
{
    Rng rng(2);
    AnnParams p;
    p.initWeightRange = 0.01;
    Ann net(4, 1, p, rng);
    EXPECT_NEAR(net.predictScalar({0.2, 0.4, 0.6, 0.8}), 0.5, 0.05);
}

TEST(Ann, WeightCountMatchesTopology)
{
    Rng rng(3);
    AnnParams p;
    p.hiddenUnits = 16;
    p.hiddenLayers = 1;
    Ann net(10, 2, p, rng);
    // (10+1)*16 + (16+1)*2
    EXPECT_EQ(net.weightCount(), (10u + 1) * 16 + (16u + 1) * 2);
}

TEST(Ann, TwoHiddenLayers)
{
    Rng rng(3);
    AnnParams p;
    p.hiddenUnits = 4;
    p.hiddenLayers = 2;
    Ann net(3, 1, p, rng);
    EXPECT_EQ(net.weightCount(), (3u + 1) * 4 + (4u + 1) * 4 + (4u + 1) * 1);
    EXPECT_GT(net.predictScalar({0.1, 0.2, 0.3}), 0.0);
}

TEST(Ann, SetWeightsRoundTrip)
{
    Rng rng(5);
    AnnParams p;
    Ann a(4, 1, p, rng);
    Ann b(4, 1, p, rng);  // different init
    const std::vector<double> x{0.3, 0.6, 0.1, 0.8};
    b.setWeights(a.weights());
    EXPECT_DOUBLE_EQ(a.predictScalar(x), b.predictScalar(x));
}

TEST(Ann, SetWeightsRejectsWrongSize)
{
    Rng rng(5);
    Ann net(4, 1, AnnParams{}, rng);
    EXPECT_THROW(net.setWeights({1.0, 2.0}), std::invalid_argument);
}

TEST(Ann, RejectsBadTopology)
{
    Rng rng(5);
    AnnParams p;
    EXPECT_THROW(Ann(0, 1, p, rng), std::invalid_argument);
    EXPECT_THROW(Ann(1, 0, p, rng), std::invalid_argument);
    p.hiddenUnits = 0;
    EXPECT_THROW(Ann(1, 1, p, rng), std::invalid_argument);
}

TEST(Ann, GradientMatchesNumericalDerivative)
{
    Rng rng(7);
    AnnParams p;
    p.hiddenUnits = 5;
    p.learningRate = 1e-3;
    p.momentum = 0.0;
    p.decayEpochs = 0.0;
    p.initWeightRange = 0.5;
    Ann net(3, 1, p, rng);
    const std::vector<double> x{0.2, 0.7, 0.4};
    const std::vector<double> t{0.8};

    const auto w0 = net.weights();
    auto loss = [&](const std::vector<double> &w) {
        Ann tmp = net;
        tmp.setWeights(w);
        const double o = tmp.predictScalar(x);
        return (t[0] - o) * (t[0] - o);
    };
    net.train(x, t);
    const auto w1 = net.weights();

    for (size_t i = 0; i < w0.size(); i += 3) {
        auto wp = w0, wm = w0;
        wp[i] += 1e-6;
        wm[i] -= 1e-6;
        const double num_grad = (loss(wp) - loss(wm)) / 2e-6;
        // The update step is -eta * dE/dw with E = (t-o)^2 / 2 under
        // the delta convention used (delta = (t-o) o (1-o)).
        const double expected = -p.learningRate * 0.5 * num_grad;
        EXPECT_NEAR(w1[i] - w0[i], expected,
                    1e-7 + 1e-4 * std::abs(expected));
    }
}

TEST(Ann, TrainReturnsSquaredError)
{
    Rng rng(9);
    Ann net(2, 1, AnnParams{}, rng);
    const double before = net.predictScalar({0.5, 0.5});
    const double err = net.train({0.5, 0.5}, {0.9});
    EXPECT_NEAR(err, (0.9 - before) * (0.9 - before), 1e-9);
}

TEST(Ann, LearnsXor)
{
    Rng rng(11);
    AnnParams p;
    p.hiddenUnits = 8;
    p.learningRate = 0.5;
    p.momentum = 0.5;
    p.decayEpochs = 0.0;
    p.initWeightRange = 0.5;
    Ann net(2, 1, p, rng);
    const std::vector<std::vector<double>> xs{
        {0, 0}, {0, 1}, {1, 0}, {1, 1}};
    const std::vector<double> ys{0.1, 0.9, 0.9, 0.1};
    for (int epoch = 0; epoch < 5000; ++epoch)
        for (size_t i = 0; i < 4; ++i)
            net.train(xs[i], {ys[i]});
    for (size_t i = 0; i < 4; ++i)
        EXPECT_NEAR(net.predictScalar(xs[i]), ys[i], 0.15) << i;
}

TEST(Ann, LearnsLinearFunction)
{
    Rng rng(13);
    AnnParams p;
    p.learningRate = 0.2;
    p.decayEpochs = 0.0;
    Ann net(2, 1, p, rng);
    Rng data(17);
    for (int epoch = 0; epoch < 30000; ++epoch) {
        const double a = data.uniform(), b = data.uniform();
        net.train({a, b}, {0.2 + 0.3 * a + 0.3 * b});
    }
    double max_err = 0.0;
    for (double a : {0.1, 0.5, 0.9})
        for (double b : {0.1, 0.5, 0.9})
            max_err = std::max(max_err,
                std::abs(net.predictScalar({a, b}) -
                         (0.2 + 0.3 * a + 0.3 * b)));
    EXPECT_LT(max_err, 0.05);
}

TEST(Ann, LearnsProductInteraction)
{
    // A pure interaction term needs hidden units (not learnable by a
    // linear model).
    Rng rng(19);
    AnnParams p;
    p.hiddenUnits = 16;
    p.learningRate = 0.3;
    p.decayEpochs = 0.0;
    Ann net(2, 1, p, rng);
    Rng data(23);
    for (int epoch = 0; epoch < 120000; ++epoch) {
        const double a = data.uniform(), b = data.uniform();
        net.train({a, b}, {0.1 + 0.8 * a * b});
    }
    double sum_err = 0.0;
    int n = 0;
    for (double a = 0.05; a < 1.0; a += 0.1)
        for (double b = 0.05; b < 1.0; b += 0.1) {
            sum_err += std::abs(net.predictScalar({a, b}) -
                                (0.1 + 0.8 * a * b));
            ++n;
        }
    EXPECT_LT(sum_err / n, 0.05);
}

TEST(Ann, MultiOutputTrainsBothHeads)
{
    Rng rng(29);
    AnnParams p;
    p.learningRate = 0.3;
    p.decayEpochs = 0.0;
    Ann net(1, 2, p, rng);
    Rng data(31);
    for (int epoch = 0; epoch < 20000; ++epoch) {
        const double a = data.uniform();
        net.train({a}, {0.2 + 0.6 * a, 0.8 - 0.6 * a});
    }
    const auto out = net.predict({0.5});
    EXPECT_NEAR(out[0], 0.5, 0.05);
    EXPECT_NEAR(out[1], 0.5, 0.05);
}

TEST(Ann, DeterministicGivenSeed)
{
    auto build = [] {
        Rng rng(37);
        AnnParams p;
        p.learningRate = 0.1;
        Ann net(2, 1, p, rng);
        for (int i = 0; i < 100; ++i)
            net.train({0.3, 0.6}, {0.7});
        return net.predictScalar({0.3, 0.6});
    };
    EXPECT_DOUBLE_EQ(build(), build());
}

TEST(StableSigmoid, MatchesLibmAcrossClampedRange)
{
    // The polynomial sigmoid is the single activation definition for
    // every kernel; it must track the libm form to ~1 ulp wherever
    // the libm form is representable.
    double worst = 0.0;
    for (int i = 0; i <= 200000; ++i) {
        const double x = -708.0 + i * (1416.0 / 200000.0);
        const double ref = 1.0 / (1.0 + std::exp(-x));
        const double got = stableSigmoid(x);
        worst = std::max(worst, std::abs(got - ref) / ref);
    }
    EXPECT_LE(worst, 1e-13);
}

TEST(StableSigmoid, ExtremeInputsSaturateWithoutOverflow)
{
    EXPECT_DOUBLE_EQ(stableSigmoid(0.0), 0.5);
    // Already saturated to the last ulp well inside the clamp.
    EXPECT_DOUBLE_EQ(stableSigmoid(40.0),
                     1.0 / (1.0 + std::exp(-40.0)));
    EXPECT_NEAR(stableSigmoid(-40.0), std::exp(-40.0), 1e-30);
    for (double x : {708.0, 1e9, 1e308,
                     std::numeric_limits<double>::max()}) {
        EXPECT_EQ(stableSigmoid(x), 1.0) << "x=" << x;
        const double lo = stableSigmoid(-x);
        EXPECT_TRUE(std::isfinite(lo)) << "x=" << -x;
        EXPECT_GT(lo, 0.0) << "x=" << -x;
        EXPECT_LT(lo, 1e-300) << "x=" << -x;
    }
}

TEST(StableSigmoid, MonotoneThroughTheClamp)
{
    // No spurious step where the |x| <= 708 clamp engages.
    double prev = 0.0;
    for (int i = 0; i <= 4000; ++i) {
        const double x = -720.0 + i * (1440.0 / 4000.0);
        const double s = stableSigmoid(x);
        EXPECT_GE(s, prev) << "x=" << x;
        prev = s;
    }
}

TEST(Ann, MomentumAcceleratesConvergence)
{
    auto train_error = [](double momentum) {
        Rng rng(41);
        AnnParams p;
        p.learningRate = 0.05;
        p.momentum = momentum;
        p.decayEpochs = 0.0;
        Ann net(1, 1, p, rng);
        double err = 0.0;
        for (int i = 0; i < 2000; ++i)
            err = net.train({0.4}, {0.9});
        return err;
    };
    EXPECT_LT(train_error(0.5), train_error(0.0));
}

} // namespace
} // namespace ml
} // namespace dse
