/**
 * @file
 * Property tests of the simulator over *real study configurations*:
 * directional sensitivities the architecture must exhibit for the
 * studies to carry signal, checked per benchmark on the actual
 * Table 4.1/4.2 mappings.
 */

#include <gtest/gtest.h>

#include "study/harness.hh"

namespace dse {
namespace study {
namespace {

/** Mid-level configuration of a space as a level vector. */
std::vector<int>
midLevels(const ml::DesignSpace &space)
{
    std::vector<int> lv(space.numParams());
    for (size_t p = 0; p < space.numParams(); ++p)
        lv[p] = space.param(p).numLevels() / 2;
    return lv;
}

double
ipcAt(StudyContext &ctx, std::vector<int> lv, const std::string &param,
      int level)
{
    lv[ctx.space().paramIndex(param)] = level;
    return ctx.simulateIpc(ctx.space().index(lv));
}

class MemoryStudyProperties : public ::testing::TestWithParam<std::string>
{
  protected:
    void
    SetUp() override
    {
        // Short traces keep each property test fast; sensitivities
        // survive the truncation.
        ctx_ = std::make_unique<StudyContext>(StudyKind::MemorySystem,
                                              GetParam(), 16384);
    }
    std::unique_ptr<StudyContext> ctx_;
};

TEST_P(MemoryStudyProperties, LargerL1HelpsOrIsNeutral)
{
    const auto mid = midLevels(ctx_->space());
    const double small = ipcAt(*ctx_, mid, "L1DSizeKB", 0);   // 8 KB
    const double large = ipcAt(*ctx_, mid, "L1DSizeKB", 3);   // 64 KB
    EXPECT_GE(large, small * 0.98) << GetParam();
}

TEST_P(MemoryStudyProperties, DirectMappedL2IsWorstL2Assoc)
{
    const auto mid = midLevels(ctx_->space());
    const double direct = ipcAt(*ctx_, mid, "L2Assoc", 0);
    double best_other = 0.0;
    for (int l = 1; l < 5; ++l)
        best_other = std::max(best_other,
                              ipcAt(*ctx_, mid, "L2Assoc", l));
    EXPECT_GE(best_other, direct) << GetParam();
}

TEST_P(MemoryStudyProperties, FasterFsbNeverHurtsMuch)
{
    const auto mid = midLevels(ctx_->space());
    const double slow = ipcAt(*ctx_, mid, "FSBGHz", 0);   // 0.533
    const double fast = ipcAt(*ctx_, mid, "FSBGHz", 2);   // 1.4
    EXPECT_GE(fast, slow * 0.99) << GetParam();
}

TEST_P(MemoryStudyProperties, WiderL2BusNeverHurtsMuch)
{
    const auto mid = midLevels(ctx_->space());
    const double narrow = ipcAt(*ctx_, mid, "L2BusB", 0);  // 8 B
    const double wide = ipcAt(*ctx_, mid, "L2BusB", 2);    // 32 B
    EXPECT_GE(wide, narrow * 0.99) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Apps, MemoryStudyProperties,
                         ::testing::Values("gzip", "mcf", "crafty",
                                           "mgrid"));

class ProcessorStudyProperties
    : public ::testing::TestWithParam<std::string>
{
  protected:
    void
    SetUp() override
    {
        ctx_ = std::make_unique<StudyContext>(StudyKind::Processor,
                                              GetParam(), 16384);
    }
    std::unique_ptr<StudyContext> ctx_;
};

TEST_P(ProcessorStudyProperties, LowerFrequencyRaisesIpc)
{
    // IPC (not performance!) improves at lower clock: memory
    // latencies shrink in cycles. The paper's models learn exactly
    // this inversion.
    const auto mid = midLevels(ctx_->space());
    const double at2 = ipcAt(*ctx_, mid, "FreqGHz", 0);
    const double at4 = ipcAt(*ctx_, mid, "FreqGHz", 1);
    EXPECT_GT(at2, at4) << GetParam();
}

TEST_P(ProcessorStudyProperties, WiderMachineNeverSlower)
{
    const auto mid = midLevels(ctx_->space());
    const double narrow = ipcAt(*ctx_, mid, "Width", 0);  // 4-wide
    const double wide = ipcAt(*ctx_, mid, "Width", 2);    // 8-wide
    EXPECT_GE(wide, narrow * 0.99) << GetParam();
}

TEST_P(ProcessorStudyProperties, BiggerL1DNeverSlower)
{
    const auto mid = midLevels(ctx_->space());
    const double small = ipcAt(*ctx_, mid, "L1DSizeKB", 0);
    const double large = ipcAt(*ctx_, mid, "L1DSizeKB", 1);
    EXPECT_GE(large, small * 0.99) << GetParam();
}

TEST_P(ProcessorStudyProperties, BiggerRobNeverSlowerMuch)
{
    const auto mid = midLevels(ctx_->space());
    const double small = ipcAt(*ctx_, mid, "ROBSize", 0);
    const double large = ipcAt(*ctx_, mid, "ROBSize", 2);
    EXPECT_GE(large, small * 0.98) << GetParam();
}

TEST_P(ProcessorStudyProperties, ContextsAreDeterministic)
{
    StudyContext other(StudyKind::Processor, GetParam(), 16384);
    const uint64_t idx = other.space().size() / 7;
    EXPECT_DOUBLE_EQ(ctx_->simulateIpc(idx), other.simulateIpc(idx));
}

INSTANTIATE_TEST_SUITE_P(Apps, ProcessorStudyProperties,
                         ::testing::Values("gzip", "crafty", "mesa",
                                           "twolf"));

TEST(StudySignal, McfPrefersLargeL2)
{
    // The design rationale (DESIGN.md): mcf's cyclic working set
    // straddles the L2 sweep, so L2 capacity must carry signal.
    StudyContext ctx(StudyKind::MemorySystem, "mcf");
    const auto mid = midLevels(ctx.space());
    const double small = ipcAt(ctx, mid, "L2SizeKB", 0);  // 256 KB
    const double large = ipcAt(ctx, mid, "L2SizeKB", 3);  // 2 MB
    EXPECT_GT(large, small * 1.10);
}

TEST(StudySignal, CraftyIndifferentToL2Size)
{
    // crafty fits in the L1/small L2: capacity above 256 KB is
    // nearly free (matching real crafty's behaviour).
    StudyContext ctx(StudyKind::MemorySystem, "crafty", 16384);
    const auto mid = midLevels(ctx.space());
    const double small = ipcAt(ctx, mid, "L2SizeKB", 0);
    const double large = ipcAt(ctx, mid, "L2SizeKB", 3);
    EXPECT_NEAR(large / small, 1.0, 0.15);
}

} // namespace
} // namespace study
} // namespace dse
