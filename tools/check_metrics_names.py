#!/usr/bin/env python3
"""Lint the dse::obs metric namespace.

Scans the C++ sources for literal metric registrations --
``.counter("...")``, ``.gauge("...")``, ``.histogram("...")`` -- and
enforces the naming scheme documented in src/util/metrics.hh and
DESIGN.md ("Observability"):

* every name matches ``^[a-z0-9_.]+$``;
* every name has a subsystem prefix (at least one ``.``);
* no name is registered under two different metric kinds.

Re-registering the same (name, kind) from several sites is fine -- the
registry returns the same series -- so only cross-kind collisions are
errors.

Also lints the fault-injection namespace: every literal
``shouldFail("site", ...)`` probe must name a site from the allowlist
below, which doubles as the documentation of record for DSE_FAULTS --
a typo'd site would silently never fire, so an unknown one is an
error here rather than a dead knob in production.

Runs as the ObsMetricNamesLint ctest; exits nonzero with one line per
violation.
"""

import re
import sys
from pathlib import Path

NAME_RE = re.compile(r"^[a-z0-9_.]+$")
# .counter("sim.executed") / .gauge("...") / .histogram("...") on a
# registry object; whitespace/newlines may separate the call pieces.
REG_RE = re.compile(
    r"\.\s*(counter|gauge|histogram)\s*\(\s*\"([^\"]*)\"\s*\)")
# shouldFail("sim", key) probes; DOTALL because call sites split the
# arguments across lines.
FAULT_RE = re.compile(r"shouldFail\s*\(\s*\"([^\"]*)\"", re.DOTALL)
# Every fault-injection site that exists in the sources. Adding a
# probe means adding its site here (and to the DSE_FAULTS docs).
FAULT_SITES = {
    "sim",           # simulator execution (study/harness.cc)
    "fold",          # cross-validation fold training (ml)
    "journal",       # journal appends (study/journal.cc)
    "save",          # model save I/O (ml/io.cc)
    "serve.accept",  # prediction-service accept path
    "serve.read",    # prediction-service socket reads
    "serve.write",   # prediction-service socket writes
    "remote.conn.drop",     # dispatcher: drop before a batch attempt
    "remote.conn.delay",    # worker: stall a batch reply
    "remote.worker.crash",  # worker: die mid-request, no reply
}
# tests/ is excluded deliberately: the obs suite registers
# intentionally-invalid names to prove registration rejects them.
SCAN_DIRS = ("src", "bench", "tools")
SUFFIXES = {".cc", ".hh"}


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        __file__).resolve().parent.parent
    failures = []
    kinds = {}  # name -> (kind, first site)

    for scan in SCAN_DIRS:
        base = root / scan
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in SUFFIXES:
                continue
            text = path.read_text(encoding="utf-8", errors="replace")
            if "util/fault" not in str(path):
                for match in FAULT_RE.finditer(text):
                    site_name = match.group(1)
                    line = text.count("\n", 0, match.start()) + 1
                    site = f"{path.relative_to(root)}:{line}"
                    if site_name not in FAULT_SITES:
                        failures.append(
                            f"{site}: fault site '{site_name}' is not "
                            "in the allowlist (FAULT_SITES in "
                            "check_metrics_names.py)")
            for match in REG_RE.finditer(text):
                kind, name = match.group(1), match.group(2)
                line = text.count("\n", 0, match.start()) + 1
                site = f"{path.relative_to(root)}:{line}"
                if not NAME_RE.fullmatch(name):
                    failures.append(
                        f"{site}: metric name '{name}' does not match "
                        "^[a-z0-9_.]+$")
                    continue
                if "." not in name:
                    failures.append(
                        f"{site}: metric name '{name}' lacks a "
                        "subsystem prefix (expected 'subsystem.name')")
                if name in kinds and kinds[name][0] != kind:
                    failures.append(
                        f"{site}: '{name}' registered as {kind} but "
                        f"already a {kinds[name][0]} at "
                        f"{kinds[name][1]}")
                kinds.setdefault(name, (kind, site))

    if not kinds:
        failures.append("no metric registrations found -- "
                        "scan roots or regex are stale")
    for failure in failures:
        print(failure, file=sys.stderr)
    if failures:
        return 1
    print(f"ok: {len(kinds)} distinct metric names")
    return 0


if __name__ == "__main__":
    sys.exit(main())
