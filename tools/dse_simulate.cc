/**
 * @file
 * Direct simulator front end: run one detailed simulation of a
 * bundled benchmark on a design point of either study (by flat index
 * or by `Param=value` overrides of the space's middle configuration)
 * and print every statistic — for inspecting the substrate the
 * predictive models learn.
 *
 * Examples:
 *   dse_simulate --study=memory --app=mcf --index=12345
 *   dse_simulate --study=processor --app=gzip Width=8 FreqGHz=2
 *   dse_simulate --study=memory --app=twolf --simpoint --index=7
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "study/harness.hh"
#include "util/metrics.hh"
#include "util/table.hh"

using namespace dse;

namespace {

void
usage()
{
    std::puts(
        "usage: dse_simulate [--study=memory|processor] [--app=<name>]\n"
        "               [--index=<n> | Param=value ...] [--simpoint]\n"
        "               [--metrics[=path]]\n"
        "Runs one detailed simulation and prints its statistics.\n"
        "--metrics collects dse::obs metrics and prints them as a\n"
        "table (or writes JSON to <path>) before exiting.\n"
        "Param=value entries override the space's middle point; use\n"
        "dse_explore --describe-space for names and levels.\n"
        "exit codes: 0 ok, 1 bad usage, 2 invalid input, 3 runtime\n"
        "or I/O failure, 4 internal");
}

int
levelOfValue(const ml::DesignSpace &space, size_t p,
             const std::string &value)
{
    const auto &desc = space.param(p);
    if (desc.kind == ml::ParamKind::Nominal) {
        for (int l = 0; l < desc.numLevels(); ++l) {
            if (desc.labels[static_cast<size_t>(l)] == value)
                return l;
        }
    } else {
        const double v = std::atof(value.c_str());
        for (int l = 0; l < desc.numLevels(); ++l) {
            if (desc.values[static_cast<size_t>(l)] == v)
                return l;
        }
    }
    return -1;
}

int
run(int argc, char **argv)
{
    study::StudyKind kind = study::StudyKind::MemorySystem;
    std::string app = "gzip";
    bool use_simpoint = false;
    bool have_index = false;
    bool metrics = false;
    std::string metrics_path;
    uint64_t index = 0;
    std::vector<std::pair<std::string, std::string>> overrides;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--study=", 0) == 0) {
            const std::string v = arg.substr(8);
            kind = (v == "processor") ? study::StudyKind::Processor
                                      : study::StudyKind::MemorySystem;
        } else if (arg.rfind("--app=", 0) == 0) {
            app = arg.substr(6);
        } else if (arg.rfind("--index=", 0) == 0) {
            index = static_cast<uint64_t>(
                std::atoll(arg.c_str() + 8));
            have_index = true;
        } else if (arg == "--simpoint") {
            use_simpoint = true;
        } else if (arg == "--metrics") {
            metrics = true;
        } else if (arg.rfind("--metrics=", 0) == 0) {
            metrics = true;
            metrics_path = arg.substr(10);
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg.find('=') != std::string::npos) {
            const auto eq = arg.find('=');
            overrides.emplace_back(arg.substr(0, eq),
                                   arg.substr(eq + 1));
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n",
                         arg.c_str());
            usage();
            return 1;
        }
    }

    if (metrics)
        obs::setMetricsEnabled(true);

    study::StudyContext ctx(kind, app);
    const auto &space = ctx.space();

    if (!have_index) {
        std::vector<int> lv(space.numParams());
        for (size_t p = 0; p < space.numParams(); ++p)
            lv[p] = space.param(p).numLevels() / 2;
        for (const auto &[name, value] : overrides) {
            size_t p;
            try {
                p = space.paramIndex(name);
            } catch (const std::exception &) {
                std::fprintf(stderr, "unknown parameter '%s'\n",
                             name.c_str());
                return 1;
            }
            const int level = levelOfValue(space, p, value);
            if (level < 0) {
                std::fprintf(stderr,
                             "'%s' is not a level of %s\n",
                             value.c_str(), name.c_str());
                return 1;
            }
            lv[p] = level;
        }
        index = space.index(lv);
    }

    const auto lv = space.levels(index);
    std::printf("%s / %s, design point %llu:\n",
                study::studyName(kind), app.c_str(),
                static_cast<unsigned long long>(index));
    for (size_t p = 0; p < space.numParams(); ++p) {
        if (space.param(p).kind == ml::ParamKind::Nominal) {
            std::printf("  %-16s %s\n", space.param(p).name.c_str(),
                        space.label(p, lv[p]).c_str());
        } else {
            std::printf("  %-16s %g\n", space.param(p).name.c_str(),
                        space.value(p, lv[p]));
        }
    }

    const auto &r = ctx.simulateFull(index);
    std::printf("\nconfig: %s\n", ctx.config(index).describe().c_str());
    std::printf("cycles            %llu\n",
                static_cast<unsigned long long>(r.cycles));
    std::printf("instructions      %llu\n",
                static_cast<unsigned long long>(r.instructions));
    std::printf("IPC               %.4f\n", r.ipc);
    std::printf("L1D miss rate     %.4f (%llu/%llu)\n", r.l1dMissRate,
                static_cast<unsigned long long>(r.l1dMisses),
                static_cast<unsigned long long>(r.l1dAccesses));
    std::printf("L2 miss rate      %.4f (%llu/%llu)\n", r.l2MissRate,
                static_cast<unsigned long long>(r.l2Misses),
                static_cast<unsigned long long>(r.l2Accesses));
    std::printf("L1I miss rate     %.4f\n", r.l1iMissRate);
    std::printf("BP mispredict     %.4f (%llu/%llu)\n",
                r.branchMispredictRate,
                static_cast<unsigned long long>(r.branchMispredicts),
                static_cast<unsigned long long>(r.branches));

    if (use_simpoint) {
        const double est = ctx.simulateSimPointIpc(index);
        std::printf("\nSimPoint estimate %.4f (%.2f%% off, %zu of %zu "
                    "instructions detailed)\n",
                    est, 100.0 * std::abs(est - r.ipc) / r.ipc,
                    ctx.simPointInstructionsPerEstimate(),
                    ctx.trace().size());
    }

    if (metrics) {
        std::printf("\n");
        obs::reportGlobalMetrics(metrics_path);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // One actionable line and a distinct exit code per failure class;
    // an unknown benchmark or an unreadable journal must not abort.
    try {
        return run(argc, argv);
    } catch (const std::invalid_argument &e) {
        std::fprintf(stderr, "dse_simulate: invalid input: %s\n", e.what());
        return 2;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "dse_simulate: error: %s\n", e.what());
        return 3;
    } catch (...) {
        std::fprintf(stderr, "dse_simulate: unknown fatal error\n");
        return 4;
    }
}
