/**
 * @file
 * Simulation-worker daemon: serve SimulateBatch requests from a
 * RemoteDispatcher (dse_explore --workers / DSE_WORKERS) until
 * SIGINT/SIGTERM, then drain gracefully.
 *
 * The worker rebuilds each requested (study, app, trace length)
 * context on demand and memoizes per context, so repeat batches from
 * one exploration cost only the new points. Results are bit-identical
 * to the dispatcher simulating locally (purity + raw IEEE-754 wire
 * encoding), which is what makes worker failure recoverable by
 * re-dispatch or local fallback.
 *
 * Examples:
 *   dse_simworker --port=7080
 *   dse_simworker --port=0 --port-file=/tmp/w1.port
 *   DSE_FAULTS=remote.worker.crash:0.05:1 dse_simworker --port=7080
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "remote/worker.hh"
#include "util/metrics.hh"

using namespace dse;

namespace {

struct Options
{
    remote::SimWorkerOptions worker;
    std::string portFile;
    bool metrics = false;
    std::string metricsPath;
};

void
usage()
{
    std::puts(
        "usage: dse_simworker [options]\n"
        "  --addr=<ip>            bind address (default 127.0.0.1)\n"
        "  --port=<n>             TCP port (default 0 = ephemeral)\n"
        "  --port-file=<path>     write the bound port to a file\n"
        "  --threads=<n>          server worker threads (DSE_THREADS)\n"
        "  --max-batch=<n>        max design points per request (4096)\n"
        "  --delay-ms=<n>         remote.conn.delay sleep (250)\n"
        "  --fault-salt=<n>       mixed into fault-site keys so\n"
        "                         co-located workers fail independently\n"
        "  --metrics[=path]       dse::obs report at shutdown\n"
        "env: DSE_SERVE_ADDR, DSE_SERVE_QUEUE, DSE_SERVE_WORKERS,\n"
        "     DSE_FAULTS (remote.worker.crash, remote.conn.delay)\n"
        "exit codes: 0 ok, 1 bad usage, 2 invalid input, 3 runtime or\n"
        "I/O failure, 4 internal (3 also after an injected crash)");
}

bool
parseArg(const char *arg, const char *name, std::string &out)
{
    const size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
        out = arg + len + 1;
        return true;
    }
    return false;
}

bool
parse(int argc, char **argv, Options &opts)
{
    for (int i = 1; i < argc; ++i) {
        std::string value;
        const char *arg = argv[i];
        if (parseArg(arg, "--addr", value)) {
            opts.worker.server.addr = value;
        } else if (parseArg(arg, "--port", value)) {
            opts.worker.server.port =
                static_cast<uint16_t>(std::atoi(value.c_str()));
        } else if (parseArg(arg, "--port-file", value)) {
            opts.portFile = value;
        } else if (parseArg(arg, "--threads", value)) {
            opts.worker.server.workers =
                static_cast<size_t>(std::atoll(value.c_str()));
        } else if (parseArg(arg, "--max-batch", value)) {
            opts.worker.maxBatchPoints =
                static_cast<size_t>(std::atoll(value.c_str()));
        } else if (parseArg(arg, "--delay-ms", value)) {
            opts.worker.delayMs = std::atoi(value.c_str());
        } else if (parseArg(arg, "--fault-salt", value)) {
            opts.worker.faultSalt =
                static_cast<uint64_t>(std::atoll(value.c_str()));
        } else if (std::strcmp(arg, "--metrics") == 0) {
            opts.metrics = true;
        } else if (parseArg(arg, "--metrics", value)) {
            opts.metrics = true;
            opts.metricsPath = value;
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            usage();
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n", arg);
            return false;
        }
    }
    return true;
}

serve::Server *g_server = nullptr;

void
onSignal(int)
{
    // Async-signal-safe: flips an atomic and pokes the wake pipe.
    if (g_server)
        g_server->requestStop();
}

int
run(int argc, char **argv)
{
    Options opts;
    // The daemon emulates crashes for real: the process exits without
    // a reply, exactly what the dispatcher's failover expects.
    opts.worker.crashExits = true;
    if (!parse(argc, argv, opts)) {
        usage();
        return 1;
    }
    if (opts.metrics)
        obs::setMetricsEnabled(true);

    remote::SimWorker worker(opts.worker);
    worker.start();

    g_server = &worker.server();
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    std::signal(SIGPIPE, SIG_IGN);

    std::printf("simulation worker on %s:%u\n",
                opts.worker.server.addr.c_str(), worker.port());
    std::fflush(stdout);
    if (!opts.portFile.empty()) {
        FILE *f = std::fopen(opts.portFile.c_str(), "w");
        if (!f)
            throw std::runtime_error("cannot write port file " +
                                     opts.portFile);
        std::fprintf(f, "%u\n", worker.port());
        std::fclose(f);
    }

    worker.server().waitForStopRequest();
    std::printf("draining...\n");
    worker.stop();
    g_server = nullptr;

    std::printf("served %llu batches\n",
                static_cast<unsigned long long>(worker.batchesServed()));
    if (opts.metrics)
        obs::reportGlobalMetrics(opts.metricsPath);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const std::invalid_argument &e) {
        std::fprintf(stderr, "dse_simworker: invalid input: %s\n",
                     e.what());
        return 2;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "dse_simworker: error: %s\n", e.what());
        return 3;
    } catch (...) {
        std::fprintf(stderr, "dse_simworker: unknown fatal error\n");
        return 4;
    }
}
