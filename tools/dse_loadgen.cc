/**
 * @file
 * Closed-loop load generator for the prediction service: N client
 * threads, one connection each, issuing back-to-back PredictPoints
 * (or PredictRange) requests and recording per-request latency.
 * Reports p50/p95/p99/mean latency and request/prediction throughput;
 * --json emits the google-benchmark-shaped file run_benches.sh
 * archives as BENCH_serve.json.
 *
 * Examples:
 *   dse_loadgen --port=7070 --connections=8 --requests=5000
 *   dse_loadgen --port-file=/tmp/port --points=16 --duration=5
 *   dse_loadgen --port=7070 --range=256 --json=BENCH_serve.json
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hh"

using namespace dse;
using Clock = std::chrono::steady_clock;

namespace {

struct Options
{
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    std::string portFile;
    size_t connections = 4;
    size_t requests = 2000;  ///< per connection (0 = until duration)
    size_t points = 1;       ///< points per PredictPoints request
    size_t range = 0;        ///< nonzero: PredictRange of this count
    double durationS = 0;    ///< nonzero: time-bounded instead
    std::string jsonPath;
};

void
usage()
{
    std::puts(
        "usage: dse_loadgen [options]\n"
        "  --host=<ip>           server address (default 127.0.0.1)\n"
        "  --port=<n>            server port\n"
        "  --port-file=<path>    read the port from a file (dse_serve\n"
        "                        --port-file)\n"
        "  --connections=<n>     concurrent client connections (4)\n"
        "  --requests=<n>        requests per connection (2000)\n"
        "  --points=<n>          points per PredictPoints request (1)\n"
        "  --range=<n>           use PredictRange of this count instead\n"
        "  --duration=<sec>      run for a fixed time instead of a\n"
        "                        fixed request count\n"
        "  --json=<path>         write a benchmark-format JSON report\n"
        "exit codes: 0 ok, 1 bad usage, 2 invalid input, 3 runtime\n"
        "failure, 4 internal");
}

bool
parseArg(const char *arg, const char *name, std::string &out)
{
    const size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
        out = arg + len + 1;
        return true;
    }
    return false;
}

bool
parse(int argc, char **argv, Options &opts)
{
    for (int i = 1; i < argc; ++i) {
        std::string value;
        const char *arg = argv[i];
        if (parseArg(arg, "--host", value)) {
            opts.host = value;
        } else if (parseArg(arg, "--port", value)) {
            opts.port = static_cast<uint16_t>(std::atoi(value.c_str()));
        } else if (parseArg(arg, "--port-file", value)) {
            opts.portFile = value;
        } else if (parseArg(arg, "--connections", value)) {
            opts.connections =
                static_cast<size_t>(std::atoll(value.c_str()));
        } else if (parseArg(arg, "--requests", value)) {
            opts.requests =
                static_cast<size_t>(std::atoll(value.c_str()));
        } else if (parseArg(arg, "--points", value)) {
            opts.points = static_cast<size_t>(std::atoll(value.c_str()));
        } else if (parseArg(arg, "--range", value)) {
            opts.range = static_cast<size_t>(std::atoll(value.c_str()));
        } else if (parseArg(arg, "--duration", value)) {
            opts.durationS = std::atof(value.c_str());
        } else if (parseArg(arg, "--json", value)) {
            opts.jsonPath = value;
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            usage();
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n", arg);
            return false;
        }
    }
    if (opts.connections == 0 || opts.points == 0) {
        std::fprintf(stderr, "--connections/--points must be > 0\n");
        return false;
    }
    return true;
}

struct WorkerResult
{
    std::vector<uint64_t> latenciesNs;
    uint64_t requests = 0;
    uint64_t predictions = 0;
    uint64_t overloaded = 0;       ///< queue-full refusals (retried)
    uint64_t timeouts = 0;         ///< deadline expiries (reconnect)
    uint64_t disconnects = 0;      ///< peer closed/reset (reconnect)
    uint64_t connectFailures = 0;  ///< failed connect attempts
    uint64_t errors = 0;           ///< anything not classified above
};

double
percentile(std::vector<uint64_t> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const double rank = p / 100.0 *
        static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return static_cast<double>(sorted[lo]) * (1.0 - frac) +
        static_cast<double>(sorted[hi]) * frac;
}

int
run(int argc, char **argv)
{
    Options opts;
    if (!parse(argc, argv, opts)) {
        usage();
        return 1;
    }
    if (!opts.portFile.empty()) {
        FILE *f = std::fopen(opts.portFile.c_str(), "r");
        if (!f)
            throw std::invalid_argument("cannot read port file " +
                                        opts.portFile);
        unsigned p = 0;
        if (std::fscanf(f, "%u", &p) != 1 || p == 0 || p > 65535) {
            std::fclose(f);
            throw std::invalid_argument("bad port file contents");
        }
        std::fclose(f);
        opts.port = static_cast<uint16_t>(p);
    }
    if (opts.port == 0)
        throw std::invalid_argument("--port or --port-file required");

    // Probe the model once: feature width for PredictPoints payloads,
    // space size to bound PredictRange offsets. An unreachable server
    // is an outcome the report must show, not a crash: retry briefly,
    // then emit an all-zero report with the failures counted.
    size_t width = 0;
    uint64_t spaceSize = 0;
    uint64_t probeFailures = 0;
    for (int tries = 0; tries < 5 && width == 0; ++tries) {
        serve::Client probe;
        try {
            probe.connect(opts.host, opts.port);
            const auto info = probe.modelInfo();
            if (info.inputs == 0)
                throw std::invalid_argument(
                    "server has no model loaded");
            if (opts.range > 0 && info.spaceSize == 0)
                throw std::invalid_argument(
                    "--range needs a server-side design space");
            width = info.inputs;
            spaceSize = info.spaceSize;
        } catch (const std::invalid_argument &) {
            throw;  // a usage error, not an availability outcome
        } catch (const std::exception &) {
            ++probeFailures;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10 << tries));
        }
    }

    std::vector<WorkerResult> results(opts.connections);
    std::vector<std::thread> threads;
    std::atomic<bool> deadline{false};

    const auto t0 = Clock::now();
    for (size_t c = 0; width > 0 && c < opts.connections; ++c) {
        threads.emplace_back([&, c] {
            WorkerResult &res = results[c];
            serve::Client client;
            // A refused or flaky connect is an outcome to report, not
            // a reason to kill the whole run: retry with a short
            // backoff, then give up on this connection only.
            auto reconnect = [&]() -> bool {
                for (int tries = 0; tries < 5; ++tries) {
                    if (deadline.load(std::memory_order_relaxed))
                        return false;
                    try {
                        client.connect(opts.host, opts.port);
                        return true;
                    } catch (const std::exception &) {
                        ++res.connectFailures;
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(10 << tries));
                    }
                }
                return false;
            };
            if (!reconnect())
                return;
            // Deterministic per-connection feature pattern inside the
            // encoder's [0,1] range; values only need to be valid,
            // not meaningful, to exercise the prediction path.
            std::vector<double> x(opts.points * width);
            for (size_t i = 0; i < x.size(); ++i)
                x[i] = static_cast<double>((i * 2654435761u + c) %
                                           1000) /
                    999.0;
            res.latenciesNs.reserve(
                opts.requests ? opts.requests : 65536);
            for (size_t r = 0; opts.requests == 0 || r < opts.requests;
                 ++r) {
                if (deadline.load(std::memory_order_relaxed))
                    break;
                const auto start = Clock::now();
                try {
                    if (opts.range > 0) {
                        const uint64_t first =
                            (r * opts.range) %
                            (spaceSize - opts.range + 1);
                        client.predictRange(first, opts.range);
                        res.predictions += opts.range;
                    } else {
                        client.predictPoints(x.data(), opts.points,
                                             width);
                        res.predictions += opts.points;
                    }
                } catch (const serve::ServeError &e) {
                    switch (e.code()) {
                      case serve::ErrCode::Overloaded:
                        // The server doing its job; just retry.
                        ++res.overloaded;
                        continue;
                      case serve::ErrCode::Timeout:
                        // A reply may still be in flight; reusing the
                        // stream would desynchronize correlation, so
                        // reconnect clean.
                        ++res.timeouts;
                        client.close();
                        if (!reconnect())
                            return;
                        continue;
                      case serve::ErrCode::Disconnected:
                        ++res.disconnects;
                        client.close();
                        if (!reconnect())
                            return;
                        continue;
                      default:
                        ++res.errors;
                        return;
                    }
                }
                const auto ns =
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        Clock::now() - start)
                        .count();
                res.latenciesNs.push_back(static_cast<uint64_t>(ns));
                ++res.requests;
            }
        });
    }
    if (opts.durationS > 0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(opts.durationS));
        deadline.store(true, std::memory_order_relaxed);
    }
    for (auto &t : threads)
        t.join();
    const double wallS =
        std::chrono::duration<double>(Clock::now() - t0).count();

    std::vector<uint64_t> all;
    uint64_t requests = 0, predictions = 0, errors = 0;
    uint64_t overloaded = 0, timeouts = 0, disconnects = 0;
    uint64_t connect_failures = 0;
    for (auto &res : results) {
        all.insert(all.end(), res.latenciesNs.begin(),
                   res.latenciesNs.end());
        requests += res.requests;
        predictions += res.predictions;
        overloaded += res.overloaded;
        timeouts += res.timeouts;
        disconnects += res.disconnects;
        connect_failures += res.connectFailures;
        errors += res.errors;
    }
    connect_failures += probeFailures;
    std::sort(all.begin(), all.end());

    const double p50 = percentile(all, 50), p95 = percentile(all, 95),
                 p99 = percentile(all, 99);
    double mean = 0;
    for (uint64_t v : all)
        mean += static_cast<double>(v);
    if (!all.empty())
        mean /= static_cast<double>(all.size());
    const double rps = static_cast<double>(requests) / wallS;
    const double pps = static_cast<double>(predictions) / wallS;

    std::printf("%zu connections, %llu requests, %llu predictions "
                "in %.2fs\n",
                opts.connections,
                static_cast<unsigned long long>(requests),
                static_cast<unsigned long long>(predictions), wallS);
    std::printf("outcomes: %llu overloaded, %llu timeouts, "
                "%llu disconnects, %llu connect failures, "
                "%llu other errors\n",
                static_cast<unsigned long long>(overloaded),
                static_cast<unsigned long long>(timeouts),
                static_cast<unsigned long long>(disconnects),
                static_cast<unsigned long long>(connect_failures),
                static_cast<unsigned long long>(errors));
    std::printf("throughput: %.0f req/s, %.0f predictions/s\n", rps,
                pps);
    std::printf("latency us: p50 %.1f  p95 %.1f  p99 %.1f  mean %.1f\n",
                p50 / 1e3, p95 / 1e3, p99 / 1e3, mean / 1e3);

    if (!opts.jsonPath.empty()) {
        FILE *f = std::fopen(opts.jsonPath.c_str(), "w");
        if (!f)
            throw std::runtime_error("cannot write " + opts.jsonPath);
        const std::string name = opts.range > 0
            ? "serve/predict_range/" + std::to_string(opts.range)
            : "serve/predict_points/" + std::to_string(opts.points);
        std::fprintf(
            f,
            "{\n"
            "  \"context\": {\n"
            "    \"executable\": \"dse_loadgen\",\n"
            "    \"connections\": %zu,\n"
            "    \"points_per_request\": %zu\n"
            "  },\n"
            "  \"benchmarks\": [\n"
            "    {\n"
            "      \"name\": \"%s\",\n"
            "      \"run_type\": \"iteration\",\n"
            "      \"iterations\": %llu,\n"
            "      \"real_time\": %.1f,\n"
            "      \"cpu_time\": %.1f,\n"
            "      \"time_unit\": \"ns\",\n"
            "      \"requests_per_second\": %.1f,\n"
            "      \"predictions_per_second\": %.1f,\n"
            "      \"latency_p50_ns\": %.1f,\n"
            "      \"latency_p95_ns\": %.1f,\n"
            "      \"latency_p99_ns\": %.1f,\n"
            "      \"overloaded\": %llu,\n"
            "      \"timeouts\": %llu,\n"
            "      \"disconnects\": %llu,\n"
            "      \"connect_failures\": %llu,\n"
            "      \"errors\": %llu\n"
            "    }\n"
            "  ]\n"
            "}\n",
            opts.connections, opts.points, name.c_str(),
            static_cast<unsigned long long>(requests), mean, mean, rps,
            pps, p50, p95, p99,
            static_cast<unsigned long long>(overloaded),
            static_cast<unsigned long long>(timeouts),
            static_cast<unsigned long long>(disconnects),
            static_cast<unsigned long long>(connect_failures),
            static_cast<unsigned long long>(errors));
        std::fclose(f);
        std::printf("report written to %s\n", opts.jsonPath.c_str());
    }
    if (requests == 0) {
        std::fprintf(stderr,
                     "dse_loadgen: no request completed (see the "
                     "outcome counters above)\n");
        return 3;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const std::invalid_argument &e) {
        std::fprintf(stderr, "dse_loadgen: invalid input: %s\n",
                     e.what());
        return 2;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "dse_loadgen: error: %s\n", e.what());
        return 3;
    } catch (...) {
        std::fprintf(stderr, "dse_loadgen: unknown fatal error\n");
        return 4;
    }
}
