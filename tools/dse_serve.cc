/**
 * @file
 * Prediction-service daemon: load (or train) an ensemble model and
 * serve it over the dse::serve wire protocol until SIGINT/SIGTERM,
 * then drain gracefully.
 *
 * Examples:
 *   dse_serve --model=mcf.model --study=memory --port=7070
 *   dse_serve --study=memory --app=gzip --train --max-sims=200
 *   dse_serve --port=0 --port-file=/tmp/port --metrics=serve.json
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "ml/explorer.hh"
#include "ml/io.hh"
#include "serve/server.hh"
#include "study/harness.hh"
#include "util/metrics.hh"

using namespace dse;

namespace {

struct Options
{
    serve::ServerOptions server = serve::ServerOptions::fromEnv();
    std::string model;  ///< ensemble file to serve
    bool hasStudy = false;
    study::StudyKind kind = study::StudyKind::MemorySystem;
    std::string app;
    bool train = false;
    size_t maxSims = 200;
    int maxEpochs = 2000;
    std::string portFile;  ///< write the bound port here (scripts)
    bool metrics = false;
    std::string metricsPath;
};

void
usage()
{
    std::puts(
        "usage: dse_serve [options]\n"
        "  --model=<path>             serve a saved ensemble file\n"
        "  --study=memory|processor   attach a design space (enables\n"
        "                             PredictRange; required to train)\n"
        "  --app=<name>               benchmark to train on\n"
        "  --train                    train at startup (needs study+app)\n"
        "  --max-sims=<n>             training simulation cap (200)\n"
        "  --max-epochs=<n>           per-network epoch cap (2000)\n"
        "  --addr=<ip>                bind address (default 127.0.0.1)\n"
        "  --port=<n>                 TCP port (default 0 = ephemeral)\n"
        "  --port-file=<path>         write the bound port to a file\n"
        "  --workers=<n>              worker threads (default DSE_THREADS)\n"
        "  --queue=<n>                request-queue capacity (256)\n"
        "  --batch=<n>                max coalesced points (1024)\n"
        "  --metrics[=path]           dse::obs report at shutdown\n"
        "env: DSE_SERVE_ADDR, DSE_SERVE_BATCH, DSE_SERVE_BATCH_US,\n"
        "     DSE_SERVE_QUEUE, DSE_SERVE_WORKERS, DSE_SERVE_IDLE_MS,\n"
        "     DSE_SERVE_WRITE_MS (flags win over env)\n"
        "exit codes: 0 ok, 1 bad usage, 2 invalid input, 3 runtime or\n"
        "I/O failure, 4 internal");
}

bool
parseArg(const char *arg, const char *name, std::string &out)
{
    const size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
        out = arg + len + 1;
        return true;
    }
    return false;
}

bool
parse(int argc, char **argv, Options &opts)
{
    for (int i = 1; i < argc; ++i) {
        std::string value;
        const char *arg = argv[i];
        if (parseArg(arg, "--model", value)) {
            opts.model = value;
        } else if (parseArg(arg, "--study", value)) {
            if (value == "memory" || value == "memory-system") {
                opts.kind = study::StudyKind::MemorySystem;
            } else if (value == "processor") {
                opts.kind = study::StudyKind::Processor;
            } else {
                std::fprintf(stderr, "unknown study '%s'\n",
                             value.c_str());
                return false;
            }
            opts.hasStudy = true;
        } else if (parseArg(arg, "--app", value)) {
            opts.app = value;
        } else if (parseArg(arg, "--max-sims", value)) {
            opts.maxSims =
                static_cast<size_t>(std::atoll(value.c_str()));
        } else if (parseArg(arg, "--max-epochs", value)) {
            opts.maxEpochs = std::atoi(value.c_str());
        } else if (parseArg(arg, "--addr", value)) {
            opts.server.addr = value;
        } else if (parseArg(arg, "--port", value)) {
            opts.server.port =
                static_cast<uint16_t>(std::atoi(value.c_str()));
        } else if (parseArg(arg, "--port-file", value)) {
            opts.portFile = value;
        } else if (parseArg(arg, "--workers", value)) {
            opts.server.workers =
                static_cast<size_t>(std::atoll(value.c_str()));
        } else if (parseArg(arg, "--queue", value)) {
            opts.server.queueCapacity =
                static_cast<size_t>(std::atoll(value.c_str()));
        } else if (parseArg(arg, "--batch", value)) {
            opts.server.maxBatchPoints =
                static_cast<size_t>(std::atoll(value.c_str()));
        } else if (std::strcmp(arg, "--train") == 0) {
            opts.train = true;
        } else if (std::strcmp(arg, "--metrics") == 0) {
            opts.metrics = true;
        } else if (parseArg(arg, "--metrics", value)) {
            opts.metrics = true;
            opts.metricsPath = value;
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            usage();
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n", arg);
            return false;
        }
    }
    if (opts.train && (!opts.hasStudy || opts.app.empty())) {
        std::fprintf(stderr, "--train needs --study and --app\n");
        return false;
    }
    return true;
}

serve::Server *g_server = nullptr;

void
onSignal(int)
{
    // Async-signal-safe: flips an atomic and pokes the wake pipe.
    if (g_server)
        g_server->requestStop();
}

int
run(int argc, char **argv)
{
    Options opts;
    if (!parse(argc, argv, opts)) {
        usage();
        return 1;
    }
    if (opts.metrics)
        obs::setMetricsEnabled(true);

    serve::ModelState state;
    if (opts.hasStudy) {
        state.space = std::make_shared<const ml::DesignSpace>(
            study::spaceFor(opts.kind));
        state.study = study::studyName(opts.kind);
        state.app = opts.app;
    }
    if (!opts.model.empty()) {
        state.ensemble = std::make_shared<const ml::Ensemble>(
            ml::loadEnsemble(opts.model));
        std::printf("model loaded from %s (%zu members)\n",
                    opts.model.c_str(), state.ensemble->members());
    } else if (opts.train) {
        std::printf("training %s/%s (max %zu sims)...\n",
                    study::studyName(opts.kind), opts.app.c_str(),
                    opts.maxSims);
        study::StudyContext ctx(opts.kind, opts.app);
        ml::ExplorerOptions eopts;
        eopts.batchSize = opts.maxSims;
        eopts.maxSimulations = opts.maxSims;
        eopts.targetMeanPct = 0.0;  // one full batch, then serve
        eopts.train.maxEpochs = opts.maxEpochs;
        ml::Explorer explorer(
            ctx.space(), [&](uint64_t i) { return ctx.simulateIpc(i); },
            eopts);
        explorer.step();
        state.ensemble = std::make_shared<const ml::Ensemble>(
            explorer.ensemble());
        std::printf("trained: estimated error %.2f%% +- %.2f%%\n",
                    state.ensemble->estimate().meanPct,
                    state.ensemble->estimate().sdPct);
    } else {
        std::printf("no model at startup; waiting for LoadModel\n");
    }

    serve::Server server(opts.server);
    if (state.ensemble || state.space)
        server.setModel(std::move(state));
    server.start();

    g_server = &server;
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    std::signal(SIGPIPE, SIG_IGN);

    std::printf("serving on %s:%u\n", opts.server.addr.c_str(),
                server.port());
    std::fflush(stdout);
    if (!opts.portFile.empty()) {
        // Written after listen() succeeds: scripts poll this file to
        // learn the ephemeral port.
        FILE *f = std::fopen(opts.portFile.c_str(), "w");
        if (!f)
            throw std::runtime_error("cannot write port file " +
                                     opts.portFile);
        std::fprintf(f, "%u\n", server.port());
        std::fclose(f);
    }

    server.waitForStopRequest();
    std::printf("draining...\n");
    server.stop();
    g_server = nullptr;

    const auto stats = server.statsSnapshot();
    std::printf("served %llu requests (%llu predictions, "
                "%llu coalesced, %llu overloaded, %llu protocol "
                "errors) over %llu connections\n",
                static_cast<unsigned long long>(stats.requests),
                static_cast<unsigned long long>(stats.predictions),
                static_cast<unsigned long long>(stats.batchedRequests),
                static_cast<unsigned long long>(stats.overloaded),
                static_cast<unsigned long long>(stats.protocolErrors),
                static_cast<unsigned long long>(
                    stats.connectionsAccepted));

    if (opts.metrics)
        obs::reportGlobalMetrics(opts.metricsPath);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const std::invalid_argument &e) {
        std::fprintf(stderr, "dse_serve: invalid input: %s\n", e.what());
        return 2;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "dse_serve: error: %s\n", e.what());
        return 3;
    } catch (...) {
        std::fprintf(stderr, "dse_serve: unknown fatal error\n");
        return 4;
    }
}
