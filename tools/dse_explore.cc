/**
 * @file
 * Command-line front end for the library: run a predictive
 * design-space exploration of either paper study on any bundled
 * benchmark without writing code, save the trained model, and query
 * it later.
 *
 * Examples:
 *   dse_explore --study=processor --app=gzip --target-error=2
 *   dse_explore --study=memory --app=mcf --simpoint --max-sims=400 \
 *               --save-model=mcf.model
 *   dse_explore --study=memory --app=mcf --load-model=mcf.model \
 *               --predict=12345 --predict=99
 *   dse_explore --study=processor --app=crafty --describe-space
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "ml/explorer.hh"
#include "ml/io.hh"
#include "remote/dispatcher.hh"
#include "study/harness.hh"
#include "util/metrics.hh"
#include "workload/profile.hh"

using namespace dse;

namespace {

struct Options
{
    study::StudyKind kind = study::StudyKind::Processor;
    std::string app = "gzip";
    double targetError = 2.0;
    size_t batch = 50;
    size_t maxSims = 1000;
    bool simpoint = false;
    bool active = false;
    bool describeSpace = false;
    bool listApps = false;
    std::string saveModel;
    std::string loadModel;
    std::vector<uint64_t> predictIndices;
    int maxEpochs = 5000;
    bool metrics = false;
    std::string metricsPath;  ///< empty = table on stdout
    std::string workers;      ///< host:port,... (also DSE_WORKERS)
};

void
usage()
{
    std::puts(
        "usage: dse_explore [options]\n"
        "  --study=memory|processor   design space (default processor)\n"
        "  --app=<name>               benchmark (default gzip)\n"
        "  --target-error=<pct>       stop threshold (default 2.0)\n"
        "  --batch=<n>                sims per round (default 50)\n"
        "  --max-sims=<n>             simulation cap (default 1000)\n"
        "  --max-epochs=<n>           per-network budget (default 5000)\n"
        "  --simpoint                 train on SimPoint estimates\n"
        "  --active                   active-learning sampling\n"
        "  --save-model=<path>        write the trained ensemble\n"
        "  --load-model=<path>        skip training, load a model\n"
        "  --predict=<index>          predict a design point (repeat)\n"
        "  --workers=<host:port,...>  remote simulation workers\n"
        "                             (default $DSE_WORKERS; failures\n"
        "                             fall back to local simulation)\n"
        "  --describe-space           print the space and exit\n"
        "  --list-apps                print benchmark names and exit\n"
        "  --metrics[=path]           collect dse::obs metrics; print a\n"
        "                             table, or write JSON to <path>\n"
        "exit codes: 0 ok, 1 bad usage, 2 invalid input (unknown app/\n"
        "index/model contents), 3 runtime or I/O failure, 4 internal");
}

bool
parseArg(const char *arg, const char *name, std::string &out)
{
    const size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
        out = arg + len + 1;
        return true;
    }
    return false;
}

bool
parse(int argc, char **argv, Options &opts)
{
    for (int i = 1; i < argc; ++i) {
        std::string value;
        const char *arg = argv[i];
        if (parseArg(arg, "--study", value)) {
            if (value == "memory" || value == "memory-system") {
                opts.kind = study::StudyKind::MemorySystem;
            } else if (value == "processor") {
                opts.kind = study::StudyKind::Processor;
            } else {
                std::fprintf(stderr, "unknown study '%s'\n",
                             value.c_str());
                return false;
            }
        } else if (parseArg(arg, "--app", value)) {
            opts.app = value;
        } else if (parseArg(arg, "--target-error", value)) {
            opts.targetError = std::atof(value.c_str());
        } else if (parseArg(arg, "--batch", value)) {
            opts.batch = static_cast<size_t>(std::atoll(value.c_str()));
        } else if (parseArg(arg, "--max-sims", value)) {
            opts.maxSims =
                static_cast<size_t>(std::atoll(value.c_str()));
        } else if (parseArg(arg, "--max-epochs", value)) {
            opts.maxEpochs = std::atoi(value.c_str());
        } else if (parseArg(arg, "--save-model", value)) {
            opts.saveModel = value;
        } else if (parseArg(arg, "--load-model", value)) {
            opts.loadModel = value;
        } else if (parseArg(arg, "--predict", value)) {
            opts.predictIndices.push_back(
                static_cast<uint64_t>(std::atoll(value.c_str())));
        } else if (parseArg(arg, "--workers", value)) {
            opts.workers = value;
        } else if (std::strcmp(arg, "--metrics") == 0) {
            opts.metrics = true;
        } else if (parseArg(arg, "--metrics", value)) {
            opts.metrics = true;
            opts.metricsPath = value;
        } else if (std::strcmp(arg, "--simpoint") == 0) {
            opts.simpoint = true;
        } else if (std::strcmp(arg, "--active") == 0) {
            opts.active = true;
        } else if (std::strcmp(arg, "--describe-space") == 0) {
            opts.describeSpace = true;
        } else if (std::strcmp(arg, "--list-apps") == 0) {
            opts.listApps = true;
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            usage();
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg);
            return false;
        }
    }
    return true;
}

void
describeSpace(const ml::DesignSpace &space)
{
    std::printf("%llu design points, %zu parameters, %d encoded "
                "inputs\n",
                static_cast<unsigned long long>(space.size()),
                space.numParams(), space.encodedWidth());
    for (size_t p = 0; p < space.numParams(); ++p) {
        const auto &desc = space.param(p);
        std::printf("  %-16s", desc.name.c_str());
        if (desc.kind == ml::ParamKind::Nominal) {
            for (const auto &label : desc.labels)
                std::printf(" %s", label.c_str());
        } else {
            for (double v : desc.values)
                std::printf(" %g", v);
        }
        std::printf("\n");
    }
}

void
printPoint(study::StudyContext &ctx, const ml::Ensemble &model,
           uint64_t idx)
{
    const auto &space = ctx.space();
    if (idx >= space.size()) {
        std::printf("point %llu: out of range (space has %llu)\n",
                    static_cast<unsigned long long>(idx),
                    static_cast<unsigned long long>(space.size()));
        return;
    }
    const double pred = model.predict(space.encodeIndex(idx));
    std::printf("point %llu: predicted IPC %.4f  (spread %.4f)\n",
                static_cast<unsigned long long>(idx), pred,
                model.memberSpread(space.encodeIndex(idx)));
    const auto lv = space.levels(idx);
    for (size_t p = 0; p < space.numParams(); ++p) {
        if (space.param(p).kind == ml::ParamKind::Nominal) {
            std::printf("    %-16s %s\n", space.param(p).name.c_str(),
                        space.label(p, lv[p]).c_str());
        } else {
            std::printf("    %-16s %g\n", space.param(p).name.c_str(),
                        space.value(p, lv[p]));
        }
    }
}

int
run(int argc, char **argv)
{
    Options opts;
    if (!parse(argc, argv, opts)) {
        usage();
        return 1;
    }

    if (opts.metrics)
        obs::setMetricsEnabled(true);

    if (opts.listApps) {
        for (const auto &name : workload::benchmarkNames())
            std::puts(name.c_str());
        return 0;
    }
    if (opts.describeSpace) {
        describeSpace(study::spaceFor(opts.kind));
        return 0;
    }

    study::StudyContext ctx(opts.kind, opts.app);
    std::printf("%s study, %s: %llu design points, %zu-instruction "
                "trace\n",
                study::studyName(opts.kind), opts.app.c_str(),
                static_cast<unsigned long long>(ctx.space().size()),
                ctx.trace().size());

    std::unique_ptr<ml::Ensemble> model;
    if (!opts.loadModel.empty()) {
        model = std::make_unique<ml::Ensemble>(
            ml::loadEnsemble(opts.loadModel));
        std::printf("loaded model from %s (stored estimate "
                    "%.2f%% +- %.2f%%)\n",
                    opts.loadModel.c_str(), model->estimate().meanPct,
                    model->estimate().sdPct);
    } else {
        ml::ExplorerOptions eopts;
        eopts.batchSize = opts.batch;
        eopts.targetMeanPct = opts.targetError;
        eopts.maxSimulations = opts.maxSims;
        eopts.activeLearning = opts.active;
        eopts.train.maxEpochs = opts.maxEpochs;

        remote::DispatcherOptions dopts =
            remote::DispatcherOptions::fromEnv();
        if (!opts.workers.empty())
            dopts.endpoints = remote::parseEndpoints(opts.workers);
        dopts.simpoint = opts.simpoint;
        std::unique_ptr<remote::RemoteDispatcher> dispatcher;
        if (!dopts.endpoints.empty()) {
            dispatcher = std::make_unique<remote::RemoteDispatcher>(
                ctx, dopts);
            std::printf("remote: %zu simulation worker(s); failures "
                        "fall back to local simulation\n",
                        dopts.endpoints.size());
            eopts.prefetch = [&](const std::vector<uint64_t> &batch) {
                dispatcher->prefetch(batch);
            };
        }

        auto simulate = [&](uint64_t i) {
            return opts.simpoint ? ctx.simulateSimPointIpc(i)
                                 : ctx.simulateIpc(i);
        };
        ml::Explorer explorer(ctx.space(), simulate, eopts);
        for (const auto &step : explorer.run()) {
            std::printf("  %4zu sims: estimated error %.2f%% "
                        "+- %.2f%%\n",
                        step.totalSamples, step.estimate.meanPct,
                        step.estimate.sdPct);
        }
        model = std::make_unique<ml::Ensemble>(explorer.ensemble());
        std::printf("done: %zu simulations%s\n",
                    explorer.sampledIndices().size(),
                    opts.simpoint ? " (SimPoint estimates)" : "");
        if (dispatcher) {
            const auto st = dispatcher->stats();
            std::printf("remote: %llu dispatched, %llu completed, "
                        "%llu retries, %llu hedges, %llu redispatches, "
                        "%llu local fallbacks\n",
                        static_cast<unsigned long long>(st.dispatched),
                        static_cast<unsigned long long>(st.completed),
                        static_cast<unsigned long long>(st.retries),
                        static_cast<unsigned long long>(st.hedges),
                        static_cast<unsigned long long>(st.redispatches),
                        static_cast<unsigned long long>(st.fallbacks));
        }
    }

    if (!opts.saveModel.empty()) {
        ml::saveEnsemble(opts.saveModel, *model);
        std::printf("model saved to %s\n", opts.saveModel.c_str());
    }
    for (uint64_t idx : opts.predictIndices)
        printPoint(ctx, *model, idx);

    if (opts.metrics)
        obs::reportGlobalMetrics(opts.metricsPath);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Every failure surfaces as one actionable line and a distinct
    // exit code (see usage()) — never an uncaught std::runtime_error
    // aborting with a core dump mid-campaign.
    try {
        return run(argc, argv);
    } catch (const std::invalid_argument &e) {
        std::fprintf(stderr, "dse_explore: invalid input: %s\n",
                     e.what());
        return 2;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "dse_explore: error: %s\n", e.what());
        return 3;
    } catch (...) {
        std::fprintf(stderr, "dse_explore: unknown fatal error\n");
        return 4;
    }
}
