#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and gate on regressions.

Usage:
    bench_compare.py BASELINE.json CURRENT.json \
        [--bench REGEX ...] [--max-regression FRACTION]

Both files are ``--benchmark_out`` JSON (``--benchmark_format=json``).
For every benchmark selected by the ``--bench`` regexes (default: all
benchmarks present in the baseline), the script compares real_time
means and prints a table. Exit status:

    0  every selected benchmark is within the allowed regression
    1  at least one selected benchmark regressed by more than
       --max-regression (default 0.10, i.e. +10% mean real_time)
    2  usage error, unreadable/invalid JSON, or a --bench pattern that
       matches nothing in the baseline (a gate that silently compares
       zero benchmarks is not a gate)

Aggregate-aware: if a run was recorded with repetitions and
``--benchmark_report_aggregates_only``, the ``_mean`` aggregate row is
used; otherwise plain (non-aggregate) entries are used as-is. Either
side may use either shape — entries are indexed by run_name, which is
the benchmark name with any aggregate suffix stripped.

This is the bench-regression gate wired into ctest (BenchCompareGate
runs a parse-only self-compare of the committed baseline) and invoked
advisorily by run_benches.sh after refreshing BENCH_ann.json; see
README.md, "Testing".
"""

import argparse
import json
import re
import sys


def fail(msg):
    print("bench_compare: error: %s" % msg, file=sys.stderr)
    sys.exit(2)


def load_means(path):
    """Map run_name -> mean real_time (ns-scale per time_unit) for one
    benchmark JSON file, preferring ``_mean`` aggregates."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        fail("cannot read %s: %s" % (path, e))
    except ValueError as e:
        fail("%s is not valid JSON: %s" % (path, e))
    benchmarks = doc.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        fail("%s has no benchmarks array" % path)

    means = {}
    plain = {}
    units = {}
    for entry in benchmarks:
        name = entry.get("run_name", entry.get("name"))
        time = entry.get("real_time")
        if name is None or not isinstance(time, (int, float)):
            continue
        units[name] = entry.get("time_unit", "ns")
        if entry.get("aggregate_name") == "mean":
            means[name] = float(time)
        elif "aggregate_name" not in entry:
            # Plain repetition entries: average them ourselves so a
            # non-aggregated current run still compares cleanly.
            plain.setdefault(name, []).append(float(time))
    for name, times in plain.items():
        means.setdefault(name, sum(times) / len(times))
    if not means:
        fail("%s contains no usable real_time entries" % path)
    return means, units


def main(argv):
    parser = argparse.ArgumentParser(
        prog="bench_compare.py",
        description="Gate google-benchmark results against a baseline.")
    parser.add_argument("baseline", help="baseline benchmark JSON")
    parser.add_argument("current", help="current benchmark JSON")
    parser.add_argument(
        "--bench", action="append", default=[], metavar="REGEX",
        help="gate benchmarks whose run_name matches REGEX in full "
             "(repeatable; default: every baseline benchmark)")
    parser.add_argument(
        "--max-regression", type=float, default=0.10, metavar="FRACTION",
        help="maximum tolerated mean real_time increase "
             "(default 0.10 = +10%%)")
    args = parser.parse_args(argv)
    if args.max_regression < 0:
        fail("--max-regression must be non-negative")

    base, base_units = load_means(args.baseline)
    curr, _ = load_means(args.current)

    if args.bench:
        try:
            patterns = [re.compile(p) for p in args.bench]
        except re.error as e:
            fail("bad --bench regex: %s" % e)
        selected = sorted(
            n for n in base if any(p.fullmatch(n) for p in patterns))
        for p, rx in zip(args.bench, patterns):
            if not any(rx.fullmatch(n) for n in base):
                fail("--bench %r matches no baseline benchmark" % p)
    else:
        selected = sorted(base)

    width = max(len(n) for n in selected)
    header = "%-*s  %12s  %12s  %8s  gate" % (
        width, "benchmark", "base mean", "curr mean", "delta")
    print(header)
    print("-" * len(header))

    regressed = []
    for name in selected:
        if name not in curr:
            regressed.append(name)
            print("%-*s  %12.1f  %12s  %8s  MISSING" %
                  (width, name, base[name], "-", "-"))
            continue
        delta = (curr[name] - base[name]) / base[name]
        bad = delta > args.max_regression
        if bad:
            regressed.append(name)
        print("%-*s  %12.1f  %12.1f  %+7.1f%%  %s" %
              (width, name, base[name], curr[name], delta * 100.0,
               "FAIL" if bad else "ok"))
    unit = base_units.get(selected[0], "ns")
    print("(means in %s; gate: > +%.0f%% mean real_time fails)" %
          (unit, args.max_regression * 100.0))

    if regressed:
        print("bench_compare: FAILED: %s" % ", ".join(regressed),
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
